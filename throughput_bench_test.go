package pagefeedback_test

// BenchmarkThroughput measures the engine's concurrent hot-path throughput:
// a parallel mix of storage-engine scans, index seek+fetch plans, and an
// index nested-loops join, all against one shared engine with a warm cache.
// This is the workload the sharded CLOCK buffer pool and the page-batched
// scan pipeline exist for; run it with -cpu to see scaling:
//
//	go test -bench BenchmarkThroughput -cpu 1,8 -benchmem
//
// After a run the headline numbers are written to BENCH_throughput.json so
// successive PRs accumulate a perf trajectory.
//
// BenchmarkScanAlloc isolates the steady-state allocation behaviour of one
// full-table scan over an integer-only table: with the page-batched decode
// path the scan allocates O(pages), not O(rows) — visible with -benchmem.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pagefeedback"
)

// buildBenchEngine creates one engine with two integer-only tables:
// tb (clustered on k, 64k rows, secondary index on v) and ub (heap, 8k rows,
// index on fk) so scans, seeks, and INL joins all have a natural plan.
func buildBenchEngine(b *testing.B, rows int) *pagefeedback.Engine {
	b.Helper()
	return buildBenchEngineCfg(b, rows, pagefeedback.DefaultConfig())
}

// buildBenchEngineCfg is buildBenchEngine with an explicit configuration,
// for the plan-cache benchmarks' cache-disabled baselines.
func buildBenchEngineCfg(b *testing.B, rows int, cfg pagefeedback.Config) *pagefeedback.Engine {
	b.Helper()
	eng := pagefeedback.New(cfg)
	schema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "k", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "v", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "w", Kind: pagefeedback.KindInt},
	)
	if _, err := eng.CreateClusteredTable("tb", schema, []string{"k"}); err != nil {
		b.Fatal(err)
	}
	data := make([]pagefeedback.Row, rows)
	for i := range data {
		data[i] = pagefeedback.Row{
			pagefeedback.Int64(int64(i)),
			pagefeedback.Int64(int64(i * 13 % rows)),
			pagefeedback.Int64(int64(i % 97)),
		}
	}
	if err := eng.Load("tb", data); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.CreateIndex("ix_v", "tb", "v"); err != nil {
		b.Fatal(err)
	}

	uschema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "id", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "fk", Kind: pagefeedback.KindInt},
	)
	if _, err := eng.CreateHeapTable("ub", uschema); err != nil {
		b.Fatal(err)
	}
	udata := make([]pagefeedback.Row, rows/8)
	for i := range udata {
		udata[i] = pagefeedback.Row{
			pagefeedback.Int64(int64(i)),
			pagefeedback.Int64(int64(i * 7 % rows)),
		}
	}
	if err := eng.Load("ub", udata); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.CreateIndex("ix_fk", "ub", "fk"); err != nil {
		b.Fatal(err)
	}
	if err := eng.Analyze("tb", "ub"); err != nil {
		b.Fatal(err)
	}
	// Warm the pool once; the parallel workload runs entirely warm.
	if _, err := eng.Query("SELECT COUNT(w) FROM tb WHERE v < 1000000",
		&pagefeedback.RunOptions{WarmCache: true}); err != nil {
		b.Fatal(err)
	}
	return eng
}

// throughputQueries is the mixed hot-path workload: a predicate scan, a
// selective index seek+fetch, and an INL-shaped two-table join.
var throughputQueries = []struct {
	name string
	sql  string
	mon  bool
}{
	{"scan", "SELECT COUNT(w) FROM tb WHERE v < 32000", false},
	{"seek", "SELECT COUNT(w) FROM tb WHERE v < 200", false},
	{"join", "SELECT COUNT(w) FROM tb, ub WHERE ub.id < 400 AND ub.fk = tb.k", false},
	{"monitored-scan", "SELECT COUNT(w) FROM tb WHERE v < 32000", true},
}

func BenchmarkThroughput(b *testing.B) {
	const rows = 64000
	eng := buildBenchEngine(b, rows)
	var ops atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := throughputQueries[i%len(throughputQueries)]
			i++
			opts := &pagefeedback.RunOptions{WarmCache: true}
			if q.mon {
				opts.MonitorAll = true
				opts.SampleFraction = 0.01
			}
			if _, err := eng.Query(q.sql, opts); err != nil {
				b.Fatalf("%s: %v", q.name, err)
			}
			ops.Add(1)
		}
	})
	b.StopTimer()
	opsPerSec := float64(ops.Load()) / b.Elapsed().Seconds()
	b.ReportMetric(opsPerSec, "queries/sec")
	writeBenchJSON(b, "BENCH_throughput.json", "BenchmarkThroughput", map[string]any{
		"queries_per_sec": opsPerSec,
		"iterations":      b.N,
	})
}

// writeBenchJSON appends one benchmark's headline numbers to the perf
// trajectory at path, so successive runs (one per PR via `make bench`)
// accumulate instead of overwriting history. Each entry is stamped from the
// BENCH_STAMP environment variable when set (the Makefile passes the commit
// date) or the wall clock otherwise, and deduplicated by (stamp, benchmark):
// the framework re-runs the function while calibrating b.N, and re-runs at
// the same commit should refresh their entry, not duplicate it. A legacy
// single-object file is folded in as the first entry. Errors are non-fatal:
// the benchmark's job is the measurement.
func writeBenchJSON(b *testing.B, path, name string, metrics map[string]any) {
	var trajectory []map[string]any
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &trajectory); err != nil {
			var legacy map[string]any
			if json.Unmarshal(data, &legacy) == nil && len(legacy) > 0 {
				trajectory = []map[string]any{legacy}
			}
		}
	}
	stamp := os.Getenv("BENCH_STAMP")
	if stamp == "" {
		stamp = time.Now().UTC().Format(time.RFC3339)
	}
	for i, e := range trajectory {
		if e["stamp"] == stamp && e["benchmark"] == name {
			trajectory = append(trajectory[:i], trajectory[i+1:]...)
			break
		}
	}
	entry := map[string]any{
		"stamp":      stamp,
		"benchmark":  name,
		"gomaxprocs": runtime.GOMAXPROCS(0),
	}
	for k, v := range metrics {
		entry[k] = v
	}
	trajectory = append(trajectory, entry)
	data, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Logf("%s not written: %v", path, err)
	}
}

// BenchmarkScanAlloc demonstrates the O(pages) allocation profile of a
// steady-state full-table scan over an integer-only table (-benchmem).
func BenchmarkScanAlloc(b *testing.B) {
	eng := buildBenchEngine(b, 64000)
	sql := "SELECT COUNT(w) FROM tb WHERE v < 1000000" // scans every row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(sql, &pagefeedback.RunOptions{WarmCache: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolContention hammers the buffer pool itself through tiny seek
// queries from all procs — nearly every cycle is FetchPage/Unpin, so this is
// the purest view of pool lock contention.
func BenchmarkPoolContention(b *testing.B) {
	eng := buildBenchEngine(b, 64000)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			sql := fmt.Sprintf("SELECT COUNT(w) FROM tb WHERE v < %d", 50+i%50)
			i++
			if _, err := eng.Query(sql, &pagefeedback.RunOptions{WarmCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
