package pagefeedback_test

// One benchmark per table/figure of the paper's evaluation, plus the
// ablations. Each benchmark runs the corresponding harness from
// internal/experiments and reports the figure's headline quantity as a
// custom metric, so `go test -bench . -benchmem` regenerates the entire
// evaluation:
//
//	BenchmarkTableI      — Table I (database properties)
//	BenchmarkFig6        — single-table speedups (mean %, by column)
//	BenchmarkFig7        — monitoring overhead (%)
//	BenchmarkFig8        — join speedups (mean %)
//	BenchmarkFig9        — page-sampling overhead at 1/10/100%
//	BenchmarkFig10       — clustering-ratio mean/stdev
//	BenchmarkFig11       — real-database speedups (mean %)
//	BenchmarkBitvector   — filter width vs overestimation
//	BenchmarkEstimators  — linear counting vs GEE error
//	BenchmarkDPSample    — sampling fraction vs max error
//	BenchmarkAblationBitmapSize — linear-counter bitmap sizing
//
// Scale via -benchrows (synthetic rows) when needed; the default keeps a
// full run to a few minutes.

import (
	"flag"
	"fmt"
	"testing"

	"pagefeedback"
	"pagefeedback/internal/experiments"
)

var benchRows = flag.Int("benchrows", 120000, "synthetic rows for figure benchmarks")

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.SyntheticRows = *benchRows
	cfg.RealScale = 0.5
	return cfg
}

func meanSpeedup(rs []experiments.SpeedupResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += r.Speedup
	}
	return sum / float64(len(rs))
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var pages int64
		for _, r := range rows {
			pages += r.Pages
		}
		b.ReportMetric(float64(pages), "total-pages")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanSpeedup(rs)*100, "mean-speedup-%")
		byCol := map[string][]experiments.SpeedupResult{}
		for _, r := range rs {
			byCol[r.Col] = append(byCol[r.Col], r)
		}
		for _, col := range []string{"c2", "c3", "c4", "c5"} {
			b.ReportMetric(meanSpeedup(byCol[col])*100, col+"-speedup-%")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rs {
			sum += r.OverheadPct
		}
		b.ReportMetric(sum/float64(len(rs)), "mean-overhead-%")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanSpeedup(rs)*100, "mean-speedup-%")
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Report the 5-predicate overhead per sampling fraction — the
		// figure's rightmost points.
		for _, r := range rs {
			if r.Predicates == 5 {
				switch r.Fraction {
				case 0.01:
					b.ReportMetric(r.OverheadPct, "5preds-1%-overhead-%")
				case 0.10:
					b.ReportMetric(r.OverheadPct, "5preds-10%-overhead-%")
				case 1.0:
					b.ReportMetric(r.OverheadPct, "5preds-100%-overhead-%")
				}
			}
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, mean, stdev, err := experiments.Fig10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean, "mean-CR")
		b.ReportMetric(stdev, "stdev-CR")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanSpeedup(rs)*100, "mean-speedup-%")
		b.ReportMetric(float64(len(rs)), "queries")
	}
}

func BenchmarkBitvector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := experiments.BitvectorAccuracy(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Overestimation at the narrowest and at the ~1%-of-rows widths.
		b.ReportMetric(ps[0].OverestPct, "narrowest-overest-%")
		b.ReportMetric(ps[len(ps)-1].OverestPct, "widest-overest-%")
	}
}

func BenchmarkEstimators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := experiments.EstimatorComparison(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var lin, gee float64
		for _, p := range ps {
			lin += p.LinearErrPct
			gee += p.GEEErrPct
		}
		n := float64(len(ps))
		if n > 0 {
			b.ReportMetric(lin/n, "linear-err-%")
			b.ReportMetric(gee/n, "gee-err-%")
		}
	}
}

func BenchmarkDPSample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := experiments.DPSampleError(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range ps {
			if p.Fraction == 0.01 {
				b.ReportMetric(p.MaxErrPct, "1%-max-err-%")
			}
		}
	}
}

func BenchmarkAblationBitmapSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := experiments.BitmapSizeAblation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range ps {
			if p.BitsPerPage == 1 {
				b.ReportMetric(p.ErrPct, "1bit-per-page-err-%")
			}
		}
	}
}

func BenchmarkAblationPoolSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := experiments.PoolSizeAblation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range ps {
			b.ReportMetric(p.Speedup*100, fmt.Sprintf("pool%d-speedup-%%", p.PoolPages))
		}
	}
}

func BenchmarkSelfTuningTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := experiments.SelfTuningTransfer(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range ps {
			b.ReportMetric(p.MeanSpeedup*100, p.Col+"-transfer-speedup-%")
		}
	}
}

// BenchmarkCoreMechanisms micro-benchmarks the paper's per-row costs: the
// reason the monitors stay under the ~2% overhead budget.
func BenchmarkCoreMechanisms(b *testing.B) {
	eng := pagefeedback.New(pagefeedback.DefaultConfig())
	schema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "id", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "v", Kind: pagefeedback.KindInt},
	)
	if _, err := eng.CreateClusteredTable("m", schema, []string{"id"}); err != nil {
		b.Fatal(err)
	}
	rows := make([]pagefeedback.Row, 20000)
	for i := range rows {
		rows[i] = pagefeedback.Row{pagefeedback.Int64(int64(i)), pagefeedback.Int64(int64(i * 7 % 20000))}
	}
	if err := eng.Load("m", rows); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.CreateIndex("ix_v", "m", "v"); err != nil {
		b.Fatal(err)
	}
	if err := eng.Analyze("m"); err != nil {
		b.Fatal(err)
	}
	b.Run("ScanNoMonitor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query("SELECT COUNT(*) FROM m WHERE v < 10000",
				&pagefeedback.RunOptions{WarmCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ScanWithMonitors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query("SELECT COUNT(*) FROM m WHERE v < 10000",
				&pagefeedback.RunOptions{WarmCache: true, MonitorAll: true, SampleFraction: 0.01}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
