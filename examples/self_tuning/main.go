// Self-tuning: the §VI future-work loop, end to end. One monitored query
// teaches the engine a column's clustering density and a join's page-count
// curve; different predicates and selectivities then plan correctly with no
// further monitoring; and the learned state survives a "restart" through
// JSON export/import.
package main

import (
	"bytes"
	"fmt"
	"log"

	"pagefeedback"
	"pagefeedback/internal/datagen"
)

func main() {
	eng := pagefeedback.New(pagefeedback.DefaultConfig())
	fmt.Println("building the synthetic database (100k rows)...")
	if _, err := datagen.BuildSynthetic(eng, 100000, 1); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- 1. one monitored query on the correlated column c2 --")
	trained := "SELECT COUNT(padding) FROM t WHERE c2 < 1000"
	res, err := eng.Query(trained, &pagefeedback.RunOptions{MonitorAll: true})
	if err != nil {
		log.Fatal(err)
	}
	x := res.Stats.DPC[0]
	fmt.Printf("   %s: estimated %d pages, observed %d\n", x.Expression, x.Estimated, x.Actual)
	eng.ApplyFeedback(res)

	fmt.Println("\n-- 2. a DIFFERENT range on c2 plans through the learned histogram --")
	similar := "SELECT COUNT(padding) FROM t WHERE c2 BETWEEN 40000 AND 41500"
	out, err := eng.Explain(similar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(indent(out))

	fmt.Println("\n-- 3. one monitored join teaches the join-DPC curve --")
	join := "SELECT COUNT(t.padding) FROM t, t1 WHERE t1.c1 < 1000 AND t1.c2 = t.c2"
	jres, err := eng.Query(join, &pagefeedback.RunOptions{MonitorAll: true, SampleFraction: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	eng.ApplyFeedback(jres)
	biggerJoin := "SELECT COUNT(t.padding) FROM t, t1 WHERE t1.c1 < 3000 AND t1.c2 = t.c2"
	out, err = eng.Explain(biggerJoin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   3x the outer selectivity, no re-monitoring:\n%s", indent(out))

	fmt.Println("\n-- 4. the learned state survives a restart --")
	var buf bytes.Buffer
	if err := eng.ExportFeedback(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   exported %d bytes of feedback state\n", buf.Len())

	eng2 := pagefeedback.New(pagefeedback.DefaultConfig())
	if _, err := datagen.BuildSynthetic(eng2, 100000, 1); err != nil {
		log.Fatal(err)
	}
	n, err := eng2.ImportFeedback(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   fresh engine imported %d entries; plan for the similar query:\n", n)
	out, err = eng2.Explain(similar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(indent(out))
}

func indent(s string) string {
	out := ""
	for _, line := range bytes.Split([]byte(s), []byte("\n")) {
		if len(line) > 0 {
			out += "   " + string(line) + "\n"
		}
	}
	return out
}
