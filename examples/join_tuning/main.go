// Join tuning: the §IV scenario. An orders ⋈ lineitems join runs as a Hash
// Join; whether Index Nested Loops would be cheaper depends on how many
// distinct lineitems pages the join key actually touches — a quantity the
// optimizer's Mackert-Lohman model badly overestimates when both tables are
// clustered by time. The bit-vector filter built during the hash join's
// build phase lets the engine measure the true count from the probe-side
// scan, and feeding it back flips the join method.
package main

import (
	"fmt"
	"log"
	"strings"

	"pagefeedback"
)

func main() {
	eng := buildSalesDB()

	// Last week's orders joined to their lineitems. Both tables are
	// clustered by id sequence (time), so the matching lineitems rows sit
	// on a handful of contiguous pages.
	const query = "SELECT COUNT(lineitems.pad) FROM lineitems, orders " +
		"WHERE orders.odate >= '2007-05-27' AND orders.oid = lineitems.oid"

	res, err := eng.Query(query, &pagefeedback.RunOptions{
		MonitorAll:     true,
		SampleFraction: 1.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan P:  %v (simulated), %d result rows counted\n",
		res.SimulatedTime, res.Rows[0][0].Int)
	for i, x := range res.Stats.DPC {
		if res.DPC[i].Request.Join && res.DPC[i].Mechanism != pagefeedback.MechUnsatisfiable {
			fmt.Printf("join DPC on %s via %s: estimated %d pages, observed %d\n",
				x.Table, res.DPC[i].Mechanism, x.Estimated, x.Actual)
		}
	}

	eng.ApplyFeedback(res)
	res2, err := eng.Query(query, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan P': %v (simulated)\n", res2.SimulatedTime)
	fmt.Printf("speedup: %.0f%%\n",
		100*float64(res.SimulatedTime-res2.SimulatedTime)/float64(res.SimulatedTime))
}

func buildSalesDB() *pagefeedback.Engine {
	eng := pagefeedback.New(pagefeedback.DefaultConfig())

	orders := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "oid", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "odate", Kind: pagefeedback.KindDate},
	)
	if _, err := eng.CreateClusteredTable("orders", orders, []string{"oid"}); err != nil {
		log.Fatal(err)
	}
	const nOrders = 20000
	orows := make([]pagefeedback.Row, nOrders)
	for i := 0; i < nOrders; i++ {
		orows[i] = pagefeedback.Row{
			pagefeedback.Int64(int64(i)),
			pagefeedback.Date(int64(13000 + i/30)), // 30 orders/day
		}
	}
	if err := eng.Load("orders", orows); err != nil {
		log.Fatal(err)
	}

	lineitems := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "lid", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "oid", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "pad", Kind: pagefeedback.KindString},
	)
	if _, err := eng.CreateClusteredTable("lineitems", lineitems, []string{"lid"}); err != nil {
		log.Fatal(err)
	}
	pad := strings.Repeat("l", 60)
	const perOrder = 4
	lrows := make([]pagefeedback.Row, 0, nOrders*perOrder)
	for i := 0; i < nOrders; i++ {
		for j := 0; j < perOrder; j++ {
			lrows = append(lrows, pagefeedback.Row{
				pagefeedback.Int64(int64(i*perOrder + j)),
				pagefeedback.Int64(int64(i)), // lineitems cluster with their order
				pagefeedback.Str(pad),
			})
		}
	}
	if err := eng.Load("lineitems", lrows); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.CreateIndex("ix_li_oid", "lineitems", "oid"); err != nil {
		log.Fatal(err)
	}
	if err := eng.Analyze("orders", "lineitems"); err != nil {
		log.Fatal(err)
	}
	return eng
}
