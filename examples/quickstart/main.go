// Quickstart: create a database, load a table whose date column correlates
// with the load order, run a query with distinct-page-count monitoring, and
// read the feedback — the smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"pagefeedback"
)

func main() {
	eng := pagefeedback.New(pagefeedback.DefaultConfig())

	// A sales table clustered on id. Orders arrive day by day, so shipdate
	// tracks the clustering order — exactly the situation where the
	// optimizer's analytical page-count model goes wrong (Example 1 of the
	// paper).
	schema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "id", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "shipdate", Kind: pagefeedback.KindDate},
		pagefeedback.Column{Name: "state", Kind: pagefeedback.KindString},
		pagefeedback.Column{Name: "pad", Kind: pagefeedback.KindString},
	)
	if _, err := eng.CreateClusteredTable("sales", schema, []string{"id"}); err != nil {
		log.Fatal(err)
	}

	const n = 50000
	states := []string{"CA", "WA", "OR", "NV"}
	pad := strings.Repeat("x", 60)
	rows := make([]pagefeedback.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = pagefeedback.Row{
			pagefeedback.Int64(int64(i)),
			pagefeedback.Date(int64(13000 + i/500)), // ~500 orders/day
			pagefeedback.Str(states[i%4]),
			pagefeedback.Str(pad),
		}
	}
	if err := eng.Load("sales", rows); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.CreateIndex("ix_shipdate", "sales", "shipdate"); err != nil {
		log.Fatal(err)
	}
	if err := eng.Analyze("sales"); err != nil {
		log.Fatal(err)
	}

	// Two days of orders: 1000 rows on ~13 contiguous pages — but the
	// optimizer assumes they are scattered across ~half the table, making
	// the index look 40x too expensive.
	const query = "SELECT COUNT(pad) FROM sales WHERE shipdate BETWEEN '2005-08-14' AND '2005-08-15'"
	res, err := eng.Query(query, &pagefeedback.RunOptions{MonitorAll: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", query)
	fmt.Printf("count = %d, simulated time = %v\n\n", res.Rows[0][0].Int, res.SimulatedTime)

	fmt.Println("distinct page counts from execution feedback:")
	for i, x := range res.Stats.DPC {
		fmt.Printf("  %s: estimated %d pages, actual %d pages (%s)\n",
			x.Expression, x.Estimated, x.Actual, res.DPC[i].Mechanism)
	}

	// Feed the observation back and run again: the plan flips to the index.
	eng.ApplyFeedback(res)
	res2, err := eng.Query(query, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter feedback: simulated time = %v (%.0f%% faster)\n",
		res2.SimulatedTime,
		100*float64(res.SimulatedTime-res2.SimulatedTime)/float64(res.SimulatedTime))
}
