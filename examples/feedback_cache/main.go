// Feedback cache: the §II-C integration with LEO-style feedback
// infrastructure. Observations of (expression, cardinality, distinct page
// count) persist in a cache keyed by the canonical predicate, so a later
// "session" — here, a fresh optimizer state — reuses them without
// re-monitoring, including for predicates written with conjuncts in a
// different order.
package main

import (
	"fmt"
	"log"
	"strings"

	"pagefeedback"
)

func main() {
	eng := buildDB()

	monitored := "SELECT COUNT(pad) FROM events WHERE etype = 3 AND day < '2006-02-23'"
	fmt.Println("session 1: run with monitoring and store the feedback")
	res, err := eng.Query(monitored, &pagefeedback.RunOptions{MonitorAll: true, SampleFraction: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	eng.ApplyFeedback(res)

	fmt.Printf("feedback cache now holds %d entries:\n", eng.FeedbackCache().Len())
	for _, e := range eng.FeedbackCache().Entries() {
		fmt.Printf("  %s | %-35s card=%-6d dpc=%-5d via %s (exact=%v)\n",
			e.Table, e.Predicate, e.Cardinality, e.DPC, e.Mechanism, e.Exact)
	}

	// Simulate a fresh session: injections gone, cache kept.
	eng.Optimizer().ClearInjections()

	// The same predicate, conjuncts reordered: the canonical cache key
	// still matches.
	reordered := "SELECT COUNT(pad) FROM events WHERE day < '2006-02-23' AND etype = 3"
	q, err := eng.ParseQuery(reordered)
	if err != nil {
		log.Fatal(err)
	}
	n := eng.InjectFromCache(q)
	fmt.Printf("\nsession 2: InjectFromCache found %d cached observation(s) for the reordered query\n", n)

	res2, err := eng.RunQuery(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-optimized run: %v simulated (was %v unaided)\n",
		res2.SimulatedTime, res.SimulatedTime)
}

func buildDB() *pagefeedback.Engine {
	eng := pagefeedback.New(pagefeedback.DefaultConfig())
	schema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "id", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "day", Kind: pagefeedback.KindDate},
		pagefeedback.Column{Name: "etype", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "pad", Kind: pagefeedback.KindString},
	)
	if _, err := eng.CreateClusteredTable("events", schema, []string{"id"}); err != nil {
		log.Fatal(err)
	}
	const n = 60000
	pad := strings.Repeat("e", 60)
	rows := make([]pagefeedback.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = pagefeedback.Row{
			pagefeedback.Int64(int64(i)),
			pagefeedback.Date(int64(13200 + i/400)), // events logged in day order
			pagefeedback.Int64(int64(i % 10)),
			pagefeedback.Str(pad),
		}
	}
	if err := eng.Load("events", rows); err != nil {
		log.Fatal(err)
	}
	for _, ix := range []struct{ name, col string }{
		{"ix_day", "day"}, {"ix_etype", "etype"},
	} {
		if _, err := eng.CreateIndex(ix.name, "events", ix.col); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Analyze("events"); err != nil {
		log.Fatal(err)
	}
	return eng
}
