// DBA diagnosis: the §II-C workflow. A nightly report query is slow; the
// DBA suspects the optimizer passed over a useful index. Monitoring the
// running plan reveals the page-count estimation error for each candidate
// index expression, the statistics-xml document records it, and injecting
// the fed-back counts produces the corrected plan a hint would force.
package main

import (
	"fmt"
	"log"
	"strings"

	"pagefeedback"
)

func main() {
	eng := buildInventoryDB()

	// The report: the last few weeks of receipts in one product category.
	// Both predicates have usable indexes; the optimizer's analytical model
	// says fetching through either index touches most of the table.
	const report = "SELECT COUNT(pad) FROM inventory WHERE received >= '2009-02-01' AND category = 17"

	fmt.Println("== step 1: run the slow report with monitoring on ==")
	res, err := eng.Query(report, &pagefeedback.RunOptions{
		MonitorAll:     true,
		SampleFraction: 0.10, // category=17 is not a prefix: page sampling bounds the cost
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan P executed in (simulated) %v, count = %d\n\n",
		res.SimulatedTime, res.Rows[0][0].Int)

	fmt.Println("== step 2: inspect estimated vs actual page counts ==")
	for i, x := range res.Stats.DPC {
		verdict := "ok"
		switch {
		case res.DPC[i].Mechanism == pagefeedback.MechUnsatisfiable:
			verdict = "not observable from this plan"
		case x.Actual > 0 && x.Estimated > 3*x.Actual:
			verdict = fmt.Sprintf("OVERESTIMATED %dx", x.Estimated/x.Actual)
		}
		fmt.Printf("  %-45s est=%6d act=%6d  [%s]  %s\n",
			x.Expression, x.Estimated, x.Actual, res.DPC[i].Mechanism, verdict)
	}

	// The statistics-xml document is what a tuning tool would consume.
	xmlDoc, err := pagefeedback.MarshalStats(res.Stats)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(statistics xml document: %d bytes, %d PageCount entries)\n\n",
		len(xmlDoc), len(res.Stats.DPC))

	fmt.Println("== step 3: re-optimize with the fed-back page counts ==")
	eng.ApplyFeedback(res)
	res2, err := eng.Query(report, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan P' executed in (simulated) %v\n", res2.SimulatedTime)
	fmt.Printf("speedup (T-T')/T = %.0f%%\n",
		100*float64(res.SimulatedTime-res2.SimulatedTime)/float64(res.SimulatedTime))
	fmt.Println("\nthe DBA can now force P' with a plan hint, or leave the injected")
	fmt.Println("feedback in place so future compilations of this predicate use it.")
}

// buildInventoryDB loads an inventory table where `received` tracks the
// clustered load order (goods logged as they arrive) while `category` is
// scattered.
func buildInventoryDB() *pagefeedback.Engine {
	eng := pagefeedback.New(pagefeedback.DefaultConfig())
	schema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "id", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "received", Kind: pagefeedback.KindDate},
		pagefeedback.Column{Name: "category", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "pad", Kind: pagefeedback.KindString},
	)
	if _, err := eng.CreateClusteredTable("inventory", schema, []string{"id"}); err != nil {
		log.Fatal(err)
	}
	const n = 80000
	pad := strings.Repeat("i", 60)
	rows := make([]pagefeedback.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = pagefeedback.Row{
			pagefeedback.Int64(int64(i)),
			pagefeedback.Date(int64(13500 + i/100)),               // 100 receipts/day
			pagefeedback.Int64(int64((i * 2654435761 >> 8) % 40)), // scattered categories
			pagefeedback.Str(pad),
		}
	}
	if err := eng.Load("inventory", rows); err != nil {
		log.Fatal(err)
	}
	for _, ix := range []struct{ name, col string }{
		{"ix_received", "received"},
		{"ix_category", "category"},
	} {
		if _, err := eng.CreateIndex(ix.name, "inventory", ix.col); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Analyze("inventory"); err != nil {
		log.Fatal(err)
	}
	return eng
}
