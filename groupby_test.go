package pagefeedback

import (
	"strings"
	"testing"
)

func buildGroupDB(t *testing.T) *Engine {
	t.Helper()
	eng := New(DefaultConfig())
	schema := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "state", Kind: KindString},
		Column{Name: "amount", Kind: KindInt},
	)
	if _, err := eng.CreateClusteredTable("sales", schema, []string{"id"}); err != nil {
		t.Fatal(err)
	}
	states := []string{"AZ", "CA", "NV", "WA"}
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{Int64(int64(i)), Str(states[i%4]), Int64(int64(i % 10))}
	}
	if err := eng.Load("sales", rows); err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze("sales"); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestGroupByCount(t *testing.T) {
	eng := buildGroupDB(t)
	res, err := eng.Query("SELECT state, COUNT(*) FROM sales GROUP BY state", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d groups", len(res.Rows))
	}
	// Output is in group order: AZ, CA, NV, WA; 250 each.
	wantStates := []string{"AZ", "CA", "NV", "WA"}
	for i, row := range res.Rows {
		if row[0].Str != wantStates[i] || row[1].Int != 250 {
			t.Errorf("group %d = %v", i, row)
		}
	}
}

func TestGroupBySumWithWhereAndLimit(t *testing.T) {
	eng := buildGroupDB(t)
	res, err := eng.Query(
		"SELECT state, SUM(amount) FROM sales WHERE id < 100 GROUP BY state LIMIT 2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d groups", len(res.Rows))
	}
	// Rows 0..99: AZ gets ids 0,4,8,... amounts (i%10). Compute expected.
	sum := map[string]int64{}
	states := []string{"AZ", "CA", "NV", "WA"}
	for i := 0; i < 100; i++ {
		sum[states[i%4]] += int64(i % 10)
	}
	if res.Rows[0][0].Str != "AZ" || res.Rows[0][1].Int != sum["AZ"] {
		t.Errorf("AZ group = %v, want sum %d", res.Rows[0], sum["AZ"])
	}
	if res.Rows[1][0].Str != "CA" || res.Rows[1][1].Int != sum["CA"] {
		t.Errorf("CA group = %v, want sum %d", res.Rows[1], sum["CA"])
	}
}

func TestGroupByMinMax(t *testing.T) {
	eng := buildGroupDB(t)
	res, err := eng.Query("SELECT state, MAX(amount) FROM sales GROUP BY state", nil)
	if err != nil {
		t.Fatal(err)
	}
	// amount = i%10 with i ≡ groupIdx (mod 4): AZ/NV see only even
	// amounts (max 8), CA/WA see odd (max 9).
	wantMax := []int64{8, 9, 8, 9}
	for i, row := range res.Rows {
		if row[1].Int != wantMax[i] {
			t.Errorf("max for %v = %d, want %d", row[0], row[1].Int, wantMax[i])
		}
	}
	res, err = eng.Query("SELECT state, MIN(id) FROM sales GROUP BY state", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Min id per state: AZ=0, CA=1, NV=2, WA=3.
	for i, row := range res.Rows {
		if row[1].Int != int64(i) {
			t.Errorf("min id for %s = %d, want %d", row[0].Str, row[1].Int, i)
		}
	}
}

func TestGroupByErrors(t *testing.T) {
	eng := buildGroupDB(t)
	for _, sql := range []string{
		"SELECT state, COUNT(*) FROM sales",                        // agg in list, no GROUP BY
		"SELECT state, COUNT(*) FROM sales GROUP BY amount",        // mismatched group col
		"SELECT state, amount, COUNT(*) FROM sales GROUP BY state", // two non-agg cols
		"SELECT state, MIN(state) FROM sales GROUP BY state",       // min over string
	} {
		if _, err := eng.Query(sql, nil); err == nil {
			t.Errorf("%q succeeded, want error", sql)
		}
	}
}

func TestGroupByMonitoredAndExplained(t *testing.T) {
	eng := buildGroupDB(t)
	if _, err := eng.CreateIndex("ix_state", "sales", "state"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query("SELECT state, COUNT(*) FROM sales WHERE id < 500 GROUP BY state",
		&RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	out, err := eng.Explain("SELECT state, COUNT(*) FROM sales GROUP BY state")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "GroupAgg(state, COUNT(*))") {
		t.Errorf("explain:\n%s", out)
	}
}
