GO ?= go

.PHONY: all vet build test race bench profile

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench 'BenchmarkThroughput|BenchmarkScanAlloc|BenchmarkPoolContention' -benchmem -run xxx .

# Profile the hot path: runs the parallel throughput benchmark under the CPU
# and heap profilers, then prints the top CPU consumers. Open the interactive
# views with `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) test -bench BenchmarkThroughput -benchtime 5s -run xxx \
		-cpuprofile cpu.prof -memprofile mem.prof .
	$(GO) tool pprof -top -nodecount 15 cpu.prof
