GO ?= go

.PHONY: all vet build test race bench profile fuzz-smoke

all: vet build test

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/dbvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench 'BenchmarkThroughput|BenchmarkScanAlloc|BenchmarkPoolContention' -benchmem -run xxx .

# Profile the hot path: runs the parallel throughput benchmark under the CPU
# and heap profilers, then prints the top CPU consumers. Open the interactive
# views with `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) test -bench BenchmarkThroughput -benchtime 5s -run xxx \
		-cpuprofile cpu.prof -memprofile mem.prof .
	$(GO) tool pprof -top -nodecount 15 cpu.prof

# Brief fuzzing pass over the row/key codecs and the SQL parser: a smoke
# check suitable for CI, not a soak. Corpus finds accumulate in the build
# cache and testdata/fuzz.
fuzz-smoke:
	$(GO) test ./internal/tuple -run xxx -fuzz FuzzTupleDecode -fuzztime 10s
	$(GO) test ./internal/tuple -run xxx -fuzz FuzzKeyCodec -fuzztime 10s
	$(GO) test ./internal/sql -run xxx -fuzz FuzzParse -fuzztime 10s
