GO ?= go

.PHONY: all vet build test race

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
