GO ?= go

.PHONY: all vet vet-force build test race bench profile fuzz-smoke chaos cover

all: vet build test

# The stamp file short-circuits repeat runs: when no tracked source is newer
# than the last clean vet, both checkers are skipped (<2s). Any .go file,
# the Makefile, or go.mod being newer invalidates the stamp; `make vet-force`
# or deleting .vetstamp forces a full run.
VET_STAMP := .vetstamp

vet:
	@if [ -f $(VET_STAMP) ] && \
	   [ -z "$$(find . -name '*.go' -newer $(VET_STAMP) -not -path './.git/*' -print -quit)" ] && \
	   [ -z "$$(find Makefile go.mod -newer $(VET_STAMP) -print -quit)" ]; then \
		echo "vet: up to date (delete $(VET_STAMP) or run make vet-force to re-run)"; \
	else \
		$(GO) vet ./... && $(GO) run ./cmd/dbvet ./... && touch $(VET_STAMP); \
	fi

vet-force:
	@rm -f $(VET_STAMP)
	$(GO) vet ./...
	$(GO) run ./cmd/dbvet ./...
	@touch $(VET_STAMP)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The deterministic fault-schedule sweep plus the overload stress tests,
# always under the race detector: every schedule runs the real engine
# serially and in parallel, so a pass means typed errors, zero pin leaks,
# zero goroutine leaks, and an unpoisoned feedback cache across the whole
# fault matrix.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/
	$(GO) test -race -count=1 -run 'TestOverload' .

# BENCH_STAMP labels this run's entry in the BENCH_throughput.json trajectory;
# it defaults to the HEAD commit date so re-runs at the same commit are
# recognizable. Override with BENCH_STAMP=... for ad-hoc labels.
BENCH_STAMP ?= $(shell git log -1 --format=%cI 2>/dev/null || date -u +%Y-%m-%dT%H:%M:%SZ)

bench:
	BENCH_STAMP=$(BENCH_STAMP) $(GO) test \
		-bench 'BenchmarkThroughput|BenchmarkScanAlloc|BenchmarkPoolContention|BenchmarkParallelScan|BenchmarkParallelHashJoin|BenchmarkPreparedThroughput|BenchmarkPlanCache|BenchmarkVectorized|BenchmarkTraceOverhead' \
		-benchmem -run xxx .

# Repo-wide coverage with a floor. The merged profile (-coverpkg=./...)
# credits cross-package coverage — engine tests exercising internal/exec
# count for internal/exec — which is the honest number for a codebase whose
# tests are deliberately end-to-end. The per-package summary is computed
# from the raw profile (covered/total statements per directory), not by
# averaging per-function percentages. The floor is 75%; measured coverage
# at the time the gate was added was 84.1%.
COVER_FLOOR := 75.0

cover:
	$(GO) test -count=1 -coverprofile=cover.out -coverpkg=./... ./...
	@awk 'NR>1 { cnt[$$1] = $$2; if ($$3 > 0) hit[$$1] = 1 } \
		END { for (b in cnt) { split(b, a, ":"); n = split(a[1], p, "/"); \
			pkg = ""; for (i = 1; i < n; i++) pkg = pkg p[i] "/"; \
			stmts[pkg] += cnt[b]; if (hit[b]) cov[pkg] += cnt[b] } \
		for (k in stmts) printf "%-55s %5.1f%%  (%d/%d stmts)\n", \
			k, 100 * cov[k] / stmts[k], cov[k], stmts[k] }' cover.out \
		| sort > coverage_summary.txt
	@cat coverage_summary.txt
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(COVER_FLOOR)) }" || \
		{ echo "FAIL: total coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Profile the hot path: runs the parallel throughput benchmark under the CPU
# and heap profilers, then prints the top CPU consumers. Open the interactive
# views with `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) test -bench BenchmarkThroughput -benchtime 5s -run xxx \
		-cpuprofile cpu.prof -memprofile mem.prof .
	$(GO) tool pprof -top -nodecount 15 cpu.prof

# Brief fuzzing pass over the row/key codecs, the SQL parser, the batch
# predicate evaluator, and the lint CFG builder: a smoke check suitable for
# CI, not a soak. Corpus finds
# accumulate in the build cache and testdata/fuzz.
fuzz-smoke:
	$(GO) test ./internal/tuple -run xxx -fuzz FuzzTupleDecode -fuzztime 10s
	$(GO) test ./internal/tuple -run xxx -fuzz FuzzKeyCodec -fuzztime 10s
	$(GO) test ./internal/sql -run xxx -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/expr -run xxx -fuzz FuzzEvalBatch -fuzztime 10s
	$(GO) test ./internal/expr -run xxx -fuzz FuzzEvalRaw -fuzztime 10s
	$(GO) test ./internal/lint -run xxx -fuzz FuzzCFGBuild -fuzztime 10s
