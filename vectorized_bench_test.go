package pagefeedback_test

// BenchmarkVectorizedScan, BenchmarkVectorizedFilter, and
// BenchmarkVectorizedHashJoin measure the batch-at-a-time executor
// (RunOptions.Vectorized, the default) against the forced row-at-a-time path
// on a warm cache, single-core, where the difference is pure per-row
// dispatch overhead: one virtual Next call, context poll, and CPU charge per
// row versus one per ~page-sized batch with a selection vector.
//
//	go test -bench BenchmarkVectorized -run xxx .
//
// Before timing, each benchmark runs its query monitored under both modes
// and requires identical rows and byte-identical DPC feedback — the batch
// path's correctness contract — and records that, plus the per-mode timings
// and the speedup, in BENCH_vectorized.json.

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"pagefeedback"
	"pagefeedback/internal/plan"
)

// assertVecParity runs the query monitored under the row and batch executors
// and requires identical rows and DPC feedback; it returns the executed plan.
func assertVecParity(b *testing.B, eng *pagefeedback.Engine, sql string) plan.Node {
	b.Helper()
	mon := func(mode pagefeedback.VecMode) *pagefeedback.Result {
		res, err := eng.Query(sql, &pagefeedback.RunOptions{
			MonitorAll: true, SampleFraction: 0.25, WarmCache: true, Vectorized: mode,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	row, vec := mon(pagefeedback.VecOff), mon(pagefeedback.VecOn)
	if !reflect.DeepEqual(row.Rows, vec.Rows) {
		b.Fatalf("rows differ between the row and batch executors:\n  row %v\n  vec %v", row.Rows, vec.Rows)
	}
	if !reflect.DeepEqual(row.DPC, vec.DPC) {
		b.Fatalf("DPC feedback differs between the row and batch executors:\n  row %+v\n  vec %+v",
			row.DPC, vec.DPC)
	}
	if vec.Stats.Runtime.BatchesProcessed == 0 {
		b.Fatalf("vectorized run processed no batches — nothing to measure")
	}
	return vec.Plan
}

// benchVecModes times the query under each executor and returns secs/op.
// The two modes alternate inside one measurement loop — machine-speed drift
// between two back-to-back sub-benchmarks would land on one mode only and
// skew the ratio, while interleaved it cancels out.
func benchVecModes(b *testing.B, eng *pagefeedback.Engine, sql string) (rowSecs, vecSecs float64) {
	b.Run("paths", func(b *testing.B) {
		run := func(m pagefeedback.VecMode) time.Duration {
			start := time.Now()
			if _, err := eng.Query(sql, &pagefeedback.RunOptions{
				WarmCache: true, Vectorized: m,
			}); err != nil {
				b.Fatal(err)
			}
			return time.Since(start)
		}
		var rowT, vecT time.Duration
		for i := 0; i < b.N; i++ {
			rowT += run(pagefeedback.VecOff)
			vecT += run(pagefeedback.VecOn)
		}
		rowSecs = rowT.Seconds() / float64(b.N)
		vecSecs = vecT.Seconds() / float64(b.N)
		b.ReportMetric(rowSecs*1e9, "ns/op-row")
		b.ReportMetric(vecSecs*1e9, "ns/op-vec")
	})
	return rowSecs, vecSecs
}

// recordVectorizedBench appends one benchmark's headline numbers to the
// BENCH_vectorized.json trajectory.
func recordVectorizedBench(b *testing.B, name string, rowSecs, vecSecs float64) {
	speedup := 0.0
	if vecSecs > 0 {
		speedup = rowSecs / vecSecs
	}
	b.ReportMetric(speedup, "speedup")
	writeBenchJSON(b, "BENCH_vectorized.json", name, map[string]any{
		"secs_per_op_row":    rowSecs,
		"secs_per_op_vec":    vecSecs,
		"speedup":            speedup,
		"feedback_identical": true, // asserted before timing; the run fails otherwise
	})
}

// BenchmarkVectorizedScan: a filter-heavy predicate scan (half the table
// passes), so the measurement is batch delivery over a pushed-down
// predicate — the scan hands page batches up under a selection vector
// instead of flattening survivors row by row, and rows the raw predicate
// rejects are never decoded.
func BenchmarkVectorizedScan(b *testing.B) {
	eng := buildBenchEngine(b, 64000)
	sql := "SELECT COUNT(w) FROM tb WHERE v < 32000"
	assertVecParity(b, eng, sql)
	row, vec := benchVecModes(b, eng, sql)
	recordVectorizedBench(b, "BenchmarkVectorizedScan", row, vec)
}

// BenchmarkVectorizedFilter: a highly selective scan (one row in eight
// survives), where the selection machinery does maximal work — seven of
// every eight rows are judged on their encoded bytes and dropped without
// ever being materialized as values.
func BenchmarkVectorizedFilter(b *testing.B) {
	eng := buildBenchEngine(b, 64000)
	sql := "SELECT COUNT(w) FROM tb WHERE v < 8000"
	assertVecParity(b, eng, sql)
	row, vec := benchVecModes(b, eng, sql)
	recordVectorizedBench(b, "BenchmarkVectorizedFilter", row, vec)
}

// BenchmarkVectorizedHashJoin: an unindexed-fk join, so the probe side is a
// full scan feeding the hash-join probe — the batch path hashes each probe
// batch's keys in one sweep before probing.
func BenchmarkVectorizedHashJoin(b *testing.B) {
	eng := buildParallelBenchEngine(b, 120000)
	sql := "SELECT COUNT(pad) FROM fdim, fbig WHERE fdim.val < 400 AND fdim.id = fbig.fk"
	p := assertVecParity(b, eng, sql)
	if !strings.Contains(plan.Format(p), "HashJoin") {
		b.Fatalf("expected a hash join plan, got:\n%s", plan.Format(p))
	}
	row, vec := benchVecModes(b, eng, sql)
	recordVectorizedBench(b, "BenchmarkVectorizedHashJoin", row, vec)
}
