package pagefeedback

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// overloadTestDB is buildTestDB with admission control switched on.
func overloadTestDB(t *testing.T, n, maxConcurrent int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxConcurrent = maxConcurrent
	return overloadTestDBWith(t, cfg, n)
}

func overloadTestDBWith(t *testing.T, cfg Config, n int) *Engine {
	t.Helper()
	eng := New(cfg)
	schema := NewSchema(
		Column{Name: "c1", Kind: KindInt},
		Column{Name: "c2", Kind: KindInt},
		Column{Name: "c5", Kind: KindInt},
		Column{Name: "padding", Kind: KindString},
	)
	if _, err := eng.CreateClusteredTable("t", schema, []string{"c1"}); err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(21)).Perm(n)
	pad := strings.Repeat("z", 60)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int64(int64(i)), Int64(int64(i)), Int64(int64(perm[i])), Str(pad)}
	}
	if err := eng.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"c2", "c5"} {
		if _, err := eng.CreateIndex("ix_"+c, "t", c); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestOverloadStressBoundedConcurrency floods a MaxConcurrent=8 engine with
// 64 simultaneous monitored queries. With no queue bound and no deadlines
// there must be zero spurious failures: every query eventually runs, its
// rows and its DPC feedback byte-identical to a serial run, with its queue
// wait recorded and the gate's books balanced afterward.
func TestOverloadStressBoundedConcurrency(t *testing.T) {
	raiseProcs(t, 8)
	const limit = 8
	eng := overloadTestDB(t, 8000, limit)
	const sql = "SELECT COUNT(padding) FROM t WHERE c2 < 3000"
	opts := func() *RunOptions {
		// WarmCache: concurrent cold resets would fight over each other's
		// pinned pages; overload mode is a warm-pool regime by construction.
		return &RunOptions{MonitorAll: true, SampleFraction: 1.0, WarmCache: true}
	}
	serial, err := eng.Query(sql, opts())
	if err != nil {
		t.Fatal(err)
	}
	if serial.Rows[0][0].Int != 3000 {
		t.Fatalf("serial count = %d", serial.Rows[0][0].Int)
	}
	base := eng.AdmissionStats()

	const queries = 64
	var wg sync.WaitGroup
	results := make([]*Result, queries)
	errs := make([]error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Query(sql, opts())
		}(i)
	}
	wg.Wait()

	queued := 0
	for i := 0; i < queries; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d failed under overload: %v", i, errs[i])
		}
		res := results[i]
		if res.Rows[0][0].Int != 3000 {
			t.Errorf("query %d: count = %d", i, res.Rows[0][0].Int)
		}
		if !reflect.DeepEqual(res.DPC, serial.DPC) {
			t.Errorf("query %d: DPC feedback differs from serial run", i)
		}
		if res.Stats.Runtime.QueueWait > 0 {
			queued++
		}
		if res.Stats.Runtime.QueueWait > time.Minute {
			t.Errorf("query %d: unbounded queue wait %v", i, res.Stats.Runtime.QueueWait)
		}
	}
	if queued == 0 {
		t.Error("no query ever queued — the gate did not engage")
	}

	st := eng.AdmissionStats()
	if st.Limit != limit {
		t.Errorf("Limit = %d, want %d", st.Limit, limit)
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Errorf("gate not drained: %+v", st)
	}
	if got := st.Admitted - base.Admitted; got != queries {
		t.Errorf("Admitted grew by %d, want %d", got, queries)
	}
	if st.Rejected != base.Rejected || st.TimedOut != base.TimedOut {
		t.Errorf("spurious rejections/timeouts: %+v", st)
	}
	if st.PeakQueued > queries-limit {
		t.Errorf("PeakQueued = %d exceeds the possible maximum %d", st.PeakQueued, queries-limit)
	}
	if st.WaitTime <= 0 {
		t.Error("no cumulative queue wait recorded")
	}
}

// TestOverloadQueueDeadline: a queued query whose deadline expires before a
// slot frees up must fail with ErrKindOverload, quickly, without disturbing
// the queries that hold the slots.
func TestOverloadQueueDeadline(t *testing.T) {
	eng := overloadTestDB(t, 4000, 1)

	// Occupy the single slot with a slow query (parallel scan of everything).
	release := make(chan struct{})
	hold := make(chan struct{})
	go func() {
		defer close(release)
		// Hold the slot by acquiring it directly; a real query would do the
		// same but without a controllable duration.
		if _, _, err := eng.gate.acquire(context.Background(), 0); err != nil {
			t.Error(err)
			return
		}
		close(hold)
		time.Sleep(50 * time.Millisecond)
		eng.gate.release()
	}()
	<-hold

	start := time.Now()
	_, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 100",
		&RunOptions{WarmCache: true, Timeout: 5 * time.Millisecond})
	waited := time.Since(start)
	qe := asQueryError(t, err)
	if qe.Kind != ErrKindOverload {
		t.Fatalf("kind = %q (%v), want overload", qe.Kind, err)
	}
	if waited > time.Second {
		t.Errorf("queued query took %v to give up on a 5ms deadline", waited)
	}
	<-release

	// The slot is free again: the same query must now succeed.
	if _, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 100",
		&RunOptions{WarmCache: true}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestOverloadQueueFullRejection: with a bounded queue, arrivals beyond the
// bound are rejected immediately with ErrKindOverload.
func TestOverloadQueueFullRejection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.MaxQueueDepth = 1
	eng := overloadTestDBWith(t, cfg, 500)

	if _, _, err := eng.gate.acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	queuedErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, _, err := eng.gate.acquire(ctx, 0)
		queuedErr <- err
		if err == nil {
			eng.gate.release()
		}
	}()
	waitForQueued(t, eng)

	// Queue holds its one waiter; the next arrival must bounce.
	_, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 10",
		&RunOptions{WarmCache: true})
	qe := asQueryError(t, err)
	if qe.Kind != ErrKindOverload {
		t.Fatalf("kind = %q (%v), want overload (queue full)", qe.Kind, err)
	}
	st := eng.AdmissionStats()
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	// Release the held slot: the legitimate waiter must get it, undisturbed
	// by the rejection that happened behind it.
	eng.gate.release()
	if err := <-queuedErr; err != nil {
		t.Errorf("legitimate waiter was disturbed: %v", err)
	}
}

// TestOverloadMemBudget: the per-query memory budget aborts a hash-heavy
// query with ErrKindMemory while a budgeted-but-sufficient run succeeds and
// reports its peak.
func TestOverloadMemBudget(t *testing.T) {
	eng := overloadTestDB(t, 8000, 0)
	const sql = "SELECT c2, COUNT(*) FROM t WHERE c1 < 4000 GROUP BY c2"

	_, err := eng.Query(sql, &RunOptions{MemBudget: 4 << 10})
	qe := asQueryError(t, err)
	if qe.Kind != ErrKindMemory {
		t.Fatalf("kind = %q (%v), want memory", qe.Kind, err)
	}

	res, err := eng.Query(sql, &RunOptions{MemBudget: 64 << 20})
	if err != nil {
		t.Fatalf("generous budget: %v", err)
	}
	peak := res.Stats.Runtime.MemPeakBytes
	if peak <= 0 || peak > 64<<20 {
		t.Errorf("MemPeakBytes = %d", peak)
	}
	if n := eng.Pool().Pinned(); n != 0 {
		t.Errorf("%d pins leaked after memory abort", n)
	}
}

func asQueryError(t *testing.T, err error) *QueryError {
	t.Helper()
	if err == nil {
		t.Fatal("query succeeded, expected a typed failure")
	}
	qe, ok := err.(*QueryError)
	if !ok {
		t.Fatalf("error is %T (%v), want *QueryError", err, err)
	}
	return qe
}

// waitForQueued polls until the engine's gate reports one queued waiter.
func waitForQueued(t *testing.T, eng *Engine) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for eng.AdmissionStats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
}
