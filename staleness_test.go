package pagefeedback

import (
	"strings"
	"testing"
)

// TestFeedbackInvalidatedByDataChange: page counts observed against old
// data must not influence plans after the table changes — stale feedback
// carries false confidence.
func TestFeedbackInvalidatedByDataChange(t *testing.T) {
	eng := New(DefaultConfig())
	schema := NewSchema(
		Column{Name: "k", Kind: KindInt},
		Column{Name: "pad", Kind: KindString},
	)
	if _, err := eng.CreateHeapTable("h", schema); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("s", 60)
	mkRows := func(n, base int) []Row {
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{Int64(int64(base + i)), Str(pad)}
		}
		return rows
	}
	if err := eng.Load("h", mkRows(20000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateIndex("ix_k", "h", "k"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze("h"); err != nil {
		t.Fatal(err)
	}

	const q = "SELECT COUNT(pad) FROM h WHERE k < 300"
	res, err := eng.Query(q, &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)
	if eng.FeedbackCache().Len() == 0 {
		t.Fatal("no feedback stored")
	}
	pq, _ := eng.ParseQuery(q)
	eng.Optimizer().ClearInjections()
	if n := eng.InjectFromCache(pq); n == 0 {
		t.Fatal("cache injection failed pre-mutation")
	}
	eng.Optimizer().ClearInjections()

	// Append more data: every learned statistic for h must be dropped.
	if err := eng.Load("h", mkRows(20000, 20000)); err != nil {
		t.Fatal(err)
	}
	if eng.FeedbackCache().Len() != 0 {
		t.Errorf("cache still holds %d entries after reload", eng.FeedbackCache().Len())
	}
	if n := eng.InjectFromCache(pq); n != 0 {
		t.Errorf("InjectFromCache injected %d stale entries", n)
	}
	if _, ok := eng.Optimizer().DPCHistogram("h", "k"); ok {
		t.Error("stale histogram survived the reload")
	}
	out, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "analytical (Yao)") {
		t.Errorf("explain after reload should be analytical:\n%s", out)
	}
}

// TestStaleCacheEntryVersionCheck: even when an entry survives in the
// cache (e.g. imported from a dump taken against other data), a table-
// version mismatch stops InjectFromCache from using it.
func TestStaleCacheEntryVersionCheck(t *testing.T) {
	eng := buildTestDB(t, 10000)
	const q = "SELECT COUNT(padding) FROM t WHERE c2 < 100"
	res, err := eng.Query(q, &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)
	eng.Optimizer().ClearInjections()

	// Bump the table version behind the cache's back (as direct catalog
	// mutation would).
	tab, _ := eng.Catalog().Table("t")
	if _, err := tab.Insert(Row{Int64(1 << 40), Int64(1 << 40), Int64(1 << 40), Str("x")}); err != nil {
		t.Fatal(err)
	}
	pq, _ := eng.ParseQuery(q)
	if n := eng.InjectFromCache(pq); n != 0 {
		t.Errorf("version-mismatched entry injected (%d)", n)
	}
}
