package pagefeedback

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"pagefeedback/internal/exec"
	"pagefeedback/internal/storage"
)

// ErrorKind classifies what went wrong during a query.
type ErrorKind string

const (
	// ErrKindCancelled: the caller's context was cancelled mid-query.
	ErrKindCancelled ErrorKind = "cancelled"
	// ErrKindTimeout: the query ran past its deadline (RunOptions.Timeout
	// or a deadline on the caller's context).
	ErrKindTimeout ErrorKind = "timeout"
	// ErrKindPanic: an internal panic (corrupt cell decode, comparator kind
	// mismatch, ...) was recovered at a panic boundary. The engine remains
	// usable; Op names the failing operator when the panic surfaced inside
	// one.
	ErrKindPanic ErrorKind = "panic"
	// ErrKindStorage: a storage-layer fault — hard read fault, torn page
	// (checksum mismatch), unrecovered transient fault, write fault, or
	// buffer-pool exhaustion.
	ErrKindStorage ErrorKind = "storage"
	// ErrKindOverload: admission control turned the query away — the wait
	// queue was full, or the query's deadline expired while it was still
	// queued. The query never started executing; retrying later is safe.
	ErrKindOverload ErrorKind = "overload"
	// ErrKindMemory: the query exceeded its per-query memory budget
	// (RunOptions.MemBudget) and was aborted. The budget bounds the bytes
	// pinned by blocking operators (hash-join build sides, sorts, group
	// states, parallel-scan arenas, RID sets).
	ErrKindMemory ErrorKind = "memory"
	// ErrKindExec: any other execution error.
	ErrKindExec ErrorKind = "exec"
)

// QueryError is the typed error all execution failures surface as. It wraps
// the underlying cause (Unwrap), so errors.Is against sentinel errors such
// as storage.ErrChecksum or context.Canceled keeps working through it.
type QueryError struct {
	// Kind classifies the failure.
	Kind ErrorKind
	// Op is the label of the operator the failure surfaced in, when known
	// (panics recovered at an operator boundary carry it).
	Op string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *QueryError) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("pagefeedback: query failed (%s, operator %s): %v", e.Kind, e.Op, e.Err)
	}
	return fmt.Sprintf("pagefeedback: query failed (%s): %v", e.Kind, e.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *QueryError) Unwrap() error { return e.Err }

// classifyQueryError wraps err in a *QueryError with the right kind. Errors
// that already are *QueryError pass through unchanged.
func classifyQueryError(err error) error {
	if err == nil {
		return nil
	}
	var qe *QueryError
	if errors.As(err, &qe) {
		return err
	}
	var op *exec.OperatorPanic
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &QueryError{Kind: ErrKindTimeout, Err: err}
	case errors.Is(err, context.Canceled):
		return &QueryError{Kind: ErrKindCancelled, Err: err}
	case errors.As(err, &op):
		return &QueryError{Kind: ErrKindPanic, Op: op.Op, Err: err}
	case errors.Is(err, exec.ErrMemBudget):
		return &QueryError{Kind: ErrKindMemory, Err: err}
	case errors.Is(err, storage.ErrChecksum),
		errors.Is(err, storage.ErrTransientFault),
		errors.Is(err, storage.ErrInjectedFault),
		errors.Is(err, storage.ErrInjectedWriteFault),
		errors.Is(err, storage.ErrPoolExhausted):
		return &QueryError{Kind: ErrKindStorage, Err: err}
	default:
		return &QueryError{Kind: ErrKindExec, Err: err}
	}
}

// recoverQueryPanic is the engine-level panic boundary: deferred by the
// Query entry points, it converts a panic escaping parsing, optimization,
// plan building, or execution into a *QueryError instead of crashing the
// process. The deferred recovery runs after all operator Close paths, so
// the engine stays usable for subsequent queries.
func recoverQueryPanic(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if err, ok := r.(error); ok {
		var op *exec.OperatorPanic
		if errors.As(err, &op) {
			*errp = &QueryError{Kind: ErrKindPanic, Op: op.Op, Err: err}
			return
		}
	}
	*errp = &QueryError{
		Kind: ErrKindPanic,
		Err:  fmt.Errorf("internal panic: %v\n%s", r, debug.Stack()),
	}
}
