package pagefeedback

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/exec"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/opt"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/sql"
)

// Plan cache: optimized plan templates keyed by (query shape, selectivity
// bucket), invalidated by feedback epochs.
//
// Every feedback mutation — ApplyFeedback, ImportFeedback, Analyze,
// InvalidateFeedback, explicit injections — bumps the affected table's epoch
// through the optimizer's invalidation hook, and DDL (CreateIndex, Load)
// bumps it directly. An entry snapshots the epochs of every table it touches
// BEFORE its plan is optimized, so an entry stored concurrently with a
// feedback mutation can only carry an already-stale epoch: a cached plan
// built from old statistics is never served after new feedback lands, it is
// re-optimized on next use. Constants enter the key only through the
// selectivity bucket (order of magnitude of the estimated selected
// fraction), so a template cached for a 0.1% predicate is not reused when
// the same shape selects half the table.

// defaultPlanCacheSize is the entry capacity used when Config.PlanCacheSize
// is zero.
const defaultPlanCacheSize = 256

// planCacheShards is the number of independently locked cache shards.
const planCacheShards = 8

// planEntry is one cached template. All fields are immutable after store
// except the CLOCK reference bit; the plan node in particular is shared by
// concurrent executions and must never be mutated (enforced by the dbvet
// planshare analyzer).
type planEntry struct {
	key  string
	node plan.Node        // optimized plan template
	skel *monitorSkeleton // prebuilt MonitorAll request shape
	cost time.Duration    // optimizer cost snapshot, for \stats
	slot int              // position in the shard's CLOCK ring

	globalEpoch int64
	tableEpochs map[string]int64 // lowercased table -> feedback epoch
	tableVers   map[string]int64 // lowercased table -> catalog version

	ref atomic.Bool // CLOCK reference bit
}

// planCacheShard holds one lock's worth of entries with CLOCK eviction.
type planCacheShard struct {
	mu      sync.Mutex
	entries map[string]*planEntry
	ring    []*planEntry
	hand    int
}

// planCache is the sharded, bounded plan template store.
type planCache struct {
	shards   [planCacheShards]planCacheShard
	perShard int

	hits          atomic.Int64
	misses        atomic.Int64
	stale         atomic.Int64
	evictions     atomic.Int64
	fallbacks     atomic.Int64
	invalidations atomic.Int64
}

// newPlanCache sizes the cache to hold about capacity entries.
func newPlanCache(capacity int) *planCache {
	per := (capacity + planCacheShards - 1) / planCacheShards
	if per < 1 {
		per = 1
	}
	c := &planCache{perShard: per}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*planEntry)
	}
	return c
}

// shardFor hashes the key to a shard (FNV-1a).
func (c *planCache) shardFor(key string) *planCacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%planCacheShards]
}

// lookup returns the entry for key, marking it recently used.
func (c *planCache) lookup(key string) (*planEntry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	ent, ok := s.entries[key]
	s.mu.Unlock()
	if ok {
		ent.ref.Store(true)
	}
	return ent, ok
}

// remove drops ent if it is still the entry stored under its key (a
// concurrent store may have replaced it).
func (c *planCache) remove(ent *planEntry) {
	s := c.shardFor(ent.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.entries[ent.key]
	if !ok || cur != ent {
		return
	}
	delete(s.entries, ent.key)
	// Leave a hole in the ring; the CLOCK hand treats nil slots as free.
	s.ring[ent.slot] = nil
}

// store inserts ent, replacing any entry under the same key and evicting by
// CLOCK when the shard is full.
func (c *planCache) store(ent *planEntry) {
	s := c.shardFor(ent.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[ent.key]; ok {
		ent.slot = old.slot
		s.ring[old.slot] = ent
		s.entries[ent.key] = ent
		return
	}
	// Fill a hole or grow up to capacity.
	for i, e := range s.ring {
		if e == nil {
			ent.slot = i
			s.ring[i] = ent
			s.entries[ent.key] = ent
			return
		}
	}
	if len(s.ring) < c.perShard {
		ent.slot = len(s.ring)
		s.ring = append(s.ring, ent)
		s.entries[ent.key] = ent
		return
	}
	// CLOCK eviction: sweep the hand, clearing reference bits, until an
	// unreferenced victim turns up. Bounded: after one full sweep every bit
	// is clear.
	for {
		victim := s.ring[s.hand]
		if victim.ref.CompareAndSwap(true, false) {
			s.hand = (s.hand + 1) % len(s.ring)
			continue
		}
		delete(s.entries, victim.key)
		ent.slot = s.hand
		s.ring[s.hand] = ent
		s.entries[ent.key] = ent
		s.hand = (s.hand + 1) % len(s.ring)
		c.evictions.Add(1)
		return
	}
}

// entryCount sums the live entries across shards.
func (c *planCache) entryCount() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// PlanCacheStats is a snapshot of the plan cache's counters.
type PlanCacheStats struct {
	// Hits is the number of queries served from a cached template.
	Hits int64
	// Misses is the number of queries that ran the full optimizer.
	Misses int64
	// Stale counts lookups that found an entry invalidated by a feedback
	// epoch or table-version change; the entry was dropped and re-optimized.
	Stale int64
	// Evictions counts entries displaced by CLOCK capacity eviction.
	Evictions int64
	// Fallbacks counts valid entries whose template could not be
	// instantiated for the new constants (treated as misses, not stored).
	Fallbacks int64
	// Invalidations counts feedback-epoch bumps (per-table or global).
	Invalidations int64
	// Entries is the current number of cached templates.
	Entries int
}

// PlanCacheStats returns the cache counters; the zero value when the cache
// is disabled.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	if e.plans == nil {
		return PlanCacheStats{}
	}
	return PlanCacheStats{
		Hits:          e.plans.hits.Load(),
		Misses:        e.plans.misses.Load(),
		Stale:         e.plans.stale.Load(),
		Evictions:     e.plans.evictions.Load(),
		Fallbacks:     e.plans.fallbacks.Load(),
		Invalidations: e.plans.invalidations.Load(),
		Entries:       e.plans.entryCount(),
	}
}

// bumpPlanEpoch invalidates cached plans that touch table ("" = all): the
// path DDL takes directly and the optimizer's invalidation hook takes for
// feedback mutations.
func (e *Engine) bumpPlanEpoch(table string) {
	if e.plans != nil {
		e.plans.invalidations.Add(1)
	}
	if table == "" {
		e.epochs.BumpAll()
	} else {
		e.epochs.Bump(table)
	}
}

// --- keys and validity --------------------------------------------------

// selBucket renders the order of magnitude of the predicate's estimated
// selected fraction. Two instances of one template share a cached plan only
// within a bucket: access-path choice is driven by selectivity, so a plan
// optimized for frac=1e-3 must not serve frac=0.5.
func (e *Engine) selBucket(table string, pred expr.Conjunction) string {
	if len(pred.Atoms) == 0 {
		return "all"
	}
	ts, ok := e.opt.TableStats(table)
	if !ok || ts.Rows == 0 {
		return "u"
	}
	// The analytic selectivity (histogram product, no feedback probes) is
	// deliberate: it is cheap enough for the per-execution hot path, and it
	// keeps a template's bucket stable as feedback accrues — learned page
	// counts change the cached plan through epoch invalidation, not by
	// silently migrating queries between buckets.
	frac := ts.Selectivity(pred)
	if frac <= 0 {
		return "-9"
	}
	b := int(math.Floor(math.Log10(frac)))
	if b < -9 {
		b = -9
	}
	if b > 0 {
		b = 0
	}
	return strconv.Itoa(b)
}

// planKey is the cache key: structural query shape plus the selectivity
// bucket of each predicate.
func (e *Engine) planKey(q *opt.Query) string {
	shape := q.TemplateKey
	if shape == "" {
		shape = sql.QueryKey(q)
	}
	key := shape + "#" + e.selBucket(q.Table, q.Pred)
	if q.IsJoin() {
		key += "#" + e.selBucket(q.Table2, q.Pred2)
	}
	return key
}

// epochSnapshot records the feedback epochs and catalog versions of every
// table the query touches. Callers snapshot BEFORE optimizing: feedback
// landing between the snapshot and the store leaves the entry with an old
// epoch, so it validates as stale and is never served.
func (e *Engine) epochSnapshot(q *opt.Query) (epochs, vers map[string]int64, global int64) {
	epochs = make(map[string]int64, 2)
	vers = make(map[string]int64, 2)
	add := func(t string) {
		lt := strings.ToLower(t)
		epochs[lt] = e.epochs.Table(t)
		vers[lt] = e.tableVersion(t)
	}
	add(q.Table)
	if q.IsJoin() {
		add(q.Table2)
	}
	return epochs, vers, e.epochs.Global()
}

// entryValid reports whether ent was optimized against the current feedback
// state and table contents.
func (e *Engine) entryValid(ent *planEntry) bool {
	if ent.globalEpoch != e.epochs.Global() {
		return false
	}
	for t, v := range ent.tableEpochs {
		if e.epochs.Table(t) != v {
			return false
		}
	}
	for t, v := range ent.tableVers {
		if e.tableVersion(t) != v {
			return false
		}
	}
	return true
}

// planForQuery resolves a plan for q: from the cache when a valid template
// exists (instantiated with q's constants, no optimizer call), otherwise by
// optimizing and storing the result as a new template. The returned skeleton
// is non-nil only on a hit.
func (e *Engine) planForQuery(q *opt.Query) (plan.Node, *monitorSkeleton, bool, error) {
	if e.plans == nil {
		n, err := e.PlanQuery(q)
		return n, nil, false, err
	}
	key := e.planKey(q)
	if ent, ok := e.plans.lookup(key); ok {
		if !e.entryValid(ent) {
			e.plans.remove(ent)
			e.plans.stale.Add(1)
		} else if inst, ok := e.instantiatePlan(ent.node, q); ok {
			e.plans.hits.Add(1)
			return inst, ent.skel, true, nil
		} else {
			e.plans.fallbacks.Add(1)
		}
	}
	e.plans.misses.Add(1)
	epochs, vers, global := e.epochSnapshot(q)
	node, err := e.PlanQuery(q)
	if err != nil {
		return nil, nil, false, err
	}
	e.plans.store(&planEntry{
		key: key, node: node, skel: newMonitorSkeleton(q), cost: node.Est().Cost,
		globalEpoch: global, tableEpochs: epochs, tableVers: vers,
	})
	return node, nil, false, nil
}

// --- template instantiation ---------------------------------------------

// instantiatePlan rebuilds the template plan with q's predicate constants:
// fresh nodes, rebound predicates, recomputed index ranges — no optimizer
// call and no mutation of the shared template. Returns ok=false on any
// mismatch (the caller falls back to a full optimize).
func (e *Engine) instantiatePlan(tmpl plan.Node, q *opt.Query) (plan.Node, bool) {
	predFor := func(tab *catalog.Table) expr.Conjunction {
		if equalFold(tab.Name, q.Table) {
			return q.Pred
		}
		return q.Pred2
	}
	var walk func(n plan.Node) (plan.Node, bool)
	walk = func(n plan.Node) (plan.Node, bool) {
		switch t := n.(type) {
		case *plan.Scan:
			pred := predFor(t.Tab)
			bound, err := pred.Bind(t.Tab.Schema)
			if err != nil {
				return nil, false
			}
			var clusterRange *expr.KeyRange
			if t.ClusterRange != nil {
				ranges, _, ok := expr.IndexRanges(pred, t.Tab.ClusterCols)
				if !ok || len(ranges) != 1 {
					return nil, false
				}
				clusterRange = &ranges[0]
			}
			return &plan.Scan{Tab: t.Tab, Pred: bound, Estm: t.Estm, ClusterRange: clusterRange}, true
		case *plan.CoveringScan:
			pred := predFor(t.Tab)
			bound, err := pred.Bind(t.Schem)
			if err != nil {
				return nil, false
			}
			return &plan.CoveringScan{
				Tab: t.Tab, Index: t.Index, Pred: bound, Schem: t.Schem, Estm: t.Estm,
			}, true
		case *plan.Seek:
			pred := predFor(t.Tab)
			ranges, _, ok := expr.IndexRanges(pred, t.Index.Cols)
			if !ok {
				return nil, false
			}
			bound, err := pred.Bind(t.Tab.Schema)
			if err != nil {
				return nil, false
			}
			return &plan.Seek{
				Tab: t.Tab, Index: t.Index, Ranges: ranges, Pred: bound, Estm: t.Estm,
			}, true
		case *plan.Intersect:
			pred := predFor(t.Tab)
			ra, _, okA := expr.IndexRanges(pred, t.IndexA.Cols)
			rb, _, okB := expr.IndexRanges(pred, t.IndexB.Cols)
			if !okA || !okB {
				return nil, false
			}
			bound, err := pred.Bind(t.Tab.Schema)
			if err != nil {
				return nil, false
			}
			return &plan.Intersect{
				Tab: t.Tab, IndexA: t.IndexA, RangesA: ra,
				IndexB: t.IndexB, RangesB: rb, Pred: bound, Estm: t.Estm,
			}, true
		case *plan.Join:
			outer, ok := walk(t.Outer)
			if !ok {
				return nil, false
			}
			if t.Method == plan.INLJoin {
				bound, err := predFor(t.InnerTab).Bind(t.InnerTab.Schema)
				if err != nil {
					return nil, false
				}
				return &plan.Join{
					Method: t.Method, Outer: outer,
					OuterCol: t.OuterCol, InnerCol: t.InnerCol,
					SortOuter: t.SortOuter, SortInner: t.SortInner,
					Schem: t.Schem, Estm: t.Estm,
					InnerTab: t.InnerTab, InnerIndex: t.InnerIndex, InnerPred: bound,
				}, true
			}
			inner, ok := walk(t.Inner)
			if !ok {
				return nil, false
			}
			return &plan.Join{
				Method: t.Method, Outer: outer, Inner: inner,
				OuterCol: t.OuterCol, InnerCol: t.InnerCol,
				SortOuter: t.SortOuter, SortInner: t.SortInner,
				Schem: t.Schem, Estm: t.Estm,
			}, true
		case *plan.Sort:
			in, ok := walk(t.Input)
			if !ok {
				return nil, false
			}
			return &plan.Sort{Input: in, Cols: t.Cols, Desc: t.Desc, Estm: t.Estm}, true
		case *plan.Project:
			in, ok := walk(t.Input)
			if !ok {
				return nil, false
			}
			return &plan.Project{Input: in, Cols: t.Cols, Schem: t.Schem, Estm: t.Estm}, true
		case *plan.Limit:
			in, ok := walk(t.Input)
			if !ok {
				return nil, false
			}
			return &plan.Limit{Input: in, N: t.N, Estm: t.Estm}, true
		case *plan.Agg:
			in, ok := walk(t.Input)
			if !ok {
				return nil, false
			}
			return &plan.Agg{Input: in, Func: t.Func, Col: t.Col, Schem: t.Schem, Estm: t.Estm}, true
		case *plan.GroupAgg:
			in, ok := walk(t.Input)
			if !ok {
				return nil, false
			}
			return &plan.GroupAgg{
				Input: in, GroupCol: t.GroupCol, Func: t.Func, AggCol: t.AggCol,
				Schem: t.Schem, Estm: t.Estm,
			}, true
		default:
			return nil, false
		}
	}
	return walk(tmpl)
}

// --- monitor skeleton ---------------------------------------------------

// monitorSkeleton is the value-free shape of a MonitorAll configuration:
// which (side, atom-subset, join) requests the query produces. Cached with
// the plan template so a hit skips re-deriving the request set; instantiated
// per execution with the query's actual predicates and the caller's options.
type monitorSkeleton struct {
	reqs []skelReq
}

// skelReq locates one DPC request in the query's predicate structure.
type skelReq struct {
	side2 bool // request targets Table2/Pred2 (else Table/Pred)
	atom  int  // -1 = full conjunction; >= 0 = single-atom subset
	join  bool // join-DPC request (no predicate)
}

// newMonitorSkeleton derives the request shape from the query, mirroring
// Engine.monitorConfig exactly (asserted by a DeepEqual test).
func newMonitorSkeleton(q *opt.Query) *monitorSkeleton {
	sk := &monitorSkeleton{}
	addFor := func(side2 bool, pred expr.Conjunction) {
		if len(pred.Atoms) == 0 {
			return
		}
		sk.reqs = append(sk.reqs, skelReq{side2: side2, atom: -1})
		if len(pred.Atoms) > 1 {
			for i := range pred.Atoms {
				sk.reqs = append(sk.reqs, skelReq{side2: side2, atom: i})
			}
		}
	}
	addFor(false, q.Pred)
	if q.IsJoin() {
		addFor(true, q.Pred2)
		sk.reqs = append(sk.reqs,
			skelReq{side2: false, atom: -1, join: true},
			skelReq{side2: true, atom: -1, join: true},
		)
	}
	return sk
}

// monitorFromSkeleton instantiates a cached skeleton into the effective
// monitor configuration for this execution, equivalent to
// Engine.monitorConfig without re-deriving the request structure.
func (e *Engine) monitorFromSkeleton(sk *monitorSkeleton, q *opt.Query, opts *RunOptions) *exec.MonitorConfig {
	if opts == nil {
		return nil
	}
	if opts.Monitor != nil {
		return opts.Monitor
	}
	if !opts.MonitorAll || q == nil {
		return nil
	}
	cfg := &exec.MonitorConfig{
		SampleFraction: opts.SampleFraction,
		FailMonitors:   opts.FailMonitors,
		ShedLevel:      opts.ShedLevel,
		OverheadBudget: opts.MonitorOverheadBudget,
	}
	if opts.ShedUnderPressure {
		if p := e.gate.pressureLevel(); p > cfg.ShedLevel {
			cfg.ShedLevel = p
		}
	}
	for _, r := range sk.reqs {
		table, pred := q.Table, q.Pred
		if r.side2 {
			table, pred = q.Table2, q.Pred2
		}
		req := exec.DPCRequest{Table: table}
		switch {
		case r.join:
			req.Join = true
		case r.atom >= 0:
			req.Pred = pred.Subset(r.atom)
		default:
			req.Pred = pred
		}
		cfg.Requests = append(cfg.Requests, req)
	}
	return cfg
}
