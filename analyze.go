package pagefeedback

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"pagefeedback/internal/exec"
)

// AnalyzeOptions control FormatAnalyze rendering.
type AnalyzeOptions struct {
	// WithTimes includes the nondeterministic annotations: per-operator
	// wall time and call counts, admission wait, storage events, and trace
	// span counts. The zero value suppresses them, making the rendering a
	// pure function of the plan and the monitored counts — the mode golden
	// tests (and any other byte-exact consumer) use.
	WithTimes bool
}

// ExplainAnalyze parses, optimizes, and EXECUTES the query with tracing
// forced on, then renders the operator tree annotated with estimated vs
// actual rows, the estimated vs actual distinct page count of every
// monitored expression (each with its q-error — max(est/act, act/est), the
// standard estimation-quality measure), monitor mechanism and degradation
// markers, and per-operator wall time. It is Explain's runtime complement:
// Explain shows what the optimizer believed, ExplainAnalyze shows where it
// was wrong. The query really runs, with all side effects (cache state,
// admission, metrics).
func (e *Engine) ExplainAnalyze(src string, opts *RunOptions) (string, error) {
	return e.ExplainAnalyzeContext(context.Background(), src, opts)
}

// ExplainAnalyzeContext is ExplainAnalyze under a context.
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, src string, opts *RunOptions) (string, error) {
	var o RunOptions
	if opts != nil {
		o = *opts
	}
	o.Trace = true
	res, err := e.QueryContext(ctx, src, &o)
	if err != nil {
		return "", err
	}
	return FormatAnalyze(res, AnalyzeOptions{WithTimes: true}), nil
}

// dpcAnnotation is one monitored expression resolved against its operator.
type dpcAnnotation struct {
	expr   string
	est    int64
	act    int64
	mech   string
	marker string
	table  string
	reason string
}

// FormatAnalyze renders the annotated operator tree for an executed
// result. Estimated DPCs are present when the result came through the
// query path (fillEstimates needs the parsed query); direct plan
// executions render est=0. Monitors that never attached to an operator
// (unsatisfiable requests, shed placeholders, merged parallel shards) are
// listed separately.
func FormatAnalyze(res *Result, o AnalyzeOptions) string {
	var b strings.Builder
	byOp := make(map[int32][]dpcAnnotation)
	var unplanted []dpcAnnotation
	for i, r := range res.DPC {
		a := dpcAnnotation{
			act:    r.DPC,
			mech:   r.Mechanism,
			table:  r.Request.Table,
			reason: r.Reason,
		}
		if i < len(res.Stats.DPC) {
			a.est = res.Stats.DPC[i].Estimated
			a.expr = res.Stats.DPC[i].Expression
		}
		if r.Degraded {
			if r.Shed {
				a.marker = ", shed"
			} else {
				a.marker = ", quarantined"
			}
		}
		if r.OpID >= 0 {
			byOp[r.OpID] = append(byOp[r.OpID], a)
		} else {
			unplanted = append(unplanted, a)
		}
	}
	writeAnalyzeOp(&b, res.Stats.Plan, 0, byOp, o)
	if len(unplanted) > 0 {
		b.WriteString("unplanted monitors:\n")
		for _, a := range unplanted {
			fmt.Fprintf(&b, "  dpc(%s, %s): est=%d act=%d [%s%s]", a.table, a.expr, a.est, a.act, a.mech, a.marker)
			if a.reason != "" {
				fmt.Fprintf(&b, " (%s)", a.reason)
			}
			b.WriteByte('\n')
		}
	}
	rt := &res.Stats.Runtime
	fmt.Fprintf(&b, "rows: %d\n", len(res.Rows))
	fmt.Fprintf(&b, "monitors: %d requested, %d shed, %d quarantined\n",
		len(res.DPC), rt.ShedMonitors, rt.QuarantinedMonitors)
	if o.WithTimes {
		fmt.Fprintf(&b, "time: wall=%s simulated=%s\n",
			res.WallTime.Round(time.Microsecond), res.SimulatedTime.Round(time.Microsecond))
		if rt.QueueWait > 0 {
			fmt.Fprintf(&b, "admission: wait=%s depth=%d\n",
				rt.QueueWait.Round(time.Microsecond), rt.QueueDepth)
		}
		if rt.PoolWaits > 0 || rt.ReadRetries > 0 || rt.PrefetchedPages > 0 {
			fmt.Fprintf(&b, "storage: pin-waits=%d (%s) read-retries=%d prefetched=%d\n",
				rt.PoolWaits, rt.PoolWaitTime.Round(time.Microsecond),
				rt.ReadRetries, rt.PrefetchedPages)
		}
		if res.Trace != nil {
			fmt.Fprintf(&b, "trace: %d spans (%d dropped)\n",
				len(res.Trace.Spans), res.Trace.Dropped)
		}
	}
	return b.String()
}

// writeAnalyzeOp renders one operator line (and its DPC annotations) and
// recurses into the children.
func writeAnalyzeOp(b *strings.Builder, op exec.OperatorStats, depth int, byOp map[int32][]dpcAnnotation, o AnalyzeOptions) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s  (rows: est=%.0f act=%d q-err=%s)",
		ind, op.Label, op.EstRows, op.ActRows, qerrString(op.EstRows, float64(op.ActRows)))
	if o.WithTimes && (op.Wall > 0 || op.Calls > 0) {
		fmt.Fprintf(b, " (wall=%s calls=%d)", op.Wall.Round(time.Microsecond), op.Calls)
	}
	b.WriteByte('\n')
	for _, a := range byOp[op.OpID] {
		fmt.Fprintf(b, "%s  dpc %s: est=%d act=%d q-err=%s [%s%s]\n",
			ind, a.expr, a.est, a.act, qerrString(float64(a.est), float64(a.act)), a.mech, a.marker)
	}
	for _, c := range op.Children {
		writeAnalyzeOp(b, c, depth+1, byOp, o)
	}
}

// qError is the standard estimation-quality measure: max(est/act, act/est).
// Both sides zero is a perfect (vacuous) estimate, 1; one side zero is an
// unbounded miss, +Inf.
func qError(est, act float64) float64 {
	if est <= 0 && act <= 0 {
		return 1
	}
	if est <= 0 || act <= 0 {
		return math.Inf(1)
	}
	return math.Max(est/act, act/est)
}

// qerrString renders a q-error with two decimals ("inf" when unbounded).
func qerrString(est, act float64) string {
	q := qError(est, act)
	if math.IsInf(q, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", q)
}
