package pagefeedback_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pagefeedback"
	"pagefeedback/internal/datagen"
)

// TestRandomWorkloadConsistency is the end-to-end correctness harness: a
// stream of randomly generated queries runs three ways — as planned by the
// optimizer, with full monitoring attached, and again after feedback
// (which often changes the plan) — and every execution's count must equal
// the brute-force answer computed by a raw table scan. Feedback may change
// plans; it must never change answers.
func TestRandomWorkloadConsistency(t *testing.T) {
	eng := pagefeedback.New(pagefeedback.DefaultConfig())
	const n = 15000
	ds, err := datagen.BuildSynthetic(eng, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = ds
	rng := rand.New(rand.NewSource(123))
	cols := []string{"c2", "c3", "c4", "c5"}

	// bruteCount scans the table through the catalog, independent of the
	// planner and executor under test.
	bruteCount := func(col string, lo, hi int64) int64 {
		tab, _ := eng.Catalog().Table("t")
		it, err := tab.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		ord := tab.Schema.MustOrdinal(col)
		var cnt int64
		for it.Next() {
			v := it.Row()[ord].Int
			if v >= lo && v < hi {
				cnt++
			}
		}
		return cnt
	}

	for i := 0; i < 40; i++ {
		col := cols[rng.Intn(len(cols))]
		var sql string
		var want int64
		switch rng.Intn(3) {
		case 0: // open range
			v := rng.Int63n(n)
			sql = fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE %s < %d", col, v)
			want = bruteCount(col, -1<<62, v)
		case 1: // between
			a, b := rng.Int63n(n), rng.Int63n(n)
			if a > b {
				a, b = b, a
			}
			sql = fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE %s BETWEEN %d AND %d", col, a, b)
			want = bruteCount(col, a, b+1)
		default: // equality (permutation column: 0 or 1 row)
			v := rng.Int63n(n)
			sql = fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE %s = %d", col, v)
			want = bruteCount(col, v, v+1)
		}

		res1, err := eng.Query(sql, &pagefeedback.RunOptions{MonitorAll: true, SampleFraction: 0.2})
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, sql, err)
		}
		if got := res1.Rows[0][0].Int; got != want {
			t.Fatalf("query %d (%s): monitored count %d, brute force %d", i, sql, got, want)
		}
		eng.ApplyFeedback(res1)
		res2, err := eng.Query(sql, nil)
		if err != nil {
			t.Fatalf("query %d after feedback: %v", i, err)
		}
		if got := res2.Rows[0][0].Int; got != want {
			t.Fatalf("query %d (%s): post-feedback count %d (plan %s), brute force %d",
				i, sql, got, res2.Plan.Inputs()[0].Label(), want)
		}
	}
}

// TestRandomJoinConsistency does the same for joins: counts must agree with
// a brute-force nested loop regardless of the chosen join method.
func TestRandomJoinConsistency(t *testing.T) {
	eng := pagefeedback.New(pagefeedback.DefaultConfig())
	const n = 10000
	if _, err := datagen.BuildSynthetic(eng, n, 9); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(321))

	bruteJoin := func(col string, outerHi int64) int64 {
		tabT, _ := eng.Catalog().Table("t")
		tabT1, _ := eng.Catalog().Table("t1")
		ord := tabT.Schema.MustOrdinal(col)
		// Collect t1's join values for rows with c1 < outerHi.
		vals := map[int64]int64{}
		it, _ := tabT1.ScanAll()
		for it.Next() {
			row := it.Row()
			if row[0].Int < outerHi {
				vals[row[ord].Int]++
			}
		}
		it.Close()
		var cnt int64
		it2, _ := tabT.ScanAll()
		for it2.Next() {
			cnt += vals[it2.Row()[ord].Int]
		}
		it2.Close()
		return cnt
	}

	for i := 0; i < 10; i++ {
		col := []string{"c2", "c5"}[rng.Intn(2)]
		hi := rng.Int63n(int64(n/10)) + 10
		sql := fmt.Sprintf(
			"SELECT COUNT(t.padding) FROM t, t1 WHERE t1.c1 < %d AND t1.%s = t.%s", hi, col, col)
		want := bruteJoin(col, hi)

		res1, err := eng.Query(sql, &pagefeedback.RunOptions{MonitorAll: true, SampleFraction: 1.0})
		if err != nil {
			t.Fatalf("join %d (%s): %v", i, sql, err)
		}
		if got := res1.Rows[0][0].Int; got != want {
			t.Fatalf("join %d (%s): count %d, brute force %d", i, sql, got, want)
		}
		eng.ApplyFeedback(res1)
		res2, err := eng.Query(sql, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := res2.Rows[0][0].Int; got != want {
			t.Fatalf("join %d post-feedback: count %d, want %d", i, got, want)
		}
	}
}
