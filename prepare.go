package pagefeedback

import (
	"context"

	"pagefeedback/internal/sql"
)

// Stmt is a prepared statement: SQL parsed and resolved once, executed many
// times with different parameter values. Executions bind arguments into a
// fresh query (no lexing or parsing) and go through the engine's plan cache,
// so after the first run the optimizer is skipped too — the template plan is
// instantiated with the new constants. A Stmt is immutable and safe for
// concurrent use.
type Stmt struct {
	eng  *Engine
	tmpl *sql.Template
}

// Prepare parses a parameterized SELECT — placeholders are '?' (positional)
// or '$n' (numbered, 1-based) in literal positions of the WHERE clause — and
// returns a reusable statement. SQL without placeholders prepares as a
// zero-parameter statement.
func (e *Engine) Prepare(src string) (*Stmt, error) {
	tmpl, err := sql.ParseTemplate(e.cat, src)
	if err != nil {
		return nil, err
	}
	return &Stmt{eng: e, tmpl: tmpl}, nil
}

// SQL returns the statement's source text.
func (s *Stmt) SQL() string { return s.tmpl.SQL }

// NumParams returns how many arguments Query expects.
func (s *Stmt) NumParams() int { return s.tmpl.NumParams }

// ParamKinds returns the column kind each argument is coerced to, indexed by
// parameter ordinal.
func (s *Stmt) ParamKinds() []Kind { return s.tmpl.ParamKinds() }

// Query binds args and executes the statement (background context).
func (s *Stmt) Query(args []Value, opts *RunOptions) (*Result, error) {
	return s.QueryContext(context.Background(), args, opts)
}

// QueryContext binds args into a fresh query and executes it under ctx. The
// template is never mutated, so concurrent QueryContext calls on one Stmt
// are independent executions.
func (s *Stmt) QueryContext(ctx context.Context, args []Value, opts *RunOptions) (res *Result, err error) {
	defer recoverQueryPanic(&err)
	q, err := s.tmpl.Bind(args)
	if err != nil {
		return nil, err
	}
	return s.eng.RunQueryContext(ctx, q, opts)
}
