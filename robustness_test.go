package pagefeedback

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pagefeedback/internal/storage"
)

// assertQueryErrorKind checks err is a *QueryError of the given kind.
func assertQueryErrorKind(t *testing.T, err error, kind ErrorKind) {
	t.Helper()
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("error %v (%T) is not a *QueryError", err, err)
	}
	if qe.Kind != kind {
		t.Errorf("QueryError kind = %s, want %s: %v", qe.Kind, kind, err)
	}
}

// assertNoPins checks the buffer pool is fully unpinned.
func assertNoPins(t *testing.T, eng *Engine) {
	t.Helper()
	if n := eng.Pool().Pinned(); n != 0 {
		t.Errorf("%d buffer-pool frames still pinned", n)
	}
}

// assertRecovered runs a control query and checks the engine still answers
// correctly after whatever fault the caller injected and cleared.
func assertRecovered(t *testing.T, eng *Engine, sql string, want int64) {
	t.Helper()
	res, err := eng.Query(sql, nil)
	if err != nil {
		t.Fatalf("post-fault query failed: %v", err)
	}
	if got := res.Rows[0][0].Int; got != want {
		t.Errorf("post-fault count = %d, want %d", got, want)
	}
}

// tornPageEnv builds a heap table h (file 0, so CorruptPage can address it)
// plus an intact clustered table v, flushes everything to "disk", and tears
// several of h's data pages.
func tornPageEnv(t *testing.T) *Engine {
	t.Helper()
	eng := New(DefaultConfig())
	h := NewSchema(
		Column{Name: "k", Kind: KindInt},
		Column{Name: "pad", Kind: KindString},
	)
	if _, err := eng.CreateHeapTable("h", h); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 2000)
	for i := range rows {
		rows[i] = Row{Int64(int64(i)), Str(strings.Repeat("p", 60))}
	}
	if err := eng.Load("h", rows); err != nil {
		t.Fatal(err)
	}
	v := NewSchema(
		Column{Name: "k", Kind: KindInt},
		Column{Name: "val", Kind: KindInt},
	)
	if _, err := eng.CreateClusteredTable("v", v, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	vrows := make([]Row, 4000)
	for i := range vrows {
		vrows[i] = Row{Int64(int64(i)), Int64(int64(i))}
	}
	if err := eng.Load("v", vrows); err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze("h", "v"); err != nil {
		t.Fatal(err)
	}
	// Flush so the pool holds no clean copy that could mask the torn bytes,
	// then tear pages mid-file (a full scan of h is certain to read them).
	if err := eng.Pool().Reset(); err != nil {
		t.Fatal(err)
	}
	for _, pid := range []storage.PageID{2, 3, 4} {
		if err := eng.Pool().Disk().CorruptPage(0, pid); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestFaultMatrix drives one fault of each class through a full query and
// asserts the common contract: a typed error (or success where the fault is
// recoverable), no panic, no leaked pins, and a correct follow-up query.
func TestFaultMatrix(t *testing.T) {
	t.Run("torn page", func(t *testing.T) {
		eng := tornPageEnv(t)
		_, err := eng.Query("SELECT COUNT(pad) FROM h", nil)
		if err == nil {
			t.Fatal("scan over torn pages succeeded")
		}
		if !errors.Is(err, storage.ErrChecksum) {
			t.Errorf("error does not wrap ErrChecksum: %v", err)
		}
		assertQueryErrorKind(t, err, ErrKindStorage)
		assertNoPins(t, eng)
		if eng.Pool().Disk().Stats().ChecksumErrors == 0 {
			t.Error("ChecksumErrors stat not incremented")
		}
		assertRecovered(t, eng, "SELECT COUNT(*) FROM v WHERE k < 10", 10)
	})

	t.Run("transient fault recovered by retry", func(t *testing.T) {
		eng := buildTestDB(t, 8000)
		before := eng.Pool().Disk().Stats()
		eng.Pool().Disk().InjectTransientFaults(2)
		res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 500", nil)
		if err != nil {
			t.Fatalf("query under recoverable transient faults failed: %v", err)
		}
		if res.Rows[0][0].Int != 500 {
			t.Errorf("count = %d under transient faults", res.Rows[0][0].Int)
		}
		if got := eng.Pool().Disk().Stats().Sub(before).ReadRetries; got != 2 {
			t.Errorf("ReadRetries = %d, want 2", got)
		}
		assertNoPins(t, eng)
	})

	t.Run("transient burst exceeds retry budget", func(t *testing.T) {
		eng := buildTestDB(t, 8000)
		// More consecutive faulted attempts than one read's retry budget.
		eng.Pool().Disk().InjectTransientFaults(10)
		_, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 500", nil)
		if err == nil {
			t.Fatal("query under transient burst succeeded")
		}
		if !errors.Is(err, storage.ErrTransientFault) {
			t.Errorf("error does not wrap ErrTransientFault: %v", err)
		}
		assertQueryErrorKind(t, err, ErrKindStorage)
		assertNoPins(t, eng)
		eng.Pool().Disk().InjectTransientFaults(0)
		assertRecovered(t, eng, "SELECT COUNT(padding) FROM t WHERE c2 < 500", 500)
	})

	t.Run("hard read fault", func(t *testing.T) {
		eng := buildTestDB(t, 8000)
		eng.Pool().Disk().FailReadsAfter(5)
		_, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 500", nil)
		if err == nil {
			t.Fatal("query under hard read faults succeeded")
		}
		if !errors.Is(err, storage.ErrInjectedFault) {
			t.Errorf("error does not wrap ErrInjectedFault: %v", err)
		}
		assertQueryErrorKind(t, err, ErrKindStorage)
		assertNoPins(t, eng)
		eng.Pool().Disk().FailReadsAfter(-1)
		assertRecovered(t, eng, "SELECT COUNT(padding) FROM t WHERE c2 < 500", 500)
	})

	t.Run("write fault during cold-cache flush", func(t *testing.T) {
		eng := buildTestDB(t, 8000)
		// Dirty one page so the cold-cache Reset must write it back.
		pp, err := eng.Pool().FetchPage(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		pp.Unpin(true)
		eng.Pool().Disk().FailWritesAfter(0)
		_, err = eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 500", nil)
		if err == nil {
			t.Fatal("query with failing writeback succeeded")
		}
		if !errors.Is(err, storage.ErrInjectedWriteFault) {
			t.Errorf("error does not wrap ErrInjectedWriteFault: %v", err)
		}
		assertQueryErrorKind(t, err, ErrKindStorage)
		assertNoPins(t, eng)
		eng.Pool().Disk().FailWritesAfter(-1)
		assertRecovered(t, eng, "SELECT COUNT(padding) FROM t WHERE c2 < 500", 500)
	})

	t.Run("cancelled context", func(t *testing.T) {
		eng := buildTestDB(t, 8000)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := eng.QueryContext(ctx, "SELECT COUNT(padding) FROM t WHERE c2 < 500", nil)
		if err == nil {
			t.Fatal("query under cancelled context succeeded")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error does not wrap context.Canceled: %v", err)
		}
		assertQueryErrorKind(t, err, ErrKindCancelled)
		assertNoPins(t, eng)
		assertRecovered(t, eng, "SELECT COUNT(padding) FROM t WHERE c2 < 500", 500)
	})

	t.Run("query timeout", func(t *testing.T) {
		eng := buildTestDB(t, 8000)
		_, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 2000",
			&RunOptions{Timeout: time.Nanosecond})
		if err == nil {
			t.Fatal("query with 1ns timeout succeeded")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("error does not wrap DeadlineExceeded: %v", err)
		}
		assertQueryErrorKind(t, err, ErrKindTimeout)
		assertNoPins(t, eng)
		assertRecovered(t, eng, "SELECT COUNT(padding) FROM t WHERE c2 < 500", 500)
	})

	t.Run("injected monitor panic", func(t *testing.T) {
		eng := joinTestEnv(t, 8000)
		sql := "SELECT COUNT(padding) FROM t, u WHERE u.c1 < 100 AND u.c2 = t.c2"
		healthy, err := eng.Query(sql, &RunOptions{MonitorAll: true, SampleFraction: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(sql, &RunOptions{
			MonitorAll: true, SampleFraction: 1.0,
			FailMonitors: []string{MechExactScan, MechDPSample, MechLinearCount, MechBitVector, MechINLFetch},
		})
		if err != nil {
			t.Fatalf("query with all monitors failing errored: %v", err)
		}
		if res.Rows[0][0].Int != healthy.Rows[0][0].Int {
			t.Errorf("count with quarantined monitors = %d, want %d",
				res.Rows[0][0].Int, healthy.Rows[0][0].Int)
		}
		if res.Stats.Runtime.QuarantinedMonitors == 0 {
			t.Error("no monitor recorded as quarantined")
		}
		// With every monitor quarantined, feedback application is a no-op:
		// degraded observations never reach the cache or the optimizer.
		eng.ApplyFeedback(res)
		if n := len(eng.FeedbackCache().Entries()); n != 0 {
			t.Errorf("%d feedback entries stored from fully-degraded run", n)
		}
		assertNoPins(t, eng)
		assertRecovered(t, eng, "SELECT COUNT(padding) FROM t WHERE c2 < 500", 500)
	})
}

// TestMonitorQuarantinePerMechanism runs, for every monitoring mechanism a
// query exercises, a healthy execution and one with that mechanism's
// monitors panicking — and diffs them: identical rows, the failed monitor
// reported Degraded with no observation, the other monitors unaffected.
// Each query case gets a fresh engine so plan choices stay identical
// between the healthy and the failing run.
func TestMonitorQuarantinePerMechanism(t *testing.T) {
	seekSQL := "SELECT COUNT(padding) FROM t WHERE c2 < 500"
	cases := []struct {
		name string
		sql  string
		// forceSeek injects a tiny DPC so the optimizer picks an index plan
		// (linear counting engages only on fetch paths).
		forceSeek bool
	}{
		{name: "scan", sql: "SELECT COUNT(padding) FROM t WHERE c5 < 2000 AND c2 < 6000"},
		{name: "seek", sql: seekSQL, forceSeek: true},
		{name: "join", sql: "SELECT COUNT(padding) FROM t, u WHERE u.c1 < 100 AND u.c2 = t.c2"},
	}
	opts := func(fail ...string) *RunOptions {
		return &RunOptions{MonitorAll: true, SampleFraction: 1.0, FailMonitors: fail}
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := joinTestEnv(t, 8000)
			if tc.forceSeek {
				pq, err := eng.ParseQuery(tc.sql)
				if err != nil {
					t.Fatal(err)
				}
				eng.Optimizer().InjectDPC("t", pq.Pred, 1)
			}
			healthy, err := eng.Query(tc.sql, opts())
			if err != nil {
				t.Fatal(err)
			}
			mechs := map[string]bool{}
			for _, r := range healthy.DPC {
				if r.Mechanism != MechUnsatisfiable && !r.Degraded {
					mechs[r.Mechanism] = true
				}
			}
			for mech := range mechs {
				covered[mech] = true
				res, err := eng.Query(tc.sql, opts(mech))
				if err != nil {
					t.Fatalf("with %s failing: %v", mech, err)
				}
				if res.Rows[0][0].Int != healthy.Rows[0][0].Int {
					t.Errorf("with %s quarantined: count %d, want %d",
						mech, res.Rows[0][0].Int, healthy.Rows[0][0].Int)
				}
				degraded := 0
				for _, r := range res.DPC {
					switch {
					case r.Degraded && r.Mechanism == mech:
						degraded++
						if r.DPC != 0 {
							t.Errorf("%s: degraded result carries DPC %d", mech, r.DPC)
						}
						if !strings.Contains(r.Reason, "quarantined") {
							t.Errorf("%s: degraded reason = %q", mech, r.Reason)
						}
					case r.Degraded:
						t.Errorf("mechanism %s degraded while only %s was failed", r.Mechanism, mech)
					}
				}
				if degraded == 0 {
					t.Errorf("with %s failing: no degraded result", mech)
				}
				if res.Stats.Runtime.QuarantinedMonitors != degraded {
					t.Errorf("QuarantinedMonitors = %d, degraded results = %d",
						res.Stats.Runtime.QuarantinedMonitors, degraded)
				}
				for _, x := range res.Stats.DPC {
					if x.Mechanism == mech && !x.Degraded {
						t.Errorf("statistics-xml entry for %s not marked degraded", mech)
					}
				}
			}
		})
	}
	for _, want := range []string{MechExactScan, MechDPSample, MechLinearCount, MechBitVector} {
		if !covered[want] {
			t.Errorf("mechanism %s never exercised by the quarantine matrix", want)
		}
	}
}

// TestBufferPoolExhaustion pins every frame of a minimum-size pool and
// checks a query fails with the typed exhaustion error — and that the
// engine recovers completely once the pins are released.
func TestBufferPoolExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolPages = 64
	cfg.PoolWaitBudget = 0 // fail-fast: this test pins frames and never releases mid-query
	eng := New(cfg)
	h := NewSchema(
		Column{Name: "k", Kind: KindInt},
		Column{Name: "pad", Kind: KindString},
	)
	if _, err := eng.CreateHeapTable("h", h); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 10000) // ~100 data pages, well past pool capacity
	for i := range rows {
		rows[i] = Row{Int64(int64(i)), Str(strings.Repeat("x", 60))}
	}
	if err := eng.Load("h", rows); err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze("h"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Pool().Reset(); err != nil {
		t.Fatal(err)
	}

	// Pin every page the pool will admit. The pool is sharded, so a shard can
	// fill before the global capacity is reached; pages whose shard is already
	// full of pins are skipped, leaving those shards exhausted for the scan.
	var pins []*storage.PinnedPage
	npages := eng.Pool().Disk().NumPages(0)
	for pid := storage.PageID(0); pid < storage.PageID(npages); pid++ {
		pp, err := eng.Pool().FetchPage(0, pid)
		if err != nil {
			if errors.Is(err, storage.ErrPoolExhausted) {
				continue
			}
			t.Fatal(err)
		}
		pins = append(pins, pp)
	}
	if len(pins) == 0 || len(pins) >= npages {
		t.Fatalf("pinned %d of %d pages; expected partial exhaustion", len(pins), npages)
	}
	// WarmCache: a cold-cache reset cannot run with frames pinned; the scan
	// itself must hit the exhausted pool when it needs a 65th frame.
	_, err := eng.Query("SELECT COUNT(pad) FROM h", &RunOptions{WarmCache: true})
	if err == nil {
		t.Fatal("query over exhausted pool succeeded")
	}
	if !errors.Is(err, storage.ErrPoolExhausted) {
		t.Errorf("error does not wrap ErrPoolExhausted: %v", err)
	}
	assertQueryErrorKind(t, err, ErrKindStorage)

	for _, pp := range pins {
		pp.Unpin(false)
	}
	assertNoPins(t, eng)
	assertRecovered(t, eng, "SELECT COUNT(pad) FROM h", 10000)
}
