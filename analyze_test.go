package pagefeedback

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"pagefeedback/internal/exec"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, act float64
		want     float64
	}{
		{0, 0, 1},  // vacuous estimate: nothing predicted, nothing seen
		{-3, 0, 1}, // non-positive both sides collapses to vacuous
		{5, 0, math.Inf(1)},
		{0, 5, math.Inf(1)},
		{10, 5, 2},
		{5, 10, 2}, // symmetric: under- and over-estimation score alike
		{7, 7, 1},
	}
	for _, c := range cases {
		if got := qError(c.est, c.act); got != c.want {
			t.Errorf("qError(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
	if got := qerrString(10, 5); got != "2.00" {
		t.Errorf("qerrString(10,5) = %q, want \"2.00\"", got)
	}
	if got := qerrString(5, 0); got != "inf" {
		t.Errorf("qerrString(5,0) = %q, want \"inf\"", got)
	}
}

// analyzeGoldens pins the deterministic rendering of FormatAnalyze for one
// plan of every shape the renderer distinguishes: clustered-range point
// lookup, secondary-index seek, full scan under an aggregate, index
// nested-loops join, hash join, and a fully shed monitor. The numbers are a
// pure function of the 8000-row buildVecDB fixture and the optimizer — any
// drift here is a real behavior change, not noise.
var analyzeGoldens = []struct {
	name  string
	query string
	opts  RunOptions
	want  string
}{
	{
		name:  "clustered-point",
		query: "SELECT c2 FROM t WHERE c1 = 4242",
		opts:  RunOptions{MonitorAll: true},
		want: `Project  (rows: est=1 act=1 q-err=1.00)
  RangeScan(t)  (rows: est=1 act=1 q-err=1.00)
    dpc c1 = 4242: est=1 act=1 q-err=1.00 [exact-scan]
rows: 1
monitors: 1 requested, 0 shed, 0 quarantined
`,
	},
	{
		name:  "index-seek",
		query: "SELECT c2 FROM t WHERE c5 = 123",
		opts:  RunOptions{MonitorAll: true},
		want: `Project  (rows: est=1 act=1 q-err=1.00)
  IndexSeek(t.ix_c5)  (rows: est=1 act=1 q-err=1.00)
    dpc c5 = 123: est=1 act=1 q-err=1.00 [linear-counting]
rows: 1
monitors: 1 requested, 0 shed, 0 quarantined
`,
	},
	{
		name:  "scan-aggregate",
		query: "SELECT COUNT(padding) FROM t WHERE c2 < 2000",
		opts:  RunOptions{MonitorAll: true},
		want: `Aggregate(count)  (rows: est=1 act=1 q-err=1.00)
  Scan(t)  (rows: est=2000 act=2000 q-err=1.00)
    dpc c2 < 2000: est=102 act=26 q-err=3.92 [exact-scan]
rows: 1
monitors: 1 requested, 0 shed, 0 quarantined
`,
	},
	{
		name:  "inl-join",
		query: "SELECT COUNT(padding) FROM t, u WHERE u.c1 < 5 AND u.fk = t.c5",
		opts:  RunOptions{MonitorAll: true},
		want: `Aggregate(count)  (rows: est=1 act=1 q-err=1.00)
  INLJoin(t.ix_c5)  (rows: est=5 act=5 q-err=1.00)
    dpc <join predicate>: est=5 act=5 q-err=1.00 [linear-counting-inl]
    Scan(u)  (rows: est=5 act=5 q-err=1.00)
      dpc c1 < 5: est=4 act=1 q-err=4.00 [exact-scan]
unplanted monitors:
  dpc(u, <join predicate>): est=8 act=0 [unsatisfiable] (the current plan does not evaluate this expression where page ids are visible (§II-B))
rows: 1
monitors: 3 requested, 0 shed, 0 quarantined
`,
	},
	{
		name:  "hash-join",
		query: "SELECT COUNT(padding) FROM t, u WHERE u.c1 < 500 AND u.fk = t.c5",
		opts:  RunOptions{MonitorAll: true},
		want: `Aggregate(count)  (rows: est=1 act=1 q-err=1.00)
  HashJoin  (rows: est=500 act=500 q-err=1.00)
    Scan(u)  (rows: est=500 act=500 q-err=1.00)
      dpc c1 < 500: est=8 act=2 q-err=4.00 [exact-scan]
    Scan(t)  (rows: est=8000 act=8000 q-err=1.00)
      dpc <join predicate>: est=101 act=0 q-err=inf [bitvector+dpsample]
unplanted monitors:
  dpc(u, <join predicate>): est=8 act=0 [unsatisfiable] (the current plan does not evaluate this expression where page ids are visible (§II-B))
rows: 1
monitors: 3 requested, 0 shed, 0 quarantined
`,
	},
	{
		name:  "shed-monitor",
		query: "SELECT COUNT(padding) FROM t WHERE c2 < 2000",
		opts:  RunOptions{MonitorAll: true, ShedLevel: 3},
		want: `Aggregate(count)  (rows: est=1 act=1 q-err=1.00)
  Scan(t)  (rows: est=2000 act=2000 q-err=1.00)
unplanted monitors:
  dpc(t, c2 < 2000): est=102 act=0 [exact-scan, shed] (load-shed: monitoring disabled under overload (level 3))
rows: 1
monitors: 1 requested, 1 shed, 0 quarantined
`,
	},
}

func TestAnalyzeGolden(t *testing.T) {
	eng := buildVecDB(t, 8000)
	for _, g := range analyzeGoldens {
		opts := g.opts
		res, err := eng.Query(g.query, &opts)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if got := FormatAnalyze(res, AnalyzeOptions{}); got != g.want {
			t.Errorf("%s: analyze output drifted\n--- got ---\n%s--- want ---\n%s", g.name, got, g.want)
		}
	}
}

// TestAnalyzeGoldenParallel pins the parallel plan rendering. The only
// difference a parallel run is allowed to show in deterministic mode is the
// scan label (ParallelScan(t) xN vs the serial fallback on a single-core
// host): row counts and DPC feedback are documented to match a serial run.
func TestAnalyzeGoldenParallel(t *testing.T) {
	eng := buildVecDB(t, 8000)
	res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 2000",
		&RunOptions{MonitorAll: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	scan := "Scan(t)"
	if p := res.Stats.Runtime.Parallelism; p >= 2 {
		scan = fmt.Sprintf("ParallelScan(t) x%d", p)
	}
	want := `Aggregate(count)  (rows: est=1 act=1 q-err=1.00)
  ` + scan + `  (rows: est=2000 act=2000 q-err=1.00)
    dpc c2 < 2000: est=102 act=26 q-err=3.92 [exact-scan]
rows: 1
monitors: 1 requested, 0 shed, 0 quarantined
`
	if got := FormatAnalyze(res, AnalyzeOptions{}); got != want {
		t.Errorf("parallel analyze output drifted\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExplainAnalyzeWithTimes exercises the public entry point: the query
// really runs with tracing forced on, and the WithTimes rendering carries
// the nondeterministic annotations the golden mode suppresses.
func TestExplainAnalyzeWithTimes(t *testing.T) {
	eng := buildVecDB(t, 8000)
	out, err := eng.ExplainAnalyze("SELECT COUNT(padding) FROM t WHERE c2 < 2000",
		&RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Scan(t)", "q-err=3.92", "(wall=", "calls=",
		"time: wall=", "trace: ", " spans (0 dropped)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeMonotonicity is a CERT-style check (Cardinality Estimation
// Robustness Testing: widen the predicate, watch the measured quantities —
// they must never shrink). It needs no golden numbers, so it guards the
// monitoring pipeline under any fixture change.
func TestAnalyzeMonotonicity(t *testing.T) {
	eng := buildVecDB(t, 8000)
	tab, ok := eng.Catalog().Table("t")
	if !ok {
		t.Fatal("table t missing")
	}
	pages := tab.NumPages()
	for _, col := range []string{"c2", "c5"} {
		prevDPC, prevRows := int64(-1), int64(-1)
		for _, bound := range []int{250, 500, 1000, 2000, 4000, 8000} {
			q := fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE %s < %d", col, bound)
			res, err := eng.Query(q, &RunOptions{MonitorAll: true})
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			if len(res.DPC) != 1 {
				t.Fatalf("%s: want 1 monitor, got %d", q, len(res.DPC))
			}
			dpc := res.DPC[0].DPC
			if dpc < prevDPC {
				t.Errorf("%s: DPC shrank when predicate widened: %d after %d", q, dpc, prevDPC)
			}
			if dpc > pages {
				t.Errorf("%s: DPC %d exceeds table pages %d", q, dpc, pages)
			}
			rows := res.Stats.Plan.Children[0].ActRows
			if rows < prevRows {
				t.Errorf("%s: scan rows shrank when predicate widened: %d after %d", q, rows, prevRows)
			}
			prevDPC, prevRows = dpc, rows
		}
	}
}

// TestAnalyzeTreeInvariants walks the executed operator trees of the parity
// query set and asserts the structural facts the ANALYZE rendering relies
// on: single-child reducer operators never emit more rows than they
// consume, actual row counts are non-negative, and every planted monitor
// resolves to an operator that exists in the tree.
func TestAnalyzeTreeInvariants(t *testing.T) {
	eng := buildVecDB(t, 8000)
	queries := append([]string{}, vecParityQueries...)
	queries = append(queries,
		"SELECT c2 FROM t WHERE c5 = 123",
		"SELECT COUNT(padding) FROM t, u WHERE u.c1 < 5 AND u.fk = t.c5",
	)
	for _, q := range queries {
		res, err := eng.Query(q, &RunOptions{MonitorAll: true})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		ops := map[int32]bool{}
		var walk func(op exec.OperatorStats)
		walk = func(op exec.OperatorStats) {
			ops[op.OpID] = true
			if op.ActRows < 0 {
				t.Errorf("%s: %s has negative ActRows %d", q, op.Label, op.ActRows)
			}
			// Joins can fan out; every single-child operator in this engine
			// (Project, Aggregate, Sort, Limit, GroupBy) reduces or preserves,
			// except the INL join whose sole child is just its outer input.
			if len(op.Children) == 1 && !strings.HasPrefix(op.Label, "INLJoin") {
				if op.ActRows > op.Children[0].ActRows {
					t.Errorf("%s: %s emits %d rows from %d inputs", q, op.Label, op.ActRows, op.Children[0].ActRows)
				}
			}
			for _, c := range op.Children {
				walk(c)
			}
		}
		walk(res.Stats.Plan)
		for _, r := range res.DPC {
			if r.OpID >= 0 && !ops[r.OpID] {
				t.Errorf("%s: monitor on %s points at unknown operator %d", q, r.Request.Table, r.OpID)
			}
		}
	}
}
