// Command experiments regenerates the paper's evaluation tables and
// figures against the simulated engine.
//
// Usage:
//
//	experiments [-rows N] [-realscale F] [-seed S] [-sample F] [table1|fig6|fig7|fig8|fig9|fig10|fig11|bitvector|estimators|dpsample|bitmap|all]
//
// With no experiment names, everything runs. Output goes to stdout in the
// same row/series structure the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pagefeedback/internal/experiments"
)

func main() {
	rows := flag.Int("rows", 200000, "synthetic table rows (paper: 100M)")
	realScale := flag.Float64("realscale", 1.0, "real-database scale relative to 1:100 of Table I")
	seed := flag.Int64("seed", 1, "data-generation and sampling seed")
	sample := flag.Float64("sample", 0.01, "DPSample page-sampling fraction")
	flag.Parse()

	cfg := experiments.Config{
		SyntheticRows:  *rows,
		RealScale:      *realScale,
		Seed:           *seed,
		SampleFraction: *sample,
		Out:            os.Stdout,
	}

	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && strings.EqualFold(names[0], "all")) {
		names = []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
			"bitvector", "estimators", "dpsample", "bitmap", "poolsize", "transfer"}
	}

	runners := map[string]func() error{
		"table1": func() error { _, err := experiments.TableI(cfg); return err },
		"fig6":   func() error { _, err := experiments.Fig6(cfg); return err },
		"fig7":   func() error { _, err := experiments.Fig7(cfg); return err },
		"fig8":   func() error { _, err := experiments.Fig8(cfg); return err },
		"fig9":   func() error { _, err := experiments.Fig9(cfg); return err },
		"fig10": func() error {
			_, _, _, err := experiments.Fig10(cfg)
			return err
		},
		"fig11":      func() error { _, err := experiments.Fig11(cfg); return err },
		"bitvector":  func() error { _, err := experiments.BitvectorAccuracy(cfg); return err },
		"estimators": func() error { _, err := experiments.EstimatorComparison(cfg); return err },
		"dpsample":   func() error { _, err := experiments.DPSampleError(cfg); return err },
		"bitmap":     func() error { _, err := experiments.BitmapSizeAblation(cfg); return err },
		"poolsize":   func() error { _, err := experiments.PoolSizeAblation(cfg); return err },
		"transfer":   func() error { _, err := experiments.SelfTuningTransfer(cfg); return err },
	}

	for _, name := range names {
		run, ok := runners[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from:", name)
			for k := range runners {
				fmt.Fprintf(os.Stderr, " %s", k)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		fmt.Println()
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
	}
}
