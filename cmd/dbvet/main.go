// Command dbvet is the repository's invariant checker: a multichecker in
// the spirit of golang.org/x/tools/go/analysis/multichecker, built on the
// standard library's go/ast + go/types so the module stays dependency-free
// and hermetic. It machine-checks the pin/lock/context/error invariants the
// buffer pool, executor, and engine boundary rely on, plus the determinism,
// goroutine-join, memory-budget, and shed-lattice invariants layered on the
// CFG/dataflow core in internal/lint.
//
// Usage:
//
//	go run ./cmd/dbvet ./...                  # run all analyzers
//	go run ./cmd/dbvet -only pinleak .        # a subset
//	go run ./cmd/dbvet -list                  # describe the analyzers
//	go run ./cmd/dbvet -format=sarif ./...    # SARIF 2.1.0 for CI upload
//
// With the default -format=text, findings print as file:line:col: message
// (analyzer). -format=json emits a JSON array of findings; -format=sarif
// emits a SARIF 2.1.0 log with repo-relative paths for CI annotation. The
// exit status is 1 when findings exist, 2 on usage or load errors.
//
// A finding can be suppressed by a trailing `//dbvet:ignore` comment
// (optionally naming analyzers: `//dbvet:ignore pinleak,ctxflow`) on the
// offending line or the line above — use sparingly and say why in the same
// comment. Full-suite runs (no -only) also report suppressions that no
// longer match any finding, so stale ignores cannot linger.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pagefeedback/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dbvet [-only analyzers] [-format text|json|sarif] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "dbvet: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader, root, err := lint.NewModuleLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	units, err := loader.LoadPatterns(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Unused-suppression reporting only makes sense when every analyzer a
	// directive could name has actually run.
	cfg := lint.RunConfig{ReportUnusedIgnores: *only == ""}
	diags, err := lint.RunWithConfig(units, analyzers, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch *format {
	case "json":
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case "sarif":
		b, err := lint.ToSARIF(diags, analyzers, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
		fmt.Println()
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
