// Command dbvet is the repository's invariant checker: a multichecker in
// the spirit of golang.org/x/tools/go/analysis/multichecker, built on the
// standard library's go/ast + go/types so the module stays dependency-free
// and hermetic. It machine-checks the pin/lock/context/error invariants the
// buffer pool, executor, and engine boundary rely on.
//
// Usage:
//
//	go run ./cmd/dbvet ./...            # run all analyzers
//	go run ./cmd/dbvet -only pinleak .  # a subset
//	go run ./cmd/dbvet -list            # describe the analyzers
//
// Findings print as file:line:col: message (analyzer). The exit status is 1
// when findings exist, 2 on usage or load errors. A finding can be
// suppressed by a trailing `//dbvet:ignore` comment (optionally naming
// analyzers: `//dbvet:ignore pinleak,ctxflow`) on the offending line or the
// line above — use sparingly and say why in the same comment.
package main

import (
	"flag"
	"fmt"
	"os"

	"pagefeedback/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dbvet [-only analyzers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader, root, err := lint.NewModuleLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	units, err := loader.LoadPatterns(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(units, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
