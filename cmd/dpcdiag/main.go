// Command dpcdiag is the DBA-facing diagnosis workflow of §II-C on a demo
// database: it runs a query with page-count monitoring, prints the
// statistics-xml document with estimated vs actual distinct page counts,
// and — when the estimates are badly off — shows the plan the optimizer
// would pick with the fed-back values, with both simulated execution times.
//
// Usage:
//
//	dpcdiag [-rows N] [-seed S] [-xml] "SELECT COUNT(padding) FROM t WHERE c2 < 2000"
//
// Without a query, a demonstration query with a large estimation error is
// used. The demo database is the paper's synthetic T(C1..C5, padding) (plus
// the join copy T1): C2..C4 correlate with the clustered key at decreasing
// tightness, C5 not at all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pagefeedback"
	"pagefeedback/internal/datagen"
	"pagefeedback/internal/plan"
)

func main() {
	rows := flag.Int("rows", 100000, "demo table rows")
	seed := flag.Int64("seed", 1, "data seed")
	xmlOut := flag.Bool("xml", false, "print the full statistics xml document")
	flag.Parse()

	query := strings.Join(flag.Args(), " ")
	if query == "" {
		query = fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE c2 < %d", *rows/50)
		fmt.Printf("no query given; using the demo query:\n  %s\n\n", query)
	}

	eng := pagefeedback.New(pagefeedback.DefaultConfig())
	fmt.Fprintf(os.Stderr, "building demo database (%d rows)...\n", *rows)
	if _, err := datagen.BuildSynthetic(eng, *rows, *seed); err != nil {
		fatal(err)
	}

	res, err := eng.Query(query, &pagefeedback.RunOptions{MonitorAll: true})
	if err != nil {
		fatal(err)
	}

	fmt.Println("EXECUTED PLAN P:")
	fmt.Print(plan.Format(res.Plan))
	fmt.Printf("simulated execution time: %v\n\n", res.SimulatedTime)

	fmt.Println("DISTINCT PAGE COUNTS (estimated vs actual):")
	fmt.Printf("  %-10s %-40s %-22s %10s %10s\n", "table", "expression", "mechanism", "estimated", "actual")
	worstRatio := 1.0
	for i, r := range res.DPC {
		x := res.Stats.DPC[i]
		fmt.Printf("  %-10s %-40s %-22s %10d %10d", x.Table, trim(x.Expression, 40), x.Mechanism, x.Estimated, x.Actual)
		if r.Mechanism == pagefeedback.MechUnsatisfiable {
			fmt.Printf("   (%s)", r.Reason)
		} else if x.Actual > 0 && float64(x.Estimated)/float64(x.Actual) > worstRatio {
			worstRatio = float64(x.Estimated) / float64(x.Actual)
		}
		fmt.Println()
	}
	fmt.Println()

	if *xmlOut {
		doc, err := pagefeedback.MarshalStats(res.Stats)
		if err != nil {
			fatal(err)
		}
		fmt.Println(doc)
		fmt.Println()
	}

	if worstRatio < 2 {
		fmt.Println("verdict: page-count estimates are reasonable; no plan correction suggested.")
		return
	}
	fmt.Printf("verdict: page counts overestimated by up to %.0fx — re-optimizing with feedback.\n\n", worstRatio)
	eng.ApplyFeedback(res)
	res2, err := eng.Query(query, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Println("RE-OPTIMIZED PLAN P':")
	fmt.Print(plan.Format(res2.Plan))
	fmt.Printf("simulated execution time: %v\n", res2.SimulatedTime)
	speedup := float64(res.SimulatedTime-res2.SimulatedTime) / float64(res.SimulatedTime)
	fmt.Printf("speedup (T-T')/T: %.0f%%\n", speedup*100)
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpcdiag:", err)
	os.Exit(1)
}
