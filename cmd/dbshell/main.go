// Command dbshell is an interactive shell over the engine: run queries
// against a demo database, watch estimated-vs-actual page counts, apply
// feedback, and export/import the learned state.
//
//	$ go run ./cmd/dbshell
//	pagefeedback> SELECT COUNT(padding) FROM t WHERE c2 < 2000
//	pagefeedback> \explain SELECT COUNT(padding) FROM t WHERE c2 < 2000
//	pagefeedback> \feedback apply
//	pagefeedback> \help
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"pagefeedback"
	"pagefeedback/internal/datagen"
	"pagefeedback/internal/plan"
)

const helpText = `commands:
  SELECT ...            run a query (monitoring per \monitor; default on)
  \explain SELECT ...   show the plan and page-count provenance, don't run
  \prepare NAME SQL     prepare a parameterized statement (? or $n placeholders)
  \exec NAME ARG...     execute a prepared statement ('str', 2007-06-01, or int args)
  \analyze SELECT ...   run the query and show the tree with est-vs-actual
                        rows and page counts, q-errors, and operator times
  \monitor on|off       toggle DPC monitoring for subsequent queries
  \parallel N           set intra-query parallelism (0/1 = serial)
  \vectorized on|off    toggle batch-at-a-time execution (default on)
  \trace on|off         record span traces for subsequent queries
  \trace show           print the last traced query's span listing
  \metrics              print engine metrics (Prometheus text format)
  \slowlog              list queries captured by the slow-query log
                        (arm it with the -slowlog flag)
  \feedback apply       inject the page counts observed by the last query
  \feedback show        list the feedback cache
  \feedback export F    write learned state (cache/histograms/curves) to file F
  \feedback import F    load learned state from file F
  \tables               list tables with rows/pages
  \stats                show I/O, buffer-pool, admission, and last-query counters
  \help                 this text
  \quit                 exit`

func main() {
	rows := flag.Int("rows", 100000, "demo synthetic table rows")
	seed := flag.Int64("seed", 1, "data seed")
	real := flag.Bool("real", false, "also build the five real-world-like databases (slower)")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 = none), e.g. 30s")
	parallel := flag.Int("parallel", 0, "intra-query parallelism for scans and hash-join probes (0/1 = serial)")
	vectorized := flag.Bool("vectorized", true, "batch-at-a-time execution (false forces the row-at-a-time path)")
	slowlog := flag.Duration("slowlog", 0, "slow-query threshold (0 = off), e.g. 250ms; slow queries are captured with trace and plan (\\slowlog)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (covers the whole session)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	cfg := pagefeedback.DefaultConfig()
	cfg.SlowQueryThreshold = *slowlog
	eng := pagefeedback.New(cfg)
	fmt.Fprintf(os.Stderr, "building synthetic database (%d rows)...\n", *rows)
	if _, err := datagen.BuildSynthetic(eng, *rows, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *real {
		fmt.Fprintln(os.Stderr, "building real-world-like databases...")
		if _, err := datagen.BuildAllReal(eng, 0.3, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, `ready — try: SELECT COUNT(padding) FROM t WHERE c2 < 2000  (\help for commands)`)

	sh := &shell{eng: eng, monitor: true, timeout: *timeout, parallel: *parallel, vectorized: *vectorized, out: os.Stdout}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("pagefeedback> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line != "" && !sh.handle(line) {
			return
		}
		fmt.Print("pagefeedback> ")
	}
}

type shell struct {
	eng        *pagefeedback.Engine
	monitor    bool
	trace      bool
	timeout    time.Duration
	parallel   int
	vectorized bool
	last       *pagefeedback.Result
	prepared   map[string]*pagefeedback.Stmt
	out        *os.File
}

// vecMode maps the shell toggle onto the engine's run option.
func (s *shell) vecMode() pagefeedback.VecMode {
	if s.vectorized {
		return pagefeedback.VecOn
	}
	return pagefeedback.VecOff
}

// runOpts assembles the run options from the shell toggles.
func (s *shell) runOpts() *pagefeedback.RunOptions {
	return &pagefeedback.RunOptions{
		MonitorAll:  s.monitor,
		Timeout:     s.timeout,
		Parallelism: s.parallel,
		Vectorized:  s.vecMode(),
		Trace:       s.trace,
	}
}

// handle processes one line; false means quit.
func (s *shell) handle(line string) bool {
	switch {
	case strings.HasPrefix(line, `\`):
		return s.meta(line)
	default:
		s.runQuery(line)
	}
	return true
}

func (s *shell) meta(line string) bool {
	fields := strings.Fields(line)
	switch strings.ToLower(fields[0]) {
	case `\quit`, `\q`, `\exit`:
		return false
	case `\help`, `\h`:
		fmt.Fprintln(s.out, helpText)
	case `\monitor`:
		if len(fields) == 2 {
			s.monitor = strings.EqualFold(fields[1], "on")
		}
		fmt.Fprintf(s.out, "monitoring: %v\n", s.monitor)
	case `\parallel`:
		if len(fields) == 2 {
			if n, err := strconv.Atoi(fields[1]); err == nil && n >= 0 {
				s.parallel = n
			}
		}
		fmt.Fprintf(s.out, "parallelism: %d\n", s.parallel)
	case `\vectorized`:
		if len(fields) == 2 {
			s.vectorized = strings.EqualFold(fields[1], "on")
		}
		fmt.Fprintf(s.out, "vectorized: %v\n", s.vectorized)
	case `\explain`:
		sql := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		out, err := s.eng.ExplainWithOptions(sql, &pagefeedback.RunOptions{Parallelism: s.parallel, Vectorized: s.vecMode()})
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return true
		}
		fmt.Fprint(s.out, out)
	case `\analyze`:
		sql := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		out, err := s.eng.ExplainAnalyze(sql, s.runOpts())
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return true
		}
		fmt.Fprint(s.out, out)
	case `\trace`:
		if len(fields) == 2 {
			switch strings.ToLower(fields[1]) {
			case "show":
				if s.last == nil || s.last.Trace == nil {
					fmt.Fprintln(s.out, "no traced query (\\trace on, then run one)")
				} else {
					fmt.Fprint(s.out, s.last.Trace.Render())
				}
				return true
			default:
				s.trace = strings.EqualFold(fields[1], "on")
			}
		}
		fmt.Fprintf(s.out, "tracing: %v\n", s.trace)
	case `\metrics`:
		if err := s.eng.WriteMetricsPrometheus(s.out); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	case `\slowlog`:
		slow := s.eng.SlowQueries()
		if len(slow) == 0 {
			fmt.Fprintln(s.out, "slow-query log empty (arm with -slowlog DURATION)")
		}
		for _, sq := range slow {
			fmt.Fprintf(s.out, "--- %s  wall=%v simulated=%v  %s\n%s",
				sq.At.Format("15:04:05.000"), sq.WallTime, sq.SimulatedTime, sq.Query, sq.Analyze)
		}
	case `\tables`:
		for _, t := range s.eng.Catalog().Tables() {
			kind := "heap"
			if len(t.ClusterCols) > 0 {
				kind = "clustered on " + strings.Join(t.ClusterCols, ",")
			}
			fmt.Fprintf(s.out, "  %-12s %9d rows %7d pages  %s  (%d indexes)\n",
				t.Name, t.NumRows(), t.NumPages(), kind, len(t.Indexes()))
		}
	case `\prepare`:
		s.prepare(line, fields)
	case `\exec`:
		s.exec(fields[1:])
	case `\stats`:
		s.stats()
	case `\feedback`:
		s.feedback(fields[1:])
	default:
		fmt.Fprintf(s.out, "unknown command %s (\\help for help)\n", fields[0])
	}
	return true
}

// stats prints the session-wide I/O, buffer-pool, and admission counters,
// plus the robustness telemetry of the last query: how long it queued, what
// it retried, waited, or shed. This is the operator's view of the overload
// machinery — the counters the stress and chaos tests assert on.
func (s *shell) stats() {
	io := s.eng.Pool().Disk().Stats()
	fmt.Fprintf(s.out, "disk:      %d physical reads (%d sequential, %d random), %d written\n",
		io.PhysicalReads, io.SequentialReads, io.RandomReads, io.PagesWritten)
	fmt.Fprintf(s.out, "           %d read retries, %d checksum errors, simulated I/O %v\n",
		io.ReadRetries, io.ChecksumErrors, io.SimulatedIO)
	ps := s.eng.Pool().Stats()
	fmt.Fprintf(s.out, "pool:      %d logical reads, hit ratio %.1f%%, %d evictions, %d prefetched\n",
		ps.LogicalReads, 100*ps.HitRatio(), ps.Evictions, ps.Prefetched)
	fmt.Fprintf(s.out, "           %d frame waits totalling %v (wait budget %v)\n",
		ps.Waits, ps.WaitTime, s.eng.Pool().WaitBudget())
	as := s.eng.AdmissionStats()
	if as.Limit > 0 {
		fmt.Fprintf(s.out, "admission: limit %d, %d active, %d queued (peak %d)\n",
			as.Limit, as.Active, as.Queued, as.PeakQueued)
		fmt.Fprintf(s.out, "           %d admitted, %d rejected, %d timed out, queue wait %v\n",
			as.Admitted, as.Rejected, as.TimedOut, as.WaitTime)
	} else {
		fmt.Fprintln(s.out, "admission: unlimited (no concurrency gate)")
	}
	pc := s.eng.PlanCacheStats()
	fmt.Fprintf(s.out, "plancache: %d entries, %d hits, %d misses, %d stale, %d evicted\n",
		pc.Entries, pc.Hits, pc.Misses, pc.Stale, pc.Evictions)
	fmt.Fprintf(s.out, "           %d invalidations (feedback epochs), %d instantiation fallbacks\n",
		pc.Invalidations, pc.Fallbacks)
	if s.last == nil {
		fmt.Fprintln(s.out, "last query: none")
		return
	}
	rt := s.last.Stats.Runtime
	fmt.Fprintf(s.out, "last query: queue wait %v (depth %d), %d read retries, %d pool waits (%v)\n",
		rt.QueueWait, rt.QueueDepth, rt.ReadRetries, rt.PoolWaits, rt.PoolWaitTime)
	fmt.Fprintf(s.out, "            mem peak %d bytes, %d monitors shed, %d quarantined\n",
		rt.MemPeakBytes, rt.ShedMonitors, rt.QuarantinedMonitors)
	fmt.Fprintf(s.out, "            plan cache hit: %v, %d compiled predicates\n",
		rt.PlanCacheHit, rt.CompiledPredicates)
	fmt.Fprintf(s.out, "            %d batches processed, %d vectorized operators\n",
		rt.BatchesProcessed, rt.VectorizedOps)
}

// prepare handles \prepare NAME SELECT ... — the SQL is everything after the
// name, placeholders included.
func (s *shell) prepare(line string, fields []string) {
	if len(fields) < 3 {
		fmt.Fprintln(s.out, `usage: \prepare NAME SELECT ... WHERE col < ?`)
		return
	}
	name := fields[1]
	sql := strings.TrimSpace(line[strings.Index(line, name)+len(name):])
	stmt, err := s.eng.Prepare(sql)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	if s.prepared == nil {
		s.prepared = make(map[string]*pagefeedback.Stmt)
	}
	s.prepared[name] = stmt
	fmt.Fprintf(s.out, "prepared %s (%d parameter(s))\n", name, stmt.NumParams())
}

// exec handles \exec NAME ARG... — arguments are coerced by the statement's
// parameter kinds: integers stay integers, everything else binds as a string
// (dates in YYYY-MM-DD form are parsed by the binder).
func (s *shell) exec(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(s.out, `usage: \exec NAME ARG...`)
		return
	}
	stmt, ok := s.prepared[args[0]]
	if !ok {
		fmt.Fprintf(s.out, "no prepared statement %q (\\prepare first)\n", args[0])
		return
	}
	vals := make([]pagefeedback.Value, 0, len(args)-1)
	for _, a := range args[1:] {
		if unq := strings.Trim(a, `'"`); unq != a {
			vals = append(vals, pagefeedback.Str(unq))
		} else if n, err := strconv.ParseInt(a, 10, 64); err == nil {
			vals = append(vals, pagefeedback.Int64(n))
		} else {
			vals = append(vals, pagefeedback.Str(a))
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	res, err := stmt.QueryContext(ctx, vals, s.runOpts())
	stop()
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	s.last = res
	s.printResult(res)
}

func (s *shell) feedback(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(s.out, `usage: \feedback apply|show|export F|import F`)
		return
	}
	switch strings.ToLower(args[0]) {
	case "apply":
		if s.last == nil {
			fmt.Fprintln(s.out, "no monitored query to apply")
			return
		}
		s.eng.ApplyFeedback(s.last)
		fmt.Fprintf(s.out, "applied %d observation(s); re-run the query to see the new plan\n", len(s.last.DPC))
	case "show":
		entries := s.eng.FeedbackCache().Entries()
		if len(entries) == 0 {
			fmt.Fprintln(s.out, "feedback cache empty")
		}
		for _, e := range entries {
			fmt.Fprintf(s.out, "  %s | %-40s card=%-8d dpc=%-6d %s\n",
				e.Table, e.Predicate, e.Cardinality, e.DPC, e.Mechanism)
		}
	case "export":
		if len(args) < 2 {
			fmt.Fprintln(s.out, "usage: \\feedback export FILE")
			return
		}
		if err := s.eng.ExportFeedbackToFile(args[1]); err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return
		}
		fmt.Fprintf(s.out, "exported to %s\n", args[1])
	case "import":
		if len(args) < 2 {
			fmt.Fprintln(s.out, "usage: \\feedback import FILE")
			return
		}
		n, err := s.eng.ImportFeedbackFromFile(args[1])
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return
		}
		fmt.Fprintf(s.out, "imported %d entries\n", n)
	default:
		fmt.Fprintln(s.out, `usage: \feedback apply|show|export F|import F`)
	}
}

func (s *shell) runQuery(sql string) {
	// Ctrl-C cancels the running query (first poll aborts it) instead of
	// killing the shell; the scope is released as soon as the query ends.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	res, err := s.eng.QueryContext(ctx, sql, s.runOpts())
	stop()
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	s.last = res
	s.printResult(res)
}

func (s *shell) printResult(res *pagefeedback.Result) {
	fmt.Fprint(s.out, plan.Format(res.Plan))
	for _, row := range res.Rows {
		fmt.Fprintf(s.out, "  -> %s\n", row)
	}
	cached := ""
	if res.PlanCacheHit {
		cached = ", plan cached"
	}
	fmt.Fprintf(s.out, "simulated time %v  (%d physical reads, %d random%s)\n",
		res.SimulatedTime, res.Stats.Runtime.PhysicalReads, res.Stats.Runtime.RandomReads, cached)
	for i, x := range res.Stats.DPC {
		if res.DPC[i].Mechanism == pagefeedback.MechUnsatisfiable {
			continue
		}
		flag := ""
		if x.Actual > 0 && x.Estimated > 3*x.Actual {
			flag = "  <-- overestimated"
		}
		fmt.Fprintf(s.out, "DPC %s: est %d, actual %d (%s)%s\n",
			x.Expression, x.Estimated, x.Actual, x.Mechanism, flag)
	}
}
