package pagefeedback

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"pagefeedback/internal/exec"
	"pagefeedback/internal/metrics"
	"pagefeedback/internal/trace"
)

// countOps counts the operator nodes in a stats tree — the EXPLAIN-visible
// operator count a complete trace must match.
func countOps(op exec.OperatorStats) int {
	n := 1
	for _, c := range op.Children {
		n += countOps(c)
	}
	return n
}

// parityRuntime reduces runtime stats to the slice two runs of the same
// query must agree on. With one scheduler thread everything deterministic
// must match exactly. Once goroutines truly run concurrently — parallel
// plans, or any plan when GOMAXPROCS > 1 (the advisory prefetcher is a
// free-running goroutine) — the disk head position, and with it the
// sequential/random read classification and hit/miss outcomes, depends on
// scheduling; two untraced runs differ the same way, so the IO figures
// drop out of the comparison.
func parityRuntime(rt exec.RuntimeStats, relaxed bool) exec.RuntimeStats {
	rt = deterministicRuntime(rt)
	if relaxed {
		rt.SimulatedIO, rt.SimulatedTotal = 0, 0
		rt.RandomReads, rt.PhysicalReads = 0, 0
	}
	return rt
}

// parityRows renders rows for comparison; parallel runs of unsorted
// queries may legitimately permute them, so those compare as multisets.
func parityRows(res *Result, parallel bool) []string {
	rows := renderRows(res)
	if parallel {
		sort.Strings(rows)
	}
	return rows
}

// TestTraceParityMatrix is the central observability guarantee: across the
// execution matrix (serial/parallel × vectorized/row × shed levels),
// running a query with tracing on changes NOTHING observable except
// Result.Trace itself — rows, monitored DPC feedback, deterministic
// runtime stats, and the exported feedback state are byte-identical with
// an untraced engine that ran the same sequence. Two engines rather than
// interleaved runs on one, for the same reason as the vectorized parity
// test: the IO model classifies reads by where the previous query left
// the disk head.
//
// Along the way every produced trace must be structurally well-formed:
// spans ended exactly once, phases nested in operator lifetimes, and the
// operator span count equal to both the plan the executor reports and the
// EXPLAIN stats tree.
func TestTraceParityMatrix(t *testing.T) {
	traced := buildVecDB(t, 8000)
	plain := buildVecDB(t, 8000)
	matrix := []struct {
		name string
		par  int
		vec  VecMode
		shed int
	}{
		{"serial-vec-shed0", 0, VecOn, 0},
		{"serial-row-shed0", 0, VecOff, 0},
		{"parallel-vec-shed0", 4, VecOn, 0},
		{"parallel-row-shed0", 4, VecOff, 0},
		{"serial-vec-shed1", 0, VecOn, 1},
		{"serial-row-shed2", 0, VecOff, 2},
		{"parallel-vec-shed2", 4, VecOn, 2},
		{"serial-vec-shed3", 0, VecOn, 3},
	}
	for _, m := range matrix {
		for _, q := range vecParityQueries {
			opts := func(traceOn bool) *RunOptions {
				return &RunOptions{
					MonitorAll:  true,
					Parallelism: m.par,
					Vectorized:  m.vec,
					ShedLevel:   m.shed,
					Trace:       traceOn,
				}
			}
			tr, err := traced.Query(q, opts(true))
			if err != nil {
				t.Fatalf("%s %s (traced): %v", m.name, q, err)
			}
			pl, err := plain.Query(q, opts(false))
			if err != nil {
				t.Fatalf("%s %s (untraced): %v", m.name, q, err)
			}
			if pl.Trace != nil {
				t.Fatalf("%s %s: untraced run produced a trace", m.name, q)
			}
			par := m.par > 1
			relaxed := par || runtime.GOMAXPROCS(0) > 1
			if got, want := parityRows(tr, par), parityRows(pl, par); !equalStringSlices(got, want) {
				t.Errorf("%s %s: rows diverge\n traced: %v\n untraced: %v", m.name, q, got, want)
			}
			if got, want := renderDPCResults(tr), renderDPCResults(pl); !equalStringSlices(got, want) {
				t.Errorf("%s %s: DPC feedback diverges\n traced: %v\n untraced: %v", m.name, q, got, want)
			}
			if got, want := parityRuntime(tr.Stats.Runtime, relaxed), parityRuntime(pl.Stats.Runtime, relaxed); got != want {
				t.Errorf("%s %s: runtime stats diverge\n traced: %+v\n untraced: %+v", m.name, q, got, want)
			}
			if tr.Trace == nil {
				t.Fatalf("%s %s: traced run has no trace", m.name, q)
			}
			if err := tr.Trace.Validate(tr.Operators); err != nil {
				t.Errorf("%s %s: malformed trace: %v\n%s", m.name, q, err, tr.Trace.Render())
			}
			if got, want := tr.Trace.OperatorCount(), countOps(tr.Stats.Plan); got != want {
				t.Errorf("%s %s: trace covers %d operators, stats tree has %d", m.name, q, got, want)
			}
			// Feed both engines identically so the final exported state
			// exercises the whole feedback pipeline, traced and not.
			traced.ApplyFeedback(tr)
			plain.ApplyFeedback(pl)
		}
	}
	var a, b bytes.Buffer
	if err := traced.ExportFeedback(&a); err != nil {
		t.Fatal(err)
	}
	if err := plain.ExportFeedback(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("feedback export differs between traced and untraced engines:\n traced: %s\n untraced: %s",
			a.String(), b.String())
	}
}

// TestTracePartitionSpans pins the parallel-specific span shape: a traced
// parallel scan records one partition span per worker, each nested in its
// operator's lifetime (Validate enforces the nesting; this test checks
// they exist and account for every row).
func TestTracePartitionSpans(t *testing.T) {
	eng := buildTestDB(t, 12000)
	res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c5 < 11000",
		&RunOptions{Trace: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Runtime.Parallelism < 2 {
		t.Skip("machine too small for a parallel plan")
	}
	parts := res.Trace.ByKind(trace.KindPartition)
	if len(parts) != res.Stats.Runtime.Parallelism {
		t.Fatalf("%d partition spans, want one per worker (%d)\n%s",
			len(parts), res.Stats.Runtime.Parallelism, res.Trace.Render())
	}
	var rows int64
	for _, p := range parts {
		rows += p.N
	}
	if rows != 11000 {
		t.Errorf("partition spans account for %d rows, want 11000", rows)
	}
	if err := res.Trace.Validate(res.Operators); err != nil {
		t.Errorf("parallel trace malformed: %v", err)
	}
}

// TestSlowQueryLog arms the log with a 1ns threshold (every query is slow)
// and checks capture, rendering, bounded retention, and that arming the
// log forces tracing even when the caller did not ask for it.
func TestSlowQueryLog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlowQueryThreshold = time.Nanosecond
	cfg.SlowQueryLogSize = 2
	eng := buildTestDBCfg(t, 4000, cfg)
	queries := []string{
		"SELECT COUNT(padding) FROM t WHERE c2 < 100",
		"SELECT COUNT(padding) FROM t WHERE c2 < 200",
		"SELECT COUNT(padding) FROM t WHERE c2 < 300",
	}
	for _, q := range queries {
		res, err := eng.Query(q, &RunOptions{MonitorAll: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil {
			t.Fatal("armed slow-query log must force tracing")
		}
	}
	slow := eng.SlowQueries()
	if len(slow) != 2 {
		t.Fatalf("slow log holds %d entries, want the capped 2", len(slow))
	}
	// Oldest evicted: the two retained entries are the last two queries.
	if !strings.Contains(slow[0].Query, "c2 < 200") || !strings.Contains(slow[1].Query, "c2 < 300") {
		t.Errorf("retained entries %q, %q; want the two newest", slow[0].Query, slow[1].Query)
	}
	for _, sq := range slow {
		if sq.WallTime <= 0 {
			t.Errorf("%s: wall time not captured", sq.Query)
		}
		if !strings.Contains(sq.Analyze, "rows:") || !strings.Contains(sq.Analyze, "q-err=") {
			t.Errorf("%s: analyze tree missing annotations:\n%s", sq.Query, sq.Analyze)
		}
		if !strings.Contains(sq.Trace, "query") {
			t.Errorf("%s: span trace missing:\n%s", sq.Query, sq.Trace)
		}
	}
	if got := counterVal(eng.MetricsSnapshot(), "pf_slow_queries_total"); got != 3 {
		t.Errorf("pf_slow_queries_total = %d, want 3", got)
	}
}

// counterVal extracts a named counter from a snapshot (-1 if absent).
func counterVal(s metrics.Snapshot, name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return -1
}

// TestEngineMetrics checks the registry wiring end to end: query and error
// counters, the latency histograms, plan-cache accounting, and the
// Prometheus rendering.
func TestEngineMetrics(t *testing.T) {
	eng := buildTestDB(t, 4000)
	if _, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 1000", nil); err != nil {
		t.Fatal(err)
	}
	// Same shape again: a plan-cache hit.
	if _, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 1500", nil); err != nil {
		t.Fatal(err)
	}
	// A query that fails mid-execution with a typed error.
	if _, err := eng.Query("SELECT c1 FROM t WHERE c1 < 3000 ORDER BY c5",
		&RunOptions{MemBudget: 1}); err == nil {
		t.Fatal("memory-budget query unexpectedly succeeded")
	}
	snap := eng.MetricsSnapshot()
	counters := make(map[string]int64)
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["pf_queries_total"] != 3 {
		t.Errorf("pf_queries_total = %d, want 3", counters["pf_queries_total"])
	}
	if counters["pf_query_errors_memory_total"] != 1 {
		t.Errorf("pf_query_errors_memory_total = %d, want 1", counters["pf_query_errors_memory_total"])
	}
	if counters["pf_rows_returned_total"] != 2 {
		t.Errorf("pf_rows_returned_total = %d, want 2 (one COUNT row each)", counters["pf_rows_returned_total"])
	}
	if counters["pf_plan_cache_hits_total"] != 1 || counters["pf_plan_cache_misses_total"] != 1 {
		t.Errorf("plan cache hit/miss = %d/%d, want 1/1",
			counters["pf_plan_cache_hits_total"], counters["pf_plan_cache_misses_total"])
	}
	if counters["pf_rows_loaded_total"] != 4000 {
		t.Errorf("pf_rows_loaded_total = %d, want 4000 (fixture bulk load)", counters["pf_rows_loaded_total"])
	}
	// Occupancy gauges refresh at snapshot time; the engine is idle now.
	gauges := make(map[string]int64)
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	for _, name := range []string{"pf_queries_active", "pf_admission_queued", "pf_admission_peak_queued"} {
		if v, ok := gauges[name]; !ok {
			t.Errorf("gauge %s missing from snapshot", name)
		} else if v != 0 {
			t.Errorf("idle engine: gauge %s = %d, want 0", name, v)
		}
	}
	wallCount := int64(-1)
	for _, h := range snap.Histograms {
		if h.Name == "pf_query_wall_microseconds" {
			wallCount = h.Hist.Count
		}
	}
	if wallCount != 2 {
		t.Errorf("wall-time histogram count = %d, want 2 observations", wallCount)
	}
	var buf bytes.Buffer
	if err := eng.WriteMetricsPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE pf_queries_total counter",
		"pf_queries_total 3",
		"# TYPE pf_query_wall_microseconds histogram",
		"pf_query_wall_microseconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
	// Snapshot order is stable: names sorted within each section.
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name >= snap.Counters[i].Name {
			t.Errorf("counter order not stable: %q before %q", snap.Counters[i-1].Name, snap.Counters[i].Name)
		}
	}
}

// TestTraceDisabledAllocFree asserts the zero-cost-when-disabled claim in
// allocation terms: the per-page allocation profile of a warm scan is
// identical with tracing off and on (the recorder and its span buffer are
// a bounded constant), so the disabled path adds zero allocations per page
// — and the enabled path too, since spans are emitted into preallocated
// memory.
func TestTraceDisabledAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	small := buildTestDB(t, 4000)
	large := buildTestDB(t, 16000)
	measure := func(eng *Engine, n int, traceOn bool) float64 {
		sql := fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE c1 < %d", n)
		opts := &RunOptions{WarmCache: true, Trace: traceOn}
		if _, err := eng.Query(sql, opts); err != nil { // warm pool + plan cache
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := eng.Query(sql, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	offSmall := measure(small, 4000, false)
	offLarge := measure(large, 16000, false)
	onSmall := measure(small, 4000, true)
	onLarge := measure(large, 16000, true)
	// The scan itself allocates O(pages) (page-batched decode); tracing
	// must not change that slope.
	offSlope := offLarge - offSmall
	onSlope := onLarge - onSmall
	if diff := onSlope - offSlope; diff > 8 || diff < -8 {
		t.Errorf("tracing changes the per-page allocation slope: off %+.0f, on %+.0f (queries over 4k vs 16k rows)",
			offSlope, onSlope)
	}
	// And the constant overhead of tracing is bounded: recorder, span
	// buffer, finished trace — not per-row or per-page cost.
	if diff := onSmall - offSmall; diff > 24 {
		t.Errorf("tracing adds %.0f allocations per query, want a small constant (off=%.0f on=%.0f)",
			diff, offSmall, onSmall)
	}
}
