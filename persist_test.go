package pagefeedback

import (
	"bytes"
	"strings"
	"testing"

	"pagefeedback/internal/plan"
)

func TestExportImportFeedbackRoundTrip(t *testing.T) {
	eng := buildTestDB(t, 20000)
	// Gather feedback for a few predicate shapes.
	for _, sql := range []string{
		"SELECT COUNT(padding) FROM t WHERE c2 < 200",
		"SELECT COUNT(padding) FROM t WHERE c2 BETWEEN 4000 AND 4300",
		"SELECT COUNT(padding) FROM t WHERE c5 < 777",
	} {
		res, err := eng.Query(sql, &RunOptions{MonitorAll: true, SampleFraction: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		eng.ApplyFeedback(res)
	}
	var buf bytes.Buffer
	if err := eng.ExportFeedback(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, want := range []string{`"entries"`, `"histograms"`, `"dpc"`, "BETWEEN"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}

	// A brand-new engine over the same data: import and verify the plan
	// choice follows the imported feedback without any monitoring run.
	eng2 := buildTestDB(t, 20000)
	n, err := eng2.ImportFeedback(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("imported %d entries", n)
	}
	q, _ := eng2.ParseQuery("SELECT COUNT(padding) FROM t WHERE c2 < 200")
	node, err := eng2.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, isSeek := node.(*plan.Agg).Input.(*plan.Seek); !isSeek {
		t.Errorf("imported feedback did not flip the plan: %s", node.(*plan.Agg).Input.Label())
	}
	// The histogram generalization also carried over.
	if h, ok := eng2.Optimizer().DPCHistogram("t", "c2"); !ok || h.Len() == 0 {
		t.Error("histograms not imported")
	}
	// Cache contents match.
	if eng2.FeedbackCache().Len() != eng.FeedbackCache().Len() {
		t.Errorf("cache sizes differ: %d vs %d",
			eng2.FeedbackCache().Len(), eng.FeedbackCache().Len())
	}
}

func TestExportImportJoinCurves(t *testing.T) {
	eng := joinTestEnv(t, 20000)
	sql := "SELECT COUNT(padding) FROM t, u WHERE u.c1 < 200 AND u.c2 = t.c2"
	res, err := eng.Query(sql, &RunOptions{MonitorAll: true, SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)
	var buf bytes.Buffer
	if err := eng.ExportFeedback(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "joinCurves") {
		t.Fatalf("dump lacks join curves:\n%s", buf.String())
	}
	eng2 := joinTestEnv(t, 20000)
	if _, err := eng2.ImportFeedback(&buf); err != nil {
		t.Fatal(err)
	}
	c, ok := eng2.Optimizer().JoinDPCCurve("t", "c2")
	if !ok || c.Len() == 0 {
		t.Fatal("join curve not imported")
	}
	if m := joinMethodOf(t, eng2, sql); m.String() != "IndexNestedLoopsJoin" {
		t.Errorf("imported curve did not flip the join: %v", m)
	}
}

func TestImportFeedbackErrors(t *testing.T) {
	eng := buildTestDB(t, 5000)
	if _, err := eng.ImportFeedback(strings.NewReader("not json")); err == nil {
		t.Error("bad JSON imported")
	}
	if _, err := eng.ImportFeedback(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version imported")
	}
	if _, err := eng.ImportFeedback(strings.NewReader(
		`{"version":1,"entries":[{"table":"t","atoms":[{"col":"c2","op":"??","val":{"kind":"int"}}]}]}`)); err == nil {
		t.Error("unknown operator imported")
	}
	if _, err := eng.ImportFeedback(strings.NewReader(
		`{"version":1,"entries":[{"table":"t","atoms":[{"col":"c2","op":"=","val":{"kind":"blob"}}]}]}`)); err == nil {
		t.Error("unknown value kind imported")
	}
	if _, err := eng.ImportFeedback(strings.NewReader(
		`{"version":1,"entries":[{"table":"t","atoms":[{"col":"c2","op":"<","val":{"kind":"int","int":5}}],"dpc":-3}]}`)); err == nil {
		t.Error("negative DPC imported")
	}
	if _, err := eng.ImportFeedback(strings.NewReader(
		`{"version":1,"entries":[{"table":"t","atoms":[{"col":"c2","op":"BETWEEN","val":{"kind":"int","int":1}}]}]}`)); err == nil {
		t.Error("BETWEEN without upper bound imported")
	}
	dup := `{"table":"t","atoms":[{"col":"c2","op":"<","val":{"kind":"int","int":9}}],"dpc":4,"cardinality":9}`
	if _, err := eng.ImportFeedback(strings.NewReader(
		`{"version":1,"entries":[` + dup + `,` + dup + `]}`)); err == nil {
		t.Error("duplicate entries imported")
	}
}

// TestImportFeedbackAtomicity: a dump whose tail is invalid must be rejected
// wholesale — the valid leading entries never reach the cache or the
// optimizer (the half-poisoned-import failure mode).
func TestImportFeedbackAtomicity(t *testing.T) {
	eng := buildTestDB(t, 5000)
	good := `{"table":"t","atoms":[{"col":"c2","op":"<","val":{"kind":"int","int":123}}],"dpc":7,"cardinality":123}`
	bad := `{"table":"t","atoms":[{"col":"c5","op":"??","val":{"kind":"int","int":1}}],"dpc":1}`
	n, err := eng.ImportFeedback(strings.NewReader(
		`{"version":1,"entries":[` + good + `,` + bad + `]}`))
	if err == nil {
		t.Fatal("invalid dump imported")
	}
	if n != 0 {
		t.Errorf("partial import reported %d entries", n)
	}
	if got := eng.FeedbackCache().Len(); got != 0 {
		t.Errorf("failed import left %d cache entries behind", got)
	}
	if est, _ := eng.Optimizer().EstimateDPC("t", And(NewAtom("c2", Lt, Int64(123)))); est == 7 {
		t.Error("failed import injected a DPC into the optimizer")
	}
}

func TestExplainShowsProvenance(t *testing.T) {
	eng := buildTestDB(t, 20000)
	const sql = "SELECT COUNT(padding) FROM t WHERE c2 < 300"
	out, err := eng.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "analytical (Yao)") || !strings.Contains(out, "ClusteredIndexScan") {
		t.Errorf("pre-feedback explain:\n%s", out)
	}
	res, err := eng.Query(sql, &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)
	out2, err := eng.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "execution feedback") || !strings.Contains(out2, "IndexSeek") {
		t.Errorf("post-feedback explain:\n%s", out2)
	}
	// A similar predicate shows the histogram as its source.
	out3, err := eng.Explain("SELECT COUNT(padding) FROM t WHERE c2 BETWEEN 9000 AND 9400")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "self-tuning histogram") {
		t.Errorf("histogram provenance missing:\n%s", out3)
	}
	if _, err := eng.Explain("SELECT COUNT(*) FROM ghost"); err == nil {
		t.Error("explain of bad query succeeded")
	}
}
