package pagefeedback

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"pagefeedback/internal/plan"
)

// TestPlanCacheHitOnRepeat: a repeated query template is served from the
// cache, and a textually different instance in the same selectivity bucket
// shares the template while still binding its own constants.
func TestPlanCacheHitOnRepeat(t *testing.T) {
	eng := buildTestDB(t, 20000)

	res1, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 3000", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.PlanCacheHit {
		t.Error("first execution reported a cache hit")
	}
	res2, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 3000", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PlanCacheHit {
		t.Error("repeated query missed the plan cache")
	}
	if res2.Rows[0][0].Int != 3000 {
		t.Errorf("cached execution count = %d, want 3000", res2.Rows[0][0].Int)
	}
	if plan.Format(res1.Plan) != plan.Format(res2.Plan) {
		t.Errorf("cached plan differs from optimized plan:\n%s\nvs\n%s",
			plan.Format(res2.Plan), plan.Format(res1.Plan))
	}

	// Different constant, same selectivity bucket: shares the template but
	// must evaluate ITS constants, not the template's.
	res3, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 3100", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.PlanCacheHit {
		t.Error("same-bucket instance missed the plan cache")
	}
	if res3.Rows[0][0].Int != 3100 {
		t.Errorf("same-bucket instance count = %d, want 3100 (template constants leaked?)",
			res3.Rows[0][0].Int)
	}

	st := eng.PlanCacheStats()
	if st.Hits < 2 || st.Misses < 1 || st.Entries < 1 {
		t.Errorf("stats = %+v, want >=2 hits, >=1 miss, >=1 entry", st)
	}
}

// TestPlanCacheStaleAfterFeedback is the correctness core of the feature:
// once ApplyFeedback changes what the optimizer believes, the cached plan
// must NOT be served again — the very next execution re-optimizes and runs
// the feedback-informed plan.
func TestPlanCacheStaleAfterFeedback(t *testing.T) {
	eng := buildTestDB(t, 20000)
	const sql = "SELECT COUNT(padding) FROM t WHERE c2 < 300"

	res1, err := eng.Query(sql, &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, isScan := res1.Plan.(*plan.Agg).Input.(*plan.Scan); !isScan {
		t.Fatalf("pre-feedback plan is %s, want Scan", res1.Plan.(*plan.Agg).Input.Label())
	}
	res2, err := eng.Query(sql, &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PlanCacheHit {
		t.Fatal("repeat before feedback should hit")
	}

	eng.ApplyFeedback(res1)

	res3, err := eng.Query(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.PlanCacheHit {
		t.Error("post-feedback execution served the stale cached plan")
	}
	if _, isSeek := res3.Plan.(*plan.Agg).Input.(*plan.Seek); !isSeek {
		t.Errorf("post-feedback plan is %s, want the feedback-informed Seek",
			res3.Plan.(*plan.Agg).Input.Label())
	}
	if res3.Rows[0][0].Int != 300 {
		t.Errorf("post-feedback count = %d, want 300", res3.Rows[0][0].Int)
	}
	st := eng.PlanCacheStats()
	if st.Stale == 0 {
		t.Errorf("stats = %+v, want a stale-entry drop recorded", st)
	}
	if st.Invalidations == 0 {
		t.Errorf("stats = %+v, want feedback invalidations recorded", st)
	}

	// The re-optimized plan is cached in turn.
	res4, err := eng.Query(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res4.PlanCacheHit {
		t.Error("re-optimized plan was not re-cached")
	}
	if _, isSeek := res4.Plan.(*plan.Agg).Input.(*plan.Seek); !isSeek {
		t.Errorf("re-cached plan is %s, want Seek", res4.Plan.(*plan.Agg).Input.Label())
	}
}

// TestPlanCacheStaleAfterAnalyze: refreshed table statistics are a feedback
// mutation like any other — Analyze must invalidate cached plans (the
// regression this suite pins: Analyze used to bypass the epoch bump).
func TestPlanCacheStaleAfterAnalyze(t *testing.T) {
	eng := buildTestDB(t, 20000)
	const sql = "SELECT COUNT(padding) FROM t WHERE c2 < 3000"
	for i := 0; i < 2; i++ {
		if _, err := eng.Query(sql, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.PlanCacheStats(); st.Hits == 0 {
		t.Fatalf("warm-up did not populate the cache: %+v", st)
	}
	if err := eng.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Error("post-Analyze execution served a plan cached against old statistics")
	}
	if st := eng.PlanCacheStats(); st.Stale == 0 {
		t.Errorf("stats = %+v, want the Analyze invalidation to surface as a stale drop", st)
	}
}

// TestPlanCacheStaleAfterCreateIndex: DDL changes the available access
// paths, so cached plans for the table must be re-optimized.
func TestPlanCacheStaleAfterCreateIndex(t *testing.T) {
	eng := buildTestDB(t, 20000)
	const sql = "SELECT COUNT(c2) FROM t WHERE c5 < 3000"
	for i := 0; i < 2; i++ {
		if _, err := eng.Query(sql, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.CreateIndex("ix_pad", "t", "padding"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Error("post-CreateIndex execution served a pre-DDL cached plan")
	}
}

// TestMonitorSkeletonMatchesMonitorConfig: the cached monitor skeleton must
// instantiate to exactly the configuration monitorConfig derives from
// scratch, for every option shape, on both single-table and join queries.
func TestMonitorSkeletonMatchesMonitorConfig(t *testing.T) {
	eng := joinTestEnv(t, 2000)
	queries := []string{
		"SELECT COUNT(padding) FROM t WHERE c2 < 300",
		"SELECT COUNT(padding) FROM t WHERE c2 < 300 AND c5 < 1000",
		"SELECT COUNT(padding) FROM t, u WHERE u.c1 < 200 AND u.c2 = t.c2",
		"SELECT COUNT(padding) FROM t, u WHERE t.c2 < 500 AND u.c1 < 200 AND u.c2 = t.c2",
	}
	explicit := &MonitorConfig{Requests: []DPCRequest{{Table: "t", Pred: Conjunction{}}}}
	optVariants := []*RunOptions{
		nil,
		{},
		{Monitor: explicit},
		{MonitorAll: true},
		{MonitorAll: true, SampleFraction: 0.25},
		{MonitorAll: true, ShedLevel: 1, FailMonitors: []string{MechDPSample}},
	}
	for _, sql := range queries {
		q, err := eng.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		sk := newMonitorSkeleton(q)
		for i, opts := range optVariants {
			want := eng.monitorConfig(q, opts)
			got := eng.monitorFromSkeleton(sk, q, opts)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s opts[%d]: skeleton config = %+v, want %+v", sql, i, got, want)
			}
		}
	}
}

// TestPlanCacheOffIdentity runs a feedback workload on two engines over
// identical data — cache enabled vs disabled — and requires identical
// results, identical executed plans, and byte-identical exported feedback.
// The cache is a pure performance layer; it must be invisible to semantics.
func TestPlanCacheOffIdentity(t *testing.T) {
	build := func(cacheSize int) *Engine {
		cfg := DefaultConfig()
		cfg.PoolPages = 8192
		cfg.PlanCacheSize = cacheSize
		return buildTestDBCfg(t, 20000, cfg)
	}
	cached, uncached := build(0), build(-1)

	// Feedback is applied during round 0 only: later rounds exercise the
	// cache's hit path (feedback in every round would — correctly —
	// invalidate every entry before it could ever be reused).
	workload := []string{
		"SELECT COUNT(padding) FROM t WHERE c2 < 300",
		"SELECT COUNT(padding) FROM t WHERE c2 < 3000",
		"SELECT COUNT(padding) FROM t WHERE c5 < 600",
		"SELECT COUNT(padding) FROM t WHERE c2 BETWEEN 5000 AND 5400",
	}
	for round := 0; round < 3; round++ {
		for _, sql := range workload {
			opts := &RunOptions{MonitorAll: true}
			ra, err := cached.Query(sql, opts)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := uncached.Query(sql, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ra.Rows[0][0].Int != rb.Rows[0][0].Int {
				t.Fatalf("round %d %q: cached count %d != uncached %d",
					round, sql, ra.Rows[0][0].Int, rb.Rows[0][0].Int)
			}
			if pa, pb := plan.Format(ra.Plan), plan.Format(rb.Plan); pa != pb {
				t.Fatalf("round %d %q: plans diverge:\ncached:\n%s\nuncached:\n%s",
					round, sql, pa, pb)
			}
			if ra.SimulatedTime != rb.SimulatedTime {
				t.Fatalf("round %d %q: simulated time diverges: %v vs %v",
					round, sql, ra.SimulatedTime, rb.SimulatedTime)
			}
			if round == 0 {
				cached.ApplyFeedback(ra)
				uncached.ApplyFeedback(rb)
			}
		}
	}

	var fa, fb bytes.Buffer
	if err := cached.ExportFeedback(&fa); err != nil {
		t.Fatal(err)
	}
	if err := uncached.ExportFeedback(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa.Bytes(), fb.Bytes()) {
		t.Errorf("exported feedback differs between cache-on and cache-off engines:\ncached:\n%s\nuncached:\n%s",
			fa.String(), fb.String())
	}

	if st := cached.PlanCacheStats(); st.Hits == 0 {
		t.Errorf("cache-on engine never hit: %+v", st)
	}
	if st := uncached.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Errorf("cache-off engine has non-zero stats: %+v", st)
	}
}

// TestConcurrentPreparedCacheStress hammers one prepared statement from
// many goroutines while feedback application and re-analysis invalidate the
// cache underneath — every execution must still return the exact count for
// its own bound constant. Run with -race in CI's parallel-stress job.
func TestConcurrentPreparedCacheStress(t *testing.T) {
	eng := buildTestDB(t, 20000)
	stmt, err := eng.Prepare("SELECT COUNT(padding) FROM t WHERE c2 < ?")
	if err != nil {
		t.Fatal(err)
	}
	// Warm once so WarmCache runs below keep the buffer pool stable.
	if _, err := stmt.Query([]Value{Int64(100)}, nil); err != nil {
		t.Fatal(err)
	}

	const workers, iters = 4, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				want := int64(100 * ((w*iters+i)%20 + 1))
				res, err := stmt.Query([]Value{Int64(want)}, &RunOptions{WarmCache: true})
				if err != nil {
					errs <- err
					return
				}
				if got := res.Rows[0][0].Int; got != want {
					errs <- fmt.Errorf("worker %d: count = %d, want %d (stale or cross-bound plan)",
						w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 300",
				&RunOptions{MonitorAll: true, WarmCache: true})
			if err != nil {
				errs <- err
				return
			}
			eng.ApplyFeedback(res)
			if err := eng.Analyze("t"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := eng.PlanCacheStats()
	if st.Hits == 0 {
		t.Errorf("stress run never hit the cache: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Errorf("stress run never invalidated: %+v", st)
	}
}
