package tuple

import (
	"encoding/binary"
	"fmt"
)

// Encode appends the binary representation of row (under schema s) to dst and
// returns the extended slice. Integers and dates are 8-byte little-endian;
// strings are a 4-byte little-endian length followed by the bytes.
func Encode(dst []byte, s *Schema, row Row) ([]byte, error) {
	if len(row) != s.NumColumns() {
		return nil, fmt.Errorf("tuple: row has %d values, schema has %d columns", len(row), s.NumColumns())
	}
	for i, v := range row {
		col := s.Column(i)
		if v.Kind != col.Kind {
			return nil, fmt.Errorf("tuple: column %s is %s, value is %s", col.Name, col.Kind, v.Kind)
		}
		switch col.Kind {
		case KindInt, KindDate:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int))
		case KindString:
			if len(v.Str) > 1<<30 {
				return nil, fmt.Errorf("tuple: string in column %s too long (%d bytes)", col.Name, len(v.Str))
			}
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.Str)))
			dst = append(dst, v.Str...)
		default:
			return nil, fmt.Errorf("tuple: cannot encode kind %s", col.Kind)
		}
	}
	return dst, nil
}

// Decode parses one row (under schema s) from data. The entire slice must be
// consumed; trailing bytes indicate corruption.
func Decode(s *Schema, data []byte) (Row, error) {
	vals, err := DecodeAppend(make([]Value, 0, s.NumColumns()), s, data)
	if err != nil {
		return nil, err
	}
	return Row(vals), nil
}

// DecodeAppend parses one row (under schema s) from data, appending its
// values to dst and returning the extended slice. Reusing dst's capacity
// across calls lets steady-state scans decode without per-row allocation
// (string payloads still allocate; fixed-width columns do not).
func DecodeAppend(dst []Value, s *Schema, data []byte) ([]Value, error) {
	// All-fixed-width schemas (the common case for scan-heavy workloads)
	// decode without the per-column kind dispatch or length bookkeeping:
	// one size check for the whole row, then straight-line 8-byte reads.
	if s.fixedSize >= 0 {
		if len(data) != s.fixedSize {
			return nil, fmt.Errorf("tuple: fixed-width row is %d bytes, want %d", len(data), s.fixedSize)
		}
		// Extend dst once for the whole row, then write values in place —
		// per-value appends would re-check capacity on every column.
		n := len(s.cols)
		base := len(dst)
		if cap(dst)-base >= n {
			dst = dst[:base+n]
		} else {
			dst = append(dst, make([]Value, n)...)
		}
		for i := range s.cols {
			dst[base+i] = Value{
				Kind: s.cols[i].Kind,
				Int:  int64(binary.LittleEndian.Uint64(data[i*8:])),
			}
		}
		return dst, nil
	}
	row := dst
	rest := data
	for i := 0; i < s.NumColumns(); i++ {
		col := s.Column(i)
		switch col.Kind {
		case KindInt, KindDate:
			if len(rest) < 8 {
				return nil, fmt.Errorf("tuple: truncated %s column %s", col.Kind, col.Name)
			}
			u := binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
			v := Value{Kind: col.Kind, Int: int64(u)}
			row = append(row, v)
		case KindString:
			if len(rest) < 4 {
				return nil, fmt.Errorf("tuple: truncated length of column %s", col.Name)
			}
			n := int(binary.LittleEndian.Uint32(rest))
			rest = rest[4:]
			if len(rest) < n {
				return nil, fmt.Errorf("tuple: truncated string column %s: want %d bytes, have %d", col.Name, n, len(rest))
			}
			row = append(row, Str(string(rest[:n])))
			rest = rest[n:]
		default:
			return nil, fmt.Errorf("tuple: cannot decode kind %s", col.Kind)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("tuple: %d trailing bytes after row", len(rest))
	}
	return row, nil
}

// EncodedSize returns the number of bytes Encode would produce for row.
func EncodedSize(s *Schema, row Row) int {
	n := 0
	for i := 0; i < s.NumColumns() && i < len(row); i++ {
		switch s.Column(i).Kind {
		case KindInt, KindDate:
			n += 8
		case KindString:
			n += 4 + len(row[i].Str)
		}
	}
	return n
}
