package tuple

import (
	"bytes"
	"testing"
)

// fuzzSchema derives a schema from a compact descriptor: the low three bits
// give the column count (0–7), then two bits per column select the kind.
// Deriving the schema from fuzz input lets the engine explore row layouts as
// well as payloads.
func fuzzSchema(desc uint32) *Schema {
	n := int(desc & 7)
	cols := make([]Column, n)
	for i := range cols {
		var k Kind
		switch (desc >> (3 + 2*uint(i))) & 3 {
		case 0:
			k = KindInt
		case 1:
			k = KindString
		case 2:
			k = KindDate
		default:
			k = KindInt
		}
		cols[i] = Column{Name: string(rune('a' + i)), Kind: k}
	}
	return NewSchema(cols...)
}

// FuzzTupleDecode checks the row codec on arbitrary bytes: DecodeAppend must
// never panic, must leave a pre-populated destination prefix intact, and —
// because the row encoding is canonical — any accepted input must re-encode
// to exactly the original bytes.
func FuzzTupleDecode(f *testing.F) {
	// Seeds: a valid two-column row, a truncated int, a string whose length
	// prefix overruns the payload, trailing garbage, and an empty row.
	intCol := uint32(1)<<0 | 0<<3           // (a INT)
	mixed := uint32(3) | 0<<3 | 1<<5 | 2<<7 // (a INT, b VARCHAR, c DATE)
	valid, err := Encode(nil, fuzzSchema(mixed), Row{Int64(-42), Str("x\x00y"), Date(19000)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mixed, valid)
	f.Add(intCol, []byte{1, 2, 3})
	f.Add(uint32(1)|1<<3, []byte{0xFF, 0xFF, 0xFF, 0x7F})
	f.Add(intCol, append(make([]byte, 8), 0xAA))
	f.Add(uint32(0), []byte{})

	f.Fuzz(func(t *testing.T, desc uint32, data []byte) {
		s := fuzzSchema(desc)
		sentinel := []Value{Int64(7), Str("sentinel")}
		got, err := DecodeAppend(append([]Value(nil), sentinel...), s, data)
		if err != nil {
			return
		}
		if len(got) != len(sentinel)+s.NumColumns() {
			t.Fatalf("decoded %d values for %d columns", len(got)-len(sentinel), s.NumColumns())
		}
		for i, v := range sentinel {
			if !got[i].Equal(v) {
				t.Fatalf("destination prefix clobbered at %d: %s", i, got[i])
			}
		}
		row := Row(got[len(sentinel):])
		reencoded, err := Encode(nil, s, row)
		if err != nil {
			t.Fatalf("re-encoding accepted row %s: %v", row, err)
		}
		if !bytes.Equal(reencoded, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, reencoded)
		}
	})
}

// FuzzKeyCodec checks the order-preserving key codec: DecodeKeyAppend must
// never panic and accepted keys must re-encode byte-identically, while
// EncodeKey built from fuzzed values must round-trip and order exactly like
// Value.Compare.
func FuzzKeyCodec(f *testing.F) {
	f.Add(EncodeKey(Int64(-1), Str("a\x00b"), Date(0)), int64(5), int64(-5), "a", "b")
	f.Add(EncodeKey(Str("")), int64(0), int64(0), "", "\x00")
	f.Add([]byte{keyTagInt, 1, 2, 3}, int64(1<<62), int64(-1<<62), "same", "same")
	f.Add([]byte{keyTagString, 0x00, 0xEE}, int64(-1), int64(1), "\x00\xff", "\xff")
	f.Add([]byte{0x7F}, int64(0), int64(1), "a", "ab")

	f.Fuzz(func(t *testing.T, key []byte, i1, i2 int64, s1, s2 string) {
		if vals, err := DecodeKeyAppend(nil, key); err == nil {
			if reencoded := EncodeKey(vals...); !bytes.Equal(reencoded, key) {
				t.Fatalf("key decode/encode not canonical:\n in  %x\n out %x", key, reencoded)
			}
		}

		// Round trip: ints and strings come back exactly; dates come back as
		// KindInt with the same numeric payload (documented on DecodeKey).
		k := EncodeKey(Int64(i1), Str(s1), Date(i2))
		vals, err := DecodeKeyAppend(nil, k)
		if err != nil {
			t.Fatalf("decoding freshly encoded key %x: %v", k, err)
		}
		if len(vals) != 3 || vals[0].Int != i1 || vals[1].Str != s1 || vals[2].Int != i2 {
			t.Fatalf("round trip: encoded (%d, %q, %d), decoded %v", i1, s1, i2, vals)
		}

		// Order preservation: bytes.Compare on encodings agrees with
		// value-wise comparison, for ints and strings alike.
		if got, want := bytes.Compare(EncodeKey(Int64(i1)), EncodeKey(Int64(i2))), Int64(i1).Compare(Int64(i2)); got != want {
			t.Fatalf("int key order: Compare(%d, %d) = %d, encoded order %d", i1, i2, want, got)
		}
		if got, want := bytes.Compare(EncodeKey(Str(s1)), EncodeKey(Str(s2))), Str(s1).Compare(Str(s2)); got != want {
			t.Fatalf("string key order: Compare(%q, %q) = %d, encoded order %d", s1, s2, want, got)
		}
	})
}
