// Package tuple defines table schemas, typed column values, and the binary
// row format used by the storage engine.
//
// Rows are stored in slotted pages (see internal/storage) as variable-length
// byte strings. The encoding is self-describing given the schema: fixed-width
// integers are encoded little-endian, strings are length-prefixed.
package tuple

import (
	"fmt"
	"strings"
)

// Kind is the type of a column.
type Kind uint8

// Supported column kinds.
const (
	KindInt    Kind = iota // 64-bit signed integer
	KindString             // variable-length UTF-8 string
	KindDate               // days since epoch, stored as int64
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Column describes one column of a table.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns. The zero value is an empty schema.
type Schema struct {
	cols   []Column
	byName map[string]int
	// fixedSize is the encoded row size when every column is fixed-width,
	// or -1 when the schema has a string column; it gates the branch-free
	// decode fast path.
	fixedSize int
}

// NewSchema builds a schema from the given columns. Column names must be
// unique (case-insensitive); NewSchema panics otherwise, since schemas are
// always constructed from static catalogs or tests.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{
		cols:   append([]Column(nil), cols...),
		byName: make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			panic("tuple: duplicate column name " + c.Name)
		}
		s.byName[key] = i
		if s.fixedSize >= 0 {
			if c.Kind == KindString {
				s.fixedSize = -1
			} else {
				s.fixedSize += 8
			}
		}
	}
	return s
}

// NumColumns reports the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// FixedSize returns the encoded byte size shared by every row of an
// all-fixed-width schema, or -1 when the schema has a string column. Each
// fixed-width column occupies 8 bytes, so column i starts at offset 8*i.
func (s *Schema) FixedSize() int { return s.fixedSize }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Ordinal returns the position of the named column (case-insensitive) and
// whether it exists.
func (s *Schema) Ordinal(name string) (int, bool) {
	i, ok := s.byName[strings.ToLower(name)]
	return i, ok
}

// MustOrdinal is Ordinal but panics if the column does not exist. It is for
// tests and static wiring where absence is a programming error.
func (s *Schema) MustOrdinal(name string) int {
	i, ok := s.Ordinal(name)
	if !ok {
		panic("tuple: no column " + name)
	}
	return i
}

// Project returns a new schema consisting of the named columns, in order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i, ok := s.Ordinal(n)
		if !ok {
			return nil, fmt.Errorf("tuple: no column %q", n)
		}
		cols = append(cols, s.cols[i])
	}
	return NewSchema(cols...), nil
}

// String renders the schema as "(name KIND, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
