package tuple

import (
	"fmt"
	"time"
)

// Value is a single typed column value. Exactly one of the payload fields is
// meaningful, selected by Kind. Dates are carried in Int as days since the
// Unix epoch.
type Value struct {
	Kind Kind
	Int  int64
	Str  string
}

// Int64 constructs an integer value.
func Int64(v int64) Value { return Value{Kind: KindInt, Int: v} }

// Str constructs a string value.
func Str(v string) Value { return Value{Kind: KindString, Str: v} }

// Date constructs a date value from days since the Unix epoch.
func Date(days int64) Value { return Value{Kind: KindDate, Int: days} }

// DateFromTime constructs a date value from a time.Time (UTC date part).
func DateFromTime(t time.Time) Value {
	return Date(t.UTC().Unix() / 86400)
}

// Compare orders v against other. It returns a negative number, zero, or a
// positive number as v is less than, equal to, or greater than other.
// Integer and date values compare numerically; strings lexicographically.
// Comparing values of incompatible kinds panics: the planner type-checks
// expressions before execution, so a mismatch here is a bug.
func (v Value) Compare(other Value) int {
	switch v.Kind {
	case KindInt, KindDate:
		if other.Kind != KindInt && other.Kind != KindDate {
			panic(fmt.Sprintf("tuple: comparing %s with %s", v.Kind, other.Kind))
		}
		switch {
		case v.Int < other.Int:
			return -1
		case v.Int > other.Int:
			return 1
		default:
			return 0
		}
	case KindString:
		if other.Kind != KindString {
			panic(fmt.Sprintf("tuple: comparing %s with %s", v.Kind, other.Kind))
		}
		switch {
		case v.Str < other.Str:
			return -1
		case v.Str > other.Str:
			return 1
		default:
			return 0
		}
	default:
		panic(fmt.Sprintf("tuple: comparing invalid kind %s", v.Kind))
	}
}

// Equal reports whether v and other are the same value.
func (v Value) Equal(other Value) bool { return v.Compare(other) == 0 }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindDate:
		t := time.Unix(v.Int*86400, 0).UTC()
		return t.Format("2006-01-02")
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	default:
		return fmt.Sprintf("Value{kind=%d}", v.Kind)
	}
}

// Row is one tuple: a slice of values matching some schema.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row { return append(Row(nil), r...) }

// String renders the row for diagnostics.
func (r Row) String() string {
	s := "("
	for i, v := range r {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}
