package tuple

import (
	"encoding/binary"
	"fmt"
)

// Key encoding: an order-preserving byte encoding of one or more values, so
// that bytes.Compare on encoded keys agrees with value-wise comparison. It is
// used for B+tree keys (both clustered and secondary indexes).
//
// Layout per value:
//   - int/date: tag 0x01, then 8 bytes big-endian of the value with the sign
//     bit flipped (so negative numbers sort before positive ones);
//   - string: tag 0x02, then the bytes with 0x00 escaped as 0x00 0xFF,
//     terminated by 0x00 0x00.
//
// Tags keep kinds self-describing for DecodeKey and make accidental
// cross-kind comparisons deterministic.
const (
	keyTagInt    = 0x01
	keyTagString = 0x02
)

// AppendKey appends the order-preserving encoding of v to dst.
func AppendKey(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindInt, KindDate:
		dst = append(dst, keyTagInt)
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.Int)^(1<<63))
	case KindString:
		dst = append(dst, keyTagString)
		for i := 0; i < len(v.Str); i++ {
			b := v.Str[i]
			dst = append(dst, b)
			if b == 0x00 {
				dst = append(dst, 0xFF)
			}
		}
		dst = append(dst, 0x00, 0x00)
	default:
		panic(fmt.Sprintf("tuple: cannot key-encode kind %s", v.Kind))
	}
	return dst
}

// EncodeKey returns the order-preserving encoding of a composite key.
func EncodeKey(vals ...Value) []byte {
	var dst []byte
	for _, v := range vals {
		dst = AppendKey(dst, v)
	}
	return dst
}

// DecodeKey parses all values from an encoded composite key. Integer-tagged
// values decode as KindInt; callers that need KindDate must re-tag using the
// schema (the numeric payload is identical).
func DecodeKey(key []byte) ([]Value, error) {
	return DecodeKeyAppend(nil, key)
}

// DecodeKeyAppend parses all values from an encoded composite key, appending
// them to dst and returning the extended slice. Reusing dst's capacity lets
// index-entry iteration decode integer keys without per-entry allocation.
func DecodeKeyAppend(dst []Value, key []byte) ([]Value, error) {
	vals := dst
	rest := key
	for len(rest) > 0 {
		tag := rest[0]
		rest = rest[1:]
		switch tag {
		case keyTagInt:
			if len(rest) < 8 {
				return nil, fmt.Errorf("tuple: truncated int key")
			}
			u := binary.BigEndian.Uint64(rest) ^ (1 << 63)
			vals = append(vals, Int64(int64(u)))
			rest = rest[8:]
		case keyTagString:
			var sb []byte
			for {
				if len(rest) == 0 {
					return nil, fmt.Errorf("tuple: unterminated string key")
				}
				b := rest[0]
				rest = rest[1:]
				if b != 0x00 {
					sb = append(sb, b)
					continue
				}
				if len(rest) == 0 {
					return nil, fmt.Errorf("tuple: truncated string key escape")
				}
				next := rest[0]
				rest = rest[1:]
				if next == 0xFF {
					sb = append(sb, 0x00)
					continue
				}
				if next == 0x00 {
					break
				}
				return nil, fmt.Errorf("tuple: invalid string key escape 0x%02x", next)
			}
			vals = append(vals, Str(string(sb)))
		default:
			return nil, fmt.Errorf("tuple: invalid key tag 0x%02x", tag)
		}
	}
	return vals, nil
}
