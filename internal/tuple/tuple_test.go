package tuple

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString},
		Column{Name: "shipdate", Kind: KindDate},
	)
}

func TestSchemaOrdinals(t *testing.T) {
	s := testSchema()
	if n := s.NumColumns(); n != 3 {
		t.Fatalf("NumColumns = %d, want 3", n)
	}
	i, ok := s.Ordinal("NAME")
	if !ok || i != 1 {
		t.Errorf("Ordinal(NAME) = %d,%v, want 1,true", i, ok)
	}
	if _, ok := s.Ordinal("missing"); ok {
		t.Error("Ordinal(missing) reported present")
	}
	if got := s.MustOrdinal("shipdate"); got != 2 {
		t.Errorf("MustOrdinal(shipdate) = %d, want 2", got)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchema with duplicate names did not panic")
		}
	}()
	NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "A", Kind: KindString})
}

func TestSchemaProject(t *testing.T) {
	s := testSchema()
	p, err := s.Project("shipdate", "id")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumColumns() != 2 || p.Column(0).Name != "shipdate" || p.Column(1).Name != "id" {
		t.Errorf("Project produced %v", p)
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("Project(nope) succeeded")
	}
}

func TestSchemaString(t *testing.T) {
	got := testSchema().String()
	want := "(id INT, name VARCHAR, shipdate DATE)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int64(1), Int64(2), -1},
		{Int64(2), Int64(2), 0},
		{Int64(3), Int64(2), 1},
		{Int64(-5), Int64(5), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Str("ba"), Str("b"), 1},
		{Date(10), Date(20), -1},
		{Date(10), Int64(10), 0}, // dates and ints compare numerically
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
		if c.a.Equal(c.b) != (c.want == 0) {
			t.Errorf("Equal(%v, %v) inconsistent with Compare", c.a, c.b)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestValueCompareKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("comparing INT with VARCHAR did not panic")
		}
	}()
	Int64(1).Compare(Str("x"))
}

func TestValueString(t *testing.T) {
	if got := Int64(42).String(); got != "42" {
		t.Errorf("Int64 String = %q", got)
	}
	if got := Str("hi").String(); got != `"hi"` {
		t.Errorf("Str String = %q", got)
	}
	d := DateFromTime(time.Date(2007, 6, 1, 12, 0, 0, 0, time.UTC))
	if got := d.String(); got != "2007-06-01" {
		t.Errorf("Date String = %q", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema()
	row := Row{Int64(7), Str("widget"), Date(13665)}
	b, err := Encode(nil, s, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(s, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !got[i].Equal(row[i]) {
			t.Errorf("column %d: got %v want %v", i, got[i], row[i])
		}
	}
	if got[2].Kind != KindDate {
		t.Errorf("decoded kind = %v, want DATE", got[2].Kind)
	}
	if n := EncodedSize(s, row); n != len(b) {
		t.Errorf("EncodedSize = %d, len = %d", n, len(b))
	}
}

func TestEncodeErrors(t *testing.T) {
	s := testSchema()
	if _, err := Encode(nil, s, Row{Int64(1)}); err == nil {
		t.Error("short row encoded without error")
	}
	if _, err := Encode(nil, s, Row{Str("x"), Str("y"), Date(1)}); err == nil {
		t.Error("kind mismatch encoded without error")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := testSchema()
	row := Row{Int64(7), Str("widget"), Date(13665)}
	b, err := Encode(nil, s, row)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut += 3 {
		if _, err := Decode(s, b[:cut]); err == nil {
			t.Errorf("truncated row (%d bytes) decoded without error", cut)
		}
	}
	if _, err := Decode(s, append(b, 0x00)); err == nil {
		t.Error("trailing byte decoded without error")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	s := testSchema()
	f := func(id int64, name string, date int32) bool {
		row := Row{Int64(id), Str(name), Date(int64(date))}
		b, err := Encode(nil, s, row)
		if err != nil {
			return false
		}
		got, err := Decode(s, b)
		if err != nil {
			return false
		}
		return got[0].Int == id && got[1].Str == name && got[2].Int == int64(date)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyCodecOrderPreservingInts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := []int64{math.MinInt64, -1 << 40, -1, 0, 1, 1 << 40, math.MaxInt64}
	for i := 0; i < 200; i++ {
		vals = append(vals, rng.Int63()-rng.Int63())
	}
	for _, a := range vals {
		for _, b := range vals {
			ka, kb := EncodeKey(Int64(a)), EncodeKey(Int64(b))
			if sign(bytes.Compare(ka, kb)) != sign(Int64(a).Compare(Int64(b))) {
				t.Fatalf("key order broken for %d vs %d", a, b)
			}
		}
	}
}

func TestKeyCodecOrderPreservingStrings(t *testing.T) {
	vals := []string{"", "a", "ab", "b", "a\x00", "a\x00b", "a\x01", "\x00", "\x00\x00", "zzz"}
	for _, a := range vals {
		for _, b := range vals {
			ka, kb := EncodeKey(Str(a)), EncodeKey(Str(b))
			if sign(bytes.Compare(ka, kb)) != sign(Str(a).Compare(Str(b))) {
				t.Fatalf("key order broken for %q vs %q", a, b)
			}
		}
	}
}

func TestKeyCodecCompositeOrder(t *testing.T) {
	// Composite (string, int) keys must order by first value, then second.
	a := EncodeKey(Str("CA"), Int64(5))
	b := EncodeKey(Str("CA"), Int64(6))
	c := EncodeKey(Str("WA"), Int64(0))
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Errorf("composite key ordering broken: %x %x %x", a, b, c)
	}
}

func TestKeyCodecRoundTrip(t *testing.T) {
	in := []Value{Int64(-42), Str("hello\x00world"), Int64(7), Str("")}
	out, err := DecodeKey(EncodeKey(in...))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d values, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i].Kind == KindString {
			if out[i].Str != in[i].Str {
				t.Errorf("value %d: got %v want %v", i, out[i], in[i])
			}
		} else if out[i].Int != in[i].Int {
			t.Errorf("value %d: got %v want %v", i, out[i], in[i])
		}
	}
}

func TestKeyCodecQuick(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		ka := EncodeKey(Int64(a), Str(s1))
		kb := EncodeKey(Int64(b), Str(s2))
		wantCmp := Int64(a).Compare(Int64(b))
		if wantCmp == 0 {
			wantCmp = Str(s1).Compare(Str(s2))
		}
		return sign(bytes.Compare(ka, kb)) == sign(wantCmp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	bad := [][]byte{
		{0x05},             // unknown tag
		{0x01, 0x00},       // truncated int
		{0x02, 'a'},        // unterminated string
		{0x02, 0x00},       // truncated escape
		{0x02, 0x00, 0x7F}, // invalid escape
	}
	for _, b := range bad {
		if _, err := DecodeKey(b); err == nil {
			t.Errorf("DecodeKey(%x) succeeded, want error", b)
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int64(1), Str("x")}
	c := r.Clone()
	c[0] = Int64(99)
	if r[0].Int != 1 {
		t.Error("Clone did not copy")
	}
	if got := r.String(); got != `(1, "x")` {
		t.Errorf("Row.String = %q", got)
	}
}
