// Package heap implements heap files: unordered collections of rows in
// slotted pages, appended in arrival order. A heap scan reads pages in PID
// order, so it has the grouped page access property the paper's §III-B
// exploits: once a scan leaves a page it never returns to it.
package heap

import (
	"fmt"

	"pagefeedback/internal/storage"
)

// File is one heap file. It is not safe for concurrent use.
type File struct {
	pool     *storage.BufferPool
	file     storage.FileID
	lastPage storage.PageID // page currently receiving inserts
	rowCount int64
}

// Create allocates a new empty heap file in pool.
func Create(pool *storage.BufferPool) (*File, error) {
	file := pool.Disk().CreateFile()
	pp, err := pool.NewPage(file, storage.PageTypeHeap)
	if err != nil {
		return nil, err
	}
	defer pp.Unpin(true)
	return &File{pool: pool, file: file, lastPage: pp.ID}, nil
}

// Open attaches to an existing heap file, scanning it once to recover the
// row count and append position.
func Open(pool *storage.BufferPool, file storage.FileID) (*File, error) {
	n := pool.Disk().NumPages(file)
	if n == 0 {
		return nil, fmt.Errorf("heap: file %d is empty", file)
	}
	f := &File{pool: pool, file: file, lastPage: storage.PageID(n - 1)}
	for pid := storage.PageID(0); int(pid) < n; pid++ {
		live, err := liveRows(pool, file, pid)
		if err != nil {
			return nil, err
		}
		f.rowCount += live
	}
	return f, nil
}

// liveRows counts the live cells of one page, with the pin scoped to the
// call so no path — including a panic on a corrupt page — leaks it.
func liveRows(pool *storage.BufferPool, file storage.FileID, pid storage.PageID) (int64, error) {
	pp, err := pool.FetchPage(file, pid)
	if err != nil {
		return 0, err
	}
	defer pp.Unpin(false)
	var n int64
	for s := 0; s < pp.Page.NumSlots(); s++ {
		if pp.Page.Cell(storage.SlotID(s)) != nil {
			n++
		}
	}
	return n, nil
}

// FileID returns the backing file.
func (f *File) FileID() storage.FileID { return f.file }

// NumPages returns the number of allocated pages.
func (f *File) NumPages() int { return f.pool.Disk().NumPages(f.file) }

// NumRows returns the number of live rows.
func (f *File) NumRows() int64 { return f.rowCount }

// Insert appends the encoded row, allocating a new page when the current one
// is full, and returns its RID.
func (f *File) Insert(rowBytes []byte) (storage.RID, error) {
	if len(rowBytes) > storage.PageSize/4 {
		return storage.RID{}, fmt.Errorf("heap: row of %d bytes too large", len(rowBytes))
	}
	pp, err := f.pool.FetchPage(f.file, f.lastPage)
	if err != nil {
		return storage.RID{}, err
	}
	slot, ok := pp.Page.InsertCell(rowBytes)
	if !ok {
		pp.Unpin(false)
		np, err := f.pool.NewPage(f.file, storage.PageTypeHeap)
		if err != nil {
			return storage.RID{}, err
		}
		f.lastPage = np.ID
		slot, ok = np.Page.InsertCell(rowBytes)
		if !ok {
			np.Unpin(true)
			return storage.RID{}, fmt.Errorf("heap: row does not fit in empty page")
		}
		rid := storage.RID{Page: np.ID, Slot: slot}
		np.Unpin(true)
		f.rowCount++
		return rid, nil
	}
	rid := storage.RID{Page: pp.ID, Slot: slot}
	pp.Unpin(true)
	f.rowCount++
	return rid, nil
}

// Get returns a copy of the row at rid, or an error if the slot is deleted
// or out of range.
func (f *File) Get(rid storage.RID) ([]byte, error) {
	pp, err := f.pool.FetchPage(f.file, rid.Page)
	if err != nil {
		return nil, err
	}
	defer pp.Unpin(false)
	if int(rid.Slot) >= pp.Page.NumSlots() {
		return nil, fmt.Errorf("heap: no slot %v", rid)
	}
	cell := pp.Page.Cell(rid.Slot)
	if cell == nil {
		return nil, fmt.Errorf("heap: slot %v deleted", rid)
	}
	return append([]byte(nil), cell...), nil
}

// View locates the row at rid and calls fn with its bytes while the page is
// pinned. The cell aliases the page buffer and must not be retained after fn
// returns; in exchange, point reads avoid the copy Get makes.
func (f *File) View(rid storage.RID, fn func(cell []byte) error) error {
	pp, err := f.pool.FetchPage(f.file, rid.Page)
	if err != nil {
		return err
	}
	defer pp.Unpin(false)
	if int(rid.Slot) >= pp.Page.NumSlots() {
		return fmt.Errorf("heap: no slot %v", rid)
	}
	cell := pp.Page.Cell(rid.Slot)
	if cell == nil {
		return fmt.Errorf("heap: slot %v deleted", rid)
	}
	return fn(cell)
}

// Delete removes the row at rid.
func (f *File) Delete(rid storage.RID) error {
	pp, err := f.pool.FetchPage(f.file, rid.Page)
	if err != nil {
		return err
	}
	defer pp.Unpin(true)
	if !pp.Page.DeleteCell(rid.Slot) {
		return fmt.Errorf("heap: no live slot %v", rid)
	}
	f.rowCount--
	return nil
}

// Iterator walks all live rows in PID/slot order (grouped page access).
// RowBytes aliases the pinned page; copy before the next Next.
type Iterator struct {
	f    *File
	pp   *storage.PinnedPage
	pid  storage.PageID
	slot int
	err  error
}

// Scan returns an iterator positioned before the first row.
func (f *File) Scan() *Iterator {
	return &Iterator{f: f, pid: 0, slot: -1}
}

// Next advances to the next live row, returning false at the end or on
// error (check Err).
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	for {
		if it.pp == nil {
			if int(it.pid) >= it.f.NumPages() {
				return false
			}
			pp, err := it.f.pool.FetchPage(it.f.file, it.pid)
			if err != nil {
				it.err = err
				return false
			}
			it.pp = pp
			it.slot = -1
		}
		it.slot++
		for it.slot < it.pp.Page.NumSlots() {
			if it.pp.Page.Cell(storage.SlotID(it.slot)) != nil {
				return true
			}
			it.slot++
		}
		it.pp.Unpin(false)
		it.pp = nil
		it.pid++
	}
}

// RID returns the current row's identifier.
func (it *Iterator) RID() storage.RID {
	return storage.RID{Page: it.pp.ID, Slot: storage.SlotID(it.slot)}
}

// RowBytes returns the current row (aliases the page buffer).
func (it *Iterator) RowBytes() []byte {
	return it.pp.Page.Cell(storage.SlotID(it.slot))
}

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's page pin; safe to call multiple times.
func (it *Iterator) Close() {
	if it.pp != nil {
		it.pp.Unpin(false)
		it.pp = nil
	}
	it.pid = storage.PageID(it.f.NumPages()) // exhaust
}

// PageScanner walks a file one page at a time, for page-batched execution:
// each NextPage call pins a single page once, hands every live cell to the
// callback, and unpins before returning.
type PageScanner struct {
	f   *File
	pid storage.PageID
	end storage.PageID // exclusive upper bound
	err error
}

// ScanPages returns a scanner positioned before the first page.
func (f *File) ScanPages() *PageScanner {
	return &PageScanner{f: f, end: storage.PageID(f.NumPages())}
}

// Range restricts the scanner to the contiguous page range [lo, hi) and
// returns it, for partitioned parallel scans: each worker takes a disjoint
// range, so together they visit every page exactly once and each partition
// retains the grouped page access property. hi is clamped to the file size.
func (ps *PageScanner) Range(lo, hi storage.PageID) *PageScanner {
	if n := storage.PageID(ps.f.NumPages()); hi > n {
		hi = n
	}
	ps.pid = lo
	ps.end = hi
	return ps
}

// NextPage visits the next page that contains live rows, calling fn once per
// live cell in slot order. The cell aliases the pinned page and must not be
// retained after fn returns. Pages with no live rows are skipped. It returns
// false when the file is exhausted, fn returns an error, or a read fails
// (check Err).
func (ps *PageScanner) NextPage(fn func(rid storage.RID, cell []byte) error) bool {
	if ps.err != nil {
		return false
	}
	for ps.pid < ps.end {
		visited, err := ps.visitPage(fn)
		if err != nil {
			ps.err = err
			return false
		}
		if visited {
			return true
		}
	}
	return false
}

// visitPage pins the scanner's current page, hands each live cell to fn, and
// advances past the page; the pin is scoped to this call so neither an fn
// error nor a panic on a corrupt cell can leak it.
func (ps *PageScanner) visitPage(fn func(rid storage.RID, cell []byte) error) (visited bool, err error) {
	pp, err := ps.f.pool.FetchPage(ps.f.file, ps.pid)
	if err != nil {
		return false, err
	}
	defer pp.Unpin(false)
	ps.pid++
	for s := 0; s < pp.Page.NumSlots(); s++ {
		cell := pp.Page.Cell(storage.SlotID(s))
		if cell == nil {
			continue
		}
		visited = true
		if err := fn(storage.RID{Page: pp.ID, Slot: storage.SlotID(s)}, cell); err != nil {
			return visited, err
		}
	}
	return visited, nil
}

// Err returns the first error encountered.
func (ps *PageScanner) Err() error { return ps.err }
