package heap

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pagefeedback/internal/storage"
)

func newTestHeap(t *testing.T) *File {
	t.Helper()
	d := storage.NewDiskManager(storage.IOModel{RandomRead: 4 * time.Millisecond, SeqRead: 100 * time.Microsecond})
	bp := storage.NewBufferPool(d, 64)
	f, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestInsertGet(t *testing.T) {
	f := newTestHeap(t)
	rid, err := f.Insert([]byte("row one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "row one" {
		t.Errorf("Get = %q", got)
	}
	if f.NumRows() != 1 {
		t.Errorf("NumRows = %d", f.NumRows())
	}
}

func TestInsertSpillsToNewPages(t *testing.T) {
	f := newTestHeap(t)
	row := make([]byte, 100)
	const n = 1000
	rids := make([]storage.RID, n)
	for i := 0; i < n; i++ {
		copy(row, fmt.Sprintf("row-%04d", i))
		rid, err := f.Insert(row)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	// ~78 rows per 8KB page -> ~13 pages.
	if f.NumPages() < 10 || f.NumPages() > 16 {
		t.Errorf("NumPages = %d, want ~13", f.NumPages())
	}
	// RIDs are assigned in nondecreasing page order (append-only).
	for i := 1; i < n; i++ {
		if rids[i].Page < rids[i-1].Page {
			t.Fatal("RID pages went backwards")
		}
	}
	for i := 0; i < n; i += 101 {
		got, err := f.Get(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("row-%04d", i); string(got[:len(want)]) != want {
			t.Errorf("row %d = %q", i, got[:len(want)])
		}
	}
}

func TestGetErrors(t *testing.T) {
	f := newTestHeap(t)
	rid, _ := f.Insert([]byte("x"))
	if _, err := f.Get(storage.RID{Page: rid.Page, Slot: 99}); err == nil {
		t.Error("Get of missing slot succeeded")
	}
	if _, err := f.Get(storage.RID{Page: 99, Slot: 0}); err == nil {
		t.Error("Get of missing page succeeded")
	}
}

func TestDelete(t *testing.T) {
	f := newTestHeap(t)
	rid, _ := f.Insert([]byte("gone"))
	f.Insert([]byte("stays"))
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(rid); err == nil {
		t.Error("Get of deleted row succeeded")
	}
	if err := f.Delete(rid); err == nil {
		t.Error("double delete succeeded")
	}
	if f.NumRows() != 1 {
		t.Errorf("NumRows = %d", f.NumRows())
	}
}

func TestScanGroupedPageAccess(t *testing.T) {
	f := newTestHeap(t)
	row := make([]byte, 200)
	const n = 300
	for i := 0; i < n; i++ {
		copy(row, fmt.Sprintf("%05d", i))
		f.Insert(row)
	}
	it := f.Scan()
	defer it.Close()
	count := 0
	seenPages := map[storage.PageID]bool{}
	var cur storage.PageID = storage.InvalidPageID
	for it.Next() {
		rid := it.RID()
		if rid.Page != cur {
			// Grouped page access: each page is entered exactly once.
			if seenPages[rid.Page] {
				t.Fatalf("page %d revisited", rid.Page)
			}
			seenPages[rid.Page] = true
			cur = rid.Page
		}
		if want := fmt.Sprintf("%05d", count); string(it.RowBytes()[:5]) != want {
			t.Fatalf("row %d = %q", count, it.RowBytes()[:5])
		}
		count++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if count != n {
		t.Errorf("scanned %d rows, want %d", count, n)
	}
	if len(seenPages) != f.NumPages() {
		t.Errorf("scan touched %d pages, file has %d", len(seenPages), f.NumPages())
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	f := newTestHeap(t)
	var rids []storage.RID
	for i := 0; i < 10; i++ {
		rid, _ := f.Insert([]byte{byte('0' + i)})
		rids = append(rids, rid)
	}
	f.Delete(rids[3])
	f.Delete(rids[7])
	it := f.Scan()
	defer it.Close()
	var got []byte
	for it.Next() {
		got = append(got, it.RowBytes()[0])
	}
	if string(got) != "01245689" {
		t.Errorf("scan = %q", got)
	}
}

func TestScanIsSequentialIO(t *testing.T) {
	d := storage.NewDiskManager(storage.IOModel{RandomRead: 4 * time.Millisecond, SeqRead: 100 * time.Microsecond})
	bp := storage.NewBufferPool(d, 16) // small pool: scan must hit disk
	f, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]byte, 200)
	for i := 0; i < 2000; i++ {
		f.Insert(row)
	}
	if err := bp.Reset(); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	it := f.Scan()
	for it.Next() {
	}
	it.Close()
	st := d.Stats()
	if st.PhysicalReads == 0 {
		t.Fatal("scan did no physical I/O")
	}
	if st.SequentialReads < st.PhysicalReads-1 {
		t.Errorf("scan: %d/%d reads sequential, want all but the first",
			st.SequentialReads, st.PhysicalReads)
	}
}

func TestOpenRecoversState(t *testing.T) {
	d := storage.NewDiskManager(storage.IOModel{RandomRead: time.Millisecond, SeqRead: time.Microsecond})
	bp := storage.NewBufferPool(d, 64)
	f, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		f.Insert(make([]byte, 100))
	}
	rid, _ := f.Insert([]byte("marker"))
	f.Delete(rid)
	bp.Flush()

	f2, err := Open(bp, f.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumRows() != 500 {
		t.Errorf("reopened NumRows = %d, want 500", f2.NumRows())
	}
	// Appends continue on the last page.
	if _, err := f2.Insert([]byte("after reopen")); err != nil {
		t.Fatal(err)
	}
}

func TestRowTooLarge(t *testing.T) {
	f := newTestHeap(t)
	if _, err := f.Insert(make([]byte, storage.PageSize)); err == nil {
		t.Error("oversized insert succeeded")
	}
}

func TestRowBytesStableWithinPage(t *testing.T) {
	f := newTestHeap(t)
	f.Insert([]byte("abc"))
	f.Insert([]byte("def"))
	it := f.Scan()
	defer it.Close()
	it.Next()
	first := it.RowBytes()
	if !bytes.Equal(first, []byte("abc")) {
		t.Fatalf("first = %q", first)
	}
}
