package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallConfig keeps the tests fast; benches run the full scale.
func smallConfig() Config {
	return Config{
		SyntheticRows:  20000,
		RealScale:      0.05,
		Seed:           1,
		SampleFraction: 0.05,
	}
}

func TestTableI(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig()
	cfg.Out = &buf
	rows, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Rows <= 0 || r.Pages <= 0 || r.RowsPerPage <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "TABLE I") {
		t.Error("header missing")
	}
}

func TestFig6ShapeSmall(t *testing.T) {
	cfg := smallConfig()
	rs, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 100 {
		t.Fatalf("got %d results, want 100", len(rs))
	}
	// The paper's shape: mean speedup on the correlated column c2 is
	// clearly positive; on the uncorrelated c5 it is near zero.
	mean := func(col string) float64 {
		var sum float64
		n := 0
		for _, r := range rs {
			if r.Col == col {
				sum += r.Speedup
				n++
			}
		}
		return sum / float64(n)
	}
	// At this small fixture scale the index plan's fixed descent cost eats
	// into the win; the full-scale bench shows the paper-size speedups.
	if m := mean("c2"); m < 0.15 {
		t.Errorf("mean speedup on c2 = %.2f, want > 0.15", m)
	}
	if m := mean("c5"); m > 0.10 || m < -0.10 {
		t.Errorf("mean speedup on c5 = %.2f, want ~0", m)
	}
	if mean("c2") <= mean("c4")-0.05 {
		t.Errorf("correlation ordering violated: c2=%.2f c4=%.2f", mean("c2"), mean("c4"))
	}
	// No query should regress badly: feedback never picks a much worse plan.
	for _, r := range rs {
		if r.Speedup < -0.15 {
			t.Errorf("regression on %s: %.2f", r.Query, r.Speedup)
		}
	}
}

func TestFig8ShapeSmall(t *testing.T) {
	cfg := smallConfig()
	rs, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 40 {
		t.Fatalf("got %d results", len(rs))
	}
	// Correlated join columns should see INL wins after feedback.
	flips := 0
	var c2Sum float64
	c2N := 0
	for _, r := range rs {
		if r.Col == "c2" {
			c2Sum += r.Speedup
			c2N++
		}
		if strings.Contains(r.PlanAfter, "INLJoin") && !strings.Contains(r.PlanBefore, "INLJoin") {
			flips++
		}
		if r.Speedup < -0.15 {
			t.Errorf("regression on %s: %.2f", r.Query, r.Speedup)
		}
	}
	if flips == 0 {
		t.Error("no Hash->INL plan flips observed")
	}
	if c2N > 0 && c2Sum/float64(c2N) < 0.2 {
		t.Errorf("mean c2 join speedup = %.2f", c2Sum/float64(c2N))
	}
}

func TestFig10ShapeSmall(t *testing.T) {
	cfg := smallConfig()
	points, mean, stdev, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("only %d CR points", len(points))
	}
	for _, p := range points {
		if p.CR < 0 || p.CR > 1 {
			t.Errorf("CR out of range: %+v", p)
		}
		if p.LB > p.DPC || p.DPC > p.UB {
			t.Errorf("bounds violated: %+v", p)
		}
	}
	// The paper's point: CR spreads widely (mean ~0.56, stdev ~0.4). At
	// our scale the exact moments differ; require genuine spread.
	if mean < 0.15 || mean > 0.9 {
		t.Errorf("mean CR = %.2f, suspicious", mean)
	}
	if stdev < 0.15 {
		t.Errorf("stdev CR = %.2f: no spread, datasets too uniform", stdev)
	}
}

func TestFig11ShapeSmall(t *testing.T) {
	cfg := smallConfig()
	rs, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < 10 {
		t.Fatalf("only %d speedup results", len(rs))
	}
	pos := 0
	for _, r := range rs {
		if r.Speedup > 0.2 {
			pos++
		}
		if r.Speedup < -0.15 {
			t.Errorf("regression on %s: %.2f", r.Query, r.Speedup)
		}
	}
	if pos == 0 {
		t.Error("no real-database query sped up")
	}
}

func TestBitvectorAccuracySmall(t *testing.T) {
	cfg := smallConfig()
	points, err := BitvectorAccuracy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 {
		t.Fatalf("only %d points", len(points))
	}
	for _, p := range points {
		if p.ObservedDPC < p.TrueDPC {
			t.Errorf("width %d underestimates: %+v", p.Bits, p)
		}
	}
	// Wider filters are (weakly) more accurate; the widest is exact.
	last := points[len(points)-1]
	if last.ObservedDPC != last.TrueDPC {
		t.Errorf("injective-width filter not exact: %+v", last)
	}
	first := points[0]
	if first.OverestPct < last.OverestPct {
		t.Log("narrow filter happened to be accurate (possible, not an error)")
	}
}

func TestEstimatorComparisonSmall(t *testing.T) {
	cfg := smallConfig()
	points, err := EstimatorComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no comparison points (no seek plans chosen)")
	}
	for _, p := range points {
		if p.LinearErrPct > 25 {
			t.Errorf("linear counting error %.1f%% on %s", p.LinearErrPct, p.Query)
		}
	}
}

func TestDPSampleErrorSmall(t *testing.T) {
	cfg := smallConfig()
	points, err := DPSampleError(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d points", len(points))
	}
	// Full sampling is exact.
	last := points[len(points)-1]
	if last.MaxErrPct != 0 {
		t.Errorf("f=1.0 max error = %.2f%%", last.MaxErrPct)
	}
	// Error shrinks (weakly) as the fraction grows.
	if points[0].MaxErrPct < last.MaxErrPct {
		t.Error("error ordering inverted")
	}
}

func TestBitmapSizeAblationSmall(t *testing.T) {
	cfg := smallConfig()
	points, err := BitmapSizeAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points (seek never chosen)")
	}
	// At >= 1 bit/page the estimate should be quite accurate.
	for _, p := range points {
		if p.BitsPerPage >= 1 && p.ErrPct > 15 {
			t.Errorf("bits/page %.2f: error %.1f%%", p.BitsPerPage, p.ErrPct)
		}
	}
}

func TestPoolSizeAblationSmall(t *testing.T) {
	cfg := smallConfig()
	points, err := PoolSizeAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Speedup < 0.1 {
			t.Errorf("pool %d: speedup %.2f, want the plan flip at every size",
				p.PoolPages, p.Speedup)
		}
	}
}

func TestSelfTuningTransferSmall(t *testing.T) {
	cfg := smallConfig()
	points, err := SelfTuningTransfer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byCol := map[string]float64{}
	for _, p := range points {
		byCol[p.Col] = p.MeanSpeedup
		if p.MeanSpeedup < -0.10 {
			t.Errorf("%s: transfer made things worse (%.2f)", p.Col, p.MeanSpeedup)
		}
	}
	if byCol["c2"] < 0.10 {
		t.Errorf("c2 transfer speedup = %.2f, want clearly positive", byCol["c2"])
	}
	if byCol["c5"] > 0.05 || byCol["c5"] < -0.05 {
		t.Errorf("c5 transfer speedup = %.2f, want ~0", byCol["c5"])
	}
}

func TestFig7And9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	cfg := smallConfig()
	cfg.SyntheticRows = 10000
	f7, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7) == 0 {
		t.Error("Fig7 empty")
	}
	f9, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9) != 15 { // 5 predicate counts x 3 fractions
		t.Errorf("Fig9 produced %d points", len(f9))
	}
}
