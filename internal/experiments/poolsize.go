package experiments

import (
	"fmt"
	"time"

	"pagefeedback"
	"pagefeedback/internal/datagen"
)

// PoolPoint is one buffer-pool-size measurement.
type PoolPoint struct {
	PoolPages int
	TBefore   time.Duration
	TAfter    time.Duration
	Speedup   float64
}

// PoolSizeAblation verifies the DESIGN.md claim that feedback-driven plan
// improvements persist across buffer pool sizes: the experiments run cold-
// cache (like the paper's), so the distinct-page-count effect is about
// which pages are touched at all, not about residency. Each point builds a
// fresh engine with the given pool size and measures one Fig 6-style query.
func PoolSizeAblation(cfg Config) ([]PoolPoint, error) {
	cfg.normalize()
	sizes := []int{2048, 8192, 32768}
	var out []PoolPoint
	cfg.printf("BUFFER POOL SIZE ABLATION (cold cache, correlated column, 1%% selectivity)\n")
	cfg.printf("%10s %12s %12s %9s\n", "pool pages", "T", "T'", "speedup")
	for _, size := range sizes {
		ecfg := pagefeedback.DefaultConfig()
		ecfg.PoolPages = size
		eng := pagefeedback.New(ecfg)
		ds, err := datagen.BuildSynthetic(eng, cfg.SyntheticRows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sql := fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE c2 < %d", ds.Rows/100)
		r, err := measureSpeedup(eng, sql, cfg.SampleFraction)
		if err != nil {
			return nil, err
		}
		p := PoolPoint{PoolPages: size, TBefore: r.TBefore, TAfter: r.TAfter, Speedup: r.Speedup}
		out = append(out, p)
		cfg.printf("%10d %12s %12s %8.0f%%\n", size,
			p.TBefore.Round(time.Millisecond), p.TAfter.Round(time.Millisecond), p.Speedup*100)
	}
	return out, nil
}
