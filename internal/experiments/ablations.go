package experiments

import (
	"fmt"
	"math"

	"pagefeedback"
	"pagefeedback/internal/datagen"
	"pagefeedback/internal/exec"
	"pagefeedback/internal/opt"
)

// BitvectorPoint is one bit-vector-width measurement.
type BitvectorPoint struct {
	Bits         uint64
	BitsPctRows  float64 // filter width as % of inner table rows
	BitsPctBytes float64 // filter width as % of the inner table's size in bytes
	TrueDPC      int64
	ObservedDPC  int64
	OverestPct   float64
}

// BitvectorAccuracy reproduces the §V-B observation that a bit vector of
// modest size (< 1% of the table) suffices: it sweeps filter widths for a
// fixed join and reports the overestimation of the fed-back page count.
// Underestimation never occurs (no false negatives).
func BitvectorAccuracy(cfg Config) ([]BitvectorPoint, error) {
	cfg.normalize()
	eng := newEngine()
	ds, err := datagen.BuildSynthetic(eng, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	n := ds.Rows
	sql := fmt.Sprintf(
		"SELECT COUNT(t.padding) FROM t, t1 WHERE t1.c1 < %d AND t1.c2 = t.c2",
		int(float64(n)*0.02))
	q, err := eng.ParseQuery(sql)
	if err != nil {
		return nil, err
	}

	// Ground truth: a filter wide enough to be injective on the dense
	// integer domain.
	truth, err := runJoinDPC(eng, q, uint64(2*n), cfg.Seed)
	if err != nil {
		return nil, err
	}

	widths := []uint64{uint64(n) / 256, uint64(n) / 64, uint64(n) / 16,
		uint64(n) / 4, uint64(n), uint64(2 * n)}
	tab, _ := eng.Catalog().Table("t")
	tableBytes := float64(tab.NumPages()) * 8192
	var out []BitvectorPoint
	cfg.printf("BIT-VECTOR FILTER ACCURACY (true DPC = %d)\n", truth)
	cfg.printf("(exactness at 2 bits/row costs %.2f%% of the table's bytes — within the paper's \"<1%% of table size\")\n",
		100*float64(2*n)/8/tableBytes)
	cfg.printf("%12s %10s %12s %10s %10s\n", "bits", "%rows", "%tablebytes", "DPC", "overest")
	for _, w := range widths {
		got, err := runJoinDPC(eng, q, w, cfg.Seed)
		if err != nil {
			return nil, err
		}
		p := BitvectorPoint{
			Bits: w, BitsPctRows: 100 * float64(w) / float64(n),
			BitsPctBytes: 100 * float64(w) / 8 / tableBytes,
			TrueDPC:      truth, ObservedDPC: got,
			OverestPct: 100 * float64(got-truth) / math.Max(float64(truth), 1),
		}
		out = append(out, p)
		cfg.printf("%12d %9.1f%% %11.3f%% %10d %9.1f%%\n", w, p.BitsPctRows, p.BitsPctBytes, got, p.OverestPct)
	}
	return out, nil
}

// runJoinDPC executes the join with a join-DPC monitor of the given filter
// width and returns the observed inner-table page count.
func runJoinDPC(eng *pagefeedback.Engine, q *opt.Query, bits uint64, seed int64) (int64, error) {
	mcfg := &exec.MonitorConfig{
		Requests:       []exec.DPCRequest{{Table: q.Table, Join: true}},
		SampleFraction: 1.0,
		BitVectorBits:  bits,
		Seed:           seed,
	}
	res, err := eng.RunQuery(q, &pagefeedback.RunOptions{Monitor: mcfg})
	if err != nil {
		return 0, err
	}
	for _, r := range res.DPC {
		if r.Request.Join && r.Mechanism != pagefeedback.MechUnsatisfiable {
			return r.DPC, nil
		}
	}
	return 0, fmt.Errorf("experiments: join DPC not observed (plan: %s)", accessLabel(res))
}

// EstimatorPoint compares the probabilistic counter against the reservoir-
// sampling GEE estimator for one query (§III-A's deferred comparison).
type EstimatorPoint struct {
	Query          string
	TrueDPC        int64
	LinearCounting int64
	GEE            int64
	LinearErrPct   float64
	GEEErrPct      float64
}

// EstimatorComparison runs index-seek queries and reports both estimators'
// error against the exact count, demonstrating why the paper picked
// probabilistic counting.
func EstimatorComparison(cfg Config) ([]EstimatorPoint, error) {
	cfg.normalize()
	eng := newEngine()
	ds, err := datagen.BuildSynthetic(eng, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []EstimatorPoint
	cfg.printf("ESTIMATOR COMPARISON: LINEAR COUNTING vs SAMPLING (GEE)\n")
	cfg.printf("%-6s %8s %8s %8s %9s %9s\n", "col", "true", "linear", "GEE", "linErr", "geeErr")
	for _, col := range []string{"c2", "c4", "c5"} {
		sel := 0.03
		sql := fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE %s < %d",
			col, int(float64(ds.Rows)*sel))
		q, err := eng.ParseQuery(sql)
		if err != nil {
			return nil, err
		}
		// Exact ground truth from a scan-plan monitor.
		exact, err := exactDPC(eng, q)
		if err != nil {
			return nil, err
		}
		// Force the seek plan so the Fetch-side estimators run — this is a
		// monitoring-accuracy experiment, not a plan-quality one.
		eng.Optimizer().ClearInjections()
		eng.Optimizer().InjectDPC(q.Table, q.Pred, 1)
		mcfg := &exec.MonitorConfig{
			Requests:                 []exec.DPCRequest{{Table: q.Table, Pred: q.Pred}},
			CompareSamplingEstimator: true,
			ReservoirSize:            1024,
			Seed:                     cfg.Seed,
		}
		res, err := eng.RunQuery(q, &pagefeedback.RunOptions{Monitor: mcfg})
		if err != nil {
			return nil, err
		}
		var lin, gee int64
		for _, r := range res.DPC {
			if r.Mechanism == pagefeedback.MechLinearCount {
				lin, gee = r.DPC, r.SamplingEstimate
			}
		}
		if lin == 0 {
			// The plan was not a seek (clustering made scan cheaper);
			// skip rather than compare apples to nothing.
			continue
		}
		p := EstimatorPoint{
			Query: sql, TrueDPC: exact, LinearCounting: lin, GEE: gee,
			LinearErrPct: 100 * math.Abs(float64(lin-exact)) / float64(exact),
			GEEErrPct:    100 * math.Abs(float64(gee-exact)) / float64(exact),
		}
		out = append(out, p)
		cfg.printf("%-6s %8d %8d %8d %8.1f%% %8.1f%%\n",
			col, p.TrueDPC, p.LinearCounting, p.GEE, p.LinearErrPct, p.GEEErrPct)
	}
	eng.Optimizer().ClearInjections()
	return out, nil
}

// exactDPC obtains the exact DPC(T, pred) by monitoring a forced table
// scan with full sampling.
func exactDPC(eng *pagefeedback.Engine, q *opt.Query) (int64, error) {
	eng.Optimizer().ClearInjections()
	// A huge injected DPC makes every index plan look terrible: scan wins.
	eng.Optimizer().InjectDPC(q.Table, q.Pred, 1e12)
	mcfg := &exec.MonitorConfig{
		Requests:       []exec.DPCRequest{{Table: q.Table, Pred: q.Pred}},
		SampleFraction: 1.0,
	}
	res, err := eng.RunQuery(q, &pagefeedback.RunOptions{Monitor: mcfg})
	eng.Optimizer().ClearInjections()
	if err != nil {
		return 0, err
	}
	for _, r := range res.DPC {
		if r.Mechanism == pagefeedback.MechExactScan ||
			(r.Mechanism == pagefeedback.MechDPSample && r.Exact) {
			return r.DPC, nil
		}
	}
	return 0, fmt.Errorf("experiments: exact DPC not observed")
}

// SamplePoint is one DPSample-fraction measurement.
type SamplePoint struct {
	Fraction  float64
	TrueDPC   int64
	MeanEst   float64
	MaxErrPct float64
}

// DPSampleError sweeps the sampling fraction and reports the estimator's
// worst relative error over several seeds (the paper quotes a 0.5% max
// error at 1% sampling on the 100M-row table; error grows as the table —
// and so the number of sampled pages — shrinks).
func DPSampleError(cfg Config) ([]SamplePoint, error) {
	cfg.normalize()
	eng := newEngine()
	ds, err := datagen.BuildSynthetic(eng, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The scan predicate leads with c2, so the monitored c4 sub-predicate
	// is NOT a prefix — exactly the case that needs DPSample (a request
	// equal to the scan predicate would ride the free exact-prefix path
	// and never sample).
	sql := fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE c2 < %d AND c4 < %d",
		ds.Rows, int(float64(ds.Rows)*0.05))
	q, err := eng.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	monitored := q.Pred.Subset(1) // the c4 atom
	truthQ, err := eng.ParseQuery(fmt.Sprintf(
		"SELECT COUNT(padding) FROM t WHERE c4 < %d", int(float64(ds.Rows)*0.05)))
	if err != nil {
		return nil, err
	}
	truth, err := exactDPC(eng, truthQ)
	if err != nil {
		return nil, err
	}
	var out []SamplePoint
	cfg.printf("DPSAMPLE ERROR vs SAMPLING FRACTION (true DPC = %d)\n", truth)
	cfg.printf("%9s %10s %10s\n", "fraction", "mean est", "max err")
	for _, f := range []float64{0.01, 0.05, 0.10, 0.25, 1.0} {
		var sum, maxErr float64
		const trials = 5
		for s := int64(0); s < trials; s++ {
			mcfg := &exec.MonitorConfig{
				Requests:       []exec.DPCRequest{{Table: q.Table, Pred: monitored}},
				SampleFraction: f,
				Seed:           cfg.Seed + s,
			}
			// Keep the scan plan (DPSample is a scan-side monitor).
			eng.Optimizer().InjectDPC(q.Table, q.Pred, 1e12)
			res, err := eng.RunQuery(q, &pagefeedback.RunOptions{Monitor: mcfg})
			eng.Optimizer().ClearInjections()
			if err != nil {
				return nil, err
			}
			for _, r := range res.DPC {
				if r.Mechanism == pagefeedback.MechDPSample {
					sum += float64(r.DPC)
					e := 100 * math.Abs(float64(r.DPC-truth)) / float64(truth)
					if e > maxErr {
						maxErr = e
					}
				}
			}
		}
		p := SamplePoint{Fraction: f, TrueDPC: truth, MeanEst: sum / trials, MaxErrPct: maxErr}
		out = append(out, p)
		cfg.printf("%8.0f%% %10.0f %9.1f%%\n", f*100, p.MeanEst, p.MaxErrPct)
	}
	return out, nil
}

// BitmapPoint is one linear-counter sizing measurement.
type BitmapPoint struct {
	BitsPerPage float64
	Bits        uint64
	TrueDPC     int64
	Estimate    int64
	ErrPct      float64
}

// BitmapSizeAblation sweeps the linear counter's bitmap size (the paper:
// "much less than one bit per page" suffices) for a fixed seek workload.
func BitmapSizeAblation(cfg Config) ([]BitmapPoint, error) {
	cfg.normalize()
	eng := newEngine()
	ds, err := datagen.BuildSynthetic(eng, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sql := fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE c5 < %d", int(float64(ds.Rows)*0.02))
	q, err := eng.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	truth, err := exactDPC(eng, q)
	if err != nil {
		return nil, err
	}
	tab, _ := eng.Catalog().Table("t")
	pages := float64(tab.NumPages())
	var out []BitmapPoint
	cfg.printf("LINEAR COUNTER BITMAP SIZE (true DPC = %d, table pages = %.0f)\n", truth, pages)
	cfg.printf("%12s %10s %10s %9s\n", "bits/page", "bits", "estimate", "err")
	for _, bpp := range []float64{0.125, 0.25, 0.5, 1, 2, 8} {
		bits := uint64(bpp * pages)
		if bits < 64 {
			bits = 64
		}
		eng.Optimizer().ClearInjections()
		eng.Optimizer().InjectDPC(q.Table, q.Pred, 1) // force the seek
		mcfg := &exec.MonitorConfig{
			Requests:   []exec.DPCRequest{{Table: q.Table, Pred: q.Pred}},
			LinearBits: bits,
			Seed:       cfg.Seed,
		}
		res, err := eng.RunQuery(q, &pagefeedback.RunOptions{Monitor: mcfg})
		if err != nil {
			return nil, err
		}
		var est int64 = -1
		for _, r := range res.DPC {
			if r.Mechanism == pagefeedback.MechLinearCount {
				est = r.DPC
			}
		}
		if est < 0 {
			continue // plan was not a seek
		}
		p := BitmapPoint{
			BitsPerPage: bpp, Bits: bits, TrueDPC: truth, Estimate: est,
			ErrPct: 100 * math.Abs(float64(est-truth)) / float64(truth),
		}
		out = append(out, p)
		cfg.printf("%12.3f %10d %10d %8.1f%%\n", bpp, bits, est, p.ErrPct)
	}
	eng.Optimizer().ClearInjections()
	return out, nil
}
