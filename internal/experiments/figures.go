package experiments

import (
	"fmt"
	"time"

	"pagefeedback"
	"pagefeedback/internal/datagen"
	"pagefeedback/internal/exec"
)

// TableIRow is one database's properties, matching Table I's columns.
type TableIRow struct {
	Database    string
	Rows        int64
	Pages       int64
	RowsPerPage float64
}

// TableI builds every evaluation database and reports its physical
// properties, the reproduction of Table I.
func TableI(cfg Config) ([]TableIRow, error) {
	cfg.normalize()
	var out []TableIRow

	add := func(eng *pagefeedback.Engine, name, table string) {
		tab, _ := eng.Catalog().Table(table)
		out = append(out, TableIRow{
			Database: name, Rows: tab.NumRows(), Pages: tab.NumPages(),
			RowsPerPage: float64(tab.NumRows()) / float64(tab.NumPages()),
		})
	}

	realEng := newEngine()
	dss, err := datagen.BuildAllReal(realEng, cfg.RealScale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		add(realEng, ds.Name, ds.Table)
	}
	synEng := newEngine()
	syn, err := datagen.BuildSynthetic(synEng, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	add(synEng, syn.Name, syn.Table)

	cfg.printf("TABLE I: DATABASES USED IN EXPERIMENTS (scaled)\n")
	cfg.printf("%-16s %12s %10s %14s\n", "Database", "Num Rows", "Num Pages", "Avg Rows/Page")
	for _, r := range out {
		cfg.printf("%-16s %12d %10d %14.0f\n", r.Database, r.Rows, r.Pages, r.RowsPerPage)
	}
	return out, nil
}

// Fig6 reproduces the single-table speedup experiment: 100 queries (25 per
// synthetic column C2..C5), selectivity 1–10%, accurate cardinalities
// injected, page counts from execution feedback injected before
// re-optimization. The paper's shape: large speedups on the correlated
// columns (C2..C4), none on the uncorrelated C5.
func Fig6(cfg Config) ([]SpeedupResult, error) {
	cfg.normalize()
	eng := newEngine()
	ds, err := datagen.BuildSynthetic(eng, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	queries := datagen.SingleTableQueries(ds, 25, 0.01, 0.10, cfg.Seed)
	out := make([]SpeedupResult, 0, len(queries))
	cfg.printf("FIG 6: SPEEDUP FOR SINGLE TABLE QUERIES\n")
	cfg.printf("%5s %4s %6s %9s %9s %8s %10s %10s\n",
		"query", "col", "sel%", "T", "T'", "speedup", "estDPC", "actDPC")
	for i, q := range queries {
		r, err := measureSpeedup(eng, q.SQL, cfg.SampleFraction)
		if err != nil {
			return nil, fmt.Errorf("query %d (%s): %w", i, q.SQL, err)
		}
		r.Col = q.Col
		r.Selectivity = q.Selectivity
		out = append(out, *r)
		cfg.printf("%5d %4s %6.1f %9s %9s %7.0f%% %10d %10d\n",
			i+1, q.Col, q.Selectivity*100,
			r.TBefore.Round(time.Millisecond), r.TAfter.Round(time.Millisecond),
			r.Speedup*100, r.EstDPC, r.ActDPC)
	}
	printSpeedupSummary(cfg, out)
	return out, nil
}

func printSpeedupSummary(cfg Config, rs []SpeedupResult) {
	byCol := map[string][]float64{}
	var order []string
	for _, r := range rs {
		if _, ok := byCol[r.Col]; !ok {
			order = append(order, r.Col)
		}
		byCol[r.Col] = append(byCol[r.Col], r.Speedup)
	}
	cfg.printf("summary (mean speedup by column):\n")
	for _, col := range order {
		ss := byCol[col]
		var sum float64
		for _, s := range ss {
			sum += s
		}
		cfg.printf("  %-10s %6.1f%%  (%d queries)\n", col, sum/float64(len(ss))*100, len(ss))
	}
}

// OverheadResult is one query's monitoring-overhead measurement (Fig 7/9).
type OverheadResult struct {
	Query       string
	Col         string
	Predicates  int
	Fraction    float64
	BaseWall    time.Duration
	MonWall     time.Duration
	OverheadPct float64
}

// measureOverhead compares warm-cache wall-clock time with and without
// monitoring. Runs alternate base/monitored so machine drift cancels, and
// each side takes its best observation to suppress scheduler noise.
func measureOverhead(eng *pagefeedback.Engine, sqlText string, mon *pagefeedback.RunOptions, trials int) (base, monT time.Duration, err error) {
	baseOpts := &pagefeedback.RunOptions{WarmCache: true}
	mon.WarmCache = true
	// Prime the cache and code paths once per side.
	if _, err := eng.Query(sqlText, baseOpts); err != nil {
		return 0, 0, err
	}
	if _, err := eng.Query(sqlText, mon); err != nil {
		return 0, 0, err
	}
	base, monT = time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < trials; i++ {
		rb, err := eng.Query(sqlText, baseOpts)
		if err != nil {
			return 0, 0, err
		}
		if rb.WallTime < base {
			base = rb.WallTime
		}
		rm, err := eng.Query(sqlText, mon)
		if err != nil {
			return 0, 0, err
		}
		if rm.WallTime < monT {
			monT = rm.WallTime
		}
	}
	return base, monT, nil
}

// Fig7 reproduces the single-table monitoring-overhead experiment over the
// Fig 6 workload: wall-clock with monitors on vs off (paper: typically
// < 2% on a machine-scale run; the relative shape is the target here).
func Fig7(cfg Config) ([]OverheadResult, error) {
	cfg.normalize()
	eng := newEngine()
	ds, err := datagen.BuildSynthetic(eng, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// A subset of the Fig 6 workload suffices for timing.
	queries := datagen.SingleTableQueries(ds, 5, 0.01, 0.10, cfg.Seed)
	out := make([]OverheadResult, 0, len(queries))
	cfg.printf("FIG 7: MONITORING OVERHEADS FOR SINGLE TABLE QUERIES\n")
	cfg.printf("%5s %4s %12s %12s %9s\n", "query", "col", "base", "monitored", "overhead")
	for i, q := range queries {
		base, mon, err := measureOverhead(eng, q.SQL,
			&pagefeedback.RunOptions{MonitorAll: true, SampleFraction: cfg.SampleFraction}, 5)
		if err != nil {
			return nil, err
		}
		r := OverheadResult{
			Query: q.SQL, Col: q.Col, Fraction: cfg.SampleFraction,
			BaseWall: base, MonWall: mon,
			OverheadPct: 100 * float64(mon-base) / float64(base),
		}
		out = append(out, r)
		cfg.printf("%5d %4s %12s %12s %8.1f%%\n", i+1, q.Col, base, mon, r.OverheadPct)
	}
	return out, nil
}

// Fig8 reproduces the join-speedup experiment: 40 queries
// T1 ⋈ T with T1.C1 < val, joining on C2..C5, outer selectivity below the
// Hash/INL crossover. Feedback flips Hash Join to INL where clustering
// makes the inner fetch cheap.
func Fig8(cfg Config) ([]SpeedupResult, error) {
	cfg.normalize()
	eng := newEngine()
	ds, err := datagen.BuildSynthetic(eng, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	queries := datagen.JoinQueries(ds, 40, 0.002, 0.05, cfg.Seed)
	out := make([]SpeedupResult, 0, len(queries))
	cfg.printf("FIG 8: SPEEDUP FOR JOIN QUERIES\n")
	cfg.printf("%5s %4s %6s %24s %24s %8s\n", "query", "col", "sel%", "plan P", "plan P'", "speedup")
	for i, q := range queries {
		r, err := measureSpeedup(eng, q.SQL, 1.0) // full sampling: joins need the exact filter pass
		if err != nil {
			return nil, fmt.Errorf("join query %d: %w", i, err)
		}
		r.Col = q.Col
		r.Selectivity = q.Selectivity
		out = append(out, *r)
		cfg.printf("%5d %4s %6.1f %24s %24s %7.0f%%\n",
			i+1, q.Col, q.Selectivity*100, trim(r.PlanBefore, 24), trim(r.PlanAfter, 24), r.Speedup*100)
	}
	printSpeedupSummary(cfg, out)
	return out, nil
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Fig9 reproduces the page-sampling effectiveness experiment: monitoring
// overhead as the number of predicates grows, at page-sampling fractions
// 1%, 10%, and 100% (full scan with short-circuiting off). The paper's
// point: only sampling keeps the overhead flat as predicates are added.
func Fig9(cfg Config) ([]OverheadResult, error) {
	cfg.normalize()
	eng := newEngine()
	ds, err := datagen.BuildSynthetic(eng, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.01, 0.10, 1.0}
	var out []OverheadResult
	cfg.printf("FIG 9: EFFECTIVENESS OF PAGE SAMPLING\n")
	cfg.printf("%6s %9s %12s %12s %9s\n", "preds", "sample%", "base", "monitored", "overhead")
	for k := 1; k <= 5; k++ {
		q := datagen.MultiPredicateQuery(ds, k, 0.5)
		// Monitor each conjunct's single-column DPC (the page counts "for
		// all the relevant indexes").
		pq, err := eng.ParseQuery(q.SQL)
		if err != nil {
			return nil, err
		}
		for _, f := range fractions {
			mcfg := &exec.MonitorConfig{SampleFraction: f, Seed: cfg.Seed}
			for i := range pq.Pred.Atoms {
				mcfg.Requests = append(mcfg.Requests, exec.DPCRequest{
					Table: pq.Table, Pred: pq.Pred.Subset(i),
				})
			}
			base, mon, err := measureOverhead(eng, q.SQL,
				&pagefeedback.RunOptions{Monitor: mcfg}, 5)
			if err != nil {
				return nil, err
			}
			r := OverheadResult{
				Query: q.SQL, Predicates: k, Fraction: f,
				BaseWall: base, MonWall: mon,
				OverheadPct: 100 * float64(mon-base) / float64(base),
			}
			out = append(out, r)
			cfg.printf("%6d %8.0f%% %12s %12s %8.1f%%\n", k, f*100, base, mon, r.OverheadPct)
		}
	}
	return out, nil
}
