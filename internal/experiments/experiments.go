// Package experiments regenerates every table and figure of the paper's
// evaluation (§V-B) against the simulated engine: Table I (databases),
// Fig 6/7 (single-table speedup and overhead), Fig 8 (join speedup), Fig 9
// (page-sampling effectiveness), Fig 10 (clustering ratios of real data),
// Fig 11 (real-database speedups), plus the §V-B bit-vector accuracy
// observation and ablations the paper leaves as future work.
//
// Absolute numbers differ from the paper's (its substrate was SQL Server on
// 2007 hardware; ours is a simulator) but the shapes — who wins, by what
// factor, where the crossovers sit — are the reproduction target.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pagefeedback"
)

// Config scales the experiments.
type Config struct {
	// SyntheticRows sizes the synthetic table T (paper: 100M; default
	// 200k, a 1:500 scale that keeps every crossover).
	SyntheticRows int
	// RealScale scales the real-world-like databases relative to 1:100 of
	// Table I (1.0 = Table I / 100).
	RealScale float64
	// Seed drives all data generation and sampling.
	Seed int64
	// SampleFraction for DPSample monitors (default 0.01).
	SampleFraction float64
	// Out receives the printed tables (default: discard).
	Out io.Writer
}

// DefaultConfig returns the standard experiment scale.
func DefaultConfig() Config {
	return Config{
		SyntheticRows:  200000,
		RealScale:      1.0,
		Seed:           1,
		SampleFraction: 0.01,
	}
}

func (c *Config) normalize() {
	if c.SyntheticRows <= 0 {
		c.SyntheticRows = 200000
	}
	if c.RealScale <= 0 {
		c.RealScale = 1.0
	}
	if c.SampleFraction <= 0 {
		c.SampleFraction = 0.01
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

func (c *Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.Out, format, args...)
}

// newEngine builds an engine sized for the experiments.
func newEngine() *pagefeedback.Engine {
	cfg := pagefeedback.DefaultConfig()
	cfg.PoolPages = 16384 // 128 MB: large enough that repeats are logical
	return pagefeedback.New(cfg)
}

// SpeedupResult is one query's paper-methodology measurement.
type SpeedupResult struct {
	Query       string
	Col         string
	Selectivity float64
	// PlanBefore/PlanAfter are the access/join operator labels.
	PlanBefore, PlanAfter string
	// TBefore/TAfter are the simulated execution times T and T'.
	TBefore, TAfter time.Duration
	// Speedup = (T - T')/T.
	Speedup float64
	// EstDPC/ActDPC are the optimizer's estimate and the fed-back count
	// for the primary monitored expression.
	EstDPC, ActDPC int64
}

// measureSpeedup applies the §V-B evaluation methodology to one query:
//
//  1. inject the accurate cardinality (obtained by running the counting
//     query offline),
//  2. optimize and execute plan P with monitoring on a cold cache → T,
//  3. feed the observed page counts back, re-optimize to P', execute → T',
//  4. report (T − T')/T.
func measureSpeedup(eng *pagefeedback.Engine, sqlText string, sampleFraction float64) (*SpeedupResult, error) {
	q, err := eng.ParseQuery(sqlText)
	if err != nil {
		return nil, err
	}
	// Each query is measured independently, per the paper's methodology:
	// earlier queries' feedback must not leak in — neither injections
	// (join-DPC ones are keyed by column, not predicate) nor the
	// self-tuning page-count histograms, which by design generalize
	// across predicates on a column.
	eng.Optimizer().ClearInjections()
	eng.Optimizer().ClearDPCHistograms()

	// Step 1: accurate cardinalities. The workload queries are COUNT
	// queries, so one execution yields the exact counts.
	pre, err := eng.RunQuery(q, nil)
	if err != nil {
		return nil, err
	}
	if len(q.Pred.Atoms) > 0 && len(pre.Rows) == 1 {
		// For single-table queries the count IS the predicate cardinality.
		if !q.IsJoin() {
			eng.Optimizer().InjectCardinality(q.Table, q.Pred, float64(pre.Rows[0][0].Int))
		}
	}
	if q.IsJoin() && len(q.Pred2.Atoms) > 0 {
		// Count the outer side's qualifying rows exactly.
		cq := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s", q.Table2, q.Pred2)
		cres, err := eng.Query(cq, nil)
		if err == nil && len(cres.Rows) == 1 {
			eng.Optimizer().InjectCardinality(q.Table2, q.Pred2, float64(cres.Rows[0][0].Int))
		}
	}

	// Step 2: plan P with monitoring, cold cache.
	res1, err := eng.RunQuery(q, &pagefeedback.RunOptions{
		MonitorAll: true, SampleFraction: sampleFraction,
	})
	if err != nil {
		return nil, err
	}

	// Step 3: feed back, re-optimize, execute P'.
	eng.ApplyFeedback(res1)
	res2, err := eng.RunQuery(q, nil)
	if err != nil {
		return nil, err
	}

	out := &SpeedupResult{
		Query:      sqlText,
		PlanBefore: accessLabel(res1),
		PlanAfter:  accessLabel(res2),
		TBefore:    res1.SimulatedTime,
		TAfter:     res2.SimulatedTime,
	}
	if out.TBefore > 0 {
		out.Speedup = float64(out.TBefore-out.TAfter) / float64(out.TBefore)
	}
	for i, r := range res1.DPC {
		if r.Mechanism != pagefeedback.MechUnsatisfiable {
			out.ActDPC = r.DPC
			if i < len(res1.Stats.DPC) {
				out.EstDPC = res1.Stats.DPC[i].Estimated
			}
			break
		}
	}
	return out, nil
}

// accessLabel summarizes the plan's access/join strategy: the first
// operator below the aggregate/sort/filter shell. (An INL join has a single
// child, so descending through every single-child node would skip it.)
func accessLabel(res *pagefeedback.Result) string {
	stats := res.Stats.Plan
	for len(stats.Children) == 1 &&
		(strings.HasPrefix(stats.Label, "Aggregate") ||
			strings.HasPrefix(stats.Label, "Sort") ||
			strings.HasPrefix(stats.Label, "Filter")) {
		stats = stats.Children[0]
	}
	return stats.Label
}
