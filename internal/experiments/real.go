package experiments

import (
	"fmt"
	"math"
	"time"

	"pagefeedback"
	"pagefeedback/internal/datagen"
	"pagefeedback/internal/exec"
)

// CRPoint is one clustering-ratio measurement (Fig 10).
type CRPoint struct {
	Database    string
	Column      string
	Query       string
	Rows        int64   // n: rows satisfying the predicate
	DPC         int64   // N: actual distinct pages
	LB, UB      int64   // bounds: ceil(n/k) and min(n, P)
	CR          float64 // (N-LB)/(UB-LB)
	Selectivity float64
}

// Fig10 reproduces the clustering-ratio study: for equality predicates with
// selectivity < 10% across the five real-world-like databases, compute
// CR = (N − LB)/(UB − LB). The paper reports mean ≈ 0.56 and standard
// deviation ≈ 0.4 — i.e., real columns are all over the range, so no
// analytical formula fits them all.
func Fig10(cfg Config) ([]CRPoint, float64, float64, error) {
	cfg.normalize()
	eng := newEngine()
	dss, err := datagen.BuildAllReal(eng, cfg.RealScale, cfg.Seed)
	if err != nil {
		return nil, 0, 0, err
	}
	var points []CRPoint
	cfg.printf("FIG 10: PAGE CLUSTERING FOR REAL DATASETS\n")
	cfg.printf("%-14s %-12s %8s %8s %8s %8s %6s\n", "database", "column", "rows", "DPC", "LB", "UB", "CR")
	for _, ds := range dss {
		tab, _ := eng.Catalog().Table(ds.Table)
		pages := tab.NumPages()
		rowsPerPage := float64(tab.NumRows()) / float64(pages)
		queries := datagen.EqualityQueries(ds, 4, cfg.Seed+int64(len(points)))
		for _, q := range queries {
			// Run with full-sampling monitoring to get exact n and N.
			pq, err := eng.ParseQuery(q.SQL)
			if err != nil {
				return nil, 0, 0, err
			}
			mcfg := &exec.MonitorConfig{
				Requests:       []exec.DPCRequest{{Table: pq.Table, Pred: pq.Pred}},
				SampleFraction: 1.0,
				Seed:           cfg.Seed,
			}
			res, err := eng.RunQuery(pq, &pagefeedback.RunOptions{Monitor: mcfg})
			if err != nil {
				return nil, 0, 0, err
			}
			n := res.Rows[0][0].Int
			if n == 0 || float64(n) > 0.10*float64(tab.NumRows()) {
				continue // the paper keeps selectivity < 10%
			}
			var dpc int64
			for _, r := range res.DPC {
				if r.Mechanism != pagefeedback.MechUnsatisfiable {
					dpc = r.DPC
				}
			}
			lb := int64(math.Ceil(float64(n) / rowsPerPage))
			ub := n
			if ub > pages {
				ub = pages
			}
			cr := 0.0
			if ub > lb {
				cr = float64(dpc-lb) / float64(ub-lb)
			}
			cr = math.Max(0, math.Min(1, cr))
			p := CRPoint{
				Database: ds.Name, Column: q.Col, Query: q.SQL,
				Rows: n, DPC: dpc, LB: lb, UB: ub, CR: cr,
				Selectivity: float64(n) / float64(tab.NumRows()),
			}
			points = append(points, p)
			cfg.printf("%-14s %-12s %8d %8d %8d %8d %6.2f\n",
				p.Database, p.Column, p.Rows, p.DPC, p.LB, p.UB, p.CR)
		}
	}
	var mean, stdev float64
	for _, p := range points {
		mean += p.CR
	}
	if len(points) > 0 {
		mean /= float64(len(points))
		for _, p := range points {
			stdev += (p.CR - mean) * (p.CR - mean)
		}
		stdev = math.Sqrt(stdev / float64(len(points)))
	}
	cfg.printf("mean CR = %.2f, stdev = %.2f over %d predicates (paper: 0.56 / 0.4)\n",
		mean, stdev, len(points))
	return points, mean, stdev, nil
}

// Fig11 reproduces the real-database speedup experiment: equality queries
// across the five databases (80 in the paper), measured with the same
// inject-feedback-reoptimize methodology as Fig 6.
func Fig11(cfg Config) ([]SpeedupResult, error) {
	cfg.normalize()
	eng := newEngine()
	dss, err := datagen.BuildAllReal(eng, cfg.RealScale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []SpeedupResult
	cfg.printf("FIG 11: SPEEDUP FOR REAL WORLD DATABASES\n")
	cfg.printf("%5s %-14s %-12s %9s %9s %8s\n", "query", "database", "column", "T", "T'", "speedup")
	i := 0
	for _, ds := range dss {
		tab, _ := eng.Catalog().Table(ds.Table)
		queries := datagen.EqualityQueries(ds, 16/len(ds.QueryCols)+1, cfg.Seed+int64(i))
		for _, q := range queries {
			// Filter selectivity > 10% like the paper.
			chk, err := eng.Query(q.SQL, nil)
			if err != nil {
				return nil, err
			}
			n := chk.Rows[0][0].Int
			if n == 0 || float64(n) > 0.10*float64(tab.NumRows()) {
				continue
			}
			r, err := measureSpeedup(eng, q.SQL, 1.0)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.SQL, err)
			}
			r.Col = q.Col
			out = append(out, *r)
			i++
			cfg.printf("%5d %-14s %-12s %9s %9s %7.0f%%\n",
				i, ds.Name, q.Col,
				r.TBefore.Round(time.Millisecond), r.TAfter.Round(time.Millisecond),
				r.Speedup*100)
		}
	}
	printSpeedupSummary(cfg, out)
	return out, nil
}
