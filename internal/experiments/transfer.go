package experiments

import (
	"fmt"

	"pagefeedback"
	"pagefeedback/internal/datagen"
)

// TransferPoint is one column's self-tuning transfer measurement.
type TransferPoint struct {
	Col          string
	TrainQueries int
	EvalQueries  int
	// MeanSpeedup is (T_untrained − T_trained)/T_untrained averaged over
	// evaluation queries none of which were ever monitored.
	MeanSpeedup float64
}

// SelfTuningTransfer quantifies the §VI extension: an engine trained by
// monitoring a handful of queries per column is compared against an
// untrained twin on FRESH queries (different constants, never monitored,
// no exact injections). Correlated columns should transfer nearly the full
// Fig 6 gain; the uncorrelated column should transfer nothing — and,
// crucially, lose nothing.
func SelfTuningTransfer(cfg Config) ([]TransferPoint, error) {
	cfg.normalize()
	trained := newEngine()
	untrained := newEngine()
	dsA, err := datagen.BuildSynthetic(trained, cfg.SyntheticRows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := datagen.BuildSynthetic(untrained, cfg.SyntheticRows, cfg.Seed); err != nil {
		return nil, err
	}

	const trainPerCol, evalPerCol = 5, 10
	trainQs := datagen.SingleTableQueries(dsA, trainPerCol, 0.01, 0.10, cfg.Seed+100)
	for _, q := range trainQs {
		res, err := trained.Query(q.SQL, &pagefeedback.RunOptions{
			MonitorAll: true, SampleFraction: cfg.SampleFraction,
		})
		if err != nil {
			return nil, err
		}
		trained.ApplyFeedback(res)
	}
	// Drop the per-predicate exact injections: only the learned
	// histograms may help the evaluation queries.
	trained.Optimizer().ClearInjections()

	evalQs := datagen.SingleTableQueries(dsA, evalPerCol, 0.01, 0.10, cfg.Seed+200)
	sums := map[string]float64{}
	counts := map[string]int{}
	var order []string
	for _, q := range evalQs {
		resT, err := trained.Query(q.SQL, nil)
		if err != nil {
			return nil, err
		}
		resU, err := untrained.Query(q.SQL, nil)
		if err != nil {
			return nil, err
		}
		if resT.Rows[0][0].Int != resU.Rows[0][0].Int {
			return nil, fmt.Errorf("experiments: trained/untrained answers differ on %s", q.SQL)
		}
		sp := float64(resU.SimulatedTime-resT.SimulatedTime) / float64(resU.SimulatedTime)
		if _, ok := sums[q.Col]; !ok {
			order = append(order, q.Col)
		}
		sums[q.Col] += sp
		counts[q.Col]++
	}

	cfg.printf("SELF-TUNING TRANSFER (train %d queries/column with monitoring,\n", trainPerCol)
	cfg.printf("evaluate %d FRESH queries/column with no monitoring or injections)\n", evalPerCol)
	cfg.printf("%6s %14s\n", "col", "mean speedup")
	var out []TransferPoint
	for _, col := range order {
		p := TransferPoint{
			Col: col, TrainQueries: trainPerCol, EvalQueries: counts[col],
			MeanSpeedup: sums[col] / float64(counts[col]),
		}
		out = append(out, p)
		cfg.printf("%6s %13.0f%%\n", col, p.MeanSpeedup*100)
	}
	return out, nil
}
