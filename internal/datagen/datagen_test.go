package datagen

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"pagefeedback"
)

func newEng() *pagefeedback.Engine {
	cfg := pagefeedback.DefaultConfig()
	cfg.PoolPages = 4096
	return pagefeedback.New(cfg)
}

func TestPermWithDisorder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	id := permWithDisorder(100, 0, rng)
	for i, v := range id {
		if v != i {
			t.Fatal("window 0 is not the identity")
		}
	}
	for _, w := range []int{10, 50, 100, 1000} {
		p := permWithDisorder(100, w, rng)
		seen := make([]bool, 100)
		maxDisp := 0
		for i, v := range p {
			if v < 0 || v >= 100 || seen[v] {
				t.Fatalf("window %d: not a permutation", w)
			}
			seen[v] = true
			d := i - v
			if d < 0 {
				d = -d
			}
			if d > maxDisp {
				maxDisp = d
			}
		}
		if w < 100 && maxDisp > w+5 {
			t.Errorf("window %d: displacement %d exceeds window", w, maxDisp)
		}
	}
}

func TestBuildSynthetic(t *testing.T) {
	eng := newEng()
	ds, err := BuildSynthetic(eng, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.QueryCols) != 4 {
		t.Fatalf("QueryCols = %v", ds.QueryCols)
	}
	tab, ok := eng.Catalog().Table("t")
	if !ok {
		t.Fatal("table t missing")
	}
	if tab.NumRows() != 5000 {
		t.Errorf("rows = %d", tab.NumRows())
	}
	if len(tab.Indexes()) != 4 {
		t.Errorf("indexes = %d", len(tab.Indexes()))
	}
	// ~100-byte rows -> ~70-80 rows/page like the paper's synthetic table.
	rpp := float64(tab.NumRows()) / float64(tab.NumPages())
	if rpp < 55 || rpp > 95 {
		t.Errorf("rows/page = %.1f, want ~80", rpp)
	}
	// c2 correlates: the count via SQL returns the right answer.
	res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 500", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 500 {
		t.Errorf("count = %d", res.Rows[0][0].Int)
	}
	// t1 is a join copy.
	if _, ok := eng.Catalog().Table("t1"); !ok {
		t.Error("t1 missing")
	}
}

func TestBuildRealWorldRowsPerPage(t *testing.T) {
	// Each database must land near its Table I rows/page.
	cases := []struct {
		build func(*pagefeedback.Engine, int, int64) (*Dataset, error)
		table string
		want  float64 // Table I "Avg. Rows Per Page"
		tol   float64
	}{
		{BuildBookRetailer, "orders", 27, 8},
		{BuildYellowPages, "listings", 39, 12},
		{BuildTPCH, "lineitem", 54, 16},
		{BuildVoter, "voters", 46, 14},
		{BuildProducts, "products", 9, 3},
	}
	for _, c := range cases {
		eng := newEng()
		ds, err := c.build(eng, 4000, 7)
		if err != nil {
			t.Fatalf("%s: %v", c.table, err)
		}
		tab, _ := eng.Catalog().Table(c.table)
		rpp := float64(tab.NumRows()) / float64(tab.NumPages())
		if rpp < c.want-c.tol || rpp > c.want+c.tol {
			t.Errorf("%s: rows/page = %.1f, want %v±%v", c.table, rpp, c.want, c.tol)
		}
		if len(ds.QueryCols) == 0 {
			t.Errorf("%s: no query columns", c.table)
		}
		// Every query column got an index and is queryable.
		for _, qc := range ds.QueryCols {
			res, err := eng.Query(
				"SELECT COUNT(padding) FROM "+c.table+" WHERE "+qc.Name+" = "+itoa(qc.Lo), nil)
			if err != nil {
				t.Fatalf("%s.%s: %v", c.table, qc.Name, err)
			}
			_ = res
		}
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func TestBuildAllReal(t *testing.T) {
	eng := newEng()
	dss, err := BuildAllReal(eng, 0.05, 3) // tiny scale for test speed
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 5 {
		t.Fatalf("built %d datasets", len(dss))
	}
	names := map[string]bool{}
	for _, ds := range dss {
		names[ds.Name] = true
	}
	for _, want := range []string{"Book Retailer", "Yellow Pages", "TPC-H", "Voter Data", "Products"} {
		if !names[want] {
			t.Errorf("missing dataset %q", want)
		}
	}
}

func TestSingleTableQueries(t *testing.T) {
	ds := &Dataset{Table: "t", Rows: 10000, QueryCols: []QueryCol{
		{Name: "c2", Lo: 0, Hi: 9999}, {Name: "c5", Lo: 0, Hi: 9999},
	}}
	qs := SingleTableQueries(ds, 25, 0.01, 0.10, 1)
	if len(qs) != 50 {
		t.Fatalf("generated %d queries", len(qs))
	}
	for i, q := range qs {
		if !strings.HasPrefix(q.SQL, "SELECT COUNT(padding) FROM t WHERE") {
			t.Fatalf("query %d: %s", i, q.SQL)
		}
		if q.Selectivity < 0.01 || q.Selectivity > 0.10 {
			t.Errorf("query %d selectivity %v", i, q.Selectivity)
		}
	}
	// Grouped by column: first 25 on c2.
	for i := 0; i < 25; i++ {
		if qs[i].Col != "c2" {
			t.Fatal("queries not grouped by column")
		}
	}
}

func TestJoinQueries(t *testing.T) {
	ds := &Dataset{Table: "t", Rows: 10000, QueryCols: []QueryCol{
		{Name: "c2", Lo: 0, Hi: 9999},
	}}
	qs := JoinQueries(ds, 10, 0.005, 0.07, 2)
	if len(qs) != 10 {
		t.Fatal("count")
	}
	for _, q := range qs {
		if !strings.Contains(q.SQL, "t1.c2 = t.c2") || !strings.Contains(q.SQL, "t1.c1 <") {
			t.Errorf("join SQL: %s", q.SQL)
		}
	}
}

func TestMultiPredicateQuery(t *testing.T) {
	ds := &Dataset{Table: "t", Rows: 10000}
	q := MultiPredicateQuery(ds, 3, 0.5)
	if !strings.Contains(q.SQL, "c2 <") || !strings.Contains(q.SQL, "c3 <") || !strings.Contains(q.SQL, "c4 <") {
		t.Errorf("SQL = %s", q.SQL)
	}
	if strings.Contains(q.SQL, "c5") {
		t.Errorf("k=3 included c5: %s", q.SQL)
	}
}

func TestEqualityQueries(t *testing.T) {
	ds := &Dataset{Table: "orders", Rows: 1000, QueryCols: []QueryCol{
		{Name: "storeid", Lo: 0, Hi: 39},
	}}
	qs := EqualityQueries(ds, 5, 4)
	if len(qs) != 5 {
		t.Fatal("count")
	}
	for _, q := range qs {
		if !strings.Contains(q.SQL, "storeid =") {
			t.Errorf("SQL = %s", q.SQL)
		}
	}
}
