package datagen

import (
	"fmt"
	"math/rand"
)

// Query is one generated workload query with its provenance.
type Query struct {
	SQL string
	// Col is the predicate column; Selectivity the intended fraction.
	Col         string
	Selectivity float64
}

// SingleTableQueries generates the Fig 6/7 workload: per query column,
// `perCol` queries of the form
//
//	SELECT COUNT(padding) FROM <t> WHERE <col> < <val>
//
// with selectivities drawn uniformly from [selLo, selHi] (the paper uses
// 1%..10%; above ~10% the scan is optimal regardless). Queries are grouped
// by column in QueryCols order, matching the figure's x-axis.
func SingleTableQueries(ds *Dataset, perCol int, selLo, selHi float64, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	var out []Query
	for _, qc := range ds.QueryCols {
		for i := 0; i < perCol; i++ {
			sel := selLo + rng.Float64()*(selHi-selLo)
			val := qc.Lo + int64(float64(qc.Hi-qc.Lo+1)*sel)
			out = append(out, Query{
				SQL: fmt.Sprintf("SELECT COUNT(padding) FROM %s WHERE %s < %d",
					ds.Table, qc.Name, val),
				Col:         qc.Name,
				Selectivity: sel,
			})
		}
	}
	return out
}

// JoinQueries generates the Fig 8 workload:
//
//	SELECT COUNT(t.padding) FROM t, t1 WHERE t1.c1 < <val> AND t1.<ci> = t.<ci>
//
// cycling ci over the synthetic correlation columns, with outer
// selectivities below the Hash/INL crossover (the paper found ~7%).
func JoinQueries(ds *Dataset, count int, selLo, selHi float64, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, 0, count)
	for i := 0; i < count; i++ {
		qc := ds.QueryCols[i%len(ds.QueryCols)]
		sel := selLo + rng.Float64()*(selHi-selLo)
		val := int64(float64(ds.Rows) * sel)
		out = append(out, Query{
			SQL: fmt.Sprintf(
				"SELECT COUNT(t.padding) FROM t, t1 WHERE t1.c1 < %d AND t1.%s = t.%s",
				val, qc.Name, qc.Name),
			Col:         qc.Name,
			Selectivity: sel,
		})
	}
	return out
}

// EqualityQueries generates the Fig 10/11 real-database workload:
//
//	SELECT COUNT(padding) FROM <t> WHERE <col> = <val>
//
// picking values uniformly from each query column's domain; queries whose
// selectivity exceeds maxSel are the caller's to filter (the paper keeps
// selectivity < 10%).
func EqualityQueries(ds *Dataset, perCol int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	var out []Query
	for _, qc := range ds.QueryCols {
		domain := qc.Hi - qc.Lo + 1
		for i := 0; i < perCol; i++ {
			val := qc.Lo + rng.Int63n(domain)
			out = append(out, Query{
				SQL: fmt.Sprintf("SELECT COUNT(padding) FROM %s WHERE %s = %d",
					ds.Table, qc.Name, val),
				Col:         qc.Name,
				Selectivity: 1 / float64(domain),
			})
		}
	}
	return out
}

// MultiPredicateQuery generates the Fig 9 workload: k conjuncts on the
// synthetic table's non-clustering columns, ordered so that only the first
// is a prefix — obtaining the page counts of the rest requires
// short-circuiting to be off. Beyond four conjuncts, lower bounds on the
// same columns are added (the clustering column is avoided so the plan
// stays a full scan).
func MultiPredicateQuery(ds *Dataset, k int, sel float64) Query {
	cols := []string{"c2", "c3", "c4", "c5"}
	val := int64(float64(ds.Rows) * sel)
	sql := fmt.Sprintf("SELECT COUNT(padding) FROM %s WHERE %s < %d", ds.Table, cols[0], val)
	last := cols[0]
	for i := 1; i < k; i++ {
		if i < len(cols) {
			last = cols[i]
			sql += fmt.Sprintf(" AND %s < %d", last, val)
		} else {
			last = cols[i-len(cols)]
			sql += fmt.Sprintf(" AND %s >= %d", last, i-len(cols)+1)
		}
	}
	return Query{SQL: sql, Col: last, Selectivity: sel}
}
