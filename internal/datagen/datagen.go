// Package datagen generates the evaluation databases: the synthetic
// T(C1..C5, padding) table of §V-B.1 with controlled column↔clustering
// correlation, and scaled-down analogs of the paper's five real-world
// databases (Table I). Scaling preserves what DPC behaviour depends on —
// rows per page and the on-disk clustering of each queried column — so the
// experiments reproduce the paper's shapes at laptop scale.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"pagefeedback"
)

// QueryCol describes one column workloads generate predicates on.
type QueryCol struct {
	Name string
	// Lo, Hi bound the value domain (ints/dates).
	Lo, Hi int64
	// Date marks date-typed columns.
	Date bool
	// Disorder is the window (in rows) within which the column's values
	// are shuffled relative to the clustering order: 0 = perfectly
	// correlated, >= table rows = uncorrelated.
	Disorder int
}

// Dataset describes one generated database.
type Dataset struct {
	Name      string
	Table     string
	Rows      int
	QueryCols []QueryCol
}

// permWithDisorder returns a permutation of 0..n-1 where element i's value
// stays within roughly `window` positions of i: window 0 is the identity,
// window >= n a uniform shuffle. The construction sorts positions by
// i + U(0, window) and assigns ranks, matching the paper's "different
// permutations ... intended to capture different on-disk correlations".
func permWithDisorder(n, window int, rng *rand.Rand) []int {
	if window <= 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if window >= n {
		return rng.Perm(n)
	}
	type kv struct {
		pos int
		key float64
	}
	keys := make([]kv, n)
	for i := range keys {
		keys[i] = kv{pos: i, key: float64(i) + rng.Float64()*float64(window)}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key < keys[b].key })
	out := make([]int, n)
	for rank, k := range keys {
		out[k.pos] = rank
	}
	return out
}

// BuildSynthetic creates the synthetic table T of §V-B.1 (scaled to n rows)
// plus the join copy T1 clustered on C1: C2 equals C1 (fully correlated),
// C5 is a random permutation (uncorrelated), C3 and C4 sit in between.
// Indexes: clustered on C1; non-clustered on C2..C5 of T; T1 needs none
// beyond its clustered key. padding brings rows to ~100 bytes.
func BuildSynthetic(eng *pagefeedback.Engine, n int, seed int64) (*Dataset, error) {
	schema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "c1", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "c2", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "c3", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "c4", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "c5", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "padding", Kind: pagefeedback.KindString},
	)
	// Shuffle windows chosen so the columns span the paper's spectrum at
	// simulator scale: c2 exact, c3 and c4 progressively looser (both still
	// winning index plans at low selectivities, like Fig 6's C3/C4), c5
	// fully independent.
	disorder := map[string]int{
		"c2": 0,
		"c3": n / 200,
		"c4": n / 40,
		"c5": n,
	}
	pad := strings.Repeat("x", 52) // ~100-byte rows like the paper's
	// T and T1 share the schema and the per-column correlation character,
	// but draw INDEPENDENT permutations. (With identical permutations every
	// T1.Ci = T.Ci join would degenerate to the identity join on row
	// position, making the fetched pages contiguous regardless of Ci —
	// varying Ci could then never vary the page count as §V-B.1 intends.)
	for ti, tn := range []string{"t", "t1"} {
		trng := rand.New(rand.NewSource(seed + int64(ti)*7919))
		c3 := permWithDisorder(n, disorder["c3"], trng)
		c4 := permWithDisorder(n, disorder["c4"], trng)
		c5 := permWithDisorder(n, disorder["c5"], trng)
		rows := make([]pagefeedback.Row, n)
		for i := 0; i < n; i++ {
			rows[i] = pagefeedback.Row{
				pagefeedback.Int64(int64(i)),
				pagefeedback.Int64(int64(i)),
				pagefeedback.Int64(int64(c3[i])),
				pagefeedback.Int64(int64(c4[i])),
				pagefeedback.Int64(int64(c5[i])),
				pagefeedback.Str(pad),
			}
		}
		if _, err := eng.CreateClusteredTable(tn, schema, []string{"c1"}); err != nil {
			return nil, err
		}
		if err := eng.Load(tn, rows); err != nil {
			return nil, err
		}
	}
	for _, col := range []string{"c2", "c3", "c4", "c5"} {
		if _, err := eng.CreateIndex("ix_t_"+col, "t", col); err != nil {
			return nil, err
		}
	}
	if err := eng.Analyze("t", "t1"); err != nil {
		return nil, err
	}
	ds := &Dataset{Name: "Synthetic", Table: "t", Rows: n}
	for _, col := range []string{"c2", "c3", "c4", "c5"} {
		ds.QueryCols = append(ds.QueryCols, QueryCol{
			Name: col, Lo: 0, Hi: int64(n - 1), Disorder: disorder[col],
		})
	}
	return ds, nil
}

// realTable describes one scaled real-world-like table to generate.
type realTable struct {
	name        string
	rows        int
	padBytes    int // padding to reach the paper's rows/page
	seed        int64
	cols        []genCol
	clusterCol  string
	datasetName string
}

// genCol is one generated column.
type genCol struct {
	name     string
	date     bool
	domain   int64 // number of distinct values (0 = dense unique)
	disorder int   // shuffle window vs clustering order
	zipf     bool  // zipfian value frequencies (TPC-H Z=1)
	query    bool  // include in workload query columns
}

func buildReal(eng *pagefeedback.Engine, rt realTable) (*Dataset, error) {
	rng := rand.New(rand.NewSource(rt.seed))
	cols := []pagefeedback.Column{{Name: "id", Kind: pagefeedback.KindInt}}
	for _, c := range rt.cols {
		kind := pagefeedback.KindInt
		if c.date {
			kind = pagefeedback.KindDate
		}
		cols = append(cols, pagefeedback.Column{Name: c.name, Kind: kind})
	}
	cols = append(cols, pagefeedback.Column{Name: "padding", Kind: pagefeedback.KindString})
	schema := pagefeedback.NewSchema(cols...)
	if _, err := eng.CreateClusteredTable(rt.name, schema, []string{"id"}); err != nil {
		return nil, err
	}

	n := rt.rows
	// Per-column value sequences.
	vals := make([][]int64, len(rt.cols))
	for ci, c := range rt.cols {
		perm := permWithDisorder(n, c.disorder, rng)
		v := make([]int64, n)
		domain := c.domain
		if domain <= 0 {
			domain = int64(n)
		}
		var zipf *rand.Zipf
		if c.zipf {
			zipf = rand.NewZipf(rng, 1.1, 1, uint64(domain-1))
		}
		for i := 0; i < n; i++ {
			base := int64(perm[i])
			var val int64
			if zipf != nil {
				// Zipfian frequency, position still follows the permuted
				// order so clustering character is preserved.
				val = base*domain/int64(n) + int64(zipf.Uint64())%3
				if val >= domain {
					val = domain - 1
				}
			} else {
				val = base * domain / int64(n)
			}
			if c.date {
				val += 13000 // days offset: dates start 2005-08-04
			}
			v[i] = val
		}
		vals[ci] = v
	}

	pad := strings.Repeat("r", rt.padBytes)
	rows := make([]pagefeedback.Row, n)
	for i := 0; i < n; i++ {
		row := make(pagefeedback.Row, 0, len(rt.cols)+2)
		row = append(row, pagefeedback.Int64(int64(i)))
		for ci, c := range rt.cols {
			if c.date {
				row = append(row, pagefeedback.Date(vals[ci][i]))
			} else {
				row = append(row, pagefeedback.Int64(vals[ci][i]))
			}
		}
		row = append(row, pagefeedback.Str(pad))
		rows[i] = row
	}
	if err := eng.Load(rt.name, rows); err != nil {
		return nil, err
	}
	ds := &Dataset{Name: rt.datasetName, Table: rt.name, Rows: n}
	for ci, c := range rt.cols {
		if _, err := eng.CreateIndex(fmt.Sprintf("ix_%s_%s", rt.name, c.name), rt.name, c.name); err != nil {
			return nil, err
		}
		if !c.query {
			continue
		}
		lo, hi := vals[ci][0], vals[ci][0]
		for _, v := range vals[ci] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		ds.QueryCols = append(ds.QueryCols, QueryCol{
			Name: c.name, Lo: lo, Hi: hi, Date: c.date, Disorder: c.disorder,
		})
	}
	if err := eng.Analyze(rt.name); err != nil {
		return nil, err
	}
	return ds, nil
}

// The five real-world-like databases of Table I, scaled ~1:100 with rows/
// page preserved via padding. Disorder windows are chosen to spread the
// clustering ratio the way Fig 10 reports (mean ~0.56, wide deviation).

// BuildBookRetailer builds the book-retailer orders table (Table I row 1:
// 27 rows/page). Order date tracks the load order tightly; customer and
// title are scattered.
func BuildBookRetailer(eng *pagefeedback.Engine, n int, seed int64) (*Dataset, error) {
	return buildReal(eng, realTable{
		name: "orders", datasetName: "Book Retailer", rows: n, padBytes: 220, seed: seed,
		cols: []genCol{
			{name: "orderdate", date: true, domain: 730, disorder: n / 200, query: true},
			{name: "customerid", domain: int64(n / 20), disorder: n, query: true},
			{name: "titleid", domain: int64(n / 50), disorder: n, query: true},
			{name: "storeid", domain: 40, disorder: n / 10, query: true},
		},
	})
}

// BuildYellowPages builds the yellow-pages listings table (39 rows/page).
// Listings load roughly alphabetically, so category correlates loosely;
// zip is regional (moderate clustering).
func BuildYellowPages(eng *pagefeedback.Engine, n int, seed int64) (*Dataset, error) {
	return buildReal(eng, realTable{
		name: "listings", datasetName: "Yellow Pages", rows: n, padBytes: 140, seed: seed,
		cols: []genCol{
			{name: "category", domain: 200, disorder: n / 20, query: true},
			{name: "zip", domain: 500, disorder: n / 4, query: true},
			{name: "founded", date: true, domain: 3650, disorder: n, query: true},
		},
	})
}

// BuildTPCH builds a lineitem-like table (54 rows/page, zipf Z=1 values on
// the quantity-like column). The three date columns correlate with the
// orderkey clustering at slightly different tightness, as TPC-H's
// generation rules imply.
func BuildTPCH(eng *pagefeedback.Engine, n int, seed int64) (*Dataset, error) {
	// Date domains are compressed relative to TPC-H's 7-year span so that
	// rows-per-date — the quantity equality selectivity depends on — stays
	// at the paper's order of magnitude under the 1:100 row scaling.
	return buildReal(eng, realTable{
		name: "lineitem", datasetName: "TPC-H", rows: n, padBytes: 80, seed: seed,
		cols: []genCol{
			{name: "shipdate", date: true, domain: 365, disorder: n / 100, query: true},
			{name: "commitdate", date: true, domain: 340, disorder: n / 80, query: true},
			{name: "receiptdate", date: true, domain: 380, disorder: n / 100, query: true},
			{name: "partkey", domain: int64(n / 4), disorder: n, query: true},
			{name: "quantity", domain: 50, disorder: n, zipf: true, query: false},
		},
	})
}

// BuildVoter builds the voter-registration table (46 rows/page).
// Registration date tracks the load order; precinct is regional.
func BuildVoter(eng *pagefeedback.Engine, n int, seed int64) (*Dataset, error) {
	return buildReal(eng, realTable{
		name: "voters", datasetName: "Voter Data", rows: n, padBytes: 110, seed: seed,
		cols: []genCol{
			{name: "regdate", date: true, domain: 250, disorder: n / 400, query: true},
			{name: "precinct", domain: 300, disorder: n / 60, query: true},
			{name: "birthyear", domain: 80, disorder: n, query: true},
		},
	})
}

// BuildProducts builds the products table (9 rows/page: wide rows).
// Products arrive by vendor batches, so vendor correlates strongly;
// category moderately; listdate weakly.
func BuildProducts(eng *pagefeedback.Engine, n int, seed int64) (*Dataset, error) {
	return buildReal(eng, realTable{
		name: "products", datasetName: "Products", rows: n, padBytes: 820, seed: seed,
		cols: []genCol{
			{name: "vendorid", domain: 150, disorder: n / 100, query: true},
			{name: "category", domain: 60, disorder: n / 8, query: true},
			{name: "listdate", date: true, domain: 1825, disorder: n / 2, query: true},
		},
	})
}

// BuildAllReal builds the five real-world-like databases into one engine,
// with row counts scaled by the given factor relative to the paper's
// (factor 1.0 = 1:100 of Table I).
func BuildAllReal(eng *pagefeedback.Engine, factor float64, seed int64) ([]*Dataset, error) {
	scale := func(paperMillions float64) int {
		n := int(paperMillions * 1e6 / 100 * factor)
		if n < 2000 {
			n = 2000
		}
		return n
	}
	builders := []struct {
		f    func(*pagefeedback.Engine, int, int64) (*Dataset, error)
		rows int
	}{
		{BuildBookRetailer, scale(10.8)},
		{BuildYellowPages, scale(1)},
		{BuildTPCH, scale(60)},
		{BuildVoter, scale(4)},
		{BuildProducts, scale(0.56)},
	}
	var out []*Dataset
	for i, b := range builders {
		ds, err := b.f(eng, b.rows, seed+int64(i))
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}
