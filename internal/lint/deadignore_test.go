package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestUnusedIgnoreReporting runs the deadignore fixture through
// RunWithConfig (runFixture deliberately keeps ReportUnusedIgnores off so
// single-analyzer fixtures can carry unrelated suppressions) and checks the
// exact staleness findings.
func TestUnusedIgnoreReporting(t *testing.T) {
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewTreeLoader(srcRoot).Load("deadignore")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunWithConfig([]*Unit{u}, []*Analyzer{GoroutineJoinAnalyzer}, RunConfig{ReportUnusedIgnores: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		if d.Analyzer != "deadignore" {
			t.Errorf("non-deadignore diagnostic leaked through: %s", d)
			continue
		}
		got = append(got, d.Message)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 deadignore diagnostics, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "unused //dbvet:ignore directive") || !strings.Contains(got[0], "goroutinejoin") {
		t.Errorf("first diagnostic should flag the unused goroutinejoin directive, got %q", got[0])
	}
	if !strings.Contains(got[1], `unknown analyzer "gorutinejoin"`) {
		t.Errorf("second diagnostic should flag the typo, got %q", got[1])
	}

	// The same fixture under Run (no config) must stay silent about ignores.
	plain, err := Run([]*Unit{u}, []*Analyzer{GoroutineJoinAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plain {
		t.Errorf("Run without config reported: %s", d)
	}
}
