package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one loaded, type-checked package: the inputs every analyzer needs.
type Unit struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages. Imports inside the analyzed tree
// resolve through the loader itself (so every analyzer sees one shared
// types.Object identity per declaration); everything else — the standard
// library — resolves through go/importer's source importer, which builds
// export data from $GOROOT/src and therefore works fully offline.
type Loader struct {
	fset *token.FileSet
	std  types.ImporterFrom

	// Exactly one mode is active: module mode maps the module path prefix
	// onto modRoot; tree mode maps any existing path under srcRoot
	// (GOPATH-style, used by the analyzer test fixtures).
	modRoot string
	modPath string
	srcRoot string

	units   map[string]*Unit
	loading map[string]bool
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		units:   make(map[string]*Unit),
		loading: make(map[string]bool),
	}
}

// NewModuleLoader loads packages of the Go module rooted at or above dir.
// It returns the loader and the module root directory.
func NewModuleLoader(dir string) (*Loader, string, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, "", err
	}
	l := newLoader()
	l.modRoot = root
	l.modPath = modPath
	return l, root, nil
}

// NewTreeLoader loads packages from a GOPATH-style source root: import path
// "p/q" maps to srcRoot/p/q. The analyzer test fixtures use this.
func NewTreeLoader(srcRoot string) *Loader {
	l := newLoader()
	l.srcRoot = srcRoot
	return l
}

// resolveDir maps an import path to a directory inside the loaded tree.
func (l *Loader) resolveDir(importPath string) (string, bool) {
	switch {
	case l.modPath != "":
		if importPath == l.modPath {
			return l.modRoot, true
		}
		if rest, ok := strings.CutPrefix(importPath, l.modPath+"/"); ok {
			return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true
		}
	case l.srcRoot != "":
		dir := filepath.Join(l.srcRoot, filepath.FromSlash(importPath))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// importPathForDir maps a directory inside the loaded tree to its import
// path (the inverse of resolveDir).
func (l *Loader) importPathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root := l.modRoot
	if root == "" {
		root = l.srcRoot
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: directory %s is outside %s", dir, root)
	}
	if rel == "." {
		if l.modPath != "" {
			return l.modPath, nil
		}
		return "", fmt.Errorf("lint: source root itself is not a package")
	}
	if l.modPath != "" {
		return path.Join(l.modPath, filepath.ToSlash(rel)), nil
	}
	return filepath.ToSlash(rel), nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	return l.ImportFrom(importPath, "", 0)
}

// ImportFrom implements types.ImporterFrom: tree-local packages load through
// the loader, all else through the offline source importer.
func (l *Loader) ImportFrom(importPath, dir string, mode types.ImportMode) (*types.Package, error) {
	if _, ok := l.resolveDir(importPath); ok {
		u, err := l.Load(importPath)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return l.std.ImportFrom(importPath, dir, 0)
}

// Load parses and type-checks the package at the import path (memoized).
// Test files are skipped: dbvet lints production code, and test packages may
// intentionally violate invariants to exercise failure paths.
func (l *Loader) Load(importPath string) (*Unit, error) {
	if u, ok := l.units[importPath]; ok {
		return u, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir, ok := l.resolveDir(importPath)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve %s", importPath)
	}
	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	u := &Unit{PkgPath: importPath, Dir: dir, Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.units[importPath] = u
	return u, nil
}

// buildCtx is the fixed analysis platform. dbvet lints the tree the way
// `go build` sees it on linux/amd64 — honoring `//go:build` expressions,
// legacy `// +build` lines, and _GOOS/_GOARCH filename suffixes — instead of
// parsing every .go file regardless of constraints. Before this, a
// `//go:build windows` file was fed to the type checker on every platform,
// so an excluded file could fail the whole load with duplicate declarations.
var buildCtx = func() build.Context {
	ctx := build.Default
	ctx.GOOS = "linux"
	ctx.GOARCH = "amd64"
	ctx.CgoEnabled = false
	return ctx
}()

// goSourceFiles lists the non-test Go files of dir that buildCtx would
// compile, sorted.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := buildCtx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPatterns expands package patterns relative to root and loads each
// match. Supported forms: "./...", "./dir", "dir/...", and plain import
// paths resolvable by the loader. Directories named testdata, vendor, or
// starting with "." or "_" are never matched by "...".
func (l *Loader) LoadPatterns(root string, patterns []string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, filepath.FromSlash(pat))
		}
		st, err := os.Stat(dir)
		isDir := err == nil && st.IsDir()
		switch {
		case isDir && recursive:
			err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := filepath.Base(p)
				if p != dir && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
					return filepath.SkipDir
				}
				names, err := goSourceFiles(p)
				if err != nil {
					return err
				}
				if len(names) == 0 {
					return nil
				}
				ip, err := l.importPathForDir(p)
				if err != nil {
					return err
				}
				add(ip)
				return nil
			})
			if err != nil {
				return nil, err
			}
		case isDir:
			ip, err := l.importPathForDir(dir)
			if err != nil {
				return nil, err
			}
			add(ip)
		case recursive:
			return nil, fmt.Errorf("lint: recursive pattern %q does not name a directory", pat)
		default:
			add(pat) // plain import path
		}
	}
	var units []*Unit
	for _, p := range paths {
		u, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}
