package lint

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// factSet is a tiny immutable string-set fact for the solver tests.
type factSet map[string]bool

func asFactSet(f Fact) factSet {
	if f == nil {
		return nil
	}
	return f.(factSet)
}

func (s factSet) with(k string) factSet {
	if s[k] {
		return s
	}
	out := make(factSet, len(s)+1)
	for v := range s {
		out[v] = true
	}
	out[k] = true
	return out
}

func (s factSet) sig() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func unionFlow() Flow {
	return Flow{
		Boundary: factSet{},
		Join: func(a, b Fact) Fact {
			av, bv := asFactSet(a), asFactSet(b)
			if av == nil {
				return bv
			}
			if bv == nil {
				return av
			}
			out := make(factSet, len(av)+len(bv))
			for k := range av {
				out[k] = true
			}
			for k := range bv {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b Fact) bool { return asFactSet(a).sig() == asFactSet(b).sig() },
	}
}

// assignedNames returns the identifiers a node assigns with `=` or `:=`.
func assignedNames(n ast.Node) []string {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var out []string
	for _, l := range as.Lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			out = append(out, id.Name)
		}
	}
	return out
}

// usedNames returns identifiers a node reads (crudely: all non-assigned
// ident uses on the right-hand side or in expressions).
func usedNames(n ast.Node) []string {
	var out []string
	collect := func(e ast.Expr) {
		ast.Inspect(e, func(nd ast.Node) bool {
			if id, ok := nd.(*ast.Ident); ok {
				out = append(out, id.Name)
			}
			return true
		})
	}
	switch nd := n.(type) {
	case *ast.ExprStmt:
		collect(nd.X)
	case *ast.IncDecStmt:
		collect(nd.X)
	case *ast.AssignStmt:
		for _, r := range nd.Rhs {
			collect(r)
		}
	case *ast.ReturnStmt:
		for _, r := range nd.Results {
			collect(r)
		}
	case ast.Expr:
		collect(nd)
	}
	return out
}

// TestForwardReachingDefs: a forward may-analysis (union join) over a
// diamond sees definitions from both arms at the merge.
func TestForwardReachingDefs(t *testing.T) {
	body := parseBody(t, `
		if cond {
			a := 1
			_ = a
		} else {
			b := 2
			_ = b
		}
		c := 3
		_ = c
	`)
	g := BuildCFG(body)
	flow := unionFlow()
	flow.Transfer = func(b *Block, in Fact) Fact {
		cur := asFactSet(in)
		if cur == nil {
			cur = factSet{}
		}
		for _, n := range b.Nodes {
			for _, name := range assignedNames(n) {
				cur = cur.with(name)
			}
		}
		return cur
	}
	in := g.Forward(flow)
	atExit := asFactSet(in[g.Exit])
	for _, want := range []string{"a", "b", "c"} {
		if !atExit[want] {
			t.Errorf("definition of %q did not reach exit: %v", want, atExit.sig())
		}
	}
}

// TestBackwardLiveness: the classic backward problem. A variable read after
// a loop is live throughout the loop; one only read before it is not live
// at the loop head.
func TestBackwardLiveness(t *testing.T) {
	body := parseBody(t, `
		early := f()
		use(early)
		late := g()
		for i := 0; i < n; i++ {
			work(i)
		}
		return late
	`)
	g := BuildCFG(body)
	flow := unionFlow()
	flow.Transfer = func(b *Block, end Fact) Fact {
		cur := asFactSet(end)
		if cur == nil {
			cur = factSet{}
		}
		// Walk nodes in reverse: kill assignments, then gen uses.
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			if len(assignedNames(n)) > 0 {
				next := make(factSet, len(cur))
				for k := range cur {
					next[k] = true
				}
				for _, name := range assignedNames(n) {
					delete(next, name)
				}
				cur = next
			}
			for _, name := range usedNames(n) {
				cur = cur.with(name)
			}
		}
		return cur
	}
	end := g.Backward(flow)

	// Find the loop body block (contains the work(i) call).
	var loopBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			for _, name := range usedNames(n) {
				if name == "work" {
					loopBlock = b
				}
			}
		}
	}
	if loopBlock == nil {
		t.Fatal("loop body block not found")
	}
	live := asFactSet(end[loopBlock])
	if !live["late"] {
		t.Errorf("late is read after the loop and must be live in the loop body: %v", live.sig())
	}
	if live["early"] {
		t.Errorf("early is dead after its use yet live in the loop body: %v", live.sig())
	}
}

// TestForwardTerminatesOnIrreducible: goto-built loops (irreducible control
// flow) must still reach a fixpoint under the iteration cap.
func TestForwardTerminatesOnIrreducible(t *testing.T) {
	body := parseBody(t, `
		if a { goto second }
	first:
		x()
		goto second
	second:
		y()
		if b { goto first }
	`)
	g := BuildCFG(body)
	flow := unionFlow()
	flow.Transfer = func(b *Block, in Fact) Fact {
		cur := asFactSet(in)
		if cur == nil {
			cur = factSet{}
		}
		for _, n := range b.Nodes {
			for _, name := range usedNames(n) {
				cur = cur.with(name)
			}
		}
		return cur
	}
	in := g.Forward(flow)
	if len(in) == 0 {
		t.Fatal("solver returned no facts")
	}
}
