package lint

import (
	"go/ast"
	"strings"
	"unicode"
	"unicode/utf8"
)

// MonitorMergeAnalyzer enforces the monitor algebra the intra-query parallel
// mode rests on. Partitioned scan workers observe execution feedback into
// private monitor shards and the barrier merges them, so every counting
// structure must satisfy two obligations:
//
//   - a type that observes per-page feedback (an Observe/Observe*/AddPID
//     method) must also define Merge, or a partitioned scan cannot combine
//     its shards and the type silently under-counts in parallel runs;
//   - every Merge method must carry the `dbvet:commutative` marker in its
//     doc comment. The marker is a reviewed claim, not an inference: the
//     analyzer checks the claim exists, review checks it is true, and the
//     partition-randomized property tests check it stays true.
var MonitorMergeAnalyzer = &Analyzer{
	Name: "monitormerge",
	Doc:  "check that monitor counting types are mergeable and their Merge methods are declared commutative",
	Run:  runMonitorMerge,
}

func runMonitorMerge(pass *Pass) error {
	// Collect the package's methods by receiver type name.
	type methodSet struct {
		observer *ast.FuncDecl // first observation method, for reporting
		merge    *ast.FuncDecl
	}
	methods := make(map[string]*methodSet)
	get := func(recv string) *methodSet {
		m := methods[recv]
		if m == nil {
			m = &methodSet{}
			methods[recv] = m
		}
		return m
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			recv := recvTypeName(fd)
			if recv == "" {
				continue
			}
			switch {
			case isObservationMethod(fd.Name.Name):
				m := get(recv)
				if m.observer == nil {
					m.observer = fd
				}
			case fd.Name.Name == "Merge":
				get(recv).merge = fd
			}
		}
	}

	for recv, m := range methods {
		if m.observer != nil && m.merge == nil {
			pass.Reportf(m.observer.Pos(),
				"%s observes execution feedback (%s) but has no Merge method: parallel scan shards of it cannot be combined",
				recv, m.observer.Name.Name)
		}
		if m.merge != nil && !commentContains(m.merge.Doc, "dbvet:commutative") {
			pass.Reportf(m.merge.Pos(),
				"%s.Merge is not declared commutative: add a `dbvet:commutative` marker to its doc comment once partition-order invariance is reviewed",
				recv)
		}
	}
	return nil
}

// isObservationMethod matches the repo's monitor observation vocabulary:
// Observe, ObserveXxx (but not getters like Observed), and AddPID.
func isObservationMethod(name string) bool {
	if name == "AddPID" || name == "Observe" {
		return true
	}
	if rest, ok := strings.CutPrefix(name, "Observe"); ok {
		r, _ := utf8.DecodeRuneInString(rest)
		return unicode.IsUpper(r)
	}
	return false
}

// commentContains reports whether any line of the doc comment contains the
// marker.
func commentContains(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}
