package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture loads the named fixture packages from testdata/src, runs one
// analyzer over them, and checks the diagnostics against `// want` comments,
// following the x/tools analysistest convention: a trailing comment
//
//	// want `regexp`
//
// expects exactly one diagnostic on that line whose message matches the
// backquoted pattern (several patterns expect several diagnostics). Every
// diagnostic must be wanted and every want must be matched.
func runFixture(t *testing.T, a *Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewTreeLoader(srcRoot)
	var units []*Unit
	for _, p := range pkgPaths {
		u, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
		units = append(units, u)
	}
	diags, err := Run(units, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type wantKey struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[wantKey][]*want)
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					patterns, ok := parseWantComment(c.Text)
					if !ok {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					k := wantKey{pos.Filename, pos.Line}
					for _, p := range patterns {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
						}
						wants[k] = append(wants[k], &want{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching `%s`", k.file, k.line, w.re)
			}
		}
	}
}

// parseWantComment extracts the backquoted expectation patterns from a
// `// want` comment; ok is false for any other comment.
func parseWantComment(text string) (patterns []string, ok bool) {
	rest, found := strings.CutPrefix(text, "// want ")
	if !found {
		return nil, false
	}
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		if rest[0] != '`' {
			return nil, false
		}
		end := strings.IndexByte(rest[1:], '`')
		if end < 0 {
			return nil, false
		}
		patterns = append(patterns, rest[1:1+end])
		rest = rest[2+end:]
	}
	return patterns, len(patterns) > 0
}
