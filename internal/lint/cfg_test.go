package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a function body and returns it.
func parseBody(t testing.TB, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// checkCFGInvariants asserts the structural invariants every analyzer
// relies on: edge symmetry (every successor edge is its target's
// predecessor edge and vice versa), edges connect blocks of this graph, and
// every block is reachable from Entry or marked dead.
func checkCFGInvariants(t testing.TB, g *CFG) {
	t.Helper()
	index := make(map[*Block]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		index[b] = true
	}
	if !index[g.Entry] || !index[g.Exit] {
		t.Fatal("Entry or Exit missing from Blocks")
	}
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.From != b {
				t.Fatalf("B%d successor edge has From=B%d", b.Index, e.From.Index)
			}
			if !index[e.To] {
				t.Fatalf("B%d edge leads outside the graph", b.Index)
			}
			found := false
			for _, p := range e.To.Preds {
				if p == e {
					found = true
				}
			}
			if !found {
				t.Fatalf("B%d->B%d edge missing from target Preds", b.Index, e.To.Index)
			}
		}
		for _, e := range b.Preds {
			if e.To != b {
				t.Fatalf("B%d predecessor edge has To=B%d", b.Index, e.To.Index)
			}
		}
	}
	reach := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for _, b := range g.Blocks {
		if reach[b] != b.Live {
			t.Fatalf("B%d reachable=%v but Live=%v", b.Index, reach[b], b.Live)
		}
	}
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"straightline", `x := 1; y := x; _ = y`},
		{"ifelse", `if a() { b() } else { c() }; d()`},
		{"forloop", `for i := 0; i < 10; i++ { work(i) }`},
		{"rangeloop", `for _, v := range xs { use(v) }`},
		{"breakcontinue", `for { if a() { break }; if b() { continue }; c() }`},
		{"labeled", `outer: for { for { break outer } }`},
		{"gotoback", `top: x(); if a() { goto top }`},
		{"gotofwd", `if a() { goto done }; b(); done: c()`},
		{"switchdefault", `switch a() { case 1: b() ; default: c() }`},
		{"switchnodefault", `switch a() { case 1: b() }`},
		{"fallthrough", `switch a() { case 1: b(); fallthrough; case 2: c() }`},
		{"typeswitch", `switch v := x.(type) { case int: use(v) ; default: }`},
		{"selectstmt", `select { case <-ch: a() ; case ch2 <- 1: b() }`},
		{"returnmid", `if a() { return }; b()`},
		{"panicstmt", `if a() { panic("x") }; b()`},
		{"deadcode", `return; x()`},
		{"deferstmt", `defer a(); b()`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := BuildCFG(parseBody(t, tc.src))
			checkCFGInvariants(t, g)
		})
	}
}

// TestCFGBranchEdges pins the branch metadata pinleak's err-refinement
// relies on: the two if arms share Cond with opposite Negate.
func TestCFGBranchEdges(t *testing.T) {
	g := BuildCFG(parseBody(t, `if err != nil { a() } else { b() }`))
	var pos, neg int
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond == nil {
				continue
			}
			if e.Negate {
				neg++
			} else {
				pos++
			}
		}
	}
	if pos != 1 || neg != 1 {
		t.Fatalf("want one positive and one negative branch edge, got %d/%d", pos, neg)
	}
}

// TestCFGLoopEdges pins loop metadata lockorder's sweep rule relies on: a
// back edge marked BackLoop and an exit edge marked ExitLoops.
func TestCFGLoopEdges(t *testing.T) {
	g := BuildCFG(parseBody(t, `for _, v := range xs { use(v) }`))
	var back, exit int
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.BackLoop != nil {
				back++
			}
			if len(e.ExitLoops) > 0 {
				exit++
			}
		}
	}
	if back != 1 || exit != 1 {
		t.Fatalf("want one back edge and one exit edge, got %d/%d", back, exit)
	}
}

// TestCFGReturnKinds: explicit returns, panics, and the implicit fall-off
// all edge into Exit with the right kind.
func TestCFGReturnKinds(t *testing.T) {
	g := BuildCFG(parseBody(t, `if a() { return }; if b() { panic("x") }; c()`))
	kinds := make(map[EdgeKind]int)
	for _, e := range g.Exit.Preds {
		kinds[e.Kind]++
	}
	if kinds[EdgeReturn] != 1 || kinds[EdgePanic] != 1 || kinds[EdgeImplicitReturn] != 1 {
		t.Fatalf("exit edge kinds = %v", kinds)
	}
}

func fuzzSeedBodies() []string {
	return []string{
		`x := 1`,
		`if a { b() } else { c() }`,
		`for i := 0; i < 3; i++ { if i == 1 { continue }; use(i) }`,
		`for _, v := range m { sum += v }`,
		`outer: for { for { if a { break outer }; continue } }`,
		`switch x { case 1: a(); fallthrough; case 2: b(); default: c() }`,
		`select { case <-ch: case ch <- 1: default: }`,
		`goto end; x(); end: y()`,
		`defer f(); go g(); return`,
		`switch v := x.(type) { case int: _ = v }`,
		`{ { x := 1; _ = x }; y := 2; _ = y }`,
		`if a { return }; panic("x")`,
	}
}

// FuzzCFGBuild feeds arbitrary function bodies to the CFG builder: whatever
// parses must build without panicking and satisfy the structural invariants
// (edge symmetry, reachable-or-marked-dead).
func FuzzCFGBuild(f *testing.F) {
	for _, seed := range fuzzSeedBodies() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file := "package p\nfunc f() {\n" + src + "\n}\n"
		fset := token.NewFileSet()
		parsed, err := parser.ParseFile(fset, "p.go", file, 0)
		if err != nil {
			t.Skip()
		}
		fd, ok := parsed.Decls[0].(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			t.Skip()
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("BuildCFG panicked on %q: %v", src, r)
			}
		}()
		g := BuildCFG(fd.Body)
		checkCFGInvariants(t, g)
		// The solvers must terminate on whatever graph came out.
		g.Forward(Flow{
			Boundary: 0,
			Transfer: func(b *Block, in Fact) Fact { return in.(int) },
			Join: func(a, b Fact) Fact {
				if a == nil {
					return b
				}
				return a
			},
			Equal: func(a, b Fact) bool { return fmt.Sprint(a) == fmt.Sprint(b) },
		})
	})
}
