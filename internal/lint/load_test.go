package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoaderHonorsBuildConstraints is the regression test for the loader
// silently mishandling constrained files: a `//go:build windows` file and a
// `_windows.go` suffix file each redeclare a symbol from the portable file,
// so including either under the linux/amd64 analysis context fails the
// type-check with a duplicate declaration. A `//go:build ignore` helper must
// stay excluded too.
func TestLoaderHonorsBuildConstraints(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "constr")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("portable.go", "package constr\n\nfunc Impl() int { return 1 }\n")
	write("impl_other.go", "//go:build windows\n\npackage constr\n\nfunc Impl() int { return 2 }\n")
	write("impl_windows.go", "package constr\n\nfunc Impl() int { return 3 }\n")
	write("gen.go", "//go:build ignore\n\npackage main\n\nfunc main() {}\n")
	write("legacy.go", "// +build plan9\n\npackage constr\n\nfunc Impl() int { return 4 }\n")
	write("kept_linux.go", "package constr\n\nfunc LinuxOnly() {}\n")

	names, err := goSourceFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"kept_linux.go", "portable.go"}
	if len(names) != len(want) {
		t.Fatalf("goSourceFiles = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("goSourceFiles = %v, want %v", names, want)
		}
	}

	// The package must type-check: excluded files would redeclare Impl.
	loader := NewTreeLoader(root)
	u, err := loader.Load("constr")
	if err != nil {
		t.Fatalf("loading constrained package: %v", err)
	}
	if u.Pkg.Scope().Lookup("LinuxOnly") == nil {
		t.Fatal("kept_linux.go was not loaded")
	}
	if u.Pkg.Scope().Lookup("Impl") == nil {
		t.Fatal("portable.go was not loaded")
	}
}
