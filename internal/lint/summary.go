package lint

import (
	"go/ast"
	"go/types"
)

// Per-function summaries: the one-level interprocedural layer of the
// dataflow core. BuildSummaries walks every function in the loaded units
// once, recording its direct callees and a handful of flat facts that
// analyzers consume without re-walking callee bodies:
//
//   - CallsGrow: the function (or something it calls) charges an
//     exec.MemTracker via Grow — membudget accepts a charge routed through
//     a helper because the flag propagates over the call graph.
//   - CallsWGDone / TouchesChannel: the function calls sync.WaitGroup.Done,
//     or sends on / closes a channel — goroutinejoin's evidence that a
//     spawned callee participates in a join protocol.
//   - Det: local nondeterminism (time.Now calls, math/rand uses, unsorted
//     map ranges) — detexport reports these when a determinism root can
//     reach the function.
//
// Function literals are folded into their enclosing declared function:
// their callees and facts count as the parent's. That is deliberately
// conservative for reachability (a closure's time.Now taints the encloser)
// and deliberately generous for join evidence (a helper's channel send
// counts for the goroutine that calls it).

// DetViolation is one locally-nondeterministic construct.
type DetViolation struct {
	Node ast.Node
	What string // human-readable, e.g. "call to time.Now"
}

// FuncInfo is the summary of one declared function or method.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Unit *Unit

	Callees map[*types.Func]bool

	CallsGrow      bool
	CallsWGDone    bool
	TouchesChannel bool

	Det []DetViolation
}

// Summaries indexes FuncInfo by the function's type object.
type Summaries struct {
	Funcs map[*types.Func]*FuncInfo
}

// BuildSummaries computes summaries for every function declared in units,
// then propagates the boolean flags over the call graph to a fixpoint so
// "calls Grow" etc. see through module-local helpers.
func BuildSummaries(units []*Unit) *Summaries {
	s := &Summaries{Funcs: make(map[*types.Func]*FuncInfo)}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Obj:     obj,
					Decl:    fd,
					Unit:    u,
					Callees: make(map[*types.Func]bool),
				}
				summarizeBody(u, fd.Body, fi)
				s.Funcs[obj] = fi
			}
		}
	}
	s.propagate()
	return s
}

// summarizeBody records callees and flat facts from one body, descending
// into function literals.
func summarizeBody(u *Unit, body *ast.BlockStmt, fi *FuncInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(u.Info, nd)
			if callee == nil {
				return true
			}
			fi.Callees[callee] = true
			switch {
			case isPkgFunc(callee, "time", "Now"):
				fi.Det = append(fi.Det, DetViolation{Node: nd, What: "call to time.Now"})
			case calleePkgPath(callee) == "math/rand" || calleePkgPath(callee) == "math/rand/v2":
				fi.Det = append(fi.Det, DetViolation{Node: nd, What: "use of " + calleePkgPath(callee)})
			case callee.Name() == "Grow" && recvTypeNameIs(callee, "MemTracker"):
				fi.CallsGrow = true
			case callee.Name() == "Done" && recvTypeNameIs(callee, "WaitGroup"):
				fi.CallsWGDone = true
			}
			return true
		case *ast.Ident:
			if nd.Name == "close" {
				if _, isBuiltin := u.Info.Uses[nd].(*types.Builtin); isBuiltin {
					fi.TouchesChannel = true
				}
			}
		case *ast.SendStmt:
			fi.TouchesChannel = true
		case *ast.RangeStmt:
			if tv, ok := u.Info.Types[nd.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if !orderInsensitiveRangeBody(nd) {
						fi.Det = append(fi.Det, DetViolation{
							Node: nd,
							What: "range over map " + exprString(u.Fset, nd.X) + " with an order-sensitive body",
						})
					}
				}
			}
		}
		return true
	})
}

// propagate spreads CallsGrow / CallsWGDone / TouchesChannel over the
// module-local call graph until nothing changes, so analyzers see charges
// and join participation through helpers.
func (s *Summaries) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fi := range s.Funcs {
			for callee := range fi.Callees {
				ci, ok := s.Funcs[callee]
				if !ok {
					continue
				}
				if ci.CallsGrow && !fi.CallsGrow {
					fi.CallsGrow = true
					changed = true
				}
				if ci.CallsWGDone && !fi.CallsWGDone {
					fi.CallsWGDone = true
					changed = true
				}
				if ci.TouchesChannel && !fi.TouchesChannel {
					fi.TouchesChannel = true
					changed = true
				}
			}
		}
	}
}

// Reachable returns every function reachable from root over recorded call
// edges, including root itself.
func (s *Summaries) Reachable(root *types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{root: true}
	stack := []*types.Func{root}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fi, ok := s.Funcs[f]
		if !ok {
			continue
		}
		for callee := range fi.Callees {
			if !seen[callee] {
				seen[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	return seen
}

// isPkgFunc reports whether f is package-level function pkg.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f.Name() == name && calleePkgPath(f) == pkgPath && recvOf(f) == nil
}

func calleePkgPath(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

func recvOf(f *types.Func) *types.Var {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// recvTypeNameIs reports whether f is a method on a named type (or pointer
// to one) called name.
func recvTypeNameIs(f *types.Func, name string) bool {
	recv := recvOf(f)
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// orderInsensitiveRangeBody reports whether a range-over-map body only
// performs operations whose combined effect does not depend on iteration
// order: accumulating into sets/maps/counters, appending keys for a later
// sort, and local bookkeeping. Anything that can observe order — calls for
// effect, returns, channel sends, nested loops, writes to an order-carrying
// sink — disqualifies the body.
func orderInsensitiveRangeBody(rng *ast.RangeStmt) bool {
	for _, s := range rng.Body.List {
		if !orderInsensitiveStmt(s) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return true // defines, map/element writes, append accumulation
	case *ast.IncDecStmt:
		return true
	case *ast.DeclStmt:
		return true
	case *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok.String() == "continue"
	case *ast.BlockStmt:
		for _, inner := range st.List {
			if !orderInsensitiveStmt(inner) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if st.Init != nil && !orderInsensitiveStmt(st.Init) {
			return false
		}
		if !orderInsensitiveStmt(st.Body) {
			return false
		}
		if st.Else != nil {
			return orderInsensitiveStmt(st.Else)
		}
		return true
	default:
		// Calls for effect, returns, sends, defers, go, nested ranges:
		// all potentially order-observing.
		return false
	}
}
