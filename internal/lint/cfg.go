package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of dbvet's analysis core: a basic-block
// CFG built over go/ast function bodies, mirroring golang.org/x/tools/go/cfg
// the same way lint.go mirrors go/analysis. Analyzers that used to hand-roll
// path sensitivity (pinleak's abstract interpreter, lockorder's syntactic
// walker) now run as dataflow problems over this graph (dataflow.go), which
// makes branch joins, loops, labeled break/continue, and goto accurate by
// construction instead of by special case.
//
// Shape of the graph:
//
//   - A Block holds leaf nodes in execution order: simple statements
//     (assignments, calls, returns, defers, sends, ...) plus the condition,
//     tag, and range expressions of the control statements that were
//     decomposed into edges. Compound statements (if/for/switch/select)
//     never appear as nodes — their structure IS the graph.
//   - An Edge carries branch context: Cond (with Negate) for the two arms of
//     an if or for condition, Kind for return/panic terminations, BackLoop
//     for loop back edges, and ExitLoops for edges that leave one or more
//     enclosing loops (loop-exit falls and breaks). Analyzers use these for
//     branch refinement (pinleak's err-pairing) and loop accumulation
//     (lockorder's sweep rule).
//   - Exit is a synthetic empty block. Explicit returns and panics edge into
//     it with EdgeReturn/EdgePanic; falling off the end of the body edges
//     into it with EdgeImplicitReturn.
//
// Unreachable blocks (statements after a return, empty dead tails) stay in
// Blocks with Live=false so analyses can skip them and the fuzz harness can
// assert the reachable-or-marked-dead invariant.

// EdgeKind classifies a CFG edge.
type EdgeKind uint8

const (
	// EdgeFall is ordinary sequential or branch flow.
	EdgeFall EdgeKind = iota
	// EdgeReturn leads to Exit from an explicit return statement.
	EdgeReturn
	// EdgeImplicitReturn leads to Exit by falling off the end of the body.
	EdgeImplicitReturn
	// EdgePanic leads to Exit from a call to the panic builtin.
	EdgePanic
)

// Edge is one directed control-flow edge.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
	// Cond is the branch condition this edge refines, when the edge is one
	// arm of a two-way conditional; nil otherwise. The edge is taken when
	// Cond evaluates to !Negate.
	Cond   ast.Expr
	Negate bool
	// BackLoop is the enclosing for/range statement when this edge is a loop
	// back edge (body end or continue back to the loop head).
	BackLoop ast.Stmt
	// ExitLoops lists the loop statements this edge leaves, innermost first:
	// the loop's own exit edge leaves one, a labeled break can leave several.
	ExitLoops []ast.Stmt
}

// Block is one basic block.
type Block struct {
	Index int
	// Nodes are the leaf statements and decomposed control expressions of
	// the block, in execution order.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
	// Live is true when the block is reachable from Entry.
	Live bool
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// End is the position of the body's closing brace, used by analyzers to
	// report facts that reach the implicit return.
	End token.Pos
}

// BuildCFG constructs the control-flow graph of one function body. It is
// purely syntactic (no type information) and never fails: unresolvable
// labels degrade to dead edges rather than errors.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{End: body.End()}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.collectLabels(body)
	b.stmts(body.List)
	// Falling off the end of the body is an implicit return.
	b.edgeTo(b.g.Exit, func(e *Edge) { e.Kind = EdgeImplicitReturn })
	b.resolveGotos()
	b.markLive()
	return b.g
}

// loopFrame tracks one enclosing loop for break/continue resolution.
type loopFrame struct {
	stmt     ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	label    string   // label naming this loop, "" if none
	head     *Block   // continue target
	after    *Block   // break target
	isLoop   bool     // false for switch/select frames (break only)
	breakers []*Edge  // break edges, for ExitLoops annotation
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*Block // label -> target block (for goto)
	gotos  []pendingGoto
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds an edge from->to, applying opts to it.
func (b *cfgBuilder) edge(from, to *Block, opt func(*Edge)) *Edge {
	e := &Edge{From: from, To: to}
	if opt != nil {
		opt(e)
	}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
	return e
}

// edgeTo adds an edge from the current block.
func (b *cfgBuilder) edgeTo(to *Block, opt func(*Edge)) *Edge {
	return b.edge(b.cur, to, opt)
}

// startBlock switches statement emission to blk.
func (b *cfgBuilder) startBlock(blk *Block) { b.cur = blk }

// add appends a leaf node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// collectLabels pre-registers every labeled statement as a goto target so
// forward gotos resolve.
func (b *cfgBuilder) collectLabels(body *ast.BlockStmt) {
	b.labels = make(map[string]*Block)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions have their own CFGs
		}
		if ls, ok := n.(*ast.LabeledStmt); ok {
			b.labels[ls.Label.Name] = nil // allocated lazily at emission
		}
		return true
	})
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// exitLoopsTo returns the loop statements left when jumping out through
// frame index fi (innermost first).
func (b *cfgBuilder) exitLoopsTo(fi int) []ast.Stmt {
	var out []ast.Stmt
	for i := len(b.frames) - 1; i >= fi; i-- {
		if b.frames[i].isLoop {
			out = append(out, b.frames[i].stmt)
		}
	}
	return out
}

// stmt emits one statement. label is the pending label when the statement
// was wrapped in a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)

	case *ast.LabeledStmt:
		// A label is a goto target: start a fresh block so the jump has a
		// well-defined entry point.
		target := b.newBlock()
		b.edgeTo(target, nil)
		b.startBlock(target)
		if _, ok := b.labels[st.Label.Name]; ok {
			b.labels[st.Label.Name] = target
		}
		b.stmt(st.Stmt, st.Label.Name)

	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		cond := st.Cond
		thenB := b.newBlock()
		after := b.newBlock()
		b.edgeTo(thenB, func(e *Edge) { e.Cond = cond })
		if st.Else != nil {
			elseB := b.newBlock()
			b.edgeTo(elseB, func(e *Edge) { e.Cond = cond; e.Negate = true })
			b.startBlock(elseB)
			b.stmt(st.Else, "")
			b.edgeTo(after, nil)
		} else {
			b.edgeTo(after, func(e *Edge) { e.Cond = cond; e.Negate = true })
		}
		b.startBlock(thenB)
		b.stmt(st.Body, "")
		b.edgeTo(after, nil)
		b.startBlock(after)

	case *ast.ForStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edgeTo(head, nil)
		b.startBlock(head)
		if st.Cond != nil {
			b.add(st.Cond)
			cond := st.Cond
			b.edgeTo(body, func(e *Edge) { e.Cond = cond })
			b.edgeTo(after, func(e *Edge) { e.Cond = cond; e.Negate = true; e.ExitLoops = []ast.Stmt{st} })
		} else {
			b.edgeTo(body, nil) // for{}: only break or return exits
		}
		b.pushLoop(st, label, head, after)
		b.startBlock(body)
		b.stmts(st.Body.List)
		if st.Post != nil {
			b.add(st.Post)
		}
		b.edgeTo(head, func(e *Edge) { e.BackLoop = st })
		b.popLoop()
		b.startBlock(after)

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.add(st.X)
		b.edgeTo(head, nil)
		b.startBlock(head)
		// The range statement itself marks the per-iteration key/value
		// binding for analyzers that care.
		b.add(st)
		b.edgeTo(body, nil)
		b.edgeTo(after, func(e *Edge) { e.ExitLoops = []ast.Stmt{st} })
		b.pushLoop(st, label, head, after)
		b.startBlock(body)
		b.stmts(st.Body.List)
		b.edgeTo(head, func(e *Edge) { e.BackLoop = st })
		b.popLoop()
		b.startBlock(after)

	case *ast.SwitchStmt:
		b.switchLike(st.Init, st.Tag, st.Body, label, false)

	case *ast.TypeSwitchStmt:
		b.switchLike(st.Init, nil, st.Body, label, false)
		// The type-switch assign is evaluated once before dispatch; record
		// it on the block that preceded the dispatch for completeness.
		_ = st.Assign

	case *ast.SelectStmt:
		// A select without default blocks until some case is ready, so
		// there is no fall-past edge; with a default there still is no
		// extra edge because the default clause is one of the case bodies.
		b.switchLike(nil, nil, st.Body, label, true)

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			fi := b.findFrame(st.Label, false)
			if fi >= 0 {
				exits := b.exitLoopsTo(fi)
				e := b.edgeTo(b.frames[fi].after, func(e *Edge) { e.ExitLoops = exits })
				b.frames[fi].breakers = append(b.frames[fi].breakers, e)
			}
			b.startBlock(b.newBlock()) // dead fall-through
		case token.CONTINUE:
			fi := b.findFrame(st.Label, true)
			if fi >= 0 {
				loop := b.frames[fi].stmt
				exits := b.exitLoopsTo(fi + 1)
				b.edgeTo(b.frames[fi].head, func(e *Edge) { e.BackLoop = loop; e.ExitLoops = exits })
			}
			b.startBlock(b.newBlock())
		case token.GOTO:
			if st.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: st.Label.Name})
			}
			b.startBlock(b.newBlock())
		case token.FALLTHROUGH:
			// Handled structurally by switchLike; reaching here means a
			// malformed tree — treat as a no-op.
		}

	case *ast.ReturnStmt:
		b.add(st)
		b.edgeTo(b.g.Exit, func(e *Edge) { e.Kind = EdgeReturn })
		b.startBlock(b.newBlock())

	case *ast.ExprStmt:
		b.add(st)
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.edgeTo(b.g.Exit, func(e *Edge) { e.Kind = EdgePanic })
				b.startBlock(b.newBlock())
			}
		}

	case *ast.EmptyStmt:

	default:
		// Assign, Decl, IncDec, Send, Defer, Go: leaf nodes.
		b.add(st)
	}
}

// switchLike emits the shared structure of switch, type switch, and select.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string, isSelect bool) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{stmt: nil, label: label, after: after})

	// Pre-create case body entry blocks so fallthrough can target the next.
	var clauses []switchClause
	for _, cl := range body.List {
		c := switchClause{blk: b.newBlock()}
		switch cc := cl.(type) {
		case *ast.CaseClause:
			c.body = cc.Body
			c.exprs = cc.List
			c.isDef = cc.List == nil
		case *ast.CommClause:
			c.body = cc.Body
			c.isDef = cc.Comm == nil
			if cc.Comm != nil {
				c.blk.Nodes = append(c.blk.Nodes, cc.Comm)
			}
		}
		clauses = append(clauses, c)
	}
	hasDefault := false
	for i := range clauses {
		if clauses[i].isDef {
			hasDefault = true
		}
		b.edge(head, clauses[i].blk, nil)
	}
	// A switch with no default (and an empty switch) can fall straight
	// through; a select always takes some case once one is ready, except
	// the degenerate empty select which blocks forever.
	if !hasDefault && !isSelect || len(clauses) == 0 && !isSelect {
		b.edge(head, after, nil)
	}
	for i := range clauses {
		b.startBlock(clauses[i].blk)
		for _, x := range clauses[i].exprs {
			b.add(x)
		}
		b.caseBody(clauses[i].body, i, clauses, after)
		b.edgeTo(after, nil)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.startBlock(after)
}

// switchClause is one case of a switch/type-switch/select during building.
type switchClause struct {
	body  []ast.Stmt
	exprs []ast.Expr // case list / comm statement
	blk   *Block
	isDef bool
}

// caseBody emits one case clause body, routing a trailing fallthrough to the
// next clause's entry block.
func (b *cfgBuilder) caseBody(stmts []ast.Stmt, idx int, clauses []switchClause, after *Block) {
	for i, s := range stmts {
		if bs, ok := s.(*ast.BranchStmt); ok && bs.Tok == token.FALLTHROUGH && i == len(stmts)-1 {
			if idx+1 < len(clauses) {
				b.edgeTo(clauses[idx+1].blk, nil)
				b.startBlock(b.newBlock())
			}
			return
		}
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) pushLoop(stmt ast.Stmt, label string, head, after *Block) {
	b.frames = append(b.frames, loopFrame{stmt: stmt, label: label, head: head, after: after, isLoop: true})
}

func (b *cfgBuilder) popLoop() { b.frames = b.frames[:len(b.frames)-1] }

// findFrame locates the break/continue target frame: the innermost loop (or,
// for break, switch/select) frame, or the frame carrying the label.
func (b *cfgBuilder) findFrame(label *ast.Ident, needLoop bool) int {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return i
		}
	}
	return -1
}

// resolveGotos wires goto edges to their label blocks. A goto to a label the
// builder never emitted (label on a dead path) is dropped.
func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if target := b.labels[g.label]; target != nil {
			b.edge(g.from, target, nil)
		}
	}
}

// markLive flags blocks reachable from Entry.
func (b *cfgBuilder) markLive() {
	var stack []*Block
	b.g.Entry.Live = true
	stack = append(stack, b.g.Entry)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range blk.Succs {
			if !e.To.Live {
				e.To.Live = true
				stack = append(stack, e.To)
			}
		}
	}
}

// InspectNode walks one CFG node like ast.Inspect, with one correction: a
// RangeStmt appears in the graph only as a loop-head marker — its body
// statements are their own CFG nodes — so descending into the body here
// would re-process every body statement at the loop head, against the
// loop-head fact. For a RangeStmt node this visits the statement itself and
// its per-iteration Key/Value bindings; the range expression X is skipped
// too, having been emitted as its own node before the head.
func InspectNode(n ast.Node, fn func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if !fn(rs) {
			return
		}
		if rs.Key != nil {
			ast.Inspect(rs.Key, fn)
		}
		if rs.Value != nil {
			ast.Inspect(rs.Value, fn)
		}
		return
	}
	ast.Inspect(n, fn)
}
