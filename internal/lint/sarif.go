package lint

import (
	"encoding/json"
	"path/filepath"
)

// SARIF emission (Static Analysis Results Interchange Format 2.1.0), the
// subset GitHub code scanning and `jq`-based CI annotation consume: one run,
// one rule per analyzer, one result per diagnostic with a physical location
// whose uri is root-relative so annotations attach to checkout paths.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// ToSARIF renders diagnostics as a SARIF 2.1.0 log. File paths are made
// relative to root (the module root) when possible so CI can attach
// annotations to checkout-relative paths. The rules table carries every
// analyzer that ran — including ones with no findings, so a clean run still
// documents what was checked — plus the synthetic deadignore rule.
func ToSARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "deadignore",
		ShortDescription: sarifMessage{Text: "//dbvet:ignore directives must suppress a finding"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
				uri = filepath.ToSlash(rel)
			}
		}
		col := d.Pos.Column
		if col < 1 {
			col = 1
		}
		line := d.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dbvet", InformationURI: "https://example.invalid/dbvet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
