package lint

import "testing"

func TestLockOrder(t *testing.T) {
	runFixture(t, LockOrderAnalyzer, "lockorder")
}
