package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces the context-plumbing discipline introduced by the
// query-lifecycle hardening: cancellation must flow from the engine entry
// points down through every operator, never be re-rooted mid-stack.
//
//   - context.Background() / context.TODO() are forbidden outside package
//     main (cmd/, examples/) and tests. Two sanctioned exceptions inside
//     library code: (1) a convenience wrapper — a method on a type that also
//     has a "<Name>Context" sibling taking the context explicitly — may
//     root a fresh background context; (2) a nil-guard that assigns a
//     default into the function's own context.Context parameter.
//   - Any function that takes a context.Context must take it as its first
//     parameter.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "check that context.Context flows from the engine entry points and is always the first parameter",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"

	// Methods per receiver type name, to recognize Query/QueryContext
	// wrapper pairs.
	methods := make(map[string]map[string]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if recv := recvTypeName(fd); recv != "" {
				if methods[recv] == nil {
					methods[recv] = make(map[string]bool)
				}
				methods[recv][fd.Name.Name] = true
			}
		}
	}

	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			checkCtxParamFirst(pass, fb)
		}
		if isMain {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			allowWrapper := false
			if recv := recvTypeName(fd); recv != "" && methods[recv][fd.Name.Name+"Context"] {
				allowWrapper = true
			}
			checkBackgroundCalls(pass, fd, allowWrapper)
		}
	}
	return nil
}

// checkCtxParamFirst reports context.Context parameters that are not the
// first parameter.
func checkCtxParamFirst(pass *Pass, fb funcBody) {
	var ft *ast.FuncType
	if fb.decl != nil {
		ft = fb.decl.Type
	} else {
		ft = fb.lit.Type
	}
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			if idx != 0 {
				pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			}
		}
		idx += n
	}
}

// checkBackgroundCalls reports context.Background/TODO calls in fd unless
// sanctioned.
func checkBackgroundCalls(pass *Pass, fd *ast.FuncDecl, allowWrapper bool) {
	// Context-typed parameters of fd, for the nil-guard exception.
	ctxParams := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						ctxParams[obj] = true
					}
				}
			}
		}
	}

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if ok {
			if name := contextRootCall(pass.Info, call); name != "" {
				switch {
				case allowWrapper:
					// Query -> QueryContext style convenience wrapper.
				case name == "Background" && isNilGuardAssign(pass.Info, stack, call, ctxParams):
					// ctx = context.Background() defaulting the own parameter.
				default:
					pass.Reportf(call.Pos(),
						"context.%s() outside cmd/, tests, and the engine entry points: accept a ctx parameter and pass it down", name)
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// contextRootCall returns "Background" or "TODO" when call is
// context.Background() / context.TODO(), else "".
func contextRootCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// isNilGuardAssign reports whether call appears as `ctxParam =
// context.Background()` — the only sanctioned in-library use: defaulting a
// nil context into the function's own context parameter.
func isNilGuardAssign(info *types.Info, stack []ast.Node, call *ast.CallExpr, ctxParams map[types.Object]bool) bool {
	if len(ctxParams) == 0 || len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Rhs[0] != ast.Expr(call) {
		return false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return ctxParams[obj]
}
