package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PinLeakAnalyzer checks the buffer-pool pin discipline: every *PinnedPage
// obtained from FetchPage/NewPage (any call returning one) must reach Unpin
// on every control-flow path. Two rules:
//
//  1. Path rule: no path from the acquisition to a return may leave the pin
//     held. Error-return paths taken because the acquiring call itself
//     failed are understood (the pin was never taken there).
//  2. Defer rule: a pin whose only release is a single direct (non-deferred)
//     Unpin call is flagged — a panic or a later-added early return between
//     pin and release leaks it. Multi-site release ladders (B+tree splits)
//     are exempt from this rule but still subject to the path rule.
//
// Pins that escape the function — stored into a struct (iterators), passed
// to another function, or returned — transfer ownership and are exempt.
var PinLeakAnalyzer = &Analyzer{
	Name: "pinleak",
	Doc:  "check that every pinned buffer-pool page is unpinned on all control-flow paths",
	Run:  runPinLeak,
}

func runPinLeak(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			analyzePinScope(pass, fb.body)
		}
	}
	return nil
}

// pinAcq describes one pin acquisition site.
type pinAcq struct {
	pin  types.Object
	err  types.Object // paired error result, may be nil
	pos  token.Pos
	name string
}

// pinAttrs are flow-insensitive per-variable facts from the prescan.
type pinAttrs struct {
	escaped     bool
	deferred    bool
	directSites int
}

// inspectScope walks root without descending into nested function literals.
func inspectScope(root ast.Node, fn func(n ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// isPinnedPageCall reports whether call's first result is a *PinnedPage.
func isPinnedPageCall(info *types.Info, call *ast.CallExpr) bool {
	t := firstResult(info, call)
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	return typeNameIs(t, "PinnedPage")
}

// analyzePinScope checks one function body (function literals are analyzed
// as their own scopes by the caller).
func analyzePinScope(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: collect acquisitions.
	acqs := make(map[*ast.AssignStmt]*pinAcq)
	tracked := make(map[types.Object]*pinAcq)
	inspectScope(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isPinnedPageCall(pass.Info, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		a := &pinAcq{pin: obj, pos: id.Pos(), name: id.Name}
		if len(as.Lhs) > 1 {
			if eid, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && eid.Name != "_" {
				eo := pass.Info.Defs[eid]
				if eo == nil {
					eo = pass.Info.Uses[eid]
				}
				if eo != nil && isErrorType(eo.Type()) {
					a.err = eo
				}
			}
		}
		acqs[as] = a
		if prev, ok := tracked[obj]; !ok || prev.pos > a.pos {
			tracked[obj] = a
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Pass 2: per-variable attributes (escape, deferred release, direct
	// Unpin sites), via a parent-stack walk that does enter function
	// literals (to classify captures).
	attrs := make(map[types.Object]*pinAttrs)
	for obj := range tracked {
		attrs[obj] = &pinAttrs{}
	}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := pass.Info.Uses[id]
			if obj == nil {
				obj = pass.Info.Defs[id]
			}
			if at, ok := attrs[obj]; ok {
				classifyPinUse(id, stack, at)
			}
		}
		stack = append(stack, n)
		return true
	})
	for obj, at := range attrs {
		if at.escaped || at.deferred {
			delete(tracked, obj)
		}
	}
	for as, a := range acqs {
		if _, ok := tracked[a.pin]; !ok {
			delete(acqs, as)
		}
	}
	if len(tracked) == 0 {
		return
	}

	// Pass 3: path-sensitive leak detection as a forward dataflow problem
	// over the CFG. Branch edges refine err-pairings, loops and labeled
	// jumps are handled by the graph, and returns check-and-kill their
	// paths, so only the implicit return at the closing brace reaches Exit.
	leaked := make(map[types.Object]bool)
	pa := &pinAnalysis{pass: pass, acqs: acqs, tracked: tracked, leaked: leaked}
	pa.analyze(body)

	// Pass 4: defer rule.
	type entry struct {
		a  *pinAcq
		at *pinAttrs
	}
	var order []entry
	for obj, a := range tracked {
		order = append(order, entry{a, attrs[obj]})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].a.pos < order[j].a.pos })
	for _, e := range order {
		if leaked[e.a.pin] {
			continue
		}
		if e.at.directSites == 1 {
			pass.Reportf(e.a.pos,
				"pinned page %s is released by a single non-deferred Unpin; a panic or early return between pin and release leaks it (use defer %s.Unpin)",
				e.a.name, e.a.name)
		}
	}
}

// classifyPinUse updates at for one use of a pin variable given the
// ancestor stack (innermost last).
func classifyPinUse(id *ast.Ident, stack []ast.Node, at *pinAttrs) {
	parent := ast.Node(nil)
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	// Locate an enclosing function literal and whether it is deferred
	// (`defer func() { ... }()`).
	inLit := false
	litDeferred := false
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			inLit = true
			if i >= 2 {
				call, okc := stack[i-1].(*ast.CallExpr)
				_, okd := stack[i-2].(*ast.DeferStmt)
				if okc && okd && call.Fun == stack[i] {
					litDeferred = true
				}
			}
			break
		}
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			at.escaped = true
			return
		}
		if p.Sel.Name == "Unpin" {
			// Direct call, deferred call, or call inside a deferred literal?
			if call, ok := stackTop(stack, 2).(*ast.CallExpr); ok && call.Fun == p {
				if _, ok := stackTop(stack, 3).(*ast.DeferStmt); ok {
					at.deferred = true
					return
				}
				if inLit {
					if litDeferred {
						at.deferred = true
					} else {
						at.escaped = true
					}
					return
				}
				at.directSites++
				return
			}
			at.escaped = true // method value: ownership unclear
			return
		}
		// Field access (pp.Page, pp.ID, ...): benign unless captured by a
		// non-deferred literal that may outlive the frame.
		if inLit && !litDeferred {
			at.escaped = true
		}
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == id {
				return // reassignment target
			}
		}
		at.escaped = true
	case *ast.BinaryExpr:
		// Comparisons (pp != nil) are benign reads.
		if p.Op == token.EQL || p.Op == token.NEQ {
			return
		}
		at.escaped = true
	default:
		at.escaped = true
	}
}

// stackTop returns the n-th node from the top of the stack (1 = last).
func stackTop(stack []ast.Node, n int) ast.Node {
	if len(stack) < n {
		return nil
	}
	return stack[len(stack)-n]
}

// pinPath is one abstract execution path: which pins are held, and which
// error variables are still paired with the acquisition that set them (so a
// branch on err != nil can clear the pin on the failure arm).
type pinPath struct {
	held  map[types.Object]bool
	pairs map[types.Object]types.Object
}

func newPinPath() *pinPath {
	return &pinPath{held: map[types.Object]bool{}, pairs: map[types.Object]types.Object{}}
}

func (p *pinPath) clone() *pinPath {
	q := newPinPath()
	for k, v := range p.held {
		q.held[k] = v
	}
	for k, v := range p.pairs {
		q.pairs[k] = v
	}
	return q
}

func (p *pinPath) signature() string {
	var parts []string
	for k, v := range p.held {
		if v {
			parts = append(parts, fmt.Sprintf("h%p", k))
		}
	}
	for k, v := range p.pairs {
		parts = append(parts, fmt.Sprintf("p%p=%p", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

const maxPinPaths = 256

// pinAnalysis runs the path rule as a forward dataflow problem over the CFG
// (cfg.go/dataflow.go): facts are bounded, deduplicated sets of pinPath
// states, branch edges refine err-pairings via their condition, and return
// statements check and then kill their paths so only the implicit return at
// the closing brace reaches the Exit block.
type pinAnalysis struct {
	pass     *Pass
	acqs     map[*ast.AssignStmt]*pinAcq
	tracked  map[types.Object]*pinAcq
	leaked   map[types.Object]bool
	overflow bool
}

func (pa *pinAnalysis) analyze(body *ast.BlockStmt) {
	g := BuildCFG(body)
	in := g.Forward(Flow{
		Boundary:     []*pinPath{newPinPath()},
		Transfer:     pa.transfer,
		EdgeTransfer: pa.edge,
		Join:         pa.join,
		Equal:        pa.equal,
	})
	if pa.overflow {
		return
	}
	for _, p := range asPinPaths(in[g.Exit]) {
		pa.checkReturn(p, g.End)
	}
}

func asPinPaths(f Fact) []*pinPath {
	if f == nil {
		return nil
	}
	return f.([]*pinPath)
}

func (pa *pinAnalysis) checkReturn(p *pinPath, pos token.Pos) {
	for obj, h := range p.held {
		if !h || pa.leaked[obj] {
			continue
		}
		a := pa.tracked[obj]
		pa.leaked[obj] = true
		pa.pass.Reportf(a.pos,
			"pinned page %s may not be unpinned on every path: a return at line %d can be reached with the pin held",
			a.name, pa.pass.Fset.Position(pos).Line)
	}
}

func (pa *pinAnalysis) transfer(b *Block, in Fact) Fact {
	cur := clonePaths(asPinPaths(in))
	for _, n := range b.Nodes {
		if len(cur) == 0 {
			break
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if a, ok := pa.acqs[st]; ok {
				for _, p := range cur {
					p.held[a.pin] = true
					if a.err != nil {
						p.pairs[a.err] = a.pin
					}
				}
				continue
			}
			// A non-acquiring write to a paired error variable ends the
			// pairing.
			for _, l := range st.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					obj := pa.pass.Info.Defs[id]
					if obj == nil {
						obj = pa.pass.Info.Uses[id]
					}
					if obj != nil {
						for _, p := range cur {
							delete(p.pairs, obj)
						}
					}
				}
			}

		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Unpin" {
					if id, ok := sel.X.(*ast.Ident); ok {
						obj := pa.pass.Info.Uses[id]
						if _, tracked := pa.tracked[obj]; tracked {
							for _, p := range cur {
								p.held[obj] = false
							}
						}
					}
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					cur = nil // path ends; panic recovery is a boundary concern
				}
			}

		case *ast.ReturnStmt:
			for _, p := range cur {
				pa.checkReturn(p, st.Pos())
			}
			cur = nil
		}
	}
	return pa.dedup(cur)
}

// edge refines paths crossing a conditional edge: on the arm where a paired
// acquiring call failed (`err != nil` taken, or `err == nil` not taken), the
// pin was never held.
func (pa *pinAnalysis) edge(e *Edge, f Fact) Fact {
	if e.Cond == nil {
		return f
	}
	be, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return f
	}
	var errID *ast.Ident
	if id, ok := be.X.(*ast.Ident); ok && isNilIdent(be.Y) {
		errID = id
	} else if id, ok := be.Y.(*ast.Ident); ok && isNilIdent(be.X) {
		errID = id
	}
	if errID == nil {
		return f
	}
	obj := pa.pass.Info.Uses[errID]
	if obj == nil {
		return f
	}
	// err != nil on the true arm means the call failed; Negate flips arms.
	failureArm := (be.Op == token.NEQ) != e.Negate
	paths := clonePaths(asPinPaths(f))
	for _, p := range paths {
		if pin, ok := p.pairs[obj]; ok {
			if failureArm {
				p.held[pin] = false
			}
			delete(p.pairs, obj)
		}
	}
	return pa.dedup(paths)
}

func (pa *pinAnalysis) join(a, b Fact) Fact {
	merged := append(append([]*pinPath{}, asPinPaths(a)...), asPinPaths(b)...)
	return pa.dedup(merged)
}

func (pa *pinAnalysis) equal(a, b Fact) bool {
	return factSignature(asPinPaths(a)) == factSignature(asPinPaths(b))
}

// dedup canonicalizes a path set: unique signatures, sorted, capped.
func (pa *pinAnalysis) dedup(in []*pinPath) []*pinPath {
	seen := make(map[string]bool)
	var out []*pinPath
	for _, p := range in {
		sig := p.signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].signature() < out[j].signature() })
	if len(out) > maxPinPaths {
		pa.overflow = true
		out = out[:maxPinPaths]
	}
	return out
}

func factSignature(paths []*pinPath) string {
	sigs := make([]string, len(paths))
	for i, p := range paths {
		sigs[i] = p.signature()
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "|")
}

func clonePaths(in []*pinPath) []*pinPath {
	out := make([]*pinPath, len(in))
	for i, p := range in {
		out[i] = p.clone()
	}
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
