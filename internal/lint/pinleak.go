package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PinLeakAnalyzer checks the buffer-pool pin discipline: every *PinnedPage
// obtained from FetchPage/NewPage (any call returning one) must reach Unpin
// on every control-flow path. Two rules:
//
//  1. Path rule: no path from the acquisition to a return may leave the pin
//     held. Error-return paths taken because the acquiring call itself
//     failed are understood (the pin was never taken there).
//  2. Defer rule: a pin whose only release is a single direct (non-deferred)
//     Unpin call is flagged — a panic or a later-added early return between
//     pin and release leaks it. Multi-site release ladders (B+tree splits)
//     are exempt from this rule but still subject to the path rule.
//
// Pins that escape the function — stored into a struct (iterators), passed
// to another function, or returned — transfer ownership and are exempt.
var PinLeakAnalyzer = &Analyzer{
	Name: "pinleak",
	Doc:  "check that every pinned buffer-pool page is unpinned on all control-flow paths",
	Run:  runPinLeak,
}

func runPinLeak(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			analyzePinScope(pass, fb.body)
		}
	}
	return nil
}

// pinAcq describes one pin acquisition site.
type pinAcq struct {
	pin  types.Object
	err  types.Object // paired error result, may be nil
	pos  token.Pos
	name string
}

// pinAttrs are flow-insensitive per-variable facts from the prescan.
type pinAttrs struct {
	escaped     bool
	deferred    bool
	directSites int
}

// inspectScope walks root without descending into nested function literals.
func inspectScope(root ast.Node, fn func(n ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// isPinnedPageCall reports whether call's first result is a *PinnedPage.
func isPinnedPageCall(info *types.Info, call *ast.CallExpr) bool {
	t := firstResult(info, call)
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	return typeNameIs(t, "PinnedPage")
}

// analyzePinScope checks one function body (function literals are analyzed
// as their own scopes by the caller).
func analyzePinScope(pass *Pass, body *ast.BlockStmt) {
	// Pass 0: bail on control flow the path interpreter cannot model.
	bail := false
	inspectScope(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.LabeledStmt:
			bail = true
		case *ast.BranchStmt:
			if s.Tok == token.GOTO || s.Label != nil {
				bail = true
			}
		}
		return !bail
	})

	// Pass 1: collect acquisitions.
	acqs := make(map[*ast.AssignStmt]*pinAcq)
	tracked := make(map[types.Object]*pinAcq)
	inspectScope(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isPinnedPageCall(pass.Info, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		a := &pinAcq{pin: obj, pos: id.Pos(), name: id.Name}
		if len(as.Lhs) > 1 {
			if eid, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && eid.Name != "_" {
				eo := pass.Info.Defs[eid]
				if eo == nil {
					eo = pass.Info.Uses[eid]
				}
				if eo != nil && isErrorType(eo.Type()) {
					a.err = eo
				}
			}
		}
		acqs[as] = a
		if prev, ok := tracked[obj]; !ok || prev.pos > a.pos {
			tracked[obj] = a
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Pass 2: per-variable attributes (escape, deferred release, direct
	// Unpin sites), via a parent-stack walk that does enter function
	// literals (to classify captures).
	attrs := make(map[types.Object]*pinAttrs)
	for obj := range tracked {
		attrs[obj] = &pinAttrs{}
	}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := pass.Info.Uses[id]
			if obj == nil {
				obj = pass.Info.Defs[id]
			}
			if at, ok := attrs[obj]; ok {
				classifyPinUse(id, stack, at)
			}
		}
		stack = append(stack, n)
		return true
	})
	for obj, at := range attrs {
		if at.escaped || at.deferred {
			delete(tracked, obj)
		}
	}
	for as, a := range acqs {
		if _, ok := tracked[a.pin]; !ok {
			delete(acqs, as)
		}
	}
	if len(tracked) == 0 {
		return
	}

	// Pass 3: path-sensitive leak detection.
	leaked := make(map[types.Object]bool)
	if !bail {
		it := &pinInterp{pass: pass, acqs: acqs, tracked: tracked, leaked: leaked}
		r := it.execStmts(body.List, []*pinPath{newPinPath()})
		if !it.overflow {
			for _, p := range r.fall {
				it.checkReturn(p, body.End())
			}
		}
	}

	// Pass 4: defer rule.
	type entry struct {
		a  *pinAcq
		at *pinAttrs
	}
	var order []entry
	for obj, a := range tracked {
		order = append(order, entry{a, attrs[obj]})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].a.pos < order[j].a.pos })
	for _, e := range order {
		if leaked[e.a.pin] {
			continue
		}
		if e.at.directSites == 1 {
			pass.Reportf(e.a.pos,
				"pinned page %s is released by a single non-deferred Unpin; a panic or early return between pin and release leaks it (use defer %s.Unpin)",
				e.a.name, e.a.name)
		}
	}
}

// classifyPinUse updates at for one use of a pin variable given the
// ancestor stack (innermost last).
func classifyPinUse(id *ast.Ident, stack []ast.Node, at *pinAttrs) {
	parent := ast.Node(nil)
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	// Locate an enclosing function literal and whether it is deferred
	// (`defer func() { ... }()`).
	inLit := false
	litDeferred := false
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			inLit = true
			if i >= 2 {
				call, okc := stack[i-1].(*ast.CallExpr)
				_, okd := stack[i-2].(*ast.DeferStmt)
				if okc && okd && call.Fun == stack[i] {
					litDeferred = true
				}
			}
			break
		}
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			at.escaped = true
			return
		}
		if p.Sel.Name == "Unpin" {
			// Direct call, deferred call, or call inside a deferred literal?
			if call, ok := stackTop(stack, 2).(*ast.CallExpr); ok && call.Fun == p {
				if _, ok := stackTop(stack, 3).(*ast.DeferStmt); ok {
					at.deferred = true
					return
				}
				if inLit {
					if litDeferred {
						at.deferred = true
					} else {
						at.escaped = true
					}
					return
				}
				at.directSites++
				return
			}
			at.escaped = true // method value: ownership unclear
			return
		}
		// Field access (pp.Page, pp.ID, ...): benign unless captured by a
		// non-deferred literal that may outlive the frame.
		if inLit && !litDeferred {
			at.escaped = true
		}
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == id {
				return // reassignment target
			}
		}
		at.escaped = true
	case *ast.BinaryExpr:
		// Comparisons (pp != nil) are benign reads.
		if p.Op == token.EQL || p.Op == token.NEQ {
			return
		}
		at.escaped = true
	default:
		at.escaped = true
	}
}

// stackTop returns the n-th node from the top of the stack (1 = last).
func stackTop(stack []ast.Node, n int) ast.Node {
	if len(stack) < n {
		return nil
	}
	return stack[len(stack)-n]
}

// pinPath is one abstract execution path: which pins are held, and which
// error variables are still paired with the acquisition that set them (so a
// branch on err != nil can clear the pin on the failure arm).
type pinPath struct {
	held  map[types.Object]bool
	pairs map[types.Object]types.Object
}

func newPinPath() *pinPath {
	return &pinPath{held: map[types.Object]bool{}, pairs: map[types.Object]types.Object{}}
}

func (p *pinPath) clone() *pinPath {
	q := newPinPath()
	for k, v := range p.held {
		q.held[k] = v
	}
	for k, v := range p.pairs {
		q.pairs[k] = v
	}
	return q
}

func (p *pinPath) signature() string {
	var parts []string
	for k, v := range p.held {
		if v {
			parts = append(parts, fmt.Sprintf("h%p", k))
		}
	}
	for k, v := range p.pairs {
		parts = append(parts, fmt.Sprintf("p%p=%p", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

const maxPinPaths = 256

type flowResult struct {
	fall []*pinPath
	brk  []*pinPath
	cont []*pinPath
}

type pinInterp struct {
	pass     *Pass
	acqs     map[*ast.AssignStmt]*pinAcq
	tracked  map[types.Object]*pinAcq
	leaked   map[types.Object]bool
	overflow bool
}

// mergePaths deduplicates path states and enforces the path cap.
func (it *pinInterp) mergePaths(sets ...[]*pinPath) []*pinPath {
	seen := make(map[string]bool)
	var out []*pinPath
	for _, set := range sets {
		for _, p := range set {
			sig := p.signature()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			out = append(out, p)
		}
	}
	if len(out) > maxPinPaths {
		it.overflow = true
		out = out[:maxPinPaths]
	}
	return out
}

func (it *pinInterp) checkReturn(p *pinPath, pos token.Pos) {
	for obj, h := range p.held {
		if !h || it.leaked[obj] {
			continue
		}
		a := it.tracked[obj]
		it.leaked[obj] = true
		it.pass.Reportf(a.pos,
			"pinned page %s may not be unpinned on every path: a return at line %d can be reached with the pin held",
			a.name, it.pass.Fset.Position(pos).Line)
	}
}

func (it *pinInterp) execStmts(stmts []ast.Stmt, in []*pinPath) flowResult {
	cur := in
	var brk, cont []*pinPath
	for _, s := range stmts {
		if len(cur) == 0 || it.overflow {
			break
		}
		r := it.execStmt(s, cur)
		brk = append(brk, r.brk...)
		cont = append(cont, r.cont...)
		cur = r.fall
	}
	return flowResult{fall: cur, brk: brk, cont: cont}
}

func (it *pinInterp) execStmt(s ast.Stmt, in []*pinPath) flowResult {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return it.execStmts(st.List, in)

	case *ast.AssignStmt:
		if a, ok := it.acqs[st]; ok {
			for _, p := range in {
				p.held[a.pin] = true
				if a.err != nil {
					p.pairs[a.err] = a.pin
				}
			}
			return flowResult{fall: in}
		}
		// A non-acquiring write to a paired error variable ends the pairing.
		for _, l := range st.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				obj := it.pass.Info.Defs[id]
				if obj == nil {
					obj = it.pass.Info.Uses[id]
				}
				if obj != nil {
					for _, p := range in {
						delete(p.pairs, obj)
					}
				}
			}
		}
		return flowResult{fall: in}

	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Unpin" {
				if id, ok := sel.X.(*ast.Ident); ok {
					obj := it.pass.Info.Uses[id]
					if _, tracked := it.tracked[obj]; tracked {
						for _, p := range in {
							p.held[obj] = false
						}
					}
				}
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return flowResult{} // path ends; panic recovery is a boundary concern
			}
		}
		return flowResult{fall: in}

	case *ast.ReturnStmt:
		for _, p := range in {
			it.checkReturn(p, st.Pos())
		}
		return flowResult{}

	case *ast.IfStmt:
		cur := in
		if st.Init != nil {
			cur = it.execStmt(st.Init, cur).fall
		}
		thenIn := clonePaths(cur)
		elseIn := clonePaths(cur)
		applyErrCond(it.pass.Info, st.Cond, thenIn, elseIn)
		rThen := it.execStmt(st.Body, thenIn)
		var rElse flowResult
		if st.Else != nil {
			rElse = it.execStmt(st.Else, elseIn)
		} else {
			rElse = flowResult{fall: elseIn}
		}
		return flowResult{
			fall: it.mergePaths(rThen.fall, rElse.fall),
			brk:  it.mergePaths(rThen.brk, rElse.brk),
			cont: it.mergePaths(rThen.cont, rElse.cont),
		}

	case *ast.ForStmt:
		cur := in
		if st.Init != nil {
			cur = it.execStmt(st.Init, cur).fall
		}
		r := it.execStmts(st.Body.List, clonePaths(cur))
		skip := cur
		if st.Cond == nil {
			skip = nil // for{} only exits through break or return
			return flowResult{fall: it.mergePaths(r.brk)}
		}
		return flowResult{fall: it.mergePaths(skip, r.fall, r.brk, r.cont)}

	case *ast.RangeStmt:
		r := it.execStmts(st.Body.List, clonePaths(in))
		return flowResult{fall: it.mergePaths(in, r.fall, r.brk, r.cont)}

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		var init ast.Stmt
		hasDefault := false
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			body, init = sw.Body, sw.Init
		case *ast.TypeSwitchStmt:
			body, init = sw.Body, sw.Init
		case *ast.SelectStmt:
			body, hasDefault = sw.Body, true // select always takes a case
		}
		cur := in
		if init != nil {
			cur = it.execStmt(init, cur).fall
		}
		var falls [][]*pinPath
		var cont []*pinPath
		for _, cl := range body.List {
			var caseBody []ast.Stmt
			switch c := cl.(type) {
			case *ast.CaseClause:
				caseBody = c.Body
				if c.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				caseBody = c.Body
			}
			r := it.execStmts(caseBody, clonePaths(cur))
			falls = append(falls, r.fall, r.brk) // break leaves the switch
			cont = append(cont, r.cont...)
		}
		if !hasDefault {
			falls = append(falls, cur)
		}
		var all []*pinPath
		for _, f := range falls {
			all = it.mergePaths(all, f)
		}
		return flowResult{fall: all, cont: cont}

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			return flowResult{brk: in}
		case token.CONTINUE:
			return flowResult{cont: in}
		}
		return flowResult{fall: in} // fallthrough

	case *ast.LabeledStmt:
		return it.execStmt(st.Stmt, in) // unreachable: labels bail earlier

	default:
		// DeclStmt, DeferStmt, GoStmt, IncDecStmt, SendStmt, EmptyStmt, ...
		return flowResult{fall: in}
	}
}

func clonePaths(in []*pinPath) []*pinPath {
	out := make([]*pinPath, len(in))
	for i, p := range in {
		out[i] = p.clone()
	}
	return out
}

// applyErrCond interprets `err != nil` / `err == nil` conditions over paired
// error variables: on the arm where the acquiring call failed, the pin was
// never taken.
func applyErrCond(info *types.Info, cond ast.Expr, thenIn, elseIn []*pinPath) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return
	}
	var errID *ast.Ident
	if id, ok := be.X.(*ast.Ident); ok && isNilIdent(be.Y) {
		errID = id
	} else if id, ok := be.Y.(*ast.Ident); ok && isNilIdent(be.X) {
		errID = id
	}
	if errID == nil {
		return
	}
	obj := info.Uses[errID]
	if obj == nil {
		return
	}
	failure, success := thenIn, elseIn // err != nil: then = failure
	if be.Op == token.EQL {
		failure, success = elseIn, thenIn
	}
	for _, p := range failure {
		if pin, ok := p.pairs[obj]; ok {
			p.held[pin] = false
			delete(p.pairs, obj)
		}
	}
	for _, p := range success {
		delete(p.pairs, obj)
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
