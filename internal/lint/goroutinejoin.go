package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineJoinAnalyzer enforces the exchange-operator contract for spawned
// goroutines: every `go` statement must participate in a join protocol, and
// must receive a derived context so cancellation reaches it.
//
// Join evidence, in order of preference:
//
//   - WaitGroup pairing: the goroutine (or a function it calls, per the
//     one-level summaries) calls wg.Done, and a matching wg.Add precedes the
//     `go` statement on every path (a forward must-analysis over the CFG).
//   - Result channel: the goroutine sends on or closes a channel — the
//     consumer's drain is the join.
//   - Join-only bodies (`go func() { wg.Wait(); close(out) }()`) ARE the
//     join protocol and are exempt from both rules.
//
// Context evidence: some argument or captured variable of the goroutine
// carries a context — context.Context itself or a struct with such a field
// (exec.Context) — and that value is derived: defined by a call to child/
// context.WithCancel/WithTimeout/WithDeadline/WithValue, or received as a
// parameter of the spawning function (the caller derived it).
var GoroutineJoinAnalyzer = &Analyzer{
	Name:      "goroutinejoin",
	Doc:       "every go statement is joined via WaitGroup pairing or a result channel, and receives a derived context",
	RunGlobal: runGoroutineJoin,
}

// derivedCtxCalls are callee names that produce a derived context.
var derivedCtxCalls = map[string]bool{
	"child":        true,
	"WithCancel":   true,
	"WithTimeout":  true,
	"WithDeadline": true,
	"WithValue":    true,
}

func runGoroutineJoin(units []*Unit, report func(u *Unit, pos token.Pos, format string, args ...any)) error {
	sums := BuildSummaries(units)
	for _, u := range units {
		for _, f := range u.Files {
			for _, fb := range funcBodies(f) {
				analyzeSpawns(u, fb, sums, report)
			}
		}
	}
	return nil
}

// analyzeSpawns checks the go statements that appear directly in one
// function scope (nested literals are their own scopes).
func analyzeSpawns(u *Unit, fb funcBody, sums *Summaries, report func(u *Unit, pos token.Pos, format string, args ...any)) {
	var spawns []*ast.GoStmt
	inspectScope(fb.body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}

	addFacts := addBeforeSpawn(fb.body, u, spawns)

	for _, g := range spawns {
		ev := spawnEvidence(u, g, sums)
		if ev.joinOnly {
			continue // this goroutine IS the join protocol
		}

		switch {
		case ev.channel:
			// Sends on or closes a channel: the drain is the join.
		case len(ev.doneDescs) > 0 || ev.calleeDone:
			added := addFacts[g]
			ok := ev.calleeDone && len(added) > 0
			for _, d := range ev.doneDescs {
				if added[d] {
					ok = true
				}
			}
			if !ok {
				report(u, g.Pos(),
					"goroutine calls WaitGroup.Done but no matching Add precedes the go statement on every path")
			}
		default:
			report(u, g.Pos(),
				"goroutine is never joined: pair it with WaitGroup Add/Done/Wait or a result channel")
		}

		checkSpawnContext(u, fb, g, report)
	}
}

// spawnFacts is the join evidence of one go statement's body or callee.
type spawnFacts struct {
	joinOnly   bool     // body only waits/closes: it is the joiner
	channel    bool     // sends on or closes a channel
	doneDescs  []string // receivers of direct wg.Done() calls in a literal body
	calleeDone bool     // a called function's summary calls wg.Done
}

func spawnEvidence(u *Unit, g *ast.GoStmt, sums *Summaries) spawnFacts {
	var ev spawnFacts
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ev.joinOnly = joinOnlyBody(u, fl.Body)
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			switch nd := n.(type) {
			case *ast.SendStmt:
				ev.channel = true
			case *ast.Ident:
				if nd.Name == "close" {
					if _, isBuiltin := u.Info.Uses[nd].(*types.Builtin); isBuiltin {
						ev.channel = true
					}
				}
			case *ast.CallExpr:
				callee := calleeFunc(u.Info, nd)
				if callee == nil {
					return true
				}
				if callee.Name() == "Done" && recvTypeNameIs(callee, "WaitGroup") {
					if sel, ok := nd.Fun.(*ast.SelectorExpr); ok {
						ev.doneDescs = append(ev.doneDescs, exprString(u.Fset, sel.X))
					}
				}
				if fi, ok := sums.Funcs[callee]; ok {
					if fi.TouchesChannel {
						ev.channel = true
					}
					if fi.CallsWGDone {
						ev.calleeDone = true
					}
				}
			}
			return true
		})
		return ev
	}
	if callee := calleeFunc(u.Info, g.Call); callee != nil {
		if fi, ok := sums.Funcs[callee]; ok {
			ev.channel = fi.TouchesChannel
			ev.calleeDone = fi.CallsWGDone
		}
	}
	return ev
}

// joinOnlyBody reports whether every statement is part of a join protocol:
// Wait/Done/close calls, channel sends, or returns.
func joinOnlyBody(u *Unit, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, s := range body.List {
		switch st := s.(type) {
		case *ast.SendStmt, *ast.ReturnStmt:
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
				continue
			}
			callee := calleeFunc(u.Info, call)
			if callee == nil {
				return false
			}
			if (callee.Name() == "Wait" || callee.Name() == "Done") && recvTypeNameIs(callee, "WaitGroup") {
				continue
			}
			return false
		default:
			return false
		}
	}
	return true
}

// addBeforeSpawn runs a forward must-analysis over the spawning function's
// CFG: the fact is the set of WaitGroup expressions (by source text) with an
// Add call on every path from entry. The result maps each go statement to
// the fact holding immediately before it.
func addBeforeSpawn(body *ast.BlockStmt, u *Unit, spawns []*ast.GoStmt) map[*ast.GoStmt]map[string]bool {
	at := make(map[*ast.GoStmt]map[string]bool, len(spawns))
	want := make(map[*ast.GoStmt]bool, len(spawns))
	for _, g := range spawns {
		want[g] = true
	}

	asSet := func(f Fact) map[string]bool {
		if f == nil {
			return nil
		}
		return f.(map[string]bool)
	}
	g := BuildCFG(body)
	g.Forward(Flow{
		Boundary: map[string]bool{},
		Transfer: func(b *Block, in Fact) Fact {
			cur := make(map[string]bool, len(asSet(in)))
			for k := range asSet(in) {
				cur[k] = true
			}
			for _, n := range b.Nodes {
				if gs, ok := n.(*ast.GoStmt); ok && want[gs] {
					snap := make(map[string]bool, len(cur))
					for k := range cur {
						snap[k] = true
					}
					at[gs] = snap
					continue
				}
				InspectNode(n, func(nd ast.Node) bool {
					if _, ok := nd.(*ast.FuncLit); ok {
						return false
					}
					call, ok := nd.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(u.Info, call)
					if callee == nil || callee.Name() != "Add" || !recvTypeNameIs(callee, "WaitGroup") {
						return true
					}
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						cur[exprString(u.Fset, sel.X)] = true
					}
					return true
				})
			}
			return cur
		},
		Join: func(a, b Fact) Fact {
			av, bv := asSet(a), asSet(b)
			if av == nil {
				return bv
			}
			if bv == nil {
				return av
			}
			out := make(map[string]bool)
			for k := range av {
				if bv[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b Fact) bool {
			av, bv := asSet(a), asSet(b)
			if len(av) != len(bv) {
				return false
			}
			for k := range av {
				if !bv[k] {
					return false
				}
			}
			return true
		},
	})
	return at
}

// checkSpawnContext verifies the goroutine receives a derived context.
func checkSpawnContext(u *Unit, fb funcBody, g *ast.GoStmt, report func(u *Unit, pos token.Pos, format string, args ...any)) {
	// Candidate context carriers: call arguments, plus identifiers the
	// literal body captures.
	var candidates []*ast.Ident
	seen := make(map[types.Object]bool)
	addIdent := func(id *ast.Ident) {
		obj := u.Info.Uses[id]
		if obj == nil || seen[obj] {
			return
		}
		if !isContextCarrier(obj.Type()) {
			return
		}
		seen[obj] = true
		candidates = append(candidates, id)
	}
	for _, arg := range g.Call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			addIdent(id)
		}
	}
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				addIdent(id)
			}
			return true
		})
	}
	if len(candidates) == 0 {
		report(u, g.Pos(),
			"goroutine does not receive a context; pass a derived context (ctx.child or context.With*) so cancellation reaches it")
		return
	}
	for _, id := range candidates {
		if isDerivedContext(u, fb, id) {
			return
		}
	}
	report(u, g.Pos(),
		"goroutine receives context %s that is not derived; use ctx.child or context.With* so the spawn can be cancelled independently",
		candidates[0].Name)
}

// isContextCarrier reports whether t is context.Context or a (pointer to a)
// struct carrying a context.Context field, like exec.Context.
func isContextCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	n := namedType(t)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isDerivedContext reports whether the context identifier was produced by a
// deriving call in the spawning scope, or arrived as a parameter (the caller
// derived it).
func isDerivedContext(u *Unit, fb funcBody, id *ast.Ident) bool {
	obj := u.Info.Uses[id]
	if obj == nil {
		return false
	}
	// Parameter of the spawning function?
	var params *ast.FieldList
	if fb.decl != nil {
		params = fb.decl.Type.Params
	} else if fb.lit != nil {
		params = fb.lit.Type.Params
	}
	if params != nil {
		for _, f := range params.List {
			for _, name := range f.Names {
				if u.Info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	// Defined by a deriving call?
	derived := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if derived {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		defines := false
		for _, l := range as.Lhs {
			if lid, ok := l.(*ast.Ident); ok {
				if u.Info.Defs[lid] == obj || u.Info.Uses[lid] == obj {
					defines = true
				}
			}
		}
		if !defines {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && derivedCtxCalls[sel.Sel.Name] {
			derived = true
		} else if fid, ok := call.Fun.(*ast.Ident); ok && derivedCtxCalls[fid.Name] {
			derived = true
		}
		return true
	})
	return derived
}
