package lint

import "testing"

func TestShedLattice(t *testing.T) {
	runFixture(t, ShedLatticeAnalyzer, "shedlattice")
}
