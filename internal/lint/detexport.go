package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// DetExportAnalyzer enforces byte-determinism of the execution-feedback
// surfaces: exported page-count feedback, the statistics-xml snapshot, and
// plan-cache key construction must render identically run after run, or
// feedback imports and cache-on/off identity tests lose their meaning.
//
// The analyzer marks a fixed set of determinism roots (ExportFeedback,
// planKey/selBucket/QueryKey, MarshalStats/StatsSnapshot) and taints every
// function reachable from them over the call graph (summary.go). Within the
// tainted set it reports:
//
//   - calls to time.Now,
//   - any use of math/rand (v1 or v2),
//   - `range` over a map whose body is order-sensitive (bodies that only
//     accumulate into sets/counters or collect keys for a later sort are
//     allowed — that is the sanctioned sortedKeys pattern).
//
// The call graph covers module-local functions only; stdlib calls other
// than the banned ones are assumed deterministic.
var DetExportAnalyzer = &Analyzer{
	Name:      "detexport",
	Doc:       "no time.Now, math/rand, or order-sensitive map iteration reachable from feedback export, statistics rendering, or plan-cache keys",
	RunGlobal: runDetExport,
}

// detRoots maps root function names to the determinism surface they anchor.
// Names are matched across all loaded packages; they are unique in this
// module by construction (TestDetExportRootsExist keeps them honest).
var detRoots = map[string]string{
	"ExportFeedback":       "exported page-count feedback",
	"ExportFeedbackToFile": "exported page-count feedback",
	"planKey":              "plan-cache key construction",
	"selBucket":            "plan-cache key construction",
	"QueryKey":             "plan-cache key construction",
	"MarshalStats":         "statistics-xml rendering",
	"StatsSnapshot":        "statistics-xml rendering",
}

func runDetExport(units []*Unit, report func(u *Unit, pos token.Pos, format string, args ...any)) error {
	sums := BuildSummaries(units)

	var roots []*FuncInfo
	for _, fi := range sums.Funcs {
		if _, ok := detRoots[fi.Obj.Name()]; ok {
			roots = append(roots, fi)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].Obj.FullName() < roots[j].Obj.FullName()
	})

	reported := make(map[ast.Node]bool)
	for _, root := range roots {
		surface := detRoots[root.Obj.Name()]
		reach := sums.Reachable(root.Obj)

		var tainted []*FuncInfo
		for fn := range reach {
			if fi, ok := sums.Funcs[fn]; ok && len(fi.Det) > 0 {
				tainted = append(tainted, fi)
			}
		}
		sort.Slice(tainted, func(i, j int) bool {
			return tainted[i].Decl.Pos() < tainted[j].Decl.Pos()
		})
		for _, fi := range tainted {
			for _, v := range fi.Det {
				if reported[v.Node] {
					continue
				}
				reported[v.Node] = true
				report(fi.Unit, v.Node.Pos(),
					"nondeterministic %s in %s is reachable from %s (%s must be byte-deterministic)",
					v.What, fi.Obj.Name(), root.Obj.Name(), surface)
			}
		}
	}
	return nil
}
