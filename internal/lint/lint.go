// Package lint is dbvet's analysis framework: a small, dependency-free
// re-implementation of the golang.org/x/tools go/analysis surface, just wide
// enough for this repository's invariant checkers.
//
// The analyzers (one per file) machine-check the hand-maintained
// invariants the query-lifecycle, hot-path, parallel-execution, overload,
// and plan-cache PRs rely on:
//
//   - pinleak:       every pinned page reaches Unpin on all control-flow paths
//   - lockorder:     buffer-pool shard mutexes are acquired in ascending order
//   - ctxflow:       context.Context flows from the engine entry points
//   - errkind:       errors crossing the engine boundary are typed *QueryError
//   - atomicfield:   fields touched via sync/atomic are never accessed plainly
//   - monitormerge:  monitor counting types are mergeable and their Merge
//     methods carry a reviewed `dbvet:commutative` claim
//   - planshare:     plan-node fields are written only by the plan and opt
//     packages, keeping cached plan templates immutable
//   - detexport:     no time.Now, math/rand, or order-sensitive map iteration
//     reachable from feedback export, stats rendering, or plan-cache keys
//   - goroutinejoin: every go statement is joined (WaitGroup pairing or a
//     result channel) and receives a derived context
//   - membudget:     exec operators charge exec.MemTracker before growing
//     build-side slices or maps
//   - shedlattice:   monitor degradation only moves down the
//     exact→DPSample→linear→off lattice
//
// Path-sensitive analyzers run on a shared CFG + dataflow core (cfg.go,
// dataflow.go, summary.go) mirroring golang.org/x/tools/go/cfg the same way
// this file mirrors go/analysis.
//
// The framework intentionally mirrors go/analysis (Analyzer, Pass, Reportf,
// analysistest-style fixtures under testdata/src) so the checkers could move
// onto x/tools unchanged; it is self-contained only because this repository
// builds hermetically with zero external module dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. It mirrors the go/analysis Analyzer
// shape: a name that appears in diagnostics and suppression comments, a doc
// string shown by `dbvet -help`, and a Run function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in output and in //dbvet:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run analyzes one package, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
	// RunGlobal, when set, replaces per-package Run: the analyzer sees every
	// loaded package at once. atomicfield needs this — a field written
	// atomically in one package must not be read plainly in another.
	RunGlobal func(units []*Unit, report func(u *Unit, pos token.Pos, format string, args ...any)) error
}

// Pass carries one package's ASTs and type information to an analyzer,
// mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	unit   *Unit
	report func(u *Unit, pos token.Pos, format string, args ...any)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(p.unit, pos, format, args...)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// RunConfig tunes a Run.
type RunConfig struct {
	// ReportUnusedIgnores adds a diagnostic (analyzer "deadignore") for
	// every //dbvet:ignore directive that suppressed nothing. Only dbvet's
	// full-suite runs set it: under a partial analyzer set, a directive
	// aimed at an analyzer that did not run is not evidence of staleness,
	// and a blanket directive cannot be judged at all. A named directive is
	// only reported when at least one of its named analyzers ran.
	ReportUnusedIgnores bool
}

// Run executes the analyzers over the loaded units and returns the surviving
// diagnostics, sorted by position. Findings on lines carrying a
// //dbvet:ignore comment (or whose preceding line is such a comment) are
// suppressed; `//dbvet:ignore` mutes every analyzer on that line,
// `//dbvet:ignore pinleak,ctxflow` only the named ones.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithConfig(units, analyzers, RunConfig{})
}

// RunWithConfig is Run with explicit configuration.
func RunWithConfig(units []*Unit, analyzers []*Analyzer, cfg RunConfig) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		report := func(u *Unit, pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:      u.Fset.Position(pos),
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		if a.RunGlobal != nil {
			if err := a.RunGlobal(units, report); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, u := range units {
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    u.Files,
				Pkg:      u.Pkg,
				Info:     u.Info,
				unit:     u,
				report:   report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.PkgPath, err)
			}
		}
	}
	ignores := collectIgnores(units)
	diags = filterSuppressed(diags, ignores)
	if cfg.ReportUnusedIgnores {
		ran := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		diags = append(diags, unusedIgnores(ignores, ran)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreDirective is the comment prefix that suppresses findings.
const ignoreDirective = "//dbvet:ignore"

// ignoreEntry is one //dbvet:ignore directive found in the sources.
type ignoreEntry struct {
	pos   token.Position
	names []string // analyzers the directive names; empty = all
	used  bool     // suppressed at least one diagnostic this run
}

// collectIgnores gathers every //dbvet:ignore directive.
func collectIgnores(units []*Unit) []*ignoreEntry {
	var entries []*ignoreEntry
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignoreDirective) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignoreDirective)
					var names []string
					for _, n := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
						names = append(names, n)
					}
					entries = append(entries, &ignoreEntry{
						pos:   u.Fset.Position(c.Pos()),
						names: names,
					})
				}
			}
		}
	}
	return entries
}

// filterSuppressed drops diagnostics muted by //dbvet:ignore comments,
// marking the directives that did the muting as used.
func filterSuppressed(diags []Diagnostic, ignores []*ignoreEntry) []Diagnostic {
	// byLine maps filename -> line -> directives on that line.
	byLine := make(map[string]map[int][]*ignoreEntry)
	for _, e := range ignores {
		m := byLine[e.pos.Filename]
		if m == nil {
			m = make(map[int][]*ignoreEntry)
			byLine[e.pos.Filename] = m
		}
		m[e.pos.Line] = append(m[e.pos.Line], e)
	}
	matches := func(d Diagnostic, line int) bool {
		for _, e := range byLine[d.Pos.Filename][line] {
			if len(e.names) == 0 {
				e.used = true
				return true
			}
			for _, n := range e.names {
				if n == d.Analyzer {
					e.used = true
					return true
				}
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if matches(d, d.Pos.Line) || matches(d, d.Pos.Line-1) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// unusedIgnores reports directives that suppressed nothing. A suppression
// that outlives the finding it was written for hides the NEXT regression at
// that line, so staleness is itself a finding. ran is the set of analyzer
// names that executed: a named directive is judged only when one of its
// analyzers ran, and names that are not analyzers at all are reported as
// typos unconditionally.
func unusedIgnores(ignores []*ignoreEntry, ran map[string]bool) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, e := range ignores {
		if e.used {
			continue
		}
		judgeable := len(e.names) == 0 // a blanket directive is judged by any run
		for _, n := range e.names {
			if !known[n] {
				out = append(out, Diagnostic{
					Pos:      e.pos,
					Analyzer: "deadignore",
					Message:  fmt.Sprintf("//dbvet:ignore names unknown analyzer %q", n),
				})
			}
			if ran[n] {
				judgeable = true
			}
		}
		if !judgeable {
			continue
		}
		what := "any analyzer"
		if len(e.names) > 0 {
			what = strings.Join(e.names, ", ")
		}
		out = append(out, Diagnostic{
			Pos:      e.pos,
			Analyzer: "deadignore",
			Message:  fmt.Sprintf("unused //dbvet:ignore directive: no finding from %s is suppressed here; stale suppressions hide the next regression", what),
		})
	}
	return out
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PinLeakAnalyzer,
		LockOrderAnalyzer,
		CtxFlowAnalyzer,
		ErrKindAnalyzer,
		AtomicFieldAnalyzer,
		MonitorMergeAnalyzer,
		PlanShareAnalyzer,
		DetExportAnalyzer,
		GoroutineJoinAnalyzer,
		MemBudgetAnalyzer,
		ShedLatticeAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list; unknown names error.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}
