// Package lint is dbvet's analysis framework: a small, dependency-free
// re-implementation of the golang.org/x/tools go/analysis surface, just wide
// enough for this repository's invariant checkers.
//
// The seven analyzers (one per file) machine-check the hand-maintained
// invariants the query-lifecycle, hot-path, parallel-execution, and
// plan-cache PRs rely on:
//
//   - pinleak:      every pinned page reaches Unpin on all control-flow paths
//   - lockorder:    buffer-pool shard mutexes are acquired in ascending order
//   - ctxflow:      context.Context flows from the engine entry points
//   - errkind:      errors crossing the engine boundary are typed *QueryError
//   - atomicfield:  fields touched via sync/atomic are never accessed plainly
//   - monitormerge: monitor counting types are mergeable and their Merge
//     methods carry a reviewed `dbvet:commutative` claim
//   - planshare:    plan-node fields are written only by the plan and opt
//     packages, keeping cached plan templates immutable
//
// The framework intentionally mirrors go/analysis (Analyzer, Pass, Reportf,
// analysistest-style fixtures under testdata/src) so the checkers could move
// onto x/tools unchanged; it is self-contained only because this repository
// builds hermetically with zero external module dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. It mirrors the go/analysis Analyzer
// shape: a name that appears in diagnostics and suppression comments, a doc
// string shown by `dbvet -help`, and a Run function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in output and in //dbvet:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run analyzes one package, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
	// RunGlobal, when set, replaces per-package Run: the analyzer sees every
	// loaded package at once. atomicfield needs this — a field written
	// atomically in one package must not be read plainly in another.
	RunGlobal func(units []*Unit, report func(u *Unit, pos token.Pos, format string, args ...any)) error
}

// Pass carries one package's ASTs and type information to an analyzer,
// mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	unit   *Unit
	report func(u *Unit, pos token.Pos, format string, args ...any)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(p.unit, pos, format, args...)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Run executes the analyzers over the loaded units and returns the surviving
// diagnostics, sorted by position. Findings on lines carrying a
// //dbvet:ignore comment (or whose preceding line is such a comment) are
// suppressed; `//dbvet:ignore` mutes every analyzer on that line,
// `//dbvet:ignore pinleak,ctxflow` only the named ones.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		report := func(u *Unit, pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:      u.Fset.Position(pos),
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		if a.RunGlobal != nil {
			if err := a.RunGlobal(units, report); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, u := range units {
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    u.Files,
				Pkg:      u.Pkg,
				Info:     u.Info,
				unit:     u,
				report:   report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.PkgPath, err)
			}
		}
	}
	diags = filterSuppressed(diags, units)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreDirective is the comment prefix that suppresses findings.
const ignoreDirective = "//dbvet:ignore"

// filterSuppressed drops diagnostics muted by //dbvet:ignore comments.
func filterSuppressed(diags []Diagnostic, units []*Unit) []Diagnostic {
	// ignores maps filename -> line -> analyzer names ("" = all).
	ignores := make(map[string]map[int][]string)
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignoreDirective) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignoreDirective)
					var names []string
					for _, n := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
						names = append(names, n)
					}
					pos := u.Fset.Position(c.Pos())
					m := ignores[pos.Filename]
					if m == nil {
						m = make(map[int][]string)
						ignores[pos.Filename] = m
					}
					if len(names) == 0 {
						m[pos.Line] = append(m[pos.Line], "")
					} else {
						m[pos.Line] = append(m[pos.Line], names...)
					}
				}
			}
		}
	}
	matches := func(d Diagnostic, line int) bool {
		for _, n := range ignores[d.Pos.Filename][line] {
			if n == "" || n == d.Analyzer {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if matches(d, d.Pos.Line) || matches(d, d.Pos.Line-1) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PinLeakAnalyzer,
		LockOrderAnalyzer,
		CtxFlowAnalyzer,
		ErrKindAnalyzer,
		AtomicFieldAnalyzer,
		MonitorMergeAnalyzer,
		PlanShareAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list; unknown names error.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}
