package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ShedLatticeAnalyzer enforces the one-way monitor degradation lattice from
// the load-shedding design: a monitor may only move DOWN
//
//	exact (monExactPrefix) → DPSample (monSampled / monJoinFilter) →
//	linear (monLinear) → off (shedOff / quarantine / disabled)
//
// within a query. Moving back up — re-enabling a disabled monitor, or
// promoting a linear counter to exact counting mid-flight — would let a shed
// monitor feed partial observations into ApplyFeedback as if they were
// complete. The analyzer tracks monitor-kind writes (field assignments,
// composite literals, shedOff/quarantine calls) per monitor expression as a
// forward dataflow over the CFG and reports any path where a write lowers
// the degradation rank.
var ShedLatticeAnalyzer = &Analyzer{
	Name: "shedlattice",
	Doc:  "monitor degradation only moves down the exact→DPSample→linear→off lattice",
	Run:  runShedLattice,
}

// shedRank maps monitor-kind constant names to their degradation rank.
// NOTE: rank is lattice position, not iota order — monJoinFilter sits on the
// DPSample rung even though it is declared after monSampled.
var shedRank = map[string]int{
	"monExactPrefix": 0,
	"monSampled":     1,
	"monJoinFilter":  1,
	"monLinear":      2,
}

const shedRankOff = 3

var shedRankName = [...]string{"exact", "DPSample", "linear", "off"}

func runShedLattice(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			analyzeShedScope(pass, fb.body)
		}
	}
	return nil
}

// shedFact maps a monitor expression (by source text) to its current
// degradation rank. Facts are immutable; the transfer copies before writing.
type shedFact map[string]int

func asShedFact(f Fact) shedFact {
	if f == nil {
		return nil
	}
	return f.(shedFact)
}

func shedFactSig(f shedFact) string {
	parts := make([]string, 0, len(f))
	for k, v := range f {
		parts = append(parts, k+"="+string(rune('0'+v)))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func analyzeShedScope(pass *Pass, body *ast.BlockStmt) {
	// Cheap pre-scan: most functions never write a monitor kind.
	touches := false
	inspectScope(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if _, isKind := shedRank[id.Name]; isKind {
				touches = true
			}
			switch id.Name {
			case "shedOff", "quarantine", "disabled":
				touches = true
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	reported := make(map[string]bool)
	g := BuildCFG(body)
	g.Forward(Flow{
		Boundary: shedFact{},
		Transfer: func(b *Block, in Fact) Fact {
			cur := asShedFact(in)
			copied := false
			reset := func(desc string) {
				if _, ok := cur[desc]; !ok {
					return
				}
				if !copied {
					next := make(shedFact, len(cur))
					for k, v := range cur {
						next[k] = v
					}
					cur, copied = next, true
				}
				delete(cur, desc)
			}
			set := func(desc string, rank int, n ast.Node) {
				if old, ok := cur[desc]; ok && rank < old {
					key := pass.Fset.Position(n.Pos()).String() + desc
					if !reported[key] {
						reported[key] = true
						pass.Reportf(n.Pos(),
							"monitor %s moves back up the shed lattice (%s after %s); degradation is one-way exact→DPSample→linear→off",
							desc, shedRankName[rank], shedRankName[old])
					}
				}
				if !copied {
					next := make(shedFact, len(cur)+1)
					for k, v := range cur {
						next[k] = v
					}
					cur, copied = next, true
				}
				cur[desc] = rank
			}
			for _, n := range b.Nodes {
				shedWrites(pass, n, set, reset)
			}
			return cur
		},
		Join: func(a, b Fact) Fact {
			av, bv := asShedFact(a), asShedFact(b)
			if av == nil {
				return bv
			}
			if bv == nil {
				return av
			}
			// May-analysis: keep the highest rank seen on any path, so a
			// later lower write is flagged even if only one arm degraded.
			out := make(shedFact, len(av))
			for k, v := range av {
				out[k] = v
			}
			for k, v := range bv {
				if v > out[k] {
					out[k] = v
				} else if _, ok := out[k]; !ok {
					out[k] = v
				}
			}
			return out
		},
		Equal: func(a, b Fact) bool {
			return shedFactSig(asShedFact(a)) == shedFactSig(asShedFact(b))
		},
	})
}

// shedWrites finds monitor-kind writes inside one CFG node and feeds them to
// set(desc, rank, node). A `:=` define of a monitor variable calls
// reset(desc) first: it binds a NEW monitor instance, so comparing its rank
// against the previous binding (e.g. across a loop back edge) would
// misreport a fresh monitor as a lattice move.
func shedWrites(pass *Pass, n ast.Node, set func(desc string, rank int, n ast.Node), reset func(desc string)) {
	InspectNode(n, func(nd ast.Node) bool {
		switch w := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// Loop-head marker: `for _, m := range mons` binds a DIFFERENT
			// monitor each iteration, so the binding resets like a define.
			if w.Tok == token.DEFINE {
				for _, e := range []ast.Expr{w.Key, w.Value} {
					if id, ok := e.(*ast.Ident); ok {
						obj := pass.Info.Defs[id]
						if obj != nil && typeNameContains(obj.Type(), "monitor") {
							reset(id.Name)
						}
					}
				}
			}
			return false
		case *ast.AssignStmt:
			if w.Tok == token.DEFINE {
				for _, l := range w.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj != nil && typeNameContains(obj.Type(), "monitor") {
						reset(id.Name)
					}
				}
			}
			for i, l := range w.Lhs {
				if i >= len(w.Rhs) {
					break
				}
				sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
				if !ok || !isMonitorExpr(pass, sel.X) {
					continue
				}
				switch sel.Sel.Name {
				case "kind":
					if id, ok := ast.Unparen(w.Rhs[i]).(*ast.Ident); ok {
						if rank, isKind := shedRank[id.Name]; isKind {
							set(exprString(pass.Fset, sel.X), rank, w)
						}
					}
				case "disabled":
					if id, ok := ast.Unparen(w.Rhs[i]).(*ast.Ident); ok && id.Name == "true" {
						set(exprString(pass.Fset, sel.X), shedRankOff, w)
					}
				}
				// Composite literal initialization: m := &scanMonitor{kind: monX}.
				_ = i
			}
			for i, r := range w.Rhs {
				if i >= len(w.Lhs) {
					break
				}
				rank, hasKind, isMon := compositeKind(pass, r)
				if !isMon {
					continue
				}
				// A composite literal is a NEW monitor instance: whatever
				// rank the variable's previous monitor held is irrelevant.
				reset(exprString(pass.Fset, w.Lhs[i]))
				if hasKind {
					set(exprString(pass.Fset, w.Lhs[i]), rank, w)
				}
			}
		case *ast.CallExpr:
			sel, ok := w.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if (sel.Sel.Name == "shedOff" || sel.Sel.Name == "quarantine") && isMonitorExpr(pass, sel.X) {
				set(exprString(pass.Fset, sel.X), shedRankOff, w)
			}
		}
		return true
	})
}

// compositeKind inspects a (&)scanMonitor{...} composite literal: isMon
// reports a monitor literal, hasKind that it initializes the kind field with
// a known constant, rank that constant's lattice position.
func compositeKind(pass *Pass, e ast.Expr) (rank int, hasKind, isMon bool) {
	x := ast.Unparen(e)
	if u, ok := x.(*ast.UnaryExpr); ok {
		x = u.X
	}
	cl, ok := x.(*ast.CompositeLit)
	if !ok {
		return 0, false, false
	}
	tv, ok := pass.Info.Types[cl]
	if !ok || !typeNameContains(tv.Type, "monitor") {
		return 0, false, false
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "kind" {
			continue
		}
		if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok {
			if r, isKind := shedRank[id.Name]; isKind {
				return r, true, true
			}
		}
	}
	return 0, false, true
}

// isMonitorExpr reports whether e's type names a monitor (scanMonitor,
// probe-side monitors, fixture stand-ins).
func isMonitorExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	return typeNameContains(tv.Type, "monitor")
}
