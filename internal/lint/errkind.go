package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// ErrKindAnalyzer enforces the typed-error contract at the engine boundary
// (the package containing engine.go/facade.go and the QueryError type):
//
//   - An error produced by a call into internal/exec or internal/storage
//     must not be returned from an exported function in
//     engine.go/facade.go/admission.go without passing through
//     classifyQueryError (which wraps it in a *QueryError of the right
//     kind). Callers pattern-match on the kind; a naked storage error would
//     silently skip their handling.
//   - Every QueryError composite literal must set Kind to one of the
//     ErrKind* constants — an empty or ad-hoc kind defeats classification.
//   - The boundary package must not panic: panics belong below the recover
//     boundaries (recoverQueryPanic / the operator guards), never above.
var ErrKindAnalyzer = &Analyzer{
	Name: "errkind",
	Doc:  "check that errors crossing the engine boundary are *QueryError values with a valid kind",
	Run:  runErrKind,
}

// errSourcePkgs are the internal packages whose raw errors must never cross
// the boundary unclassified (matched by final import-path segment so the
// analysistest fixtures can model them with stub packages).
var errSourcePkgs = map[string]bool{"exec": true, "storage": true}

func runErrKind(pass *Pass) error {
	// The boundary package is recognized structurally: it declares a type
	// named QueryError and contains a file named engine.go or facade.go.
	if pass.Pkg.Scope().Lookup("QueryError") == nil {
		return nil
	}
	boundaryFiles := make(map[*ast.File]bool)
	anyBoundary := false
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if base == "engine.go" || base == "facade.go" || base == "admission.go" {
			boundaryFiles[f] = true
			anyBoundary = true
		}
	}
	if !anyBoundary {
		return nil
	}

	for _, f := range pass.Files {
		// Panic and composite-literal rules apply to the whole boundary
		// package; the return rule only to the boundary files' exported
		// functions.
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						pass.Reportf(e.Pos(),
							"panic in the engine boundary package: raise below the recover boundaries or return a *QueryError")
					}
				}
			case *ast.CompositeLit:
				checkQueryErrorLit(pass, e)
			}
			return true
		})
		if !boundaryFiles[f] {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkBoundaryReturns(pass, fd)
		}
	}
	return nil
}

// checkQueryErrorLit verifies a QueryError literal sets Kind: ErrKind*.
func checkQueryErrorLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !typeNameIs(tv.Type, "QueryError") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		name := ""
		switch v := ast.Unparen(kv.Value).(type) {
		case *ast.Ident:
			name = v.Name
		case *ast.SelectorExpr:
			name = v.Sel.Name
		}
		if !strings.HasPrefix(name, "ErrKind") {
			pass.Reportf(kv.Value.Pos(),
				"QueryError.Kind must be one of the ErrKind* constants, not %s", exprString(pass.Fset, kv.Value))
		}
		return
	}
	pass.Reportf(lit.Pos(), "QueryError constructed without a Kind: set one of the ErrKind* constants")
}

// checkBoundaryReturns flags returns of raw exec/storage errors from an
// exported boundary function. The walk is in source order with a simple
// taint map: an error variable becomes tainted when assigned the error
// result of a call into exec/storage, and clean when reassigned from any
// other source or passed through classifyQueryError.
func checkBoundaryReturns(pass *Pass, fd *ast.FuncDecl) {
	taint := make(map[types.Object]string) // err var -> source package
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			src := ""
			if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
				src = errSourcePkg(pass.Info, call)
			}
			last := st.Lhs[len(st.Lhs)-1]
			id, ok := last.(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil || !isErrorType(obj.Type()) {
				return true
			}
			if src != "" {
				taint[obj] = src
			} else {
				delete(taint, obj)
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				id, ok := ast.Unparen(res).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					continue
				}
				if src, ok := taint[obj]; ok {
					pass.Reportf(res.Pos(),
						"error from internal/%s returned across the engine boundary without classifyQueryError", src)
				}
			}
		}
		return true
	})
}

// errSourcePkg returns the matching source package name ("exec", "storage")
// when call's callee is defined in one, or "" — unless the call is
// classifyQueryError itself or another boundary-package classifier.
func errSourcePkg(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if errSourcePkgs[pkgLastSegment(fn.Pkg().Path())] {
		return pkgLastSegment(fn.Pkg().Path())
	}
	return ""
}
