package lint

import (
	"encoding/json"
	"go/token"
	"testing"
)

// TestToSARIF round-trips a small diagnostic set through the emitter and
// checks the fields CI consumes: version, rule table, ruleId, message text,
// and root-relative location paths.
func TestToSARIF(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "/repo/internal/exec/build.go", Line: 42, Column: 7},
			Message:  "map field table grows without charging",
			Analyzer: "membudget",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 3, Column: 1},
			Message:  "goroutine is never joined",
			Analyzer: "goroutinejoin",
		},
	}
	b, err := ToSARIF(diags, All(), "/repo")
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(b, &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dbvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the synthetic deadignore rule, each with a
	// non-empty description.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["deadignore"] {
		t.Error("rule table missing deadignore")
	}

	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "membudget" || first.Level != "error" {
		t.Errorf("first result = %s/%s", first.RuleID, first.Level)
	}
	if first.Message.Text != diags[0].Message {
		t.Errorf("message = %q", first.Message.Text)
	}
	if !ruleIDs[first.RuleID] {
		t.Errorf("result ruleId %q not in rule table", first.RuleID)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/exec/build.go" {
		t.Errorf("uri = %q, want repo-relative path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %d:%d", loc.Region.StartLine, loc.Region.StartColumn)
	}
	// A file outside the root keeps its absolute path rather than escaping
	// upward with ../ segments.
	second := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if second != "/elsewhere/outside.go" {
		t.Errorf("outside-root uri = %q, want absolute path", second)
	}
}

// TestToSARIFEmpty: a clean run still emits a valid log with the full rule
// table and an empty (not null) results array.
func TestToSARIFEmpty(t *testing.T) {
	b, err := ToSARIF(nil, All(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(b, &log); err != nil {
		t.Fatal(err)
	}
	runs := log["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"].([]any)
	if !ok {
		t.Fatal("results must be an array, not null")
	}
	if len(results) != 0 {
		t.Fatalf("results = %d, want 0", len(results))
	}
}
