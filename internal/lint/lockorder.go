package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer enforces the shard-locking protocol of the sharded
// buffer pool: a goroutine may hold at most one shard mutex, except for the
// sanctioned whole-pool sweep that locks every shard in ascending index
// order (a `for range` over the shard slice). Concretely, taking a shard
// lock while another is held is reported unless the analyzer can prove
// ascending order:
//
//   - both locks use constant indices i < j into the same shard slice, or
//   - both are taken by the same `for range` sweep over the shard slice
//     (range iteration is ascending by construction).
//
// A "shard mutex" is any sync.Mutex/RWMutex field reached through a value
// whose named type contains "shard" (poolShard today; future shard types
// are covered by construction).
//
// The held-lock sets flow over the CFG (cfg.go) as a forward dataflow
// problem, so branch arms are independent and loop accumulation is detected
// at back edges; within a statement the scan stays syntactic, including
// inlining immediately-invoked closures (which inherit the caller's held
// set) and analyzing goroutine bodies on a fresh stack.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "check that buffer-pool shard mutexes are acquired in ascending shard-index order",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	// Function literals reached at their call site — immediately invoked
	// closures (which inherit the caller's held locks) and goroutine bodies
	// (which get a fresh stack) — are analyzed there and skipped in the
	// funcBodies sweep below, which still catches the rest: assigned
	// closures, callbacks, and deferred literals, each on a fresh stack.
	la := &lockAnalysis{
		pass:     pass,
		consumed: make(map[*ast.FuncLit]bool),
		reported: make(map[string]bool),
	}
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			if fb.lit != nil && la.consumed[fb.lit] {
				continue
			}
			la.analyzeScope(fb.body)
		}
	}
	return nil
}

// lockToken is one held shard lock.
type lockToken struct {
	desc     string         // source text of the shard expression
	constIdx int64          // constant index into a shard slice, or -1
	sweep    *ast.RangeStmt // the range sweep this lock belongs to, if any
	accum    bool           // stands for "every shard", locked by a sweep
	pos      token.Pos
}

// key identifies a token for dataflow joins and re-acquisition dedup.
func (t lockToken) key() string {
	sw := token.NoPos
	if t.sweep != nil {
		sw = t.sweep.Pos()
	}
	return fmt.Sprintf("%s|%d|%v|%d|%d", t.desc, t.constIdx, t.accum, sw, t.pos)
}

// lockFact is the dataflow fact: the set of held tokens, in acquisition
// order. Facts are treated as immutable by the solver callbacks.
type lockFact []lockToken

func asLockFact(f Fact) lockFact {
	if f == nil {
		return nil
	}
	return f.(lockFact)
}

func lockFactSig(f lockFact) string {
	keys := make([]string, len(f))
	for i, t := range f {
		keys[i] = t.key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "&")
}

// lockAnalysis carries the per-Run state: consumed literals, report dedup
// (the fixpoint may revisit an acquisition), and the current scope's range
// statements for position-based sweep detection.
type lockAnalysis struct {
	pass     *Pass
	consumed map[*ast.FuncLit]bool
	reported map[string]bool
	sweeps   []*ast.RangeStmt
}

func (la *lockAnalysis) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	k := fmt.Sprintf("%d|%s", pos, msg)
	if la.reported[k] {
		return
	}
	la.reported[k] = true
	la.pass.Reportf(pos, "%s", msg)
}

// analyzeScope runs the held-lock dataflow over one function body.
func (la *lockAnalysis) analyzeScope(body *ast.BlockStmt) {
	outer := la.sweeps
	la.sweeps = nil
	ast.Inspect(body, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok {
			la.sweeps = append(la.sweeps, rng)
		}
		return true
	})
	g := BuildCFG(body)
	g.Forward(Flow{
		Boundary:     lockFact{},
		Transfer:     la.transfer,
		EdgeTransfer: la.edgeTransfer,
		Join:         la.join,
		Equal:        la.equal,
	})
	la.sweeps = outer
}

func (la *lockAnalysis) transfer(b *Block, in Fact) Fact {
	w := &lockWalker{la: la, held: append([]lockToken(nil), asLockFact(in)...)}
	for _, n := range b.Nodes {
		w.node(n)
	}
	return lockFact(w.held)
}

// edgeTransfer applies the loop-accumulation rule when an edge re-enters a
// loop head or leaves a loop.
func (la *lockAnalysis) edgeTransfer(e *Edge, f Fact) Fact {
	held := asLockFact(f)
	if e.BackLoop != nil {
		held = la.leaveIteration(held, e.BackLoop, true)
	}
	for _, l := range e.ExitLoops {
		held = la.leaveIteration(held, l, false)
	}
	return held
}

// leaveIteration handles tokens acquired inside loop l when control leaves
// an iteration (backEdge) or the loop itself: only the ascending sweep — a
// `for range` over a shard slice — may carry locks across iterations, and
// its surviving tokens collapse into one "all shards" token at loop exit.
// Everything else accumulating across iterations is reported and dropped.
func (la *lockAnalysis) leaveIteration(held lockFact, l ast.Stmt, backEdge bool) lockFact {
	rng, _ := l.(*ast.RangeStmt)
	sanctioned := rng != nil && la.isShardSliceExpr(rng.X)
	if sanctioned && backEdge {
		// Sweep tokens legitimately persist from iteration to iteration;
		// they collapse when the sweep exits.
		return held
	}
	var out lockFact
	changed := false
	collapsed := false
	for _, t := range held {
		if t.pos < l.Pos() || t.pos > l.End() {
			out = append(out, t)
			continue
		}
		changed = true
		if sanctioned {
			if !collapsed {
				collapsed = true
				out = append(out, lockToken{
					desc:     "all shards (ascending sweep over " + exprString(la.pass.Fset, rng.X) + ")",
					constIdx: -1,
					accum:    true,
					pos:      l.Pos(),
				})
			}
			continue
		}
		la.reportf(t.pos,
			"shard lock %s accumulates across loop iterations outside an ascending `for range` sweep over the shard slice", t.desc)
	}
	if !changed {
		return held
	}
	return out
}

func (la *lockAnalysis) join(a, b Fact) Fact {
	av, bv := asLockFact(a), asLockFact(b)
	seen := make(map[string]bool, len(av))
	out := append(lockFact{}, av...)
	for _, t := range av {
		seen[t.key()] = true
	}
	for _, t := range bv {
		if !seen[t.key()] {
			seen[t.key()] = true
			out = append(out, t)
		}
	}
	return out
}

func (la *lockAnalysis) equal(a, b Fact) bool {
	return lockFactSig(asLockFact(a)) == lockFactSig(asLockFact(b))
}

// isShardSliceExpr reports whether e has type []T with T a shard type.
func (la *lockAnalysis) isShardSliceExpr(e ast.Expr) bool {
	tv, ok := la.pass.Info.Types[e]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return typeNameContains(sl.Elem(), "shard")
}

// lockWalker applies one block's nodes (or an inlined closure body) to a
// held-lock set. The intra-statement scan is syntactic and optimistic: an
// Unlock anywhere releases the matching token. The point is to prove the
// sanctioned patterns and flag everything that cannot be proven, not to be
// a full may-hold analysis.
type lockWalker struct {
	la   *lockAnalysis
	held []lockToken
}

// node processes one CFG leaf node.
func (w *lockWalker) node(n ast.Node) {
	switch nd := n.(type) {
	case *ast.ExprStmt:
		w.visitExpr(nd.X)
	case *ast.AssignStmt:
		for _, r := range nd.Rhs {
			w.visitExpr(r)
		}
	case *ast.ReturnStmt:
		for _, r := range nd.Results {
			w.visitExpr(r)
		}
	case *ast.DeferStmt:
		// Deferred unlocks release at function end; for ordering purposes
		// the lock is simply held for the rest of the walk, which is the
		// conservative and correct view. Unlocks inside a deferred closure
		// do not run here either.
	case *ast.GoStmt:
		w.goStmt(nd)
	case *ast.RangeStmt:
		// Iteration marker; the range expression was its own node.
	case ast.Expr:
		w.visitExpr(nd)
	}
}

func (w *lockWalker) goStmt(st *ast.GoStmt) {
	// The call's arguments are evaluated here, in the spawning goroutine,
	// while the current locks are held; the body runs on its own lock
	// stack, so it is analyzed as a fresh scope — holding shard i while a
	// spawned worker takes shard j is not an ordering violation, but a
	// misordered pair inside the body still is.
	for _, arg := range st.Call.Args {
		w.visitExpr(arg)
	}
	if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
		if !w.la.consumed[fl] {
			w.la.consumed[fl] = true
			w.la.analyzeScope(fl.Body)
		}
	}
}

// walkStmts/walkStmt handle statements of closures inlined into the current
// position (immediately invoked literals), which are not part of the
// enclosing CFG; the walk is the pre-CFG sequential approximation.
func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(st.List)
	case *ast.ExprStmt:
		w.visitExpr(st.X)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.visitExpr(r)
		}
	case *ast.DeferStmt:
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.visitExpr(st.Cond)
		w.walkStmt(st.Body)
		if st.Else != nil {
			w.walkStmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		before := len(w.held)
		w.walkStmts(st.Body.List)
		w.endLoop(before, nil)
	case *ast.RangeStmt:
		before := len(w.held)
		w.walkStmts(st.Body.List)
		w.endLoop(before, st)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Body)
	case *ast.SelectStmt:
		w.walkStmt(st.Body)
	case *ast.CaseClause:
		w.walkStmts(st.Body)
	case *ast.CommClause:
		w.walkStmts(st.Body)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.visitExpr(r)
		}
	case *ast.GoStmt:
		w.goStmt(st)
	}
}

// endLoop mirrors leaveIteration for inlined-closure loops: locks surviving
// a loop body accumulate across iterations; only the ascending shard sweep
// is sanctioned, collapsing into one "all shards" token.
func (w *lockWalker) endLoop(before int, rng *ast.RangeStmt) {
	if len(w.held) <= before {
		return
	}
	acquired := w.held[before:]
	if rng != nil && w.la.isShardSliceExpr(rng.X) {
		w.held = append(w.held[:before], lockToken{
			desc:     "all shards (ascending sweep over " + exprString(w.la.pass.Fset, rng.X) + ")",
			constIdx: -1,
			accum:    true,
			pos:      rng.Pos(),
		})
		return
	}
	for _, t := range acquired {
		w.la.reportf(t.pos,
			"shard lock %s accumulates across loop iterations outside an ascending `for range` sweep over the shard slice", t.desc)
	}
	w.held = w.held[:before]
}

// visitExpr looks for shard Lock/Unlock calls inside an expression. An
// immediately invoked closure executes inline, so its body is walked with
// the current held set; other function literals run elsewhere and are
// analyzed on their own stack by the funcBodies sweep.
func (w *lockWalker) visitExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fl, ok := call.Fun.(*ast.FuncLit); ok {
			w.la.consumed[fl] = true
			w.walkStmts(fl.Body.List)
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		isLock := name == "Lock" || name == "RLock"
		isUnlock := name == "Unlock" || name == "RUnlock"
		if !isLock && !isUnlock {
			return true
		}
		shard, ok := w.shardExprOfMutex(sel.X)
		if !ok {
			return true
		}
		if isLock {
			w.acquire(shard, call.Pos())
		} else {
			w.release(shard)
		}
		return true
	})
}

// shardExprOfMutex unwraps `<shard>.mu` (any mutex-typed field on a value
// whose named type contains "shard") and returns the shard expression.
func (w *lockWalker) shardExprOfMutex(mutexExpr ast.Expr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(mutexExpr).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	tv, ok := w.la.pass.Info.Types[sel.X]
	if !ok {
		return nil, false
	}
	if !typeNameContains(tv.Type, "shard") {
		return nil, false
	}
	return sel.X, true
}

func (w *lockWalker) token(shard ast.Expr, pos token.Pos) lockToken {
	t := lockToken{desc: exprString(w.la.pass.Fset, shard), constIdx: -1, pos: pos}
	if idx, ok := ast.Unparen(shard).(*ast.IndexExpr); ok {
		if tv, ok := w.la.pass.Info.Types[idx.Index]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				t.constIdx = v
			}
		}
	}
	if id, ok := ast.Unparen(shard).(*ast.Ident); ok {
		// The innermost enclosing shard-slice sweep whose iteration
		// variable this is; position containment replaces the old walker's
		// loop stack.
		var best *ast.RangeStmt
		for _, rng := range w.la.sweeps {
			if pos < rng.Pos() || pos > rng.End() {
				continue
			}
			if !rangeDefines(rng, id.Name) || !w.la.isShardSliceExpr(rng.X) {
				continue
			}
			if best == nil || rng.Pos() > best.Pos() {
				best = rng
			}
		}
		t.sweep = best
	}
	return t
}

// rangeDefines reports whether the range statement's key or value variable
// has the given name.
func rangeDefines(rng *ast.RangeStmt, name string) bool {
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

func (w *lockWalker) acquire(shard ast.Expr, pos token.Pos) {
	nt := w.token(shard, pos)
	for _, h := range w.held {
		switch {
		case h.accum:
			w.la.reportf(pos,
				"shard lock %s acquired while the whole-pool sweep already holds every shard", nt.desc)
		case h.sweep != nil && nt.sweep == h.sweep:
			// Two locks from the same ascending sweep iteration variable:
			// ordered by construction.
		case h.constIdx >= 0 && nt.constIdx >= 0 && sameIndexBase(h.desc, nt.desc):
			if nt.constIdx <= h.constIdx {
				w.la.reportf(pos,
					"shard locks acquired out of ascending order: %s after %s", nt.desc, h.desc)
			}
		default:
			w.la.reportf(pos,
				"shard lock %s acquired while holding %s: cannot prove ascending shard order", nt.desc, h.desc)
		}
	}
	for _, h := range w.held {
		if h.key() == nt.key() {
			return // re-acquisition at the same site (sweep fixpoint round)
		}
	}
	w.held = append(w.held, nt)
}

func (w *lockWalker) release(shard ast.Expr) {
	desc := exprString(w.la.pass.Fset, shard)
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].desc == desc || w.held[i].accum {
			w.held = append(w.held[:i:i], w.held[i+1:]...)
			return
		}
	}
}

// sameIndexBase reports whether two "base[i]" descriptions index the same
// base expression.
func sameIndexBase(a, b string) bool {
	ia, ib := strings.IndexByte(a, '['), strings.IndexByte(b, '[')
	return ia > 0 && ib > 0 && a[:ia] == b[:ib]
}
