package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// LockOrderAnalyzer enforces the shard-locking protocol of the sharded
// buffer pool: a goroutine may hold at most one shard mutex, except for the
// sanctioned whole-pool sweep that locks every shard in ascending index
// order (a `for range` over the shard slice). Concretely, taking a shard
// lock while another is held is reported unless the analyzer can prove
// ascending order:
//
//   - both locks use constant indices i < j into the same shard slice, or
//   - both are taken by the same `for range` sweep over the shard slice
//     (range iteration is ascending by construction).
//
// A "shard mutex" is any sync.Mutex/RWMutex field reached through a value
// whose named type contains "shard" (poolShard today; future shard types
// are covered by construction).
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "check that buffer-pool shard mutexes are acquired in ascending shard-index order",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	// Function literals the walk reaches at their call site — immediately
	// invoked closures (which inherit the caller's held locks) and goroutine
	// bodies (which get a fresh stack) — are analyzed there and skipped in
	// the funcBodies sweep below, which still catches the rest: assigned
	// closures, callbacks, and deferred literals, each on a fresh stack.
	consumed := make(map[*ast.FuncLit]bool)
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			if fb.lit != nil && consumed[fb.lit] {
				continue
			}
			lo := &lockWalker{pass: pass, consumed: consumed}
			lo.walkStmts(fb.body.List)
		}
	}
	return nil
}

// lockToken is one held shard lock.
type lockToken struct {
	desc     string         // source text of the shard expression
	constIdx int64          // constant index into a shard slice, or -1
	sweep    *ast.RangeStmt // the range sweep this lock belongs to, if any
	accum    bool           // stands for "every shard", locked by a sweep
	pos      token.Pos
}

// lockWalker tracks held shard locks through one function body. The walk is
// syntactic and optimistic: branches are applied in source order, and an
// Unlock anywhere releases the matching token. The point is to prove the
// sanctioned patterns and flag everything that cannot be proven, not to be
// a full may-hold analysis.
type lockWalker struct {
	pass     *Pass
	held     []lockToken
	loops    []*ast.RangeStmt      // enclosing range statements, innermost last
	consumed map[*ast.FuncLit]bool // literals analyzed at their call site
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(st.List)
	case *ast.ExprStmt:
		w.visitExpr(st.X)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.visitExpr(r)
		}
	case *ast.DeferStmt:
		// Deferred unlocks release at function end; for ordering purposes
		// the lock is simply held for the rest of the walk, which is the
		// conservative and correct view.
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			// Unlocks inside a deferred closure do not run here.
			_ = fl
			return
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.visitExpr(st.Cond)
		w.walkStmt(st.Body)
		if st.Else != nil {
			w.walkStmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		before := len(w.held)
		w.walkStmts(st.Body.List)
		w.endLoop(before, nil, st.Pos())
	case *ast.RangeStmt:
		w.loops = append(w.loops, st)
		before := len(w.held)
		w.walkStmts(st.Body.List)
		w.loops = w.loops[:len(w.loops)-1]
		w.endLoop(before, st, st.Pos())
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Body)
	case *ast.SelectStmt:
		w.walkStmt(st.Body)
	case *ast.CaseClause:
		w.walkStmts(st.Body)
	case *ast.CommClause:
		w.walkStmts(st.Body)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.visitExpr(r)
		}
	case *ast.GoStmt:
		// The call's arguments are evaluated here, in the spawning
		// goroutine, while the current locks are held; the body runs on its
		// own lock stack, so it is walked with a fresh walker — holding
		// shard i while a spawned worker takes shard j is not an ordering
		// violation, but a misordered pair inside the body still is.
		for _, arg := range st.Call.Args {
			w.visitExpr(arg)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.consumed[fl] = true
			gw := &lockWalker{pass: w.pass, consumed: w.consumed}
			gw.walkStmts(fl.Body.List)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// endLoop handles locks that survived a loop body: they accumulate across
// iterations. Only the ascending sweep — a `for range` over a shard slice —
// is sanctioned; the surviving tokens collapse into one "all shards" token.
func (w *lockWalker) endLoop(before int, rng *ast.RangeStmt, pos token.Pos) {
	if len(w.held) <= before {
		return
	}
	acquired := w.held[before:]
	if rng != nil && w.isShardSliceExpr(rng.X) {
		w.held = append(w.held[:before], lockToken{
			desc:     "all shards (ascending sweep over " + exprString(w.pass.Fset, rng.X) + ")",
			constIdx: -1,
			accum:    true,
			pos:      pos,
		})
		return
	}
	for _, t := range acquired {
		w.pass.Reportf(t.pos,
			"shard lock %s accumulates across loop iterations outside an ascending `for range` sweep over the shard slice", t.desc)
	}
	w.held = w.held[:before]
}

// visitExpr looks for shard Lock/Unlock calls inside an expression. An
// immediately invoked closure executes inline, so its body is walked with the
// current held set; other function literals run elsewhere and are analyzed on
// their own stack by the funcBodies sweep.
func (w *lockWalker) visitExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fl, ok := call.Fun.(*ast.FuncLit); ok {
			w.consumed[fl] = true
			w.walkStmts(fl.Body.List)
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		isLock := name == "Lock" || name == "RLock"
		isUnlock := name == "Unlock" || name == "RUnlock"
		if !isLock && !isUnlock {
			return true
		}
		shard, ok := w.shardExprOfMutex(sel.X)
		if !ok {
			return true
		}
		if isLock {
			w.acquire(shard, call.Pos())
		} else {
			w.release(shard)
		}
		return true
	})
}

// shardExprOfMutex unwraps `<shard>.mu` (any mutex-typed field on a value
// whose named type contains "shard") and returns the shard expression.
func (w *lockWalker) shardExprOfMutex(mutexExpr ast.Expr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(mutexExpr).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	tv, ok := w.pass.Info.Types[sel.X]
	if !ok {
		return nil, false
	}
	if !typeNameContains(tv.Type, "shard") {
		return nil, false
	}
	return sel.X, true
}

// isShardSliceExpr reports whether e has type []T with T a shard type.
func (w *lockWalker) isShardSliceExpr(e ast.Expr) bool {
	tv, ok := w.pass.Info.Types[e]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return typeNameContains(sl.Elem(), "shard")
}

func (w *lockWalker) token(shard ast.Expr, pos token.Pos) lockToken {
	t := lockToken{desc: exprString(w.pass.Fset, shard), constIdx: -1, pos: pos}
	if idx, ok := ast.Unparen(shard).(*ast.IndexExpr); ok {
		if tv, ok := w.pass.Info.Types[idx.Index]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				t.constIdx = v
			}
		}
	}
	if id, ok := ast.Unparen(shard).(*ast.Ident); ok {
		for i := len(w.loops) - 1; i >= 0; i-- {
			rng := w.loops[i]
			if rangeDefines(rng, id.Name) && w.isShardSliceExpr(rng.X) {
				t.sweep = rng
				break
			}
		}
	}
	return t
}

// rangeDefines reports whether the range statement's key or value variable
// has the given name.
func rangeDefines(rng *ast.RangeStmt, name string) bool {
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

func (w *lockWalker) acquire(shard ast.Expr, pos token.Pos) {
	nt := w.token(shard, pos)
	for _, h := range w.held {
		switch {
		case h.accum:
			w.pass.Reportf(pos,
				"shard lock %s acquired while the whole-pool sweep already holds every shard", nt.desc)
		case h.sweep != nil && nt.sweep == h.sweep:
			// Two locks from the same ascending sweep iteration variable:
			// ordered by construction.
		case h.constIdx >= 0 && nt.constIdx >= 0 && sameIndexBase(h.desc, nt.desc):
			if nt.constIdx <= h.constIdx {
				w.pass.Reportf(pos,
					"shard locks acquired out of ascending order: %s after %s", nt.desc, h.desc)
			}
		default:
			w.pass.Reportf(pos,
				"shard lock %s acquired while holding %s: cannot prove ascending shard order", nt.desc, h.desc)
		}
	}
	w.held = append(w.held, nt)
}

func (w *lockWalker) release(shard ast.Expr) {
	desc := exprString(w.pass.Fset, shard)
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].desc == desc || w.held[i].accum {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// sameIndexBase reports whether two "base[i]" descriptions index the same
// base expression.
func sameIndexBase(a, b string) bool {
	ia, ib := strings.IndexByte(a, '['), strings.IndexByte(b, '[')
	return ia > 0 && ib > 0 && a[:ia] == b[:ib]
}
