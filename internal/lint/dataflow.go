package lint

// Worklist dataflow solvers over the CFG (cfg.go). Analyzers describe a
// problem as a Flow — transfer function, optional per-edge refinement, join,
// and equality — and get per-block fixpoint facts back. Forward solves
// entry→exit (pinleak's held-pin paths, lockorder's held-lock sets,
// goroutinejoin's Add-before-go, membudget's charged-before-growth);
// Backward solves exit→entry over reversed blocks (liveness-style problems).
//
// Facts are opaque to the solver. A Flow's functions must treat incoming
// facts as immutable and return fresh values when they change something:
// the solver caches facts per block and compares with Equal to detect the
// fixpoint, so in-place mutation would corrupt the cache.

// Fact is an analyzer-defined dataflow fact. nil is the "unreached" fact:
// Join(nil, x) must return x and Transfer is never called with nil input
// except at the boundary block, which receives Flow.Boundary.
type Fact = any

// Flow describes one dataflow problem.
type Flow struct {
	// Transfer computes the fact after executing block b given the fact
	// before it. For backward problems, "before"/"after" are in reverse
	// execution order and b.Nodes should be processed last-to-first.
	Transfer func(b *Block, in Fact) Fact
	// EdgeTransfer, when non-nil, refines a fact crossing edge e (branch
	// conditions, loop back edges). It runs on the source block's out-fact
	// for forward problems and on the target block's in-fact for backward
	// ones. It must not mutate its input.
	EdgeTransfer func(e *Edge, f Fact) Fact
	// Join merges facts arriving over multiple edges. Either argument may
	// be nil (unreached); Join(nil, x) = x.
	Join func(a, b Fact) Fact
	// Equal bounds the fixpoint iteration.
	Equal func(a, b Fact) bool
	// Boundary is the fact at the boundary block: Entry for Forward,
	// Exit for Backward.
	Boundary Fact
}

// maxFlowIterations caps worklist processing as a defense against a Flow
// whose facts never stabilize; 64 passes over every block is far beyond any
// real lattice height in this codebase.
const maxFlowIterations = 64

// Forward solves a forward dataflow problem and returns the fact at the
// START of each live block (the join over incoming edges, before Transfer).
// Unreachable blocks are skipped and absent from the result.
func (g *CFG) Forward(f Flow) map[*Block]Fact {
	in := make(map[*Block]Fact)
	out := make(map[*Block]Fact)
	in[g.Entry] = f.Boundary

	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	steps := 0
	limit := maxFlowIterations * (len(g.Blocks) + 1)
	for len(work) > 0 {
		if steps++; steps > limit {
			break
		}
		b := work[0]
		work = work[1:]
		queued[b] = false

		o := f.Transfer(b, in[b])
		if prev, done := out[b]; done && f.Equal(prev, o) {
			continue
		}
		out[b] = o
		for _, e := range b.Succs {
			fo := o
			if f.EdgeTransfer != nil {
				fo = f.EdgeTransfer(e, fo)
			}
			merged := f.Join(in[e.To], fo)
			if _, seen := in[e.To]; seen && f.Equal(in[e.To], merged) {
				continue
			}
			in[e.To] = merged
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return in
}

// Backward solves a backward dataflow problem and returns the fact at the
// END of each live block (the join over outgoing edges, before the reverse
// Transfer). The Transfer function receives the block's end-fact and must
// walk b.Nodes in reverse.
func (g *CFG) Backward(f Flow) map[*Block]Fact {
	end := make(map[*Block]Fact)  // fact after the block, in execution order
	head := make(map[*Block]Fact) // fact before the block
	end[g.Exit] = f.Boundary

	work := []*Block{g.Exit}
	queued := map[*Block]bool{g.Exit: true}
	steps := 0
	limit := maxFlowIterations * (len(g.Blocks) + 1)
	for len(work) > 0 {
		if steps++; steps > limit {
			break
		}
		b := work[0]
		work = work[1:]
		queued[b] = false

		h := f.Transfer(b, end[b])
		if prev, done := head[b]; done && f.Equal(prev, h) {
			continue
		}
		head[b] = h
		for _, e := range b.Preds {
			fh := h
			if f.EdgeTransfer != nil {
				fh = f.EdgeTransfer(e, fh)
			}
			merged := f.Join(end[e.From], fh)
			if _, seen := end[e.From]; seen && f.Equal(end[e.From], merged) {
				continue
			}
			end[e.From] = merged
			if !queued[e.From] {
				queued[e.From] = true
				work = append(work, e.From)
			}
		}
	}
	return end
}
