package lint

import "testing"

func TestErrKind(t *testing.T) {
	runFixture(t, ErrKindAnalyzer, "errkind")
}
