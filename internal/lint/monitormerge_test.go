package lint

import "testing"

func TestMonitorMerge(t *testing.T) {
	runFixture(t, MonitorMergeAnalyzer, "monitormerge")
}
