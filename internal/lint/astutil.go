package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// exprString renders an expression compactly for diagnostics and for
// matching Lock/Unlock pairs by syntactic identity.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// namedType returns the named type under t, unwrapping pointers and aliases.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeNameIs reports whether t (possibly behind pointers) is a named type
// with the given name.
func typeNameIs(t types.Type, name string) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == name
}

// typeNameContains reports whether t's named-type name contains sub
// (case-insensitive), behind pointers.
func typeNameContains(t types.Type, sub string) bool {
	n := namedType(t)
	return n != nil && strings.Contains(strings.ToLower(n.Obj().Name()), strings.ToLower(sub))
}

// calleeFunc resolves the called function or method of a call expression.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// firstResult returns the type of a call's first result (the call's type
// itself for single-result calls).
func firstResult(info *types.Info, call *ast.CallExpr) types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return nil
		}
		return tup.At(0).Type()
	}
	return tv.Type
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == "Context" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

// pkgLastSegment returns the final path element of a package path.
func pkgLastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcBodies yields every function body in the file together with its
// declaration context: FuncDecls first, then every FuncLit (each analyzed as
// its own scope).
type funcBody struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcBody{decl: fd, body: fd.Body})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, funcBody{lit: fl, body: fl.Body})
		}
		return true
	})
	return out
}

// recvTypeName returns the name of a method's receiver type, or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.ParenExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver
			t = u.X
		case *ast.Ident:
			return u.Name
		default:
			return ""
		}
	}
}
