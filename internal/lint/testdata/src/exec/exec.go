// Package exec is a stub of the repository's internal/exec package: an
// error source whose raw errors must not cross the engine boundary. The
// errkind analyzer matches it by the final import-path segment.
package exec

import "errors"

// Plan is a stub executor.
type Plan struct{}

// Build compiles a plan.
func Build(q string) (*Plan, error) {
	if q == "" {
		return nil, errors.New("exec: empty query")
	}
	return &Plan{}, nil
}

// Run executes the plan.
func (p *Plan) Run() (int, error) {
	return 0, nil
}
