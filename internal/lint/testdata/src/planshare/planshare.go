// Package planshare exercises the planshare analyzer: it stands in for the
// engine, which shares cached plan templates across goroutines and must
// therefore instantiate fresh nodes with composite literals instead of
// mutating the cached tree.
package planshare

import "plan"

type engine struct {
	cached *plan.Scan
	hits   int
}

// instantiate builds a fresh node from the template: the sanctioned pattern.
func instantiate(e *engine) *plan.Scan {
	e.hits++ // non-plan field: fine
	return &plan.Scan{Table: e.cached.Table, N: e.cached.N}
}

// mutateCached writes the shared template in place: the bug this analyzer
// exists to catch.
func mutateCached(e *engine) {
	e.cached.N = 7 // want `write to plan node field Scan\.N`
}

// mutateVariants covers compound assignment and inc/dec forms.
func mutateVariants(s *plan.Scan, l *plan.Limit) {
	s.Table = "orders" // want `Scan\.Table .* must stay immutable`
	s.N += 2           // want `write to plan node field Scan\.N`
	l.N++              // want `write to plan node field Limit\.N`
	(l.Input) = nil    // want `write to plan node field Limit\.Input`
}

// readOnly never writes: fine.
func readOnly(s *plan.Scan) int {
	return s.N + len(s.Table)
}
