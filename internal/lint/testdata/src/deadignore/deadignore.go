// Package deadignore exercises unused-suppression reporting: a used
// directive stays silent, a directive suppressing nothing is reported, a
// typo'd analyzer name is reported, and a directive for an analyzer outside
// the run set is left alone.
package deadignore

func work() {}

func spawn() {
	// Used: it suppresses the two goroutinejoin findings on the go statement.
	//dbvet:ignore goroutinejoin
	go work()

	// Unused: there is no goroutinejoin finding here.
	//dbvet:ignore goroutinejoin
	work()

	// Typo: no analyzer has this name.
	//dbvet:ignore gorutinejoin
	work()

	// Not judgeable in a goroutinejoin-only run: pinleak did not execute.
	//dbvet:ignore pinleak
	work()
}
