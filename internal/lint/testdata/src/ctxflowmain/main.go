// Command ctxflowmain shows that package main (cmd/, examples) is exempt
// from the context-rooting rule: a process entry point is where a context
// tree legitimately begins.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx.Err()
}
