// Package detexport exercises the determinism-taint analyzer: functions
// reachable from the fixed determinism roots must not call time.Now, use
// math/rand, or range over a map with an order-sensitive body. The
// sanctioned collect-keys-then-sort pattern and nondeterminism outside the
// reachable set stay clean.
package detexport

import (
	"math/rand"
	"sort"
	"strings"
	"time"
)

// ExportFeedback is a determinism root: the feedback file must render
// byte-identically run after run.
func ExportFeedback(vals map[string]int) string {
	var b strings.Builder
	for k := range vals { // want `range over map vals with an order-sensitive body`
		b.WriteString(k)
	}
	b.WriteString(sortedSummary(vals))
	return b.String()
}

// sortedSummary is the sanctioned pattern: accumulate keys, sort, render.
func sortedSummary(vals map[string]int) string {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// planKey is a root: plan-cache keys must be stable across runs.
func planKey(q string) string {
	return q + stamp()
}

// stamp is only nondeterministic transitively; the report names the root.
func stamp() string {
	return time.Now().String() // want `call to time.Now in stamp is reachable from planKey`
}

// MarshalStats is a root: the statistics snapshot must be reproducible.
func MarshalStats(n int) int {
	return jitter(n)
}

func jitter(n int) int {
	return n + rand.Intn(8) // want `use of math/rand in jitter is reachable from MarshalStats`
}

// debugNow is nondeterministic but unreachable from every root: clean.
func debugNow() time.Time {
	return time.Now()
}
