// Package atomicfield exercises the atomicfield analyzer: once any code
// touches a struct field through a sync/atomic function, every other access
// to that field — in any package — must also be atomic.
package atomicfield

import "sync/atomic"

// Stats mixes atomically-managed counters with a plain field.
type Stats struct {
	Hits   int64
	misses int64
	name   string
}

// Hit is the sanctioning access: after this, Hits is atomic-only.
func (s *Stats) Hit() {
	atomic.AddInt64(&s.Hits, 1)
}

// Miss manages misses atomically too.
func (s *Stats) Miss() {
	atomic.AddInt64(&s.misses, 1)
}

// Misses reads atomically: fine.
func (s *Stats) Misses() int64 {
	return atomic.LoadInt64(&s.misses)
}

// Snapshot reads Hits plainly: races with Hit.
func (s *Stats) Snapshot() int64 {
	return s.Hits // want `field Hits is accessed with sync/atomic elsewhere`
}

// reset writes misses plainly: the write can be lost entirely.
func (s *Stats) reset() {
	s.misses = 0 // want `field misses is accessed with sync/atomic elsewhere`
}

// Name is a plain field with only plain accesses: fine.
func (s *Stats) Name() string {
	return s.name
}

// Rename keeps name plain too.
func (s *Stats) Rename(n string) {
	s.name = n
}
