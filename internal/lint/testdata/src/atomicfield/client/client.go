// Package client reads another package's atomic counter plainly — the
// cross-package race that forces atomicfield to analyze all packages in one
// global pass.
package client

import "atomicfield"

// PlainHits races with atomicfield.(*Stats).Hit.
func PlainHits(s *atomicfield.Stats) int64 {
	return s.Hits // want `field Hits is accessed with sync/atomic elsewhere`
}
