// Package goroutinejoin exercises the spawn-join analyzer: every go
// statement must be joined (WaitGroup Add/Done/Wait pairing or a result
// channel) and must receive a derived context.
package goroutinejoin

import (
	"context"
	"sync"
)

func use(ctx context.Context) {}

func compute(ctx context.Context) int { return 1 }

// doWork neither calls Done nor touches a channel.
func doWork(ctx context.Context) {}

// waitGroupOK is the sanctioned pairing: Add before the spawn on every
// path, Done inside, a context derived in the spawning scope.
func waitGroupOK(ctx context.Context) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		use(cctx)
	}()
	wg.Wait()
}

// workerPool mirrors the exchange operator: named worker joined through its
// summary (Done inside worker), plus the sanctioned join-only closer.
func workerPool(ctx context.Context, n int) {
	out := make(chan int)
	var wg sync.WaitGroup
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go worker(cctx, &wg, out)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	for range out {
	}
}

func worker(ctx context.Context, wg *sync.WaitGroup, out chan<- int) {
	defer wg.Done()
	select {
	case <-ctx.Done():
	case out <- 1:
	}
}

// channelJoin: the consumer's receive is the join.
func channelJoin(ctx context.Context) int {
	res := make(chan int)
	go func() {
		res <- compute(ctx)
	}()
	return <-res
}

// fireAndForget has no join protocol at all.
func fireAndForget(ctx context.Context) {
	go doWork(ctx) // want `goroutine is never joined`
}

// missingAdd pairs Done with an Add that only happens on one path, so no
// Add precedes the spawn on EVERY path.
func missingAdd(ctx context.Context, cond bool) {
	var wg sync.WaitGroup
	if cond {
		wg.Add(1)
	}
	go func() { // want `no matching Add precedes the go statement on every path`
		defer wg.Done()
		use(ctx)
	}()
	wg.Wait()
}

// addAfterSpawn orders the Add after the go statement: the spawned Done can
// race Wait past zero.
func addAfterSpawn(ctx context.Context) {
	var wg sync.WaitGroup
	go func() { // want `no matching Add precedes the go statement on every path`
		defer wg.Done()
		use(ctx)
	}()
	wg.Add(1)
	wg.Wait()
}

// rootContext spawns with a context made from scratch instead of deriving
// from the caller, so cancellation never reaches the goroutine.
func rootContext() {
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine receives context ctx that is not derived`
		defer wg.Done()
		use(ctx)
	}()
	wg.Wait()
}

func tick() {}

// noContext is channel-joined but passes nothing cancellable at all.
func noContext(done chan struct{}) {
	go func() { // want `goroutine does not receive a context`
		tick()
		close(done)
	}()
	<-done
}
