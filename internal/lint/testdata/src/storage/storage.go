// Package storage is a stub of the repository's internal/storage package:
// just enough surface (PinnedPage, BufferPool, an error-returning helper) for
// the pinleak and errkind fixtures to type-check. The analyzers match the
// shapes by name — PinnedPage, the "storage" path segment — so this stub
// exercises exactly the same code paths as the real package.
package storage

import "errors"

// Page stands in for a slotted page.
type Page struct {
	N int
}

// PinnedPage mirrors the real pin handle.
type PinnedPage struct {
	Page *Page
	ID   int
	Bad  bool
}

// Unpin releases the pin.
func (pp *PinnedPage) Unpin(dirty bool) {}

// BufferPool hands out pinned pages.
type BufferPool struct{}

// FetchPage pins an existing page.
func (bp *BufferPool) FetchPage(pid int) (*PinnedPage, error) {
	if pid < 0 {
		return nil, errors.New("storage: no such page")
	}
	return &PinnedPage{Page: &Page{}, ID: pid}, nil
}

// NewPage allocates and pins a fresh page.
func (bp *BufferPool) NewPage() (*PinnedPage, error) {
	return &PinnedPage{Page: &Page{}}, nil
}

// FlushAll is an error source for the errkind fixture.
func FlushAll(bp *BufferPool) error {
	return errors.New("storage: flush failed")
}
