// Package exec (fixture import path "membudget") exercises the
// memory-budget analyzer on stub operators: build-side state that grows per
// input row must charge MemTracker first on every path.
package exec

// MemTracker is the stub budget; the analyzer matches it by type name.
type MemTracker struct{ used int64 }

// Grow charges n bytes.
func (t *MemTracker) Grow(n int64) error {
	t.used += n
	return nil
}

// Row is the stub row type the analyzer matches by name.
type Row []int64

// Clone copies the row out of page memory.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Batch is the stub batch the analyzer matches by name: its fields are
// per-batch arenas, growth sites exactly like row buffers.
type Batch struct {
	Rows []Row
	Sel  []int
}

type buildOp struct {
	mem   *MemTracker
	table map[string][]Row
	buf   []Row
	seen  map[int]bool
}

// insertCharged is the sanctioned shape: Grow guards the insert.
func (o *buildOp) insertCharged(k string, r Row) error {
	if err := o.mem.Grow(int64(len(r))); err != nil {
		return err
	}
	o.table[k] = append(o.table[k], r)
	return nil
}

func (o *buildOp) insertUncharged(k string, r Row) {
	o.table[k] = append(o.table[k], r) // want `map field table grows without charging`
}

// charge is a module helper; the one-level summaries see through it.
func (o *buildOp) charge(n int64) error { return o.mem.Grow(n) }

func (o *buildOp) appendViaHelper(r Row) error {
	if err := o.charge(int64(len(r))); err != nil {
		return err
	}
	o.buf = append(o.buf, r)
	return nil
}

func (o *buildOp) appendUncharged(r Row) {
	o.buf = append(o.buf, r) // want `row-buffer field buf grows without charging`
}

// reuseIsFree recycles already-charged capacity.
func (o *buildOp) reuseIsFree(r Row) {
	o.buf = append(o.buf[:0], r)
}

func (o *buildOp) cloneUncharged(rows []Row, r Row) []Row {
	rows = append(rows, r.Clone()) // want `cloned-row buffer grows without charging`
	return rows
}

// bookkeeping maps with scalar values are bounded by request count, not row
// count: exempt.
func (o *buildOp) bookkeeping(i int) {
	o.seen[i] = true
}

// conditionalCharge only charges on one path; the must-analysis flags the
// uncovered one.
func (o *buildOp) conditionalCharge(k string, r Row, ok bool) {
	if ok {
		_ = o.mem.Grow(1)
	}
	o.table[k] = append(o.table[k], r) // want `map field table grows without charging`
}

// batchNoReset grows a batch arena with neither a charge nor a reset.
func (o *buildOp) batchNoReset(b *Batch, r Row) {
	b.Sel = append(b.Sel, 1)   // want `batch field Sel grows without charging`
	b.Rows = append(b.Rows, r) // want `row-buffer field Rows grows without charging`
}

// batchHighWater is the sanctioned batch shape: reset to length zero, then
// append into capacity retained from earlier calls.
func (o *buildOp) batchHighWater(b *Batch, rows []Row) {
	b.Sel = b.Sel[:0]
	b.Rows = b.Rows[:0]
	for i, r := range rows {
		b.Sel = append(b.Sel, i)
		b.Rows = append(b.Rows, r)
	}
}

// resetDominates: an earlier x.f = x.f[:0] makes the append high-water
// reuse of charged capacity, same as the in-statement append(x.f[:0], ...).
func (o *buildOp) resetDominates(rows []Row) {
	o.buf = o.buf[:0]
	for _, r := range rows {
		o.buf = append(o.buf, r)
	}
}

// resetOnOnePath does not dominate the append: flagged.
func (o *buildOp) resetOnOnePath(r Row, ok bool) {
	if ok {
		o.buf = o.buf[:0]
	}
	o.buf = append(o.buf, r) // want `row-buffer field buf grows without charging`
}

// resetKilled: reassigning the field discards the reset's guarantee.
func (o *buildOp) resetKilled(r Row, other []Row) {
	o.buf = o.buf[:0]
	o.buf = other
	o.buf = append(o.buf, r) // want `row-buffer field buf grows without charging`
}

// cloneAfterReset: a clone is new memory wherever it lands; resets never
// exempt it.
func (o *buildOp) cloneAfterReset(r Row) {
	o.buf = o.buf[:0]
	o.buf = append(o.buf, r.Clone()) // want `cloned-row buffer grows without charging`
}
