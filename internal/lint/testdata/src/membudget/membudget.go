// Package exec (fixture import path "membudget") exercises the
// memory-budget analyzer on stub operators: build-side state that grows per
// input row must charge MemTracker first on every path.
package exec

// MemTracker is the stub budget; the analyzer matches it by type name.
type MemTracker struct{ used int64 }

// Grow charges n bytes.
func (t *MemTracker) Grow(n int64) error {
	t.used += n
	return nil
}

// Row is the stub row type the analyzer matches by name.
type Row []int64

// Clone copies the row out of page memory.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

type buildOp struct {
	mem   *MemTracker
	table map[string][]Row
	buf   []Row
	seen  map[int]bool
}

// insertCharged is the sanctioned shape: Grow guards the insert.
func (o *buildOp) insertCharged(k string, r Row) error {
	if err := o.mem.Grow(int64(len(r))); err != nil {
		return err
	}
	o.table[k] = append(o.table[k], r)
	return nil
}

func (o *buildOp) insertUncharged(k string, r Row) {
	o.table[k] = append(o.table[k], r) // want `map field table grows without charging`
}

// charge is a module helper; the one-level summaries see through it.
func (o *buildOp) charge(n int64) error { return o.mem.Grow(n) }

func (o *buildOp) appendViaHelper(r Row) error {
	if err := o.charge(int64(len(r))); err != nil {
		return err
	}
	o.buf = append(o.buf, r)
	return nil
}

func (o *buildOp) appendUncharged(r Row) {
	o.buf = append(o.buf, r) // want `row-buffer field buf grows without charging`
}

// reuseIsFree recycles already-charged capacity.
func (o *buildOp) reuseIsFree(r Row) {
	o.buf = append(o.buf[:0], r)
}

func (o *buildOp) cloneUncharged(rows []Row, r Row) []Row {
	rows = append(rows, r.Clone()) // want `cloned-row buffer grows without charging`
	return rows
}

// bookkeeping maps with scalar values are bounded by request count, not row
// count: exempt.
func (o *buildOp) bookkeeping(i int) {
	o.seen[i] = true
}

// conditionalCharge only charges on one path; the must-analysis flags the
// uncovered one.
func (o *buildOp) conditionalCharge(k string, r Row, ok bool) {
	if ok {
		_ = o.mem.Grow(1)
	}
	o.table[k] = append(o.table[k], r) // want `map field table grows without charging`
}
