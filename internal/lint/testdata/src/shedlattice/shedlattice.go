// Package shedlattice exercises the one-way degradation lattice: monitor
// kind writes may only move down exact→DPSample→linear→off within a query.
package shedlattice

const (
	monExactPrefix = iota
	monSampled
	monJoinFilter
	monLinear
)

type scanMonitor struct {
	kind     int
	disabled bool
}

func (m *scanMonitor) shedOff(reason string) { m.disabled = true }

// degradeOK walks down the lattice: always legal.
func degradeOK(m *scanMonitor, lvl int) {
	if lvl >= 1 {
		m.kind = monSampled
	}
	if lvl >= 2 {
		m.kind = monLinear
	}
	if lvl >= 3 {
		m.shedOff("overload")
	}
}

func upgradeBad(m *scanMonitor) {
	m.kind = monLinear
	m.kind = monExactPrefix // want `moves back up the shed lattice`
}

// reEnable resurrects a shed-off monitor.
func reEnable(m *scanMonitor) {
	m.shedOff("overload")
	m.kind = monSampled // want `moves back up the shed lattice`
}

// disableThenSample re-arms past an explicit disable write.
func disableThenSample(m *scanMonitor) {
	m.disabled = true
	m.kind = monSampled // want `moves back up the shed lattice`
}

// branchBad: on the degraded arm's path the later write is an upgrade; the
// may-analysis keeps the highest rank across the join.
func branchBad(m *scanMonitor, cond bool) {
	if cond {
		m.kind = monLinear
	}
	m.kind = monSampled // want `moves back up the shed lattice`
}

// freshPerIteration re-binds m each iteration; a fresh monitor at a lower
// rank is NOT a lattice move even though the previous iteration's monitor
// ended lower.
func freshPerIteration(reqs []int) []*scanMonitor {
	var mons []*scanMonitor
	for _, r := range reqs {
		m := &scanMonitor{}
		if r > 0 {
			m.kind = monLinear
		} else {
			m.kind = monExactPrefix
		}
		mons = append(mons, m)
	}
	return mons
}

// freshComposite does the same through composite-literal kinds.
func freshComposite(reqs []int) []*scanMonitor {
	var mons []*scanMonitor
	for _, r := range reqs {
		var m *scanMonitor
		if r > 0 {
			m = &scanMonitor{kind: monLinear}
		} else {
			m = &scanMonitor{kind: monExactPrefix}
		}
		mons = append(mons, m)
	}
	return mons
}

// rangeRebindMixed: the range variable binds a DIFFERENT monitor each
// iteration, so mixed ranks across iterations are clean.
func rangeRebindMixed(mons []*scanMonitor, lvls []int) {
	for i, m := range mons {
		if lvls[i] > 1 {
			m.kind = monLinear
		} else {
			m.kind = monSampled
		}
	}
}

// sameMonitorAcrossLoop keeps ONE monitor across iterations: an upgrade on
// a later iteration is real.
func sameMonitorAcrossLoop(m *scanMonitor, lvls []int) {
	for _, lvl := range lvls {
		if lvl > 1 {
			m.kind = monLinear
		} else {
			m.kind = monSampled // want `moves back up the shed lattice`
		}
	}
}
