// Package ctxflow exercises the ctxflow analyzer: cancellation flows from
// the engine entry points; library code must not re-root a context, and a
// context parameter always comes first.
package ctxflow

import "context"

type Engine struct{}

// Query is the convenience wrapper: rooting a fresh background context here
// is sanctioned because QueryContext exists on the same receiver.
func (e *Engine) Query(q string) error {
	return e.QueryContext(context.Background(), q)
}

// QueryContext is the real entry point; the nil-guard default into its own
// context parameter is sanctioned.
func (e *Engine) QueryContext(ctx context.Context, q string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return run(ctx, q)
}

func run(ctx context.Context, q string) error {
	_ = q
	return ctx.Err()
}

// reroot re-roots cancellation mid-stack: the caller's deadline is lost.
func reroot(q string) error {
	return run(context.Background(), q) // want `context.Background\(\) outside cmd/`
}

// stubbed leaves a TODO context in library code.
func stubbed(q string) error {
	return run(context.TODO(), q) // want `context.TODO\(\) outside cmd/`
}

// trailingCtx buries the context behind another parameter.
func trailingCtx(q string, ctx context.Context) error { // want `context.Context must be the first parameter`
	return run(ctx, q)
}
