// Package plan mirrors the real internal/plan package's shape for the
// planshare fixture: its structs are the shared, cached plan templates whose
// fields outside packages must never write.
package plan

// Scan is a leaf plan node.
type Scan struct {
	Table string
	N     int
}

// Limit wraps another node.
type Limit struct {
	Input *Scan
	N     int
}

// Reset writes its own fields: the plan package may do this.
func (s *Scan) Reset() {
	s.N = 0
	s.Table = ""
}
