// Package lockorder exercises the lockorder analyzer against the sharded
// buffer-pool locking protocol: at most one shard mutex held at a time,
// except constant ascending pairs and the whole-pool ascending sweep.
package lockorder

import "sync"

type bufShard struct {
	mu sync.Mutex
	n  int
}

type pool struct {
	shards []*bufShard
}

// lockOne holds a single shard lock: fine.
func lockOne(p *pool, i int) {
	s := p.shards[i]
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// lockAscending takes two shards at provably ascending constant indices.
func lockAscending(p *pool) {
	p.shards[0].mu.Lock()
	p.shards[1].mu.Lock()
	p.shards[1].mu.Unlock()
	p.shards[0].mu.Unlock()
}

// lockDescending inverts the constant order: deadlock-prone.
func lockDescending(p *pool) {
	p.shards[1].mu.Lock()
	p.shards[0].mu.Lock() // want `out of ascending order`
	p.shards[0].mu.Unlock()
	p.shards[1].mu.Unlock()
}

// lockPair uses two runtime indices: order cannot be proven.
func lockPair(p *pool, i, j int) {
	p.shards[i].mu.Lock()
	p.shards[j].mu.Lock() // want `cannot prove ascending shard order`
	p.shards[j].mu.Unlock()
	p.shards[i].mu.Unlock()
}

// sweepAll is the sanctioned whole-pool sweep: a `for range` over the shard
// slice locks in ascending index order by construction.
func sweepAll(p *pool) int {
	for _, s := range p.shards {
		s.mu.Lock()
	}
	total := 0
	for _, s := range p.shards {
		total += s.n
	}
	for _, s := range p.shards {
		s.mu.Unlock()
	}
	return total
}

// resetAll pairs the sweep with a deferred unlock-all closure, the shape the
// real pool's Reset uses.
func resetAll(p *pool) {
	for _, s := range p.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range p.shards {
			s.mu.Unlock()
		}
	}()
	for _, s := range p.shards {
		s.n = 0
	}
}

// lockDuringSweep grabs one more shard while the sweep holds all of them.
func lockDuringSweep(p *pool, extra *bufShard) {
	for _, s := range p.shards {
		s.mu.Lock()
	}
	extra.mu.Lock() // want `while the whole-pool sweep already holds every shard`
	extra.mu.Unlock()
	for _, s := range p.shards {
		s.mu.Unlock()
	}
}

// lockByIndex accumulates locks across iterations of a loop that is not a
// range over the shard slice, so ascending order is not guaranteed.
func lockByIndex(p *pool, order []int) {
	for _, i := range order {
		p.shards[i].mu.Lock() // want `accumulates across loop iterations`
	}
	for _, i := range order {
		p.shards[i].mu.Unlock()
	}
}

// perIterationLock locks and unlocks within each iteration: balanced, fine.
func perIterationLock(p *pool) int {
	total := 0
	for _, s := range p.shards {
		s.mu.Lock()
		total += s.n
		s.mu.Unlock()
	}
	return total
}

// spawnWorker mirrors the prefetcher: the spawning goroutine holds one shard
// while the spawned body takes another on its own fresh lock stack — distinct
// goroutines, so there is no ordering constraint between them.
func spawnWorker(p *pool, i, j int) {
	p.shards[i].mu.Lock()
	go func() {
		s := p.shards[j]
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}()
	p.shards[i].mu.Unlock()
}

// goroutineBodyMisordered: the body itself holds two shards without provable
// order; running on its own stack does not excuse that.
func goroutineBodyMisordered(p *pool, i, j int) {
	go func() {
		p.shards[i].mu.Lock()
		p.shards[j].mu.Lock() // want `cannot prove ascending shard order`
		p.shards[j].mu.Unlock()
		p.shards[i].mu.Unlock()
	}()
}

// inlineClosureInheritsLocks: an immediately invoked closure executes on the
// caller's stack, so a second shard lock inside it is an unprovable pair.
func inlineClosureInheritsLocks(p *pool, i, j int) {
	p.shards[i].mu.Lock()
	func() {
		p.shards[j].mu.Lock() // want `cannot prove ascending shard order`
		p.shards[j].mu.Unlock()
	}()
	p.shards[i].mu.Unlock()
}

// callbackClosureIsIndependent: a closure merely assigned runs who-knows-when
// on its own analysis stack; creating it while holding a shard is fine.
func callbackClosureIsIndependent(p *pool, i, j int) func() {
	p.shards[i].mu.Lock()
	cb := func() {
		p.shards[j].mu.Lock()
		p.shards[j].n++
		p.shards[j].mu.Unlock()
	}
	p.shards[i].mu.Unlock()
	return cb
}
