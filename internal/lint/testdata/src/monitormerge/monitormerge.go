// Package monitormerge exercises the monitormerge analyzer: observation
// types need a Merge, and every Merge must be declared commutative.
package monitormerge

// GoodCounter observes pages and merges with a reviewed commutativity claim.
type GoodCounter struct {
	pages map[int]bool
}

func (c *GoodCounter) Observe(pid int, satisfies bool) {
	if satisfies {
		c.pages[pid] = true
	}
}

// Merge folds a disjoint partition's counts into c.
//
// dbvet:commutative — set union; order is irrelevant.
func (c *GoodCounter) Merge(o *GoodCounter) {
	for p := range o.pages {
		c.pages[p] = true
	}
}

// NoMergeCounter observes but cannot be combined across scan partitions.
type NoMergeCounter struct {
	n int
}

func (c *NoMergeCounter) ObserveAtPage(pid int) { // want `has no Merge method`
	c.n++
}

// UndeclaredMerge has a Merge whose doc makes no commutativity claim.
type UndeclaredMerge struct {
	n int
}

func (c *UndeclaredMerge) AddPID(pid int) {
	c.n++
}

// Merge adds the partition totals.
func (c *UndeclaredMerge) Merge(o *UndeclaredMerge) { // want `not declared commutative`
	c.n += o.n
}

// Getter types are not observers: Observed is a read accessor, not an
// observation, and types that merge without observing carry no obligation
// beyond the marker.
type GetterOnly struct {
	n int
}

func (g *GetterOnly) Observed() int { return g.n }

// SinkOnly neither observes nor merges: no obligations.
type SinkOnly struct{}

func (s *SinkOnly) Reset() {}
