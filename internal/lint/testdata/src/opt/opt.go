// Package opt mirrors the optimizer for the planshare fixture: it assembles
// plan trees before they are published to the cache, so its writes to
// plan-node fields are sanctioned.
package opt

import "plan"

// Finish fills in a node under construction: allowed.
func Finish(s *plan.Scan, rows int) {
	s.N = rows
}

// Wrap builds a parent and patches the child: allowed.
func Wrap(s *plan.Scan) *plan.Limit {
	l := &plan.Limit{Input: s}
	l.N = 10
	return l
}
