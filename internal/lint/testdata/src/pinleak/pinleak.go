// Package pinleak exercises the pinleak analyzer: every *storage.PinnedPage
// obtained from FetchPage/NewPage must reach Unpin on all control-flow paths,
// and a single non-deferred release site is flagged as panic-unsafe.
package pinleak

import (
	"errors"

	"storage"
)

var errBad = errors.New("bad page")

func sink(n int) {}

func consume(pp *storage.PinnedPage) {}

// leakOnEarlyReturn forgets the pin on the errBad path.
func leakOnEarlyReturn(pool *storage.BufferPool) error {
	pp, err := pool.FetchPage(1) // want `pinned page pp may not be unpinned on every path`
	if err != nil {
		return err
	}
	if pp.Bad {
		return errBad
	}
	pp.Unpin(false)
	return nil
}

// neverUnpinned drops the pin entirely.
func neverUnpinned(pool *storage.BufferPool) {
	pp, _ := pool.FetchPage(1) // want `pinned page pp may not be unpinned on every path`
	sink(pp.Page.N)
}

// newPageLeak exercises the NewPage acquisition path: the error return is
// understood, but the fall-off-the-end path still holds the pin.
func newPageLeak(pool *storage.BufferPool) {
	pp, err := pool.NewPage() // want `pinned page pp may not be unpinned on every path`
	if err != nil {
		return
	}
	sink(pp.Page.N)
}

// missingDefer releases on the only path but not via defer: a panic between
// pin and release leaks.
func missingDefer(pool *storage.BufferPool) int {
	pp, err := pool.FetchPage(1) // want `single non-deferred Unpin`
	if err != nil {
		return 0
	}
	n := pp.Page.N
	pp.Unpin(false)
	return n
}

// scanLoop releases each page at the bottom of the loop body — flagged by
// the defer rule, same as the pre-refactor heap scanner.
func scanLoop(pool *storage.BufferPool, n int) (int, error) {
	total := 0
	for pid := 0; pid < n; pid++ {
		pp, err := pool.FetchPage(pid) // want `single non-deferred Unpin`
		if err != nil {
			return 0, err
		}
		total += pp.Page.N
		pp.Unpin(false)
	}
	return total, nil
}

// deferredRelease is the idiomatic safe shape.
func deferredRelease(pool *storage.BufferPool) (int, error) {
	pp, err := pool.FetchPage(1)
	if err != nil {
		return 0, err
	}
	defer pp.Unpin(false)
	return pp.Page.N, nil
}

// deferredClosureRelease defers the release inside a closure that decides
// dirtiness late.
func deferredClosureRelease(pool *storage.BufferPool) (int, error) {
	pp, err := pool.FetchPage(1)
	if err != nil {
		return 0, err
	}
	dirty := false
	defer func() { pp.Unpin(dirty) }()
	pp.Page.N++
	dirty = true
	return pp.Page.N, nil
}

// releaseLadder has two release sites, one per outcome; exempt from the
// defer rule, still subject to the path rule.
func releaseLadder(pool *storage.BufferPool) error {
	pp, err := pool.FetchPage(1)
	if err != nil {
		return err
	}
	if pp.Bad {
		pp.Unpin(false)
		return errBad
	}
	pp.Page.N++
	pp.Unpin(true)
	return nil
}

// handOut transfers ownership to the caller: exempt.
func handOut(pool *storage.BufferPool) (*storage.PinnedPage, error) {
	pp, err := pool.FetchPage(1)
	if err != nil {
		return nil, err
	}
	return pp, nil
}

// passedAlong hands the pin to a helper which takes ownership: exempt.
func passedAlong(pool *storage.BufferPool) error {
	pp, err := pool.FetchPage(1)
	if err != nil {
		return err
	}
	consume(pp)
	return nil
}

// cursor retains the pin in a struct; close owns the release (the iterator
// pattern) — storing into a field is an ownership transfer, exempt.
type cursor struct {
	pp *storage.PinnedPage
}

func (c *cursor) open(pool *storage.BufferPool) error {
	pp, err := pool.FetchPage(1)
	if err != nil {
		return err
	}
	c.pp = pp
	return nil
}

func (c *cursor) close() {
	if c.pp != nil {
		c.pp.Unpin(false)
		c.pp = nil
	}
}

// suppressed leaks deliberately; the directive mutes the finding and doubles
// as the suppression-mechanism test.
func suppressed(pool *storage.BufferPool) {
	pp, _ := pool.FetchPage(1) //dbvet:ignore pinleak -- fixture for the suppression test
	sink(pp.Page.N)
}
