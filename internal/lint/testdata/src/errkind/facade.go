package errkind

import "storage"

// Flush leaks a raw storage error across the boundary.
func Flush(pool *storage.BufferPool) error {
	err := storage.FlushAll(pool)
	return err // want `error from internal/storage returned across the engine boundary`
}

// FlushClassified wraps the storage error at the return.
func FlushClassified(pool *storage.BufferPool) error {
	return classifyQueryError(storage.FlushAll(pool))
}

// badKind builds a QueryError with an ad-hoc kind the callers' pattern
// matching will never recognize.
func badKind(msg string) error {
	return &QueryError{Kind: ErrorKind(msg)} // want `QueryError.Kind must be one of the ErrKind\* constants`
}

// badEmpty builds a QueryError with no kind at all.
func badEmpty(err error) error {
	return &QueryError{Err: err} // want `QueryError constructed without a Kind`
}

// mustFlush panics above the recover boundaries.
func mustFlush(pool *storage.BufferPool) {
	if err := storage.FlushAll(pool); err != nil {
		panic(err) // want `panic in the engine boundary package`
	}
}
