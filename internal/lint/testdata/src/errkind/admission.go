package errkind

import "storage"

// admission.go is a boundary file: the admission gate hands out typed
// overload errors, so raw internal errors must not escape from it either.

// Acquire leaks a raw storage error from the admission path.
func Acquire(pool *storage.BufferPool) error {
	err := storage.FlushAll(pool)
	if err != nil {
		return err // want `error from internal/storage returned across the engine boundary`
	}
	return nil
}

// AcquireClassified wraps the error before it crosses the boundary.
func AcquireClassified(pool *storage.BufferPool) error {
	if err := storage.FlushAll(pool); err != nil {
		return classifyQueryError(err)
	}
	return nil
}

// rejectUntyped builds the overload rejection with a string kind instead of
// an ErrKind* constant.
func rejectUntyped() error {
	return &QueryError{Kind: "overload"} // want `QueryError.Kind must be one of the ErrKind\* constants`
}
