// Package errkind exercises the errkind analyzer. It is recognized as the
// engine boundary structurally: it declares a QueryError type and contains
// files named engine.go/facade.go. Raw errors from the exec/storage stubs
// must pass through classifyQueryError before being returned from exported
// boundary functions.
package errkind

import (
	"fmt"

	"exec"
)

// ErrorKind labels a QueryError.
type ErrorKind string

// The valid kinds.
const (
	ErrKindExec    ErrorKind = "exec"
	ErrKindStorage ErrorKind = "storage"
)

// QueryError is the boundary error type.
type QueryError struct {
	Kind ErrorKind
	Err  error
}

func (e *QueryError) Error() string {
	return fmt.Sprintf("%s: %v", e.Kind, e.Err)
}

// classifyQueryError wraps err in a *QueryError.
func classifyQueryError(err error) error {
	if err == nil {
		return nil
	}
	return &QueryError{Kind: ErrKindExec, Err: err}
}

// RunRaw leaks raw exec errors across the boundary.
func RunRaw(q string) (int, error) {
	p, err := exec.Build(q)
	if err != nil {
		return 0, err // want `error from internal/exec returned across the engine boundary`
	}
	n, err := p.Run()
	if err != nil {
		return 0, err // want `error from internal/exec returned across the engine boundary`
	}
	return n, nil
}

// RunClassified wraps every boundary-crossing error.
func RunClassified(q string) (int, error) {
	p, err := exec.Build(q)
	if err != nil {
		return 0, classifyQueryError(err)
	}
	n, err := p.Run()
	if err != nil {
		return 0, classifyQueryError(err)
	}
	return n, nil
}

// RunRewrapped rewraps by hand before returning: the reassignment from a
// non-source call clears the taint.
func RunRewrapped(q string) error {
	_, err := exec.Build(q)
	if err != nil {
		err = fmt.Errorf("engine: %w", err)
		return err
	}
	return nil
}
