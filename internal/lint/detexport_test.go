package lint

import "testing"

func TestDetExport(t *testing.T) {
	runFixture(t, DetExportAnalyzer, "detexport")
}

// TestDetExportRootsExist keeps detRoots honest against the linted tree:
// every root name must still resolve to at least one function in the
// module, or a rename would silently shrink the checked surface to nothing.
func TestDetExportRootsExist(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide analysis skipped in -short mode")
	}
	loader, root, err := NewModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	sums := BuildSummaries(units)
	found := make(map[string]bool)
	for _, fi := range sums.Funcs {
		found[fi.Obj.Name()] = true
	}
	for name := range detRoots {
		if !found[name] {
			t.Errorf("determinism root %q no longer exists in the module; update detRoots", name)
		}
	}
}
