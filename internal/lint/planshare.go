package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PlanShareAnalyzer guards the plan-cache sharing contract: cached plan
// templates (plan.Node trees stored in the engine's plan cache) are read
// concurrently by every goroutine that hits the cache, so plan-node fields
// must be immutable once the optimizer hands a tree over. New trees are
// built with composite literals; the only packages allowed to write a
// plan-node field after construction are the plan package itself (methods
// on the nodes) and the optimizer, which assembles trees before they are
// published.
//
// The analyzer flags any assignment, compound assignment, or ++/-- whose
// target is a field of a struct defined in a package whose import path ends
// in "/plan" (or is "plan" in fixtures), from any other package except the
// optimizer ("/opt").
var PlanShareAnalyzer = &Analyzer{
	Name: "planshare",
	Doc:  "check that plan-node fields are never written outside the plan and opt packages, keeping cached plan templates immutable",
	Run:  runPlanShare,
}

func runPlanShare(pass *Pass) error {
	if planWriterPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkPlanWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkPlanWrite(pass, st.X)
			}
			return true
		})
	}
	return nil
}

// checkPlanWrite reports expr when it selects a field declared in the plan
// package.
func checkPlanWrite(pass *Pass, expr ast.Expr) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return
	}
	field := selectedField(pass.Info, sel)
	if field == nil || field.Pkg() == nil || !planPkgPath(field.Pkg().Path()) {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"write to plan node field %s outside the plan/opt packages; cached plan templates are shared across goroutines and must stay immutable — build a new node with a composite literal instead",
		fieldOwnerName(pass.Info, sel, field))
}

// fieldOwnerName renders "Type.Field" when the receiver type is resolvable,
// else just the field name.
func fieldOwnerName(info *types.Info, sel *ast.SelectorExpr, field types.Object) string {
	s, ok := info.Selections[sel]
	if !ok {
		return field.Name()
	}
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name() + "." + field.Name()
	}
	return field.Name()
}

// planPkgPath reports whether path is the plan package (real tree:
// pagefeedback/internal/plan; fixtures: plan).
func planPkgPath(path string) bool {
	return path == "plan" || strings.HasSuffix(path, "/plan")
}

// planWriterPkg reports whether path may legitimately write plan-node
// fields: the plan package itself and the optimizer.
func planWriterPkg(path string) bool {
	return planPkgPath(path) || path == "opt" || strings.HasSuffix(path, "/opt")
}
