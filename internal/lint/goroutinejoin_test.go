package lint

import "testing"

func TestGoroutineJoin(t *testing.T) {
	runFixture(t, GoroutineJoinAnalyzer, "goroutinejoin")
}
