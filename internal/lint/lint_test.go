package lint

import (
	"strings"
	"testing"
)

// TestRepoIsClean runs the full analyzer suite over the repository itself —
// the same check CI's `go run ./cmd/dbvet ./...` performs — so a regression
// in the linted tree fails plain `go test ./...` too.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide analysis skipped in -short mode")
	}
	loader, root, err := NewModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := RunWithConfig(units, All(), RunConfig{ReportUnusedIgnores: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("pinleak, errkind")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "pinleak" || as[1].Name != "errkind" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

func TestAnalyzerMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v lacks a name or doc", a)
		}
		if strings.ToLower(a.Name) != a.Name {
			t.Errorf("analyzer name %q must be lower-case for //dbvet:ignore", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if (a.Run == nil) == (a.RunGlobal == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunGlobal", a.Name)
		}
	}
}
