package lint

import "testing"

func TestPlanShare(t *testing.T) {
	runFixture(t, PlanShareAnalyzer, "planshare", "plan", "opt")
}
