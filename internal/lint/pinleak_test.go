package lint

import "testing"

func TestPinLeak(t *testing.T) {
	runFixture(t, PinLeakAnalyzer, "pinleak")
}
