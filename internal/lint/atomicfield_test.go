package lint

import "testing"

func TestAtomicField(t *testing.T) {
	runFixture(t, AtomicFieldAnalyzer, "atomicfield", "atomicfield/client")
}
