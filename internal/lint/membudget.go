package lint

import (
	"go/ast"
	"go/types"
)

// MemBudgetAnalyzer enforces the overload-protection invariant on exec
// operators: build-side state that grows per input row must charge the
// query's exec.MemTracker before growing, or a memory budget cannot bound
// the query. Growth sites are:
//
//   - appending to a row-buffer field (a selector whose slice element type
//     is named Row or Value) — except reuse appends whose first argument is
//     a slice expression (`x.buf[:0]`, reusing charged capacity),
//   - inserting into a map-typed field whose values carry row data (slices,
//     pointers, structs — bounded bookkeeping maps with scalar values, like
//     `satisfied map[int]bool`, are exempt),
//   - any append of a Clone()d row (cloning copies the row out of the page
//     buffer into operator-owned memory).
//
// A site is satisfied when a charge — MemTracker.Grow called directly or
// through a module helper (per the one-level summaries) — precedes it on
// every path from function entry (forward must-analysis over the CFG). The
// analyzer only runs over packages named exec; other packages do not own
// tracked operator state.
var MemBudgetAnalyzer = &Analyzer{
	Name: "membudget",
	Doc:  "exec operators charge exec.MemTracker before growing build-side slices or maps",
	Run:  runMemBudget,
}

func runMemBudget(pass *Pass) error {
	if pass.Pkg.Name() != "exec" {
		return nil
	}
	sums := BuildSummaries([]*Unit{pass.unit})
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			analyzeMemScope(pass, fb.body, sums)
		}
	}
	return nil
}

func analyzeMemScope(pass *Pass, body *ast.BlockStmt, sums *Summaries) {
	// Collect growth sites in this scope first; skip the dataflow when the
	// function has none.
	sites := make(map[ast.Node]string)
	inspectScope(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if what, ok := growthSite(pass.Info, as); ok {
			sites[as] = what
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	reported := make(map[ast.Node]bool)
	asBool := func(f Fact) bool {
		if f == nil {
			return false
		}
		return f.(bool)
	}
	g := BuildCFG(body)
	g.Forward(Flow{
		Boundary: false,
		Transfer: func(b *Block, in Fact) Fact {
			charged := asBool(in)
			for _, n := range b.Nodes {
				if !charged && nodeCharges(pass.Info, sums, n) {
					charged = true
				}
				if what, ok := sites[n]; ok && !charged && !reported[n] {
					reported[n] = true
					pass.Reportf(n.Pos(),
						"%s grows without charging exec.MemTracker first (call Grow, directly or via a charging helper, before the insert)", what)
				}
			}
			return charged
		},
		Join: func(a, b Fact) Fact {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			return asBool(a) && asBool(b)
		},
		Equal: func(a, b Fact) bool { return asBool(a) == asBool(b) },
	})
}

// nodeCharges reports whether the node contains a MemTracker charge, either
// a direct Grow call or a call to a module function whose summary charges.
func nodeCharges(info *types.Info, sums *Summaries, n ast.Node) bool {
	charges := false
	InspectNode(n, func(nd ast.Node) bool {
		if charges {
			return false
		}
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		if callee.Name() == "Grow" && recvTypeNameIs(callee, "MemTracker") {
			charges = true
			return false
		}
		if fi, ok := sums.Funcs[callee]; ok && fi.CallsGrow {
			charges = true
			return false
		}
		return true
	})
	return charges
}

// scalarMapValue reports whether a map value type is a flat scalar
// (bool/number/empty struct): such maps are bounded bookkeeping keyed by
// request or slot index, not per-row build-side state.
func scalarMapValue(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsBoolean|types.IsNumeric) != 0
	case *types.Struct:
		return u.NumFields() == 0
	}
	return false
}

// growthSite classifies an assignment as operator-state growth. The what
// string names the grown state for the diagnostic.
func growthSite(info *types.Info, as *ast.AssignStmt) (string, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	// Map-field insert: x.f[k] = v.
	if idx, ok := as.Lhs[0].(*ast.IndexExpr); ok {
		sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		tv, ok := info.Types[sel]
		if !ok {
			return "", false
		}
		if m, isMap := tv.Type.Underlying().(*types.Map); isMap && !scalarMapValue(m.Elem()) {
			return "map field " + sel.Sel.Name, true
		}
		return "", false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return "", false
	}
	// Clone()d rows move page memory into operator-owned memory wherever
	// they land, local variable or field.
	for _, arg := range call.Args[1:] {
		if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Clone" {
				return "cloned-row buffer", true
			}
		}
	}
	// Row-buffer field append: x.f = append(x.f, row) with Row/Value
	// elements; x.f[:0] reuse appends recycle already-charged capacity.
	sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, isReuse := ast.Unparen(call.Args[0]).(*ast.SliceExpr); isReuse {
		return "", false
	}
	tv, ok := info.Types[sel]
	if !ok {
		return "", false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return "", false
	}
	if typeNameIs(sl.Elem(), "Row") || typeNameIs(sl.Elem(), "Value") {
		return "row-buffer field " + sel.Sel.Name, true
	}
	return "", false
}
