package lint

import (
	"go/ast"
	"go/types"
)

// MemBudgetAnalyzer enforces the overload-protection invariant on exec
// operators: build-side state that grows per input row must charge the
// query's exec.MemTracker before growing, or a memory budget cannot bound
// the query. Growth sites are:
//
//   - appending to a row-buffer field (a selector whose slice element type
//     is named Row or Value),
//   - appending to a field of a Batch (Rows or the []int selection vector) —
//     batch arenas grow per batch exactly like row buffers do per row,
//   - inserting into a map-typed field whose values carry row data (slices,
//     pointers, structs — bounded bookkeeping maps with scalar values, like
//     `satisfied map[int]bool`, are exempt),
//   - any append of a Clone()d row (cloning copies the row out of the page
//     buffer into operator-owned memory).
//
// A site is satisfied when a charge — MemTracker.Grow called directly or
// through a module helper (per the one-level summaries) — precedes it on
// every path from function entry (forward must-analysis over the CFG).
//
// Row-buffer and batch-field appends have a second sanctioned shape:
// high-water reuse, where `x.f = x.f[:0]` dominates the append, so it
// recycles capacity retained from earlier calls instead of growing the
// query's footprint per row. The reset may be in the same statement
// (`append(x.f[:0], ...)`) or anywhere that dominates the append;
// reassigning the field to anything else invalidates it. Cloned-row and
// map inserts never get this exemption — a clone is new memory wherever
// it lands, and map growth has no reset idiom.
//
// The analyzer only runs over packages named exec; other packages do not
// own tracked operator state.
var MemBudgetAnalyzer = &Analyzer{
	Name: "membudget",
	Doc:  "exec operators charge exec.MemTracker before growing build-side slices or maps",
	Run:  runMemBudget,
}

func runMemBudget(pass *Pass) error {
	if pass.Pkg.Name() != "exec" {
		return nil
	}
	sums := BuildSummaries([]*Unit{pass.unit})
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			analyzeMemScope(pass, fb.body, sums)
		}
	}
	return nil
}

// memSite is one growth site: what names the grown state for the diagnostic,
// key identifies the selector it grows (types.ExprString form), and
// resettable marks the categories the high-water-reuse exemption applies to.
type memSite struct {
	what       string
	key        string
	resettable bool
}

// memFact is the forward must-analysis fact: charged reports whether a
// MemTracker charge has happened on every path to this point, reset holds
// the selectors `x.f = x.f[:0]` has reset on every path (and that have not
// been reassigned since).
type memFact struct {
	charged bool
	reset   map[string]bool
}

func (f memFact) clone() memFact {
	out := memFact{charged: f.charged}
	if len(f.reset) > 0 {
		out.reset = make(map[string]bool, len(f.reset))
		for k := range f.reset {
			out.reset[k] = true
		}
	}
	return out
}

func analyzeMemScope(pass *Pass, body *ast.BlockStmt, sums *Summaries) {
	// Collect growth sites in this scope first; skip the dataflow when the
	// function has none.
	sites := make(map[ast.Node]memSite)
	inspectScope(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if site, ok := growthSite(pass.Info, as); ok {
			sites[as] = site
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	reported := make(map[ast.Node]bool)
	asFact := func(f Fact) memFact {
		if f == nil {
			return memFact{}
		}
		return f.(memFact)
	}
	g := BuildCFG(body)
	g.Forward(Flow{
		Boundary: memFact{},
		Transfer: func(b *Block, in Fact) Fact {
			f := asFact(in).clone()
			for _, n := range b.Nodes {
				if !f.charged && nodeCharges(pass.Info, sums, n) {
					f.charged = true
				}
				if as, ok := n.(*ast.AssignStmt); ok {
					switch key, action := resetAction(as); action {
					case resetSets:
						if f.reset == nil {
							f.reset = make(map[string]bool)
						}
						f.reset[key] = true
					case resetKills:
						delete(f.reset, key)
					}
				}
				if site, ok := sites[n]; ok && !reported[n] {
					if !f.charged && !(site.resettable && f.reset[site.key]) {
						reported[n] = true
						pass.Reportf(n.Pos(),
							"%s grows without charging exec.MemTracker first (call Grow, directly or via a charging helper, before the insert)", site.what)
					}
				}
			}
			return f
		},
		Join: func(a, b Fact) Fact {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			fa, fb := asFact(a), asFact(b)
			out := memFact{charged: fa.charged && fb.charged}
			for k := range fa.reset {
				if fb.reset[k] {
					if out.reset == nil {
						out.reset = make(map[string]bool)
					}
					out.reset[k] = true
				}
			}
			return out
		},
		Equal: func(a, b Fact) bool {
			fa, fb := asFact(a), asFact(b)
			if fa.charged != fb.charged || len(fa.reset) != len(fb.reset) {
				return false
			}
			for k := range fa.reset {
				if !fb.reset[k] {
					return false
				}
			}
			return true
		},
	})
}

// resetAction classifies an assignment's effect on the reset set.
const (
	resetNone = iota
	resetSets
	resetKills
)

func resetAction(as *ast.AssignStmt) (string, int) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", resetNone
	}
	sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
	if !ok {
		return "", resetNone
	}
	key := types.ExprString(sel)
	// x.f = x.f[:0] resets; x.f = x.f[:n] or x.f = other[...] reassigns.
	if sl, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr); ok {
		if sl.Low == nil && isZeroLit(sl.High) && types.ExprString(ast.Unparen(sl.X)) == key {
			return key, resetSets
		}
		return key, resetKills
	}
	// x.f = append(x.f, ...) and x.f = append(x.f[:0], ...) keep the field's
	// identity (and retained capacity); anything else reassigns it.
	if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			base := ast.Unparen(call.Args[0])
			if sl, ok := base.(*ast.SliceExpr); ok {
				base = ast.Unparen(sl.X)
			}
			if types.ExprString(base) == key {
				return "", resetNone
			}
		}
	}
	return key, resetKills
}

// isZeroLit reports whether e is the integer literal 0.
func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// nodeCharges reports whether the node contains a MemTracker charge, either
// a direct Grow call or a call to a module function whose summary charges.
func nodeCharges(info *types.Info, sums *Summaries, n ast.Node) bool {
	charges := false
	InspectNode(n, func(nd ast.Node) bool {
		if charges {
			return false
		}
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		if callee.Name() == "Grow" && recvTypeNameIs(callee, "MemTracker") {
			charges = true
			return false
		}
		if fi, ok := sums.Funcs[callee]; ok && fi.CallsGrow {
			charges = true
			return false
		}
		return true
	})
	return charges
}

// scalarMapValue reports whether a map value type is a flat scalar
// (bool/number/empty struct): such maps are bounded bookkeeping keyed by
// request or slot index, not per-row build-side state.
func scalarMapValue(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsBoolean|types.IsNumeric) != 0
	case *types.Struct:
		return u.NumFields() == 0
	}
	return false
}

// batchReceiver reports whether the selector's base is a Batch (directly or
// through a pointer).
func batchReceiver(info *types.Info, sel *ast.SelectorExpr) bool {
	tv, ok := info.Types[ast.Unparen(sel.X)]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return typeNameIs(t, "Batch")
}

// growthSite classifies an assignment as operator-state growth. The site's
// what string names the grown state for the diagnostic.
func growthSite(info *types.Info, as *ast.AssignStmt) (memSite, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return memSite{}, false
	}
	// Map-field insert: x.f[k] = v.
	if idx, ok := as.Lhs[0].(*ast.IndexExpr); ok {
		sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
		if !ok {
			return memSite{}, false
		}
		tv, ok := info.Types[sel]
		if !ok {
			return memSite{}, false
		}
		if m, isMap := tv.Type.Underlying().(*types.Map); isMap && !scalarMapValue(m.Elem()) {
			return memSite{what: "map field " + sel.Sel.Name}, true
		}
		return memSite{}, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return memSite{}, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return memSite{}, false
	}
	// Clone()d rows move page memory into operator-owned memory wherever
	// they land, local variable or field — never high-water reuse.
	for _, arg := range call.Args[1:] {
		if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Clone" {
				return memSite{what: "cloned-row buffer"}, true
			}
		}
	}
	// Row-buffer or batch-field append: x.f = append(x.f, ...). An
	// append(x.f[:0], ...) first argument is an in-statement reset — reuse of
	// already-charged capacity, exempt outright.
	sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
	if !ok {
		return memSite{}, false
	}
	if _, isReuse := ast.Unparen(call.Args[0]).(*ast.SliceExpr); isReuse {
		return memSite{}, false
	}
	tv, ok := info.Types[sel]
	if !ok {
		return memSite{}, false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return memSite{}, false
	}
	key := types.ExprString(sel)
	if typeNameIs(sl.Elem(), "Row") || typeNameIs(sl.Elem(), "Value") {
		return memSite{what: "row-buffer field " + sel.Sel.Name, key: key, resettable: true}, true
	}
	if batchReceiver(info, sel) {
		return memSite{what: "batch field " + sel.Sel.Name, key: key, resettable: true}, true
	}
	return memSite{}, false
}
