package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicFieldAnalyzer protects the pool-wide counters (and any future field
// managed with sync/atomic): once any code touches a struct field through a
// sync/atomic function (atomic.AddInt64(&s.f, ...) style), every other
// access to that field — in any package — must also be atomic. A plain read
// races with the atomic writers; a plain write can be lost entirely.
//
// Fields of the type-safe atomic wrapper types (atomic.Int64 & friends) are
// safe by construction and need no checking; this analyzer exists for the
// legacy function-based style where the type system cannot help.
var AtomicFieldAnalyzer = &Analyzer{
	Name:      "atomicfield",
	Doc:       "check that fields accessed via sync/atomic are never read or written non-atomically",
	RunGlobal: runAtomicField,
}

func runAtomicField(units []*Unit, report func(u *Unit, pos token.Pos, format string, args ...any)) error {
	// Phase 1: collect every field reached through a sync/atomic call, and
	// the selector nodes that form those sanctioned accesses. Loaded
	// packages share one type-checker universe, so field objects compare
	// equal across units.
	atomicFields := make(map[types.Object]token.Pos)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(u.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if !isAtomicAccessor(fn.Name()) || len(call.Args) == 0 {
					return true
				}
				// The address argument is always first: &x.f.
				un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fieldObj := selectedField(u.Info, sel)
				if fieldObj == nil {
					return true
				}
				if _, seen := atomicFields[fieldObj]; !seen {
					atomicFields[fieldObj] = call.Pos()
				}
				sanctioned[sel] = true
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: every other access to those fields is a finding.
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				fieldObj := selectedField(u.Info, sel)
				if fieldObj == nil {
					return true
				}
				if _, atomicOwned := atomicFields[fieldObj]; atomicOwned {
					report(u, sel.Sel.Pos(),
						"field %s is accessed with sync/atomic elsewhere; this non-atomic access races with the atomic users",
						fieldObj.Name())
				}
				return true
			})
		}
	}
	return nil
}

// isAtomicAccessor reports whether name is a sync/atomic function that takes
// the address of the value it manages.
func isAtomicAccessor(name string) bool {
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// selectedField resolves a selector to the struct field it reads, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
