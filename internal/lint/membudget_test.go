package lint

import "testing"

func TestMemBudget(t *testing.T) {
	runFixture(t, MemBudgetAnalyzer, "membudget")
}
