package plan

import (
	"strings"
	"testing"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

func testTables(t *testing.T) (*catalog.Table, *catalog.Table) {
	t.Helper()
	d := storage.NewDiskManager(storage.DefaultIOModel())
	cat := catalog.New(storage.NewBufferPool(d, 64))
	s1 := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "pad", Kind: tuple.KindString},
	)
	s2 := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "v", Kind: tuple.KindInt},
	)
	t1, err := cat.CreateClusteredTable("orders", s1, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := cat.CreateHeapTable("items", s2)
	if err != nil {
		t.Fatal(err)
	}
	return t1, t2
}

func TestScanLabels(t *testing.T) {
	clustered, heapTab := testTables(t)
	s := &Scan{Tab: clustered, Pred: expr.Conjunction{}}
	if got := s.Label(); got != "ClusteredIndexScan(orders)" {
		t.Errorf("label = %q", got)
	}
	pred := expr.And(expr.NewAtom("id", expr.Lt, tuple.Int64(5)))
	s2 := &Scan{Tab: heapTab, Pred: pred}
	if got := s2.Label(); got != "TableScan(items: id < 5)" {
		t.Errorf("label = %q", got)
	}
	r := expr.KeyRange{}
	s3 := &Scan{Tab: clustered, Pred: pred, ClusterRange: &r}
	if !strings.HasPrefix(s3.Label(), "ClusteredIndexRangeScan(") {
		t.Errorf("label = %q", s3.Label())
	}
	if s.Inputs() != nil || s.OutSchema() != clustered.Schema {
		t.Error("Scan Inputs/OutSchema wrong")
	}
}

func TestJoinLabelsAndInputs(t *testing.T) {
	clustered, heapTab := testTables(t)
	outer := &Scan{Tab: clustered, Pred: expr.Conjunction{}}
	inner := &Scan{Tab: heapTab, Pred: expr.Conjunction{}}
	hj := &Join{Method: HashJoin, Outer: outer, Inner: inner, OuterCol: "id", InnerCol: "id",
		Schem: JoinSchema("orders", clustered.Schema, "items", heapTab.Schema)}
	if !strings.HasPrefix(hj.Label(), "HashJoin(") {
		t.Errorf("label = %q", hj.Label())
	}
	if len(hj.Inputs()) != 2 {
		t.Errorf("hash join inputs = %d", len(hj.Inputs()))
	}
	inl := &Join{Method: INLJoin, Outer: outer, OuterCol: "id",
		InnerTab: heapTab, InnerCol: "id",
		InnerIndex: &catalog.Index{Name: "ix", Table: heapTab, Cols: []string{"id"}}}
	if len(inl.Inputs()) != 1 {
		t.Errorf("INL join inputs = %d", len(inl.Inputs()))
	}
	if !strings.Contains(inl.Label(), "IndexNestedLoopsJoin") {
		t.Errorf("label = %q", inl.Label())
	}
}

func TestJoinSchemaQualification(t *testing.T) {
	clustered, heapTab := testTables(t)
	js := JoinSchema("orders", clustered.Schema, "items", heapTab.Schema)
	if js.NumColumns() != 4 {
		t.Fatalf("joined columns = %d", js.NumColumns())
	}
	if _, ok := js.Ordinal("orders.id"); !ok {
		t.Error("orders.id missing")
	}
	if _, ok := js.Ordinal("items.v"); !ok {
		t.Error("items.v missing")
	}
	// A second-level join must not double-qualify.
	js2 := JoinSchema("outer2", js, "items", heapTab.Schema)
	if _, ok := js2.Ordinal("orders.id"); !ok {
		t.Error("nested join re-qualified an already qualified column")
	}
}

func TestResolveColumn(t *testing.T) {
	clustered, heapTab := testTables(t)
	js := JoinSchema("orders", clustered.Schema, "items", heapTab.Schema)
	// Exact qualified match.
	if i, err := ResolveColumn(js, "orders.id"); err != nil || js.Column(i).Name != "orders.id" {
		t.Errorf("qualified resolve: %v %v", i, err)
	}
	// Unique suffix match.
	if i, err := ResolveColumn(js, "pad"); err != nil || js.Column(i).Name != "orders.pad" {
		t.Errorf("suffix resolve: %v %v", i, err)
	}
	// Ambiguous suffix.
	if _, err := ResolveColumn(js, "id"); err == nil {
		t.Error("ambiguous column resolved")
	}
	// Missing.
	if _, err := ResolveColumn(js, "ghost"); err == nil {
		t.Error("missing column resolved")
	}
	// Qualified name against unqualified schema: strip fallback.
	if i, err := ResolveColumn(clustered.Schema, "orders.pad"); err != nil || i != 1 {
		t.Errorf("strip-qualifier resolve: %v %v", i, err)
	}
}

func TestSortAggNodes(t *testing.T) {
	clustered, _ := testTables(t)
	scan := &Scan{Tab: clustered, Pred: expr.Conjunction{}}
	srt := &Sort{Input: scan, Cols: []string{"id"}}
	if srt.Label() != "Sort(id)" || len(srt.Inputs()) != 1 || srt.OutSchema() != scan.OutSchema() {
		t.Errorf("sort node: %q", srt.Label())
	}
	agg := NewAgg(scan, CountAgg, "")
	if agg.Label() != "COUNT(*)" {
		t.Errorf("agg label = %q", agg.Label())
	}
	if agg.OutSchema().NumColumns() != 1 || agg.OutSchema().Column(0).Name != "count" {
		t.Errorf("agg schema = %v", agg.OutSchema())
	}
	agg2 := NewAgg(scan, SumAgg, "id")
	if agg2.Label() != "SUM(id)" {
		t.Errorf("agg2 label = %q", agg2.Label())
	}
	for _, f := range []AggFunc{CountAgg, SumAgg, MinAgg, MaxAgg} {
		if f.String() == "" || strings.HasPrefix(f.String(), "AggFunc") {
			t.Errorf("AggFunc %d has no name", f)
		}
	}
}

func TestFormatTree(t *testing.T) {
	clustered, heapTab := testTables(t)
	outer := &Scan{Tab: clustered, Pred: expr.Conjunction{},
		Estm: Estimates{Rows: 100, Cost: 5 * time.Millisecond}}
	inner := &Scan{Tab: heapTab, Pred: expr.Conjunction{}}
	hj := &Join{Method: MergeJoin, Outer: outer, Inner: inner, OuterCol: "id", InnerCol: "id",
		Schem: JoinSchema("orders", clustered.Schema, "items", heapTab.Schema),
		Estm:  Estimates{Rows: 42, DPC: 7, Cost: 9 * time.Millisecond}}
	agg := NewAgg(hj, CountAgg, "pad")
	out := Format(agg)
	for _, want := range []string{"COUNT(pad)", "MergeJoin", "ClusteredIndexScan(orders)", "dpc=7", "rows=100"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	// Indentation reflects depth.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("formatted %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Error("indentation wrong")
	}
}

func TestJoinMethodString(t *testing.T) {
	if HashJoin.String() != "HashJoin" || MergeJoin.String() != "MergeJoin" ||
		INLJoin.String() != "IndexNestedLoopsJoin" {
		t.Error("join method names wrong")
	}
}
