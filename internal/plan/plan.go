// Package plan defines physical plan trees. The optimizer (internal/opt)
// produces them; the executor (internal/exec) instantiates them as operator
// trees. Keeping the representation in its own package lets both sides — and
// the monitor planner in internal/exec — share it without import cycles.
package plan

import (
	"fmt"
	"strings"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

// Estimates carries the optimizer's predictions for one node; the executor
// echoes them next to the actuals in the statistics output, which is how a
// DBA spots estimation errors (§II-C).
type Estimates struct {
	Rows float64       // output cardinality
	DPC  float64       // distinct data pages fetched (seek/intersect/INL only)
	Cost time.Duration // cumulative simulated cost of the subtree
}

// Node is one physical operator in a plan tree.
type Node interface {
	// Label is a one-line description, e.g. "IndexSeek(sales.ix_state)".
	Label() string
	// Inputs returns the child nodes (empty for leaves).
	Inputs() []Node
	// OutSchema is the schema of the rows the node produces.
	OutSchema() *tuple.Schema
	// Est returns the optimizer's estimates for this node.
	Est() *Estimates
}

// JoinMethod selects the physical join algorithm.
type JoinMethod uint8

// Supported join methods.
const (
	HashJoin JoinMethod = iota
	MergeJoin
	INLJoin
)

// String returns the display name of the method.
func (m JoinMethod) String() string {
	switch m {
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case INLJoin:
		return "IndexNestedLoopsJoin"
	default:
		return fmt.Sprintf("JoinMethod(%d)", uint8(m))
	}
}

// Scan reads a table's data pages in physical order (heap scan or clustered
// index scan) and applies Pred inside the storage engine with
// short-circuiting. When ClusterRange is set, only the clustered-key range
// is read (a clustered index range seek) — still a scan plan with the
// grouped page access property.
type Scan struct {
	Tab          *catalog.Table
	Pred         expr.Conjunction // bound to Tab.Schema
	ClusterRange *expr.KeyRange   // nil = full scan
	Estm         Estimates
}

// Label implements Node.
func (s *Scan) Label() string {
	kind := "TableScan"
	if s.Tab.Kind == catalog.KindClustered {
		kind = "ClusteredIndexScan"
		if s.ClusterRange != nil {
			kind = "ClusteredIndexRangeScan"
		}
	}
	if s.Pred.Empty() {
		return fmt.Sprintf("%s(%s)", kind, s.Tab.Name)
	}
	return fmt.Sprintf("%s(%s: %s)", kind, s.Tab.Name, s.Pred)
}

// Inputs implements Node.
func (s *Scan) Inputs() []Node { return nil }

// OutSchema implements Node.
func (s *Scan) OutSchema() *tuple.Schema { return s.Tab.Schema }

// Est implements Node.
func (s *Scan) Est() *Estimates { return &s.Estm }

// CoveringScan reads every leaf of a secondary index whose key columns cover
// the query, applying Pred to the index columns. No table pages are touched.
type CoveringScan struct {
	Tab   *catalog.Table
	Index *catalog.Index
	Pred  expr.Conjunction // bound to the index schema
	Schem *tuple.Schema    // index columns as a schema
	Estm  Estimates
}

// Label implements Node.
func (s *CoveringScan) Label() string {
	return fmt.Sprintf("CoveringIndexScan(%s.%s: %s)", s.Tab.Name, s.Index.Name, s.Pred)
}

// Inputs implements Node.
func (s *CoveringScan) Inputs() []Node { return nil }

// OutSchema implements Node.
func (s *CoveringScan) OutSchema() *tuple.Schema { return s.Schem }

// Est implements Node.
func (s *CoveringScan) Est() *Estimates { return &s.Estm }

// Seek looks up Index over Ranges, then fetches qualifying rows from the
// table and applies the full predicate. The fetch is the random-I/O step
// whose cost is DPC × random-read time.
type Seek struct {
	Tab    *catalog.Table
	Index  *catalog.Index
	Ranges []expr.KeyRange
	Pred   expr.Conjunction // full predicate, bound to Tab.Schema
	Estm   Estimates
}

// Label implements Node.
func (s *Seek) Label() string {
	return fmt.Sprintf("IndexSeek(%s.%s: %s)", s.Tab.Name, s.Index.Name, s.Pred)
}

// Inputs implements Node.
func (s *Seek) Inputs() []Node { return nil }

// OutSchema implements Node.
func (s *Seek) OutSchema() *tuple.Schema { return s.Tab.Schema }

// Est implements Node.
func (s *Seek) Est() *Estimates { return &s.Estm }

// Intersect looks up two indexes, intersects the RID sets, then fetches the
// surviving rows and applies the full predicate.
type Intersect struct {
	Tab     *catalog.Table
	IndexA  *catalog.Index
	RangesA []expr.KeyRange
	IndexB  *catalog.Index
	RangesB []expr.KeyRange
	Pred    expr.Conjunction
	Estm    Estimates
}

// Label implements Node.
func (s *Intersect) Label() string {
	return fmt.Sprintf("IndexIntersection(%s: %s ∩ %s)", s.Tab.Name, s.IndexA.Name, s.IndexB.Name)
}

// Inputs implements Node.
func (s *Intersect) Inputs() []Node { return nil }

// OutSchema implements Node.
func (s *Intersect) OutSchema() *tuple.Schema { return s.Tab.Schema }

// Est implements Node.
func (s *Intersect) Est() *Estimates { return &s.Estm }

// Join combines two inputs on OuterCol = InnerCol.
//
// For HashJoin and MergeJoin, Outer and Inner are both plan subtrees; the
// join runs in the relational engine. For INLJoin, Inner must be a *Seek-
// shaped access: the join seeks InnerIndex once per outer row, so the node
// stores the inner table/index directly and InnerPred is the residual
// selection applied after the join (per §IV, selection predicates on the
// inner of an INL join are evaluated after the fetch).
type Join struct {
	Method   JoinMethod
	Outer    Node
	Inner    Node // nil for INLJoin
	OuterCol string

	// INLJoin only:
	InnerTab   *catalog.Table
	InnerIndex *catalog.Index
	InnerPred  expr.Conjunction // residual predicate on the inner table
	InnerCol   string

	// SortOuter/SortInner request an explicit Sort on the corresponding
	// input of a MergeJoin (when the input is not already in join-column
	// order).
	SortOuter, SortInner bool

	Schem *tuple.Schema
	Estm  Estimates
}

// Label implements Node.
func (j *Join) Label() string {
	if j.Method == INLJoin {
		return fmt.Sprintf("%s(outer.%s = %s.%s via %s)", j.Method, j.OuterCol,
			j.InnerTab.Name, j.InnerCol, j.InnerIndex.Name)
	}
	return fmt.Sprintf("%s(outer.%s = inner.%s)", j.Method, j.OuterCol, j.InnerCol)
}

// Inputs implements Node.
func (j *Join) Inputs() []Node {
	if j.Method == INLJoin {
		return []Node{j.Outer}
	}
	return []Node{j.Outer, j.Inner}
}

// OutSchema implements Node.
func (j *Join) OutSchema() *tuple.Schema { return j.Schem }

// Est implements Node.
func (j *Join) Est() *Estimates { return &j.Estm }

// JoinSchema builds the output schema of a join: outer columns then inner
// columns, each qualified as "table.column" to keep names unique. When the
// same table appears on both sides (a self-join shape), the colliding
// names gain a "#2", "#3", ... suffix rather than panicking the schema
// constructor.
func JoinSchema(outerName string, outer *tuple.Schema, innerName string, inner *tuple.Schema) *tuple.Schema {
	var cols []tuple.Column
	seen := map[string]int{}
	add := func(table string, c tuple.Column) {
		name := qualify(table, c.Name)
		key := strings.ToLower(name)
		seen[key]++
		if n := seen[key]; n > 1 {
			name = fmt.Sprintf("%s#%d", name, n)
		}
		cols = append(cols, tuple.Column{Name: name, Kind: c.Kind})
	}
	for i := 0; i < outer.NumColumns(); i++ {
		add(outerName, outer.Column(i))
	}
	for i := 0; i < inner.NumColumns(); i++ {
		add(innerName, inner.Column(i))
	}
	return tuple.NewSchema(cols...)
}

func qualify(table, col string) string {
	if strings.Contains(col, ".") {
		return col // already qualified by a lower join
	}
	return table + "." + col
}

// ResolveColumn finds a column in a (possibly join-qualified) schema: an
// exact match first, then a unique ".col" suffix match.
func ResolveColumn(s *tuple.Schema, name string) (int, error) {
	if i, ok := s.Ordinal(name); ok {
		return i, nil
	}
	suffix := "." + strings.ToLower(name)
	found := -1
	for i := 0; i < s.NumColumns(); i++ {
		if strings.HasSuffix(strings.ToLower(s.Column(i).Name), suffix) {
			if found >= 0 {
				return 0, fmt.Errorf("plan: column %q is ambiguous", name)
			}
			found = i
		}
	}
	if found < 0 {
		// A qualified name against an unqualified schema (single-table
		// plan): strip the qualifier and retry the exact match.
		if dot := strings.LastIndex(name, "."); dot >= 0 {
			if i, ok := s.Ordinal(name[dot+1:]); ok {
				return i, nil
			}
		}
		return 0, fmt.Errorf("plan: no column %q", name)
	}
	return found, nil
}

// Sort orders its input by the given columns (all ascending, or all
// descending when Desc is set).
type Sort struct {
	Input Node
	Cols  []string
	Desc  bool
	Estm  Estimates
}

// Label implements Node.
func (s *Sort) Label() string {
	dir := ""
	if s.Desc {
		dir = " DESC"
	}
	return "Sort(" + strings.Join(s.Cols, ", ") + dir + ")"
}

// Inputs implements Node.
func (s *Sort) Inputs() []Node { return []Node{s.Input} }

// OutSchema implements Node.
func (s *Sort) OutSchema() *tuple.Schema { return s.Input.OutSchema() }

// Est implements Node.
func (s *Sort) Est() *Estimates { return &s.Estm }

// Project narrows its input to the named columns, in order.
type Project struct {
	Input Node
	Cols  []string
	Schem *tuple.Schema
	Estm  Estimates
}

// NewProject builds a projection node, resolving the columns (which may be
// join-qualified) against the input schema.
func NewProject(input Node, cols []string) (*Project, error) {
	in := input.OutSchema()
	out := make([]tuple.Column, len(cols))
	for i, c := range cols {
		ord, err := ResolveColumn(in, c)
		if err != nil {
			return nil, err
		}
		out[i] = in.Column(ord)
	}
	return &Project{Input: input, Cols: cols, Schem: tuple.NewSchema(out...)}, nil
}

// Label implements Node.
func (p *Project) Label() string { return "Project(" + strings.Join(p.Cols, ", ") + ")" }

// Inputs implements Node.
func (p *Project) Inputs() []Node { return []Node{p.Input} }

// OutSchema implements Node.
func (p *Project) OutSchema() *tuple.Schema { return p.Schem }

// Est implements Node.
func (p *Project) Est() *Estimates { return &p.Estm }

// Limit passes through at most N rows.
type Limit struct {
	Input Node
	N     int
	Estm  Estimates
}

// Label implements Node.
func (l *Limit) Label() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Inputs implements Node.
func (l *Limit) Inputs() []Node { return []Node{l.Input} }

// OutSchema implements Node.
func (l *Limit) OutSchema() *tuple.Schema { return l.Input.OutSchema() }

// Est implements Node.
func (l *Limit) Est() *Estimates { return &l.Estm }

// AggFunc is an aggregate function.
type AggFunc uint8

// Supported aggregates.
const (
	CountAgg AggFunc = iota // COUNT(col) / COUNT(*)
	SumAgg
	MinAgg
	MaxAgg
)

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case CountAgg:
		return "COUNT"
	case SumAgg:
		return "SUM"
	case MinAgg:
		return "MIN"
	case MaxAgg:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// Agg computes one ungrouped aggregate over its input (the shape of every
// query in the paper's workloads).
type Agg struct {
	Input Node
	Func  AggFunc
	Col   string // "" means COUNT(*)
	Schem *tuple.Schema
	Estm  Estimates
}

// NewAgg builds an aggregate node with its single-column output schema.
func NewAgg(input Node, f AggFunc, col string) *Agg {
	name := strings.ToLower(f.String())
	return &Agg{
		Input: input, Func: f, Col: col,
		Schem: tuple.NewSchema(tuple.Column{Name: name, Kind: tuple.KindInt}),
	}
}

// Label implements Node.
func (a *Agg) Label() string {
	col := a.Col
	if col == "" {
		col = "*"
	}
	return fmt.Sprintf("%s(%s)", a.Func, col)
}

// Inputs implements Node.
func (a *Agg) Inputs() []Node { return []Node{a.Input} }

// OutSchema implements Node.
func (a *Agg) OutSchema() *tuple.Schema { return a.Schem }

// Est implements Node.
func (a *Agg) Est() *Estimates { return &a.Estm }

// GroupAgg computes one aggregate per distinct value of a group column,
// emitting (group value, aggregate) rows in group-value order.
type GroupAgg struct {
	Input    Node
	GroupCol string
	Func     AggFunc
	AggCol   string // "" = COUNT(*)
	Schem    *tuple.Schema
	Estm     Estimates
}

// NewGroupAgg builds the node, resolving the group column against the input
// schema to type the output.
func NewGroupAgg(input Node, groupCol string, f AggFunc, aggCol string) (*GroupAgg, error) {
	in := input.OutSchema()
	ord, err := ResolveColumn(in, groupCol)
	if err != nil {
		return nil, err
	}
	gcol := in.Column(ord)
	return &GroupAgg{
		Input: input, GroupCol: groupCol, Func: f, AggCol: aggCol,
		Schem: tuple.NewSchema(
			tuple.Column{Name: gcol.Name, Kind: gcol.Kind},
			tuple.Column{Name: strings.ToLower(f.String()), Kind: tuple.KindInt},
		),
	}, nil
}

// Label implements Node.
func (g *GroupAgg) Label() string {
	col := g.AggCol
	if col == "" {
		col = "*"
	}
	return fmt.Sprintf("GroupAgg(%s, %s(%s))", g.GroupCol, g.Func, col)
}

// Inputs implements Node.
func (g *GroupAgg) Inputs() []Node { return []Node{g.Input} }

// OutSchema implements Node.
func (g *GroupAgg) OutSchema() *tuple.Schema { return g.Schem }

// Est implements Node.
func (g *GroupAgg) Est() *Estimates { return &g.Estm }

// Format renders the plan tree indented, one node per line, with estimates.
func Format(n Node) string {
	var b strings.Builder
	format(&b, n, 0)
	return b.String()
}

func format(b *strings.Builder, n Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Label())
	e := n.Est()
	if e.Rows > 0 || e.Cost > 0 {
		fmt.Fprintf(b, "  [rows=%.0f", e.Rows)
		if e.DPC > 0 {
			fmt.Fprintf(b, " dpc=%.0f", e.DPC)
		}
		fmt.Fprintf(b, " cost=%v]", e.Cost.Round(time.Microsecond))
	}
	b.WriteByte('\n')
	for _, c := range n.Inputs() {
		format(b, c, depth+1)
	}
}
