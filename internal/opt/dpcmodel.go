package opt

import "math"

// The analytical distinct-page-count models today's optimizers use ([10],
// [6], [18]). Both assume qualifying rows are scattered uniformly at random
// across the table's pages — i.e., independence between the predicate column
// and the on-disk clustering order. When the column correlates with the
// clustering key (data loaded by date, for example), the true count can be
// smaller by orders of magnitude, which is precisely the estimation error
// the paper's execution feedback corrects.

// CardenasPages is Cardenas' formula: the expected number of distinct pages
// touched when n rows are drawn uniformly (with replacement across rows)
// from a table of p pages:
//
//	E[pages] = p × (1 − (1 − 1/p)^n)
func CardenasPages(n, p float64) float64 {
	if p <= 0 || n <= 0 {
		return 0
	}
	return p * (1 - math.Pow(1-1/p, n))
}

// YaoPages is Yao's refinement for sampling n distinct rows without
// replacement from r rows on p pages (r/p rows per page):
//
//	E[pages] = p × (1 − C(r−r/p, n) / C(r, n))
//
// computed in log space to avoid overflow. It converges to Cardenas for
// n ≪ r and is the form used in System R-era cost models.
func YaoPages(n, r, p float64) float64 {
	if p <= 0 || n <= 0 || r <= 0 {
		return 0
	}
	if n >= r {
		return p
	}
	m := r / p // rows per page
	// log C(r-m, n) - log C(r, n) = Σ_{i=0}^{n-1} log((r-m-i)/(r-i))
	// For large n this sum is expensive; use the product form with early
	// exit once the remaining factor underflows.
	logFrac := 0.0
	for i := 0.0; i < n; i++ {
		num := r - m - i
		if num <= 0 {
			return p // every page certainly touched
		}
		logFrac += math.Log(num / (r - i))
		if logFrac < -40 { // e^-40 ~ 0: all pages touched
			return p
		}
	}
	return p * (1 - math.Exp(logFrac))
}

// MackertLohmanINL estimates the distinct inner pages fetched by an index
// nested loops join performing k probes that touch n matching inner rows in
// total, against an inner table of r rows on p pages, following the
// validated model of Mackert & Lohman [10]: the page count is the Yao/
// Cardenas estimate for the n distinct matching rows (an LRU buffer at
// least that large makes re-fetches logical, not physical).
func MackertLohmanINL(n, r, p float64) float64 {
	return YaoPages(math.Min(n, r), r, p)
}
