package opt

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/core"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// Query is a parsed single-table or two-table join query of the shape the
// paper's workloads use:
//
//	SELECT <agg>(<col>) FROM t [, t2] WHERE <conjuncts> [AND t.jc = t2.jc]
type Query struct {
	Table string
	Pred  expr.Conjunction // selection on Table

	// Aggregate form: Agg/AggCol (when Star and SelectCols are unset).
	Agg    plan.AggFunc
	AggCol string // "" = COUNT(*)

	// Projection form: SELECT * or an explicit column list, with optional
	// ORDER BY and LIMIT.
	Star       bool
	SelectCols []string
	OrderBy    string
	OrderDesc  bool
	Limit      int // 0 = unlimited

	// Grouped form: SELECT <GroupBy>, AGG(AggCol) ... GROUP BY <GroupBy>.
	GroupBy string

	// Join part (nil Table2 means single-table).
	Table2   string
	Pred2    expr.Conjunction // selection on Table2
	JoinCol  string           // column of Table
	JoinCol2 string           // column of Table2

	// TemplateKey memoizes the query's structural key (sql.QueryKey) when
	// the query came from a prepared template: the shape never changes
	// across bindings, so per-execution consumers (the plan cache) can skip
	// re-rendering it. Empty means not memoized.
	TemplateKey string
}

// IsJoin reports whether the query joins two tables.
func (q *Query) IsJoin() bool { return q.Table2 != "" }

// IsProjection reports whether the query returns rows rather than one
// aggregate.
func (q *Query) IsProjection() bool {
	return (q.Star || len(q.SelectCols) > 0) && q.GroupBy == ""
}

// IsGrouped reports whether the query aggregates per group.
func (q *Query) IsGrouped() bool { return q.GroupBy != "" }

// Optimizer chooses plans using table statistics, the analytical DPC model,
// and a cost model driven by the same I/O constants as the simulated disk.
// Injected cardinalities and page counts override the analytical estimates —
// the interface through which execution feedback re-enters optimization
// (§V-A).
//
// Concurrency: mu guards every map. Exported methods lock (planning and
// estimation take the read lock, feedback mutations the write lock);
// unexported helpers assume the caller holds it. Every feedback mutation
// also fires the invalidation hook, so the engine's plan cache learns that
// plans costed under the old statistics are stale.
type Optimizer struct {
	cat       *catalog.Catalog
	io        storage.IOModel
	cpuPerRow time.Duration

	mu sync.RWMutex
	// hook, when set, is called (with mu held) after each feedback
	// mutation with the affected table name, or "" for whole-optimizer
	// mutations that invalidate everything.
	hook func(table string)

	stats   map[string]*TableStats
	cardInj map[string]float64 // canonical (table, pred) -> rows
	dpcInj  map[string]float64 // canonical (table, pred) -> pages
	joinDPC map[string]float64 // lower(table)|lower(joincol) -> pages
	// dpcHist holds the self-tuning page-count histograms (§VI future
	// work, implemented here): one per (table, column), fed by
	// RecordDPCObservation and consulted for single-column range
	// predicates that have no exact injection.
	dpcHist map[string]*core.DPCHistogram
	// joinCurve holds the learned join-DPC curves (§VI's page-count
	// statistics over join expressions): one per (inner table, join
	// column), mapping matching inner rows to distinct pages.
	joinCurve map[string]*core.JoinDPCCurve
}

// New creates an optimizer over cat with the given device and CPU model.
func New(cat *catalog.Catalog, io storage.IOModel, cpuPerRow time.Duration) *Optimizer {
	return &Optimizer{
		cat: cat, io: io, cpuPerRow: cpuPerRow,
		stats:     make(map[string]*TableStats),
		cardInj:   make(map[string]float64),
		dpcInj:    make(map[string]float64),
		joinDPC:   make(map[string]float64),
		dpcHist:   make(map[string]*core.DPCHistogram),
		joinCurve: make(map[string]*core.JoinDPCCurve),
	}
}

// SetInvalidationHook registers fn to be called after every feedback
// mutation with the affected table name ("" = everything). The engine uses
// it to bump plan-cache epochs; the hook must not call back into the
// optimizer (it runs under the optimizer's lock).
func (o *Optimizer) SetInvalidationHook(fn func(table string)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.hook = fn
}

// invalidate fires the hook. Callers hold mu; the hook runs after the
// mutation it reports, so a concurrent planner either sees the old state
// with the old epoch (and its entry is invalidated by the bump) or the new
// state — never new-epoch-with-old-state.
func (o *Optimizer) invalidate(table string) {
	if o.hook != nil {
		o.hook(table)
	}
}

// AnalyzeTable builds (or rebuilds) statistics for a table.
func (o *Optimizer) AnalyzeTable(name string) error {
	tab, ok := o.cat.Table(name)
	if !ok {
		return fmt.Errorf("opt: no table %q", name)
	}
	// The statistics scan is slow; run it before taking the lock.
	ts, err := Analyze(tab)
	if err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stats[strings.ToLower(name)] = ts
	o.invalidate(name)
	return nil
}

// TableStats returns the statistics for a table, if analyzed. The returned
// statistics are immutable (AnalyzeTable replaces the pointer wholesale).
func (o *Optimizer) TableStats(name string) (*TableStats, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ts, ok := o.stats[strings.ToLower(name)]
	return ts, ok
}

// InjectCardinality forces the row estimate for (table, pred) — the
// paper's methodology injects exact cardinalities first, isolating DPC as
// the variable (§V-B).
func (o *Optimizer) InjectCardinality(table string, pred expr.Conjunction, rows float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cardInj[core.Key(table, pred)] = rows
	o.invalidate(table)
}

// InjectDPC forces the distinct-page-count estimate for (table, pred),
// typically with a value obtained from execution feedback.
func (o *Optimizer) InjectDPC(table string, pred expr.Conjunction, pages float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dpcInj[core.Key(table, pred)] = pages
	o.invalidate(table)
}

// InjectJoinDPC forces the distinct page count of (table, join column) for
// INL-join costing with table as the inner relation.
func (o *Optimizer) InjectJoinDPC(table, joinCol string, pages float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.joinDPC[strings.ToLower(table)+"|"+strings.ToLower(joinCol)] = pages
	o.invalidate(table)
}

// HasInjectedDPC reports whether an exact fed-back page count is currently
// injected for (table, pred).
func (o *Optimizer) HasInjectedDPC(table string, pred expr.Conjunction) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.dpcInj[core.Key(table, pred)]
	return ok
}

// ClearInjections drops all injected values. Self-tuning DPC histograms
// survive: they are learned statistics, not per-query hints.
func (o *Optimizer) ClearInjections() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cardInj = make(map[string]float64)
	o.dpcInj = make(map[string]float64)
	o.joinDPC = make(map[string]float64)
	o.invalidate("")
}

// ClearDPCHistograms drops the learned page-count histograms and join
// curves.
func (o *Optimizer) ClearDPCHistograms() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dpcHist = make(map[string]*core.DPCHistogram)
	o.joinCurve = make(map[string]*core.JoinDPCCurve)
	o.invalidate("")
}

// DropTableFeedback removes every learned statistic and injection for the
// table: exact injections, page-count histograms, and join curves. Call it
// when the table's data changes — stale page counts are worse than the
// analytical model, because they carry false confidence.
func (o *Optimizer) DropTableFeedback(table string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	defer o.invalidate(table)
	prefix := strings.ToLower(table) + "|"
	for _, m := range []map[string]float64{o.cardInj, o.dpcInj, o.joinDPC} {
		for k := range m {
			if strings.HasPrefix(k, prefix) {
				delete(m, k)
			}
		}
	}
	for k := range o.dpcHist {
		if strings.HasPrefix(k, prefix) {
			delete(o.dpcHist, k)
		}
	}
	for k := range o.joinCurve {
		if strings.HasPrefix(k, prefix) {
			delete(o.joinCurve, k)
		}
	}
}

// RecordJoinDPCObservation feeds one observed (matching inner rows, DPC)
// point into the join curve for (inner table, join column).
func (o *Optimizer) RecordJoinDPCObservation(table, joinCol string, matchRows, dpc int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	defer o.invalidate(table)
	key := strings.ToLower(table) + "|" + strings.ToLower(joinCol)
	c := o.joinCurve[key]
	if c == nil {
		c = core.NewJoinDPCCurve()
		o.joinCurve[key] = c
	}
	c.Add(core.JoinDPCPoint{Rows: matchRows, DPC: dpc})
}

// JoinDPCCurve returns the learned curve for (table, joinCol), if any.
func (o *Optimizer) JoinDPCCurve(table, joinCol string) (*core.JoinDPCCurve, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	c, ok := o.joinCurve[strings.ToLower(table)+"|"+strings.ToLower(joinCol)]
	return c, ok
}

// joinPages resolves the DPC for an INL join fetching matchRows rows from
// the inner table: exact injection first, then the learned curve, then the
// Mackert-Lohman analytical model.
func (o *Optimizer) joinPages(table, joinCol string, matchRows float64, ts *TableStats) float64 {
	if v, ok := o.joinDPC[strings.ToLower(table)+"|"+strings.ToLower(joinCol)]; ok {
		return v
	}
	// Direct map access, not JoinDPCCurve: the caller holds mu.
	if c, ok := o.joinCurve[strings.ToLower(table)+"|"+strings.ToLower(joinCol)]; ok {
		if est, eok := c.Estimate(matchRows, ts.Pages); eok {
			return est
		}
	}
	return MackertLohmanINL(matchRows, float64(ts.Rows), float64(ts.Pages))
}

// RecordDPCObservation feeds one observed (column range, rows, DPC) fact
// into the table/column's self-tuning page-count histogram. Open-ended
// ranges are clipped to the column's observed min/max so overlap weighting
// stays meaningful.
func (o *Optimizer) RecordDPCObservation(table, col string, lo, hi int64, rows, dpc int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	defer o.invalidate(table)
	ts, ok := o.stats[strings.ToLower(table)]
	if ok {
		if cs, err := ts.Column(col); err == nil && cs.Hist != nil && cs.Hist.Total > 0 &&
			cs.Hist.Min.Kind != tuple.KindString {
			if lo < cs.Hist.Min.Int {
				lo = cs.Hist.Min.Int
			}
			if hi > cs.Hist.Max.Int {
				hi = cs.Hist.Max.Int
			}
		}
	}
	key := strings.ToLower(table) + "|" + strings.ToLower(col)
	h := o.dpcHist[key]
	if h == nil {
		h = core.NewDPCHistogram()
		o.dpcHist[key] = h
	}
	h.Add(core.DPCObservation{Lo: lo, Hi: hi, Rows: rows, DPC: dpc})
}

// DPCHistogram returns the learned histogram for (table, col), if any.
func (o *Optimizer) DPCHistogram(table, col string) (*core.DPCHistogram, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	h, ok := o.dpcHist[strings.ToLower(table)+"|"+strings.ToLower(col)]
	return h, ok
}

// EstimateCardinality returns the optimizer's row estimate for (table,
// pred), honoring injections. It is the value a DBA compares against the
// actual cardinality in the statistics output.
func (o *Optimizer) EstimateCardinality(table string, pred expr.Conjunction) (float64, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ts, ok := o.stats[strings.ToLower(table)]
	if !ok {
		return 0, fmt.Errorf("opt: table %q not analyzed", table)
	}
	return o.cardinality(table, ts, pred), nil
}

// EstimateDPC returns the optimizer's distinct-page-count estimate for
// (table, pred), honoring injections — the "estimated" half of the paper's
// estimated-vs-actual diagnostic.
func (o *Optimizer) EstimateDPC(table string, pred expr.Conjunction) (float64, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ts, ok := o.stats[strings.ToLower(table)]
	if !ok {
		return 0, fmt.Errorf("opt: table %q not analyzed", table)
	}
	rows := o.cardinality(table, ts, pred)
	return o.estimateDPC(table, ts, pred, rows), nil
}

// EstimateINLDPC returns the optimizer's estimate of the distinct pages of
// inner fetched by an INL join probing with outerRows rows, honoring an
// injected join DPC.
func (o *Optimizer) EstimateINLDPC(inner, innerCol string, outerRows float64) (float64, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ts, ok := o.stats[strings.ToLower(inner)]
	if !ok {
		return 0, fmt.Errorf("opt: table %q not analyzed", inner)
	}
	matchRows := outerRows * float64(ts.Rows) / math.Max(float64(ts.DistinctValues(innerCol)), 1)
	return o.joinPages(inner, innerCol, matchRows, ts), nil
}

// cardinality estimates qualifying rows for (table, pred), preferring an
// injected value.
func (o *Optimizer) cardinality(table string, ts *TableStats, pred expr.Conjunction) float64 {
	if v, ok := o.cardInj[core.Key(table, pred)]; ok {
		return v
	}
	return ts.Selectivity(pred) * float64(ts.Rows)
}

// estimateDPC estimates the distinct pages containing rows that satisfy
// pred. Precedence: an injected (fed-back) exact value; then the
// self-tuning page-count histogram, when the predicate is a range on a
// column with feedback history; then the analytical Yao model.
func (o *Optimizer) estimateDPC(table string, ts *TableStats, pred expr.Conjunction, rows float64) float64 {
	if v, ok := o.dpcInj[core.Key(table, pred)]; ok {
		return v
	}
	if col, lo, hi, ok := predValueRange(pred); ok {
		// Direct map access, not DPCHistogram: the caller holds mu.
		if h, hok := o.dpcHist[strings.ToLower(table)+"|"+strings.ToLower(col)]; hok {
			if est, eok := h.EstimateRange(lo, hi, rows, ts.RowsPerPage, ts.Pages); eok {
				return est
			}
		}
	}
	return YaoPages(rows, float64(ts.Rows), float64(ts.Pages))
}

// predValueRange extracts the combined numeric value range of a predicate
// that constrains exactly one column with range-convertible atoms.
func predValueRange(pred expr.Conjunction) (col string, lo, hi int64, ok bool) {
	cols := pred.Columns()
	if len(cols) != 1 || len(pred.Atoms) == 0 {
		return "", 0, 0, false
	}
	lo, hi = math.MinInt64, math.MaxInt64
	for _, a := range pred.Atoms {
		alo, ahi, aok := core.ObservationFromAtomRange(a.Op.String(), a.Val, a.Val2)
		if !aok {
			return "", 0, 0, false
		}
		if alo > lo {
			lo = alo
		}
		if ahi < hi {
			hi = ahi
		}
	}
	if hi < lo {
		return "", 0, 0, false
	}
	return cols[0], lo, hi, true
}

// --- cost model -------------------------------------------------------

// seqCost is the simulated time to read n pages sequentially.
func (o *Optimizer) seqCost(pages float64) time.Duration {
	return time.Duration(pages * float64(o.io.SeqRead))
}

// randCost is the simulated time for n random page reads.
func (o *Optimizer) randCost(pages float64) time.Duration {
	return time.Duration(pages * float64(o.io.RandomRead))
}

// cpuCost is the simulated CPU time to process n rows.
func (o *Optimizer) cpuCost(rows float64) time.Duration {
	return time.Duration(rows * float64(o.cpuPerRow))
}

// scanCost: one seek + sequential read of all data pages + CPU on all rows.
func (o *Optimizer) scanCost(ts *TableStats) time.Duration {
	return o.io.RandomRead + o.seqCost(float64(ts.Pages)-1) + o.cpuCost(float64(ts.Rows))
}

// seekCost: descend the index, read the qualifying leaf fraction, then one
// random fetch per distinct data page plus CPU per fetched row.
func (o *Optimizer) seekCost(ix *catalog.Index, matchRows, dpc float64, ts *TableStats) time.Duration {
	leafFrac := matchRows / math.Max(float64(ts.Rows), 1)
	leafPages := leafFrac * float64(ix.LeafPages())
	c := o.randCost(float64(ix.Height())) // root-to-leaf descent
	c += o.seqCost(leafPages)
	c += o.randCost(dpc)
	c += o.cpuCost(matchRows)
	return c
}

// --- single-table planning --------------------------------------------

// candidate is one costed access path.
type candidate struct {
	node plan.Node
	cost time.Duration
}

// OptimizeSingle picks the cheapest access path for a single-table query
// and wraps it in the query's output shape (aggregate, or
// projection/order/limit).
func (o *Optimizer) OptimizeSingle(q *Query) (plan.Node, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.optimizeSingle(q)
}

func (o *Optimizer) optimizeSingle(q *Query) (plan.Node, error) {
	need, err := o.neededColumns(q)
	if err != nil {
		return nil, err
	}
	access, err := o.accessPathCovering(q.Table, q.Pred, need)
	if err != nil {
		return nil, err
	}
	return o.finish(q, access)
}

// neededColumns lists every column the query's output shape requires from
// the access path (predicate columns are implicit in covering checks).
func (o *Optimizer) neededColumns(q *Query) ([]string, error) {
	need := q.Pred.Columns()
	switch {
	case q.Star:
		tab, ok := o.cat.Table(q.Table)
		if !ok {
			return nil, fmt.Errorf("opt: no table %q", q.Table)
		}
		for _, c := range tab.Schema.Columns() {
			need = append(need, c.Name)
		}
	case len(q.SelectCols) > 0:
		need = append(need, q.SelectCols...)
	case q.AggCol != "":
		need = append(need, q.AggCol)
	}
	if q.IsGrouped() && q.AggCol != "" {
		need = append(need, q.AggCol)
	}
	if q.OrderBy != "" {
		need = append(need, q.OrderBy)
	}
	if q.GroupBy != "" {
		need = append(need, q.GroupBy)
	}
	return need, nil
}

// finish wraps the body (access path or join) in the query's output shape.
func (o *Optimizer) finish(q *Query, body plan.Node) (plan.Node, error) {
	if q.IsGrouped() {
		g, err := plan.NewGroupAgg(body, q.GroupBy, q.Agg, q.AggCol)
		if err != nil {
			return nil, err
		}
		g.Estm = plan.Estimates{Rows: body.Est().Rows / 10, Cost: body.Est().Cost}
		var node plan.Node = g
		if q.Limit > 0 {
			l := &plan.Limit{Input: node, N: q.Limit}
			l.Estm = g.Estm
			node = l
		}
		return node, nil
	}
	if !q.IsProjection() {
		agg := plan.NewAgg(body, q.Agg, q.AggCol)
		agg.Estm = plan.Estimates{Rows: 1, Cost: body.Est().Cost}
		return agg, nil
	}
	node := body
	if q.OrderBy != "" {
		s := &plan.Sort{Input: node, Cols: []string{q.OrderBy}, Desc: q.OrderDesc}
		s.Estm = plan.Estimates{
			Rows: node.Est().Rows,
			Cost: node.Est().Cost + o.cpuCost(node.Est().Rows*math.Log2(math.Max(node.Est().Rows, 2))),
		}
		node = s
	}
	// The limit goes below the projection (they commute): the projection then
	// materializes only the rows that survive it, which matters to the batch
	// executor — a projection under the limit processes whole batches, so
	// putting it above keeps the work (and the CPU accounting) identical to
	// the row-at-a-time path.
	if q.Limit > 0 {
		l := &plan.Limit{Input: node, N: q.Limit}
		l.Estm = plan.Estimates{Rows: math.Min(float64(q.Limit), node.Est().Rows), Cost: node.Est().Cost}
		node = l
	}
	cols := q.SelectCols
	if q.Star {
		s := node.OutSchema()
		cols = make([]string, s.NumColumns())
		for i := range cols {
			cols[i] = s.Column(i).Name
		}
	}
	p, err := plan.NewProject(node, cols)
	if err != nil {
		return nil, err
	}
	p.Estm = plan.Estimates{Rows: node.Est().Rows, Cost: node.Est().Cost}
	return p, nil
}

// accessPathCovering extends accessPath with covering index scans: when an
// index's key columns contain every column the query needs, scanning the
// (narrower) index replaces touching the table at all — the "Scan of a
// Covering Index" plan of §III.
func (o *Optimizer) accessPathCovering(table string, pred expr.Conjunction, needCols []string) (plan.Node, error) {
	base, err := o.accessPath(table, pred)
	if err != nil {
		return nil, err
	}
	tab, _ := o.cat.Table(table)
	ts := o.stats[strings.ToLower(table)]
	rows := o.cardinality(table, ts, pred)
	best := base
	for _, ix := range tab.Indexes() {
		if !ix.Covers(needCols) {
			continue
		}
		ixSchema, err := indexSchema(tab, ix)
		if err != nil {
			continue
		}
		bound, err := pred.Bind(ixSchema)
		if err != nil {
			continue
		}
		cost := o.io.RandomRead + o.seqCost(float64(ix.LeafPages())-1) +
			o.cpuCost(float64(ts.Rows))
		if cost >= best.Est().Cost {
			continue
		}
		node := &plan.CoveringScan{Tab: tab, Index: ix, Pred: bound, Schem: ixSchema}
		node.Estm = plan.Estimates{Rows: rows, Cost: cost}
		best = node
	}
	return best, nil
}

// indexSchema builds the schema of an index's key columns.
func indexSchema(tab *catalog.Table, ix *catalog.Index) (*tuple.Schema, error) {
	cols := make([]tuple.Column, len(ix.Cols))
	for i, c := range ix.Cols {
		ord, ok := tab.Schema.Ordinal(c)
		if !ok {
			return nil, fmt.Errorf("opt: index column %q missing", c)
		}
		cols[i] = tab.Schema.Column(ord)
	}
	return tuple.NewSchema(cols...), nil
}

// accessPath enumerates Scan, IndexSeek (per usable index), and
// IndexIntersection (per usable index pair) and returns the cheapest.
func (o *Optimizer) accessPath(table string, pred expr.Conjunction) (plan.Node, error) {
	tab, ok := o.cat.Table(table)
	if !ok {
		return nil, fmt.Errorf("opt: no table %q", table)
	}
	ts, ok := o.stats[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("opt: table %q not analyzed", table)
	}
	bound, err := pred.Bind(tab.Schema)
	if err != nil {
		return nil, err
	}
	rows := o.cardinality(table, ts, pred)

	var best candidate
	// Table scan / clustered index scan.
	scanNode := &plan.Scan{Tab: tab, Pred: bound}
	scanNode.Estm = plan.Estimates{Rows: rows, Cost: o.scanCost(ts)}
	best = candidate{node: scanNode, cost: scanNode.Estm.Cost}

	// Clustered index range seek: a predicate on the clustering key reads
	// exactly the qualifying leaf range sequentially. The qualifying rows
	// are contiguous by construction, so no DPC estimate is involved —
	// this path is immune to the clustering estimation error.
	if tab.Kind == catalog.KindClustered {
		if ranges, matched, ok := expr.IndexRanges(pred, tab.ClusterCols); ok && len(ranges) == 1 {
			rangePred := pred.Subset(matched...)
			matchRows := o.cardinality(table, ts, rangePred)
			leafPages := matchRows / math.Max(ts.RowsPerPage, 1)
			cost := o.randCost(float64(tab.ClusterHeight())) +
				o.seqCost(leafPages) + o.cpuCost(matchRows)
			node := &plan.Scan{Tab: tab, Pred: bound, ClusterRange: &ranges[0]}
			node.Estm = plan.Estimates{Rows: rows, Cost: cost}
			if cost < best.cost {
				best = candidate{node: node, cost: cost}
			}
		}
	}

	// Index seeks.
	type usable struct {
		ix      *catalog.Index
		ranges  []expr.KeyRange
		matched []int
	}
	var usables []usable
	for _, ix := range tab.Indexes() {
		ranges, matched, ok := expr.IndexRanges(pred, ix.Cols)
		if !ok {
			continue
		}
		usables = append(usables, usable{ix, ranges, matched})
		// Rows matching just the index-enforced atoms (what the fetch
		// must touch).
		idxPred := pred.Subset(matched...)
		matchRows := o.cardinality(table, ts, idxPred)
		dpc := o.estimateDPC(table, ts, idxPred, matchRows)
		node := &plan.Seek{Tab: tab, Index: ix, Ranges: ranges, Pred: bound}
		node.Estm = plan.Estimates{Rows: rows, DPC: dpc, Cost: o.seekCost(ix, matchRows, dpc, ts)}
		if node.Estm.Cost < best.cost {
			best = candidate{node: node, cost: node.Estm.Cost}
		}
	}

	// Index intersections over pairs of usable indexes on distinct columns.
	for i := 0; i < len(usables); i++ {
		for j := i + 1; j < len(usables); j++ {
			a, b := usables[i], usables[j]
			if strings.EqualFold(a.ix.Cols[0], b.ix.Cols[0]) {
				continue
			}
			predA := pred.Subset(a.matched...)
			predB := pred.Subset(b.matched...)
			rowsA := o.cardinality(table, ts, predA)
			rowsB := o.cardinality(table, ts, predB)
			// Intersected RID count under independence.
			interRows := rowsA * rowsB / math.Max(float64(ts.Rows), 1)
			interPred := pred.Subset(append(append([]int{}, a.matched...), b.matched...)...)
			dpc := o.estimateDPC(table, ts, interPred, interRows)
			cost := o.randCost(float64(a.ix.Height() + b.ix.Height()))
			cost += o.seqCost(rowsA / math.Max(float64(ts.Rows), 1) * float64(a.ix.LeafPages()))
			cost += o.seqCost(rowsB / math.Max(float64(ts.Rows), 1) * float64(b.ix.LeafPages()))
			cost += o.randCost(dpc)
			cost += o.cpuCost(rowsA + rowsB + interRows)
			node := &plan.Intersect{Tab: tab, IndexA: a.ix, RangesA: a.ranges,
				IndexB: b.ix, RangesB: b.ranges, Pred: bound}
			node.Estm = plan.Estimates{Rows: rows, DPC: dpc, Cost: cost}
			if node.Estm.Cost < best.cost {
				best = candidate{node: node, cost: node.Estm.Cost}
			}
		}
	}
	return best.node, nil
}

// --- join planning -----------------------------------------------------

// OptimizeJoin picks the cheapest join strategy for a two-table query:
// Hash Join (either build side), Index Nested Loops (either inner, when an
// index on the join column exists), or Merge Join (when both sides are
// clustered on their join columns, or with explicit sorts).
func (o *Optimizer) OptimizeJoin(q *Query) (plan.Node, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.optimizeJoin(q)
}

func (o *Optimizer) optimizeJoin(q *Query) (plan.Node, error) {
	if !q.IsJoin() {
		return nil, fmt.Errorf("opt: OptimizeJoin on single-table query")
	}
	tabA, ok := o.cat.Table(q.Table)
	if !ok {
		return nil, fmt.Errorf("opt: no table %q", q.Table)
	}
	tabB, ok := o.cat.Table(q.Table2)
	if !ok {
		return nil, fmt.Errorf("opt: no table %q", q.Table2)
	}
	tsA, okA := o.stats[strings.ToLower(q.Table)]
	tsB, okB := o.stats[strings.ToLower(q.Table2)]
	if !okA || !okB {
		return nil, fmt.Errorf("opt: join tables must be analyzed")
	}

	side := func(tab *catalog.Table, ts *TableStats, pred expr.Conjunction, joinCol string) (plan.Node, float64, error) {
		n, err := o.accessPath(tab.Name, pred)
		if err != nil {
			return nil, 0, err
		}
		return n, n.Est().Rows, nil
	}
	nodeA, rowsA, err := side(tabA, tsA, q.Pred, q.JoinCol)
	if err != nil {
		return nil, err
	}
	nodeB, rowsB, err := side(tabB, tsB, q.Pred2, q.JoinCol2)
	if err != nil {
		return nil, err
	}

	ndvA := float64(tsA.DistinctValues(q.JoinCol))
	ndvB := float64(tsB.DistinctValues(q.JoinCol2))
	joinRows := rowsA * rowsB / math.Max(math.Max(ndvA, ndvB), 1)

	var best candidate

	consider := func(n plan.Node, cost time.Duration) {
		if best.node == nil || cost < best.cost {
			best = candidate{node: n, cost: cost}
		}
	}

	// Hash joins: build on either side (build the smaller input).
	mkHash := func(build plan.Node, buildCol, buildName string, probe plan.Node, probeCol, probeName string, buildRows, probeRows float64) {
		n := &plan.Join{
			Method: plan.HashJoin, Outer: build, Inner: probe,
			OuterCol: buildCol, InnerCol: probeCol,
			Schem: plan.JoinSchema(buildName, build.OutSchema(), probeName, probe.OutSchema()),
		}
		cost := build.Est().Cost + probe.Est().Cost + o.cpuCost(buildRows*2+probeRows+joinRows)
		n.Estm = plan.Estimates{Rows: joinRows, Cost: cost}
		consider(n, cost)
	}
	mkHash(nodeA, q.JoinCol, q.Table, nodeB, q.JoinCol2, q.Table2, rowsA, rowsB)
	mkHash(nodeB, q.JoinCol2, q.Table2, nodeA, q.JoinCol, q.Table, rowsB, rowsA)

	// INL joins: outer drives index lookups on the inner's join column.
	mkINL := func(outer plan.Node, outerCol, outerName string, innerTab *catalog.Table,
		innerTS *TableStats, innerPred expr.Conjunction, innerCol string, outerRows float64) error {
		ix := indexOn(innerTab, innerCol)
		if ix == nil {
			return nil
		}
		boundInner, err := innerPred.Bind(innerTab.Schema)
		if err != nil {
			return err
		}
		// Matching inner rows across all probes.
		matchRows := outerRows * float64(innerTS.Rows) / math.Max(float64(innerTS.DistinctValues(innerCol)), 1)
		dpc := o.joinPages(innerTab.Name, innerCol, matchRows, innerTS)
		n := &plan.Join{
			Method: plan.INLJoin, Outer: outer,
			OuterCol: outerCol, InnerCol: innerCol,
			InnerTab: innerTab, InnerIndex: ix, InnerPred: boundInner,
			Schem: plan.JoinSchema(outerName, outer.OutSchema(), innerTab.Name, innerTab.Schema),
		}
		cost := outer.Est().Cost
		cost += o.randCost(dpc) // distinct data pages
		// Index navigation: upper levels cache after the first probes; the
		// leaf pages covering the probed key range are the real I/O. Probe
		// keys from a range-restricted outer are near-contiguous in key
		// space, so leaves touched ~ matching entries / entries-per-leaf.
		entriesPerLeaf := float64(innerTS.Rows) / math.Max(float64(ix.LeafPages()), 1)
		leafPages := matchRows / math.Max(entriesPerLeaf, 1)
		cost += o.randCost(float64(ix.Height()) + leafPages)
		cost += o.cpuCost(outerRows + matchRows)
		n.Estm = plan.Estimates{Rows: joinRows, DPC: dpc, Cost: cost}
		consider(n, cost)
		return nil
	}
	if err := mkINL(nodeA, q.JoinCol, q.Table, tabB, tsB, q.Pred2, q.JoinCol2, rowsA); err != nil {
		return nil, err
	}
	if err := mkINL(nodeB, q.JoinCol2, q.Table2, tabA, tsA, q.Pred, q.JoinCol, rowsB); err != nil {
		return nil, err
	}

	// Merge join: sort whichever side is not already clustered on its join
	// column.
	sortA := !clusteredOn(tabA, q.JoinCol)
	sortB := !clusteredOn(tabB, q.JoinCol2)
	{
		n := &plan.Join{
			Method: plan.MergeJoin, Outer: nodeA, Inner: nodeB,
			OuterCol: q.JoinCol, InnerCol: q.JoinCol2,
			SortOuter: sortA, SortInner: sortB,
			Schem: plan.JoinSchema(q.Table, nodeA.OutSchema(), q.Table2, nodeB.OutSchema()),
		}
		cost := nodeA.Est().Cost + nodeB.Est().Cost + o.cpuCost(rowsA+rowsB+joinRows)
		if sortA {
			cost += o.cpuCost(rowsA * math.Log2(math.Max(rowsA, 2)))
		}
		if sortB {
			cost += o.cpuCost(rowsB * math.Log2(math.Max(rowsB, 2)))
		}
		n.Estm = plan.Estimates{Rows: joinRows, Cost: cost}
		consider(n, cost)
	}

	return o.finish(q, best.node)
}

// Optimize dispatches on the query shape.
func (o *Optimizer) Optimize(q *Query) (plan.Node, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if q.IsJoin() {
		return o.optimizeJoin(q)
	}
	return o.optimizeSingle(q)
}

// indexOn returns an index whose leading column is col, or nil.
func indexOn(tab *catalog.Table, col string) *catalog.Index {
	for _, ix := range tab.Indexes() {
		if strings.EqualFold(ix.Cols[0], col) {
			return ix
		}
	}
	return nil
}

// clusteredOn reports whether the table is clustered with col as the
// leading clustering column (its scan output is ordered by col).
func clusteredOn(tab *catalog.Table, col string) bool {
	return tab.Kind == catalog.KindClustered && len(tab.ClusterCols) > 0 &&
		strings.EqualFold(tab.ClusterCols[0], col)
}
