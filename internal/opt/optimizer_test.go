package opt

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// optEnv: a 50k-row clustered table where c2 correlates with the clustering
// key and c5 does not — the synthetic shape of §V-B.1, scaled down.
type optEnv struct {
	pool *storage.BufferPool
	cat  *catalog.Catalog
	tab  *catalog.Table
	opt  *Optimizer
}

const optRows = 50000

func newOptEnv(t *testing.T) *optEnv {
	t.Helper()
	d := storage.NewDiskManager(storage.DefaultIOModel())
	pool := storage.NewBufferPool(d, 8192)
	cat := catalog.New(pool)
	schema := tuple.NewSchema(
		tuple.Column{Name: "c1", Kind: tuple.KindInt},
		tuple.Column{Name: "c2", Kind: tuple.KindInt},
		tuple.Column{Name: "c5", Kind: tuple.KindInt},
		tuple.Column{Name: "pad", Kind: tuple.KindString},
	)
	tab, err := cat.CreateClusteredTable("t", schema, []string{"c1"})
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(5)).Perm(optRows)
	pad := strings.Repeat("p", 60)
	rows := make([]tuple.Row, optRows)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.Int64(int64(i)),
			tuple.Int64(int64(i)),
			tuple.Int64(int64(perm[i])),
			tuple.Str(pad),
		}
	}
	if _, err := tab.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	for _, ix := range []string{"c2", "c5"} {
		if _, err := cat.CreateIndex("ix_"+ix, tab, []string{ix}); err != nil {
			t.Fatal(err)
		}
	}
	o := New(cat, storage.DefaultIOModel(), time.Microsecond)
	if err := o.AnalyzeTable("t"); err != nil {
		t.Fatal(err)
	}
	return &optEnv{pool: pool, cat: cat, tab: tab, opt: o}
}

func accessOf(t *testing.T, n plan.Node) plan.Node {
	t.Helper()
	agg, ok := n.(*plan.Agg)
	if !ok {
		t.Fatalf("root is %T, want Agg", n)
	}
	return agg.Input
}

func TestAnalyzeStats(t *testing.T) {
	e := newOptEnv(t)
	ts, ok := e.opt.TableStats("T")
	if !ok {
		t.Fatal("stats missing")
	}
	if ts.Rows != optRows {
		t.Errorf("Rows = %d", ts.Rows)
	}
	if ts.Pages <= 0 || ts.RowsPerPage < 40 || ts.RowsPerPage > 100 {
		t.Errorf("Pages = %d, RowsPerPage = %.1f", ts.Pages, ts.RowsPerPage)
	}
	if ndv := ts.DistinctValues("c5"); ndv != optRows {
		t.Errorf("NDV(c5) = %d", ndv)
	}
	sel := ts.Selectivity(expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(optRows/10))))
	if math.Abs(sel-0.1) > 0.02 {
		t.Errorf("selectivity = %.3f, want ~0.1", sel)
	}
}

func TestAnalyzeUnknownTable(t *testing.T) {
	e := newOptEnv(t)
	if err := e.opt.AnalyzeTable("nope"); err == nil {
		t.Error("analyze of missing table succeeded")
	}
	if _, err := e.opt.OptimizeSingle(&Query{Table: "nope"}); err == nil {
		t.Error("optimize of missing table succeeded")
	}
}

// TestOptimizerBelievesIndependence is the paper's core setup: for a 1%
// predicate on the CORRELATED column c2, the analytical Yao estimate says
// ~40% of pages would be fetched, so the optimizer picks a Table Scan even
// though the true DPC is ~1% of pages and an Index Seek would win.
func TestOptimizerBelievesIndependence(t *testing.T) {
	e := newOptEnv(t)
	pred := expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(optRows/100)))
	q := &Query{Table: "t", Pred: pred, Agg: plan.CountAgg, AggCol: "pad"}
	node, err := e.opt.OptimizeSingle(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, isScan := accessOf(t, node).(*plan.Scan); !isScan {
		t.Errorf("without feedback optimizer chose %s, want Scan", accessOf(t, node).Label())
	}
}

// TestInjectedDPCFlipsToSeek: injecting the true (small) page count flips
// the choice to Index Seek — the Fig 6 mechanism.
func TestInjectedDPCFlipsToSeek(t *testing.T) {
	e := newOptEnv(t)
	pred := expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(optRows/100)))
	ts, _ := e.opt.TableStats("t")
	trueDPC := float64(optRows/100) / ts.RowsPerPage // contiguous rows
	e.opt.InjectDPC("t", pred, trueDPC)
	q := &Query{Table: "t", Pred: pred, Agg: plan.CountAgg, AggCol: "pad"}
	node, err := e.opt.OptimizeSingle(q)
	if err != nil {
		t.Fatal(err)
	}
	seek, isSeek := accessOf(t, node).(*plan.Seek)
	if !isSeek {
		t.Fatalf("with injected DPC optimizer chose %s, want Seek", accessOf(t, node).Label())
	}
	if seek.Index.Name != "ix_c2" {
		t.Errorf("chose index %s", seek.Index.Name)
	}
	if math.Abs(seek.Estm.DPC-trueDPC) > 1 {
		t.Errorf("plan DPC estimate %.0f, injected %.0f", seek.Estm.DPC, trueDPC)
	}
}

// TestUncorrelatedStaysScan: for the uncorrelated column c5 the analytical
// estimate is roughly right, so feedback does not change the plan (the flat
// region of Fig 6, queries 75-100).
func TestUncorrelatedStaysScan(t *testing.T) {
	e := newOptEnv(t)
	pred := expr.And(expr.NewAtom("c5", expr.Lt, tuple.Int64(optRows/20))) // 5%
	q := &Query{Table: "t", Pred: pred, Agg: plan.CountAgg, AggCol: "pad"}
	node, _ := e.opt.OptimizeSingle(q)
	if _, isScan := accessOf(t, node).(*plan.Scan); !isScan {
		t.Fatalf("analytical choice = %s, want Scan", accessOf(t, node).Label())
	}
	// Even the true DPC (~ all qualifying rows on distinct pages) keeps it
	// a scan.
	e.opt.InjectDPC("t", pred, float64(optRows/20))
	node, _ = e.opt.OptimizeSingle(q)
	if _, isScan := accessOf(t, node).(*plan.Scan); !isScan {
		t.Errorf("true-DPC choice = %s, want Scan still", accessOf(t, node).Label())
	}
}

func TestVerySelectivePredicatePicksSeekAnyway(t *testing.T) {
	e := newOptEnv(t)
	// A handful of rows: even Yao's estimate is small enough for a seek.
	pred := expr.And(expr.NewAtom("c5", expr.Lt, tuple.Int64(5)))
	q := &Query{Table: "t", Pred: pred, Agg: plan.CountAgg, AggCol: "pad"}
	node, _ := e.opt.OptimizeSingle(q)
	if _, isSeek := accessOf(t, node).(*plan.Seek); !isSeek {
		t.Errorf("choice = %s, want Seek", accessOf(t, node).Label())
	}
}

func TestInjectCardinalityOverridesHistogram(t *testing.T) {
	e := newOptEnv(t)
	pred := expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(optRows/2)))
	e.opt.InjectCardinality("t", pred, 3) // pretend: 3 rows
	e.opt.InjectDPC("t", pred, 1)
	q := &Query{Table: "t", Pred: pred, Agg: plan.CountAgg, AggCol: "pad"}
	node, _ := e.opt.OptimizeSingle(q)
	access := accessOf(t, node)
	if _, isSeek := access.(*plan.Seek); !isSeek {
		t.Fatalf("choice = %s, want Seek with tiny injected cardinality", access.Label())
	}
	if access.Est().Rows != 3 {
		t.Errorf("Est.Rows = %v, want 3 (injected)", access.Est().Rows)
	}
	e.opt.ClearInjections()
	node, _ = e.opt.OptimizeSingle(q)
	if _, isScan := accessOf(t, node).(*plan.Scan); !isScan {
		t.Error("ClearInjections did not restore analytical choice")
	}
}

func TestIndexIntersectionConsidered(t *testing.T) {
	e := newOptEnv(t)
	// Two moderately selective predicates on separately indexed columns,
	// with injected stats that make intersection the winner.
	pred := expr.And(
		expr.NewAtom("c2", expr.Lt, tuple.Int64(optRows/5)),
		expr.NewAtom("c5", expr.Lt, tuple.Int64(optRows/5)),
	)
	e.opt.InjectDPC("t", pred, 2) // intersected set: 2 pages
	q := &Query{Table: "t", Pred: pred, Agg: plan.CountAgg, AggCol: "pad"}
	node, err := e.opt.OptimizeSingle(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := accessOf(t, node).(*plan.Intersect); !ok {
		t.Logf("choice = %s (intersection not the winner here; acceptable)", accessOf(t, node).Label())
	}
}

// --- join planning ---

type joinEnv struct {
	*optEnv
	dim *catalog.Table
}

func newJoinEnv(t *testing.T) *joinEnv {
	e := newOptEnv(t)
	schema := tuple.NewSchema(
		tuple.Column{Name: "c1", Kind: tuple.KindInt},
		tuple.Column{Name: "c2", Kind: tuple.KindInt},
		tuple.Column{Name: "pad", Kind: tuple.KindString},
	)
	dim, err := e.cat.CreateClusteredTable("t1", schema, []string{"c1"})
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("q", 60)
	rows := make([]tuple.Row, optRows)
	for i := range rows {
		rows[i] = tuple.Row{tuple.Int64(int64(i)), tuple.Int64(int64(i)), tuple.Str(pad)}
	}
	if _, err := dim.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	if err := e.opt.AnalyzeTable("t1"); err != nil {
		t.Fatal(err)
	}
	return &joinEnv{optEnv: e, dim: dim}
}

func joinQuery(sel int64, col string) *Query {
	return &Query{
		Table: "t1", Pred: expr.And(expr.NewAtom("c1", expr.Lt, tuple.Int64(sel))),
		Table2: "t", JoinCol: col, JoinCol2: col,
		Agg: plan.CountAgg, AggCol: "pad",
	}
}

func findJoin(t *testing.T, n plan.Node) *plan.Join {
	t.Helper()
	agg, ok := n.(*plan.Agg)
	if !ok {
		t.Fatalf("root %T", n)
	}
	j, ok := agg.Input.(*plan.Join)
	if !ok {
		t.Fatalf("agg input %T, want Join", agg.Input)
	}
	return j
}

// Without feedback, a selective join on the correlated column is costed
// with the Mackert-Lohman estimate (thousands of scattered pages), so Hash
// Join wins; injecting the true join DPC flips it to INL — the Fig 8 story.
func TestJoinDPCInjectionFlipsHashToINL(t *testing.T) {
	e := newJoinEnv(t)
	q := joinQuery(optRows/100, "c2") // 1% of outer
	node, err := e.opt.OptimizeJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	j := findJoin(t, node)
	if j.Method != plan.HashJoin && j.Method != plan.MergeJoin {
		t.Errorf("analytical join method = %v, want Hash or Merge", j.Method)
	}
	ts, _ := e.opt.TableStats("t")
	trueDPC := float64(optRows/100) / ts.RowsPerPage
	e.opt.InjectJoinDPC("t", "c2", trueDPC)
	node, err = e.opt.OptimizeJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	j = findJoin(t, node)
	if j.Method != plan.INLJoin {
		t.Errorf("with injected join DPC method = %v, want INL", j.Method)
	}
	if j.InnerTab.Name != "t" {
		t.Errorf("INL inner = %s", j.InnerTab.Name)
	}
}

// Beyond the crossover selectivity, Hash stays optimal even with the true
// DPC (the ~7% threshold in §V-B.1).
func TestJoinHighSelectivityStaysHash(t *testing.T) {
	e := newJoinEnv(t)
	q := joinQuery(optRows/4, "c5") // 25% of outer, uncorrelated inner col
	ts, _ := e.opt.TableStats("t")
	e.opt.InjectJoinDPC("t", "c5", float64(ts.Pages)) // true: all pages
	node, err := e.opt.OptimizeJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	j := findJoin(t, node)
	if j.Method == plan.INLJoin {
		t.Errorf("method = %v, want not-INL at 25%% selectivity", j.Method)
	}
}

func TestOptimizeDispatch(t *testing.T) {
	e := newJoinEnv(t)
	single := &Query{Table: "t", Pred: expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(10))),
		Agg: plan.CountAgg, AggCol: "pad"}
	n, err := e.opt.Optimize(single)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(*plan.Agg); !ok {
		t.Errorf("single root %T", n)
	}
	jq := joinQuery(100, "c2")
	n, err = e.opt.Optimize(jq)
	if err != nil {
		t.Fatal(err)
	}
	findJoin(t, n)
	if _, err := e.opt.OptimizeJoin(single); err == nil {
		t.Error("OptimizeJoin accepted single-table query")
	}
}

func TestCoveringIndexScanChosen(t *testing.T) {
	e := newOptEnv(t)
	// COUNT(c5) with a predicate on c5: ix_c5 covers everything the query
	// needs, and its leaves are ~20x narrower than the table.
	pred := expr.And(expr.NewAtom("c5", expr.Lt, tuple.Int64(optRows/2)))
	q := &Query{Table: "t", Pred: pred, Agg: plan.CountAgg, AggCol: "c5"}
	node, err := e.opt.OptimizeSingle(q)
	if err != nil {
		t.Fatal(err)
	}
	cov, ok := accessOf(t, node).(*plan.CoveringScan)
	if !ok {
		t.Fatalf("choice = %s, want CoveringIndexScan", accessOf(t, node).Label())
	}
	if cov.Index.Name != "ix_c5" {
		t.Errorf("covering index = %s", cov.Index.Name)
	}
	// With a non-covered output column the table must be visited.
	q2 := &Query{Table: "t", Pred: pred, Agg: plan.CountAgg, AggCol: "pad"}
	node2, _ := e.opt.OptimizeSingle(q2)
	if _, isCov := accessOf(t, node2).(*plan.CoveringScan); isCov {
		t.Error("covering scan chosen despite uncovered output column")
	}
}

func TestPlanFormat(t *testing.T) {
	e := newJoinEnv(t)
	node, err := e.opt.Optimize(joinQuery(100, "c2"))
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Format(node)
	if !strings.Contains(s, "COUNT(") || !strings.Contains(s, "cost=") {
		t.Errorf("Format output:\n%s", s)
	}
}
