package opt

import (
	"math"
	"testing"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

func intVals(n int, f func(i int) int64) []tuple.Value {
	out := make([]tuple.Value, n)
	for i := range out {
		out[i] = tuple.Int64(f(i))
	}
	return out
}

func TestHistogramUniformRange(t *testing.T) {
	h := BuildHistogram(tuple.KindInt, intVals(10000, func(i int) int64 { return int64(i) }))
	cases := []struct {
		atom expr.Atom
		want float64
	}{
		{expr.NewAtom("c", expr.Lt, tuple.Int64(1000)), 0.10},
		{expr.NewAtom("c", expr.Le, tuple.Int64(4999)), 0.50},
		{expr.NewAtom("c", expr.Ge, tuple.Int64(9000)), 0.10},
		{expr.NewAtom("c", expr.Gt, tuple.Int64(9999)), 0.00},
		{expr.NewBetween("c", tuple.Int64(2000), tuple.Int64(2999)), 0.10},
		{expr.NewAtom("c", expr.Eq, tuple.Int64(5)), 0.0001},
		{expr.NewAtom("c", expr.Ne, tuple.Int64(5)), 0.9999},
	}
	for _, c := range cases {
		got := h.EstimateAtom(c.atom)
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("%s: selectivity = %.4f, want %.4f", c.atom, got, c.want)
		}
	}
	if h.Distinct != 10000 {
		t.Errorf("Distinct = %d", h.Distinct)
	}
	if h.Min.Int != 0 || h.Max.Int != 9999 {
		t.Errorf("min/max = %v/%v", h.Min, h.Max)
	}
}

func TestHistogramSkewedEquality(t *testing.T) {
	// 90% zeros, 10% spread over 1..1000.
	h := BuildHistogram(tuple.KindInt, intVals(10000, func(i int) int64 {
		if i < 9000 {
			return 0
		}
		return int64(i - 8999)
	}))
	got := h.EstimateAtom(expr.NewAtom("c", expr.Eq, tuple.Int64(0)))
	if got < 0.5 {
		t.Errorf("Eq(0) selectivity = %.3f, want high (skew captured)", got)
	}
}

func TestHistogramStrings(t *testing.T) {
	vals := make([]tuple.Value, 0, 1000)
	for i := 0; i < 1000; i++ {
		s := "CA"
		if i%4 == 1 {
			s = "WA"
		} else if i%4 == 2 {
			s = "OR"
		} else if i%4 == 3 {
			s = "NV"
		}
		vals = append(vals, tuple.Str(s))
	}
	h := BuildHistogram(tuple.KindString, vals)
	if h.Distinct != 4 {
		t.Errorf("Distinct = %d", h.Distinct)
	}
	got := h.EstimateAtom(expr.NewAtom("state", expr.Eq, tuple.Str("CA")))
	if math.Abs(got-0.25) > 0.001 {
		t.Errorf("Eq(CA) = %.3f", got)
	}
	got = h.EstimateAtom(expr.NewIn("state", tuple.Str("CA"), tuple.Str("WA")))
	if math.Abs(got-0.5) > 0.001 {
		t.Errorf("In(CA,WA) = %.3f", got)
	}
	if h.EstimateAtom(expr.NewAtom("state", expr.Eq, tuple.Str("XX"))) != 0 {
		t.Error("missing string has nonzero selectivity")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := BuildHistogram(tuple.KindInt, nil)
	if h.EstimateAtom(expr.NewAtom("c", expr.Eq, tuple.Int64(1))) != 0 {
		t.Error("empty histogram nonzero selectivity")
	}
}

func TestHistogramDates(t *testing.T) {
	vals := make([]tuple.Value, 365)
	for i := range vals {
		vals[i] = tuple.Date(int64(13000 + i))
	}
	h := BuildHistogram(tuple.KindDate, vals)
	got := h.EstimateAtom(expr.NewBetween("d", tuple.Date(13000), tuple.Date(13030)))
	if math.Abs(got-31.0/365.0) > 0.03 {
		t.Errorf("date between = %.3f", got)
	}
}

func TestCardenasYao(t *testing.T) {
	// Basic sanity: bounded by min(n, p) and by p; Yao(n=r) = p.
	if got := CardenasPages(0, 100); got != 0 {
		t.Errorf("Cardenas(0) = %v", got)
	}
	if got := CardenasPages(50, 100); got > 50 || got < 30 {
		t.Errorf("Cardenas(50,100) = %.1f, want in (30,50]", got)
	}
	if got := YaoPages(1000, 1000, 100); got != 100 {
		t.Errorf("Yao(n=r) = %v, want all pages", got)
	}
	// For n << r, Yao ~ Cardenas.
	c, y := CardenasPages(100, 1000), YaoPages(100, 100000, 1000)
	if math.Abs(c-y)/c > 0.05 {
		t.Errorf("Cardenas %.1f vs Yao %.1f diverge for small n", c, y)
	}
	// Monotonic in n.
	prev := 0.0
	for n := 1.0; n < 10000; n *= 2 {
		v := YaoPages(n, 100000, 1000)
		if v < prev {
			t.Fatalf("Yao not monotonic at n=%v", n)
		}
		prev = v
	}
	// The independence assumption: 1% of a 74-rows/page table touches
	// ~52% of pages — the overestimate that penalizes correlated data.
	v := YaoPages(740, 74000, 1000)
	if v < 400 || v > 600 {
		t.Errorf("Yao(1%%) = %.0f pages of 1000, want ~520", v)
	}
}

func TestMackertLohmanINL(t *testing.T) {
	// Caps at table pages, and at the Yao estimate for distinct rows.
	if got := MackertLohmanINL(1e9, 100000, 1000); got != 1000 {
		t.Errorf("ML(huge) = %v", got)
	}
	small := MackertLohmanINL(10, 100000, 1000)
	if small > 10 || small <= 0 {
		t.Errorf("ML(10 rows) = %v, want <= 10 pages", small)
	}
}
