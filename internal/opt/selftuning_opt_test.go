package opt

import (
	"math"
	"testing"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

func TestPredValueRange(t *testing.T) {
	cases := []struct {
		pred   expr.Conjunction
		col    string
		lo, hi int64
		ok     bool
	}{
		{expr.And(expr.NewAtom("c", expr.Lt, tuple.Int64(10))), "c", math.MinInt64, 9, true},
		{expr.And(expr.NewBetween("c", tuple.Int64(3), tuple.Int64(8))), "c", 3, 8, true},
		{expr.And( // two atoms same column: intersect
			expr.NewAtom("c", expr.Ge, tuple.Int64(5)),
			expr.NewAtom("c", expr.Le, tuple.Int64(20)),
		), "c", 5, 20, true},
		{expr.And( // two columns: not extractable
			expr.NewAtom("a", expr.Lt, tuple.Int64(10)),
			expr.NewAtom("b", expr.Lt, tuple.Int64(10)),
		), "", 0, 0, false},
		{expr.And(expr.NewAtom("c", expr.Ne, tuple.Int64(5))), "", 0, 0, false},
		{expr.Conjunction{}, "", 0, 0, false},
		{expr.And( // contradictory range
			expr.NewAtom("c", expr.Gt, tuple.Int64(10)),
			expr.NewAtom("c", expr.Lt, tuple.Int64(5)),
		), "", 0, 0, false},
	}
	for _, c := range cases {
		col, lo, hi, ok := predValueRange(c.pred)
		if ok != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.pred, ok, c.ok)
			continue
		}
		if ok && (col != c.col || lo != c.lo || hi != c.hi) {
			t.Errorf("%s: got (%s,%d,%d), want (%s,%d,%d)", c.pred, col, lo, hi, c.col, c.lo, c.hi)
		}
	}
}

func TestRecordDPCObservationClipsToColumnDomain(t *testing.T) {
	e := newOptEnv(t)
	// An open-ended "< 500" observation gets clipped to [0, optRows-1].
	e.opt.RecordDPCObservation("t", "c2", math.MinInt64, 499, 500, 7)
	h, ok := e.opt.DPCHistogram("t", "c2")
	if !ok {
		t.Fatal("histogram missing")
	}
	obs := h.Observations()
	if len(obs) != 1 || obs[0].Lo != 0 || obs[0].Hi != 499 {
		t.Errorf("observation = %+v, want clipped to [0,499]", obs)
	}
}

func TestHistogramInfluencesEstimateDPC(t *testing.T) {
	e := newOptEnv(t)
	pred := expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(1000)))
	before, err := e.opt.EstimateDPC("t", pred)
	if err != nil {
		t.Fatal(err)
	}
	// Teach the optimizer that c2 is perfectly clustered.
	e.opt.RecordDPCObservation("t", "c2", 0, 499, 500, 7)
	after, err := e.opt.EstimateDPC("t", pred)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("histogram did not lower the estimate: %.0f -> %.0f", before, after)
	}
	ts, _ := e.opt.TableStats("t")
	if after > 1000/ts.RowsPerPage*3 {
		t.Errorf("estimate %.0f far above the learned density", after)
	}
	// Exact injection still wins over the histogram.
	e.opt.InjectDPC("t", pred, 42)
	v, _ := e.opt.EstimateDPC("t", pred)
	if v != 42 {
		t.Errorf("injection did not override histogram: %v", v)
	}
	// Clearing histograms reverts.
	e.opt.ClearInjections()
	e.opt.ClearDPCHistograms()
	v, _ = e.opt.EstimateDPC("t", pred)
	if math.Abs(v-before) > 1 {
		t.Errorf("after clearing, estimate %.0f != analytical %.0f", v, before)
	}
}

func TestEstimateErrorsOnUnanalyzed(t *testing.T) {
	e := newOptEnv(t)
	pred := expr.And(expr.NewAtom("x", expr.Lt, tuple.Int64(1)))
	if _, err := e.opt.EstimateDPC("ghost", pred); err == nil {
		t.Error("EstimateDPC on unanalyzed table succeeded")
	}
	if _, err := e.opt.EstimateCardinality("ghost", pred); err == nil {
		t.Error("EstimateCardinality on unanalyzed table succeeded")
	}
	if _, err := e.opt.EstimateINLDPC("ghost", "x", 10); err == nil {
		t.Error("EstimateINLDPC on unanalyzed table succeeded")
	}
}

func TestEstimateINLDPCInjection(t *testing.T) {
	e := newOptEnv(t)
	analytical, err := e.opt.EstimateINLDPC("t", "c2", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if analytical <= 0 {
		t.Errorf("analytical INL DPC = %v", analytical)
	}
	e.opt.InjectJoinDPC("t", "c2", 13)
	v, _ := e.opt.EstimateINLDPC("t", "c2", 1000)
	if v != 13 {
		t.Errorf("injected INL DPC = %v", v)
	}
}

func TestClusteredRangeScanChosenForClusterKeyPredicate(t *testing.T) {
	e := newOptEnv(t)
	pred := expr.And(expr.NewAtom("c1", expr.Lt, tuple.Int64(optRows/100)))
	q := &Query{Table: "t", Pred: pred, Agg: 0, AggCol: "pad"}
	node, err := e.opt.OptimizeSingle(q)
	if err != nil {
		t.Fatal(err)
	}
	access := accessOf(t, node)
	if got := access.Label(); got != "ClusteredIndexRangeScan(t: c1 < 500)" {
		t.Errorf("access = %q, want a ClusteredIndexRangeScan", got)
	}
}
