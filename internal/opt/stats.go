package opt

import (
	"fmt"
	"strings"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

// ColumnStats holds the optimizer's statistics for one column.
type ColumnStats struct {
	Hist *Histogram
}

// TableStats holds the optimizer's statistics for one table.
type TableStats struct {
	Rows        int64
	Pages       int64
	RowsPerPage float64
	Columns     map[string]*ColumnStats // lower-cased column name
}

// Analyze scans a table once and builds statistics for every column (the
// equivalent of UPDATE STATISTICS WITH FULLSCAN).
func Analyze(tab *catalog.Table) (*TableStats, error) {
	ts := &TableStats{
		Rows:    tab.NumRows(),
		Pages:   tab.NumPages(),
		Columns: make(map[string]*ColumnStats),
	}
	if ts.Pages > 0 {
		ts.RowsPerPage = float64(ts.Rows) / float64(ts.Pages)
	}
	// Collect values per column in one pass.
	n := tab.Schema.NumColumns()
	cols := make([][]tuple.Value, n)
	it, err := tab.ScanAll()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	for it.Next() {
		row := it.Row()
		for i := 0; i < n; i++ {
			cols[i] = append(cols[i], row[i])
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		c := tab.Schema.Column(i)
		ts.Columns[strings.ToLower(c.Name)] = &ColumnStats{
			Hist: BuildHistogram(c.Kind, cols[i]),
		}
	}
	return ts, nil
}

// Column returns the statistics for a column, or an error.
func (ts *TableStats) Column(name string) (*ColumnStats, error) {
	cs, ok := ts.Columns[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("opt: no statistics for column %q", name)
	}
	return cs, nil
}

// Selectivity estimates the fraction of rows satisfying the conjunction,
// multiplying per-atom selectivities (attribute-value independence — the
// standard assumption, with its standard failure modes).
func (ts *TableStats) Selectivity(pred expr.Conjunction) float64 {
	sel := 1.0
	for _, a := range pred.Atoms {
		cs, err := ts.Column(a.Col)
		if err != nil {
			sel *= 0.1 // unknown column: guess
			continue
		}
		sel *= cs.Hist.EstimateAtom(a)
	}
	return clamp01(sel)
}

// DistinctValues returns the NDV of a column (for join cardinality).
func (ts *TableStats) DistinctValues(col string) int64 {
	cs, err := ts.Column(col)
	if err != nil || cs.Hist == nil {
		return 1
	}
	if cs.Hist.Distinct < 1 {
		return 1
	}
	return cs.Hist.Distinct
}
