// Package opt implements the cost-based query optimizer: equi-depth
// histograms for cardinality estimation, the analytical distinct-page-count
// model (Cardenas / Mackert–Lohman) whose blindness to on-disk clustering is
// the error the paper diagnoses, an I/O+CPU cost model driven by the same
// constants as the simulated disk, plan enumeration for single-table and
// join queries, and the injection interfaces (§V-A) through which accurate
// cardinalities and fed-back page counts re-enter optimization.
package opt

import (
	"fmt"
	"sort"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

// Histogram is an equi-depth histogram over one column's values. Numeric
// (int/date) columns get range buckets; string columns keep an exact
// value→count table when the domain is small and fall back to a distinct
// count otherwise.
type Histogram struct {
	Kind tuple.Kind

	// Numeric buckets, ascending. Each covers [Lo, Hi] inclusive.
	Buckets []Bucket

	// String statistics.
	StrCounts map[string]int64 // nil when the domain was too large
	Distinct  int64
	Total     int64
	Min, Max  tuple.Value
}

// Bucket is one equi-depth bucket.
type Bucket struct {
	Lo, Hi   int64
	Count    int64
	Distinct int64
}

// maxStrDomain bounds the exact string table.
const maxStrDomain = 4096

// defaultBuckets is the number of equi-depth buckets for numeric columns.
const defaultBuckets = 100

// BuildHistogram constructs a histogram from column values.
func BuildHistogram(kind tuple.Kind, vals []tuple.Value) *Histogram {
	h := &Histogram{Kind: kind, Total: int64(len(vals))}
	if len(vals) == 0 {
		return h
	}
	switch kind {
	case tuple.KindString:
		counts := make(map[string]int64)
		for _, v := range vals {
			counts[v.Str]++
		}
		h.Distinct = int64(len(counts))
		if len(counts) <= maxStrDomain {
			h.StrCounts = counts
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		h.Min, h.Max = tuple.Str(keys[0]), tuple.Str(keys[len(keys)-1])
	default:
		ints := make([]int64, len(vals))
		for i, v := range vals {
			ints[i] = v.Int
		}
		sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
		h.Min = tuple.Value{Kind: kind, Int: ints[0]}
		h.Max = tuple.Value{Kind: kind, Int: ints[len(ints)-1]}
		nb := defaultBuckets
		if len(ints) < nb {
			nb = len(ints)
		}
		per := (len(ints) + nb - 1) / nb
		for start := 0; start < len(ints); start += per {
			end := start + per
			if end > len(ints) {
				end = len(ints)
			}
			b := Bucket{Lo: ints[start], Hi: ints[end-1], Count: int64(end - start)}
			d := int64(1)
			for i := start + 1; i < end; i++ {
				if ints[i] != ints[i-1] {
					d++
				}
			}
			b.Distinct = d
			h.Buckets = append(h.Buckets, b)
		}
		var distinct int64
		for i := 1; i < len(ints); i++ {
			if ints[i] != ints[i-1] {
				distinct++
			}
		}
		h.Distinct = distinct + 1
	}
	return h
}

// EstimateAtom returns the estimated selectivity of one atomic predicate in
// [0, 1].
func (h *Histogram) EstimateAtom(a expr.Atom) float64 {
	if h.Total == 0 {
		return 0
	}
	switch a.Op {
	case expr.Eq:
		return h.eqSelectivity(a.Val)
	case expr.Ne:
		return clamp01(1 - h.eqSelectivity(a.Val))
	case expr.In:
		s := 0.0
		for _, v := range a.List {
			s += h.eqSelectivity(v)
		}
		return clamp01(s)
	case expr.Lt:
		return h.rangeSelectivity(nil, &a.Val, false)
	case expr.Le:
		return h.rangeSelectivity(nil, &a.Val, true)
	case expr.Gt:
		return clamp01(1 - h.rangeSelectivity(nil, &a.Val, true))
	case expr.Ge:
		return clamp01(1 - h.rangeSelectivity(nil, &a.Val, false))
	case expr.Between:
		lo := h.rangeSelectivity(nil, &a.Val, false) // < lo bound
		hi := h.rangeSelectivity(nil, &a.Val2, true) // <= hi bound
		return clamp01(hi - lo)
	default:
		return 0.1
	}
}

func (h *Histogram) eqSelectivity(v tuple.Value) float64 {
	if h.Kind == tuple.KindString {
		if h.StrCounts != nil {
			return float64(h.StrCounts[v.Str]) / float64(h.Total)
		}
		if h.Distinct > 0 {
			return 1 / float64(h.Distinct)
		}
		return 0
	}
	// A heavy value can span several equi-depth buckets; sum the expected
	// per-value frequency of every bucket covering it.
	var acc float64
	for _, b := range h.Buckets {
		if v.Int >= b.Lo && v.Int <= b.Hi {
			d := b.Distinct
			if d == 0 {
				d = 1
			}
			acc += float64(b.Count) / float64(d)
		}
	}
	return acc / float64(h.Total)
}

// rangeSelectivity estimates P(col < v) (or <= when inclusive) for numeric
// columns; strings use the exact table when available.
func (h *Histogram) rangeSelectivity(_ *tuple.Value, v *tuple.Value, inclusive bool) float64 {
	if h.Kind == tuple.KindString {
		if h.StrCounts == nil {
			return 0.3 // no ordering statistics: guess
		}
		var n int64
		for s, c := range h.StrCounts {
			if s < v.Str || (inclusive && s == v.Str) {
				n += c
			}
		}
		return float64(n) / float64(h.Total)
	}
	var acc float64
	for _, b := range h.Buckets {
		switch {
		case b.Hi < v.Int, inclusive && b.Hi == v.Int:
			acc += float64(b.Count)
		case b.Lo > v.Int, !inclusive && b.Lo == v.Int:
			// nothing
		default:
			// Partial bucket: linear interpolation.
			width := float64(b.Hi-b.Lo) + 1
			var frac float64
			if inclusive {
				frac = (float64(v.Int-b.Lo) + 1) / width
			} else {
				frac = float64(v.Int-b.Lo) / width
			}
			acc += float64(b.Count) * clamp01(frac)
		}
	}
	return clamp01(acc / float64(h.Total))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram{%s total=%d distinct=%d buckets=%d}", h.Kind, h.Total, h.Distinct, len(h.Buckets))
}
