package opt

import (
	"testing"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

// certLadder returns predicates from loosest to tightest: each "col < k"
// strictly implies the previous one, so any sound estimator must produce
// non-increasing row counts and distinct page counts down the ladder. This is
// the CERT-style constraint check: no ground truth needed, only the logical
// ordering of the predicates themselves.
func certLadder(col string) []expr.Conjunction {
	var preds []expr.Conjunction
	for k := int64(optRows); k >= 1; k /= 4 {
		preds = append(preds, expr.And(expr.NewAtom(col, expr.Lt, tuple.Int64(k))))
	}
	return preds
}

func assertLadderMonotone(t *testing.T, e *optEnv, col, label string) {
	t.Helper()
	prevCard, prevDPC := -1.0, -1.0
	for i, pred := range certLadder(col) {
		card, err := e.opt.EstimateCardinality("t", pred)
		if err != nil {
			t.Fatal(err)
		}
		dpc, err := e.opt.EstimateDPC("t", pred)
		if err != nil {
			t.Fatal(err)
		}
		if card < 0 || dpc < 0 {
			t.Errorf("%s: %s: negative estimate card=%.1f dpc=%.1f", label, pred, card, dpc)
		}
		if i > 0 {
			if card > prevCard {
				t.Errorf("%s: tightening to %s RAISED cardinality %.1f -> %.1f", label, pred, prevCard, card)
			}
			if dpc > prevDPC {
				t.Errorf("%s: tightening to %s RAISED DPC %.1f -> %.1f", label, pred, prevDPC, dpc)
			}
		}
		prevCard, prevDPC = card, dpc
	}
}

// TestEstimateMonotonicity checks the CERT constraint on every column class
// the optimizer models differently: the cluster key (c1), a correlated
// secondary index column (c2), and a randomly permuted column (c5).
func TestEstimateMonotonicity(t *testing.T) {
	e := newOptEnv(t)
	for _, col := range []string{"c1", "c2", "c5"} {
		assertLadderMonotone(t, e, col, "analytical/"+col)
	}
}

// TestEstimateMonotonicityWithFeedback re-checks the ladder after execution
// feedback has been folded in: learned DPC densities may change the absolute
// estimates, but must never make a strictly tighter predicate look bigger.
func TestEstimateMonotonicityWithFeedback(t *testing.T) {
	e := newOptEnv(t)
	// Feedback from two monitored ranges of c2 with very different densities.
	e.opt.RecordDPCObservation("t", "c2", 0, optRows/8-1, int64(optRows/8), 80)
	e.opt.RecordDPCObservation("t", "c2", optRows/4, optRows/2-1, int64(optRows/4), 3000)
	assertLadderMonotone(t, e, "c2", "feedback/c2")

	// An exact-match injection for one rung must not break the ordering
	// against its analytically estimated neighbors.
	mid := expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(int64(optRows/16))))
	est, err := e.opt.EstimateDPC("t", mid)
	if err != nil {
		t.Fatal(err)
	}
	e.opt.InjectDPC("t", mid, est)
	assertLadderMonotone(t, e, "c2", "injected/c2")
}
