package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/opt"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/tuple"
)

// Parse turns a SQL string into an optimizer query, resolving table and
// column references against the catalog and coercing literals to column
// types (so '2007-06-01' compared to a DATE column becomes a date).
func Parse(cat *catalog.Catalog, src string) (*opt.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{cat: cat, toks: toks}
	q, err := p.parseSelect()
	if err != nil {
		return nil, fmt.Errorf("%w (near %q)", err, p.near())
	}
	return q, nil
}

type parser struct {
	cat  *catalog.Catalog
	toks []token
	pos  int

	tables       []*catalog.Table
	selectRefs   []columnRef // deferred validation (FROM parses after SELECT)
	sawAggInList bool        // "SELECT g, AGG(c)" form: GROUP BY required

	// Prepared-statement support (ParseTemplate only).
	allowParams   bool
	params        []ParamSite    // every placeholder site, in source order
	pending       []pendingParam // sites of the atom currently being parsed
	nextOrdinal   int            // next ordinal for '?' placeholders
	sawPositional bool
	sawNumbered   bool
}

// pendingParam is a placeholder seen while parsing one atom's literals; it
// becomes a ParamSite once addAtom knows the atom's side and index.
type pendingParam struct {
	ordinal int
	slot    int
	kind    tuple.Kind
}

func (p *parser) cur() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF token
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) near() string {
	t := p.cur()
	if t.kind == tokEOF {
		return "end of input"
	}
	return t.text
}

func (p *parser) expectIdent(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sql: expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("sql: expected %q", s)
	}
	return nil
}

func (p *parser) acceptIdent(kw string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw) {
		p.pos++
		return true
	}
	return false
}

// parseSelect: SELECT agg(col) FROM t [, t2] [WHERE conjuncts]
func (p *parser) parseSelect() (*opt.Query, error) {
	if err := p.expectIdent("select"); err != nil {
		return nil, err
	}
	q := &opt.Query{}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}

	if err := p.expectIdent("from"); err != nil {
		return nil, err
	}
	t1 := p.next()
	if t1.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected table name")
	}
	tab1, ok := p.cat.Table(t1.text)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", t1.text)
	}
	q.Table = tab1.Name
	p.tables = append(p.tables, tab1)
	if p.cur().kind == tokSymbol && p.cur().text == "," {
		p.pos++
		t2 := p.next()
		if t2.kind != tokIdent {
			return nil, fmt.Errorf("sql: expected second table name")
		}
		tab2, ok := p.cat.Table(t2.text)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", t2.text)
		}
		q.Table2 = tab2.Name
		p.tables = append(p.tables, tab2)
	}

	if p.acceptIdent("where") {
		if err := p.parseWhere(q); err != nil {
			return nil, err
		}
	}
	if p.acceptIdent("group") {
		if err := p.expectIdent("by"); err != nil {
			return nil, err
		}
		ref, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.resolve(ref); err != nil {
			return nil, err
		}
		if !p.sawAggInList || len(q.SelectCols) != 1 {
			return nil, fmt.Errorf("sql: GROUP BY requires a select list of the form <col>, <agg>(...)")
		}
		if !strings.EqualFold(q.SelectCols[0], ref.qualified()) {
			return nil, fmt.Errorf("sql: GROUP BY column %q must match the selected column %q",
				ref.qualified(), q.SelectCols[0])
		}
		q.GroupBy = ref.qualified()
	} else if p.sawAggInList {
		return nil, fmt.Errorf("sql: select list mixes columns and an aggregate without GROUP BY")
	}
	if p.acceptIdent("order") {
		if err := p.expectIdent("by"); err != nil {
			return nil, err
		}
		if !q.IsProjection() {
			return nil, fmt.Errorf("sql: ORDER BY requires a column select list")
		}
		ref, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.resolve(ref); err != nil {
			return nil, err
		}
		q.OrderBy = ref.qualified()
		if p.acceptIdent("desc") {
			q.OrderDesc = true
		} else {
			p.acceptIdent("asc")
		}
	}
	if p.acceptIdent("limit") {
		if !q.IsProjection() && !q.IsGrouped() {
			return nil, fmt.Errorf("sql: LIMIT requires a column select list")
		}
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected LIMIT count, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input")
	}
	if q.Table2 != "" && q.JoinCol == "" {
		return nil, fmt.Errorf("sql: two tables but no join predicate")
	}
	// Select-list columns could not be validated before FROM was parsed.
	for _, ref := range p.selectRefs {
		if _, err := p.resolve(ref); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// parseSelectList parses `*`, a column list, or one aggregate call.
func (p *parser) parseSelectList(q *opt.Query) error {
	if p.cur().kind == tokSymbol && p.cur().text == "*" {
		p.pos++
		q.Star = true
		return nil
	}
	first := p.cur()
	if first.kind != tokIdent {
		return fmt.Errorf("sql: expected select list, got %q", first.text)
	}
	// Pure aggregate form: IDENT '(' with nothing before it.
	if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
		return p.parseAggCall(q)
	}
	// Column list form: parse refs separated by commas. A
	// trailing aggregate call turns the list into the grouped form
	// `SELECT g, AGG(c) ... GROUP BY g`.
	for {
		// Aggregate call in the list position?
		if p.cur().kind == tokIdent && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			if err := p.parseAggCall(q); err != nil {
				return err
			}
			p.sawAggInList = true
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				return fmt.Errorf("sql: the aggregate must be last in the select list")
			}
			return nil
		}
		ref, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		p.selectRefs = append(p.selectRefs, ref)
		q.SelectCols = append(q.SelectCols, ref.qualified())
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		return nil
	}
}

// parseAggCall parses AGG '(' (col | '*') ')' into q.Agg/q.AggCol.
func (p *parser) parseAggCall(q *opt.Query) error {
	name := p.next()
	switch strings.ToLower(name.text) {
	case "count":
		q.Agg = plan.CountAgg
	case "sum":
		q.Agg = plan.SumAgg
	case "min":
		q.Agg = plan.MinAgg
	case "max":
		q.Agg = plan.MaxAgg
	default:
		return fmt.Errorf("sql: unknown aggregate %q", name.text)
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	if p.cur().kind == tokSymbol && p.cur().text == "*" {
		if q.Agg != plan.CountAgg {
			return fmt.Errorf("sql: %s(*) is not valid", name.text)
		}
		p.pos++
	} else {
		col, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		// Keep the qualifier: join schemas qualify column names, so
		// COUNT(t.padding) must resolve against "t.padding".
		q.AggCol = col.qualified()
	}
	return p.expectSymbol(")")
}

// columnRef is a possibly-qualified column reference.
type columnRef struct {
	table string // "" if unqualified
	name  string
}

// qualified renders the reference as "table.col" or "col".
func (r columnRef) qualified() string {
	if r.table != "" {
		return r.table + "." + r.name
	}
	return r.name
}

func (p *parser) parseColumnRef() (columnRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return columnRef{}, fmt.Errorf("sql: expected column name, got %q", t.text)
	}
	if p.cur().kind == tokSymbol && p.cur().text == "." {
		p.pos++
		c := p.next()
		if c.kind != tokIdent {
			return columnRef{}, fmt.Errorf("sql: expected column after %q.", t.text)
		}
		return columnRef{table: t.text, name: c.name()}, nil
	}
	return columnRef{name: t.name()}, nil
}

func (t token) name() string { return t.text }

// resolve finds which query table a column reference belongs to.
func (p *parser) resolve(ref columnRef) (*catalog.Table, error) {
	if ref.table != "" {
		for _, tab := range p.tables {
			if strings.EqualFold(tab.Name, ref.table) {
				if _, ok := tab.Schema.Ordinal(ref.name); !ok {
					return nil, fmt.Errorf("sql: no column %q in %s", ref.name, tab.Name)
				}
				return tab, nil
			}
		}
		return nil, fmt.Errorf("sql: unknown table %q", ref.table)
	}
	var found *catalog.Table
	for _, tab := range p.tables {
		if _, ok := tab.Schema.Ordinal(ref.name); ok {
			if found != nil {
				return nil, fmt.Errorf("sql: column %q is ambiguous", ref.name)
			}
			found = tab
		}
	}
	if found == nil {
		return nil, fmt.Errorf("sql: unknown column %q", ref.name)
	}
	return found, nil
}

// parseWhere parses `conjunct AND conjunct AND ...`, splitting selection
// atoms per table and capturing at most one equality join predicate.
func (p *parser) parseWhere(q *opt.Query) error {
	for {
		if err := p.parseConjunct(q); err != nil {
			return err
		}
		if !p.acceptIdent("and") {
			return nil
		}
	}
}

func (p *parser) parseConjunct(q *opt.Query) error {
	left, err := p.parseColumnRef()
	if err != nil {
		return err
	}
	ltab, err := p.resolve(left)
	if err != nil {
		return err
	}

	// BETWEEN / IN forms.
	if p.acceptIdent("between") {
		lo, err := p.parseLiteral(ltab, left.name, slotVal)
		if err != nil {
			return err
		}
		if err := p.expectIdent("and"); err != nil {
			return err
		}
		hi, err := p.parseLiteral(ltab, left.name, slotVal2)
		if err != nil {
			return err
		}
		p.addAtom(q, ltab, expr.NewBetween(left.name, lo, hi))
		return nil
	}
	if p.acceptIdent("in") {
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		var vals []tuple.Value
		for {
			v, err := p.parseLiteral(ltab, left.name, slotList+len(vals))
			if err != nil {
				return err
			}
			vals = append(vals, v)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.pos++
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
		p.addAtom(q, ltab, expr.NewIn(left.name, vals...))
		return nil
	}

	opTok := p.next()
	if opTok.kind != tokOp {
		return fmt.Errorf("sql: expected comparison operator, got %q", opTok.text)
	}
	var op expr.CmpOp
	switch opTok.text {
	case "=":
		op = expr.Eq
	case "<>":
		op = expr.Ne
	case "<":
		op = expr.Lt
	case "<=":
		op = expr.Le
	case ">":
		op = expr.Gt
	case ">=":
		op = expr.Ge
	}

	// Right side: literal, or a column (join predicate).
	if p.cur().kind == tokIdent {
		right, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		rtab, err := p.resolve(right)
		if err != nil {
			return err
		}
		if op != expr.Eq {
			return fmt.Errorf("sql: only equality joins are supported")
		}
		if rtab == ltab {
			return fmt.Errorf("sql: self-comparison %s.%s = %s.%s not supported", ltab.Name, left.name, rtab.Name, right.name)
		}
		if q.JoinCol != "" {
			return fmt.Errorf("sql: multiple join predicates not supported")
		}
		// Normalize: JoinCol on q.Table, JoinCol2 on q.Table2.
		if strings.EqualFold(ltab.Name, q.Table) {
			q.JoinCol, q.JoinCol2 = left.name, right.name
		} else {
			q.JoinCol, q.JoinCol2 = right.name, left.name
		}
		return nil
	}
	val, err := p.parseLiteral(ltab, left.name, slotVal)
	if err != nil {
		return err
	}
	p.addAtom(q, ltab, expr.NewAtom(left.name, op, val))
	return nil
}

func (p *parser) addAtom(q *opt.Query, tab *catalog.Table, a expr.Atom) {
	table2 := !strings.EqualFold(tab.Name, q.Table)
	var atomIdx int
	if table2 {
		q.Pred2.Atoms = append(q.Pred2.Atoms, a)
		atomIdx = len(q.Pred2.Atoms) - 1
	} else {
		q.Pred.Atoms = append(q.Pred.Atoms, a)
		atomIdx = len(q.Pred.Atoms) - 1
	}
	for _, pp := range p.pending {
		p.params = append(p.params, ParamSite{
			Ordinal: pp.ordinal,
			Table2:  table2,
			Atom:    atomIdx,
			Slot:    pp.slot,
			Col:     a.Col,
			Kind:    pp.kind,
		})
	}
	p.pending = p.pending[:0]
}

// Literal slots within one atom, for parameter-site bookkeeping: Val, Val2
// (the BETWEEN upper bound), and slotList+i for the i-th IN-list element.
const (
	slotVal  = 0
	slotVal2 = 1
	slotList = 2
)

// paramOrdinal resolves a placeholder token to its 0-based argument index,
// enforcing that '?' and '$n' styles are not mixed.
func (p *parser) paramOrdinal(t token) (int, error) {
	if t.text == "?" {
		if p.sawNumbered {
			return 0, fmt.Errorf("sql: cannot mix ? and $n placeholders")
		}
		p.sawPositional = true
		ord := p.nextOrdinal
		p.nextOrdinal++
		return ord, nil
	}
	if p.sawPositional {
		return 0, fmt.Errorf("sql: cannot mix ? and $n placeholders")
	}
	p.sawNumbered = true
	n, err := strconv.Atoi(t.text[1:])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("sql: bad parameter %q", t.text)
	}
	return n - 1, nil
}

// parseLiteral reads a literal and coerces it to the column's type. In a
// template (ParseTemplate), a placeholder is accepted instead: the site is
// recorded for Bind and the atom gets a typed zero value so the template
// query stays structurally complete.
func (p *parser) parseLiteral(tab *catalog.Table, col string, slot int) (tuple.Value, error) {
	ord, ok := tab.Schema.Ordinal(col)
	if !ok {
		return tuple.Value{}, fmt.Errorf("sql: no column %q in %s", col, tab.Name)
	}
	kind := tab.Schema.Column(ord).Kind
	if p.cur().kind == tokParam {
		t := p.next()
		if !p.allowParams {
			return tuple.Value{}, fmt.Errorf("sql: parameter %q outside a prepared statement", t.text)
		}
		o, err := p.paramOrdinal(t)
		if err != nil {
			return tuple.Value{}, err
		}
		p.pending = append(p.pending, pendingParam{ordinal: o, slot: slot, kind: kind})
		return tuple.Value{Kind: kind}, nil
	}
	t := p.next()
	switch t.kind {
	case tokNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return tuple.Value{}, fmt.Errorf("sql: bad number %q", t.text)
		}
		if kind == tuple.KindDate {
			return tuple.Date(n), nil
		}
		if kind != tuple.KindInt {
			return tuple.Value{}, fmt.Errorf("sql: numeric literal for %s column %s", kind, col)
		}
		return tuple.Int64(n), nil
	case tokString:
		if kind == tuple.KindDate {
			d, err := time.Parse("2006-01-02", t.text)
			if err != nil {
				return tuple.Value{}, fmt.Errorf("sql: bad date %q (want YYYY-MM-DD)", t.text)
			}
			return tuple.DateFromTime(d), nil
		}
		if kind != tuple.KindString {
			return tuple.Value{}, fmt.Errorf("sql: string literal for %s column %s", kind, col)
		}
		return tuple.Str(t.text), nil
	default:
		return tuple.Value{}, fmt.Errorf("sql: expected literal, got %q", t.text)
	}
}
