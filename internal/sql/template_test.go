package sql

import (
	"strings"
	"testing"
	"time"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

func TestParseTemplatePositional(t *testing.T) {
	cat := testCatalog(t)
	tmpl, err := ParseTemplate(cat,
		"SELECT COUNT(pad) FROM sales WHERE id BETWEEN ? AND ? AND state = ? AND shipdate < ?")
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.NumParams != 4 || len(tmpl.Sites) != 4 {
		t.Fatalf("NumParams=%d sites=%d", tmpl.NumParams, len(tmpl.Sites))
	}
	kinds := tmpl.ParamKinds()
	want := []tuple.Kind{tuple.KindInt, tuple.KindInt, tuple.KindString, tuple.KindDate}
	for i, k := range want {
		if kinds[i] != k {
			t.Errorf("ParamKinds[%d] = %v, want %v", i, kinds[i], k)
		}
	}

	q, err := tmpl.Bind([]tuple.Value{
		tuple.Int64(10), tuple.Int64(20), tuple.Str("CA"), tuple.Str("2007-06-01"),
	})
	if err != nil {
		t.Fatal(err)
	}
	a0 := q.Pred.Atoms[0]
	if a0.Op != expr.Between || a0.Val.Int != 10 || a0.Val2.Int != 20 {
		t.Errorf("between atom = %+v", a0)
	}
	if q.Pred.Atoms[1].Val.Str != "CA" {
		t.Errorf("string atom = %+v", q.Pred.Atoms[1])
	}
	wantDate := tuple.DateFromTime(time.Date(2007, 6, 1, 0, 0, 0, 0, time.UTC))
	if got := q.Pred.Atoms[2].Val; got.Kind != tuple.KindDate || got.Int != wantDate.Int {
		t.Errorf("date atom = %+v, want %v", got, wantDate)
	}

	// The template itself must stay zero-valued: Bind clones.
	if tmpl.Query.Pred.Atoms[0].Val.Int != 0 || tmpl.Query.Pred.Atoms[1].Val.Str != "" {
		t.Errorf("Bind mutated the template: %+v", tmpl.Query.Pred)
	}
	// Two binds alias nothing.
	q2, err := tmpl.Bind([]tuple.Value{
		tuple.Int64(1), tuple.Int64(2), tuple.Str("NY"), tuple.Int64(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if q2.Pred.Atoms[0].Val.Int != 1 || q.Pred.Atoms[0].Val.Int != 10 {
		t.Error("binds alias each other")
	}
}

func TestParseTemplateNumberedAndIn(t *testing.T) {
	cat := testCatalog(t)
	tmpl, err := ParseTemplate(cat,
		"SELECT COUNT(*) FROM sales WHERE state IN ($2, $1) AND id = $1")
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.NumParams != 2 {
		t.Fatalf("NumParams = %d, want 2", tmpl.NumParams)
	}
	// $1 is used at a string site (IN) and an int site (id =): Bind must
	// reject any single value... unless kinds agree. Here they conflict, so
	// binding an int fails at the string site and vice versa.
	if _, err := tmpl.Bind([]tuple.Value{tuple.Int64(1), tuple.Str("CA")}); err == nil {
		t.Error("conflicting-kind bind accepted")
	}

	tmpl2, err := ParseTemplate(cat,
		"SELECT COUNT(*) FROM sales WHERE state IN ($1, $2) AND id < $3")
	if err != nil {
		t.Fatal(err)
	}
	q, err := tmpl2.Bind([]tuple.Value{tuple.Str("CA"), tuple.Str("WA"), tuple.Int64(9)})
	if err != nil {
		t.Fatal(err)
	}
	in := q.Pred.Atoms[0]
	if in.Op != expr.In || in.List[0].Str != "CA" || in.List[1].Str != "WA" {
		t.Errorf("in atom = %+v", in)
	}
	if q.Pred.Atoms[1].Val.Int != 9 {
		t.Errorf("lt atom = %+v", q.Pred.Atoms[1])
	}
}

func TestParseTemplateErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		src, want string
	}{
		{"SELECT COUNT(*) FROM sales WHERE id = ? AND state = $1", "cannot mix"},
		{"SELECT COUNT(*) FROM sales WHERE id = $3", "never used"},
		{"SELECT COUNT(*) FROM sales WHERE id = $0", "bad parameter"},
		{"SELECT COUNT(*) FROM sales WHERE id = $", "expected parameter number"},
		{"SELECT COUNT(*) FROM sales LIMIT ?", "LIMIT"},
	}
	for _, c := range cases {
		if _, err := ParseTemplate(cat, c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseTemplate(%q) err = %v, want %q", c.src, err, c.want)
		}
	}
	// Plain Parse rejects placeholders outright.
	if _, err := Parse(cat, "SELECT COUNT(*) FROM sales WHERE id = ?"); err == nil ||
		!strings.Contains(err.Error(), "outside a prepared statement") {
		t.Errorf("Parse with placeholder err = %v", err)
	}
	// Wrong arity.
	tmpl, err := ParseTemplate(cat, "SELECT COUNT(*) FROM sales WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmpl.Bind(nil); err == nil {
		t.Error("Bind with missing argument accepted")
	}
}

// TestQueryKeySharesTemplates: textually different instances of one template
// share a key; structurally different queries do not.
func TestQueryKeySharesTemplates(t *testing.T) {
	cat := testCatalog(t)
	parse := func(src string) string {
		q, err := Parse(cat, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return QueryKey(q)
	}
	k1 := parse("SELECT COUNT(pad) FROM sales WHERE id < 10 AND state = 'CA'")
	k2 := parse("SELECT COUNT(pad) FROM sales WHERE id < 99999 AND state = 'NY'")
	if k1 != k2 {
		t.Errorf("same shape, different keys:\n%s\n%s", k1, k2)
	}
	distinct := []string{
		"SELECT COUNT(pad) FROM sales WHERE id < 10",                       // fewer atoms
		"SELECT COUNT(pad) FROM sales WHERE id <= 10 AND state = 'CA'",     // different op
		"SELECT COUNT(id) FROM sales WHERE id < 10 AND state = 'CA'",       // different agg col
		"SELECT SUM(id) FROM sales WHERE id < 10 AND state = 'CA'",         // different agg
		"SELECT COUNT(pad) FROM sales WHERE state = 'CA' AND id < 10",      // different atom order
		"SELECT COUNT(pad) FROM sales WHERE id IN (1, 2) AND state = 'CA'", // IN shape
	}
	seen := map[string]string{k1: "base"}
	for _, src := range distinct {
		k := parse(src)
		if prev, dup := seen[k]; dup {
			t.Errorf("%q collides with %q: %s", src, prev, k)
		}
		seen[k] = src
	}
	// IN-list length is part of the shape.
	kIn2 := parse("SELECT COUNT(pad) FROM sales WHERE id IN (1, 2)")
	kIn3 := parse("SELECT COUNT(pad) FROM sales WHERE id IN (1, 2, 3)")
	if kIn2 == kIn3 {
		t.Error("IN lists of different lengths share a key")
	}
	// Joins key on both sides.
	kj := parse("SELECT COUNT(pad) FROM sales, vendors WHERE vendors.vid < 5 AND vendors.id = sales.id")
	if kj == k1 || !strings.Contains(kj, "t2:vendors") {
		t.Errorf("join key = %s", kj)
	}
	// A template's own query keys identically to a bound instance.
	tmpl, err := ParseTemplate(cat, "SELECT COUNT(pad) FROM sales WHERE id < ? AND state = ?")
	if err != nil {
		t.Fatal(err)
	}
	q, err := tmpl.Bind([]tuple.Value{tuple.Int64(7), tuple.Str("CA")})
	if err != nil {
		t.Fatal(err)
	}
	if QueryKey(q) != k1 {
		t.Errorf("bound instance key %s != literal key %s", QueryKey(q), k1)
	}
}
