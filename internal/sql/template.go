package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/opt"
	"pagefeedback/internal/tuple"
)

// Prepared-statement templates: ParseTemplate accepts the same SELECT
// grammar as Parse plus parameter placeholders — '?' (positional) or '$n'
// (numbered, 1-based) — in literal positions of the WHERE clause. The result
// is parsed and resolved once; Bind then substitutes arguments into a fresh
// query without re-lexing or re-parsing, which is the entry point of the
// engine's plan cache.

// ParamSite locates one placeholder inside a template's predicate tree.
type ParamSite struct {
	Ordinal int  // 0-based argument index
	Table2  bool // site lives in Query.Pred2 (else Query.Pred)
	Atom    int  // index into that conjunction's Atoms
	// Slot selects the value within the atom: slotVal, slotVal2 (BETWEEN
	// upper bound), or slotList+i for the i-th IN-list element.
	Slot int
	Col  string     // column name, for error messages
	Kind tuple.Kind // column kind arguments are coerced to
}

// Template is a parsed parameterized query.
type Template struct {
	SQL       string
	Query     *opt.Query // placeholder values are typed zeros
	Sites     []ParamSite
	NumParams int
}

// ParseTemplate parses a parameterized SELECT against the catalog. A query
// with no placeholders is a valid (zero-parameter) template.
func ParseTemplate(cat *catalog.Catalog, src string) (*Template, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{cat: cat, toks: toks, allowParams: true}
	q, err := p.parseSelect()
	if err != nil {
		return nil, fmt.Errorf("%w (near %q)", err, p.near())
	}
	n := 0
	for _, s := range p.params {
		if s.Ordinal+1 > n {
			n = s.Ordinal + 1
		}
	}
	// Numbered placeholders must be contiguous: a gap means an argument
	// that can never be bound.
	used := make([]bool, n)
	for _, s := range p.params {
		used[s.Ordinal] = true
	}
	for i, u := range used {
		if !u {
			return nil, fmt.Errorf("sql: parameter $%d is never used", i+1)
		}
	}
	// The structural key is binding-invariant (placeholders only stand in
	// for predicate constants, which QueryKey excludes), so render it once
	// here; Bind's clone carries it to every execution.
	q.TemplateKey = QueryKey(q)
	return &Template{SQL: src, Query: q, Sites: p.params, NumParams: n}, nil
}

// ParamKinds returns the column kind each argument must coerce to, indexed
// by ordinal. An argument bound at several sites takes the first site's kind
// (Bind checks every site independently).
func (t *Template) ParamKinds() []tuple.Kind {
	kinds := make([]tuple.Kind, t.NumParams)
	seen := make([]bool, t.NumParams)
	for _, s := range t.Sites {
		if !seen[s.Ordinal] {
			kinds[s.Ordinal] = s.Kind
			seen[s.Ordinal] = true
		}
	}
	return kinds
}

// Bind substitutes arguments into a fresh copy of the template query. The
// template itself is never mutated, so one Template serves concurrent
// executions.
func (t *Template) Bind(args []tuple.Value) (*opt.Query, error) {
	if len(args) != t.NumParams {
		return nil, fmt.Errorf("sql: template wants %d parameters, got %d", t.NumParams, len(args))
	}
	q := cloneQuery(t.Query)
	for _, s := range t.Sites {
		v, err := coerceArg(args[s.Ordinal], s.Kind, s.Col)
		if err != nil {
			return nil, err
		}
		pred := &q.Pred
		if s.Table2 {
			pred = &q.Pred2
		}
		a := &pred.Atoms[s.Atom]
		switch {
		case s.Slot == slotVal:
			a.Val = v
		case s.Slot == slotVal2:
			a.Val2 = v
		default:
			a.List[s.Slot-slotList] = v
		}
	}
	return q, nil
}

// cloneQuery copies a query deeply enough that predicate values can be
// rewritten without aliasing the source: fresh atom slices, fresh IN lists.
func cloneQuery(q *opt.Query) *opt.Query {
	c := *q
	c.Pred = clonePred(q.Pred)
	c.Pred2 = clonePred(q.Pred2)
	if q.SelectCols != nil {
		c.SelectCols = append([]string(nil), q.SelectCols...)
	}
	return &c
}

func clonePred(c expr.Conjunction) expr.Conjunction {
	if len(c.Atoms) == 0 {
		return c
	}
	atoms := make([]expr.Atom, len(c.Atoms))
	copy(atoms, c.Atoms)
	for i := range atoms {
		if atoms[i].List != nil {
			atoms[i].List = append([]tuple.Value(nil), atoms[i].List...)
		}
	}
	return expr.Conjunction{Atoms: atoms}
}

// coerceArg converts one bound argument to the column kind, mirroring
// parseLiteral's coercions: integers become dates for DATE columns, strings
// in YYYY-MM-DD form parse as dates.
func coerceArg(v tuple.Value, kind tuple.Kind, col string) (tuple.Value, error) {
	switch kind {
	case tuple.KindInt:
		if v.Kind == tuple.KindInt {
			return v, nil
		}
	case tuple.KindDate:
		switch v.Kind {
		case tuple.KindDate:
			return v, nil
		case tuple.KindInt:
			return tuple.Date(v.Int), nil
		case tuple.KindString:
			d, err := time.Parse("2006-01-02", v.Str)
			if err != nil {
				return tuple.Value{}, fmt.Errorf("sql: bad date %q for column %s (want YYYY-MM-DD)", v.Str, col)
			}
			return tuple.DateFromTime(d), nil
		}
	case tuple.KindString:
		if v.Kind == tuple.KindString {
			return v, nil
		}
	}
	return tuple.Value{}, fmt.Errorf("sql: cannot bind %s argument to %s column %s", v.Kind, kind, col)
}

// QueryKey renders a query's structural shape — everything except the
// predicate constants — as a stable string. Textually different instances of
// one parameterized template produce the same key, which is what the plan
// cache groups entries by (the constants only contribute through the
// selectivity bucket computed separately).
func QueryKey(q *opt.Query) string {
	var b strings.Builder
	b.WriteString("s:")
	switch {
	case q.Star:
		b.WriteString("*")
	case len(q.SelectCols) > 0:
		for i, c := range q.SelectCols {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strings.ToLower(c))
		}
	}
	if q.GroupBy != "" || q.AggCol != "" || (!q.Star && len(q.SelectCols) == 0) {
		fmt.Fprintf(&b, "|agg:%d(%s)", int(q.Agg), strings.ToLower(q.AggCol))
	}
	if q.GroupBy != "" {
		b.WriteString("|g:" + strings.ToLower(q.GroupBy))
	}
	if q.OrderBy != "" {
		fmt.Fprintf(&b, "|o:%s,%v", strings.ToLower(q.OrderBy), q.OrderDesc)
	}
	if q.Limit > 0 {
		b.WriteString("|l:" + strconv.Itoa(q.Limit))
	}
	b.WriteString("|t:" + strings.ToLower(q.Table))
	writePredShape(&b, q.Pred)
	if q.Table2 != "" {
		b.WriteString("|t2:" + strings.ToLower(q.Table2))
		writePredShape(&b, q.Pred2)
		fmt.Fprintf(&b, "|j:%s=%s", strings.ToLower(q.JoinCol), strings.ToLower(q.JoinCol2))
	}
	return b.String()
}

// writePredShape appends the value-free shape of a conjunction: column and
// operator per atom, in order, plus the IN-list length (it changes the
// plan's index-range count, so different lengths must not share an entry).
func writePredShape(b *strings.Builder, c expr.Conjunction) {
	b.WriteString("|p:")
	for i, a := range c.Atoms {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(strings.ToLower(a.Col))
		b.WriteByte(':')
		b.WriteString(a.Op.String())
		if a.Op == expr.In {
			b.WriteString(strconv.Itoa(len(a.List)))
		}
	}
}
