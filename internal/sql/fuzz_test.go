package sql

import (
	"testing"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// FuzzParse asserts the parser never panics, whatever the input: it either
// returns a query or an error. Run the seed corpus with `go test`, or
// explore with `go test -fuzz FuzzParse ./internal/sql`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(pad) FROM sales WHERE id < 10",
		"SELECT * FROM sales ORDER BY id DESC LIMIT 3",
		"SELECT state, COUNT(*) FROM sales GROUP BY state",
		"SELECT COUNT(pad) FROM sales, vendors WHERE vendors.id = sales.id AND vid IN (1,2,3)",
		"SELECT SUM(id) FROM sales WHERE shipdate BETWEEN '2007-01-01' AND '2007-02-01'",
		"select min(id) from sales where state = 'O''Brien'",
		"SELECT",
		"SELECT ( FROM",
		"'",
		"SELECT COUNT(pad) FROM sales WHERE id < -",
		"SELECT a.b.c FROM sales",
		"SELECT * FROM sales WHERE id BETWEEN 1 AND",
		"\x00\x01\x02",
		"SELECT * FROM sales LIMIT 99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	d := storage.NewDiskManager(storage.DefaultIOModel())
	cat := catalog.New(storage.NewBufferPool(d, 64))
	sales := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "shipdate", Kind: tuple.KindDate},
		tuple.Column{Name: "state", Kind: tuple.KindString},
		tuple.Column{Name: "pad", Kind: tuple.KindString},
	)
	if _, err := cat.CreateHeapTable("sales", sales); err != nil {
		f.Fatal(err)
	}
	vendors := tuple.NewSchema(
		tuple.Column{Name: "vid", Kind: tuple.KindInt},
		tuple.Column{Name: "id", Kind: tuple.KindInt},
	)
	if _, err := cat.CreateHeapTable("vendors", vendors); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(cat, src)
		if err == nil && q == nil {
			t.Fatal("nil query with nil error")
		}
	})
}
