// Package sql implements a lexer and parser for the SELECT subset the
// paper's workloads use:
//
//	SELECT COUNT(col) FROM t WHERE c1 < 10 AND state = 'CA'
//	SELECT COUNT(t.pad) FROM t, t1 WHERE t1.c1 < 500 AND t1.c2 = t.c2
//
// Supported: COUNT/SUM/MIN/MAX aggregates (or COUNT(*)), one or two tables,
// WHERE conjunctions of comparisons, BETWEEN, IN, and one equality join
// predicate. Literals are integers, 'strings', and dates written as
// 'YYYY-MM-DD' (coerced against the column type from the catalog).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * .
	tokOp     // = <> < <= > >=
	tokParam  // ? or $n — prepared-statement parameter placeholder
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits src into tokens.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			l.ident()
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.number()
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '.':
			l.toks = append(l.toks, token{tokSymbol, string(c), l.pos})
			l.pos++
		case c == '=' || c == '<' || c == '>':
			l.op()
		case c == '?':
			l.toks = append(l.toks, token{tokParam, "?", l.pos})
			l.pos++
		case c == '$':
			if err := l.param(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
}

func (l *lexer) number() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{tokString, b.String(), start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

// param lexes a numbered placeholder: '$' followed by one or more digits.
func (l *lexer) param() error {
	start := l.pos
	l.pos++ // '$'
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos == start+1 {
		return fmt.Errorf("sql: expected parameter number after '$' at %d", start)
	}
	l.toks = append(l.toks, token{tokParam, l.src[start:l.pos], start})
	return nil
}

func (l *lexer) op() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	if l.pos < len(l.src) {
		two := string(c) + string(l.src[l.pos])
		if two == "<=" || two == ">=" || two == "<>" {
			l.pos++
			l.toks = append(l.toks, token{tokOp, two, start})
			return
		}
	}
	l.toks = append(l.toks, token{tokOp, string(c), start})
}
