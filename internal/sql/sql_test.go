package sql

import (
	"strings"
	"testing"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	d := storage.NewDiskManager(storage.DefaultIOModel())
	cat := catalog.New(storage.NewBufferPool(d, 64))
	sales := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "shipdate", Kind: tuple.KindDate},
		tuple.Column{Name: "state", Kind: tuple.KindString},
		tuple.Column{Name: "pad", Kind: tuple.KindString},
	)
	if _, err := cat.CreateHeapTable("sales", sales); err != nil {
		t.Fatal(err)
	}
	vendors := tuple.NewSchema(
		tuple.Column{Name: "vid", Kind: tuple.KindInt},
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "region", Kind: tuple.KindString},
	)
	if _, err := cat.CreateHeapTable("vendors", vendors); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestParseSingleTable(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "SELECT COUNT(pad) FROM sales WHERE shipdate = '2007-06-01' AND state = 'CA'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "sales" || q.IsJoin() {
		t.Errorf("table = %q join=%v", q.Table, q.IsJoin())
	}
	if q.Agg != plan.CountAgg || q.AggCol != "pad" {
		t.Errorf("agg = %v(%s)", q.Agg, q.AggCol)
	}
	if len(q.Pred.Atoms) != 2 {
		t.Fatalf("atoms = %v", q.Pred)
	}
	a := q.Pred.Atoms[0]
	if a.Col != "shipdate" || a.Op != expr.Eq || a.Val.Kind != tuple.KindDate {
		t.Errorf("atom0 = %+v", a)
	}
	want := tuple.DateFromTime(time.Date(2007, 6, 1, 0, 0, 0, 0, time.UTC))
	if a.Val.Int != want.Int {
		t.Errorf("date = %d, want %d", a.Val.Int, want.Int)
	}
	if q.Pred.Atoms[1].Val.Str != "CA" {
		t.Errorf("atom1 = %+v", q.Pred.Atoms[1])
	}
}

func TestParseOperatorsAndLiterals(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "select count(*) from sales where id >= -5 and id <> 7 and id <= 100")
	if err != nil {
		t.Fatal(err)
	}
	if q.AggCol != "" {
		t.Errorf("COUNT(*) got col %q", q.AggCol)
	}
	ops := []expr.CmpOp{expr.Ge, expr.Ne, expr.Le}
	for i, op := range ops {
		if q.Pred.Atoms[i].Op != op {
			t.Errorf("atom %d op = %v, want %v", i, q.Pred.Atoms[i].Op, op)
		}
	}
	if q.Pred.Atoms[0].Val.Int != -5 {
		t.Errorf("negative literal = %d", q.Pred.Atoms[0].Val.Int)
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "SELECT SUM(id) FROM sales WHERE id BETWEEN 10 AND 20 AND state IN ('CA','WA')")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != plan.SumAgg {
		t.Errorf("agg = %v", q.Agg)
	}
	if q.Pred.Atoms[0].Op != expr.Between || q.Pred.Atoms[0].Val.Int != 10 || q.Pred.Atoms[0].Val2.Int != 20 {
		t.Errorf("between = %+v", q.Pred.Atoms[0])
	}
	if q.Pred.Atoms[1].Op != expr.In || len(q.Pred.Atoms[1].List) != 2 {
		t.Errorf("in = %+v", q.Pred.Atoms[1])
	}
}

func TestParseJoin(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "SELECT COUNT(pad) FROM sales, vendors WHERE vendors.vid < 100 AND vendors.id = sales.id AND state = 'CA'")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsJoin() || q.Table != "sales" || q.Table2 != "vendors" {
		t.Fatalf("tables = %q, %q", q.Table, q.Table2)
	}
	if q.JoinCol != "id" || q.JoinCol2 != "id" {
		t.Errorf("join cols = %q, %q", q.JoinCol, q.JoinCol2)
	}
	// vid predicate lands on vendors (Pred2), state on sales (Pred).
	if len(q.Pred2.Atoms) != 1 || q.Pred2.Atoms[0].Col != "vid" {
		t.Errorf("Pred2 = %v", q.Pred2)
	}
	if len(q.Pred.Atoms) != 1 || q.Pred.Atoms[0].Col != "state" {
		t.Errorf("Pred = %v", q.Pred)
	}
}

func TestParseUnqualifiedAmbiguous(t *testing.T) {
	cat := testCatalog(t)
	// "id" exists in both tables.
	_, err := Parse(cat, "SELECT COUNT(*) FROM sales, vendors WHERE id < 5 AND vendors.id = sales.id")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("err = %v, want ambiguity", err)
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []string{
		"",
		"SELECT",
		"SELECT COUNT(pad) FROM nope",                          // unknown table
		"SELECT bogus FROM sales",                              // unknown select column
		"SELECT pad FROM sales ORDER BY nope",                  // unknown order column
		"SELECT pad FROM sales LIMIT 0",                        // non-positive limit
		"SELECT pad FROM sales LIMIT x",                        // non-numeric limit
		"SELECT COUNT(pad) FROM sales LIMIT 5",                 // limit on aggregate
		"SELECT avg(pad) FROM sales",                           // unknown aggregate
		"SELECT COUNT(pad) FROM sales WHERE bogus=1",           // unknown column
		"SELECT COUNT(pad) FROM sales WHERE state=3",           // type mismatch
		"SELECT COUNT(pad) FROM sales WHERE id='x'",            // type mismatch
		"SELECT COUNT(pad) FROM sales WHERE id <",              // missing literal
		"SELECT COUNT(pad) FROM sales, vendors",                // no join predicate
		"SELECT COUNT(pad) FROM sales WHERE id = 1 x",          // trailing tokens
		"SELECT SUM(*) FROM sales",                             // SUM(*)
		"SELECT COUNT(pad) FROM sales WHERE shipdate = 'junk'", // bad date
	}
	for _, src := range cases {
		if _, err := Parse(cat, src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "SELECT COUNT(*) FROM sales WHERE state = 'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Pred.Atoms[0].Val.Str != "O'Brien" {
		t.Errorf("escaped string = %q", q.Pred.Atoms[0].Val.Str)
	}
}

func TestParseDateAsNumber(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "SELECT COUNT(*) FROM sales WHERE shipdate < 13665")
	if err != nil {
		t.Fatal(err)
	}
	if q.Pred.Atoms[0].Val.Kind != tuple.KindDate || q.Pred.Atoms[0].Val.Int != 13665 {
		t.Errorf("date literal = %+v", q.Pred.Atoms[0].Val)
	}
}

func TestParseProjection(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "SELECT state, pad FROM sales WHERE id < 10 ORDER BY shipdate DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsProjection() || q.Star {
		t.Fatalf("projection flags: star=%v cols=%v", q.Star, q.SelectCols)
	}
	if len(q.SelectCols) != 2 || q.SelectCols[0] != "state" || q.SelectCols[1] != "pad" {
		t.Errorf("SelectCols = %v", q.SelectCols)
	}
	if q.OrderBy != "shipdate" || !q.OrderDesc {
		t.Errorf("order = %q desc=%v", q.OrderBy, q.OrderDesc)
	}
	if q.Limit != 5 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseStar(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "SELECT * FROM sales WHERE id < 10 ORDER BY id ASC")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || q.OrderBy != "id" || q.OrderDesc {
		t.Errorf("star=%v order=%q desc=%v", q.Star, q.OrderBy, q.OrderDesc)
	}
}

func TestParseQualifiedSelectList(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat,
		"SELECT sales.pad, vendors.region FROM sales, vendors WHERE vendors.id = sales.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.SelectCols) != 2 || q.SelectCols[0] != "sales.pad" || q.SelectCols[1] != "vendors.region" {
		t.Errorf("SelectCols = %v", q.SelectCols)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("select # from t"); err == nil {
		t.Error("bad character lexed")
	}
	if _, err := lex("select 'unterminated"); err == nil {
		t.Error("unterminated string lexed")
	}
}
