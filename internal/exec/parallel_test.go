package exec

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/tuple"
)

// runPlanDeg is runPlan at an explicit parallel degree, also returning the
// context for CPU-accounting comparisons.
func runPlanDeg(t *testing.T, e *env, node plan.Node, cfg *MonitorConfig, deg int) ([]tuple.Row, *Execution, *Context) {
	t.Helper()
	ctx := NewContext(e.pool)
	ctx.Parallelism = deg
	ex, err := Build(ctx, node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rows, ex, ctx
}

// sortedRowStrings canonicalizes a result set for order-insensitive
// comparison.
func sortedRowStrings(rows []tuple.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// heapEnv adds a heap table mirroring sales' integer columns, so both
// partitioning shapes (PID ranges and leaf chains) run through the same
// assertions.
func heapEnv(t *testing.T, e *env) *catalog.Table {
	t.Helper()
	schema := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "c5", Kind: tuple.KindInt},
		tuple.Column{Name: "pad", Kind: tuple.KindString},
	)
	h, err := e.cat.CreateHeapTable("hsales", schema)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("y", 60)
	rows := make([]tuple.Row, envRows)
	for i := 0; i < envRows; i++ {
		rows[i] = tuple.Row{tuple.Int64(int64(i)), tuple.Int64(int64((i * 7) % envRows)), tuple.Str(pad)}
	}
	if _, err := h.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	return h
}

// assertSameExecution runs node serially and at several parallel degrees and
// requires identical result multisets, identical DPC feedback (the byte-for-
// byte acceptance criterion of the parallel mode), and identical CPU
// accounting.
func assertSameExecution(t *testing.T, mkEnv func(t *testing.T) (*env, plan.Node, *MonitorConfig)) {
	t.Helper()
	eSer, nodeSer, cfgSer := mkEnv(t)
	serRows, serEx, serCtx := runPlanDeg(t, eSer, nodeSer, cfgSer, 0)
	serDPC := serEx.DPCResults()
	serSorted := sortedRowStrings(serRows)

	for _, deg := range []int{2, 4, 7} {
		ePar, nodePar, cfgPar := mkEnv(t)
		parRows, parEx, parCtx := runPlanDeg(t, ePar, nodePar, cfgPar, deg)
		if got, want := sortedRowStrings(parRows), serSorted; !reflect.DeepEqual(got, want) {
			t.Fatalf("deg=%d: row multiset differs: %d rows vs %d", deg, len(got), len(want))
		}
		if got, want := parEx.DPCResults(), serDPC; !reflect.DeepEqual(got, want) {
			t.Errorf("deg=%d: DPC feedback differs:\n  parallel %+v\n  serial   %+v", deg, got, want)
		}
		if got, want := parCtx.RowsTouched(), serCtx.RowsTouched(); got != want {
			t.Errorf("deg=%d: rowsTouched = %d, serial %d", deg, got, want)
		}
	}
}

func TestParallelScanMatchesSerialClustered(t *testing.T) {
	assertSameExecution(t, func(t *testing.T) (*env, plan.Node, *MonitorConfig) {
		e := newEnv(t)
		p1 := expr.NewAtom("state", expr.Eq, tuple.Str("CA"))
		p2 := expr.NewAtom("c5", expr.Lt, tuple.Int64(1500))
		node := &plan.Scan{Tab: e.sales, Pred: mustBind(t, expr.And(p1), e.sales.Schema)}
		cfg := &MonitorConfig{
			Requests: []DPCRequest{
				{Table: "sales", Pred: expr.And(p1)}, // prefix -> grouped counting
				{Table: "sales", Pred: expr.And(p2)}, // non-prefix -> DPSample
			},
			SampleFraction: 0.25,
			Seed:           7,
		}
		return e, node, cfg
	})
}

func TestParallelScanMatchesSerialHeap(t *testing.T) {
	assertSameExecution(t, func(t *testing.T) (*env, plan.Node, *MonitorConfig) {
		e := newEnv(t)
		h := heapEnv(t, e)
		p := expr.NewAtom("c5", expr.Lt, tuple.Int64(900))
		node := &plan.Scan{Tab: h, Pred: mustBind(t, expr.And(p), h.Schema)}
		cfg := &MonitorConfig{
			Requests:       []DPCRequest{{Table: "hsales", Pred: expr.And(p)}},
			SampleFraction: 0.5,
			Seed:           11,
		}
		return e, node, cfg
	})
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	assertSameExecution(t, func(t *testing.T) (*env, plan.Node, *MonitorConfig) {
		e := newEnv(t)
		outerBound := mustBind(t, expr.And(expr.NewAtom("val", expr.Lt, tuple.Int64(200))), e.dim.Schema)
		node := &plan.Join{
			Method:   plan.HashJoin,
			Outer:    &plan.Scan{Tab: e.dim, Pred: outerBound},
			Inner:    &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}},
			OuterCol: "id", InnerCol: "id", Schem: joinPlanSchema(e),
		}
		cfg := &MonitorConfig{
			Requests:       []DPCRequest{{Table: "sales", Join: true}},
			SampleFraction: 1.0,
			Seed:           3,
		}
		return e, node, cfg
	})
}

func TestParallelGroupAggMatchesSerial(t *testing.T) {
	assertSameExecution(t, func(t *testing.T) (*env, plan.Node, *MonitorConfig) {
		e := newEnv(t)
		scan := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
		node := &plan.GroupAgg{
			Input: scan, GroupCol: "state", AggCol: "c5", Func: plan.SumAgg,
			Schem: tuple.NewSchema(
				tuple.Column{Name: "state", Kind: tuple.KindString},
				tuple.Column{Name: "sum", Kind: tuple.KindInt},
			),
		}
		return e, node, nil
	})
}

// TestParallelScanUnderSortIsDeterministic: a parallel scan below a Sort is
// allowed (the sort re-establishes order), and the output must be exactly —
// not just as a multiset — the serial output.
func TestParallelScanUnderSortIsDeterministic(t *testing.T) {
	e := newEnv(t)
	mkNode := func() plan.Node {
		return &plan.Sort{
			Input: &plan.Scan{Tab: e.sales, Pred: mustBind(t,
				expr.And(expr.NewAtom("c5", expr.Lt, tuple.Int64(700))), e.sales.Schema)},
			Cols: []string{"c5"},
		}
	}
	serRows, _, _ := runPlanDeg(t, e, mkNode(), nil, 0)
	parRows, parEx, _ := runPlanDeg(t, e, mkNode(), nil, 4)
	if len(serRows) != len(parRows) {
		t.Fatalf("parallel sort returned %d rows, serial %d", len(parRows), len(serRows))
	}
	for i := range serRows {
		if fmt.Sprint(serRows[i]) != fmt.Sprint(parRows[i]) {
			t.Fatalf("row %d differs after sort: %v vs %v", i, parRows[i], serRows[i])
		}
	}
	if !strings.Contains(opTreeLabels(parEx.Root.Stats()), "ParallelScan") {
		t.Error("scan under Sort did not parallelize")
	}
}

// TestLimitSubtreeStaysSerial: which rows survive a Limit depends on input
// order, so its subtree must not partition.
func TestLimitSubtreeStaysSerial(t *testing.T) {
	e := newEnv(t)
	node := &plan.Limit{
		Input: &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}},
		N:     10,
	}
	rows, ex, _ := runPlanDeg(t, e, node, nil, 4)
	if len(rows) != 10 {
		t.Fatalf("limit returned %d rows", len(rows))
	}
	if labels := opTreeLabels(ex.Root.Stats()); strings.Contains(labels, "ParallelScan") {
		t.Errorf("scan under Limit parallelized: %s", labels)
	}
}

// TestMergeJoinUnsortedInputsStaySerial: merge-join inputs consumed in scan
// order must not partition; inputs behind an explicit Sort may.
func TestMergeJoinUnsortedInputsStaySerial(t *testing.T) {
	e := newEnv(t)
	mk := func(sortOuter, sortInner bool) *plan.Join {
		return &plan.Join{
			Method:   plan.MergeJoin,
			Outer:    &plan.Scan{Tab: e.dim, Pred: expr.Conjunction{}},
			Inner:    &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}},
			OuterCol: "id", InnerCol: "id",
			SortOuter: sortOuter, SortInner: sortInner,
			Schem: joinPlanSchema(e),
		}
	}
	_, ex, _ := runPlanDeg(t, e, mk(false, false), nil, 4)
	if labels := opTreeLabels(ex.Root.Stats()); strings.Contains(labels, "ParallelScan") {
		t.Errorf("unsorted merge-join input parallelized: %s", labels)
	}
	rows, ex2, _ := runPlanDeg(t, e, mk(true, true), nil, 4)
	if labels := opTreeLabels(ex2.Root.Stats()); !strings.Contains(labels, "ParallelScan") {
		t.Errorf("sorted merge-join inputs did not parallelize: %s", labels)
	}
	if len(rows) != 500 {
		t.Errorf("merge join returned %d rows, want 500", len(rows))
	}
}

// TestParallelQuarantineMatchesSerial: an injected monitor fault on any
// partition quarantines the merged monitor exactly as a serial fault would —
// same degraded flag, same reason, query unaffected.
func TestParallelQuarantineMatchesSerial(t *testing.T) {
	assertSameExecution(t, func(t *testing.T) (*env, plan.Node, *MonitorConfig) {
		e := newEnv(t)
		p := expr.NewAtom("c5", expr.Lt, tuple.Int64(1200))
		node := &plan.Scan{Tab: e.sales, Pred: mustBind(t, expr.And(p), e.sales.Schema)}
		cfg := &MonitorConfig{
			Requests:       []DPCRequest{{Table: "sales", Pred: expr.And(p)}},
			SampleFraction: 0.5,
			Seed:           5,
			FailMonitors:   []string{MechDPSample},
		}
		return e, node, cfg
	})
}

// TestParallelWorkerPanicSurfacesAsOperatorPanic: a panic on a worker
// goroutine crosses the channel as a *OperatorPanic, exactly like the
// single-goroutine boundary.
func TestParallelWorkerPanicSurfacesAsOperatorPanic(t *testing.T) {
	e := newEnv(t)
	ctx := NewContext(e.pool)
	ctx.Parallelism = 4
	ps := NewParallelScan(ctx, e.sales, expr.Conjunction{}, 4)
	ps.SetRowMap(func(wctx *Context, row tuple.Row, emit func(tuple.Row)) {
		panic("boom in worker")
	})
	if err := ps.Open(); err != nil {
		t.Fatal(err)
	}
	var err error
	for {
		_, ok, e := ps.Next()
		if e != nil {
			err = e
			break
		}
		if !ok {
			break
		}
	}
	if cerr := ps.Close(); cerr != nil {
		t.Fatalf("close: %v", cerr)
	}
	var op *OperatorPanic
	if !errors.As(err, &op) {
		t.Fatalf("worker panic surfaced as %v (%T), want *OperatorPanic", err, err)
	}
	if op.Value != "boom in worker" {
		t.Errorf("panic value = %v", op.Value)
	}
	// The pool must be fully unpinned after teardown.
	if err := e.pool.Reset(); err != nil {
		t.Errorf("pins leaked after worker panic: %v", err)
	}
}

// opTreeLabels flattens the operator-stats tree into one label string.
func opTreeLabels(s *OpStats) string {
	out := s.Label
	for _, c := range s.Children {
		out += " " + opTreeLabels(c)
	}
	return out
}
