package exec

import (
	"fmt"
	"sort"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/core"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// seekMonitor counts distinct fetched pages with probabilistic counting
// (§III-A): in an index plan rows arrive in key order, so the same page can
// recur arbitrarily and exact counting would need duplicate elimination.
type seekMonitor struct {
	req  DPCRequest
	lc   *core.LinearCounter
	sd   *core.SampleDistinct // optional comparison estimator
	rows int64
	mech string
	// host is the attached operator's stats node; see scanMonitor.host.
	host *OpStats

	// quarantine state; see scanMonitor.
	disabled   bool
	failure    string
	injectFail bool

	// shed state; see scanMonitor. Seek monitors already sit at the linear
	// counting rung, so plant-time shedding only thins their bitmap; the
	// overhead budget can still disable them mid-query.
	shed           bool
	shedReason     string
	overheadBudget time.Duration
	obsTime        time.Duration
}

func (m *seekMonitor) observe(pid storage.PageID) {
	if m.disabled {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			m.disabled = true
			m.failure = fmt.Sprint(r)
		}
	}()
	if m.injectFail {
		panic("exec: injected monitor fault (" + m.mech + ")")
	}
	var start time.Time
	if m.overheadBudget > 0 {
		start = time.Now()
	}
	m.rows++
	m.lc.AddPID(pid)
	if m.sd != nil {
		m.sd.AddPID(pid)
	}
	if m.overheadBudget > 0 {
		m.obsTime += time.Since(start)
		if m.obsTime > m.overheadBudget {
			m.disabled = true
			m.shed = true
			m.shedReason = fmt.Sprintf("load-shed: observation overhead %v exceeded budget %v",
				m.obsTime, m.overheadBudget)
		}
	}
}

func (m *seekMonitor) hostID() int32 {
	if m.host == nil {
		return -1
	}
	return m.host.OpID
}

func (m *seekMonitor) result() DPCResult {
	if m.disabled {
		r := DPCResult{
			Request: m.req, Mechanism: m.mech, OpID: m.hostID(),
			Degraded: true, Shed: m.shed,
			Reason: "monitor quarantined: " + m.failure,
		}
		if m.shed {
			r.Reason = m.shedReason
		}
		return r
	}
	r := DPCResult{
		Request: m.req, Mechanism: m.mech, OpID: m.hostID(),
		DPC: m.lc.EstimateInt(), Cardinality: m.rows,
	}
	if m.sd != nil {
		r.SamplingEstimate = m.sd.EstimateInt()
	}
	if m.shed {
		r.Degraded = true
		r.Shed = true
		r.Reason = m.shedReason
	}
	return r
}

// IndexSeek is the Index Seek + Fetch access method: look up the index over
// the plan's key ranges, fetch each qualifying row from the table, apply the
// full predicate, and emit survivors. Fetches are where table PIDs surface.
type IndexSeek struct {
	ctx      *Context
	tab      *catalog.Table
	ix       *catalog.Index
	ranges   []expr.KeyRange
	pred     expr.Conjunction // full predicate, bound
	cc       expr.Compiled    // type-specialized pred, when compilable
	monitors []*seekMonitor
	stats    OpStats

	rangeIdx int
	it       *catalog.EntryIter
	rowBuf   tuple.Row // reused fetch destination; valid until the next Next

	// Batch state: satisfying fetches accumulate in a reused value arena
	// (decoded in place under the page pin via FetchRowAppend); row views
	// are built from bounds only after the arena settles. Transient and
	// bounded by one batch, so not charged to the memory budget.
	vals     []tuple.Value
	bounds   []int // prefix lengths into vals, one per accumulated row
	rows     []tuple.Row
	vecNoted bool
}

// NewIndexSeek builds the operator. pred must be bound to tab.Schema.
func NewIndexSeek(ctx *Context, tab *catalog.Table, ix *catalog.Index, ranges []expr.KeyRange, pred expr.Conjunction) *IndexSeek {
	return &IndexSeek{
		ctx: ctx, tab: tab, ix: ix, ranges: ranges, pred: pred, cc: compilePred(ctx, pred),
		stats: OpStats{Label: "IndexSeek(" + tab.Name + "." + ix.Name + ")"},
	}
}

// attach adds a monitor (builder only).
func (s *IndexSeek) attach(m *seekMonitor) { s.monitors = append(s.monitors, m) }

// Open implements Operator.
func (s *IndexSeek) Open() error {
	s.rangeIdx = 0
	return s.openRange()
}

func (s *IndexSeek) openRange() error {
	if s.rangeIdx >= len(s.ranges) {
		s.it = nil
		return nil
	}
	it, err := s.ix.SeekRange(s.ranges[s.rangeIdx])
	if err != nil {
		return err
	}
	s.it = it
	return nil
}

// Next implements Operator.
func (s *IndexSeek) Next() (tuple.Row, bool, error) {
	for s.it != nil {
		for s.it.Next() {
			if err := s.ctx.interrupted(); err != nil {
				return nil, false, err
			}
			s.ctx.touch(1)
			rid := s.it.RID()
			row, err := s.tab.FetchRowInto(s.rowBuf, rid) // the random-I/O Fetch
			if err != nil {
				return nil, false, err
			}
			s.rowBuf = row
			var sat bool
			if s.cc.OK() {
				sat = s.cc.Eval(row)
			} else {
				sat = s.pred.Eval(row)
			}
			for _, m := range s.monitors {
				if sat {
					m.observe(rid.Page)
				}
			}
			if sat {
				s.stats.ActRows++
				return row, true, nil
			}
		}
		if err := s.it.Err(); err != nil {
			return nil, false, err
		}
		s.it.Close()
		s.rangeIdx++
		if err := s.openRange(); err != nil {
			return nil, false, err
		}
	}
	return nil, false, nil
}

// NextBatch implements BatchOperator: up to BatchSize satisfying fetches
// accumulate in the arena before the batch is handed up. The per-entry
// sequence — poll, charge CPU, fetch, evaluate, observe on satisfaction — is
// the row path's exactly, so monitors see the same page stream and the
// accounting matches; only the hand-off granularity changes.
func (s *IndexSeek) NextBatch(b *Batch) (int, error) {
	s.ctx.noteVectorized(&s.vecNoted)
	s.vals = s.vals[:0]
	s.bounds = s.bounds[:0]
	for s.it != nil && len(s.bounds) < BatchSize {
		if !s.it.Next() {
			if err := s.it.Err(); err != nil {
				return 0, err
			}
			s.it.Close()
			s.rangeIdx++
			if err := s.openRange(); err != nil {
				return 0, err
			}
			continue
		}
		if err := s.ctx.interrupted(); err != nil {
			return 0, err
		}
		s.ctx.touch(1)
		rid := s.it.RID()
		lo := len(s.vals)
		vals, err := s.tab.FetchRowAppend(s.vals, rid) // the random-I/O Fetch
		if err != nil {
			return 0, err
		}
		row := tuple.Row(vals[lo:])
		var sat bool
		if s.cc.OK() {
			sat = s.cc.Eval(row)
		} else {
			sat = s.pred.Eval(row)
		}
		if !sat {
			s.vals = vals[:lo] // discard the fetch, keep the grown capacity
			continue
		}
		for _, m := range s.monitors {
			m.observe(rid.Page)
		}
		s.vals = vals
		s.bounds = append(s.bounds, len(vals))
	}
	if len(s.bounds) == 0 {
		return 0, nil
	}
	s.rows = s.rows[:0]
	lo := 0
	for _, hi := range s.bounds {
		s.rows = append(s.rows, tuple.Row(s.vals[lo:hi:hi]))
		lo = hi
	}
	b.Rows = s.rows
	b.Sel = identSel(b.Sel, len(s.rows))
	s.stats.ActRows += int64(len(s.rows))
	s.ctx.noteBatch()
	return len(s.rows), nil
}

// Close implements Operator.
func (s *IndexSeek) Close() error {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	return nil
}

// Schema implements Operator.
func (s *IndexSeek) Schema() *tuple.Schema { return s.tab.Schema }

// Stats implements Operator.
func (s *IndexSeek) Stats() *OpStats { return &s.stats }

// IndexIntersect is the Index Intersection access method: collect the RID
// sets from two index lookups, intersect them, fetch the surviving rows in
// RID order, and apply the full predicate.
type IndexIntersect struct {
	ctx      *Context
	tab      *catalog.Table
	ixA, ixB *catalog.Index
	rngA     []expr.KeyRange
	rngB     []expr.KeyRange
	pred     expr.Conjunction
	cc       expr.Compiled // type-specialized pred, when compilable
	monitors []*seekMonitor
	stats    OpStats

	rids   []storage.RID
	pos    int
	rowBuf tuple.Row // reused fetch destination; valid until the next Next
}

// NewIndexIntersect builds the operator.
func NewIndexIntersect(ctx *Context, tab *catalog.Table, ixA *catalog.Index, rngA []expr.KeyRange,
	ixB *catalog.Index, rngB []expr.KeyRange, pred expr.Conjunction) *IndexIntersect {
	return &IndexIntersect{
		ctx: ctx, tab: tab, ixA: ixA, ixB: ixB, rngA: rngA, rngB: rngB,
		pred: pred, cc: compilePred(ctx, pred),
		stats: OpStats{Label: "IndexIntersect(" + tab.Name + ")"},
	}
}

// attach adds a monitor (builder only).
func (s *IndexIntersect) attach(m *seekMonitor) { s.monitors = append(s.monitors, m) }

func (s *IndexIntersect) collect(ix *catalog.Index, ranges []expr.KeyRange) (map[int64]struct{}, error) {
	set := make(map[int64]struct{})
	for _, r := range ranges {
		it, err := ix.SeekRange(r)
		if err != nil {
			return nil, err
		}
		var lastLeaf storage.PageID
		started := false
		for it.Next() {
			// Poll cancellation once per index leaf, not per entry.
			if leaf := it.LeafPage(); !started || leaf != lastLeaf {
				if err := s.ctx.interrupted(); err != nil {
					it.Close()
					return nil, err
				}
				started = true
				lastLeaf = leaf
			}
			s.ctx.touch(1)
			if err := s.ctx.Mem.Grow(8 + mapEntryOverhead); err != nil {
				it.Close()
				return nil, err
			}
			set[it.RID().AsInt64()] = struct{}{}
		}
		err = it.Err()
		it.Close()
		if err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Open implements Operator: performs both index lookups and intersects.
func (s *IndexIntersect) Open() error {
	setA, err := s.collect(s.ixA, s.rngA)
	if err != nil {
		return err
	}
	setB, err := s.collect(s.ixB, s.rngB)
	if err != nil {
		return err
	}
	s.rids = s.rids[:0]
	for rid := range setA {
		if _, ok := setB[rid]; ok {
			s.rids = append(s.rids, storage.RIDFromInt64(rid))
		}
	}
	// Fetch in RID order: real engines sort the intersected RID list to
	// turn the fetch into a forward pass over the table.
	sort.Slice(s.rids, func(i, j int) bool {
		a, b := s.rids[i], s.rids[j]
		if a.Page != b.Page {
			return a.Page < b.Page
		}
		return a.Slot < b.Slot
	})
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *IndexIntersect) Next() (tuple.Row, bool, error) {
	for s.pos < len(s.rids) {
		if err := s.ctx.interrupted(); err != nil {
			return nil, false, err
		}
		rid := s.rids[s.pos]
		s.pos++
		s.ctx.touch(1)
		row, err := s.tab.FetchRowInto(s.rowBuf, rid)
		if err != nil {
			return nil, false, err
		}
		s.rowBuf = row
		var sat bool
		if s.cc.OK() {
			sat = s.cc.Eval(row)
		} else {
			sat = s.pred.Eval(row)
		}
		for _, m := range s.monitors {
			if sat {
				m.observe(rid.Page)
			}
		}
		if sat {
			s.stats.ActRows++
			return row, true, nil
		}
	}
	return nil, false, nil
}

// Close implements Operator.
func (s *IndexIntersect) Close() error { return nil }

// Schema implements Operator.
func (s *IndexIntersect) Schema() *tuple.Schema { return s.tab.Schema }

// Stats implements Operator.
func (s *IndexIntersect) Stats() *OpStats { return &s.stats }
