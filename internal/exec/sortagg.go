package exec

import (
	"fmt"
	"sort"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

// SortOp materializes and orders its input ascending by the given columns.
// When a bit-vector filter is wired in, each drained row's join value is
// added — since the first Next of a Sort blocks until the child is fully
// consumed, the filter is complete before anything downstream (in
// particular a Merge Join's inner scan) runs, the property §IV relies on.
type SortOp struct {
	ctx    *Context
	input  Operator
	ords   []int
	desc   bool
	schema *tuple.Schema
	stats  OpStats

	filter    *filterSink
	filterOrd int

	rows []tuple.Row
	pos  int
}

// NewSort constructs the operator; ords are the sort-column ordinals.
func NewSort(ctx *Context, input Operator, ords []int) *SortOp {
	return &SortOp{ctx: ctx, input: input, ords: ords, schema: input.Schema(),
		stats: OpStats{Label: "Sort"}}
}

// SetFilter wires a bit-vector filter to fill with column ord while draining.
func (s *SortOp) SetFilter(f *filterSink, ord int) {
	s.filter = f
	s.filterOrd = ord
}

// SetDesc switches the sort to descending order.
func (s *SortOp) SetDesc(desc bool) { s.desc = desc }

// Open implements Operator: drains and sorts the input. The input is
// always closed before Open returns — even on error — so no page pins
// outlive the operator.
func (s *SortOp) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	for {
		row, ok, err := s.input.Next()
		if err != nil {
			s.input.Close() // release pins held mid-row (e.g. decode errors)
			return err
		}
		if !ok {
			break
		}
		s.ctx.touch(1)
		if s.filter != nil {
			s.filter.Add(row[s.filterOrd])
		}
		if err := s.ctx.Mem.Grow(rowMemSize(row)); err != nil {
			s.input.Close()
			return err
		}
		s.rows = append(s.rows, row.Clone())
	}
	if err := s.input.Close(); err != nil {
		return err
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, o := range s.ords {
			if c := s.rows[i][o].Compare(s.rows[j][o]); c != 0 {
				if s.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *SortOp) Next() (tuple.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	s.stats.ActRows++
	return row, true, nil
}

// Close implements Operator.
func (s *SortOp) Close() error {
	s.rows = nil
	return nil
}

// Schema implements Operator.
func (s *SortOp) Schema() *tuple.Schema { return s.schema }

// Stats implements Operator.
func (s *SortOp) Stats() *OpStats { return &s.stats }

// FilterOp applies a residual predicate in the relational engine.
type FilterOp struct {
	ctx   *Context
	input Operator
	pred  expr.Conjunction // bound to input schema
	cc    expr.Compiled    // type-specialized pred, when compilable
	stats OpStats

	inBatch  BatchOperator
	vecNoted bool
}

// NewFilter constructs the operator.
func NewFilter(ctx *Context, input Operator, pred expr.Conjunction) *FilterOp {
	return &FilterOp{ctx: ctx, input: input, pred: pred, cc: compilePred(ctx, pred),
		stats: OpStats{Label: "Filter(" + pred.String() + ")"}}
}

// Open implements Operator.
func (f *FilterOp) Open() error { return f.input.Open() }

// Next implements Operator.
func (f *FilterOp) Next() (tuple.Row, bool, error) {
	for {
		row, ok, err := f.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.ctx.touch(1)
		sat := false
		if f.cc.OK() {
			sat = f.cc.Eval(row)
		} else {
			sat = f.pred.Eval(row)
		}
		if sat {
			f.stats.ActRows++
			return row, true, nil
		}
	}
}

// NextBatch implements BatchOperator: the filter never materializes rows, it
// only compacts the batch's selection vector — column-at-a-time through the
// compiled evaluator when the predicate compiled, per-row through the
// generic one otherwise.
func (f *FilterOp) NextBatch(b *Batch) (int, error) {
	f.ctx.noteVectorized(&f.vecNoted)
	if f.inBatch == nil {
		f.inBatch = asBatch(f.input)
	}
	for {
		n, err := f.inBatch.NextBatch(b)
		if err != nil || n == 0 {
			return 0, err
		}
		f.ctx.touch(int64(n))
		if f.cc.OK() {
			b.Sel = f.cc.EvalBatch(b.Rows, b.Sel)
		} else {
			out := b.Sel[:0]
			for _, i := range b.Sel {
				if f.pred.Eval(b.Rows[i]) {
					out = append(out, i)
				}
			}
			b.Sel = out
		}
		if len(b.Sel) == 0 {
			continue
		}
		f.stats.ActRows += int64(len(b.Sel))
		f.ctx.noteBatch()
		return len(b.Sel), nil
	}
}

// Close implements Operator.
func (f *FilterOp) Close() error { return f.input.Close() }

// Schema implements Operator.
func (f *FilterOp) Schema() *tuple.Schema { return f.input.Schema() }

// Stats implements Operator.
func (f *FilterOp) Stats() *OpStats { return &f.stats }

// AggOp computes one ungrouped aggregate (COUNT/SUM/MIN/MAX) over its input
// and emits a single row.
type AggOp struct {
	ctx    *Context
	input  Operator
	fn     byte // 'c','s','m','M'
	ord    int  // column ordinal; -1 for COUNT(*)
	schema *tuple.Schema
	stats  OpStats

	done     bool
	out      [1]tuple.Row
	vecNoted bool
}

// NewAgg constructs the operator. fn is one of "count", "sum", "min", "max";
// ord is the input column ordinal (-1 for COUNT(*)).
func NewAgg(ctx *Context, input Operator, fn string, ord int, schema *tuple.Schema) (*AggOp, error) {
	var code byte
	switch fn {
	case "count":
		code = 'c'
	case "sum":
		code = 's'
	case "min":
		code = 'm'
	case "max":
		code = 'M'
	default:
		return nil, fmt.Errorf("exec: unknown aggregate %q", fn)
	}
	if code != 'c' && ord < 0 {
		return nil, fmt.Errorf("exec: %s requires a column", fn)
	}
	if ord >= 0 && code != 'c' && input.Schema().Column(ord).Kind == tuple.KindString {
		return nil, fmt.Errorf("exec: %s over a string column is not supported", fn)
	}
	return &AggOp{ctx: ctx, input: input, fn: code, ord: ord, schema: schema,
		stats: OpStats{Label: "Aggregate(" + fn + ")"}}, nil
}

// Open implements Operator.
func (a *AggOp) Open() error {
	a.done = false
	return a.input.Open()
}

// Next implements Operator. The drain pulls whole batches from the input
// when the context is vectorized (CPU charged per batch of live rows) and
// single rows otherwise; the accumulation is shared, so the two paths fold
// identically.
func (a *AggOp) Next() (tuple.Row, bool, error) {
	if a.done {
		return nil, false, nil
	}
	var count, sum int64
	var minV, maxV tuple.Value
	first := true
	acc := func(row tuple.Row) {
		count++
		if a.ord >= 0 {
			v := row[a.ord]
			if v.Kind != tuple.KindString {
				sum += v.Int
			}
			if first || v.Compare(minV) < 0 {
				minV = v
			}
			if first || v.Compare(maxV) > 0 {
				maxV = v
			}
			first = false
		}
	}
	if a.ctx.Vectorized {
		// The batch drain folds with kind-specialized loops — the switch
		// hoisted out of the per-row path, which the batch layout makes
		// possible. Each loop computes exactly what the acc closure would
		// have left in its accumulator, so the output below cannot tell the
		// paths apart.
		in := asBatch(a.input)
		var b Batch
		for {
			n, err := in.NextBatch(&b)
			if err != nil {
				return nil, false, err
			}
			if n == 0 {
				break
			}
			a.ctx.touch(int64(n))
			switch a.fn {
			case 'c':
				// COUNT(col) counts rows like COUNT(*) does (the engine has
				// no NULLs), so the whole selection folds at once.
				count += int64(len(b.Sel))
			case 's':
				for _, i := range b.Sel {
					v := b.Rows[i][a.ord]
					if v.Kind != tuple.KindString {
						sum += v.Int
					}
				}
				count += int64(len(b.Sel))
			default:
				for _, i := range b.Sel {
					acc(b.Rows[i])
				}
			}
		}
	} else {
		for {
			row, ok, err := a.input.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			a.ctx.touch(1)
			acc(row)
		}
	}
	a.done = true
	a.stats.ActRows = 1
	switch a.fn {
	case 'c':
		return tuple.Row{tuple.Int64(count)}, true, nil
	case 's':
		return tuple.Row{tuple.Int64(sum)}, true, nil
	case 'm':
		if first {
			return tuple.Row{tuple.Int64(0)}, true, nil
		}
		return tuple.Row{tuple.Int64(minV.Int)}, true, nil
	default:
		if first {
			return tuple.Row{tuple.Int64(0)}, true, nil
		}
		return tuple.Row{tuple.Int64(maxV.Int)}, true, nil
	}
}

// NextBatch implements BatchOperator: the aggregate's output is a single
// row, delivered as a one-row batch after the (batch-at-a-time) drain.
func (a *AggOp) NextBatch(b *Batch) (int, error) {
	a.ctx.noteVectorized(&a.vecNoted)
	row, ok, err := a.Next()
	if err != nil || !ok {
		return 0, err
	}
	a.out[0] = row
	b.Rows = a.out[:]
	b.Sel = append(b.Sel[:0], 0)
	a.ctx.noteBatch()
	return 1, nil
}

// Close implements Operator.
func (a *AggOp) Close() error { return a.input.Close() }

// Schema implements Operator.
func (a *AggOp) Schema() *tuple.Schema { return a.schema }

// Stats implements Operator.
func (a *AggOp) Stats() *OpStats { return &a.stats }
