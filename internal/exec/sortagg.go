package exec

import (
	"fmt"
	"sort"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

// SortOp materializes and orders its input ascending by the given columns.
// When a bit-vector filter is wired in, each drained row's join value is
// added — since the first Next of a Sort blocks until the child is fully
// consumed, the filter is complete before anything downstream (in
// particular a Merge Join's inner scan) runs, the property §IV relies on.
type SortOp struct {
	ctx    *Context
	input  Operator
	ords   []int
	desc   bool
	schema *tuple.Schema
	stats  OpStats

	filter    *filterSink
	filterOrd int

	rows []tuple.Row
	pos  int
}

// NewSort constructs the operator; ords are the sort-column ordinals.
func NewSort(ctx *Context, input Operator, ords []int) *SortOp {
	return &SortOp{ctx: ctx, input: input, ords: ords, schema: input.Schema(),
		stats: OpStats{Label: "Sort"}}
}

// SetFilter wires a bit-vector filter to fill with column ord while draining.
func (s *SortOp) SetFilter(f *filterSink, ord int) {
	s.filter = f
	s.filterOrd = ord
}

// SetDesc switches the sort to descending order.
func (s *SortOp) SetDesc(desc bool) { s.desc = desc }

// Open implements Operator: drains and sorts the input. The input is
// always closed before Open returns — even on error — so no page pins
// outlive the operator.
func (s *SortOp) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	for {
		row, ok, err := s.input.Next()
		if err != nil {
			s.input.Close() // release pins held mid-row (e.g. decode errors)
			return err
		}
		if !ok {
			break
		}
		s.ctx.touch(1)
		if s.filter != nil {
			s.filter.Add(row[s.filterOrd])
		}
		if err := s.ctx.Mem.Grow(rowMemSize(row)); err != nil {
			s.input.Close()
			return err
		}
		s.rows = append(s.rows, row.Clone())
	}
	if err := s.input.Close(); err != nil {
		return err
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, o := range s.ords {
			if c := s.rows[i][o].Compare(s.rows[j][o]); c != 0 {
				if s.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *SortOp) Next() (tuple.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	s.stats.ActRows++
	return row, true, nil
}

// Close implements Operator.
func (s *SortOp) Close() error {
	s.rows = nil
	return nil
}

// Schema implements Operator.
func (s *SortOp) Schema() *tuple.Schema { return s.schema }

// Stats implements Operator.
func (s *SortOp) Stats() *OpStats { return &s.stats }

// FilterOp applies a residual predicate in the relational engine.
type FilterOp struct {
	ctx   *Context
	input Operator
	pred  expr.Conjunction // bound to input schema
	stats OpStats
}

// NewFilter constructs the operator.
func NewFilter(ctx *Context, input Operator, pred expr.Conjunction) *FilterOp {
	return &FilterOp{ctx: ctx, input: input, pred: pred, stats: OpStats{Label: "Filter(" + pred.String() + ")"}}
}

// Open implements Operator.
func (f *FilterOp) Open() error { return f.input.Open() }

// Next implements Operator.
func (f *FilterOp) Next() (tuple.Row, bool, error) {
	for {
		row, ok, err := f.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.ctx.touch(1)
		if f.pred.Eval(row) {
			f.stats.ActRows++
			return row, true, nil
		}
	}
}

// Close implements Operator.
func (f *FilterOp) Close() error { return f.input.Close() }

// Schema implements Operator.
func (f *FilterOp) Schema() *tuple.Schema { return f.input.Schema() }

// Stats implements Operator.
func (f *FilterOp) Stats() *OpStats { return &f.stats }

// AggOp computes one ungrouped aggregate (COUNT/SUM/MIN/MAX) over its input
// and emits a single row.
type AggOp struct {
	ctx    *Context
	input  Operator
	fn     byte // 'c','s','m','M'
	ord    int  // column ordinal; -1 for COUNT(*)
	schema *tuple.Schema
	stats  OpStats

	done bool
}

// NewAgg constructs the operator. fn is one of "count", "sum", "min", "max";
// ord is the input column ordinal (-1 for COUNT(*)).
func NewAgg(ctx *Context, input Operator, fn string, ord int, schema *tuple.Schema) (*AggOp, error) {
	var code byte
	switch fn {
	case "count":
		code = 'c'
	case "sum":
		code = 's'
	case "min":
		code = 'm'
	case "max":
		code = 'M'
	default:
		return nil, fmt.Errorf("exec: unknown aggregate %q", fn)
	}
	if code != 'c' && ord < 0 {
		return nil, fmt.Errorf("exec: %s requires a column", fn)
	}
	if ord >= 0 && code != 'c' && input.Schema().Column(ord).Kind == tuple.KindString {
		return nil, fmt.Errorf("exec: %s over a string column is not supported", fn)
	}
	return &AggOp{ctx: ctx, input: input, fn: code, ord: ord, schema: schema,
		stats: OpStats{Label: "Aggregate(" + fn + ")"}}, nil
}

// Open implements Operator.
func (a *AggOp) Open() error {
	a.done = false
	return a.input.Open()
}

// Next implements Operator.
func (a *AggOp) Next() (tuple.Row, bool, error) {
	if a.done {
		return nil, false, nil
	}
	var count, sum int64
	var minV, maxV tuple.Value
	first := true
	for {
		row, ok, err := a.input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		a.ctx.touch(1)
		count++
		if a.ord >= 0 {
			v := row[a.ord]
			if v.Kind != tuple.KindString {
				sum += v.Int
			}
			if first || v.Compare(minV) < 0 {
				minV = v
			}
			if first || v.Compare(maxV) > 0 {
				maxV = v
			}
			first = false
		}
	}
	a.done = true
	a.stats.ActRows = 1
	switch a.fn {
	case 'c':
		return tuple.Row{tuple.Int64(count)}, true, nil
	case 's':
		return tuple.Row{tuple.Int64(sum)}, true, nil
	case 'm':
		if first {
			return tuple.Row{tuple.Int64(0)}, true, nil
		}
		return tuple.Row{tuple.Int64(minV.Int)}, true, nil
	default:
		if first {
			return tuple.Row{tuple.Int64(0)}, true, nil
		}
		return tuple.Row{tuple.Int64(maxV.Int)}, true, nil
	}
}

// Close implements Operator.
func (a *AggOp) Close() error { return a.input.Close() }

// Schema implements Operator.
func (a *AggOp) Schema() *tuple.Schema { return a.schema }

// Stats implements Operator.
func (a *AggOp) Stats() *OpStats { return &a.stats }
