package exec

import (
	"encoding/xml"
	"time"
)

// ExecutionStats is the engine's analog of SQL Server's "statistics xml"
// mode (§II-C, §V-A): the executed plan with estimated and actual
// cardinalities per operator, augmented with the estimated and actual
// distinct page count for each requested expression.
type ExecutionStats struct {
	XMLName xml.Name       `xml:"ExecutionStats"`
	Plan    OperatorStats  `xml:"Plan>Operator"`
	DPC     []PageCountXML `xml:"DistinctPageCounts>PageCount,omitempty"`
	Runtime RuntimeStats   `xml:"Runtime"`
}

// OperatorStats is one operator node in the XML plan. OpID, Wall, and
// Calls travel with the snapshot for EXPLAIN ANALYZE but are excluded
// from the XML: ids are an internal alignment key, and wall time is
// nonzero only on traced runs — marshaling it would make the statistics
// document differ between traced and untraced executions of the same
// query, breaking the byte-stability the feedback pipeline relies on.
type OperatorStats struct {
	Label    string          `xml:"label,attr"`
	EstRows  float64         `xml:"estimatedRows,attr"`
	ActRows  int64           `xml:"actualRows,attr"`
	EstDPC   float64         `xml:"estimatedPageCount,attr,omitempty"`
	Children []OperatorStats `xml:"Operator,omitempty"`

	OpID  int32         `xml:"-"`
	Wall  time.Duration `xml:"-"` // inclusive wall time (traced runs only)
	Calls int64         `xml:"-"` // Next/NextBatch invocations (traced runs only)
}

// PageCountXML is one monitored distinct page count.
type PageCountXML struct {
	Table      string `xml:"table,attr"`
	Expression string `xml:"expression,attr"`
	Mechanism  string `xml:"mechanism,attr"`
	Estimated  int64  `xml:"estimated,attr"` // the optimizer's analytical estimate
	Actual     int64  `xml:"actual,attr"`    // the fed-back observation
	Exact      bool   `xml:"exact,attr"`
	Degraded   bool   `xml:"degraded,attr,omitempty"` // monitor quarantined or shed mid-query
	Shed       bool   `xml:"shed,attr,omitempty"`     // degradation was load-shedding, not a fault
	Reason     string `xml:"reason,attr,omitempty"`
}

// RuntimeStats aggregates the run's resource usage.
type RuntimeStats struct {
	SimulatedIO    time.Duration `xml:"simulatedIO,attr"`
	SimulatedCPU   time.Duration `xml:"simulatedCPU,attr"`
	SimulatedTotal time.Duration `xml:"simulatedTotal,attr"`
	PhysicalReads  int64         `xml:"physicalReads,attr"`
	RandomReads    int64         `xml:"randomReads,attr"`
	LogicalReads   int64         `xml:"logicalReads,attr"`
	RowsTouched    int64         `xml:"rowsTouched,attr"`
	// QuarantinedMonitors counts DPC monitors disabled mid-query by the
	// quarantine guard; their results carry no observation.
	QuarantinedMonitors int `xml:"quarantinedMonitors,attr,omitempty"`
	// Parallelism is the effective intra-query parallel degree (0 = serial).
	Parallelism int `xml:"parallelism,attr,omitempty"`
	// PrefetchedPages counts pages the buffer pool read ahead of demand on
	// behalf of parallel scan workers.
	PrefetchedPages int64 `xml:"prefetchedPages,attr,omitempty"`
	// QueueWait is the time the query spent in the admission queue before
	// starting; QueueDepth is how many queries were already queued when it
	// arrived.
	QueueWait  time.Duration `xml:"queueWait,attr,omitempty"`
	QueueDepth int           `xml:"queueDepth,attr,omitempty"`
	// ReadRetries counts transient storage faults absorbed by the backoff
	// policy during this query.
	ReadRetries int64 `xml:"readRetries,attr,omitempty"`
	// PoolWaits / PoolWaitTime report bounded waits on exhausted buffer-pool
	// shards (graceful degradation instead of instant exhaustion errors).
	PoolWaits    int64         `xml:"poolWaits,attr,omitempty"`
	PoolWaitTime time.Duration `xml:"poolWaitTime,attr,omitempty"`
	// MemPeakBytes is the high-water mark of bytes materialized by the
	// query's allocating operators, when a memory tracker was attached.
	MemPeakBytes int64 `xml:"memPeakBytes,attr,omitempty"`
	// ShedMonitors counts DPC monitors degraded by load-shedding (planted at
	// a cheaper rung of the mechanism lattice, or disabled under pressure);
	// like quarantined monitors, their results never reach the feedback
	// cache.
	ShedMonitors int `xml:"shedMonitors,attr,omitempty"`
	// CompiledPredicates counts operators in this execution that evaluated
	// their predicate through a type-specialized compiled evaluator instead
	// of the generic per-atom dispatch.
	CompiledPredicates int64 `xml:"compiledPredicates,attr,omitempty"`
	// PlanCacheHit reports whether the plan was instantiated from the
	// engine's feedback-epoch plan cache instead of being optimized anew.
	PlanCacheHit bool `xml:"planCacheHit,attr,omitempty"`
	// BatchesProcessed counts the batches delivered by batch-native
	// operators and VectorizedOps the operator instances that ran
	// batch-native; both are zero on the row-at-a-time path. They are
	// execution-shape diagnostics, deliberately outside the row/batch
	// parity surface (everything above this comment matches across paths).
	BatchesProcessed int64 `xml:"batchesProcessed,attr,omitempty"`
	VectorizedOps    int64 `xml:"vectorizedOps,attr,omitempty"`
}

// snapshotOpStats converts the live OpStats tree into the XML form.
func snapshotOpStats(s *OpStats) OperatorStats {
	out := OperatorStats{
		Label:   s.Label,
		EstRows: s.EstRows,
		ActRows: s.ActRows,
		EstDPC:  s.EstDPC,
		OpID:    s.OpID,
		Wall:    s.Wall,
		Calls:   s.Calls,
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, snapshotOpStats(c))
	}
	return out
}

// StatsSnapshot builds the XML-ready plan statistics for the execution.
func (e *Execution) StatsSnapshot() OperatorStats {
	return snapshotOpStats(e.Root.Stats())
}

// MarshalStats renders the full ExecutionStats document as indented XML.
func MarshalStats(s ExecutionStats) (string, error) {
	b, err := xml.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}
