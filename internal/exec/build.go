package exec

import (
	"fmt"
	"strings"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/core"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/tuple"
)

// Execution is a built operator tree plus its attached DPC monitors.
type Execution struct {
	Ctx  *Context
	Root Operator

	cfg       *MonitorConfig
	scanMons  []*scanMonitor
	seekMons  []*seekMonitor
	unsat     []DPCResult
	shedRes   []DPCResult  // placeholder results for monitors never planted under shed
	satisfied map[int]bool // request index -> satisfied
	seedCtr   int64
	opCtr     int32 // next operator id; assignment order is construction order

	// orderSensitive is true while building a subtree whose row order the
	// parent depends on (merge-join inputs without an explicit sort, Limit
	// inputs). Scans in such subtrees stay serial regardless of the
	// requested parallelism; order-erasing operators (Sort, aggregates)
	// reset the flag for their inputs.
	orderSensitive bool
}

// Build instantiates the plan as an operator tree and attaches monitors per
// the §II-B rules: what can be observed depends on what the current plan
// executes. cfg may be nil (no monitoring).
func Build(ctx *Context, root plan.Node, cfg *MonitorConfig) (*Execution, error) {
	e := &Execution{Ctx: ctx, cfg: cfg, satisfied: map[int]bool{}}
	op, err := e.build(root)
	if err != nil {
		return nil, err
	}
	e.Root = op
	if cfg != nil {
		for i, req := range cfg.Requests {
			if !e.satisfied[i] {
				e.unsat = append(e.unsat, DPCResult{
					Request:   req,
					Mechanism: MechUnsatisfiable,
					OpID:      -1,
					Reason:    "the current plan does not evaluate this expression where page ids are visible (§II-B)",
				})
			}
		}
	}
	return e, nil
}

// shedLevel returns the configured plant-time shed level.
func (e *Execution) shedLevel() int {
	if e.cfg == nil {
		return 0
	}
	return e.cfg.ShedLevel
}

// shedPlaceholder marks request i satisfied with a degraded no-observation
// result: under heavy shedding the monitor is not planted at all, but the
// request still surfaces in the results (Degraded, Shed) so callers can see
// what was dropped.
func (e *Execution) shedPlaceholder(i int, req DPCRequest, mech, reason string) {
	e.shedRes = append(e.shedRes, DPCResult{
		Request: req, Mechanism: mech, OpID: -1, Degraded: true, Shed: true, Reason: reason,
	})
	e.satisfied[i] = true
}

func (e *Execution) nextSeed() int64 {
	e.seedCtr++
	if e.cfg != nil {
		return e.cfg.Seed*1000 + e.seedCtr
	}
	return e.seedCtr
}

// build constructs the operator for n and wraps it in the panic boundary;
// since children are built through the same path, a panic anywhere in the
// tree is recovered at the deepest operator it escaped from.
func (e *Execution) build(n plan.Node) (Operator, error) {
	op, err := e.buildInner(n)
	if err != nil {
		return nil, err
	}
	return e.guard(op), nil
}

// guard wraps op in the panic boundary and assigns its operator id.
// Children are guarded before their parents, so ids are in post-order:
// deterministic for a given plan, independent of whether tracing runs.
// The guard doubles as the tracing hook — it carries the context's
// recorder (nil when tracing is off) and the operator's stats node, so
// emitted spans and the stats tree share ids.
func (e *Execution) guard(op Operator) Operator {
	st := op.Stats()
	st.OpID = e.opCtr
	e.opCtr++
	return &guardOp{inner: op, tr: e.Ctx.Trace, st: st}
}

// OperatorCount reports how many operators the built tree contains —
// the count a complete trace's lifetime spans must match.
func (e *Execution) OperatorCount() int { return int(e.opCtr) }

// buildWith builds a child subtree under the given order sensitivity,
// restoring the surrounding value afterwards.
func (e *Execution) buildWith(n plan.Node, ordered bool) (Operator, error) {
	prev := e.orderSensitive
	e.orderSensitive = ordered
	op, err := e.build(n)
	e.orderSensitive = prev
	return op, err
}

func (e *Execution) buildInner(n plan.Node) (Operator, error) {
	switch node := n.(type) {
	case *plan.Scan:
		return e.buildScan(node)
	case *plan.CoveringScan:
		op := NewCoveringScan(e.Ctx, node.Index, node.Pred, node.Schem)
		e.setEst(op, n)
		return op, nil
	case *plan.Seek:
		return e.buildSeek(node)
	case *plan.Intersect:
		return e.buildIntersect(node)
	case *plan.Join:
		return e.buildJoin(node)
	case *plan.Sort:
		// The sort re-establishes order, so its input may run in any order.
		in, err := e.buildWith(node.Input, false)
		if err != nil {
			return nil, err
		}
		ords, err := resolveAll(in.Schema(), node.Cols)
		if err != nil {
			return nil, err
		}
		op := NewSort(e.Ctx, in, ords)
		op.SetDesc(node.Desc)
		e.setEst(op, n)
		op.Stats().Children = []*OpStats{in.Stats()}
		return op, nil
	case *plan.Project:
		in, err := e.build(node.Input)
		if err != nil {
			return nil, err
		}
		ords, err := resolveAll(in.Schema(), node.Cols)
		if err != nil {
			return nil, err
		}
		op := NewProject(e.Ctx, in, ords, node.Schem)
		e.setEst(op, n)
		op.Stats().Children = []*OpStats{in.Stats()}
		return op, nil
	case *plan.Limit:
		// Which rows survive a limit depends on input order: keep the
		// subtree serial so results stay deterministic.
		in, err := e.buildWith(node.Input, true)
		if err != nil {
			return nil, err
		}
		op, err := NewLimit(e.Ctx, in, node.N)
		if err != nil {
			return nil, err
		}
		e.setEst(op, n)
		op.Stats().Children = []*OpStats{in.Stats()}
		return op, nil
	case *plan.GroupAgg:
		// Hash grouping with commutative aggregates: input order is
		// irrelevant to the (sorted) output.
		in, err := e.buildWith(node.Input, false)
		if err != nil {
			return nil, err
		}
		gord, err := plan.ResolveColumn(in.Schema(), node.GroupCol)
		if err != nil {
			return nil, err
		}
		aord := -1
		if node.AggCol != "" {
			aord, err = plan.ResolveColumn(in.Schema(), node.AggCol)
			if err != nil {
				return nil, err
			}
		}
		var fn string
		switch node.Func {
		case plan.CountAgg:
			fn = "count"
		case plan.SumAgg:
			fn = "sum"
		case plan.MinAgg:
			fn = "min"
		case plan.MaxAgg:
			fn = "max"
		}
		op, err := NewGroupAgg(e.Ctx, in, gord, fn, aord, node.Schem)
		if err != nil {
			return nil, err
		}
		e.setEst(op, n)
		op.Stats().Children = []*OpStats{in.Stats()}
		return op, nil
	case *plan.Agg:
		in, err := e.buildWith(node.Input, false)
		if err != nil {
			return nil, err
		}
		ord := -1
		if node.Col != "" {
			o, err := plan.ResolveColumn(in.Schema(), node.Col)
			if err != nil {
				return nil, err
			}
			ord = o
		}
		var fn string
		switch node.Func {
		case plan.CountAgg:
			fn = "count"
		case plan.SumAgg:
			fn = "sum"
		case plan.MinAgg:
			fn = "min"
		case plan.MaxAgg:
			fn = "max"
		}
		op, err := NewAgg(e.Ctx, in, fn, ord, node.Schem)
		if err != nil {
			return nil, err
		}
		e.setEst(op, n)
		op.Stats().Children = []*OpStats{in.Stats()}
		return op, nil
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", n)
	}
}

func (e *Execution) setEst(op Operator, n plan.Node) {
	st := op.Stats()
	est := n.Est()
	st.EstRows = est.Rows
	st.EstDPC = est.DPC
}

// monitoredScan is the builder's view of an SE-side scan operator that can
// host DPC monitors and be the inner of a monitored join: the serial SEScan
// and the partition-parallel ParallelScan.
type monitoredScan interface {
	Operator
	Table() *catalog.Table
	attach(*scanMonitor)
}

// parallelDegree returns the worker count for a full scan built at this
// point, or 0 when the scan must stay serial: parallelism not requested, or
// the surrounding subtree depends on row order.
func (e *Execution) parallelDegree() int {
	if e.Ctx.Parallelism > 1 && !e.orderSensitive {
		return e.Ctx.Parallelism
	}
	return 0
}

func (e *Execution) buildScan(node *plan.Scan) (Operator, error) {
	var op Operator
	var target monitoredScan
	if node.ClusterRange != nil {
		// Range seeks stay serial: partitioning a key range would need leaf
		// boundaries inside the range, and ranges are short by design.
		ss := NewSEClusterRangeScan(e.Ctx, node.Tab, node.Pred, node.ClusterRange)
		op, target = ss, ss
	} else if deg := e.parallelDegree(); deg > 1 {
		ps := NewParallelScan(e.Ctx, node.Tab, node.Pred, deg)
		op, target = ps, ps
	} else {
		ss := NewSEScan(e.Ctx, node.Tab, node.Pred)
		op, target = ss, ss
	}
	e.setEst(op, node)
	e.attachScanMonitors(target, node)
	return op, nil
}

// attachScanMonitors plants the §II-B scan-side monitors that the scan of
// node can satisfy. target may be serial or parallel; parallel scans shard
// each monitor per partition and merge at the barrier, so the attachment
// rules are identical.
func (e *Execution) attachScanMonitors(op monitoredScan, node *plan.Scan) {
	if e.cfg == nil {
		return
	}
	for i, req := range e.cfg.Requests {
		if e.satisfied[i] || req.Join || !sameTable(req.Table, node.Tab.Name) {
			continue
		}
		bound, err := req.Pred.Bind(node.Tab.Schema)
		if err != nil {
			e.unsat = append(e.unsat, DPCResult{Request: req, Mechanism: MechUnsatisfiable, Reason: err.Error()})
			e.satisfied[i] = true
			continue
		}
		lvl := e.shedLevel()
		if node.ClusterRange != nil {
			// A range scan only sees pages inside the range: the sole
			// observable DPC is that of the plan's own full predicate
			// (rows satisfying it cannot exist outside the range).
			if core.Key(req.Table, req.Pred) != core.Key(node.Tab.Name, node.Pred) {
				continue
			}
			if lvl >= 3 {
				e.shedPlaceholder(i, req, MechExactScan,
					"load-shed: monitoring disabled under overload (level 3)")
				continue
			}
			// Range-scan counting is already free (the scan predicate's
			// truth falls out of the range bounds), so levels 1-2 keep it.
			m := &scanMonitor{req: req, kind: monExactPrefix,
				prefixLen: len(node.Pred.Atoms), gc: core.NewGroupedCounter()}
			m.injectFail = e.cfg.failInjected(m.mechanism())
			m.overheadBudget = e.cfg.OverheadBudget
			m.host = op.Stats()
			op.attach(m)
			e.scanMons = append(e.scanMons, m)
			e.satisfied[i] = true
			continue
		}
		if lvl >= 3 {
			mech := MechDPSample
			if req.Pred.IsPrefixOf(node.Pred) {
				mech = MechExactScan
			}
			e.shedPlaceholder(i, req, mech,
				"load-shed: monitoring disabled under overload (level 3)")
			continue
		}
		m := &scanMonitor{req: req}
		if req.Pred.IsPrefixOf(node.Pred) {
			// A prefix of the scan predicate: its truth value falls out of
			// short-circuited evaluation — exact counting at no extra cost.
			// Under shedding the monitor walks down the lattice: page
			// sampling at level 1, linear counting over the same free
			// prefix hits at level 2.
			switch {
			case lvl <= 0:
				m.kind = monExactPrefix
				m.prefixLen = len(req.Pred.Atoms)
				m.gc = core.NewGroupedCounter()
			case lvl == 1:
				m.kind = monSampled
				m.pred = bound
				m.dps = core.NewDPSample(e.cfg.sampleFraction(), e.nextSeed())
				m.shed = true
				m.shedReason = "load-shed: exact grouped counting degraded to page sampling (level 1)"
			default: // lvl == 2
				m.kind = monLinear
				m.prefixLen = len(req.Pred.Atoms)
				m.lcBits = e.cfg.LinearBits
				if m.lcBits == 0 {
					m.lcBits = core.DefaultLinearCounterBits(node.Tab.NumPages())
				}
				m.lc = core.NewLinearCounter(m.lcBits)
				m.shed = true
				m.shedReason = "load-shed: exact grouped counting degraded to linear counting (level 2)"
			}
		} else {
			// Not a prefix: evaluating it needs short-circuiting turned
			// off, so bound the cost with page sampling (Fig 4). Shedding
			// thins the sampling fraction instead of changing mechanism.
			m.kind = monSampled
			m.pred = bound
			f := e.cfg.sampleFraction()
			switch {
			case lvl == 1:
				f /= 4
				m.shed = true
				m.shedReason = "load-shed: sampling fraction thinned 4x (level 1)"
			case lvl >= 2:
				f /= 16
				m.shed = true
				m.shedReason = "load-shed: sampling fraction thinned 16x (level 2)"
			}
			m.dps = core.NewDPSample(f, e.nextSeed())
		}
		m.injectFail = e.cfg.failInjected(m.mechanism())
		m.overheadBudget = e.cfg.OverheadBudget
		m.host = op.Stats()
		op.attach(m)
		e.scanMons = append(e.scanMons, m)
		e.satisfied[i] = true
	}
}

func (e *Execution) newSeekMonitor(req DPCRequest, tab *catalog.Table, mech string) *seekMonitor {
	bits := e.cfg.LinearBits
	if bits == 0 {
		bits = core.DefaultLinearCounterBits(tab.NumPages())
	}
	var shedReason string
	if e.shedLevel() >= 2 {
		// Seek monitors already sit at the linear-counting rung; level 2
		// thins their bitmap to an eighth (floor 1024 bits).
		if bits/8 >= 1024 {
			bits /= 8
		} else if bits > 1024 {
			bits = 1024
		}
		shedReason = "load-shed: linear-counting bitmap thinned under overload (level 2)"
	}
	m := &seekMonitor{req: req, mech: mech, lc: core.NewLinearCounter(bits)}
	if shedReason != "" {
		m.shed = true
		m.shedReason = shedReason
	}
	m.overheadBudget = e.cfg.OverheadBudget
	m.injectFail = e.cfg.failInjected(mech)
	if e.cfg.CompareSamplingEstimator {
		size := e.cfg.ReservoirSize
		if size <= 0 {
			size = 1024
		}
		m.sd = core.NewSampleDistinct(size, e.nextSeed())
	}
	e.seekMons = append(e.seekMons, m)
	return m
}

func (e *Execution) buildSeek(node *plan.Seek) (Operator, error) {
	op := NewIndexSeek(e.Ctx, node.Tab, node.Index, node.Ranges, node.Pred)
	e.setEst(op, node)
	if e.cfg == nil {
		return op, nil
	}
	for i, req := range e.cfg.Requests {
		if e.satisfied[i] || req.Join || !sameTable(req.Table, node.Tab.Name) {
			continue
		}
		// An index plan only reveals the DPC of its own full predicate
		// (§II-B): other predicates are never evaluated on all candidate
		// pages here.
		if core.Key(req.Table, req.Pred) != core.Key(node.Tab.Name, node.Pred) {
			continue
		}
		if e.shedLevel() >= 3 {
			e.shedPlaceholder(i, req, MechLinearCount,
				"load-shed: monitoring disabled under overload (level 3)")
			continue
		}
		m := e.newSeekMonitor(req, node.Tab, MechLinearCount)
		m.host = op.Stats()
		op.attach(m)
		e.satisfied[i] = true
	}
	return op, nil
}

func (e *Execution) buildIntersect(node *plan.Intersect) (Operator, error) {
	op := NewIndexIntersect(e.Ctx, node.Tab, node.IndexA, node.RangesA, node.IndexB, node.RangesB, node.Pred)
	e.setEst(op, node)
	if e.cfg == nil {
		return op, nil
	}
	for i, req := range e.cfg.Requests {
		if e.satisfied[i] || req.Join || !sameTable(req.Table, node.Tab.Name) {
			continue
		}
		if core.Key(req.Table, req.Pred) != core.Key(node.Tab.Name, node.Pred) {
			continue
		}
		if e.shedLevel() >= 3 {
			e.shedPlaceholder(i, req, MechLinearCount,
				"load-shed: monitoring disabled under overload (level 3)")
			continue
		}
		m := e.newSeekMonitor(req, node.Tab, MechLinearCount)
		m.host = op.Stats()
		op.attach(m)
		e.satisfied[i] = true
	}
	return op, nil
}

func (e *Execution) buildJoin(node *plan.Join) (Operator, error) {
	if node.Method == plan.INLJoin {
		return e.buildINL(node)
	}
	// Merge-join inputs must arrive sorted: a child without an explicit
	// sort below the join delivers in scan order, which partitioned
	// parallelism would destroy. Hash-join children inherit the current
	// sensitivity (the join itself preserves neither input's order).
	outerOrdered := e.orderSensitive
	innerOrdered := e.orderSensitive
	if node.Method == plan.MergeJoin {
		outerOrdered = !node.SortOuter
		innerOrdered = !node.SortInner
	}
	outer, err := e.buildWith(node.Outer, outerOrdered)
	if err != nil {
		return nil, err
	}
	inner, err := e.buildWith(node.Inner, innerOrdered)
	if err != nil {
		return nil, err
	}
	outerOrd, err := plan.ResolveColumn(outer.Schema(), node.OuterCol)
	if err != nil {
		return nil, err
	}
	innerOrd, err := plan.ResolveColumn(inner.Schema(), node.InnerCol)
	if err != nil {
		return nil, err
	}

	// Optional explicit sorts for merge join (guarded like built operators).
	if node.Method == plan.MergeJoin {
		if node.SortOuter {
			so := NewSort(e.Ctx, outer, []int{outerOrd})
			so.Stats().Children = []*OpStats{outer.Stats()}
			outer = e.guard(so)
		}
		if node.SortInner {
			si := NewSort(e.Ctx, inner, []int{innerOrd})
			si.Stats().Children = []*OpStats{inner.Stats()}
			inner = e.guard(si)
		}
	}

	// Join DPC monitoring: the inner side must bottom out in an SE scan of
	// the requested table (Fig 5's probe-side Table Scan). For a merge
	// join, the filter must also be complete — or correctly partial — by
	// the time the inner scan streams: a blocking Sort on the inner only
	// (with a lazily consumed outer) drains the scan before any outer
	// value enters the filter, so that shape cannot be monitored (§IV
	// covers the other three shapes).
	innerScan := findScan(inner)
	_, innerBlocked := unwrapOp(inner).(*SortOp)
	_, outerBlocking := unwrapOp(outer).(*SortOp)
	if node.Method == plan.MergeJoin && innerBlocked && !outerBlocking {
		innerScan = nil
	}
	var sink *filterSink
	if e.cfg != nil && innerScan != nil {
		for i, req := range e.cfg.Requests {
			if e.satisfied[i] || !req.Join || !sameTable(req.Table, innerScan.Table().Name) {
				continue
			}
			joinOrd, ok := innerScan.Table().Schema.Ordinal(node.InnerCol)
			if !ok {
				continue
			}
			if e.shedLevel() >= 2 {
				// The bit-vector filter costs per-row insertions on the RE
				// side plus filter memory; under heavy shedding it is not
				// planted at all.
				e.shedPlaceholder(i, req, MechBitVector,
					"load-shed: join bit-vector filter not planted under overload (level 2+)")
				break
			}
			f := e.cfg.sampleFraction()
			var shedReason string
			if e.shedLevel() == 1 {
				f /= 4
				shedReason = "load-shed: sampling fraction thinned 4x (level 1)"
			}
			filter := core.NewBitVectorFilter(e.bitvectorBits(innerScan))
			m := &scanMonitor{
				req: req, kind: monJoinFilter,
				filter: filter, joinColOrd: joinOrd,
				dps: core.NewDPSample(f, e.nextSeed()),
			}
			if shedReason != "" {
				m.shed = true
				m.shedReason = shedReason
			}
			m.overheadBudget = e.cfg.OverheadBudget
			m.injectFail = e.cfg.failInjected(m.mechanism())
			m.host = innerScan.Stats()
			sink = &filterSink{m: m, f: filter}
			innerScan.attach(m)
			e.scanMons = append(e.scanMons, m)
			e.satisfied[i] = true
			break
		}
	}

	var op Operator
	switch node.Method {
	case plan.HashJoin:
		hj := NewHashJoin(e.Ctx, outer, inner, outerOrd, innerOrd, node.Schem)
		if sink != nil {
			hj.SetFilter(sink) // build phase fills it (Fig 5)
		}
		if ps, ok := unwrapOp(inner).(*ParallelScan); ok {
			// The probe input is a bare parallel scan: push the probe
			// phase into its workers after the build completes.
			hj.SetParallelProbe(ps)
		}
		op = hj
	case plan.MergeJoin:
		mj := NewMergeJoin(e.Ctx, outer, inner, outerOrd, innerOrd, node.Schem)
		if sink != nil {
			if so, ok := unwrapOp(outer).(*SortOp); ok {
				// Blocking sort: the filter is complete before the inner
				// scan produces its first row.
				so.SetFilter(sink, outerOrd)
			} else {
				// Partial bit-vector filter, filled as the merge consumes
				// outer rows; late matches flow back to the scan. The
				// inner is unsorted merge input here, hence always serial.
				ss, _ := innerScan.(*SEScan)
				mj.SetFilter(sink, ss)
			}
		}
		op = mj
	default:
		return nil, fmt.Errorf("exec: unsupported join method %v", node.Method)
	}
	e.setEst(op, node)
	op.Stats().Children = []*OpStats{outer.Stats(), inner.Stats()}
	return op, nil
}

// bitvectorBits sizes a join filter: the configured width, or 2 bits per
// inner-table row. Because integer values bucket by value mod width, a
// width at least the join column's domain makes the filter injective on
// dense domains (the §IV exactness condition); 2 bits/row is ~0.25% of a
// 100-byte-row table, within the paper's "less than 1% of the table size".
func (e *Execution) bitvectorBits(innerScan monitoredScan) uint64 {
	if e.cfg.BitVectorBits > 0 {
		return e.cfg.BitVectorBits
	}
	n := uint64(innerScan.Table().NumRows()) * 2
	if n < 4096 {
		n = 4096
	}
	return n
}

func (e *Execution) buildINL(node *plan.Join) (Operator, error) {
	outer, err := e.build(node.Outer)
	if err != nil {
		return nil, err
	}
	outerOrd, err := plan.ResolveColumn(outer.Schema(), node.OuterCol)
	if err != nil {
		return nil, err
	}
	op := NewINLJoin(e.Ctx, outer, outerOrd, node.InnerTab, node.InnerIndex, node.InnerPred, node.Schem)
	e.setEst(op, node)
	op.Stats().Children = []*OpStats{outer.Stats()}
	if e.cfg != nil {
		for i, req := range e.cfg.Requests {
			if e.satisfied[i] || !req.Join || !sameTable(req.Table, node.InnerTab.Name) {
				continue
			}
			if e.shedLevel() >= 3 {
				e.shedPlaceholder(i, req, MechINLFetch,
					"load-shed: monitoring disabled under overload (level 3)")
				continue
			}
			// The INL fetch stream is exactly the pages relevant to
			// DPC(inner, join-pred): probabilistic counting applies
			// directly (§IV).
			m := e.newSeekMonitor(req, node.InnerTab, MechINLFetch)
			m.host = op.Stats()
			op.attach(m)
			e.satisfied[i] = true
		}
	}
	return op, nil
}

// findScan digs through RE-side wrappers (and panic guards) to the
// storage-engine scan — serial or parallel — if the subtree bottoms out in
// one.
func findScan(op Operator) monitoredScan {
	switch o := unwrapOp(op).(type) {
	case *SEScan:
		return o
	case *ParallelScan:
		return o
	case *SortOp:
		return findScan(o.input)
	case *FilterOp:
		return findScan(o.input)
	case *ProjectOp:
		return findScan(o.input)
	case *LimitOp:
		return findScan(o.input)
	default:
		return nil
	}
}

func resolveAll(s *tuple.Schema, cols []string) ([]int, error) {
	ords := make([]int, len(cols))
	for i, c := range cols {
		o, err := plan.ResolveColumn(s, c)
		if err != nil {
			return nil, err
		}
		ords[i] = o
	}
	return ords, nil
}

func sameTable(a, b string) bool { return strings.EqualFold(a, b) }

// Run opens the root, drains all rows, closes, and finalizes monitors.
// It returns the produced rows. When the context is vectorized the sink
// pulls whole batches through the root (every built operator is wrapped in
// a guard, which speaks the batch protocol natively or via the adapter);
// otherwise it pulls one row per call. Row order, memory charges, and CPU
// accounting are identical either way.
func (e *Execution) Run() ([]tuple.Row, error) {
	if err := e.Root.Open(); err != nil {
		return nil, err
	}
	var rows []tuple.Row
	var err error
	if e.Ctx.Vectorized {
		rows, err = e.drainBatches()
	} else {
		rows, err = e.drainRows()
	}
	if err != nil {
		e.Root.Close()
		return nil, err
	}
	if err := e.Root.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}

func (e *Execution) drainRows() ([]tuple.Row, error) {
	var rows []tuple.Row
	for {
		if err := e.Ctx.interrupted(); err != nil {
			return nil, err
		}
		row, ok, err := e.Root.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		// Cloning moves the row out of page-buffer memory into query-owned
		// memory that lives until the caller drops the result set.
		if err := e.Ctx.Mem.Grow(rowMemSize(row)); err != nil {
			return nil, err
		}
		rows = append(rows, row.Clone())
	}
}

func (e *Execution) drainBatches() ([]tuple.Row, error) {
	root := asBatch(e.Root)
	var rows []tuple.Row
	var b Batch
	for {
		if err := e.Ctx.interrupted(); err != nil {
			return nil, err
		}
		n, err := root.NextBatch(&b)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return rows, nil
		}
		for _, i := range b.Sel {
			row := b.Rows[i]
			// Same per-row clone-and-charge as the row sink: batch views
			// point into operator-owned buffers that die on the next pull.
			if err := e.Ctx.Mem.Grow(rowMemSize(row)); err != nil {
				return nil, err
			}
			rows = append(rows, row.Clone())
		}
	}
}

// DPCResults finalizes and returns every monitor's result plus the
// unsatisfiable requests. Call after Run.
func (e *Execution) DPCResults() []DPCResult {
	var out []DPCResult
	for _, m := range e.scanMons {
		out = append(out, m.result())
	}
	for _, m := range e.seekMons {
		out = append(out, m.result())
	}
	out = append(out, e.shedRes...)
	out = append(out, e.unsat...)
	return out
}
