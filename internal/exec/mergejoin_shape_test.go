package exec

import (
	"testing"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/tuple"
)

// TestMergeJoinSortInnerOnlyUnmonitorable covers the one merge-join shape
// §IV cannot monitor: a blocking Sort on the inner only. The inner scan
// drains before the (lazily consumed) outer fills the partial filter, so
// attaching the monitor would silently undercount; the builder must report
// the request unsatisfiable instead.
func TestMergeJoinSortInnerOnlyUnmonitorable(t *testing.T) {
	e := newEnv(t)
	// Outer: dim, clustered on id (no sort needed). Inner: sales sorted on
	// c5 (not its clustering order) -> SortInner only.
	outerNode := &plan.Scan{Tab: e.dim, Pred: expr.Conjunction{}}
	innerNode := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
	node := &plan.Join{
		Method: plan.MergeJoin, Outer: outerNode, Inner: innerNode,
		OuterCol: "id", InnerCol: "c5", SortInner: true,
		Schem: plan.JoinSchema("dim", e.dim.Schema, "sales", e.sales.Schema),
	}
	cfg := &MonitorConfig{
		Requests:       []DPCRequest{{Table: "sales", Join: true}},
		SampleFraction: 1.0,
	}
	rows, ex := runPlan(t, e, node, cfg)
	// Join correctness: dim ids 0,3,...,1497 each match the sales row
	// whose c5 equals them (c5 is a permutation of 0..envRows-1).
	want := 0
	for i := 0; i < 500; i++ {
		if i*3 < envRows {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("merge join returned %d rows, want %d", len(rows), want)
	}
	res := ex.DPCResults()
	if len(res) != 1 || res[0].Mechanism != MechUnsatisfiable {
		t.Fatalf("results = %+v, want unsatisfiable", res)
	}
}

// TestMergeJoinBothSortedMonitorable: with sorts on both inputs, the outer
// sort is blocking, so the filter is complete before the inner sort drains
// its scan — monitoring is sound.
func TestMergeJoinBothSortedMonitorable(t *testing.T) {
	e := newEnv(t)
	outerPred := mustBind(t, expr.And(expr.NewAtom("val", expr.Lt, tuple.Int64(100))), e.dim.Schema)
	outerNode := &plan.Scan{Tab: e.dim, Pred: outerPred, Estm: plan.Estimates{Rows: 100}}
	innerNode := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
	node := &plan.Join{
		Method: plan.MergeJoin, Outer: outerNode, Inner: innerNode,
		OuterCol: "id", InnerCol: "c5", SortOuter: true, SortInner: true,
		Schem: plan.JoinSchema("dim", e.dim.Schema, "sales", e.sales.Schema),
	}
	cfg := &MonitorConfig{
		Requests:       []DPCRequest{{Table: "sales", Join: true}},
		SampleFraction: 1.0,
		Seed:           11,
	}
	rows, ex := runPlan(t, e, node, cfg)
	if len(rows) != 100 {
		t.Errorf("join returned %d rows, want 100", len(rows))
	}
	res := ex.DPCResults()
	if res[0].Mechanism != MechBitVector {
		t.Fatalf("mechanism = %s", res[0].Mechanism)
	}
	// Ground truth: pages of sales holding rows whose c5 is a dim id < 300
	// (ids 0,3,...,297).
	dimIDs := map[int64]bool{}
	for i := 0; i < 100; i++ {
		dimIDs[int64(i*3)] = true
	}
	it, _ := e.sales.ScanAll()
	pages := map[interface{}]bool{}
	for it.Next() {
		if dimIDs[it.Row()[2].Int] { // c5 ordinal 2
			pages[it.RID().Page] = true
		}
	}
	it.Close()
	want := int64(len(pages))
	if res[0].DPC < want || res[0].DPC > want+int64(float64(want)/5)+2 {
		t.Errorf("DPC = %d, true %d", res[0].DPC, want)
	}
}
