package exec

import "pagefeedback/internal/tuple"

// BatchSize caps how many rows a batch-native operator accumulates before
// handing a batch to its parent. Scans ignore it — their natural batch is
// the data page (§III-B's grouped page access) — but seek paths and
// re-batching operators (group aggregates) cut batches at this size.
const BatchSize = 1024

// Batch is the unit of the vectorized execution path: a slice of rows plus a
// selection vector of the indices that are live. Operators filter by
// compacting Sel instead of materializing survivors, so a selective filter
// over a page batch touches no row memory at all.
//
// The contract mirrors the row path's view semantics: a filled batch —
// Rows, Sel, and the rows themselves — is valid only until the next
// NextBatch call on the same operator. Consumers that keep rows (sorts,
// joins, the result sink) clone them, exactly as they do for rows returned
// by Next.
type Batch struct {
	Rows []tuple.Row
	Sel  []int
}

// Len returns the number of live rows in the batch.
func (b *Batch) Len() int { return len(b.Sel) }

// BatchOperator is an operator that can deliver rows a batch at a time.
// NextBatch fills b and returns the number of live rows; n == 0 with a nil
// error is end of stream (operators never deliver empty batches). An
// operator instance must be drained through exactly one protocol — Next or
// NextBatch — never a mix: both consume the same underlying cursor.
type BatchOperator interface {
	Operator
	NextBatch(b *Batch) (n int, err error)
}

// asBatch lifts any operator into the batch protocol: batch-native operators
// (including the panic guard, which forwards to its inner operator's batch
// view) are returned as-is, row-only operators are wrapped in a batchAdapter.
func asBatch(op Operator) BatchOperator {
	if bo, ok := op.(BatchOperator); ok {
		return bo
	}
	return &batchAdapter{Operator: op}
}

// batchAdapter lifts a row-only operator (Sort, MergeJoin, INLJoin, the
// covering and intersecting access paths) into the batch protocol with
// single-row batches. Rows produced by row-only operators may be views into
// buffers reused on the next Next call, so accumulating more than one per
// batch would force a clone per row; one-row batches keep the subtree at
// row-path cost — no better, no worse — while everything above it still
// speaks batches.
type batchAdapter struct {
	Operator
	row [1]tuple.Row
}

// NextBatch implements BatchOperator.
func (a *batchAdapter) NextBatch(b *Batch) (int, error) {
	row, ok, err := a.Operator.Next()
	if err != nil || !ok {
		return 0, err
	}
	a.row[0] = row
	b.Rows = a.row[:]
	b.Sel = append(b.Sel[:0], 0)
	return 1, nil
}

// identSel resets sel to the identity selection [0..n) and returns it.
// Operators that emit fully dense batches (every row live) use it to rebuild
// the caller's selection vector in place.
func identSel(sel []int, n int) []int {
	sel = sel[:0]
	for i := 0; i < n; i++ {
		sel = append(sel, i)
	}
	return sel
}

// VectorizedLabels returns the labels of the operators in the execution's
// plan that run batch-native when the context is vectorized, in top-down
// plan order. The walk follows only batch-pulled edges: a row-only operator
// ends the batch spine of its subtree (below it rows move one at a time
// through the adapter), and a hash join keeps batching on its probe side
// only — the build side is drained row at a time during Open.
func (e *Execution) VectorizedLabels() []string {
	var out []string
	var walk func(op Operator)
	walk = func(op Operator) {
		switch o := unwrapOp(op).(type) {
		case *SEScan:
			out = append(out, o.stats.Label)
		case *ParallelScan:
			out = append(out, o.stats.Label)
		case *IndexSeek:
			out = append(out, o.stats.Label)
		case *FilterOp:
			out = append(out, o.stats.Label)
			walk(o.input)
		case *ProjectOp:
			out = append(out, o.stats.Label)
			walk(o.input)
		case *LimitOp:
			out = append(out, o.stats.Label)
			walk(o.input)
		case *AggOp:
			out = append(out, o.stats.Label)
			walk(o.input)
		case *GroupAggOp:
			out = append(out, o.stats.Label)
			walk(o.input)
		case *HashJoinOp:
			out = append(out, o.stats.Label)
			walk(o.probe)
		}
	}
	walk(e.Root)
	return out
}
