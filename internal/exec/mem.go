package exec

import (
	"errors"
	"fmt"
	"sync/atomic"

	"pagefeedback/internal/tuple"
)

// ErrMemBudget is the underlying cause when a query exceeds its per-query
// memory budget. The engine boundary classifies it into a typed *QueryError,
// so one oversized hash build or sort aborts that query alone instead of
// pressuring the whole process.
var ErrMemBudget = errors.New("exec: per-query memory budget exceeded")

// MemTracker accounts the bytes materialized by one query's allocating
// operators — hash-join build tables, sort buffers, group-aggregate state,
// parallel-scan arenas. It is shared by all workers of a parallel query
// (child contexts carry the same tracker), so accounting is atomic.
//
// A nil *MemTracker is valid and means "unlimited": Grow on nil is a no-op
// returning nil, so operators charge unconditionally without branching on
// configuration.
type MemTracker struct {
	limit int64
	used  atomic.Int64
}

// NewMemTracker creates a tracker enforcing the given byte limit. A limit of
// zero or less means track usage but never fail.
func NewMemTracker(limit int64) *MemTracker {
	return &MemTracker{limit: limit}
}

// Grow charges n bytes against the budget. It fails — without charging —
// once the budget would be exceeded, wrapping ErrMemBudget.
func (t *MemTracker) Grow(n int64) error {
	if t == nil || n <= 0 {
		return nil
	}
	used := t.used.Add(n)
	if t.limit > 0 && used > t.limit {
		t.used.Add(-n)
		return fmt.Errorf("exec: query needs %d bytes, budget is %d: %w", used, t.limit, ErrMemBudget)
	}
	return nil
}

// Used returns the bytes currently charged. Operators do not release on
// Close — materialized state lives until the query ends — so Used is also
// the query's high-water mark.
func (t *MemTracker) Used() int64 {
	if t == nil {
		return 0
	}
	return t.used.Load()
}

// Limit returns the configured budget (0 = unlimited).
func (t *MemTracker) Limit() int64 {
	if t == nil {
		return 0
	}
	return t.limit
}

// valueMemSize approximates the in-memory footprint of one tuple.Value:
// the struct header plus the string payload, if any.
const valueMemSize = 32

// mapEntryOverhead approximates the bookkeeping cost of one map entry
// (bucket slot, key header, pointer).
const mapEntryOverhead = 48

// rowMemSize approximates the retained footprint of a materialized row.
func rowMemSize(row tuple.Row) int64 {
	n := int64(len(row)) * valueMemSize
	for _, v := range row {
		n += int64(len(v.Str))
	}
	return n
}
