package exec

import (
	"fmt"
	"math"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/core"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// MonitorConfig controls the DPC monitoring machinery for one execution.
type MonitorConfig struct {
	// Requests lists the distinct page counts to obtain.
	Requests []DPCRequest
	// SampleFraction is the DPSample page-sampling fraction f (Fig 4);
	// 0 defaults to 0.01 (the paper's 1% operating point).
	SampleFraction float64
	// LinearBits sizes LinearCounter bitmaps; 0 derives it from the
	// monitored table's page count (about one bit per page).
	LinearBits uint64
	// BitVectorBits sizes join bit-vector filters; 0 derives it from the
	// inner table's row count.
	BitVectorBits uint64
	// Seed makes sampling reproducible.
	Seed int64
	// CompareSamplingEstimator additionally runs the reservoir-sampling
	// GEE estimator next to each linear counter (§III-A comparison).
	CompareSamplingEstimator bool
	// ReservoirSize for the comparison estimator; 0 defaults to 1024.
	ReservoirSize int
	// FailMonitors is a fault-injection hook for tests: monitors whose
	// mechanism appears here panic on their first observation, exercising
	// the quarantine path. Production callers leave it empty.
	FailMonitors []string

	// ShedLevel degrades monitors at plant time along the paper's mechanism
	// lattice (exact grouped counting → DPSample → linear counting →
	// disabled), trading observation quality for overhead under load:
	//   0  full fidelity (default);
	//   1  exact prefix counters become DPSample, sampled monitors thin
	//      their fraction;
	//   2  prefix monitors fall to linear counting, sampling thins further,
	//      join filters are not planted;
	//   3  no monitors are planted at all.
	// Every monitor degraded relative to level 0 reports Degraded (with
	// Shed set), so its observation never reaches the feedback cache —
	// mirroring the quarantine contract.
	ShedLevel int
	// OverheadBudget, when > 0, caps each monitor's cumulative observation
	// wall time; a monitor that exceeds it sheds itself mid-query — the
	// §III-B short-circuit disable generalized from per-page sampling cost
	// to measured overhead.
	OverheadBudget time.Duration
}

// failInjected reports whether fault injection is armed for mechanism mech.
func (mc *MonitorConfig) failInjected(mech string) bool {
	for _, m := range mc.FailMonitors {
		if m == mech {
			return true
		}
	}
	return false
}

func (mc *MonitorConfig) sampleFraction() float64 {
	if mc.SampleFraction <= 0 || mc.SampleFraction > 1 {
		return 0.01
	}
	return mc.SampleFraction
}

// DPCRequest asks for one distinct page count.
type DPCRequest struct {
	// Table is the table whose pages are being counted.
	Table string
	// Pred is the predicate expression p of DPC(T, p). Ignored when Join
	// is true.
	Pred expr.Conjunction
	// Join requests DPC(Table, join-predicate) — the quantity needed to
	// cost an INL join with Table as the inner relation (§IV).
	Join bool
}

// String renders the request.
func (r DPCRequest) String() string {
	if r.Join {
		return fmt.Sprintf("DPC(%s, <join predicate>)", r.Table)
	}
	return fmt.Sprintf("DPC(%s, %s)", r.Table, r.Pred)
}

// Mechanism names reported in DPCResult, matching the paper's sections.
const (
	MechExactScan     = "exact-scan"          // grouped counting, prefix predicate (§III-B)
	MechDPSample      = "dpsample"            // page sampling, short-circuiting off on sample (§III-B)
	MechLinearCount   = "linear-counting"     // probabilistic counting on Fetch (§III-A)
	MechBitVector     = "bitvector+dpsample"  // derived semi-join predicate (§IV)
	MechINLFetch      = "linear-counting-inl" // probabilistic counting on INL inner fetch (§IV)
	MechUnsatisfiable = "unsatisfiable"       // current plan cannot observe this DPC (§II-B)
)

// DPCResult is one obtained distinct page count.
type DPCResult struct {
	Request   DPCRequest
	Mechanism string
	// OpID is the id of the operator the monitor was attached to (matching
	// OpStats.OpID in the executed plan), or -1 for requests that were
	// never planted: unsatisfiable ones and shed placeholders. EXPLAIN
	// ANALYZE uses it to print each DPC observation at its operator.
	OpID int32
	// DPC is the observed/estimated distinct page count (0 when
	// unsatisfiable).
	DPC int64
	// Exact is true when the mechanism guarantees the exact value.
	Exact bool
	// Cardinality is the number of qualifying rows observed alongside,
	// when the mechanism sees them (exact-scan and dpsample do).
	Cardinality int64
	// SamplingEstimate is the GEE comparison estimate, when enabled.
	SamplingEstimate int64
	// Degraded is true when the monitor produced no trustworthy observation
	// — it failed mid-query and was quarantined, or it was load-shed to a
	// cheaper mechanism under overload. The query finished normally, but
	// ApplyFeedback ignores this result.
	Degraded bool
	// Shed distinguishes load-shedding (deliberate degradation under
	// pressure; the estimate may still be present) from quarantine (the
	// monitor crashed; no observation at all).
	Shed bool `xml:"shed,attr,omitempty"`
	// Reason explains an unsatisfiable request, a quarantined monitor, or a
	// shed monitor.
	Reason string
}

// scanMonitorKind selects how a scan-side monitor counts.
type scanMonitorKind uint8

const (
	monExactPrefix scanMonitorKind = iota // predicate is a prefix of the scan predicate
	monSampled                            // DPSample; full evaluation on sampled pages
	monJoinFilter                         // bit-vector semi-join predicate
	monLinear                             // linear counting over prefix page hits (shed rung)
)

// scanMonitor is one DPC monitor attached to an SE-side scan.
type scanMonitor struct {
	req  DPCRequest
	kind scanMonitorKind
	// host is the stats node of the operator the monitor is attached to.
	// The builder assigns operator ids after attachment, so the id is read
	// through this pointer at result() time, not copied at attach time.
	// Shards leave it nil; only the template reports.
	host *OpStats

	// monExactPrefix: the scan predicate's first prefixLen atoms form the
	// monitored predicate.
	prefixLen int
	gc        *core.GroupedCounter
	rows      int64 // qualifying rows (cardinality feedback)

	// monSampled: independent evaluation of pred on sampled pages.
	pred expr.Conjunction // bound
	dps  *core.DPSample

	// monJoinFilter: bitvector membership of the join column.
	filter     *core.BitVectorFilter
	joinColOrd int

	// monLinear: probabilistic counting of prefix-satisfying pages — the
	// third rung of the shed lattice; prefix hits still come free from the
	// scan's short-circuit evaluation, only the counter is cheaper.
	lc     *core.LinearCounter
	lcBits uint64

	// quarantine state: a monitor that panics is disabled for the rest of
	// the query and reports a degraded result; the host query is unaffected.
	disabled bool
	failure  string
	// injectFail makes the first observation panic (test hook).
	injectFail bool

	// shed state: a load-shed monitor estimates at a cheaper lattice rung
	// (or not at all) and reports Degraded with this reason, keeping its
	// observation out of the feedback cache.
	shed       bool
	shedReason string
	// overheadBudget arms mid-query self-shedding: once obsTime (cumulative
	// wall time spent observing) crosses it, the monitor disables itself.
	overheadBudget time.Duration
	obsTime        time.Duration
}

// shard returns a fresh monitor that observes one page-disjoint partition of
// the template's scan. Counters are forked (same seed and fraction, no
// observations); the bit-vector filter is shared by pointer — it is complete
// and read-only by the time a parallel probe opens, so concurrent MayContain
// calls are safe. Shards are folded back into the template with absorb at the
// partition barrier.
func (m *scanMonitor) shard() *scanMonitor {
	s := &scanMonitor{
		req: m.req, kind: m.kind, prefixLen: m.prefixLen, pred: m.pred,
		filter: m.filter, joinColOrd: m.joinColOrd,
		disabled: m.disabled, failure: m.failure, injectFail: m.injectFail,
		shed: m.shed, shedReason: m.shedReason, overheadBudget: m.overheadBudget,
		lcBits: m.lcBits,
	}
	switch m.kind {
	case monExactPrefix:
		s.gc = core.NewGroupedCounter()
	case monLinear:
		s.lc = core.NewLinearCounter(m.lcBits)
	default:
		s.dps = m.dps.Fork()
	}
	return s
}

// absorb folds a partition shard's observations into the template monitor,
// behind the quarantine guard. A quarantined shard quarantines the template:
// a monitor that failed on any partition produced no trustworthy observation,
// exactly as in serial execution. Because every core counter merge is
// commutative and the partitions are page-disjoint, the absorbed totals are
// identical to a serial scan's.
func (m *scanMonitor) absorb(s *scanMonitor) {
	if s.disabled && !m.disabled {
		m.disabled = true
		m.failure = s.failure
		m.shed = s.shed
		m.shedReason = s.shedReason
	}
	if m.disabled {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			m.quarantine(r)
		}
	}()
	m.rows += s.rows
	m.obsTime += s.obsTime
	switch m.kind {
	case monExactPrefix:
		m.gc.Merge(s.gc)
	case monLinear:
		m.lc.Merge(s.lc)
	default:
		m.dps.Merge(s.dps)
	}
}

// mechanism names the monitor's reporting mechanism.
func (m *scanMonitor) mechanism() string {
	switch m.kind {
	case monExactPrefix:
		return MechExactScan
	case monSampled:
		return MechDPSample
	case monLinear:
		return MechLinearCount
	default:
		return MechBitVector
	}
}

// quarantine disables the monitor for the rest of the query, recording why.
func (m *scanMonitor) quarantine(v any) {
	m.disabled = true
	m.failure = fmt.Sprint(v)
}

// shedOff disables the monitor as a deliberate load-shedding decision; the
// result is Degraded with Shed set, distinguishing it from a quarantine.
func (m *scanMonitor) shedOff(reason string) {
	m.disabled = true
	m.shed = true
	m.shedReason = reason
}

// safeObservePage is observePage behind the quarantine guard: a panic inside
// the monitor machinery (including the core counters) disables this monitor
// and returns control to the scan, which continues as if the monitor were
// never attached — monitoring failures must never fail the host query.
func (m *scanMonitor) safeObservePage(b *catalog.RowBatch, failIdx []int) {
	if m.disabled {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			m.quarantine(r)
		}
	}()
	if m.injectFail {
		panic("exec: injected monitor fault (" + m.mechanism() + ")")
	}
	if m.overheadBudget > 0 {
		start := time.Now()
		m.observePage(b, failIdx)
		m.obsTime += time.Since(start)
		if m.obsTime > m.overheadBudget {
			m.shedOff(fmt.Sprintf("load-shed: observation overhead %v exceeded budget %v",
				m.obsTime, m.overheadBudget))
		}
		return
	}
	m.observePage(b, failIdx)
}

// safeLateMatch is lateMatch behind the quarantine guard.
func (m *scanMonitor) safeLateMatch(rid storage.RID) {
	if m.disabled {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			m.quarantine(r)
		}
	}()
	m.lateMatch(rid)
}

// safeFinish closes the monitor's last page at end of scan, behind the
// quarantine guard.
func (m *scanMonitor) safeFinish() {
	if m.disabled {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			m.quarantine(r)
		}
	}()
	switch m.kind {
	case monExactPrefix:
		m.gc.Finish()
	case monLinear:
		// Linear counting has no per-page carry state to close out.
	default:
		m.dps.Finish()
	}
}

// observePage processes one page's worth of scanned rows in a single call —
// the page-batched form of the paper's per-row SE instrumentation. failIdx[i]
// is the index of the first scan-predicate atom that evaluated false for
// b.Rows[i] under short-circuiting, or -1 if the row passed; prefix monitors
// derive their result from it for free. Page-granular mechanisms (grouped
// counting, DPSample) make exactly one counter transition per page, so
// batching removes per-row monitor overhead rather than hiding it.
func (m *scanMonitor) observePage(b *catalog.RowBatch, failIdx []int) {
	switch m.kind {
	case monExactPrefix:
		hit := false
		for _, fi := range failIdx {
			if fi == -1 || fi >= m.prefixLen {
				m.rows++
				hit = true
			}
		}
		m.gc.Observe(b.PID, hit)
	case monLinear:
		hit := false
		for _, fi := range failIdx {
			if fi == -1 || fi >= m.prefixLen {
				m.rows++
				hit = true
			}
		}
		if hit {
			m.lc.AddPID(b.PID)
		}
	case monSampled:
		// One sampling decision per page; rows are evaluated (with
		// short-circuiting off) only when the page is in the sample.
		if m.dps.StartRow(b.PID) {
			hit := false
			for _, row := range b.Rows {
				if m.pred.Eval(row) {
					m.rows++
					hit = true
				}
			}
			m.dps.Observe(hit)
		}
	case monJoinFilter:
		if m.dps.StartRow(b.PID) {
			hit := false
			for _, row := range b.Rows {
				if m.filter.MayContain(row[m.joinColOrd]) {
					m.rows++
					hit = true
				}
			}
			m.dps.Observe(hit)
		}
	}
}

// filterSink is the RE-side face of a join-filter monitor: joins and sorts
// add outer join values through it while building the bit-vector filter
// (Fig 5). The sink shares quarantine state with the scan-side monitor, so a
// panic on either side of the RE/SE boundary disables the whole monitor.
type filterSink struct {
	m *scanMonitor
	f *core.BitVectorFilter
}

// Add inserts an outer join value into the filter, behind the guard.
func (fs *filterSink) Add(v tuple.Value) {
	if fs.m.disabled {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			fs.m.quarantine(r)
		}
	}()
	if fs.m.injectFail {
		panic("exec: injected monitor fault (" + fs.m.mechanism() + ")")
	}
	fs.f.Add(v)
}

// lateMatch marks the page of rid as satisfying after the fact — the
// RE-side merge join calls this through the boundary callback when an inner
// row matches an outer value that entered the partial bit vector after the
// row was scanned (§IV, partial bit-vector filters). Only the scan's
// current page can be amended; the merge join's lookahead discipline
// guarantees that is always the page in question.
func (m *scanMonitor) lateMatch(rid storage.RID) {
	if m.kind != monJoinFilter {
		return
	}
	m.dps.ObserveAtPage(rid.Page)
}

// result finalizes the monitor into a DPCResult. A quarantined monitor
// reports a degraded result: no page count, a reason, and Degraded set so
// feedback consumers skip it.
func (m *scanMonitor) result() DPCResult {
	if m.disabled {
		r := DPCResult{
			Request: m.req, Mechanism: m.mechanism(), OpID: m.hostID(),
			Degraded: true, Shed: m.shed,
			Reason: "monitor quarantined: " + m.failure,
		}
		if m.shed {
			r.Reason = m.shedReason
		}
		return r
	}
	var r DPCResult
	switch m.kind {
	case monExactPrefix:
		r = DPCResult{
			Request: m.req, Mechanism: MechExactScan,
			DPC: m.gc.Count(), Exact: true, Cardinality: m.rows,
		}
	case monLinear:
		r = DPCResult{
			Request: m.req, Mechanism: MechLinearCount,
			DPC: m.lc.EstimateInt(), Exact: false, Cardinality: m.rows,
		}
	case monSampled:
		exact := m.dps.Fraction() >= 1
		card := m.rows
		if !exact {
			card = int64(math.Round(float64(m.rows) / m.dps.Fraction()))
		}
		r = DPCResult{
			Request: m.req, Mechanism: MechDPSample,
			DPC: m.dps.EstimateInt(), Exact: exact, Cardinality: card,
		}
	default:
		card := int64(math.Round(float64(m.rows) / m.dps.Fraction()))
		r = DPCResult{
			Request: m.req, Mechanism: MechBitVector,
			DPC: m.dps.EstimateInt(), Exact: false, Cardinality: card,
		}
	}
	if m.shed {
		// Planted at a cheaper rung than requested: the estimate is present
		// but untrusted; it must not feed the cache.
		r.Degraded = true
		r.Shed = true
		r.Reason = m.shedReason
	}
	r.OpID = m.hostID()
	return r
}

// hostID returns the attached operator's id, or -1 when the monitor has
// no host (never attached, or a worker shard).
func (m *scanMonitor) hostID() int32 {
	if m.host == nil {
		return -1
	}
	return m.host.OpID
}
