package exec

import (
	"testing"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/tuple"
)

func TestIndexSeekMultipleRangesIN(t *testing.T) {
	e := newEnv(t)
	pred := expr.And(expr.NewIn("state", tuple.Str("CA"), tuple.Str("NV")))
	bound := mustBind(t, pred, e.sales.Schema)
	ix, _ := e.sales.IndexByName("ix_state")
	ranges, _, ok := expr.IndexRanges(bound, ix.Cols)
	if !ok || len(ranges) != 2 {
		t.Fatalf("IN produced %d ranges", len(ranges))
	}
	node := &plan.Seek{Tab: e.sales, Index: ix, Ranges: ranges, Pred: bound}
	rows, _ := runPlan(t, e, node, nil)
	if len(rows) != 2*envRows/5 {
		t.Errorf("IN seek returned %d rows, want %d", len(rows), 2*envRows/5)
	}
	for _, r := range rows {
		if s := r[3].Str; s != "CA" && s != "NV" {
			t.Fatalf("row with state %q", s)
		}
	}
}

func TestINLJoinResidualPredicate(t *testing.T) {
	e := newEnv(t)
	// Join dim to sales, keeping only sales rows in state CA. Per §IV the
	// selection on the INL inner is applied after the join.
	outerNode := &plan.Scan{Tab: e.dim, Pred: expr.Conjunction{}}
	ix, _ := e.sales.IndexByName("ix_id")
	innerPred := mustBind(t, expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA"))), e.sales.Schema)
	node := &plan.Join{
		Method: plan.INLJoin, Outer: outerNode,
		OuterCol: "id", InnerCol: "id",
		InnerTab: e.sales, InnerIndex: ix, InnerPred: innerPred,
		Schem: joinPlanSchema(e),
	}
	cfg := &MonitorConfig{Requests: []DPCRequest{{Table: "sales", Join: true}}}
	rows, ex := runPlan(t, e, node, cfg)
	// dim ids 0,3,...,1497: those that are CA rows (id%5==0) survive.
	want := 0
	for i := 0; i < 500; i++ {
		id := i * 3
		if id < envRows && id%5 == 0 {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("INL with residual returned %d rows, want %d", len(rows), want)
	}
	// The join DPC must reflect the JOIN predicate only (pre-residual):
	// all 500 matched rows' pages, not just CA ones.
	res := ex.DPCResults()
	trueJoin := trueJoinDPC(t, e, expr.Conjunction{})
	got := float64(res[0].DPC)
	if got < float64(trueJoin)*0.85 || got > float64(trueJoin)*1.15 {
		t.Errorf("join DPC %v should track the pre-residual join predicate (%d)", got, trueJoin)
	}
}

func TestHashJoinNoMatches(t *testing.T) {
	e := newEnv(t)
	// Outer selects dim rows with val >= 10000: none exist.
	outerPred := mustBind(t, expr.And(expr.NewAtom("val", expr.Ge, tuple.Int64(10000))), e.dim.Schema)
	outerNode := &plan.Scan{Tab: e.dim, Pred: outerPred}
	innerNode := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
	node := &plan.Join{
		Method: plan.HashJoin, Outer: outerNode, Inner: innerNode,
		OuterCol: "id", InnerCol: "id", Schem: joinPlanSchema(e),
	}
	cfg := &MonitorConfig{
		Requests:       []DPCRequest{{Table: "sales", Join: true}},
		SampleFraction: 1.0,
	}
	rows, ex := runPlan(t, e, node, cfg)
	if len(rows) != 0 {
		t.Errorf("empty join returned %d rows", len(rows))
	}
	res := ex.DPCResults()
	if res[0].DPC != 0 {
		t.Errorf("join DPC = %d for empty outer, want 0", res[0].DPC)
	}
}

func TestMergeJoinEmptyInputs(t *testing.T) {
	e := newEnv(t)
	empty := mustBind(t, expr.And(expr.NewAtom("val", expr.Ge, tuple.Int64(1<<40))), e.dim.Schema)
	outerNode := &plan.Scan{Tab: e.dim, Pred: empty}
	innerNode := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
	node := &plan.Join{
		Method: plan.MergeJoin, Outer: outerNode, Inner: innerNode,
		OuterCol: "id", InnerCol: "id", Schem: joinPlanSchema(e),
	}
	rows, _ := runPlan(t, e, node, nil)
	if len(rows) != 0 {
		t.Errorf("merge join of empty outer returned %d rows", len(rows))
	}
}

func TestFindSEScanThroughFilter(t *testing.T) {
	e := newEnv(t)
	ctx := NewContext(e.pool)
	scan := NewSEScan(ctx, e.sales, expr.Conjunction{})
	pred := mustBind(t, expr.And(expr.NewAtom("id", expr.Lt, tuple.Int64(10))), e.sales.Schema)
	f := NewFilter(ctx, scan, pred)
	srt := NewSort(ctx, f, []int{0})
	if got := findScan(srt); got != monitoredScan(scan) {
		t.Error("findScan failed to dig through Sort(Filter(Scan))")
	}
	ix, _ := e.sales.IndexByName("ix_c2")
	cov := NewCoveringScan(ctx, ix, expr.Conjunction{},
		tuple.NewSchema(tuple.Column{Name: "c2", Kind: tuple.KindInt}))
	if findScan(cov) != nil {
		t.Error("findScan found a table scan in a covering scan")
	}
}

func TestScanMonitorCardinalityScaling(t *testing.T) {
	e := newEnv(t)
	// With f=0.5, the reported cardinality should be scaled back to the
	// full population, approximately.
	p2 := expr.NewAtom("c5", expr.Lt, tuple.Int64(1000))
	scanPred := mustBind(t, expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA")), p2), e.sales.Schema)
	node := &plan.Scan{Tab: e.sales, Pred: scanPred}
	cfg := &MonitorConfig{
		Requests:       []DPCRequest{{Table: "sales", Pred: expr.And(p2)}},
		SampleFraction: 0.5,
		Seed:           13,
	}
	_, ex := runPlan(t, e, node, cfg)
	card := float64(ex.DPCResults()[0].Cardinality)
	if card < 700 || card > 1300 {
		t.Errorf("scaled cardinality = %.0f, want ~1000", card)
	}
}

func TestMonitorRequestOnUnknownColumn(t *testing.T) {
	e := newEnv(t)
	node := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
	cfg := &MonitorConfig{Requests: []DPCRequest{
		{Table: "sales", Pred: expr.And(expr.NewAtom("nonexistent", expr.Eq, tuple.Int64(1)))},
	}}
	_, ex := runPlan(t, e, node, cfg)
	res := ex.DPCResults()
	if len(res) != 1 || res[0].Mechanism != MechUnsatisfiable {
		t.Fatalf("results = %+v", res)
	}
}

func TestEmptyPredicateScanMonitor(t *testing.T) {
	e := newEnv(t)
	// DPC(T, TRUE) = all pages; the empty predicate is trivially a prefix.
	node := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
	cfg := &MonitorConfig{Requests: []DPCRequest{{Table: "sales", Pred: expr.Conjunction{}}}}
	_, ex := runPlan(t, e, node, cfg)
	res := ex.DPCResults()
	if res[0].Mechanism != MechExactScan {
		t.Fatalf("mechanism = %s", res[0].Mechanism)
	}
	if res[0].DPC != e.sales.NumPages() {
		t.Errorf("DPC(TRUE) = %d, want all %d pages", res[0].DPC, e.sales.NumPages())
	}
}

func TestClusterRangeScanOperator(t *testing.T) {
	e := newEnv(t)
	pred := mustBind(t, expr.And(expr.NewAtom("id", expr.Lt, tuple.Int64(500))), e.sales.Schema)
	ranges, _, ok := expr.IndexRanges(pred, []string{"id"})
	if !ok {
		t.Fatal("range extraction failed")
	}
	node := &plan.Scan{Tab: e.sales, Pred: pred, ClusterRange: &ranges[0]}
	cfg := &MonitorConfig{Requests: []DPCRequest{{Table: "sales", Pred: pred}}}
	rows, ex := runPlan(t, e, node, cfg)
	if len(rows) != 500 {
		t.Errorf("range scan returned %d rows, want 500", len(rows))
	}
	res := ex.DPCResults()
	if res[0].Mechanism != MechExactScan || !res[0].Exact {
		t.Fatalf("range-scan monitor = %+v", res[0])
	}
	if want := trueDPC(t, e.sales, pred); res[0].DPC != want {
		t.Errorf("DPC = %d, want %d", res[0].DPC, want)
	}
	// Only a handful of physical pages should have been read.
	ioReads := e.pool.Disk().Stats()
	_ = ioReads // informational; correctness asserted above
}

func TestClusterRangeScanForeignPredicateUnsatisfiable(t *testing.T) {
	e := newEnv(t)
	pred := mustBind(t, expr.And(expr.NewAtom("id", expr.Lt, tuple.Int64(500))), e.sales.Schema)
	ranges, _, _ := expr.IndexRanges(pred, []string{"id"})
	node := &plan.Scan{Tab: e.sales, Pred: pred, ClusterRange: &ranges[0]}
	// A predicate on another column: pages outside the range are unseen,
	// so this DPC cannot be observed from a range scan.
	cfg := &MonitorConfig{Requests: []DPCRequest{
		{Table: "sales", Pred: expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA")))},
	}}
	_, ex := runPlan(t, e, node, cfg)
	res := ex.DPCResults()
	if res[0].Mechanism != MechUnsatisfiable {
		t.Fatalf("foreign predicate on range scan: %+v", res[0])
	}
}
