package exec

import (
	"fmt"
	"runtime/debug"
	"sync"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/trace"
	"pagefeedback/internal/tuple"
)

// parFlushRows is how many rows a worker accumulates before shipping a batch
// to the consumer; large enough to amortize channel traffic, small enough to
// keep the pipeline moving.
const parFlushRows = 1024

// parPrefetchChunk is the read-ahead window a worker asks the buffer pool to
// prefetch as it advances through its page range.
const parPrefetchChunk = 16

// parBatch is one message from a scan worker to the consumer: either a slice
// of fully materialized rows (backed by a private arena, never reused) or a
// terminal error.
type parBatch struct {
	rows []tuple.Row
	err  error
}

// rowMapFn is a per-row transform pushed down into parallel scan workers — the
// partitioned probe phase of a parallel hash join. It runs on worker
// goroutines against read-only shared state and emits zero or more output
// rows per input row.
type rowMapFn func(wctx *Context, row tuple.Row, emit func(tuple.Row))

// ParallelScan executes a full table scan as a partition-parallel exchange:
// the table is split into contiguous page-disjoint partitions (heap PID
// ranges or clustered leaf-chain ranges), one worker drains each partition
// with its own row batch and a private shard of every attached monitor, and
// rows flow to the single consumer over a channel. Monitor shards and
// per-worker CPU accounting merge exactly once, at the barrier after all
// workers exit.
//
// Because each partition preserves grouped page access and the core counters
// sample pages by a pure function of (seed, pid), the merged monitor state —
// DPC estimates, cardinalities, quarantine status — is byte-identical to a
// serial scan's. Row order is not: partitions interleave at channel
// granularity, so the builder only plants this operator in order-insensitive
// subtrees.
type ParallelScan struct {
	ctx      *Context
	tab      *catalog.Table
	pred     expr.Conjunction // bound
	cc       expr.Compiled    // type-specialized pred; workers share it read-only
	degree   int
	monitors []*scanMonitor // templates; receive merged shard state
	rowMap   rowMapFn       // optional probe push-down, set before Open
	stats    OpStats

	out       chan parBatch
	stop      chan struct{}
	wg        sync.WaitGroup
	wctxs     []*Context
	shards    [][]*scanMonitor // shards[worker][monitor]
	actRows   []int64          // per-worker rows passing the scan predicate
	cur       parBatch
	pos       int
	stopped   bool
	finalized bool
	vecNoted  bool
}

// NewParallelScan builds a parallel scan of tab filtered by pred (bound to
// the table's schema) with the given worker degree (>= 2).
func NewParallelScan(ctx *Context, tab *catalog.Table, pred expr.Conjunction, degree int) *ParallelScan {
	return &ParallelScan{
		ctx: ctx, tab: tab, pred: pred, cc: compilePred(ctx, pred), degree: degree,
		stats: OpStats{Label: fmt.Sprintf("ParallelScan(%s) x%d", tab.Name, degree)},
	}
}

// attach adds a monitor template (called by the builder). Each worker
// observes through a private shard of it; the template only ever sees merged
// state.
func (p *ParallelScan) attach(m *scanMonitor) { p.monitors = append(p.monitors, m) }

// Table returns the scanned table.
func (p *ParallelScan) Table() *catalog.Table { return p.tab }

// Degree returns the number of partitions the scan was asked to run with.
func (p *ParallelScan) Degree() int { return p.degree }

// SetRowMap pushes a per-row transform into the workers (parallel hash-join
// probe). Must be called before Open; the transform's shared state must be
// read-only by then.
func (p *ParallelScan) SetRowMap(fn rowMapFn) { p.rowMap = fn }

// Open implements Operator: it partitions the table and starts one worker
// per partition. A closer goroutine shuts the output channel once every
// worker has exited, which is the consumer's end-of-stream signal.
func (p *ParallelScan) Open() error {
	parts, err := p.tab.ScanPartitions(p.degree)
	if err != nil {
		return err
	}
	p.stop = make(chan struct{})
	p.out = make(chan parBatch, 2*p.degree)
	p.stopped = false
	p.finalized = false
	p.wctxs = p.wctxs[:0]
	p.shards = p.shards[:0]
	p.actRows = make([]int64, len(parts))
	for i, part := range parts {
		wctx := p.ctx.child()
		shard := make([]*scanMonitor, len(p.monitors))
		for j, m := range p.monitors {
			shard[j] = m.shard()
		}
		p.wctxs = append(p.wctxs, wctx)
		p.shards = append(p.shards, shard)
		p.wg.Add(1)
		go p.worker(i, wctx, part, shard)
	}
	go func() {
		p.wg.Wait()
		close(p.out)
	}()
	return nil
}

// worker drains one partition. It owns its iterator, row batch, monitor
// shard, and context; the only shared mutable state it touches is the output
// channel. A panic anywhere inside — decode failures, monitor bugs escaping
// the quarantine guard — is converted to an *OperatorPanic and shipped to the
// consumer like any other error, so the process-wide panic boundary holds
// across goroutines.
func (p *ParallelScan) worker(idx int, wctx *Context, part catalog.ScanPart, mons []*scanMonitor) {
	defer p.wg.Done()
	defer part.Iter.Close()
	defer func() {
		if r := recover(); r != nil {
			p.send(parBatch{err: recoveredPanic(p.stats.Label, r)})
		}
	}()
	// On traced runs every worker emits one partition span into the shared
	// recorder — concurrent lock-free emission is exactly what the span
	// buffer is built for. Workers start after the operator's Open began
	// and exit before its Close returns, so the span nests in the
	// operator's lifetime. The row count is worker-local until the
	// finalize barrier, so reading it here races with nothing.
	if tr := wctx.Trace; tr != nil {
		pstart := tr.Now()
		defer func() {
			tr.Emit(trace.Span{
				Op: p.stats.OpID, Kind: trace.KindPartition,
				Start: pstart, End: tr.Now(), N: p.actRows[idx],
			})
		}()
	}

	var (
		batch   catalog.RowBatch
		failIdx []int
		arena   []tuple.Value
		bounds  []int // prefix lengths into arena, one per pending row
		pages   int
	)
	// Arenas are sized for a full batch up front: growing one by append
	// doubling would allocate (and memcpy) ~2x the final size in discarded
	// steps on every flush, which on a busy query is most of the exchange
	// overhead. Flushes happen on page boundaries, so leave headroom for the
	// last page's overshoot past parFlushRows.
	arenaCap := 0
	var memErr error
	emit := func(row tuple.Row) {
		if memErr != nil {
			return
		}
		if arena == nil {
			if arenaCap == 0 {
				arenaCap = (parFlushRows + parFlushRows/2) * len(row)
			}
			// Arenas are retained by the consumer, so each one is charged
			// against the query's memory budget when allocated.
			if memErr = wctx.Mem.Grow(int64(arenaCap) * valueMemSize); memErr != nil {
				return
			}
			arena = make([]tuple.Value, 0, arenaCap)
		}
		arena = append(arena, row...)
		bounds = append(bounds, len(arena))
	}
	flush := func() bool {
		if len(bounds) == 0 {
			return true
		}
		rows := make([]tuple.Row, len(bounds))
		lo := 0
		for i, hi := range bounds {
			rows[i] = tuple.Row(arena[lo:hi:hi])
			lo = hi
		}
		if !p.send(parBatch{rows: rows}) {
			return false
		}
		arena = nil // handed to the consumer; start a fresh arena
		bounds = bounds[:0]
		return true
	}

	p.prefetch(part, 0)
	for part.Iter.NextPage(&batch) {
		if err := wctx.interrupted(); err != nil {
			p.send(parBatch{err: err})
			return
		}
		pages++
		if pages%parPrefetchChunk == 0 {
			p.prefetch(part, pages)
		}
		wctx.touch(int64(batch.Len()))
		failIdx = failIdx[:0]
		if p.cc.OK() {
			for _, row := range batch.Rows {
				failIdx = append(failIdx, p.cc.FirstFail(row))
			}
		} else {
			for _, row := range batch.Rows {
				fi := -1
				for i := range p.pred.Atoms {
					if !p.pred.Atoms[i].Eval(row) {
						fi = i
						break
					}
				}
				failIdx = append(failIdx, fi)
			}
		}
		for _, m := range mons {
			m.safeObservePage(&batch, failIdx)
		}
		for i, row := range batch.Rows {
			if failIdx[i] != -1 {
				continue
			}
			p.actRows[idx]++
			if p.rowMap != nil {
				p.rowMap(wctx, row, emit)
			} else {
				emit(row)
			}
		}
		if memErr != nil {
			p.send(parBatch{err: memErr})
			return
		}
		if len(bounds) >= parFlushRows {
			if !flush() {
				return
			}
		}
	}
	if err := part.Iter.Err(); err != nil {
		p.send(parBatch{err: err})
		return
	}
	for _, m := range mons {
		m.safeFinish()
	}
	flush()
}

// prefetch asks the pool to read ahead the next chunk of the partition's
// pages. Purely advisory: the pool skips resident pages and drops requests
// under pressure.
func (p *ParallelScan) prefetch(part catalog.ScanPart, done int) {
	lo := done
	hi := done + parPrefetchChunk
	if hi > len(part.Pages) {
		hi = len(part.Pages)
	}
	if lo < hi {
		p.ctx.Pool.Prefetch(part.File, part.Pages[lo:hi])
	}
}

// send ships one message to the consumer, giving up if the scan is being
// torn down. Returns false when the worker should exit.
func (p *ParallelScan) send(b parBatch) bool {
	select {
	case p.out <- b:
		return true
	case <-p.stop:
		return false
	}
}

// Next implements Operator. The first error shipped by any worker surfaces
// here; Close then tears the remaining workers down.
func (p *ParallelScan) Next() (tuple.Row, bool, error) {
	for {
		if p.pos < len(p.cur.rows) {
			row := p.cur.rows[p.pos]
			p.pos++
			return row, true, nil
		}
		msg, ok := <-p.out
		if !ok {
			p.finalize()
			return nil, false, nil
		}
		if msg.err != nil {
			return nil, false, msg.err
		}
		p.cur = msg
		p.pos = 0
	}
}

// NextBatch implements BatchOperator: each worker flush — an arena-backed
// row slice the workers already ship whole through the exchange channel — is
// forwarded to the consumer as one dense batch instead of being streamed row
// by row. The arenas are private and never reused, so unlike page-batched
// scans these batches stay valid after the next call.
func (p *ParallelScan) NextBatch(b *Batch) (int, error) {
	p.ctx.noteVectorized(&p.vecNoted)
	for {
		msg, ok := <-p.out
		if !ok {
			p.finalize()
			return 0, nil
		}
		if msg.err != nil {
			return 0, msg.err
		}
		if len(msg.rows) == 0 {
			continue
		}
		b.Rows = msg.rows
		b.Sel = identSel(b.Sel, len(msg.rows))
		p.ctx.noteBatch()
		return len(msg.rows), nil
	}
}

// Close implements Operator: it signals the workers to stop, drains the
// channel so none of them blocks on a send, waits for all of them to exit,
// and merges their state. Safe to call multiple times.
func (p *ParallelScan) Close() error {
	if p.stop == nil {
		return nil // never opened
	}
	if !p.stopped {
		p.stopped = true
		close(p.stop)
	}
	for range p.out {
	}
	p.finalize()
	return nil
}

// finalize runs once, after every worker has exited (the channel closing or
// Close's Wait proves it): worker CPU accounting folds into the query
// context, monitor shards fold into their templates, and per-worker row
// counts fold into the operator stats. This is the single barrier of the
// exchange — no merged state is visible until all partitions are done.
func (p *ParallelScan) finalize() {
	if p.finalized {
		return
	}
	p.wg.Wait()
	p.finalized = true
	for _, wctx := range p.wctxs {
		p.ctx.absorb(wctx)
	}
	for w, shard := range p.shards {
		for j, s := range shard {
			p.monitors[j].absorb(s)
		}
		p.stats.ActRows += p.actRows[w]
	}
}

// Schema implements Operator. With a row map installed the emitted rows are
// the map's output shape (the parent that installed it reports that schema);
// without one, the table's.
func (p *ParallelScan) Schema() *tuple.Schema { return p.tab.Schema }

// Stats implements Operator. ActRows counts rows passing the scan predicate,
// matching the serial scan's accounting even when a probe push-down changes
// what the operator physically emits.
func (p *ParallelScan) Stats() *OpStats { return &p.stats }

// recoveredPanic converts a recovered worker panic into the same
// *OperatorPanic the single-goroutine boundary produces, so cross-goroutine
// panics surface to callers exactly like same-goroutine ones.
func recoveredPanic(label string, r any) error {
	if op, ok := r.(*OperatorPanic); ok {
		return op
	}
	return &OperatorPanic{Op: label, Value: r, Stack: debug.Stack()}
}
