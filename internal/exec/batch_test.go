package exec

import (
	"testing"

	"pagefeedback/internal/tuple"
)

// countingSource is a batch-native stub child that emits rows forever and
// counts exactly how it is driven, so tests can assert an operator stopped
// pulling — not just that it stopped emitting.
type countingSource struct {
	schema     *tuple.Schema
	batchRows  int
	nextCalls  int
	batchCalls int
	closes     int
	rows       []tuple.Row
	stats      OpStats
}

func newCountingSource(batchRows int) *countingSource {
	s := &countingSource{
		schema:    tuple.NewSchema(tuple.Column{Name: "v", Kind: tuple.KindInt}),
		batchRows: batchRows,
		stats:     OpStats{Label: "CountingSource"},
	}
	for i := 0; i < batchRows; i++ {
		s.rows = append(s.rows, tuple.Row{tuple.Int64(int64(i))})
	}
	return s
}

func (s *countingSource) Open() error { return nil }

func (s *countingSource) Next() (tuple.Row, bool, error) {
	s.nextCalls++
	return s.rows[0], true, nil
}

func (s *countingSource) NextBatch(b *Batch) (int, error) {
	s.batchCalls++
	b.Rows = s.rows
	b.Sel = identSel(b.Sel, len(s.rows))
	return len(s.rows), nil
}

func (s *countingSource) Close() error { s.closes++; return nil }

func (s *countingSource) Schema() *tuple.Schema { return s.schema }

func (s *countingSource) Stats() *OpStats { return &s.stats }

// TestLimitBatchEarlyExit pins the batch path's limit contract: a batch that
// crosses the limit is truncated by shrinking its selection vector, and once
// the limit is hit the child is never pulled again — over an unbounded child,
// anything else would hang or over-read.
func TestLimitBatchEarlyExit(t *testing.T) {
	ctx := NewContext(nil)
	ctx.Vectorized = true
	src := newCountingSource(10)
	lim, err := NewLimit(ctx, src, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := lim.Open(); err != nil {
		t.Fatal(err)
	}
	var b Batch
	var sizes []int
	for {
		n, err := lim.NextBatch(&b)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if n != len(b.Sel) {
			t.Fatalf("NextBatch returned n=%d but |Sel|=%d", n, len(b.Sel))
		}
		sizes = append(sizes, n)
	}
	if len(sizes) != 3 || sizes[0] != 10 || sizes[1] != 10 || sizes[2] != 5 {
		t.Fatalf("batch sizes = %v, want [10 10 5]", sizes)
	}
	if src.batchCalls != 3 {
		t.Fatalf("child pulled %d times, want exactly 3 (no pull after the limit is hit)", src.batchCalls)
	}
	if err := lim.Close(); err != nil {
		t.Fatal(err)
	}
	if src.closes != 1 {
		t.Fatalf("child closed %d times, want 1", src.closes)
	}
	if got := ctx.BatchesProcessed(); got != 3 {
		t.Errorf("BatchesProcessed = %d, want 3", got)
	}
	if got := ctx.VectorizedOps(); got != 1 {
		t.Errorf("VectorizedOps = %d, want 1 (noted once per operator, not per batch)", got)
	}
}

// TestLimitRowEarlyExit is the same contract on the row path: exactly n pulls
// from an unbounded child, then EOS without touching it again.
func TestLimitRowEarlyExit(t *testing.T) {
	ctx := NewContext(nil)
	src := newCountingSource(1)
	lim, err := NewLimit(ctx, src, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := lim.Open(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		_, ok, err := lim.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got++
	}
	if got != 25 {
		t.Fatalf("row path yielded %d rows, want 25", got)
	}
	if src.nextCalls != 25 {
		t.Fatalf("child pulled %d times, want exactly 25", src.nextCalls)
	}
	if err := lim.Close(); err != nil {
		t.Fatal(err)
	}
	if src.closes != 1 {
		t.Fatalf("child closed %d times, want 1", src.closes)
	}
	if ctx.BatchesProcessed() != 0 || ctx.VectorizedOps() != 0 {
		t.Errorf("row path recorded batch stats: %d/%d", ctx.BatchesProcessed(), ctx.VectorizedOps())
	}
}

// TestBatchAdapterBridgesRowOperators checks that a row-only operator pulled
// through asBatch yields the same rows one per batch, preserving order.
func TestBatchAdapterBridgesRowOperators(t *testing.T) {
	ctx := NewContext(nil)
	src := newCountingSource(1)
	lim, err := NewLimit(ctx, src, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the row-facing side explicitly: adapter over the limit.
	ad := asBatch(Operator(&rowOnly{lim}))
	if err := lim.Open(); err != nil {
		t.Fatal(err)
	}
	var b Batch
	total := 0
	for {
		n, err := ad.NextBatch(&b)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if n != 1 || len(b.Sel) != 1 {
			t.Fatalf("adapter emitted a batch of %d rows, want 1", n)
		}
		total++
	}
	if total != 7 {
		t.Fatalf("adapter yielded %d rows, want 7", total)
	}
}

// rowOnly hides an operator's batch capability so asBatch must fall back to
// the adapter.
type rowOnly struct{ Operator }
