package exec

import (
	"fmt"

	"pagefeedback/internal/tuple"
)

// ProjectOp narrows rows to a column subset.
type ProjectOp struct {
	ctx    *Context
	input  Operator
	ords   []int
	schema *tuple.Schema
	stats  OpStats
}

// NewProject builds the operator; ords index the input schema.
func NewProject(ctx *Context, input Operator, ords []int, schema *tuple.Schema) *ProjectOp {
	return &ProjectOp{ctx: ctx, input: input, ords: ords, schema: schema,
		stats: OpStats{Label: "Project"}}
}

// Open implements Operator.
func (p *ProjectOp) Open() error { return p.input.Open() }

// Next implements Operator.
func (p *ProjectOp) Next() (tuple.Row, bool, error) {
	row, ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.ctx.touch(1)
	out := make(tuple.Row, len(p.ords))
	for i, o := range p.ords {
		out[i] = row[o]
	}
	p.stats.ActRows++
	return out, true, nil
}

// Close implements Operator.
func (p *ProjectOp) Close() error { return p.input.Close() }

// Schema implements Operator.
func (p *ProjectOp) Schema() *tuple.Schema { return p.schema }

// Stats implements Operator.
func (p *ProjectOp) Stats() *OpStats { return &p.stats }

// LimitOp passes through at most n rows, then stops pulling from its input
// (so a LIMIT over a scan does not read the rest of the table).
type LimitOp struct {
	input Operator
	n     int
	seen  int
	stats OpStats
}

// NewLimit builds the operator.
func NewLimit(input Operator, n int) (*LimitOp, error) {
	if n < 0 {
		return nil, fmt.Errorf("exec: negative limit %d", n)
	}
	return &LimitOp{input: input, n: n, stats: OpStats{Label: fmt.Sprintf("Limit(%d)", n)}}, nil
}

// Open implements Operator.
func (l *LimitOp) Open() error {
	l.seen = 0
	return l.input.Open()
}

// Next implements Operator.
func (l *LimitOp) Next() (tuple.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	l.stats.ActRows++
	return row, true, nil
}

// Close implements Operator.
func (l *LimitOp) Close() error { return l.input.Close() }

// Schema implements Operator.
func (l *LimitOp) Schema() *tuple.Schema { return l.input.Schema() }

// Stats implements Operator.
func (l *LimitOp) Stats() *OpStats { return &l.stats }
