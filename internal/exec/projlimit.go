package exec

import (
	"fmt"

	"pagefeedback/internal/tuple"
)

// ProjectOp narrows rows to a column subset.
type ProjectOp struct {
	ctx    *Context
	input  Operator
	ords   []int
	schema *tuple.Schema
	stats  OpStats

	inBatch  BatchOperator
	in       Batch
	vals     []tuple.Value // flat arena backing the batch output rows
	rows     []tuple.Row
	vecNoted bool
}

// NewProject builds the operator; ords index the input schema.
func NewProject(ctx *Context, input Operator, ords []int, schema *tuple.Schema) *ProjectOp {
	return &ProjectOp{ctx: ctx, input: input, ords: ords, schema: schema,
		stats: OpStats{Label: "Project"}}
}

// Open implements Operator.
func (p *ProjectOp) Open() error { return p.input.Open() }

// Next implements Operator.
func (p *ProjectOp) Next() (tuple.Row, bool, error) {
	row, ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.ctx.touch(1)
	out := make(tuple.Row, len(p.ords))
	for i, o := range p.ords {
		out[i] = row[o]
	}
	p.stats.ActRows++
	return out, true, nil
}

// NextBatch implements BatchOperator: the live rows of each input batch are
// projected into one reused value arena, and the output row views are built
// only after the arena has stopped growing (appends may move it). The arena
// is high-water reuse of transient, batch-bounded memory — rebuilt from
// length zero every call — so it is not charged against the memory budget,
// keeping the two paths' accounting identical.
func (p *ProjectOp) NextBatch(b *Batch) (int, error) {
	p.ctx.noteVectorized(&p.vecNoted)
	if p.inBatch == nil {
		p.inBatch = asBatch(p.input)
	}
	n, err := p.inBatch.NextBatch(&p.in)
	if err != nil || n == 0 {
		return 0, err
	}
	p.ctx.touch(int64(n))
	w := len(p.ords)
	p.vals = p.vals[:0]
	for _, i := range p.in.Sel {
		row := p.in.Rows[i]
		for _, o := range p.ords {
			p.vals = append(p.vals, row[o])
		}
	}
	p.rows = p.rows[:0]
	for i := 0; i < n; i++ {
		p.rows = append(p.rows, tuple.Row(p.vals[i*w:(i+1)*w:(i+1)*w]))
	}
	b.Rows = p.rows
	b.Sel = identSel(b.Sel, n)
	p.stats.ActRows += int64(n)
	p.ctx.noteBatch()
	return n, nil
}

// Close implements Operator.
func (p *ProjectOp) Close() error { return p.input.Close() }

// Schema implements Operator.
func (p *ProjectOp) Schema() *tuple.Schema { return p.schema }

// Stats implements Operator.
func (p *ProjectOp) Stats() *OpStats { return &p.stats }

// LimitOp passes through at most n rows, then stops pulling from its input
// (so a LIMIT over a scan does not read the rest of the table).
type LimitOp struct {
	ctx   *Context
	input Operator
	n     int
	seen  int
	stats OpStats

	inBatch  BatchOperator
	vecNoted bool
}

// NewLimit builds the operator.
func NewLimit(ctx *Context, input Operator, n int) (*LimitOp, error) {
	if n < 0 {
		return nil, fmt.Errorf("exec: negative limit %d", n)
	}
	return &LimitOp{ctx: ctx, input: input, n: n, stats: OpStats{Label: fmt.Sprintf("Limit(%d)", n)}}, nil
}

// Open implements Operator.
func (l *LimitOp) Open() error {
	l.seen = 0
	return l.input.Open()
}

// Next implements Operator.
func (l *LimitOp) Next() (tuple.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	l.stats.ActRows++
	return row, true, nil
}

// NextBatch implements BatchOperator. A batch that crosses the limit is
// truncated by shrinking its selection vector, and from then on the child is
// never pulled again — mirroring the row path's guarantee that a LIMIT over
// a scan does not read the rest of the table. The limit charges no CPU of
// its own on either path.
func (l *LimitOp) NextBatch(b *Batch) (int, error) {
	l.ctx.noteVectorized(&l.vecNoted)
	if l.seen >= l.n {
		return 0, nil
	}
	if l.inBatch == nil {
		l.inBatch = asBatch(l.input)
	}
	n, err := l.inBatch.NextBatch(b)
	if err != nil || n == 0 {
		return 0, err
	}
	if rem := l.n - l.seen; n > rem {
		b.Sel = b.Sel[:rem]
		n = rem
	}
	l.seen += n
	l.stats.ActRows += int64(n)
	l.ctx.noteBatch()
	return n, nil
}

// Close implements Operator.
func (l *LimitOp) Close() error { return l.input.Close() }

// Schema implements Operator.
func (l *LimitOp) Schema() *tuple.Schema { return l.input.Schema() }

// Stats implements Operator.
func (l *LimitOp) Stats() *OpStats { return &l.stats }
