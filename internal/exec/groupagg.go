package exec

import (
	"fmt"
	"sort"

	"pagefeedback/internal/tuple"
)

// GroupAggOp is a hash aggregate: one (group value, aggregate) output row
// per distinct group value, emitted in ascending group order.
type GroupAggOp struct {
	ctx      *Context
	input    Operator
	groupOrd int
	fn       byte // 'c','s','m','M'
	aggOrd   int  // -1 for COUNT(*)
	schema   *tuple.Schema
	stats    OpStats

	out        []tuple.Row
	pos        int
	outCharged int // result rows already charged to the memory tracker
	vecNoted   bool
}

type groupState struct {
	key        tuple.Value
	count, sum int64
	minV, maxV tuple.Value
	seen       bool
}

// groupStateMemSize approximates one groupState's footprint for the memory
// tracker (three Values plus the counters).
const groupStateMemSize = 3*valueMemSize + 24

// NewGroupAgg builds the operator. fn is one of "count","sum","min","max".
func NewGroupAgg(ctx *Context, input Operator, groupOrd int, fn string, aggOrd int, schema *tuple.Schema) (*GroupAggOp, error) {
	var code byte
	switch fn {
	case "count":
		code = 'c'
	case "sum":
		code = 's'
	case "min":
		code = 'm'
	case "max":
		code = 'M'
	default:
		return nil, fmt.Errorf("exec: unknown aggregate %q", fn)
	}
	if code != 'c' && aggOrd < 0 {
		return nil, fmt.Errorf("exec: %s requires a column", fn)
	}
	if aggOrd >= 0 && code != 'c' && input.Schema().Column(aggOrd).Kind == tuple.KindString {
		return nil, fmt.Errorf("exec: %s over a string column is not supported", fn)
	}
	return &GroupAggOp{
		ctx: ctx, input: input, groupOrd: groupOrd, fn: code, aggOrd: aggOrd,
		schema: schema, stats: OpStats{Label: "GroupAggregate(" + fn + ")"},
	}, nil
}

// Open implements Operator: drains the input and aggregates per group. The
// drain pulls whole batches when the context is vectorized and single rows
// otherwise; rows reach accumulate in the same order either way, so group
// state, memory charges, and their sequence are identical across the paths.
func (g *GroupAggOp) Open() error {
	if err := g.input.Open(); err != nil {
		return err
	}
	groups := map[string]*groupState{}
	if g.ctx.Vectorized {
		in := asBatch(g.input)
		var b Batch
		for {
			n, err := in.NextBatch(&b)
			if err != nil {
				g.input.Close() // release pins even on a failed drain
				return err
			}
			if n == 0 {
				break
			}
			g.ctx.touch(int64(n))
			for _, i := range b.Sel {
				if err := g.accumulate(groups, b.Rows[i]); err != nil {
					g.input.Close()
					return err
				}
			}
		}
	} else {
		for {
			row, ok, err := g.input.Next()
			if err != nil {
				g.input.Close() // release pins even on a failed drain
				return err
			}
			if !ok {
				break
			}
			g.ctx.touch(1)
			if err := g.accumulate(groups, row); err != nil {
				g.input.Close()
				return err
			}
		}
	}
	if err := g.input.Close(); err != nil {
		return err
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys) // encoded keys are order-preserving
	g.out = g.out[:0]
	for _, k := range keys {
		st := groups[k]
		var agg int64
		switch g.fn {
		case 'c':
			agg = st.count
		case 's':
			agg = st.sum
		case 'm':
			agg = st.minV.Int
		case 'M':
			agg = st.maxV.Int
		}
		row := tuple.Row{st.key, tuple.Int64(agg)}
		if err := g.chargeOutRow(row); err != nil {
			return err
		}
		g.out = append(g.out, row)
	}
	g.pos = 0
	return nil
}

// accumulate folds one input row into its group's state, charging the
// memory tracker when the row starts a new group.
func (g *GroupAggOp) accumulate(groups map[string]*groupState, row tuple.Row) error {
	gv := row[g.groupOrd]
	key := string(tuple.EncodeKey(gv))
	st := groups[key]
	if st == nil {
		if err := g.ctx.Mem.Grow(groupStateMemSize + int64(len(key)) + mapEntryOverhead); err != nil {
			return err
		}
		st = &groupState{key: gv}
		groups[key] = st
	}
	st.count++
	if g.aggOrd >= 0 {
		v := row[g.aggOrd]
		if v.Kind != tuple.KindString {
			st.sum += v.Int
		}
		if !st.seen || v.Compare(st.minV) < 0 {
			st.minV = v
		}
		if !st.seen || v.Compare(st.maxV) > 0 {
			st.maxV = v
		}
		st.seen = true
	}
	return nil
}

// chargeOutRow charges the memory tracker when the result buffer grows past
// its previously charged length. The buffer is rebuilt (out[:0]) on re-open,
// so charging every append would bill each rebuild again; the budgetable
// quantity is the buffer's high-water footprint.
func (g *GroupAggOp) chargeOutRow(row tuple.Row) error {
	if len(g.out) < g.outCharged {
		return nil
	}
	if err := g.ctx.Mem.Grow(rowMemSize(row)); err != nil {
		return err
	}
	g.outCharged = len(g.out) + 1
	return nil
}

// Next implements Operator.
func (g *GroupAggOp) Next() (tuple.Row, bool, error) {
	if g.pos >= len(g.out) {
		return nil, false, nil
	}
	row := g.out[g.pos]
	g.pos++
	g.stats.ActRows++
	return row, true, nil
}

// NextBatch implements BatchOperator: the materialized result rows are
// emitted as dense BatchSize slices of the output buffer.
func (g *GroupAggOp) NextBatch(b *Batch) (int, error) {
	g.ctx.noteVectorized(&g.vecNoted)
	if g.pos >= len(g.out) {
		return 0, nil
	}
	end := g.pos + BatchSize
	if end > len(g.out) {
		end = len(g.out)
	}
	n := end - g.pos
	b.Rows = g.out[g.pos:end]
	b.Sel = identSel(b.Sel, n)
	g.pos = end
	g.stats.ActRows += int64(n)
	g.ctx.noteBatch()
	return n, nil
}

// Close implements Operator.
func (g *GroupAggOp) Close() error {
	g.out = nil
	return nil
}

// Schema implements Operator.
func (g *GroupAggOp) Schema() *tuple.Schema { return g.schema }

// Stats implements Operator.
func (g *GroupAggOp) Stats() *OpStats { return &g.stats }
