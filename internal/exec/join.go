package exec

import (
	"fmt"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// HashJoinOp joins build (outer) and probe (inner) on equality of one column
// each. It runs in the relational engine: it never sees page ids. When a
// bit-vector filter is wired in, the build phase fills it (Fig 5), so that
// by the time the probe side's SE scan streams rows, the filter acts as the
// derived semi-join predicate for DPC monitoring.
type HashJoinOp struct {
	ctx      *Context
	build    Operator
	probe    Operator
	buildOrd int
	probeOrd int
	schema   *tuple.Schema
	filter   *filterSink // optional; filled during build
	stats    OpStats

	table   map[string][]tuple.Row
	matches []tuple.Row // pending build matches for current probe row
	curRow  tuple.Row   // current probe row
	built   bool

	// Batch-probe state: the probe input's batch view, the pulled probe
	// batch, the per-batch key column, and the joined-output arena. All are
	// transient high-water-reuse buffers bounded by one batch — rebuilt from
	// length zero every NextBatch — so none are charged to the memory budget.
	inBatch   BatchOperator
	pb        Batch
	keys      []string
	outVals   []tuple.Value
	outBounds []int // prefix lengths into outVals, one per joined row
	outRows   []tuple.Row
	vecNoted  bool

	// parProbe is set when the probe input is a parallel scan: after the
	// build phase the probe is pushed down into the scan workers, which
	// look up the completed (read-only) hash table and emit joined rows.
	parProbe *ParallelScan
}

// NewHashJoin constructs the operator. buildOrd/probeOrd are the join column
// ordinals in the respective input schemas.
func NewHashJoin(ctx *Context, build, probe Operator, buildOrd, probeOrd int, schema *tuple.Schema) *HashJoinOp {
	return &HashJoinOp{
		ctx: ctx, build: build, probe: probe,
		buildOrd: buildOrd, probeOrd: probeOrd, schema: schema,
		stats: OpStats{Label: "HashJoin"},
	}
}

// SetFilter wires a bit-vector filter to fill during the build phase.
func (j *HashJoinOp) SetFilter(f *filterSink) { j.filter = f }

// SetParallelProbe marks the probe input as a parallel scan to push the probe
// phase into (builder only). The push-down happens in Open, after the build
// phase: the hash table is complete and read-only by the time any worker
// probes it, so no synchronization is needed beyond the scan's own barrier.
func (j *HashJoinOp) SetParallelProbe(ps *ParallelScan) { j.parProbe = ps }

// Open implements Operator: drains the build input into the hash table.
// The build input is always closed before Open returns — even on error —
// so no page pins outlive the operator.
func (j *HashJoinOp) Open() error {
	if err := j.build.Open(); err != nil {
		return err
	}
	j.table = make(map[string][]tuple.Row)
	for {
		row, ok, err := j.build.Next()
		if err != nil {
			j.build.Close() // release any pins held mid-row (e.g. decode errors)
			return err
		}
		if !ok {
			break
		}
		j.ctx.touch(1)
		v := row[j.buildOrd]
		key := string(tuple.EncodeKey(v))
		if err := j.ctx.Mem.Grow(rowMemSize(row) + mapEntryOverhead); err != nil {
			j.build.Close()
			return err
		}
		j.table[key] = append(j.table[key], row.Clone())
		if j.filter != nil {
			j.filter.Add(v)
		}
	}
	if err := j.build.Close(); err != nil {
		return err
	}
	j.built = true
	if j.parProbe != nil {
		// Partitioned probe: each scan worker looks up the now-immutable
		// hash table and emits the joined rows itself. Per-row CPU is
		// charged on the worker's context, mirroring the serial probe loop.
		j.parProbe.SetRowMap(func(wctx *Context, row tuple.Row, emit func(tuple.Row)) {
			wctx.touch(1)
			key := string(tuple.EncodeKey(row[j.probeOrd]))
			for _, b := range j.table[key] {
				emit(joinRows(b, row))
			}
		})
	}
	return j.probe.Open()
}

// Next implements Operator.
func (j *HashJoinOp) Next() (tuple.Row, bool, error) {
	if j.parProbe != nil {
		// Rows arrive pre-joined from the partitioned probe.
		row, ok, err := j.probe.Next()
		if ok {
			j.stats.ActRows++
		}
		return row, ok, err
	}
	for {
		if len(j.matches) > 0 {
			b := j.matches[0]
			j.matches = j.matches[1:]
			out := joinRows(b, j.curRow)
			j.stats.ActRows++
			return out, true, nil
		}
		row, ok, err := j.probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.ctx.touch(1)
		key := string(tuple.EncodeKey(row[j.probeOrd]))
		if ms := j.table[key]; len(ms) > 0 {
			j.curRow = row.Clone()
			j.matches = ms
		}
	}
}

// NextBatch implements BatchOperator for the probe phase. With a partitioned
// probe the exchange's arena-backed batches are forwarded whole — already
// joined by the workers. Serially, the whole probe batch is hashed first
// (one tight EncodeKey loop over the key column), then probed; matches are
// copied into a reused output arena, and the joined row views are built only
// after the arena has stopped growing. The build phase is unchanged: it
// drains row at a time during Open on both paths.
func (j *HashJoinOp) NextBatch(b *Batch) (int, error) {
	j.ctx.noteVectorized(&j.vecNoted)
	if j.inBatch == nil {
		j.inBatch = asBatch(j.probe)
	}
	if j.parProbe != nil {
		n, err := j.inBatch.NextBatch(b)
		j.stats.ActRows += int64(n)
		return n, err
	}
	for {
		n, err := j.inBatch.NextBatch(&j.pb)
		if err != nil || n == 0 {
			return 0, err
		}
		j.ctx.touch(int64(n))
		j.keys = j.keys[:0]
		for _, i := range j.pb.Sel {
			j.keys = append(j.keys, string(tuple.EncodeKey(j.pb.Rows[i][j.probeOrd])))
		}
		j.outVals = j.outVals[:0]
		j.outBounds = j.outBounds[:0]
		for ki, i := range j.pb.Sel {
			ms := j.table[j.keys[ki]]
			if len(ms) == 0 {
				continue
			}
			probe := j.pb.Rows[i]
			for _, build := range ms {
				j.outVals = append(j.outVals, build...)
				j.outVals = append(j.outVals, probe...)
				j.outBounds = append(j.outBounds, len(j.outVals))
			}
		}
		if len(j.outBounds) == 0 {
			continue
		}
		j.outRows = j.outRows[:0]
		lo := 0
		for _, hi := range j.outBounds {
			j.outRows = append(j.outRows, tuple.Row(j.outVals[lo:hi:hi]))
			lo = hi
		}
		b.Rows = j.outRows
		b.Sel = identSel(b.Sel, len(j.outRows))
		j.stats.ActRows += int64(len(j.outRows))
		j.ctx.noteBatch()
		return len(j.outRows), nil
	}
}

// Close implements Operator.
func (j *HashJoinOp) Close() error { return j.probe.Close() }

// Schema implements Operator.
func (j *HashJoinOp) Schema() *tuple.Schema { return j.schema }

// Stats implements Operator.
func (j *HashJoinOp) Stats() *OpStats { return &j.stats }

// joinRows concatenates an outer and inner row (outer columns first,
// matching plan.JoinSchema).
func joinRows(outer, inner tuple.Row) tuple.Row {
	out := make(tuple.Row, 0, len(outer)+len(inner))
	out = append(out, outer...)
	out = append(out, inner...)
	return out
}

// MergeJoinOp joins two inputs already ordered by their join columns. If a
// bit-vector filter is wired in, every consumed outer value is added to it
// as the merge advances — the partial bit-vector filter of §IV — and each
// match is reported to the inner scan through the RE→SE late-match callback
// so the boundary lookahead row is counted correctly.
type MergeJoinOp struct {
	ctx      *Context
	outer    Operator
	inner    Operator
	outerOrd int
	innerOrd int
	schema   *tuple.Schema
	filter   *filterSink
	innerSE  *SEScan // non-nil when the inner input is directly an SE scan
	stats    OpStats

	outerRow  tuple.Row
	innerRow  tuple.Row
	innerRID  storage.RID
	outerDone bool
	innerDone bool

	// Cross-product state for duplicate join values.
	outGroup   []tuple.Row
	inGroup    []tuple.Row
	outCharged int // group-buffer rows already charged to the memory tracker
	inCharged  int
	gi, gj     int
	emitting   bool
}

// NewMergeJoin constructs the operator; inputs must be sorted ascending on
// their join columns.
func NewMergeJoin(ctx *Context, outer, inner Operator, outerOrd, innerOrd int, schema *tuple.Schema) *MergeJoinOp {
	return &MergeJoinOp{
		ctx: ctx, outer: outer, inner: inner,
		outerOrd: outerOrd, innerOrd: innerOrd, schema: schema,
		stats: OpStats{Label: "MergeJoin"},
	}
}

// SetFilter wires a partial bit-vector filter filled as outer rows are
// consumed. innerSE (may be nil) receives late-match callbacks.
func (j *MergeJoinOp) SetFilter(f *filterSink, innerSE *SEScan) {
	j.filter = f
	j.innerSE = innerSE
}

// Open implements Operator.
func (j *MergeJoinOp) Open() error {
	if err := j.outer.Open(); err != nil {
		return err
	}
	if err := j.inner.Open(); err != nil {
		return err
	}
	if err := j.advanceOuter(); err != nil {
		return err
	}
	return j.advanceInner()
}

func (j *MergeJoinOp) advanceOuter() error {
	row, ok, err := j.outer.Next()
	if err != nil {
		return err
	}
	if !ok {
		j.outerDone = true
		return nil
	}
	j.ctx.touch(1)
	j.outerRow = row.Clone()
	if j.filter != nil {
		j.filter.Add(row[j.outerOrd])
	}
	return nil
}

func (j *MergeJoinOp) advanceInner() error {
	row, ok, err := j.inner.Next()
	if err != nil {
		return err
	}
	if !ok {
		j.innerDone = true
		return nil
	}
	j.ctx.touch(1)
	j.innerRow = row.Clone()
	if j.innerSE != nil {
		j.innerRID = j.innerSE.LastRID()
	}
	return nil
}

// Next implements Operator.
func (j *MergeJoinOp) Next() (tuple.Row, bool, error) {
	for {
		if j.emitting {
			if j.gi < len(j.outGroup) {
				out := joinRows(j.outGroup[j.gi], j.inGroup[j.gj])
				j.gj++
				if j.gj == len(j.inGroup) {
					j.gj = 0
					j.gi++
				}
				j.stats.ActRows++
				return out, true, nil
			}
			j.emitting = false
		}
		if j.outerDone || j.innerDone {
			return nil, false, nil
		}
		cmp := j.outerRow[j.outerOrd].Compare(j.innerRow[j.innerOrd])
		switch {
		case cmp < 0:
			if err := j.advanceOuter(); err != nil {
				return nil, false, err
			}
		case cmp > 0:
			if err := j.advanceInner(); err != nil {
				return nil, false, err
			}
		default:
			if err := j.collectGroups(); err != nil {
				return nil, false, err
			}
		}
	}
}

// collectGroups gathers all outer and inner rows sharing the current join
// value and arms the cross-product emitter.
func (j *MergeJoinOp) collectGroups() error {
	v := j.outerRow[j.outerOrd]
	// The inner lookahead row matched: report it late (it streamed through
	// the scan before v necessarily entered the partial filter).
	j.notifyMatch()
	j.outGroup = j.outGroup[:0]
	j.inGroup = j.inGroup[:0]
	for !j.outerDone && j.outerRow[j.outerOrd].Compare(v) == 0 {
		if err := j.chargeGroupRow(len(j.outGroup), &j.outCharged, j.outerRow); err != nil {
			return err
		}
		j.outGroup = append(j.outGroup, j.outerRow)
		if err := j.advanceOuter(); err != nil {
			return err
		}
	}
	for !j.innerDone && j.innerRow[j.innerOrd].Compare(v) == 0 {
		if err := j.chargeGroupRow(len(j.inGroup), &j.inCharged, j.innerRow); err != nil {
			return err
		}
		j.inGroup = append(j.inGroup, j.innerRow)
		if err := j.advanceInner(); err != nil {
			return err
		}
	}
	j.gi, j.gj = 0, 0
	j.emitting = len(j.outGroup) > 0 && len(j.inGroup) > 0
	return nil
}

// chargeGroupRow charges the memory tracker when a group buffer grows past
// its previously charged capacity. The buffers are reset (s[:0]) for every
// duplicate join value, so charging each append would bill the sum of all
// group sizes; the budgetable quantity is the largest group's footprint.
func (j *MergeJoinOp) chargeGroupRow(cur int, charged *int, row tuple.Row) error {
	if cur < *charged {
		return nil
	}
	if err := j.ctx.Mem.Grow(rowMemSize(row)); err != nil {
		return err
	}
	*charged = cur + 1
	return nil
}

func (j *MergeJoinOp) notifyMatch() {
	if j.innerSE != nil {
		j.innerSE.lateMatch(j.innerRID)
	}
}

// Close implements Operator.
func (j *MergeJoinOp) Close() error {
	err1 := j.outer.Close()
	err2 := j.inner.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Operator.
func (j *MergeJoinOp) Schema() *tuple.Schema { return j.schema }

// Stats implements Operator.
func (j *MergeJoinOp) Stats() *OpStats { return &j.stats }

// INLJoinOp is the Index Nested Loops join: for each outer row it seeks the
// inner table's index on the join column and fetches the matching rows. The
// residual selection on the inner table is applied after the join, per §IV.
// Each fetched page is a logical I/O; on a cold cache, a physical random
// read — which is why DPC(inner, join-pred) dominates this operator's cost.
type INLJoinOp struct {
	ctx       *Context
	outer     Operator
	outerOrd  int
	innerTab  *catalog.Table
	innerIx   *catalog.Index
	innerPred expr.Conjunction // residual, bound to inner schema
	innerCC   expr.Compiled    // type-specialized residual, when compilable
	schema    *tuple.Schema
	monitors  []*seekMonitor
	stats     OpStats

	outerRow tuple.Row
	it       *catalog.EntryIter
	rowBuf   tuple.Row // reused inner-fetch destination
}

// NewINLJoin constructs the operator.
func NewINLJoin(ctx *Context, outer Operator, outerOrd int, innerTab *catalog.Table,
	innerIx *catalog.Index, innerPred expr.Conjunction, schema *tuple.Schema) *INLJoinOp {
	return &INLJoinOp{
		ctx: ctx, outer: outer, outerOrd: outerOrd,
		innerTab: innerTab, innerIx: innerIx, innerPred: innerPred,
		innerCC: compilePred(ctx, innerPred), schema: schema,
		stats: OpStats{Label: "INLJoin(" + innerTab.Name + "." + innerIx.Name + ")"},
	}
}

// attach adds a monitor (builder only).
func (j *INLJoinOp) attach(m *seekMonitor) { j.monitors = append(j.monitors, m) }

// Open implements Operator.
func (j *INLJoinOp) Open() error { return j.outer.Open() }

// Next implements Operator.
func (j *INLJoinOp) Next() (tuple.Row, bool, error) {
	for {
		if j.it != nil {
			for j.it.Next() {
				if err := j.ctx.interrupted(); err != nil {
					return nil, false, err
				}
				j.ctx.touch(1)
				rid := j.it.RID()
				row, err := j.innerTab.FetchRowInto(j.rowBuf, rid)
				if err != nil {
					return nil, false, err
				}
				j.rowBuf = row
				// Every fetched row satisfies the join predicate: monitors
				// count its page toward DPC(inner, join-pred) (§IV).
				for _, m := range j.monitors {
					m.observe(rid.Page)
				}
				var sat bool
				if j.innerCC.OK() {
					sat = j.innerCC.Eval(row)
				} else {
					sat = j.innerPred.Eval(row)
				}
				if sat {
					j.stats.ActRows++
					return joinRows(j.outerRow, row), true, nil
				}
			}
			if err := j.it.Err(); err != nil {
				return nil, false, err
			}
			j.it.Close()
			j.it = nil
		}
		row, ok, err := j.outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.ctx.touch(1)
		j.outerRow = row.Clone()
		v := row[j.outerOrd]
		s, sok := expr.SuccValue(v)
		if !sok {
			return nil, false, fmt.Errorf("exec: INL join value %v has no successor", v)
		}
		r := expr.KeyRange{Lo: tuple.EncodeKey(v), Hi: tuple.EncodeKey(s)}
		it, err := j.innerIx.SeekRange(r)
		if err != nil {
			return nil, false, err
		}
		j.it = it
	}
}

// Close implements Operator.
func (j *INLJoinOp) Close() error {
	if j.it != nil {
		j.it.Close()
		j.it = nil
	}
	return j.outer.Close()
}

// Schema implements Operator.
func (j *INLJoinOp) Schema() *tuple.Schema { return j.schema }

// Stats implements Operator.
func (j *INLJoinOp) Stats() *OpStats { return &j.stats }
