package exec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// env is a small database: sales (clustered on id) with correlated (c2) and
// uncorrelated (c5) permutation columns, plus a dim table for joins.
type env struct {
	pool  *storage.BufferPool
	cat   *catalog.Catalog
	sales *catalog.Table
	dim   *catalog.Table
}

const envRows = 4000

func newEnv(t *testing.T) *env {
	t.Helper()
	d := storage.NewDiskManager(storage.DefaultIOModel())
	pool := storage.NewBufferPool(d, 4096)
	cat := catalog.New(pool)

	salesSchema := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "c2", Kind: tuple.KindInt},
		tuple.Column{Name: "c5", Kind: tuple.KindInt},
		tuple.Column{Name: "state", Kind: tuple.KindString},
		tuple.Column{Name: "pad", Kind: tuple.KindString},
	)
	sales, err := cat.CreateClusteredTable("sales", salesSchema, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(99)).Perm(envRows)
	states := []string{"CA", "WA", "OR", "NV", "AZ"}
	pad := strings.Repeat("x", 60)
	rows := make([]tuple.Row, envRows)
	for i := 0; i < envRows; i++ {
		rows[i] = tuple.Row{
			tuple.Int64(int64(i)),
			tuple.Int64(int64(i)),       // c2: fully correlated with id
			tuple.Int64(int64(perm[i])), // c5: uncorrelated
			tuple.Str(states[i%len(states)]),
			tuple.Str(pad),
		}
	}
	if _, err := sales.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	for _, ix := range []struct {
		name string
		cols []string
	}{
		{"ix_c2", []string{"c2"}},
		{"ix_c5", []string{"c5"}},
		{"ix_state", []string{"state"}},
		{"ix_id", []string{"id"}},
	} {
		if _, err := cat.CreateIndex(ix.name, sales, ix.cols); err != nil {
			t.Fatal(err)
		}
	}

	dimSchema := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "val", Kind: tuple.KindInt},
	)
	dim, err := cat.CreateClusteredTable("dim", dimSchema, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	dimRows := make([]tuple.Row, 500)
	for i := range dimRows {
		dimRows[i] = tuple.Row{tuple.Int64(int64(i * 3)), tuple.Int64(int64(i))}
	}
	if _, err := dim.BulkLoad(dimRows); err != nil {
		t.Fatal(err)
	}
	return &env{pool: pool, cat: cat, sales: sales, dim: dim}
}

// trueDPC computes DPC(tab, pred) by brute force.
func trueDPC(t *testing.T, tab *catalog.Table, pred expr.Conjunction) int64 {
	t.Helper()
	bound, err := pred.Bind(tab.Schema)
	if err != nil {
		t.Fatal(err)
	}
	it, err := tab.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	pages := map[storage.PageID]bool{}
	for it.Next() {
		if bound.Eval(it.Row()) {
			pages[it.RID().Page] = true
		}
	}
	return int64(len(pages))
}

func mustBind(t *testing.T, c expr.Conjunction, s *tuple.Schema) expr.Conjunction {
	t.Helper()
	b, err := c.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runPlan(t *testing.T, e *env, node plan.Node, cfg *MonitorConfig) ([]tuple.Row, *Execution) {
	t.Helper()
	ctx := NewContext(e.pool)
	ex, err := Build(ctx, node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rows, ex
}

func TestSEScanFiltersAndCounts(t *testing.T) {
	e := newEnv(t)
	pred := mustBind(t, expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA"))), e.sales.Schema)
	node := &plan.Scan{Tab: e.sales, Pred: pred}
	rows, ex := runPlan(t, e, node, nil)
	if len(rows) != envRows/5 {
		t.Errorf("scan returned %d rows, want %d", len(rows), envRows/5)
	}
	if ex.Root.Stats().ActRows != int64(envRows/5) {
		t.Errorf("ActRows = %d", ex.Root.Stats().ActRows)
	}
}

func TestScanMonitorExactPrefix(t *testing.T) {
	e := newEnv(t)
	p1 := expr.NewAtom("state", expr.Eq, tuple.Str("CA"))
	p2 := expr.NewAtom("c2", expr.Lt, tuple.Int64(400))
	scanPred := mustBind(t, expr.And(p1, p2), e.sales.Schema)
	node := &plan.Scan{Tab: e.sales, Pred: scanPred}

	cfg := &MonitorConfig{Requests: []DPCRequest{
		{Table: "sales", Pred: expr.And(p1)},     // prefix of scan pred
		{Table: "sales", Pred: expr.And(p1, p2)}, // the whole pred (also a prefix)
	}}
	_, ex := runPlan(t, e, node, cfg)
	res := ex.DPCResults()
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	for i, want := range []expr.Conjunction{expr.And(p1), expr.And(p1, p2)} {
		r := res[i]
		if r.Mechanism != MechExactScan || !r.Exact {
			t.Errorf("result %d: mechanism %s exact=%v", i, r.Mechanism, r.Exact)
		}
		if got, exp := r.DPC, trueDPC(t, e.sales, want); got != exp {
			t.Errorf("result %d: DPC = %d, want %d", i, got, exp)
		}
	}
	// Cardinality feedback is exact too.
	if res[0].Cardinality != envRows/5 {
		t.Errorf("cardinality = %d, want %d", res[0].Cardinality, envRows/5)
	}
}

func TestScanMonitorNonPrefixUsesDPSample(t *testing.T) {
	e := newEnv(t)
	p1 := expr.NewAtom("state", expr.Eq, tuple.Str("CA"))
	p2 := expr.NewAtom("c5", expr.Lt, tuple.Int64(2000))
	scanPred := mustBind(t, expr.And(p1, p2), e.sales.Schema)
	node := &plan.Scan{Tab: e.sales, Pred: scanPred}

	// p2 alone is NOT a prefix (p1 comes first): needs short-circuiting off.
	cfg := &MonitorConfig{
		Requests:       []DPCRequest{{Table: "sales", Pred: expr.And(p2)}},
		SampleFraction: 1.0, // full sampling -> exact
		Seed:           42,
	}
	_, ex := runPlan(t, e, node, cfg)
	res := ex.DPCResults()
	if res[0].Mechanism != MechDPSample {
		t.Fatalf("mechanism = %s", res[0].Mechanism)
	}
	if want := trueDPC(t, e.sales, expr.And(p2)); res[0].DPC != want {
		t.Errorf("DPC = %d, want %d (f=1.0 is exact)", res[0].DPC, want)
	}
	if !res[0].Exact {
		t.Error("full-fraction DPSample should be flagged exact")
	}
}

func TestScanMonitorSampledAccuracy(t *testing.T) {
	e := newEnv(t)
	p2 := expr.NewAtom("c5", expr.Lt, tuple.Int64(2000))
	scanPred := mustBind(t, expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA")), p2), e.sales.Schema)
	node := &plan.Scan{Tab: e.sales, Pred: scanPred}
	want := float64(trueDPC(t, e.sales, expr.And(p2)))

	// The table has only ~55 pages, so one f=0.25 sample has high variance;
	// average over seeds and check the estimator is centered on the truth.
	var sum float64
	const trials = 12
	for seed := int64(0); seed < trials; seed++ {
		cfg := &MonitorConfig{
			Requests:       []DPCRequest{{Table: "sales", Pred: expr.And(p2)}},
			SampleFraction: 0.25,
			Seed:           seed,
		}
		_, ex := runPlan(t, e, node, cfg)
		sum += float64(ex.DPCResults()[0].DPC)
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("mean sampled DPC %.1f vs true %.0f: estimator biased", got, want)
	}
}

func TestIndexSeekReturnsCorrectRowsAndDPC(t *testing.T) {
	e := newEnv(t)
	pred := expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(300)))
	bound := mustBind(t, pred, e.sales.Schema)
	ix, _ := e.sales.IndexByName("ix_c2")
	ranges, _, ok := expr.IndexRanges(bound, ix.Cols)
	if !ok {
		t.Fatal("index unusable")
	}
	node := &plan.Seek{Tab: e.sales, Index: ix, Ranges: ranges, Pred: bound}
	cfg := &MonitorConfig{Requests: []DPCRequest{{Table: "sales", Pred: pred}}}
	rows, ex := runPlan(t, e, node, cfg)
	if len(rows) != 300 {
		t.Errorf("seek returned %d rows, want 300", len(rows))
	}
	res := ex.DPCResults()
	if res[0].Mechanism != MechLinearCount {
		t.Fatalf("mechanism = %s", res[0].Mechanism)
	}
	want := float64(trueDPC(t, e.sales, pred))
	got := float64(res[0].DPC)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("linear-counted DPC %.0f vs true %.0f", got, want)
	}
	if res[0].Cardinality != 300 {
		t.Errorf("cardinality = %d", res[0].Cardinality)
	}
}

func TestIndexSeekDoesNotSatisfyOtherPredicates(t *testing.T) {
	e := newEnv(t)
	seekPred := mustBind(t, expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(300))), e.sales.Schema)
	ix, _ := e.sales.IndexByName("ix_c2")
	ranges, _, _ := expr.IndexRanges(seekPred, ix.Cols)
	node := &plan.Seek{Tab: e.sales, Index: ix, Ranges: ranges, Pred: seekPred}
	// Request DPC for a different predicate: unobservable from this plan
	// (§II-B).
	cfg := &MonitorConfig{Requests: []DPCRequest{
		{Table: "sales", Pred: expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA")))},
	}}
	_, ex := runPlan(t, e, node, cfg)
	res := ex.DPCResults()
	if len(res) != 1 || res[0].Mechanism != MechUnsatisfiable {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Reason == "" {
		t.Error("unsatisfiable result lacks a reason")
	}
}

func TestIndexIntersection(t *testing.T) {
	e := newEnv(t)
	pA := expr.NewAtom("state", expr.Eq, tuple.Str("CA"))
	pB := expr.NewAtom("c2", expr.Lt, tuple.Int64(1000))
	pred := mustBind(t, expr.And(pA, pB), e.sales.Schema)
	ixA, _ := e.sales.IndexByName("ix_state")
	ixB, _ := e.sales.IndexByName("ix_c2")
	rA, _, _ := expr.IndexRanges(expr.And(pA), ixA.Cols)
	rB, _, _ := expr.IndexRanges(expr.And(pB), ixB.Cols)
	node := &plan.Intersect{Tab: e.sales, IndexA: ixA, RangesA: rA, IndexB: ixB, RangesB: rB, Pred: pred}
	cfg := &MonitorConfig{Requests: []DPCRequest{{Table: "sales", Pred: expr.And(pA, pB)}}}
	rows, ex := runPlan(t, e, node, cfg)
	want := 0
	for i := 0; i < 1000; i++ {
		if i%5 == 0 { // state CA
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("intersection returned %d rows, want %d", len(rows), want)
	}
	res := ex.DPCResults()
	trueN := float64(trueDPC(t, e.sales, expr.And(pA, pB)))
	if math.Abs(float64(res[0].DPC)-trueN)/trueN > 0.2 {
		t.Errorf("intersection DPC %d vs true %.0f", res[0].DPC, trueN)
	}
}

func TestCoveringScan(t *testing.T) {
	e := newEnv(t)
	ix, _ := e.sales.IndexByName("ix_c2")
	ixSchema := tuple.NewSchema(tuple.Column{Name: "c2", Kind: tuple.KindInt})
	pred := mustBind(t, expr.And(expr.NewAtom("c2", expr.Lt, tuple.Int64(50))), ixSchema)
	node := &plan.CoveringScan{Tab: e.sales, Index: ix, Pred: pred, Schem: ixSchema}
	rows, _ := runPlan(t, e, node, nil)
	if len(rows) != 50 {
		t.Errorf("covering scan returned %d rows, want 50", len(rows))
	}
}

func joinPlanSchema(e *env) *tuple.Schema {
	return plan.JoinSchema("dim", e.dim.Schema, "sales", e.sales.Schema)
}

func trueJoinDPC(t *testing.T, e *env, outerPred expr.Conjunction) int64 {
	t.Helper()
	// Pages of sales holding a row whose id joins some dim row passing
	// outerPred (join: dim.id = sales.id).
	bound := mustBind(t, outerPred, e.dim.Schema)
	dimIDs := map[int64]bool{}
	it, _ := e.dim.ScanAll()
	for it.Next() {
		if bound.Eval(it.Row()) {
			dimIDs[it.Row()[0].Int] = true
		}
	}
	it.Close()
	pages := map[storage.PageID]bool{}
	it2, _ := e.sales.ScanAll()
	for it2.Next() {
		if dimIDs[it2.Row()[0].Int] {
			pages[it2.RID().Page] = true
		}
	}
	it2.Close()
	return int64(len(pages))
}

func TestHashJoinWithBitvectorMonitor(t *testing.T) {
	e := newEnv(t)
	outerPred := expr.And(expr.NewAtom("val", expr.Lt, tuple.Int64(200)))
	outerBound := mustBind(t, outerPred, e.dim.Schema)
	outerNode := &plan.Scan{Tab: e.dim, Pred: outerBound, Estm: plan.Estimates{Rows: 200}}
	innerNode := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
	node := &plan.Join{
		Method: plan.HashJoin, Outer: outerNode, Inner: innerNode,
		OuterCol: "id", InnerCol: "id", Schem: joinPlanSchema(e),
	}
	cfg := &MonitorConfig{
		Requests:       []DPCRequest{{Table: "sales", Join: true}},
		SampleFraction: 1.0,
		Seed:           3,
	}
	rows, ex := runPlan(t, e, node, cfg)
	if len(rows) != 200 { // dim ids 0,3,..,597 all < 4000 exist in sales
		t.Errorf("join returned %d rows, want 200", len(rows))
	}
	res := ex.DPCResults()
	if len(res) != 1 || res[0].Mechanism != MechBitVector {
		t.Fatalf("results = %+v", res)
	}
	want := trueJoinDPC(t, e, outerPred)
	// Bit vector can only overestimate; with default sizing it is near exact.
	if res[0].DPC < want {
		t.Errorf("bitvector DPC %d underestimates true %d", res[0].DPC, want)
	}
	if float64(res[0].DPC) > float64(want)*1.15+2 {
		t.Errorf("bitvector DPC %d overestimates true %d badly", res[0].DPC, want)
	}
}

func TestINLJoinWithMonitor(t *testing.T) {
	e := newEnv(t)
	outerPred := mustBind(t, expr.And(expr.NewAtom("val", expr.Lt, tuple.Int64(200))), e.dim.Schema)
	outerNode := &plan.Scan{Tab: e.dim, Pred: outerPred}
	ix, _ := e.sales.IndexByName("ix_id")
	node := &plan.Join{
		Method: plan.INLJoin, Outer: outerNode,
		OuterCol: "id", InnerCol: "id",
		InnerTab: e.sales, InnerIndex: ix,
		InnerPred: expr.Conjunction{},
		Schem:     joinPlanSchema(e),
	}
	cfg := &MonitorConfig{Requests: []DPCRequest{{Table: "sales", Join: true}}}
	rows, ex := runPlan(t, e, node, cfg)
	if len(rows) != 200 {
		t.Errorf("INL join returned %d rows, want 200", len(rows))
	}
	res := ex.DPCResults()
	if res[0].Mechanism != MechINLFetch {
		t.Fatalf("mechanism = %s", res[0].Mechanism)
	}
	want := float64(trueJoinDPC(t, e, expr.And(expr.NewAtom("val", expr.Lt, tuple.Int64(200)))))
	if math.Abs(float64(res[0].DPC)-want)/want > 0.15 {
		t.Errorf("INL DPC %d vs true %.0f", res[0].DPC, want)
	}
}

func TestMergeJoinSortedOuterFullFilter(t *testing.T) {
	e := newEnv(t)
	outerPred := mustBind(t, expr.And(expr.NewAtom("val", expr.Lt, tuple.Int64(200))), e.dim.Schema)
	// Outer scanned then sorted (dim is clustered on id anyway, but the
	// explicit Sort exercises the blocking-sort filter path).
	outerNode := &plan.Scan{Tab: e.dim, Pred: outerPred, Estm: plan.Estimates{Rows: 200}}
	innerNode := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
	node := &plan.Join{
		Method: plan.MergeJoin, Outer: outerNode, Inner: innerNode,
		OuterCol: "id", InnerCol: "id", SortOuter: true,
		Schem: joinPlanSchema(e),
	}
	cfg := &MonitorConfig{
		Requests:       []DPCRequest{{Table: "sales", Join: true}},
		SampleFraction: 1.0,
		Seed:           5,
	}
	rows, ex := runPlan(t, e, node, cfg)
	if len(rows) != 200 {
		t.Errorf("merge join returned %d rows, want 200", len(rows))
	}
	res := ex.DPCResults()
	want := trueJoinDPC(t, e, expr.And(expr.NewAtom("val", expr.Lt, tuple.Int64(200))))
	if res[0].DPC < want || float64(res[0].DPC) > float64(want)*1.15+2 {
		t.Errorf("merge-join DPC %d vs true %d", res[0].DPC, want)
	}
}

func TestMergeJoinPartialFilterBothClustered(t *testing.T) {
	e := newEnv(t)
	// Both inputs clustered on id: no sorts, partial bit-vector filter with
	// the late-match callback.
	outerNode := &plan.Scan{Tab: e.dim, Pred: expr.Conjunction{}, Estm: plan.Estimates{Rows: 500}}
	innerNode := &plan.Scan{Tab: e.sales, Pred: expr.Conjunction{}}
	node := &plan.Join{
		Method: plan.MergeJoin, Outer: outerNode, Inner: innerNode,
		OuterCol: "id", InnerCol: "id", Schem: joinPlanSchema(e),
	}
	cfg := &MonitorConfig{
		Requests:       []DPCRequest{{Table: "sales", Join: true}},
		SampleFraction: 1.0,
		Seed:           6,
	}
	rows, ex := runPlan(t, e, node, cfg)
	want := 0
	for i := 0; i < 500; i++ {
		if i*3 < envRows {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("merge join returned %d rows, want %d", len(rows), want)
	}
	res := ex.DPCResults()
	trueN := trueJoinDPC(t, e, expr.Conjunction{})
	if res[0].DPC < trueN {
		t.Errorf("partial-filter DPC %d underestimates true %d (late-match bug?)", res[0].DPC, trueN)
	}
	if float64(res[0].DPC) > float64(trueN)*1.15+2 {
		t.Errorf("partial-filter DPC %d overestimates true %d", res[0].DPC, trueN)
	}
}

func TestAggCount(t *testing.T) {
	e := newEnv(t)
	pred := mustBind(t, expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA"))), e.sales.Schema)
	scan := &plan.Scan{Tab: e.sales, Pred: pred}
	agg := plan.NewAgg(scan, plan.CountAgg, "pad")
	rows, _ := runPlan(t, e, agg, nil)
	if len(rows) != 1 || rows[0][0].Int != int64(envRows/5) {
		t.Errorf("count = %v", rows)
	}
}

func TestAggSumMinMax(t *testing.T) {
	e := newEnv(t)
	pred := mustBind(t, expr.And(expr.NewAtom("id", expr.Lt, tuple.Int64(4))), e.sales.Schema)
	scan := &plan.Scan{Tab: e.sales, Pred: pred}
	for _, tc := range []struct {
		f    plan.AggFunc
		want int64
	}{
		{plan.SumAgg, 0 + 1 + 2 + 3},
		{plan.MinAgg, 0},
		{plan.MaxAgg, 3},
	} {
		rows, _ := runPlan(t, e, plan.NewAgg(scan, tc.f, "id"), nil)
		if rows[0][0].Int != tc.want {
			t.Errorf("%v = %d, want %d", tc.f, rows[0][0].Int, tc.want)
		}
	}
}

func TestSortOperator(t *testing.T) {
	e := newEnv(t)
	pred := mustBind(t, expr.And(expr.NewAtom("c5", expr.Lt, tuple.Int64(20))), e.sales.Schema)
	scan := &plan.Scan{Tab: e.sales, Pred: pred}
	sortNode := &plan.Sort{Input: scan, Cols: []string{"c5"}}
	rows, _ := runPlan(t, e, sortNode, nil)
	if len(rows) != 20 {
		t.Fatalf("sort returned %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][2].Int < rows[i-1][2].Int {
			t.Fatal("output not sorted")
		}
	}
}

func TestStatsSnapshotAndXML(t *testing.T) {
	e := newEnv(t)
	pred := mustBind(t, expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA"))), e.sales.Schema)
	scan := &plan.Scan{Tab: e.sales, Pred: pred, Estm: plan.Estimates{Rows: 123}}
	agg := plan.NewAgg(scan, plan.CountAgg, "")
	_, ex := runPlan(t, e, agg, nil)
	snap := ex.StatsSnapshot()
	if snap.Label != "Aggregate(count)" || len(snap.Children) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Children[0].EstRows != 123 {
		t.Errorf("EstRows not propagated: %v", snap.Children[0].EstRows)
	}
	if snap.Children[0].ActRows != int64(envRows/5) {
		t.Errorf("ActRows = %d", snap.Children[0].ActRows)
	}
	doc := ExecutionStats{Plan: snap, Runtime: RuntimeStats{SimulatedIO: time.Second}}
	xmlStr, err := MarshalStats(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ExecutionStats", "Aggregate(count)", "actualRows"} {
		if !strings.Contains(xmlStr, want) {
			t.Errorf("XML missing %q:\n%s", want, xmlStr)
		}
	}
}

func TestContextSimCPU(t *testing.T) {
	e := newEnv(t)
	ctx := NewContext(e.pool)
	pred := mustBind(t, expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA"))), e.sales.Schema)
	ex, err := Build(ctx, &plan.Scan{Tab: e.sales, Pred: pred}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if ctx.RowsTouched() < envRows {
		t.Errorf("RowsTouched = %d, want >= %d", ctx.RowsTouched(), envRows)
	}
	if ctx.SimCPU() != time.Duration(ctx.RowsTouched())*ctx.CPUPerRow {
		t.Error("SimCPU inconsistent")
	}
}

func TestFilterOperator(t *testing.T) {
	e := newEnv(t)
	ctx := NewContext(e.pool)
	scanPred := expr.Conjunction{}
	scan := NewSEScan(ctx, e.sales, scanPred)
	fpred := mustBind(t, expr.And(expr.NewAtom("id", expr.Lt, tuple.Int64(10))), e.sales.Schema)
	f := NewFilter(ctx, scan, fpred)
	if err := f.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := f.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	f.Close()
	if n != 10 {
		t.Errorf("filter passed %d rows, want 10", n)
	}
}

func TestSeekMonitorWithSamplingComparison(t *testing.T) {
	e := newEnv(t)
	pred := expr.And(expr.NewAtom("c5", expr.Lt, tuple.Int64(500)))
	bound := mustBind(t, pred, e.sales.Schema)
	ix, _ := e.sales.IndexByName("ix_c5")
	ranges, _, _ := expr.IndexRanges(bound, ix.Cols)
	node := &plan.Seek{Tab: e.sales, Index: ix, Ranges: ranges, Pred: bound}
	cfg := &MonitorConfig{
		Requests:                 []DPCRequest{{Table: "sales", Pred: pred}},
		CompareSamplingEstimator: true,
		ReservoirSize:            64,
	}
	_, ex := runPlan(t, e, node, cfg)
	res := ex.DPCResults()
	if res[0].SamplingEstimate == 0 {
		t.Error("comparison estimator did not run")
	}
}
