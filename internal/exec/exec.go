// Package exec implements the physical operators and the monitor planner.
//
// The package enforces the relational-engine / storage-engine split that
// shapes the paper's design (§II-B, §V-A): scans, seeks, and fetches run
// "inside the SE" and see page ids; joins, sorts, and aggregates run "in the
// RE" and see only rows. The bit-vector filter of §IV crosses the boundary
// the same way the paper's prototype does — through an explicit callback
// object handed to the SE-side scan.
package exec

import (
	"time"

	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// Context carries per-execution state shared by all operators of one query.
type Context struct {
	// Pool is the buffer pool all storage access goes through.
	Pool *storage.BufferPool
	// CPUPerRow is the simulated CPU cost charged per row touched by any
	// operator; it is added to the disk's simulated I/O time to form the
	// query's simulated execution time.
	CPUPerRow time.Duration

	rowsTouched int64
}

// NewContext creates an execution context with the default CPU model
// (1 µs per row touched).
func NewContext(pool *storage.BufferPool) *Context {
	return &Context{Pool: pool, CPUPerRow: time.Microsecond}
}

// touch charges CPU for n rows.
func (c *Context) touch(n int64) { c.rowsTouched += n }

// RowsTouched returns the total rows processed by all operators so far.
func (c *Context) RowsTouched() int64 { return c.rowsTouched }

// SimCPU returns the simulated CPU time accumulated so far.
func (c *Context) SimCPU() time.Duration {
	return time.Duration(c.rowsTouched) * c.CPUPerRow
}

// Operator is one physical operator instance. The protocol is
// Open → Next* → Close; Next returns ok=false at end of stream.
type Operator interface {
	Open() error
	Next() (row tuple.Row, ok bool, err error)
	Close() error
	Schema() *tuple.Schema
	Stats() *OpStats
}

// OpStats pairs the optimizer's estimates with execution actuals for one
// operator — the per-operator content of the "statistics xml" output.
type OpStats struct {
	Label   string
	EstRows float64
	EstDPC  float64
	ActRows int64
	// Children in plan order.
	Children []*OpStats
}
