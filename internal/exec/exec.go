// Package exec implements the physical operators and the monitor planner.
//
// The package enforces the relational-engine / storage-engine split that
// shapes the paper's design (§II-B, §V-A): scans, seeks, and fetches run
// "inside the SE" and see page ids; joins, sorts, and aggregates run "in the
// RE" and see only rows. The bit-vector filter of §IV crosses the boundary
// the same way the paper's prototype does — through an explicit callback
// object handed to the SE-side scan.
//
// Two robustness mechanisms live at this layer. Every operator is wrapped in
// a panic boundary that converts internal panics (decode failures on corrupt
// cells, comparator kind mismatches) into *OperatorPanic errors carrying the
// failing operator's label, so one bad page fails one query, not the
// process. And the shared execution Context carries a context.Context whose
// cancellation the row loops of all storage-side operators observe, giving
// queries deadline and Ctrl-C semantics.
package exec

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"pagefeedback/internal/storage"
	"pagefeedback/internal/trace"
	"pagefeedback/internal/tuple"
)

// Context carries per-execution state shared by all operators of one query.
type Context struct {
	// Pool is the buffer pool all storage access goes through.
	Pool *storage.BufferPool
	// CPUPerRow is the simulated CPU cost charged per row touched by any
	// operator; it is added to the disk's simulated I/O time to form the
	// query's simulated execution time.
	CPUPerRow time.Duration
	// Parallelism is the degree of intra-query parallelism: full scans (and
	// hash-join probes over them) split into that many partitioned workers.
	// 0 or 1 means serial execution; the builder never parallelizes
	// order-sensitive subtrees regardless of the setting.
	Parallelism int
	// Mem, when non-nil, accounts bytes materialized by allocating operators
	// against a per-query budget; exceeding it aborts the query with an
	// error wrapping ErrMemBudget.
	Mem *MemTracker
	// Vectorized selects the batch-at-a-time execution path: blocking
	// operators drain their inputs through NextBatch and the result sink
	// pulls whole batches from the root. Off, every operator moves one row
	// per Next call. The two paths produce identical results, feedback, and
	// deterministic runtime stats; only the batch counters below differ.
	Vectorized bool
	// Trace, when non-nil, receives per-operator spans from every panic
	// guard and partition spans from parallel workers. Nil is the tracing-
	// off state: every emission site is behind a nil check, so the
	// disabled path costs one pointer compare and zero allocations.
	Trace *trace.Recorder

	rowsTouched int64
	// compiledPreds counts operators that evaluate their predicate through
	// a type-specialized expr.Compiled instead of the generic per-atom
	// dispatch. Operators increment it at construction time (single-
	// threaded), so no synchronization is needed.
	compiledPreds int64

	// batches counts batch deliveries by batch-native operators; vecOps
	// counts the operator instances that ran batch-native at least once.
	// Both stay zero on the row path and on adapter-wrapped subtrees, so
	// they are diagnostics, not part of the row/batch parity surface.
	batches int64
	vecOps  int64

	// goCtx is the query's cancellation scope; nil means uncancellable.
	goCtx     context.Context
	done      <-chan struct{}
	cancelErr error
}

// NewContext creates an execution context with the default CPU model
// (1 µs per row touched).
func NewContext(pool *storage.BufferPool) *Context {
	return &Context{Pool: pool, CPUPerRow: time.Microsecond}
}

// BindContext attaches a cancellation scope. Operators poll it at page
// granularity — once per page batch on scans, once per fetched page on seek
// paths — and abort with ctx.Err() once it fires.
func (c *Context) BindContext(ctx context.Context) {
	if ctx == nil {
		c.goCtx, c.done = nil, nil
		return
	}
	c.goCtx = ctx
	c.done = ctx.Done()
}

// interrupted returns the context's error once the attached context is
// cancelled or past its deadline. Callers invoke it at page granularity, so
// no per-call rate limiting is needed: it is one non-blocking select.
func (c *Context) interrupted() error {
	if c.cancelErr != nil {
		return c.cancelErr
	}
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		c.cancelErr = c.goCtx.Err()
		return c.cancelErr
	default:
		return nil
	}
}

// child creates a worker-private context for one partition of a parallel
// scan. It shares the pool and the cancellation scope but accumulates
// rowsTouched locally, so workers never contend on (or race over) the parent
// counter; the barrier absorbs the counts after the workers have exited.
func (c *Context) child() *Context {
	return &Context{Pool: c.Pool, CPUPerRow: c.CPUPerRow, Mem: c.Mem, Trace: c.Trace, goCtx: c.goCtx, done: c.done}
}

// absorb folds a finished worker context's counters into c. Callers must
// guarantee the worker goroutine has exited (e.g. via WaitGroup.Wait).
func (c *Context) absorb(w *Context) { c.rowsTouched += w.rowsTouched }

// touch charges CPU for n rows.
func (c *Context) touch(n int64) { c.rowsTouched += n }

// noteCompiled records that one operator compiled its predicate.
func (c *Context) noteCompiled() { c.compiledPreds++ }

// noteBatch records one batch delivered by a batch-native operator.
func (c *Context) noteBatch() { c.batches++ }

// noteVectorized records — once per operator, keyed by the operator's own
// noted flag — that an operator ran its batch-native path.
func (c *Context) noteVectorized(noted *bool) {
	if !*noted {
		*noted = true
		c.vecOps++
	}
}

// BatchesProcessed returns the number of batches delivered by batch-native
// operators so far.
func (c *Context) BatchesProcessed() int64 { return c.batches }

// VectorizedOps returns the number of operator instances that ran
// batch-native.
func (c *Context) VectorizedOps() int64 { return c.vecOps }

// CompiledPredicates returns the number of operators in this execution that
// run a compiled (type-specialized) predicate evaluator.
func (c *Context) CompiledPredicates() int64 { return c.compiledPreds }

// RowsTouched returns the total rows processed by all operators so far.
func (c *Context) RowsTouched() int64 { return c.rowsTouched }

// SimCPU returns the simulated CPU time accumulated so far.
func (c *Context) SimCPU() time.Duration {
	return time.Duration(c.rowsTouched) * c.CPUPerRow
}

// Operator is one physical operator instance. The protocol is
// Open → Next* → Close; Next returns ok=false at end of stream.
type Operator interface {
	Open() error
	Next() (row tuple.Row, ok bool, err error)
	Close() error
	Schema() *tuple.Schema
	Stats() *OpStats
}

// OpStats pairs the optimizer's estimates with execution actuals for one
// operator — the per-operator content of the "statistics xml" output.
type OpStats struct {
	Label   string
	EstRows float64
	EstDPC  float64
	ActRows int64
	// Children in plan order.
	Children []*OpStats

	// OpID identifies the operator within its execution; the builder
	// assigns ids in construction (post-) order, so they are deterministic
	// for a given plan whether or not tracing runs. Trace spans and DPC
	// results carry the same ids, which is how EXPLAIN ANALYZE aligns
	// per-operator actuals without runtime tree pointers.
	OpID int32
	// Wall and Calls are filled by the panic guard on traced runs only:
	// inclusive wall time inside the operator (Open + all Next + Close)
	// and the number of Next/NextBatch invocations.
	Wall  time.Duration
	Calls int64
}

// OperatorPanic is a panic raised inside a physical operator, recovered at
// the operator's boundary and converted into an ordinary query error. Op is
// the label of the deepest operator whose code (or whose storage-engine
// callees) panicked.
type OperatorPanic struct {
	Op    string
	Value any
	Stack []byte
}

// Error implements error.
func (p *OperatorPanic) Error() string {
	return fmt.Sprintf("exec: panic in operator %s: %v", p.Op, p.Value)
}

// guardOp wraps an operator with a panic boundary. Build wraps every
// operator it constructs, so a panic is recovered at the deepest operator
// it escaped from and surfaces as an *OperatorPanic naming that operator;
// parents see a plain error on the normal propagation path and release
// their resources exactly as they do for storage faults.
type guardOp struct {
	inner Operator
	// batch is the inner operator's batch view, resolved on first use: the
	// operator itself when batch-native, an adapter otherwise. Because Build
	// wraps every operator in a guard, every built operator is a
	// BatchOperator, and batch-native parents reach their children's
	// NextBatch without losing the panic boundary.
	batch BatchOperator

	// Tracing state. The guard is also the tracing hook: because every
	// operator is wrapped in exactly one guard, instrumenting the guard
	// instruments the whole tree without touching any operator. tr is nil
	// when tracing is off. Per-call Next spans would make trace size
	// proportional to the data, so the guard accumulates and emits one
	// summary span (plus open/close/lifetime spans) at first Close.
	tr        *trace.Recorder
	st        *OpStats
	openAt    time.Duration
	openDur   time.Duration
	firstNext time.Duration
	lastNext  time.Duration
	nextTotal time.Duration
	calls     int64
	rows      int64
	ended     bool
}

func (g *guardOp) recovered(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	*errp = &OperatorPanic{Op: g.inner.Stats().Label, Value: r, Stack: debug.Stack()}
}

// Open implements Operator. If the inner Open panics mid-way (for example
// while a blocking operator drains its input), the inner operator is closed
// best-effort so page pins acquired before the panic are released.
func (g *guardOp) Open() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &OperatorPanic{Op: g.inner.Stats().Label, Value: r, Stack: debug.Stack()}
			func() {
				defer func() { recover() }()
				g.inner.Close()
			}()
		}
	}()
	if g.tr == nil {
		return g.inner.Open()
	}
	g.openAt = g.tr.Now()
	err = g.inner.Open()
	end := g.tr.Now()
	g.openDur = end - g.openAt
	g.tr.Emit(trace.Span{Op: g.st.OpID, Kind: trace.KindOpen, Start: g.openAt, End: end})
	return err
}

// Next implements Operator.
func (g *guardOp) Next() (row tuple.Row, ok bool, err error) {
	defer g.recovered(&err)
	if g.tr == nil {
		return g.inner.Next()
	}
	t0 := g.tr.Now()
	if g.calls == 0 {
		g.firstNext = t0
	}
	row, ok, err = g.inner.Next()
	t1 := g.tr.Now()
	g.calls++
	g.nextTotal += t1 - t0
	g.lastNext = t1
	if ok {
		g.rows++
	}
	return row, ok, err
}

// NextBatch implements BatchOperator with the same panic boundary as Next.
func (g *guardOp) NextBatch(b *Batch) (n int, err error) {
	defer g.recovered(&err)
	if g.batch == nil {
		g.batch = asBatch(g.inner)
	}
	if g.tr == nil {
		return g.batch.NextBatch(b)
	}
	t0 := g.tr.Now()
	if g.calls == 0 {
		g.firstNext = t0
	}
	n, err = g.batch.NextBatch(b)
	t1 := g.tr.Now()
	g.calls++
	g.nextTotal += t1 - t0
	g.lastNext = t1
	g.rows += int64(n)
	return n, err
}

// Close implements Operator. On traced runs the first Close ends the
// operator: it emits the close span, the Next summary span, and the
// lifetime span (each exactly once, whatever the teardown order of the
// error paths), and publishes the accumulated wall time into the
// operator's stats — a field the XML marshaling excludes, so the
// statistics document stays byte-identical with tracing on or off.
func (g *guardOp) Close() (err error) {
	defer g.recovered(&err)
	if g.tr == nil {
		return g.inner.Close()
	}
	t0 := g.tr.Now()
	err = g.inner.Close()
	t1 := g.tr.Now()
	if !g.ended {
		g.ended = true
		g.tr.Emit(trace.Span{Op: g.st.OpID, Kind: trace.KindClose, Start: t0, End: t1})
		if g.calls > 0 {
			g.tr.Emit(trace.Span{
				Op: g.st.OpID, Kind: trace.KindNext,
				Start: g.firstNext, End: g.lastNext,
				N: g.rows, Calls: g.calls, Total: g.nextTotal,
			})
		}
		g.tr.Emit(trace.Span{Op: g.st.OpID, Kind: trace.KindOperator, Start: g.openAt, End: t1, N: g.rows})
		g.st.Wall = g.openDur + g.nextTotal + (t1 - t0)
		g.st.Calls = g.calls
	}
	return err
}

// Schema implements Operator.
func (g *guardOp) Schema() *tuple.Schema { return g.inner.Schema() }

// Stats implements Operator.
func (g *guardOp) Stats() *OpStats { return g.inner.Stats() }

// unwrapOp strips the panic guard, exposing the concrete operator for the
// builder's structural inspection (monitor wiring, sort detection).
func unwrapOp(op Operator) Operator {
	for {
		g, ok := op.(*guardOp)
		if !ok {
			return op
		}
		op = g.inner
	}
}
