package exec

import (
	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// SEScan scans a table's data pages in physical order, evaluating the scan
// predicate inside the storage engine with short-circuiting — the Heap Scan
// / Clustered Index Scan of §III-B. It owns the grouped page access
// property, so attached monitors can count distinct pages exactly (prefix
// predicates) or via DPSample (everything else).
type SEScan struct {
	ctx      *Context
	tab      *catalog.Table
	pred     expr.Conjunction // bound
	krange   *expr.KeyRange   // clustered range seek, nil = full scan
	monitors []*scanMonitor
	stats    OpStats

	it      *catalog.RowIter
	lastRID storage.RID
	open    bool
}

// NewSEScan builds a scan of tab filtered by pred (already bound to the
// table's schema).
func NewSEScan(ctx *Context, tab *catalog.Table, pred expr.Conjunction) *SEScan {
	return &SEScan{ctx: ctx, tab: tab, pred: pred, stats: OpStats{Label: "Scan(" + tab.Name + ")"}}
}

// NewSEClusterRangeScan builds a clustered index range seek over krange,
// still applying the full pred to each scanned row.
func NewSEClusterRangeScan(ctx *Context, tab *catalog.Table, pred expr.Conjunction, krange *expr.KeyRange) *SEScan {
	return &SEScan{ctx: ctx, tab: tab, pred: pred, krange: krange,
		stats: OpStats{Label: "RangeScan(" + tab.Name + ")"}}
}

// attach adds a monitor (called by the builder).
func (s *SEScan) attach(m *scanMonitor) { s.monitors = append(s.monitors, m) }

// Table returns the scanned table.
func (s *SEScan) Table() *catalog.Table { return s.tab }

// Open implements Operator.
func (s *SEScan) Open() error {
	var it *catalog.RowIter
	var err error
	if s.krange != nil {
		it, err = s.tab.ScanRange(*s.krange)
	} else {
		it, err = s.tab.ScanAll()
	}
	if err != nil {
		return err
	}
	s.it = it
	s.open = true
	return nil
}

// Next implements Operator. Monitors observe every scanned row (before
// filtering), exactly as the SE-side instrumentation of the paper does; the
// scan predicate then decides whether the row flows to the parent.
func (s *SEScan) Next() (tuple.Row, bool, error) {
	for s.it.Next() {
		if err := s.ctx.interrupted(); err != nil {
			return nil, false, err
		}
		s.ctx.touch(1)
		row := s.it.Row()
		rid := s.it.RID()
		s.lastRID = rid

		// Evaluate the scan predicate atom by atom so prefix monitors can
		// reuse the short-circuited result (§III-B: prefixes are free).
		failIdx := -1
		for i := range s.pred.Atoms {
			if !s.pred.Atoms[i].Eval(row) {
				failIdx = i
				break
			}
		}
		for _, m := range s.monitors {
			m.safeObserve(rid, row, failIdx)
		}
		if failIdx == -1 {
			s.stats.ActRows++
			return row, true, nil
		}
	}
	if err := s.it.Err(); err != nil {
		return nil, false, err
	}
	// End of scan: close the monitors' last page.
	for _, m := range s.monitors {
		m.safeFinish()
	}
	return nil, false, nil
}

// LastRID returns the RID of the most recently scanned row (used by the
// RE→SE callback for partial bit-vector filters).
func (s *SEScan) LastRID() storage.RID { return s.lastRID }

// lateMatch forwards a late join-match notification to join-filter monitors.
func (s *SEScan) lateMatch(rid storage.RID) {
	for _, m := range s.monitors {
		m.safeLateMatch(rid)
	}
}

// Close implements Operator.
func (s *SEScan) Close() error {
	if s.it != nil {
		s.it.Close()
	}
	s.open = false
	return nil
}

// Schema implements Operator.
func (s *SEScan) Schema() *tuple.Schema { return s.tab.Schema }

// Stats implements Operator.
func (s *SEScan) Stats() *OpStats { return &s.stats }

// CoveringScan scans every leaf of a secondary index whose columns cover the
// query; no table pages are touched, so table-page DPC monitors cannot be
// attached here (the monitor planner reports them unsatisfiable).
type CoveringScan struct {
	ctx    *Context
	ix     *catalog.Index
	pred   expr.Conjunction // bound to the index schema
	schema *tuple.Schema
	stats  OpStats

	it *catalog.EntryIter
}

// NewCoveringScan builds a covering scan of ix. pred must be bound to the
// index-column schema.
func NewCoveringScan(ctx *Context, ix *catalog.Index, pred expr.Conjunction, schema *tuple.Schema) *CoveringScan {
	return &CoveringScan{
		ctx: ctx, ix: ix, pred: pred, schema: schema,
		stats: OpStats{Label: "CoveringScan(" + ix.Table.Name + "." + ix.Name + ")"},
	}
}

// Open implements Operator.
func (s *CoveringScan) Open() error {
	it, err := s.ix.SeekRange(expr.KeyRange{}) // full index scan
	if err != nil {
		return err
	}
	s.it = it
	return nil
}

// Next implements Operator.
func (s *CoveringScan) Next() (tuple.Row, bool, error) {
	for s.it.Next() {
		if err := s.ctx.interrupted(); err != nil {
			return nil, false, err
		}
		s.ctx.touch(1)
		row := tuple.Row(append([]tuple.Value(nil), s.it.Values()...))
		if s.pred.Eval(row) {
			s.stats.ActRows++
			return row, true, nil
		}
	}
	return nil, false, s.it.Err()
}

// Close implements Operator.
func (s *CoveringScan) Close() error {
	if s.it != nil {
		s.it.Close()
	}
	return nil
}

// Schema implements Operator.
func (s *CoveringScan) Schema() *tuple.Schema { return s.schema }

// Stats implements Operator.
func (s *CoveringScan) Stats() *OpStats { return &s.stats }
