package exec

import (
	"pagefeedback/internal/catalog"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// SEScan scans a table's data pages in physical order, evaluating the scan
// predicate inside the storage engine with short-circuiting — the Heap Scan
// / Clustered Index Scan of §III-B. It owns the grouped page access
// property, so attached monitors can count distinct pages exactly (prefix
// predicates) or via DPSample (everything else).
type SEScan struct {
	ctx      *Context
	tab      *catalog.Table
	pred     expr.Conjunction // bound
	cc       expr.Compiled    // type-specialized pred, when compilable
	rawCC    expr.RawCompiled // pred over encoded rows, when compilable
	krange   *expr.KeyRange   // clustered range seek, nil = full scan
	monitors []*scanMonitor
	stats    OpStats

	it       *catalog.RowIter
	batch    catalog.RowBatch
	failIdx  []int // per batch row: first failing atom, -1 = row passes
	pos      int   // next batch row to deliver
	lastRID  storage.RID
	open     bool
	vecNoted bool
}

// NewSEScan builds a scan of tab filtered by pred (already bound to the
// table's schema).
func NewSEScan(ctx *Context, tab *catalog.Table, pred expr.Conjunction) *SEScan {
	return &SEScan{ctx: ctx, tab: tab, pred: pred, cc: compilePred(ctx, pred),
		rawCC: expr.CompileRaw(pred, tab.Schema),
		stats: OpStats{Label: "Scan(" + tab.Name + ")"}}
}

// NewSEClusterRangeScan builds a clustered index range seek over krange,
// still applying the full pred to each scanned row.
func NewSEClusterRangeScan(ctx *Context, tab *catalog.Table, pred expr.Conjunction, krange *expr.KeyRange) *SEScan {
	return &SEScan{ctx: ctx, tab: tab, pred: pred, cc: compilePred(ctx, pred),
		rawCC: expr.CompileRaw(pred, tab.Schema), krange: krange,
		stats: OpStats{Label: "RangeScan(" + tab.Name + ")"}}
}

// compilePred compiles pred at operator-construction time (single-threaded)
// and records the use in the execution context's statistics.
func compilePred(ctx *Context, pred expr.Conjunction) expr.Compiled {
	cc := expr.Compile(pred)
	if cc.OK() && ctx != nil {
		ctx.noteCompiled()
	}
	return cc
}

// attach adds a monitor (called by the builder).
func (s *SEScan) attach(m *scanMonitor) { s.monitors = append(s.monitors, m) }

// Table returns the scanned table.
func (s *SEScan) Table() *catalog.Table { return s.tab }

// Open implements Operator.
func (s *SEScan) Open() error {
	var it *catalog.RowIter
	var err error
	if s.krange != nil {
		it, err = s.tab.ScanRange(*s.krange)
	} else {
		it, err = s.tab.ScanAll()
	}
	if err != nil {
		return err
	}
	s.it = it
	s.batch.Rows = s.batch.Rows[:0]
	s.pos = 0
	s.open = true
	return nil
}

// Next implements Operator. The scan is page-batched: each underlying data
// page is pinned once, all of its rows are decoded into a reusable batch,
// the scan predicate is evaluated atom by atom for every row (so prefix
// monitors can reuse the short-circuited results, §III-B), monitors observe
// the whole page in one callback, and cancellation is polled once per page.
// Rows then stream to the parent from the batch; a returned row is valid
// until the scan advances past its page.
func (s *SEScan) Next() (tuple.Row, bool, error) {
	for {
		for s.pos < len(s.batch.Rows) {
			i := s.pos
			s.pos++
			s.lastRID = s.batch.RIDs[i]
			if s.failIdx[i] == -1 {
				s.stats.ActRows++
				return s.batch.Rows[i], true, nil
			}
		}
		ok, err := s.advancePage()
		if err != nil || !ok {
			return nil, false, err
		}
	}
}

// NextBatch implements BatchOperator: the scan already works page at a time,
// so the batch path simply stops flattening — the page batch's rows are
// handed up directly with a selection vector of the predicate survivors.
// Polling, CPU charging, predicate evaluation, and monitor observation run
// in advancePage, shared verbatim with the row path, so the feedback and
// accounting of the two paths are identical by construction.
func (s *SEScan) NextBatch(b *Batch) (int, error) {
	s.ctx.noteVectorized(&s.vecNoted)
	if len(s.monitors) == 0 && s.rawCC.OK() {
		return s.nextBatchRaw(b)
	}
	// With no monitors attached and a compiled predicate, nothing needs the
	// per-row first-failing-atom vector: the predicate compacts an identity
	// selection column-at-a-time in one pass instead. CPU accounting
	// (touch per page row in fetchPage) is identical either way.
	fast := len(s.monitors) == 0 && s.cc.OK()
	for {
		ok, err := s.fetchPage()
		if err != nil || !ok {
			return 0, err
		}
		b.Rows = s.batch.Rows
		if fast {
			b.Sel = s.cc.EvalBatch(s.batch.Rows, identSel(b.Sel, len(s.batch.Rows)))
		} else {
			s.evalPage()
			b.Sel = b.Sel[:0]
			for i, fi := range s.failIdx {
				if fi == -1 {
					b.Sel = append(b.Sel, i)
				}
			}
		}
		if len(b.Sel) == 0 {
			continue
		}
		s.stats.ActRows += int64(len(b.Sel))
		s.ctx.noteBatch()
		return len(b.Sel), nil
	}
}

// nextBatchRaw is the late-materializing batch path, taken when no monitor
// is attached and the predicate compiled against the encoded row layout:
// each cell is judged on its page bytes and only survivors are decoded, so
// the batch arrives dense (identity selection). CPU is still charged for
// every cell of the page — the same rows-touched accounting as the decoding
// paths — and rejected rows never exist as values at all.
func (s *SEScan) nextBatchRaw(b *Batch) (int, error) {
	for {
		total, ok := s.it.NextPageFiltered(&s.batch, s.rawCC.Eval)
		if !ok {
			return 0, s.it.Err()
		}
		if err := s.ctx.interrupted(); err != nil {
			return 0, err
		}
		s.ctx.touch(int64(total))
		if s.batch.Len() == 0 {
			continue
		}
		b.Rows = s.batch.Rows
		b.Sel = identSel(b.Sel, len(s.batch.Rows))
		s.stats.ActRows += int64(len(s.batch.Rows))
		s.ctx.noteBatch()
		return len(b.Sel), nil
	}
}

// advancePage pins and evaluates the next data page: poll cancellation,
// charge CPU for the page's rows, compute each row's first failing atom (so
// prefix monitors can reuse the short-circuited results, §III-B), and let
// every monitor observe the whole page in one callback. Returns false at end
// of scan, after closing the monitors' last page.
func (s *SEScan) advancePage() (bool, error) {
	ok, err := s.fetchPage()
	if err != nil || !ok {
		return ok, err
	}
	s.evalPage()
	return true, nil
}

// fetchPage pins and decodes the next data page, polls cancellation, and
// charges CPU for the page's rows. Returns false at end of scan, after
// closing the monitors' last page.
func (s *SEScan) fetchPage() (bool, error) {
	if !s.it.NextPage(&s.batch) {
		if err := s.it.Err(); err != nil {
			return false, err
		}
		for _, m := range s.monitors {
			m.safeFinish()
		}
		return false, nil
	}
	if err := s.ctx.interrupted(); err != nil {
		return false, err
	}
	s.ctx.touch(int64(s.batch.Len()))
	return true, nil
}

// evalPage computes each fetched row's first failing atom and lets every
// monitor observe the page in one callback.
func (s *SEScan) evalPage() {
	s.failIdx = s.failIdx[:0]
	if s.cc.OK() {
		for _, row := range s.batch.Rows {
			s.failIdx = append(s.failIdx, s.cc.FirstFail(row))
		}
	} else {
		for _, row := range s.batch.Rows {
			fi := -1
			for i := range s.pred.Atoms {
				if !s.pred.Atoms[i].Eval(row) {
					fi = i
					break
				}
			}
			s.failIdx = append(s.failIdx, fi)
		}
	}
	for _, m := range s.monitors {
		m.safeObservePage(&s.batch, s.failIdx)
	}
	s.pos = 0
}

// LastRID returns the RID of the most recently scanned row (used by the
// RE→SE callback for partial bit-vector filters).
func (s *SEScan) LastRID() storage.RID { return s.lastRID }

// lateMatch forwards a late join-match notification to join-filter monitors.
func (s *SEScan) lateMatch(rid storage.RID) {
	for _, m := range s.monitors {
		m.safeLateMatch(rid)
	}
}

// Close implements Operator.
func (s *SEScan) Close() error {
	if s.it != nil {
		s.it.Close()
	}
	s.open = false
	return nil
}

// Schema implements Operator.
func (s *SEScan) Schema() *tuple.Schema { return s.tab.Schema }

// Stats implements Operator.
func (s *SEScan) Stats() *OpStats { return &s.stats }

// CoveringScan scans every leaf of a secondary index whose columns cover the
// query; no table pages are touched, so table-page DPC monitors cannot be
// attached here (the monitor planner reports them unsatisfiable).
type CoveringScan struct {
	ctx    *Context
	ix     *catalog.Index
	pred   expr.Conjunction // bound to the index schema
	cc     expr.Compiled    // type-specialized pred, when compilable
	schema *tuple.Schema
	stats  OpStats

	it       *catalog.EntryIter
	rowBuf   tuple.Row      // reused output row; valid until the next Next
	lastLeaf storage.PageID // leaf of the previous entry, for page-granular polling
	started  bool
}

// NewCoveringScan builds a covering scan of ix. pred must be bound to the
// index-column schema.
func NewCoveringScan(ctx *Context, ix *catalog.Index, pred expr.Conjunction, schema *tuple.Schema) *CoveringScan {
	return &CoveringScan{
		ctx: ctx, ix: ix, pred: pred, cc: compilePred(ctx, pred), schema: schema,
		stats: OpStats{Label: "CoveringScan(" + ix.Table.Name + "." + ix.Name + ")"},
	}
}

// Open implements Operator.
func (s *CoveringScan) Open() error {
	it, err := s.ix.SeekRange(expr.KeyRange{}) // full index scan
	if err != nil {
		return err
	}
	s.it = it
	return nil
}

// Next implements Operator. Cancellation is polled once per index leaf, and
// the emitted row reuses one buffer: it is valid only until the next Next
// (consumers that keep rows — sorts, joins, the result sink — clone them).
func (s *CoveringScan) Next() (tuple.Row, bool, error) {
	for s.it.Next() {
		if leaf := s.it.LeafPage(); !s.started || leaf != s.lastLeaf {
			if err := s.ctx.interrupted(); err != nil {
				return nil, false, err
			}
			s.started = true
			s.lastLeaf = leaf
		}
		s.ctx.touch(1)
		s.rowBuf = append(s.rowBuf[:0], s.it.Values()...)
		sat := false
		if s.cc.OK() {
			sat = s.cc.Eval(s.rowBuf)
		} else {
			sat = s.pred.Eval(s.rowBuf)
		}
		if sat {
			s.stats.ActRows++
			return s.rowBuf, true, nil
		}
	}
	return nil, false, s.it.Err()
}

// Close implements Operator.
func (s *CoveringScan) Close() error {
	if s.it != nil {
		s.it.Close()
	}
	return nil
}

// Schema implements Operator.
func (s *CoveringScan) Schema() *tuple.Schema { return s.schema }

// Stats implements Operator.
func (s *CoveringScan) Stats() *OpStats { return &s.stats }
