package metrics

import (
	"fmt"
	"io"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, instruments in name order. Histograms emit cumulative buckets
// (le is each occupied bucket's inclusive upper bound) capped with the
// mandatory +Inf bucket, plus _sum and _count series; empty buckets
// between occupied ones are elided, which the cumulative encoding makes
// lossless.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		if c.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", c.Name, c.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if g.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", g.Name, g.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if h.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", h.Name, h.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Hist.Buckets {
			cum += b.Count
			_, hi := BucketBounds(b.Index)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.Name, hi, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Hist.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", h.Name, h.Hist.Sum, h.Name, h.Hist.Count); err != nil {
			return err
		}
	}
	return nil
}
