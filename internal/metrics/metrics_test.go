package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("queries_total", "total queries")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	if c.Name() != "queries_total" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("pool_pinned", "pinned frames")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("Value = %d, want 4", got)
	}
	if g.Name() != "pool_pinned" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	for _, reg := range []func(){
		func() { r.NewCounter("x", "") },
		func() { r.NewGauge("x", "") },
		func() { r.NewHistogram("x", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("duplicate registration did not panic")
				}
			}()
			reg()
		}()
	}
}

func TestSnapshotStableOrder(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zeta", "")
	r.NewCounter("alpha", "")
	r.NewGauge("mid", "")
	r.NewHistogram("wall", "")
	r.NewHistogram("queue", "")
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Errorf("counters not name-sorted: %+v", s.Counters)
	}
	if len(s.Histograms) != 2 || s.Histograms[0].Name != "queue" || s.Histograms[1].Name != "wall" {
		t.Errorf("histograms not name-sorted: %+v", s.Histograms)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Name != "mid" {
		t.Errorf("gauges: %+v", s.Gauges)
	}
}

// TestBucketRoundtrip sweeps values across every octave and checks the
// defining property of the bucketing: each value falls inside its
// bucket's bounds, and bucket indexes are monotone in the value.
func TestBucketRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := []int64{0, -5, 1, 2, 3, 4, 5, 7, 8, 15, 16, 63, 64, 1 << 40, 1<<62 + 12345, 1<<63 - 1}
	for i := 0; i < 2000; i++ {
		values = append(values, rng.Int63())
	}
	prev := int64(-1)
	prevIdx := 0
	for _, v := range values {
		idx := bucketFor(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketFor(%d) = %d out of range", v, idx)
		}
		lo, hi := BucketBounds(idx)
		if v > 0 && (v < lo || v > hi) {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d]", v, idx, lo, hi)
		}
		if v <= 0 && idx != 0 {
			t.Fatalf("non-positive value %d in bucket %d, want 0", v, idx)
		}
		if hi > 0 && lo > 0 && float64(hi-lo) > 0.25*float64(lo) {
			t.Fatalf("bucket %d relative width %d/%d exceeds 25%%", idx, hi-lo, lo)
		}
		_ = prev
		_ = prevIdx
	}
	// Monotonicity on a sorted sweep.
	last := -1
	for v := int64(0); v < 5000; v++ {
		idx := bucketFor(v)
		if idx < last {
			t.Fatalf("bucketFor not monotone at %d: %d after %d", v, idx, last)
		}
		last = idx
	}
}

// observeAll records the same values through a func so shard- and
// atomic-path tests share inputs.
func sampleValues(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		// Mix magnitudes: mostly small, occasional huge.
		switch rng.Intn(4) {
		case 0:
			out[i] = rng.Int63n(16)
		case 1:
			out[i] = rng.Int63n(1 << 20)
		default:
			out[i] = rng.Int63()
		}
	}
	return out
}

// TestShardMergeEqualsSerial mirrors the internal/core monitor-merge
// suite: observations split across K shards, merged in arbitrary
// order/grouping, must equal one shard fed serially.
func TestShardMergeEqualsSerial(t *testing.T) {
	values := sampleValues(5000, 42)
	var serial HistShard
	for _, v := range values {
		serial.Observe(v)
	}
	for _, shards := range []int{1, 2, 3, 7} {
		parts := make([]HistShard, shards)
		for i, v := range values {
			parts[i%shards].Observe(v)
		}
		// Merge right-to-left into parts[0].
		var merged HistShard
		for i := len(parts) - 1; i >= 0; i-- {
			merged.Merge(&parts[i])
		}
		if merged != serial {
			t.Errorf("%d shards: merged result differs from serial", shards)
		}
	}
}

func TestShardMergeCommutativeAssociative(t *testing.T) {
	a, b, c := HistShard{}, HistShard{}, HistShard{}
	for _, v := range sampleValues(1000, 7) {
		a.Observe(v)
	}
	for _, v := range sampleValues(1000, 8) {
		b.Observe(v)
	}
	for _, v := range sampleValues(1000, 9) {
		c.Observe(v)
	}
	ab, ba := a, b
	ab.Merge(&b)
	ba.Merge(&a)
	if ab != ba {
		t.Error("Merge is not commutative: a+b != b+a")
	}
	// (a+b)+c vs a+(b+c)
	abc1 := a
	abc1.Merge(&b)
	abc1.Merge(&c)
	bc := b
	bc.Merge(&c)
	abc2 := a
	abc2.Merge(&bc)
	if abc1 != abc2 {
		t.Error("Merge is not associative: (a+b)+c != a+(b+c)")
	}
}

func TestAbsorbMatchesDirectObserve(t *testing.T) {
	values := sampleValues(3000, 11)
	r := NewRegistry()
	direct := r.NewHistogram("direct", "")
	viaShards := r.NewHistogram("sharded", "")
	var s1, s2 HistShard
	for i, v := range values {
		direct.Observe(v)
		if i%2 == 0 {
			s1.Observe(v)
		} else {
			s2.Observe(v)
		}
	}
	viaShards.Absorb(&s1)
	viaShards.Absorb(&s2)
	d, s := direct.Snapshot(), viaShards.Snapshot()
	if d.Count != s.Count || d.Sum != s.Sum || len(d.Buckets) != len(s.Buckets) {
		t.Fatalf("snapshots differ: direct %+v sharded %+v", d, s)
	}
	for i := range d.Buckets {
		if d.Buckets[i] != s.Buckets[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, d.Buckets[i], s.Buckets[i])
		}
	}
}

func TestQuantileAndMean(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot quantile/mean not zero")
	}
	r := NewRegistry()
	h := r.NewHistogram("h", "")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Mean(); got != 500.5 {
		t.Errorf("Mean = %v, want 500.5 (sums are exact)", got)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		got := s.Quantile(q)
		exact := int64(q*1000) + 1
		if exact > 1000 {
			exact = 1000
		}
		// The quantile is an upper bound within the bucket's 25% width.
		if got < exact || float64(got) > 1.25*float64(exact)+1 {
			t.Errorf("Quantile(%v) = %d, want in [%d, %.0f]", q, got, exact, 1.25*float64(exact)+1)
		}
	}
}

// TestConcurrentWritersMergeOnRead is the registry's -race test: N
// goroutines hammer a counter, a gauge, and a histogram (both directly
// and through private shards absorbed at the end) while readers
// repeatedly snapshot and render. Final totals must be exact.
func TestConcurrentWritersMergeOnRead(t *testing.T) {
	const writers, perWriter = 8, 2000
	r := NewRegistry()
	c := r.NewCounter("ops", "")
	g := r.NewGauge("depth", "")
	h := r.NewHistogram("lat", "")
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				var sb strings.Builder
				if err := s.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var shard HistShard
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				if i%2 == 0 {
					h.Observe(int64(i))
				} else {
					shard.Observe(int64(i))
				}
			}
			h.Absorb(&shard)
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", s.Count, writers*perWriter)
	}
	wantSum := int64(writers) * int64(perWriter) * int64(perWriter-1) / 2
	if s.Sum != wantSum {
		t.Errorf("histogram sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("queries_total", "total queries executed")
	g := r.NewGauge("queue_depth", "")
	h := r.NewHistogram("wall_us", "wall time")
	c.Add(3)
	g.Set(-2)
	h.Observe(1)
	h.Observe(5)
	h.Observe(5)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP queries_total total queries executed",
		"# TYPE queries_total counter",
		"queries_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth -2",
		"# TYPE wall_us histogram",
		"wall_us_bucket{le=\"1\"} 1",
		"wall_us_bucket{le=\"5\"} 3",
		"wall_us_bucket{le=\"+Inf\"} 3",
		"wall_us_sum 11",
		"wall_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// A gauge with no help string must not emit a HELP line.
	if strings.Contains(out, "# HELP queue_depth") {
		t.Errorf("unexpected HELP line for help-less gauge:\n%s", out)
	}
}
