// Package metrics is the engine-wide metrics registry: counters, gauges,
// and mergeable log-linear histograms. Instruments are registered once at
// engine construction and updated lock-free on the query path; readers
// take a stable-ordered snapshot or a Prometheus text rendering at any
// time without pausing writers.
//
// Histograms follow the same merge discipline as the monitor shards in
// internal/core: parallel workers accumulate into private, non-atomic
// HistShard values and merge them into the shared histogram at a barrier,
// so the per-row path never touches shared cache lines. Merge is
// commutative and associative, which makes the merged result independent
// of worker scheduling.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative; negative deltas are ignored so
// a buggy caller cannot make a counter run backwards.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the value by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Registry holds an engine's instruments. Registration is cheap and
// expected at construction time; lookups during snapshots take a
// read-lock only on the instrument lists, never on instrument values.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// checkName panics on a name collision anywhere in the registry.
// Duplicate registration is a programming error, not a runtime
// condition, and silently sharing an instrument would double-count.
func (r *Registry) checkName(name string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
}

// NewCounter registers and returns a counter. Panics if name is taken.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// NewGauge registers and returns a gauge. Panics if name is taken.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// NewHistogram registers and returns a histogram. Panics if name is
// taken.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	h := &Histogram{name: name, help: help}
	r.histograms[name] = h
	return h
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string
	Help  string
	Value int64
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string
	Help  string
	Value int64
}

// HistogramValue is one histogram's snapshot.
type HistogramValue struct {
	Name string
	Help string
	Hist HistSnapshot
}

// Snapshot is a point-in-time copy of every instrument, each section
// sorted by name. Instruments are read individually and lock-free, so a
// snapshot taken while writers run is internally consistent per
// instrument but not across instruments — the usual Prometheus contract.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Snapshot captures every registered instrument in stable (name) order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{c.name, c.help, c.Value()})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{g.name, g.help, g.Value()})
	}
	for _, h := range r.histograms {
		s.Histograms = append(s.Histograms, HistogramValue{h.name, h.help, h.Snapshot()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
