package metrics

import (
	"math/bits"
	"sync/atomic"
)

// The histogram is log-linear: values are bucketed by octave (power of
// two), each octave split into subBuckets linear sub-buckets, which
// bounds the relative error of any reconstructed value at 1/subBuckets
// (25%) while keeping the bucket array small and fixed-size. Bucket 0
// holds non-positive values; octave o >= 2 has sub-bucket width
// 2^(o-2); octaves 0 and 1 are narrower than four values and use width
// 1. The layout is identical for the atomic Histogram and the private
// HistShard so shards merge by plain bucket-wise addition.
const (
	subBuckets = 4
	// numBuckets covers bucket 0 plus octaves 0..62 (all positive int64).
	numBuckets = 1 + 63*subBuckets
)

// bucketFor maps a value to its bucket index.
func bucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	o := bits.Len64(uint64(v)) - 1
	width := int64(1)
	if o >= 2 {
		width = 1 << (o - 2)
	}
	sub := (v - 1<<o) / width
	return 1 + o*subBuckets + int(sub)
}

// BucketBounds returns the inclusive value range of bucket i.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 0
	}
	i--
	o := i / subBuckets
	sub := i % subBuckets
	base := int64(1) << o
	width := int64(1)
	if o >= 2 {
		width = base >> 2
	}
	lo = base + int64(sub)*width
	return lo, lo + width - 1
}

// Histogram is the shared, concurrently writable form. Observe is a few
// atomic adds; there is no lock anywhere. For per-row recording inside a
// worker, prefer a private HistShard merged at a barrier.
type Histogram struct {
	name    string
	help    string
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Merge folds another histogram's counts into h, bucket-wise. Both sides
// may be observed concurrently; each bucket moves atomically.
//
// dbvet:commutative — bucket-wise addition; order is irrelevant.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Absorb folds a shard into the histogram with one atomic add per
// non-empty bucket. The shard may be reused afterwards (it is not
// cleared).
func (h *Histogram) Absorb(s *HistShard) {
	for i, n := range s.Buckets {
		if n != 0 {
			h.buckets[i].Add(n)
		}
	}
	if s.Count != 0 {
		h.count.Add(s.Count)
		h.sum.Add(s.Sum)
	}
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Snapshot copies the current state. Concurrent observations may land in
// either side of the copy; each bucket is read atomically.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Index: i, Count: n})
		}
	}
	return s
}

// HistShard is a worker-private accumulator with no atomics: the
// per-item cost is two plain adds. Shards merge commutatively and
// associatively, so the combined result is the same for any merge order
// or grouping — the property that lets parallel workers be scheduled
// freely, mirroring the monitor shards in internal/core.
type HistShard struct {
	Count   int64
	Sum     int64
	Buckets [numBuckets]int64
}

// Observe records one value.
func (s *HistShard) Observe(v int64) {
	s.Buckets[bucketFor(v)]++
	s.Count++
	s.Sum += v
}

// Merge folds o into s. o is unchanged.
//
// dbvet:commutative — bucket-wise addition; any merge order or grouping
// yields the same totals (see TestShardMergeCommutativeAssociative).
func (s *HistShard) Merge(o *HistShard) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Index int
	Count int64
}

// HistSnapshot is a frozen histogram: total count, total sum, and the
// non-empty buckets in index order.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []Bucket
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1),
// reconstructed from bucket upper bounds; the result is exact to within
// the bucket's 25% relative width. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen > rank {
			_, hi := BucketBounds(b.Index)
			return hi
		}
	}
	_, hi := BucketBounds(s.Buckets[len(s.Buckets)-1].Index)
	return hi
}

// Mean returns the exact arithmetic mean (sums are tracked exactly), or
// 0 for an empty histogram.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
