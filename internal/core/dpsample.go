package core

import (
	"fmt"
	"math"

	"pagefeedback/internal/storage"
)

// DPSample estimates the distinct page count during a scan plan by Bernoulli
// page sampling (Fig 4): each page is chosen with probability f, the
// monitored predicate is evaluated — with short-circuiting turned off if
// necessary — only for rows on sampled pages, and the final count is scaled
// by 1/f.
//
// Properties (§III-B): the estimator is unbiased, obeys Chernoff tail
// bounds, needs no memory beyond one counter, and bounds the cost of
// disabling short-circuiting to the sampled fraction of rows.
//
// Page membership is a pure function of (seed, pid) — a salted hash compared
// against a fixed threshold — rather than a sequential pseudo-random stream.
// That keeps the draw Bernoulli(f) per page while making the sample set
// independent of the order pages are visited in, so a scan split into
// page-disjoint partitions samples exactly the pages a serial scan would and
// partition results can be merged without changing the estimate.
//
// Usage per scanned row:
//
//	if s.StartRow(pid) {        // true iff pid is in the sample
//	    s.Observe(fullPredicateResult)
//	}
//	...
//	est := s.Estimate()
type DPSample struct {
	f        float64
	seedMix  uint64 // hashed seed salting the per-page membership draw
	thresh   uint64 // f scaled to [0, 2^53]; hash>>11 < thresh ⇔ sampled
	count    int64
	sampled  int64 // pages sampled
	pages    int64 // pages seen
	curPID   storage.PageID
	curIn    bool
	curHit   bool
	havePage bool
	finished bool
}

// NewDPSample creates a sampler with sampling fraction f in (0, 1] and a
// deterministic seed (experiments are reproducible).
func NewDPSample(f float64, seed int64) *DPSample {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("core: sampling fraction %v out of (0,1]", f))
	}
	return &DPSample{
		f:       f,
		seedMix: hash64(uint64(seed)),
		thresh:  uint64(f * (1 << 53)),
	}
}

// Fraction returns the sampling fraction.
func (s *DPSample) Fraction() float64 { return s.f }

// Fork returns a fresh sampler with no observations that draws the
// identical page sample (same fraction and seed). Partition-parallel scans
// give each worker a fork; because membership is order-independent, the
// forks' merged counts equal a serial run's.
func (s *DPSample) Fork() *DPSample {
	return &DPSample{f: s.f, seedMix: s.seedMix, thresh: s.thresh}
}

// inSample reports whether pid belongs to the Bernoulli sample. The decision
// depends only on the seed and the pid, never on visit order.
func (s *DPSample) inSample(pid storage.PageID) bool {
	if s.f >= 1 {
		return true
	}
	return hash64(s.seedMix+uint64(pid)*0x9E3779B97F4A7C15)>>11 < s.thresh
}

// StartRow declares the page of the next scanned row and reports whether
// that page is part of the sample — i.e., whether the caller must evaluate
// the monitored predicate (turning off short-circuiting if needed) for this
// row. The page membership decision is made once, when the scan first
// enters the page (step 3 of Fig 4).
func (s *DPSample) StartRow(pid storage.PageID) bool {
	if s.finished {
		panic("core: StartRow after Finish")
	}
	if !s.havePage || pid != s.curPID {
		s.closePage()
		s.curPID = pid
		s.havePage = true
		s.pages++
		s.curIn = s.inSample(pid)
		s.curHit = false
		if s.curIn {
			s.sampled++
		}
	}
	return s.curIn
}

// Observe records the predicate result for a row on a sampled page. A page
// counts once no matter how many of its rows qualify (step 5 of Fig 4).
func (s *DPSample) Observe(satisfies bool) {
	if satisfies {
		s.curHit = true
	}
}

// ObserveAtPage records a qualifying row on page pid after the fact, but
// only while pid is still the sampler's current page. It supports the
// partial bit-vector filter of §IV: a Merge Join discovers that the inner
// scan's most recent row matches an outer value that entered the filter
// after the row streamed by. Because the merge join's inner lookahead is
// always the last row pulled from the scan, its page is always still
// current; a stale pid returns false and changes nothing.
func (s *DPSample) ObserveAtPage(pid storage.PageID) bool {
	if s.finished || !s.havePage || s.curPID != pid {
		return false
	}
	if s.curIn {
		s.curHit = true
	}
	return true
}

func (s *DPSample) closePage() {
	if s.havePage && s.curIn && s.curHit {
		s.count++
	}
}

// Finish closes the last page.
func (s *DPSample) Finish() {
	if !s.finished {
		s.closePage()
		s.finished = true
	}
}

// Merge folds a sibling sampler that observed a page-disjoint partition of
// the same scan into s, finishing both. Because page membership is a pure
// function of (seed, pid), the union of the partitions' samples is exactly
// the sample a serial scan draws, so the merged counts — and therefore the
// estimate — are identical to serial execution.
//
// dbvet:commutative — the merge sums partition totals; order is irrelevant.
func (s *DPSample) Merge(o *DPSample) {
	if s.f != o.f || s.seedMix != o.seedMix {
		panic("core: merging DPSamples with different fraction or seed")
	}
	s.Finish()
	o.Finish()
	s.count += o.count
	s.sampled += o.sampled
	s.pages += o.pages
}

// Estimate returns PageCount / f (step 7 of Fig 4). It finishes the sampler.
func (s *DPSample) Estimate() float64 {
	s.Finish()
	return float64(s.count) / s.f
}

// EstimateInt returns the estimate rounded to a page count.
func (s *DPSample) EstimateInt() int64 { return int64(math.Round(s.Estimate())) }

// SampledPages returns how many pages were in the sample.
func (s *DPSample) SampledPages() int64 { return s.sampled }

// PagesSeen returns how many pages the scan visited.
func (s *DPSample) PagesSeen() int64 { return s.pages }
