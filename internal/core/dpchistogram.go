package core

import (
	"math"
	"sort"
	"sync"

	"pagefeedback/internal/tuple"
)

// DPCObservation is one fed-back fact about a column: over the value range
// [Lo, Hi], Rows rows qualified and they lived on DPC distinct pages.
type DPCObservation struct {
	Lo, Hi int64 // inclusive value bounds (ints and dates share int64)
	Rows   int64
	DPC    int64
}

// density is the observation's pages-per-row — the column's local
// clustering signal (1/rowsPerPage when perfectly clustered, ~1 when every
// row sits on its own page).
func (o DPCObservation) density() float64 {
	if o.Rows == 0 {
		return 0
	}
	return float64(o.DPC) / float64(o.Rows)
}

// DPCHistogram is a self-tuning histogram of distinct page counts for one
// (table, column), built purely from execution feedback in the manner of
// self-tuning cardinality histograms ([1], [16]) — the §VI direction the
// paper leaves as future work.
//
// Page counts are not additive across value ranges (two ranges can share
// pages, §VI), so the histogram does not sum buckets. Instead it learns the
// column's local clustering density (distinct pages per qualifying row) and
// estimates a new range's DPC as estimatedRows × interpolated density,
// clamped to the feasible [rows/rowsPerPage, min(rows, tablePages)] band.
type DPCHistogram struct {
	mu  sync.RWMutex
	obs []DPCObservation
}

// NewDPCHistogram creates an empty histogram.
func NewDPCHistogram() *DPCHistogram { return &DPCHistogram{} }

// maxObservations bounds memory; oldest observations are dropped first.
const maxObservations = 256

// Add records one observation.
func (h *DPCHistogram) Add(o DPCObservation) {
	if o.Rows <= 0 || o.DPC <= 0 || o.Hi < o.Lo {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.obs = append(h.obs, o)
	if len(h.obs) > maxObservations {
		h.obs = h.obs[len(h.obs)-maxObservations:]
	}
}

// Len returns the number of stored observations.
func (h *DPCHistogram) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.obs)
}

// EstimateRange estimates DPC for a predicate selecting estRows rows with
// column values in [lo, hi] (math.MinInt64/MaxInt64 for open ends). ok is
// false when no overlapping observation exists — the caller falls back to
// the analytical model.
func (h *DPCHistogram) EstimateRange(lo, hi int64, estRows, rowsPerPage float64, tablePages int64) (float64, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.obs) == 0 || estRows <= 0 {
		return 0, false
	}
	// Weight each overlapping observation by its overlap fraction with the
	// query range; nearest observation wins when nothing overlaps but the
	// column has history (clustering character is a column-level property).
	var wSum, dSum float64
	for _, o := range h.obs {
		ov := overlap(lo, hi, o.Lo, o.Hi)
		if ov <= 0 {
			continue
		}
		w := ov * float64(o.Rows)
		dSum += w * o.density()
		wSum += w
	}
	if wSum == 0 {
		// No overlap: use the density of the nearest observation.
		best := -1
		bestDist := int64(math.MaxInt64)
		for i, o := range h.obs {
			d := rangeDistance(lo, hi, o.Lo, o.Hi)
			if d < bestDist {
				bestDist = d
				best = i
			}
		}
		if best < 0 {
			return 0, false
		}
		dSum, wSum = h.obs[best].density(), 1
	}
	est := estRows * (dSum / wSum)
	// Clamp to the feasible band of Fig 10's bounds.
	lb := estRows / math.Max(rowsPerPage, 1)
	ub := math.Min(estRows, float64(tablePages))
	return math.Max(lb, math.Min(est, ub)), true
}

// overlap returns the fraction of [bLo,bHi] covered by [aLo,aHi]. All
// arithmetic is in float64: open-ended ranges carry MinInt64/MaxInt64
// sentinels whose int64 differences would overflow.
func overlap(aLo, aHi, bLo, bHi int64) float64 {
	lo, hi := maxI(aLo, bLo), minI(aHi, bHi)
	if hi < lo {
		return 0
	}
	width := float64(bHi) - float64(bLo) + 1
	return (float64(hi) - float64(lo) + 1) / width
}

// rangeDistance is the gap between two inclusive ranges (0 if they touch).
func rangeDistance(aLo, aHi, bLo, bHi int64) int64 {
	if aHi < bLo {
		return bLo - aHi
	}
	if bHi < aLo {
		return aLo - bHi
	}
	return 0
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Observations returns a snapshot sorted by Lo (diagnostics and tests).
func (h *DPCHistogram) Observations() []DPCObservation {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := append([]DPCObservation(nil), h.obs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}

// ObservationFromAtomRange derives the (Lo, Hi) value bounds of a
// single-column predicate over an integer/date domain, for recording a
// feedback observation. ok is false for predicates without extractable
// numeric bounds (strings, Ne).
func ObservationFromAtomRange(op string, v, v2 tuple.Value) (lo, hi int64, ok bool) {
	if v.Kind == tuple.KindString {
		return 0, 0, false
	}
	switch op {
	case "=":
		return v.Int, v.Int, true
	case "<":
		return math.MinInt64, v.Int - 1, true
	case "<=":
		return math.MinInt64, v.Int, true
	case ">":
		return v.Int + 1, math.MaxInt64, true
	case ">=":
		return v.Int, math.MaxInt64, true
	case "BETWEEN":
		return v.Int, v2.Int, true
	default:
		return 0, 0, false
	}
}
