package core

import (
	"sort"
	"strings"
	"sync"

	"pagefeedback/internal/expr"
)

// FeedbackEntry is one fed-back observation: for a (table, predicate
// expression), the observed cardinality and distinct page count, plus how
// the DPC was obtained.
type FeedbackEntry struct {
	Table       string
	Predicate   string // display form
	Cardinality int64
	DPC         int64
	Mechanism   string // "exact-scan", "linear-counting", "dpsample", "bitvector+dpsample", ...
	Exact       bool   // true when the mechanism yields the exact count
	// TableVersion is the table's modification counter at observation
	// time; a mismatch with the current counter marks the entry stale.
	TableVersion int64
}

// FeedbackCache stores (expression, cardinality, distinct page count)
// triples keyed by the canonical form of the predicate — the augmentation
// of LEO-style feedback infrastructure described in §II-C. It lets future
// optimizations of queries with the same predicate reuse the observed DPC
// instead of the analytical estimate. Safe for concurrent use.
type FeedbackCache struct {
	mu      sync.RWMutex
	entries map[string]FeedbackEntry
}

// NewFeedbackCache creates an empty cache.
func NewFeedbackCache() *FeedbackCache {
	return &FeedbackCache{entries: make(map[string]FeedbackEntry)}
}

// Key computes the cache key for a predicate on a table. The key is
// insensitive to conjunct order.
func Key(table string, pred expr.Conjunction) string {
	return pred.CanonicalKey(table)
}

// Store records an observation, overwriting a previous one for the same key.
// An exact observation is never overwritten by an estimated one for the
// same key (the exact scan count dominates a sampled estimate).
func (fc *FeedbackCache) Store(table string, pred expr.Conjunction, e FeedbackEntry) {
	k := Key(table, pred)
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if old, ok := fc.entries[k]; ok && old.Exact && !e.Exact {
		return
	}
	e.Table = table
	e.Predicate = pred.String()
	fc.entries[k] = e
}

// Lookup returns the stored observation for (table, pred), if any.
func (fc *FeedbackCache) Lookup(table string, pred expr.Conjunction) (FeedbackEntry, bool) {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	e, ok := fc.entries[Key(table, pred)]
	return e, ok
}

// DropTable removes every observation for the table (case-insensitive),
// returning how many were dropped — the invalidation hook for when the
// table's data changes and its page counts go stale.
func (fc *FeedbackCache) DropTable(table string) int {
	prefix := strings.ToLower(table) + "|"
	fc.mu.Lock()
	defer fc.mu.Unlock()
	n := 0
	for k := range fc.entries {
		if strings.HasPrefix(k, prefix) {
			delete(fc.entries, k)
			n++
		}
	}
	return n
}

// Len returns the number of cached observations.
func (fc *FeedbackCache) Len() int {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	return len(fc.entries)
}

// Entries returns all observations sorted by table then predicate text.
func (fc *FeedbackCache) Entries() []FeedbackEntry {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	out := make([]FeedbackEntry, 0, len(fc.entries))
	for _, e := range fc.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Predicate < out[j].Predicate
	})
	return out
}
