package core

import (
	"strings"
	"sync"
	"sync/atomic"
)

// EpochTracker is the invalidation clock of the plan cache, living next to
// FeedbackCache because both record the same events: every mutation of the
// optimizer's feedback state (ApplyFeedback, ImportFeedback, Analyze,
// InvalidateFeedback, DDL) bumps the affected table's epoch — or the global
// epoch for whole-optimizer mutations like ClearInjections. A cached plan
// carries the epochs it was built under; any mismatch at lookup time means
// the statistics the plan was costed with are gone, so the entry is
// re-optimized rather than served.
//
// Counters are atomic.Int64 wrappers (safe by construction for dbvet's
// atomicfield invariant); the map itself is guarded by an RWMutex that is
// only write-locked the first time a table is seen.
type EpochTracker struct {
	global atomic.Int64
	mu     sync.RWMutex
	tables map[string]*atomic.Int64
}

// NewEpochTracker returns an empty tracker: every table starts at epoch 0.
func NewEpochTracker() *EpochTracker {
	return &EpochTracker{tables: make(map[string]*atomic.Int64)}
}

// Bump advances the named table's epoch. Table names are case-insensitive.
func (t *EpochTracker) Bump(table string) {
	key := strings.ToLower(table)
	t.mu.RLock()
	c := t.tables[key]
	t.mu.RUnlock()
	if c == nil {
		t.mu.Lock()
		c = t.tables[key]
		if c == nil {
			c = new(atomic.Int64)
			t.tables[key] = c
		}
		t.mu.Unlock()
	}
	c.Add(1)
}

// BumpAll advances the global epoch, invalidating every cached plan at once.
func (t *EpochTracker) BumpAll() {
	t.global.Add(1)
}

// Table returns the named table's current epoch (0 if never bumped).
func (t *EpochTracker) Table(table string) int64 {
	t.mu.RLock()
	c := t.tables[strings.ToLower(table)]
	t.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Global returns the current global epoch.
func (t *EpochTracker) Global() int64 {
	return t.global.Load()
}
