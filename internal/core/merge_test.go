package core

import (
	"math"
	"math/rand"
	"testing"

	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// scanRow is one row event of a synthetic scan: the page it lives on and
// whether it satisfies the monitored predicate.
type scanRow struct {
	pid storage.PageID
	sat bool
}

// genScan builds a page-ordered stream of rows over npages pages with
// 1..maxRows rows per page and random predicate outcomes.
func genScan(rng *rand.Rand, npages, maxRows int) []scanRow {
	var rows []scanRow
	for p := 0; p < npages; p++ {
		n := 1 + rng.Intn(maxRows)
		for r := 0; r < n; r++ {
			rows = append(rows, scanRow{pid: storage.PageID(p), sat: rng.Intn(3) == 0})
		}
	}
	return rows
}

// splitByPage cuts the stream into page-disjoint contiguous partitions at
// random page boundaries, the way the parallel scan driver partitions a
// file.
func splitByPage(rng *rand.Rand, rows []scanRow, nparts int) [][]scanRow {
	var parts [][]scanRow
	start := 0
	for len(parts) < nparts-1 && start < len(rows) {
		end := start + 1 + rng.Intn(len(rows)-start)
		// Extend to a page boundary so no page spans partitions.
		for end < len(rows) && rows[end].pid == rows[end-1].pid {
			end++
		}
		parts = append(parts, rows[start:end])
		start = end
	}
	if start < len(rows) {
		parts = append(parts, rows[start:])
	}
	return parts
}

// mergeShuffled merges the shards into the first one in random order,
// exercising the dbvet:commutative claim.
func mergeShuffled[T any](rng *rand.Rand, shards []T, merge func(dst, src T)) T {
	rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
	dst := shards[0]
	for _, s := range shards[1:] {
		merge(dst, s)
	}
	return dst
}

func TestGroupedCounterMergeEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows := genScan(rng, 1+rng.Intn(200), 6)
		serial := NewGroupedCounter()
		for _, r := range rows {
			serial.Observe(r.pid, r.sat)
		}
		parts := splitByPage(rng, rows, 2+rng.Intn(6))
		shards := make([]*GroupedCounter, len(parts))
		for i, part := range parts {
			shards[i] = NewGroupedCounter()
			for _, r := range part {
				shards[i].Observe(r.pid, r.sat)
			}
		}
		merged := mergeShuffled(rng, shards, func(d, s *GroupedCounter) { d.Merge(s) })
		if merged.Count() != serial.Count() || merged.PagesSeen() != serial.PagesSeen() {
			t.Fatalf("trial %d: merged count=%d pages=%d, serial count=%d pages=%d",
				trial, merged.Count(), merged.PagesSeen(), serial.Count(), serial.PagesSeen())
		}
	}
}

func TestDPSampleMergeEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		rows := genScan(rng, 1+rng.Intn(300), 5)
		seed := rng.Int63()
		f := []float64{0.1, 0.25, 0.5, 1.0}[rng.Intn(4)]
		serial := NewDPSample(f, seed)
		for _, r := range rows {
			if serial.StartRow(r.pid) {
				serial.Observe(r.sat)
			}
		}
		parts := splitByPage(rng, rows, 2+rng.Intn(6))
		shards := make([]*DPSample, len(parts))
		for i, part := range parts {
			shards[i] = NewDPSample(f, seed)
			for _, r := range part {
				if shards[i].StartRow(r.pid) {
					shards[i].Observe(r.sat)
				}
			}
		}
		merged := mergeShuffled(rng, shards, func(d, s *DPSample) { d.Merge(s) })
		if merged.Estimate() != serial.Estimate() ||
			merged.SampledPages() != serial.SampledPages() ||
			merged.PagesSeen() != serial.PagesSeen() {
			t.Fatalf("trial %d: merged est=%v sampled=%d seen=%d, serial est=%v sampled=%d seen=%d",
				trial, merged.Estimate(), merged.SampledPages(), merged.PagesSeen(),
				serial.Estimate(), serial.SampledPages(), serial.PagesSeen())
		}
	}
}

func TestLinearCounterMergeEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		rows := genScan(rng, 1+rng.Intn(400), 4)
		serial := NewLinearCounter(2048)
		for _, r := range rows {
			if r.sat {
				serial.AddPID(r.pid)
			}
		}
		// Linear counting is a pure set sketch, so even an interleaved
		// (non page-disjoint) split must merge exactly.
		nparts := 2 + rng.Intn(6)
		shards := make([]*LinearCounter, nparts)
		for i := range shards {
			shards[i] = NewLinearCounter(2048)
		}
		for _, r := range rows {
			if r.sat {
				shards[rng.Intn(nparts)].AddPID(r.pid)
			}
		}
		merged := mergeShuffled(rng, shards, func(d, s *LinearCounter) { d.Merge(s) })
		if merged.Estimate() != serial.Estimate() || merged.Observed() != serial.Observed() {
			t.Fatalf("trial %d: merged est=%v obs=%d, serial est=%v obs=%d",
				trial, merged.Estimate(), merged.Observed(), serial.Estimate(), serial.Observed())
		}
	}
}

func TestSampleDistinctMergeEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		rows := genScan(rng, 1+rng.Intn(300), 5)
		seed := rng.Int63()
		capacity := 1 + rng.Intn(64)
		serial := NewSampleDistinct(capacity, seed)
		for _, r := range rows {
			serial.AddPID(r.pid)
		}
		parts := splitByPage(rng, rows, 2+rng.Intn(6))
		shards := make([]*SampleDistinct, len(parts))
		for i, part := range parts {
			shards[i] = NewSampleDistinct(capacity, seed)
			for _, r := range part {
				shards[i].AddPID(r.pid)
			}
		}
		merged := mergeShuffled(rng, shards, func(d, s *SampleDistinct) { d.Merge(s) })
		if merged.Observed() != serial.Observed() || merged.SampleSize() != serial.SampleSize() {
			t.Fatalf("trial %d: merged obs=%d n=%d, serial obs=%d n=%d",
				trial, merged.Observed(), merged.SampleSize(), serial.Observed(), serial.SampleSize())
		}
		if got, want := merged.EstimateGEE(), serial.EstimateGEE(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: merged GEE=%v, serial GEE=%v", trial, got, want)
		}
	}
}

func TestBitVectorFilterMergeEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		nvals := 1 + rng.Intn(500)
		vals := make([]tuple.Value, nvals)
		for i := range vals {
			vals[i] = tuple.Int64(rng.Int63n(4096))
		}
		serial := NewBitVectorFilter(1024)
		for _, v := range vals {
			serial.Add(v)
		}
		nparts := 2 + rng.Intn(6)
		shards := make([]*BitVectorFilter, nparts)
		for i := range shards {
			shards[i] = NewBitVectorFilter(1024)
		}
		for _, v := range vals {
			shards[rng.Intn(nparts)].Add(v)
		}
		merged := mergeShuffled(rng, shards, func(d, s *BitVectorFilter) { d.Merge(s) })
		if merged.SetBits() != serial.SetBits() || merged.Added() != serial.Added() {
			t.Fatalf("trial %d: merged bits=%d added=%d, serial bits=%d added=%d",
				trial, merged.SetBits(), merged.Added(), serial.SetBits(), serial.Added())
		}
		for probe := int64(0); probe < 4096; probe++ {
			v := tuple.Int64(probe)
			if merged.MayContain(v) != serial.MayContain(v) {
				t.Fatalf("trial %d: MayContain(%d) differs", trial, probe)
			}
		}
	}
}

func TestMergeIncompatiblePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"dpsample-fraction", func() { NewDPSample(0.1, 1).Merge(NewDPSample(0.2, 1)) }},
		{"dpsample-seed", func() { NewDPSample(0.1, 1).Merge(NewDPSample(0.1, 2)) }},
		{"linear-width", func() { NewLinearCounter(1024).Merge(NewLinearCounter(2048)) }},
		{"sample-capacity", func() { NewSampleDistinct(4, 1).Merge(NewSampleDistinct(8, 1)) }},
		{"bitvector-width", func() { NewBitVectorFilter(64).Merge(NewBitVectorFilter(128)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Merge did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
