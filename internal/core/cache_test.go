package core

import (
	"testing"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

func caPred() expr.Conjunction {
	return expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA")))
}

func TestCacheStoreLookup(t *testing.T) {
	fc := NewFeedbackCache()
	fc.Store("sales", caPred(), FeedbackEntry{Cardinality: 50000, DPC: 1000, Mechanism: "exact-scan", Exact: true})
	e, ok := fc.Lookup("Sales", caPred()) // table name case-insensitive
	if !ok || e.DPC != 1000 || e.Cardinality != 50000 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	if fc.Len() != 1 {
		t.Errorf("Len = %d", fc.Len())
	}
	if _, ok := fc.Lookup("other", caPred()); ok {
		t.Error("lookup on wrong table hit")
	}
}

func TestCacheKeyOrderInsensitive(t *testing.T) {
	a1 := expr.NewAtom("state", expr.Eq, tuple.Str("CA"))
	a2 := expr.NewAtom("shipdate", expr.Eq, tuple.Date(13665))
	fc := NewFeedbackCache()
	fc.Store("t", expr.And(a1, a2), FeedbackEntry{DPC: 7})
	if e, ok := fc.Lookup("t", expr.And(a2, a1)); !ok || e.DPC != 7 {
		t.Error("reordered predicate missed the cache")
	}
}

func TestCacheExactNotOverwrittenByEstimate(t *testing.T) {
	fc := NewFeedbackCache()
	fc.Store("t", caPred(), FeedbackEntry{DPC: 100, Exact: true})
	fc.Store("t", caPred(), FeedbackEntry{DPC: 90, Exact: false})
	e, _ := fc.Lookup("t", caPred())
	if e.DPC != 100 {
		t.Errorf("exact entry overwritten: DPC = %d", e.DPC)
	}
	// But an exact entry replaces an estimate.
	fc.Store("t", caPred(), FeedbackEntry{DPC: 95, Exact: true})
	e, _ = fc.Lookup("t", caPred())
	if e.DPC != 95 {
		t.Errorf("exact update ignored: DPC = %d", e.DPC)
	}
}

func TestCacheEntriesSorted(t *testing.T) {
	fc := NewFeedbackCache()
	fc.Store("b", caPred(), FeedbackEntry{DPC: 1})
	fc.Store("a", caPred(), FeedbackEntry{DPC: 2})
	es := fc.Entries()
	if len(es) != 2 || es[0].Table != "a" || es[1].Table != "b" {
		t.Errorf("Entries = %+v", es)
	}
	if es[0].Predicate == "" {
		t.Error("Predicate text not recorded")
	}
}
