package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJoinCurveEmpty(t *testing.T) {
	c := NewJoinDPCCurve()
	if _, ok := c.Estimate(100, 1000); ok {
		t.Error("empty curve produced an estimate")
	}
	if c.Len() != 0 {
		t.Error("Len != 0")
	}
}

func TestJoinCurveIgnoresInvalid(t *testing.T) {
	c := NewJoinDPCCurve()
	c.Add(JoinDPCPoint{Rows: 0, DPC: 5})
	c.Add(JoinDPCPoint{Rows: 5, DPC: 0})
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestJoinCurveInterpolation(t *testing.T) {
	c := NewJoinDPCCurve()
	c.Add(JoinDPCPoint{Rows: 100, DPC: 2})
	c.Add(JoinDPCPoint{Rows: 1000, DPC: 14})
	// Midpoint interpolates linearly.
	est, ok := c.Estimate(550, 10000)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(est-8) > 1 {
		t.Errorf("midpoint estimate = %.1f, want ~8", est)
	}
	// Below the first point: density scaling.
	est, _ = c.Estimate(50, 10000)
	if math.Abs(est-1) > 0.5 {
		t.Errorf("below-range estimate = %.1f, want ~1", est)
	}
	// Above the last point: density extrapolation, nondecreasing.
	est, _ = c.Estimate(2000, 10000)
	if est < 14 || est > 40 {
		t.Errorf("above-range estimate = %.1f", est)
	}
}

func TestJoinCurveClampsToTablePages(t *testing.T) {
	c := NewJoinDPCCurve()
	c.Add(JoinDPCPoint{Rows: 10, DPC: 10}) // density 1
	est, _ := c.Estimate(1e9, 500)
	if est != 500 {
		t.Errorf("estimate = %.0f, want clamped to 500", est)
	}
	est, _ = c.Estimate(0.5, 500)
	if est < 1 {
		t.Errorf("estimate %.2f below 1 page", est)
	}
}

func TestJoinCurveDuplicateRowsKeepsLatest(t *testing.T) {
	c := NewJoinDPCCurve()
	c.Add(JoinDPCPoint{Rows: 100, DPC: 50})
	c.Add(JoinDPCPoint{Rows: 100, DPC: 5})
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	est, _ := c.Estimate(100, 1000)
	if est != 5 {
		t.Errorf("estimate = %.0f, want 5 (latest)", est)
	}
}

func TestJoinCurveThinning(t *testing.T) {
	c := NewJoinDPCCurve()
	for i := int64(1); i <= maxCurvePoints+40; i++ {
		c.Add(JoinDPCPoint{Rows: i * 10, DPC: i})
	}
	if c.Len() > maxCurvePoints {
		t.Errorf("Len = %d after thinning", c.Len())
	}
	// Estimates still sensible after thinning.
	est, _ := c.Estimate(500, 100000)
	if math.Abs(est-50) > 5 {
		t.Errorf("post-thinning estimate = %.0f, want ~50", est)
	}
}

func TestJoinCurveMonotoneQuick(t *testing.T) {
	// Property: for any set of monotone observations, estimates are
	// nondecreasing in rows.
	f := func(seeds []uint16) bool {
		c := NewJoinDPCCurve()
		rows, dpc := int64(0), int64(0)
		for _, s := range seeds {
			rows += int64(s%100) + 1
			dpc += int64(s % 7)
			if dpc == 0 {
				dpc = 1
			}
			c.Add(JoinDPCPoint{Rows: rows, DPC: dpc})
		}
		if c.Len() == 0 {
			return true
		}
		prev := 0.0
		for x := 1.0; x < float64(rows)*1.5; x += float64(rows) / 20 {
			est, ok := c.Estimate(x, 1<<40)
			if !ok || est < prev-1e-9 {
				return false
			}
			prev = est
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
