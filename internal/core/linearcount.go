package core

import (
	"fmt"
	"math"
	"math/bits"

	"pagefeedback/internal/storage"
)

// LinearCounter estimates COUNT(DISTINCT PID) over a stream of page ids with
// repeats, using linear (probabilistic) counting: a bitmap hashed on the PID
// value, with the estimate derived from the fraction of bits left unset
// (Fig 3 of the paper; Whang, Vander-Zanden, Taylor, TODS 1990).
//
// It runs inside the Fetch operator of index plans, where rows — and hence
// pages — arrive in index-key order rather than page order, so exact
// counting would require full duplicate elimination. The bitmap is tiny
// ("much less than one bit per page" suffices), and the per-row work is one
// hash and one bit set.
type LinearCounter struct {
	bits     []uint64
	numBits  uint64
	observed int64 // rows observed (diagnostics)
}

// DefaultLinearCounterBits sizes a counter for an expected page population.
// Linear counting stays accurate while the load factor n/m is modest; one
// bit per expected page with a floor of 1024 keeps the standard error well
// under 1% at the scales of the experiments.
func DefaultLinearCounterBits(expectedPages int64) uint64 {
	if expectedPages < 1024 {
		return 1024
	}
	return uint64(expectedPages)
}

// NewLinearCounter creates a counter with the given bitmap size in bits.
func NewLinearCounter(numBits uint64) *LinearCounter {
	if numBits == 0 {
		panic("core: linear counter with zero bits")
	}
	return &LinearCounter{
		bits:    make([]uint64, (numBits+63)/64),
		numBits: numBits,
	}
}

// AddPID records that a row on page pid satisfied the predicate.
func (lc *LinearCounter) AddPID(pid storage.PageID) {
	lc.observed++
	h := reduceRange(hash64(uint64(pid)), lc.numBits)
	lc.bits[h/64] |= 1 << (h % 64)
}

// Merge folds a sibling counter over another part of the same stream into
// lc by bitmap union. Linear counting is a pure set sketch — a bit is set
// iff some row on a page hashing there was observed — so the union of two
// bitmaps is exactly the bitmap of the combined stream, whether or not the
// parts overlapped.
//
// dbvet:commutative — bitwise OR and addition; order is irrelevant.
func (lc *LinearCounter) Merge(o *LinearCounter) {
	if lc.numBits != o.numBits {
		panic("core: merging LinearCounters with different widths")
	}
	for i, w := range o.bits {
		lc.bits[i] |= w
	}
	lc.observed += o.observed
}

// Observed returns the number of AddPID calls (rows fetched).
func (lc *LinearCounter) Observed() int64 { return lc.observed }

// Bits returns the bitmap size.
func (lc *LinearCounter) Bits() uint64 { return lc.numBits }

// Estimate returns the distinct page count estimate
// m × ln(m / numzero) (step 6 of Fig 3). When every bit is set the load
// factor was far too high for the configured bitmap; the estimate saturates
// at m·ln(m), the counter's representable maximum.
func (lc *LinearCounter) Estimate() float64 {
	var ones uint64
	for _, w := range lc.bits {
		ones += uint64(bits.OnesCount64(w))
	}
	numzero := lc.numBits - ones
	m := float64(lc.numBits)
	if numzero == 0 {
		return m * math.Log(m)
	}
	return -m * math.Log(float64(numzero)/m)
}

// EstimateInt returns the estimate rounded to the nearest page count.
func (lc *LinearCounter) EstimateInt() int64 {
	return int64(math.Round(lc.Estimate()))
}

// String summarizes the counter state.
func (lc *LinearCounter) String() string {
	return fmt.Sprintf("LinearCounter{bits=%d observed=%d est=%.1f}", lc.numBits, lc.observed, lc.Estimate())
}
