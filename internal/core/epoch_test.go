package core

import (
	"sync"
	"testing"
)

func TestEpochTrackerBasics(t *testing.T) {
	et := NewEpochTracker()
	if et.Table("t") != 0 || et.Global() != 0 {
		t.Fatal("fresh tracker not at epoch 0")
	}
	et.Bump("t")
	et.Bump("T") // case-insensitive: same counter
	if got := et.Table("t"); got != 2 {
		t.Fatalf("Table(t) = %d, want 2", got)
	}
	if got := et.Table("other"); got != 0 {
		t.Fatalf("Table(other) = %d, want 0", got)
	}
	et.BumpAll()
	if et.Global() != 1 {
		t.Fatalf("Global() = %d, want 1", et.Global())
	}
	if et.Table("t") != 2 {
		t.Fatal("BumpAll changed a per-table epoch")
	}
}

// TestEpochTrackerConcurrent hammers Bump/Table from many goroutines; run
// with -race. The final count must equal the number of bumps.
func TestEpochTrackerConcurrent(t *testing.T) {
	et := NewEpochTracker()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				et.Bump("tab")
				et.BumpAll()
				_ = et.Table("tab")
				_ = et.Global()
			}
		}()
	}
	wg.Wait()
	if got := et.Table("tab"); got != workers*perWorker {
		t.Fatalf("Table(tab) = %d, want %d", got, workers*perWorker)
	}
	if got := et.Global(); got != workers*perWorker {
		t.Fatalf("Global() = %d, want %d", got, workers*perWorker)
	}
}
