package core

import (
	"math"
	"sort"
	"sync"
)

// JoinDPCCurve learns, for one (inner table, join column), how the distinct
// page count of the inner fetch grows with the number of matching inner
// rows — the join-expression page-count statistic §VI calls out as
// non-trivial future work. Each execution-feedback observation contributes
// one (matching rows, DPC) point; estimates interpolate between points and
// extrapolate with the nearest point's pages-per-row density.
//
// The curve is monotone in expectation (more matching rows can only touch
// at least as many pages), so estimates are clamped to preserve
// monotonicity against noisy observations.
type JoinDPCCurve struct {
	mu  sync.RWMutex
	pts []JoinDPCPoint // sorted by Rows ascending
}

// JoinDPCPoint is one observation.
type JoinDPCPoint struct {
	Rows int64 // matching inner rows (the n of the Mackert-Lohman formula)
	DPC  int64 // observed distinct inner pages
}

// NewJoinDPCCurve creates an empty curve.
func NewJoinDPCCurve() *JoinDPCCurve { return &JoinDPCCurve{} }

// maxCurvePoints bounds memory per curve.
const maxCurvePoints = 128

// Add records one observation. Points with duplicate Rows keep the latest.
func (c *JoinDPCCurve) Add(p JoinDPCPoint) {
	if p.Rows <= 0 || p.DPC <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].Rows >= p.Rows })
	if i < len(c.pts) && c.pts[i].Rows == p.Rows {
		c.pts[i] = p
		return
	}
	c.pts = append(c.pts, JoinDPCPoint{})
	copy(c.pts[i+1:], c.pts[i:])
	c.pts[i] = p
	if len(c.pts) > maxCurvePoints {
		// Thin by dropping every other interior point.
		kept := c.pts[:0]
		for j, q := range c.pts {
			if j == 0 || j == len(c.pts)-1 || j%2 == 0 {
				kept = append(kept, q)
			}
		}
		c.pts = kept
	}
}

// Len returns the number of stored points.
func (c *JoinDPCCurve) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.pts)
}

// Points returns a snapshot sorted by Rows.
func (c *JoinDPCCurve) Points() []JoinDPCPoint {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]JoinDPCPoint(nil), c.pts...)
}

// Estimate returns the interpolated DPC for the given matching-row count,
// clamped to [1, tablePages]. ok is false with no observations.
func (c *JoinDPCCurve) Estimate(rows float64, tablePages int64) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.pts) == 0 || rows <= 0 {
		return 0, false
	}
	est := c.estimateLocked(rows)
	return math.Max(1, math.Min(est, float64(tablePages))), true
}

func (c *JoinDPCCurve) estimateLocked(rows float64) float64 {
	first, last := c.pts[0], c.pts[len(c.pts)-1]
	switch {
	case rows <= float64(first.Rows):
		// Scale down with the first point's density.
		return float64(first.DPC) * rows / float64(first.Rows)
	case rows >= float64(last.Rows):
		// Extrapolate with the last point's density, never decreasing.
		d := float64(last.DPC) / float64(last.Rows)
		return float64(last.DPC) + d*(rows-float64(last.Rows))
	}
	i := sort.Search(len(c.pts), func(i int) bool { return float64(c.pts[i].Rows) >= rows })
	lo, hi := c.pts[i-1], c.pts[i]
	frac := (rows - float64(lo.Rows)) / float64(hi.Rows-lo.Rows)
	est := float64(lo.DPC) + frac*float64(hi.DPC-lo.DPC)
	// Monotonicity guard against noisy inversions.
	return math.Max(est, float64(minI(lo.DPC, hi.DPC)))
}
