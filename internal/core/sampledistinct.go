package core

import (
	"math"
	"math/rand"

	"pagefeedback/internal/storage"
)

// SampleDistinct is the alternative estimator the paper weighs against
// probabilistic counting in §III-A: draw a uniform row-level sample of the
// fetched rows with reservoir sampling (Vitter, [19]) and apply a
// distinct-value estimator to the PIDs in the sample (Charikar, Chaudhuri,
// Motwani, Narasayya, PODS 2000 [4]).
//
// The estimator implemented is GEE (Guaranteed-Error Estimator) from [4]:
//
//	D̂ = sqrt(N/n)·f₁ + Σ_{i≥2} fᵢ
//
// where n is the sample size, N the population size, and fᵢ the number of
// PID values occurring exactly i times in the sample. As [4] proves, no
// sampling-based estimator can guarantee low error on all inputs — the
// reason the paper prefers probabilistic counting; the comparison
// experiment reproduces that gap.
type SampleDistinct struct {
	capacity int
	rng      *rand.Rand
	seen     int64
	sample   []storage.PageID
}

// NewSampleDistinct creates an estimator with the given reservoir capacity.
func NewSampleDistinct(capacity int, seed int64) *SampleDistinct {
	if capacity <= 0 {
		panic("core: reservoir capacity must be positive")
	}
	return &SampleDistinct{
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
		sample:   make([]storage.PageID, 0, capacity),
	}
}

// AddPID feeds one fetched row's page id through the reservoir.
func (sd *SampleDistinct) AddPID(pid storage.PageID) {
	sd.seen++
	if len(sd.sample) < sd.capacity {
		sd.sample = append(sd.sample, pid)
		return
	}
	// Algorithm R: replace a random element with probability capacity/seen.
	j := sd.rng.Int63n(sd.seen)
	if j < int64(sd.capacity) {
		sd.sample[j] = pid
	}
}

// Observed returns the number of rows fed in.
func (sd *SampleDistinct) Observed() int64 { return sd.seen }

// SampleSize returns the current reservoir occupancy.
func (sd *SampleDistinct) SampleSize() int { return len(sd.sample) }

// EstimateGEE returns the GEE distinct-PID estimate.
func (sd *SampleDistinct) EstimateGEE() float64 {
	n := int64(len(sd.sample))
	if n == 0 {
		return 0
	}
	freq := make(map[storage.PageID]int, n)
	for _, pid := range sd.sample {
		freq[pid]++
	}
	var f1, rest float64
	for _, c := range freq {
		if c == 1 {
			f1++
		} else {
			rest++
		}
	}
	scale := math.Sqrt(float64(sd.seen) / float64(n))
	return scale*f1 + rest
}

// EstimateInt returns the GEE estimate rounded to a page count.
func (sd *SampleDistinct) EstimateInt() int64 {
	return int64(math.Round(sd.EstimateGEE()))
}
