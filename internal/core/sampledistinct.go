package core

import (
	"math"

	"pagefeedback/internal/storage"
)

// SampleDistinct is the alternative estimator the paper weighs against
// probabilistic counting in §III-A: draw a uniform row-level sample of the
// fetched rows and apply a distinct-value estimator to the PIDs in the
// sample (Charikar, Chaudhuri, Motwani, Narasayya, PODS 2000 [4]).
//
// The uniform sample is a bottom-k sketch rather than Vitter's reservoir:
// every fed row gets a priority — a salted hash of its page id and its
// per-page occurrence number — and the sketch keeps the k rows with the
// smallest priorities. Since priorities are i.i.d. uniform, the k smallest
// form a uniform k-subset of the stream, exactly what reservoir sampling
// produces; unlike a reservoir, the result is independent of feed order and
// two sketches over disjoint partitions merge into the sketch of the union.
//
// The estimator implemented is GEE (Guaranteed-Error Estimator) from [4]:
//
//	D̂ = sqrt(N/n)·f₁ + Σ_{i≥2} fᵢ
//
// where n is the sample size, N the population size, and fᵢ the number of
// PID values occurring exactly i times in the sample. As [4] proves, no
// sampling-based estimator can guarantee low error on all inputs — the
// reason the paper prefers probabilistic counting; the comparison
// experiment reproduces that gap.
type SampleDistinct struct {
	capacity int
	seedMix  uint64
	seen     int64
	occ      map[storage.PageID]uint64 // per-PID occurrence numbers fed so far
	entries  []prioEntry               // bottom-k by priority
	maxIdx   int                       // index of the largest priority in entries
}

type prioEntry struct {
	prio uint64
	pid  storage.PageID
}

// NewSampleDistinct creates an estimator with the given sample capacity.
func NewSampleDistinct(capacity int, seed int64) *SampleDistinct {
	if capacity <= 0 {
		panic("core: sample capacity must be positive")
	}
	return &SampleDistinct{
		capacity: capacity,
		seedMix:  hash64(uint64(seed)),
		occ:      make(map[storage.PageID]uint64),
		entries:  make([]prioEntry, 0, capacity),
	}
}

// priority derives the row's sampling priority from its page id and the
// occurrence number of that page in the stream so far. Two partitions of a
// page-disjoint split assign every row the same priority a serial feed
// would, which is what makes Merge exact.
func (sd *SampleDistinct) priority(pid storage.PageID, occ uint64) uint64 {
	return hash64(hash64(sd.seedMix+uint64(pid)*0x9E3779B97F4A7C15) + occ)
}

// AddPID feeds one fetched row's page id through the sketch.
func (sd *SampleDistinct) AddPID(pid storage.PageID) {
	sd.seen++
	n := sd.occ[pid]
	sd.occ[pid] = n + 1
	sd.insert(prioEntry{prio: sd.priority(pid, n), pid: pid})
}

// insert offers one candidate to the bottom-k set.
func (sd *SampleDistinct) insert(e prioEntry) {
	if len(sd.entries) < sd.capacity {
		sd.entries = append(sd.entries, e)
		if e.prio > sd.entries[sd.maxIdx].prio {
			sd.maxIdx = len(sd.entries) - 1
		}
		return
	}
	if e.prio >= sd.entries[sd.maxIdx].prio {
		return
	}
	sd.entries[sd.maxIdx] = e
	for i, cur := range sd.entries {
		if cur.prio > sd.entries[sd.maxIdx].prio {
			sd.maxIdx = i
		}
	}
}

// Merge folds a sibling sketch that observed a page-disjoint partition of
// the same stream into sd. The bottom-k of the union of two bottom-k sets
// is the bottom-k of the combined stream, and priorities are pure functions
// of (seed, pid, occurrence), so the merged sketch is identical to the one
// a serial feed would build.
//
// dbvet:commutative — keeps the k smallest priorities of the union; order
// of merging is irrelevant.
func (sd *SampleDistinct) Merge(o *SampleDistinct) {
	if sd.capacity != o.capacity || sd.seedMix != o.seedMix {
		panic("core: merging SampleDistincts with different capacity or seed")
	}
	sd.seen += o.seen
	for pid, n := range o.occ {
		sd.occ[pid] += n
	}
	for _, e := range o.entries {
		sd.insert(e)
	}
}

// Observed returns the number of rows fed in.
func (sd *SampleDistinct) Observed() int64 { return sd.seen }

// SampleSize returns the current sample occupancy.
func (sd *SampleDistinct) SampleSize() int { return len(sd.entries) }

// EstimateGEE returns the GEE distinct-PID estimate.
func (sd *SampleDistinct) EstimateGEE() float64 {
	n := int64(len(sd.entries))
	if n == 0 {
		return 0
	}
	freq := make(map[storage.PageID]int, n)
	for _, e := range sd.entries {
		freq[e.pid]++
	}
	var f1, rest float64
	for _, c := range freq {
		if c == 1 {
			f1++
		} else {
			rest++
		}
	}
	scale := math.Sqrt(float64(sd.seen) / float64(n))
	return scale*f1 + rest
}

// EstimateInt returns the GEE estimate rounded to a page count.
func (sd *SampleDistinct) EstimateInt() int64 {
	return int64(math.Round(sd.EstimateGEE()))
}
