package core

import (
	"math"
	"testing"

	"pagefeedback/internal/tuple"
)

func TestDPCHistogramEmpty(t *testing.T) {
	h := NewDPCHistogram()
	if _, ok := h.EstimateRange(0, 100, 50, 80, 1000); ok {
		t.Error("empty histogram produced an estimate")
	}
	if h.Len() != 0 {
		t.Error("Len != 0")
	}
}

func TestDPCHistogramIgnoresInvalid(t *testing.T) {
	h := NewDPCHistogram()
	h.Add(DPCObservation{Lo: 10, Hi: 5, Rows: 10, DPC: 2}) // inverted
	h.Add(DPCObservation{Lo: 0, Hi: 10, Rows: 0, DPC: 2})  // no rows
	h.Add(DPCObservation{Lo: 0, Hi: 10, Rows: 10, DPC: 0}) // no pages
	if h.Len() != 0 {
		t.Errorf("Len = %d after invalid adds", h.Len())
	}
}

func TestDPCHistogramClusteredColumnGeneralizes(t *testing.T) {
	// A clustered column: 1000 rows over [0,1000) landed on 13 pages
	// (density ~1/77). A different range on the same column should get a
	// density-scaled estimate, not the Yao-style "one page per row".
	h := NewDPCHistogram()
	h.Add(DPCObservation{Lo: 0, Hi: 999, Rows: 1000, DPC: 13})
	est, ok := h.EstimateRange(1000, 2999, 2000, 77, 1300)
	if !ok {
		t.Fatal("no estimate")
	}
	if est < 20 || est > 40 { // ~2000/77 = 26
		t.Errorf("estimate = %.1f, want ~26", est)
	}
}

func TestDPCHistogramScatteredColumn(t *testing.T) {
	// A scattered column: 1000 rows -> 950 pages (density ~0.95).
	h := NewDPCHistogram()
	h.Add(DPCObservation{Lo: 0, Hi: 999, Rows: 1000, DPC: 950})
	est, ok := h.EstimateRange(500, 1499, 500, 77, 1300)
	if !ok {
		t.Fatal("no estimate")
	}
	if est < 400 || est > 500 {
		t.Errorf("estimate = %.1f, want ~475", est)
	}
}

func TestDPCHistogramOverlapWeighting(t *testing.T) {
	// Two regions with different densities: a query overlapping only the
	// dense region should use its density.
	h := NewDPCHistogram()
	h.Add(DPCObservation{Lo: 0, Hi: 999, Rows: 1000, DPC: 13})      // clustered region
	h.Add(DPCObservation{Lo: 5000, Hi: 5999, Rows: 1000, DPC: 900}) // scattered region
	estDense, _ := h.EstimateRange(100, 899, 800, 77, 1300)
	estSparse, _ := h.EstimateRange(5100, 5899, 800, 77, 1300)
	if estDense >= estSparse {
		t.Errorf("dense %.0f >= sparse %.0f", estDense, estSparse)
	}
	if estDense > 30 {
		t.Errorf("dense estimate %.0f too high", estDense)
	}
	if estSparse < 500 {
		t.Errorf("sparse estimate %.0f too low", estSparse)
	}
}

func TestDPCHistogramClampsToFeasibleBand(t *testing.T) {
	h := NewDPCHistogram()
	// Absurd density 1.0 learned; but 1000 rows at 80 rows/page cannot
	// touch fewer than 13 pages nor more than min(rows, pages).
	h.Add(DPCObservation{Lo: 0, Hi: 99, Rows: 100, DPC: 100})
	est, _ := h.EstimateRange(0, 99, 1000, 80, 500)
	if est > 500 {
		t.Errorf("estimate %.0f exceeds table pages", est)
	}
	// Density 0-ish can't go below LB.
	h2 := NewDPCHistogram()
	h2.Add(DPCObservation{Lo: 0, Hi: 99999, Rows: 100000, DPC: 100})
	est2, _ := h2.EstimateRange(0, 99999, 8000, 80, 5000)
	if est2 < 8000/80 {
		t.Errorf("estimate %.0f below the lower bound", est2)
	}
}

func TestDPCHistogramNearestNeighborFallback(t *testing.T) {
	h := NewDPCHistogram()
	h.Add(DPCObservation{Lo: 0, Hi: 99, Rows: 100, DPC: 2})
	// Query range far away but same column: clustering character carries.
	est, ok := h.EstimateRange(100000, 100099, 100, 77, 1300)
	if !ok {
		t.Fatal("no estimate despite history on the column")
	}
	if est > 10 {
		t.Errorf("estimate %.0f ignores the learned density", est)
	}
}

func TestDPCHistogramEvictsOldest(t *testing.T) {
	h := NewDPCHistogram()
	for i := 0; i < maxObservations+50; i++ {
		h.Add(DPCObservation{Lo: int64(i), Hi: int64(i), Rows: 1, DPC: 1})
	}
	if h.Len() != maxObservations {
		t.Errorf("Len = %d, want %d", h.Len(), maxObservations)
	}
	obs := h.Observations()
	if obs[0].Lo != 50 {
		t.Errorf("oldest surviving Lo = %d, want 50", obs[0].Lo)
	}
}

func TestObservationFromAtomRange(t *testing.T) {
	cases := []struct {
		op     string
		v, v2  tuple.Value
		lo, hi int64
		ok     bool
	}{
		{"=", tuple.Int64(5), tuple.Value{}, 5, 5, true},
		{"<", tuple.Int64(5), tuple.Value{}, math.MinInt64, 4, true},
		{"<=", tuple.Int64(5), tuple.Value{}, math.MinInt64, 5, true},
		{">", tuple.Int64(5), tuple.Value{}, 6, math.MaxInt64, true},
		{">=", tuple.Int64(5), tuple.Value{}, 5, math.MaxInt64, true},
		{"BETWEEN", tuple.Int64(3), tuple.Int64(9), 3, 9, true},
		{"<>", tuple.Int64(5), tuple.Value{}, 0, 0, false},
		{"=", tuple.Str("CA"), tuple.Value{}, 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, ok := ObservationFromAtomRange(c.op, c.v, c.v2)
		if ok != c.ok || (ok && (lo != c.lo || hi != c.hi)) {
			t.Errorf("%s %v: got (%d,%d,%v), want (%d,%d,%v)", c.op, c.v, lo, hi, ok, c.lo, c.hi, c.ok)
		}
	}
	// Dates behave as their numeric payload.
	lo, hi, ok := ObservationFromAtomRange("=", tuple.Date(13665), tuple.Value{})
	if !ok || lo != 13665 || hi != 13665 {
		t.Errorf("date range = %d,%d,%v", lo, hi, ok)
	}
}
