// Package core implements the paper's contribution: low-overhead mechanisms
// for obtaining distinct page counts (DPC) from query execution feedback.
//
// The estimators consume streams of (page id, satisfies-predicate) events
// produced by the executor's storage-engine-side operators:
//
//   - LinearCounter — probabilistic counting over PIDs arriving in arbitrary
//     order with repeats (Index Seek / Fetch, INL join inner side); §III-A,
//     Fig 3, after Whang et al.
//   - GroupedCounter — exact counting when the grouped page access property
//     holds (scan plans); §III-B.
//   - DPSample — Bernoulli page sampling that bounds the cost of turning
//     off predicate short-circuiting; §III-B, Fig 4.
//   - BitVectorFilter — a derived semi-join predicate built from the outer
//     join input, enabling DPC monitoring of the inner table during Hash
//     and Merge joins; §IV, Fig 5.
//   - SampleDistinct — the reservoir-sampling distinct-value estimator the
//     paper cites as the alternative to probabilistic counting (§III-A,
//     [4]); implemented for the comparison experiment.
//
// The FeedbackCache stores (expression, cardinality, DPC) triples keyed by
// canonical predicate text, the integration point with feedback-based
// optimization frameworks sketched in §II-C.
package core
