package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

func TestLinearCounterExactSmall(t *testing.T) {
	lc := NewLinearCounter(1 << 16)
	for pid := storage.PageID(0); pid < 100; pid++ {
		for rep := 0; rep < 5; rep++ { // repeats must not inflate the count
			lc.AddPID(pid)
		}
	}
	est := lc.Estimate()
	if math.Abs(est-100) > 3 {
		t.Errorf("estimate = %.1f, want ~100", est)
	}
	if lc.Observed() != 500 {
		t.Errorf("Observed = %d", lc.Observed())
	}
}

func TestLinearCounterAccuracyAtScale(t *testing.T) {
	// 50K distinct pages, 1 bit/page budget: error should stay within a
	// few percent (the paper reports high accuracy with <1 bit/page).
	const distinct = 50000
	lc := NewLinearCounter(DefaultLinearCounterBits(distinct))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < distinct; i++ {
		pid := storage.PageID(i)
		lc.AddPID(pid)
		if rng.Intn(3) == 0 { // sprinkle repeats
			lc.AddPID(pid)
		}
	}
	est := lc.Estimate()
	relErr := math.Abs(est-distinct) / distinct
	if relErr > 0.05 {
		t.Errorf("relative error %.3f > 5%% (est %.0f)", relErr, est)
	}
}

func TestLinearCounterSaturation(t *testing.T) {
	lc := NewLinearCounter(64)
	for pid := storage.PageID(0); pid < 10000; pid++ {
		lc.AddPID(pid)
	}
	est := lc.Estimate()
	if math.IsInf(est, 0) || math.IsNaN(est) {
		t.Errorf("saturated estimate = %v", est)
	}
	if est < 64 {
		t.Errorf("saturated estimate %.1f below bitmap size", est)
	}
}

func TestLinearCounterZeroEmpty(t *testing.T) {
	lc := NewLinearCounter(1024)
	if lc.Estimate() != 0 {
		t.Errorf("empty estimate = %v", lc.Estimate())
	}
	if lc.EstimateInt() != 0 {
		t.Errorf("empty EstimateInt = %d", lc.EstimateInt())
	}
}

func TestLinearCounterZeroBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLinearCounter(0) did not panic")
		}
	}()
	NewLinearCounter(0)
}

func TestDefaultLinearCounterBits(t *testing.T) {
	if DefaultLinearCounterBits(10) != 1024 {
		t.Error("floor not applied")
	}
	if DefaultLinearCounterBits(5000) != 5000 {
		t.Error("1 bit/page not applied")
	}
}

func TestGroupedCounterExact(t *testing.T) {
	gc := NewGroupedCounter()
	// Pages 0..9, rows 10 per page; predicate true on pages 2, 5, 9.
	hitPages := map[storage.PageID]bool{2: true, 5: true, 9: true}
	for pid := storage.PageID(0); pid < 10; pid++ {
		for r := 0; r < 10; r++ {
			gc.Observe(pid, hitPages[pid] && r == 7) // one qualifying row
		}
	}
	if got := gc.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if gc.PagesSeen() != 10 {
		t.Errorf("PagesSeen = %d", gc.PagesSeen())
	}
}

func TestGroupedCounterMultipleHitsOnePage(t *testing.T) {
	gc := NewGroupedCounter()
	gc.Observe(1, true)
	gc.Observe(1, true)
	gc.Observe(1, true)
	if got := gc.Count(); got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
}

func TestGroupedCounterObserveAfterFinishPanics(t *testing.T) {
	gc := NewGroupedCounter()
	gc.Observe(1, true)
	gc.Finish()
	defer func() {
		if recover() == nil {
			t.Error("Observe after Finish did not panic")
		}
	}()
	gc.Observe(2, true)
}

func TestGroupedCounterEmpty(t *testing.T) {
	gc := NewGroupedCounter()
	if gc.Count() != 0 {
		t.Error("empty counter nonzero")
	}
}

func TestGroupedCounterQuickMatchesNaive(t *testing.T) {
	// Property: for any sequence of (page, sat) with pages grouped, the
	// counter equals the number of pages with >=1 satisfying row.
	f := func(pageHits []uint8) bool {
		gc := NewGroupedCounter()
		want := 0
		for pid, h := range pageHits {
			rows := int(h%5) + 1
			sat := h%2 == 0
			anyHit := false
			for r := 0; r < rows; r++ {
				rowSat := sat && r == rows-1
				gc.Observe(storage.PageID(pid), rowSat)
				anyHit = anyHit || rowSat
			}
			if anyHit {
				want++
			}
		}
		return gc.Count() == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDPSampleFullFractionIsExact(t *testing.T) {
	s := NewDPSample(1.0, 1)
	hit := map[storage.PageID]bool{3: true, 4: true, 8: true, 9: true}
	for pid := storage.PageID(0); pid < 10; pid++ {
		for r := 0; r < 20; r++ {
			if s.StartRow(pid) {
				s.Observe(hit[pid] && r == 0)
			}
		}
	}
	if got := s.Estimate(); got != 4 {
		t.Errorf("Estimate = %v, want 4", got)
	}
	if s.SampledPages() != 10 || s.PagesSeen() != 10 {
		t.Errorf("sampled=%d seen=%d", s.SampledPages(), s.PagesSeen())
	}
}

func TestDPSampleUnbiasedAndAccurate(t *testing.T) {
	// 10000 pages, 30% satisfy. At f=0.1 the estimate should land within
	// ~5% (Chernoff bounds) and the average over seeds should be unbiased.
	const pages = 10000
	const trueDPC = 3000
	var sum float64
	for seed := int64(0); seed < 10; seed++ {
		s := NewDPSample(0.1, seed)
		for pid := storage.PageID(0); pid < pages; pid++ {
			sat := int(pid)%10 < 3
			if s.StartRow(pid) {
				s.Observe(sat)
			}
		}
		est := s.Estimate()
		if math.Abs(est-trueDPC)/trueDPC > 0.10 {
			t.Errorf("seed %d: estimate %.0f off by >10%%", seed, est)
		}
		sum += est
	}
	mean := sum / 10
	if math.Abs(mean-trueDPC)/trueDPC > 0.03 {
		t.Errorf("mean estimate %.0f biased vs %d", mean, trueDPC)
	}
}

func TestDPSampleSamplesFraction(t *testing.T) {
	s := NewDPSample(0.05, 7)
	for pid := storage.PageID(0); pid < 20000; pid++ {
		if s.StartRow(pid) {
			s.Observe(false)
		}
	}
	s.Finish()
	got := float64(s.SampledPages()) / float64(s.PagesSeen())
	if math.Abs(got-0.05) > 0.01 {
		t.Errorf("sampled fraction %.3f, want ~0.05", got)
	}
}

func TestDPSampleBadFractionPanics(t *testing.T) {
	for _, f := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDPSample(%v) did not panic", f)
				}
			}()
			NewDPSample(f, 1)
		}()
	}
}

func TestDPSampleStartRowAfterFinishPanics(t *testing.T) {
	s := NewDPSample(0.5, 1)
	s.StartRow(1)
	s.Finish()
	defer func() {
		if recover() == nil {
			t.Error("StartRow after Finish did not panic")
		}
	}()
	s.StartRow(2)
}

func TestBitVectorNoFalseNegatives(t *testing.T) {
	bv := NewBitVectorFilter(256)
	vals := make([]tuple.Value, 200)
	for i := range vals {
		vals[i] = tuple.Int64(int64(i * 37))
		bv.Add(vals[i])
	}
	for _, v := range vals {
		if !bv.MayContain(v) {
			t.Fatalf("false negative for %v", v)
		}
	}
	if bv.Added() != 200 {
		t.Errorf("Added = %d", bv.Added())
	}
}

func TestBitVectorExactWhenWide(t *testing.T) {
	// With bits >> distinct values, false-positive rate should be tiny.
	bv := NewBitVectorFilter(1 << 16)
	for i := int64(0); i < 100; i++ {
		bv.Add(tuple.Int64(i))
	}
	fp := 0
	for i := int64(1000); i < 11000; i++ {
		if bv.MayContain(tuple.Int64(i)) {
			fp++
		}
	}
	if fp > 50 { // expect ~100/65536 * 10000 ≈ 15
		t.Errorf("%d false positives out of 10000 with wide filter", fp)
	}
}

func TestBitVectorOnlyOverestimates(t *testing.T) {
	// Property: narrow filters admit a superset of the wide filter's set.
	wide := NewBitVectorFilter(1 << 20)
	narrow := NewBitVectorFilter(128)
	for i := int64(0); i < 500; i += 5 {
		wide.Add(tuple.Int64(i))
		narrow.Add(tuple.Int64(i))
	}
	for i := int64(0); i < 500; i++ {
		if wide.MayContain(tuple.Int64(i)) && !narrow.MayContain(tuple.Int64(i)) {
			t.Fatalf("narrow filter rejected value %d the wide filter admits", i)
		}
	}
}

func TestBitVectorStrings(t *testing.T) {
	bv := NewBitVectorFilter(1024)
	bv.Add(tuple.Str("CA"))
	bv.Add(tuple.Str("WA"))
	if !bv.MayContain(tuple.Str("CA")) || !bv.MayContain(tuple.Str("WA")) {
		t.Error("string membership lost")
	}
	if bv.SetBits() == 0 || bv.SetBits() > 2 {
		t.Errorf("SetBits = %d", bv.SetBits())
	}
}

func TestBitVectorMinimumWidth(t *testing.T) {
	bv := NewBitVectorFilter(1)
	if bv.Bits() != 64 {
		t.Errorf("Bits = %d, want 64 minimum", bv.Bits())
	}
}

func TestHashValueIntDateAgreement(t *testing.T) {
	if HashValue(tuple.Int64(42)) != HashValue(tuple.Date(42)) {
		t.Error("int and date with equal payload hash differently")
	}
	if HashValue(tuple.Int64(1)) == HashValue(tuple.Int64(2)) {
		t.Error("distinct ints collide (astronomically unlikely)")
	}
}

func TestSampleDistinctExactWhenSampleHoldsAll(t *testing.T) {
	sd := NewSampleDistinct(10000, 5)
	for pid := storage.PageID(0); pid < 500; pid++ {
		sd.AddPID(pid)
		sd.AddPID(pid) // duplicates
	}
	// Reservoir holds the whole stream: f1 counts are exact, scale = 1.
	est := sd.EstimateGEE()
	if math.Abs(est-500) > 1 {
		t.Errorf("estimate = %.1f, want 500", est)
	}
	if sd.Observed() != 1000 || sd.SampleSize() != 1000 {
		t.Errorf("observed=%d size=%d", sd.Observed(), sd.SampleSize())
	}
}

func TestSampleDistinctReasonableUnderSampling(t *testing.T) {
	// 5000 distinct PIDs, one row each, reservoir of 500. GEE guarantees
	// ratio error at most sqrt(N/n) ≈ 3.16 — loose by design, which is
	// exactly the weakness §III-A cites when preferring probabilistic
	// counting. Here every sampled PID is unique, so GEE returns
	// n·sqrt(N/n) = sqrt(N·n) ≈ 1581, right at its bound.
	sd := NewSampleDistinct(500, 9)
	for pid := storage.PageID(0); pid < 5000; pid++ {
		sd.AddPID(pid)
	}
	est := sd.EstimateGEE()
	bound := math.Sqrt(5000.0/500.0) * 1.05 // guarantee + slack
	if est < 5000/bound || est > 5000*bound {
		t.Errorf("GEE estimate %.0f violates the sqrt(N/n) ratio guarantee", est)
	}
}

func TestSampleDistinctEmpty(t *testing.T) {
	sd := NewSampleDistinct(10, 1)
	if sd.EstimateGEE() != 0 {
		t.Error("empty estimate nonzero")
	}
}

func TestSampleDistinctBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSampleDistinct(0) did not panic")
		}
	}()
	NewSampleDistinct(0, 1)
}
