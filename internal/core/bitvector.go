package core

import (
	"math/bits"

	"pagefeedback/internal/tuple"
)

// BitVectorFilter is the derived semi-join predicate of §IV (Fig 5). During
// the build phase of a Hash Join (or while the Sort feeding a Merge Join
// drains its input), the outer relation's join-column values are hashed into
// the filter. During the probe-side scan — which runs inside the storage
// engine and therefore sees PIDs — MayContain acts as the predicate
// Satisfies(R2, PID, Join-Pred) needed for distinct page counting.
//
// With at least as many bits as distinct outer join values there are no
// collisions and the resulting page count is exact; fewer bits can only
// overestimate (never underestimate), because a set bit can spuriously admit
// an inner row but never reject a matching one.
//
// Integer values are bucketed by value mod bits — the classic bit-vector
// construction of DeWitt & Gerber [7]. For the dense integer join domains of
// the paper's workloads (and most surrogate keys) this mapping is injective
// whenever the value range does not exceed the filter width, which is what
// makes the §IV exactness guarantee ("at least as many bits as distinct
// values") achievable; a scrambling hash would suffer birthday collisions
// at any width. Strings are hashed first.
type BitVectorFilter struct {
	words   []uint64
	numBits uint64
	added   int64
}

// bucket maps a value onto [0, numBits).
func (bv *BitVectorFilter) bucket(v tuple.Value) uint64 {
	switch v.Kind {
	case tuple.KindInt, tuple.KindDate:
		return uint64(v.Int) % bv.numBits
	default:
		return HashValue(v) % bv.numBits
	}
}

// NewBitVectorFilter creates a filter with the given number of bits
// (rounded up to a multiple of 64; minimum 64).
func NewBitVectorFilter(numBits uint64) *BitVectorFilter {
	if numBits < 64 {
		numBits = 64
	}
	return &BitVectorFilter{
		words:   make([]uint64, (numBits+63)/64),
		numBits: numBits,
	}
}

// Add hashes a join-column value of the outer relation into the filter.
func (bv *BitVectorFilter) Add(v tuple.Value) {
	h := bv.bucket(v)
	bv.words[h/64] |= 1 << (h % 64)
	bv.added++
}

// Merge folds a sibling filter built over another part of the outer
// relation into bv by bitwise union. A bit is set iff some outer row's join
// value bucketed there, so the union is exactly the filter a serial build
// produces regardless of how the build input was split.
//
// dbvet:commutative — bitwise OR and addition; order is irrelevant.
func (bv *BitVectorFilter) Merge(o *BitVectorFilter) {
	if bv.numBits != o.numBits {
		panic("core: merging BitVectorFilters with different widths")
	}
	for i, w := range o.words {
		bv.words[i] |= w
	}
	bv.added += o.added
}

// MayContain reports whether v's bit is set: false means no outer row can
// join with v (no false negatives; possible false positives).
func (bv *BitVectorFilter) MayContain(v tuple.Value) bool {
	h := bv.bucket(v)
	return bv.words[h/64]&(1<<(h%64)) != 0
}

// Bits returns the filter width in bits.
func (bv *BitVectorFilter) Bits() uint64 { return bv.numBits }

// Added returns the number of Add calls (outer rows hashed).
func (bv *BitVectorFilter) Added() int64 { return bv.added }

// SetBits returns the number of set bits (diagnostics: the collision rate
// grows with the fill ratio SetBits/Bits).
func (bv *BitVectorFilter) SetBits() uint64 {
	var n uint64
	for _, w := range bv.words {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}
