package core

import (
	"pagefeedback/internal/storage"
)

// GroupedCounter computes the exact distinct page count during a scan plan,
// exploiting the grouped page access property (§III-B): a scan processes all
// rows of a page together and never returns to it, so distinct counting
// reduces to maintaining one counter and one flag.
//
// Feed it every row of the scan via Observe; call Finish (or Count, which
// implies it) once the scan ends.
type GroupedCounter struct {
	count    int64
	curPID   storage.PageID
	curHit   bool
	havePage bool
	pages    int64 // total pages seen (diagnostics)
	finished bool
}

// NewGroupedCounter returns a counter ready for a fresh scan.
func NewGroupedCounter() *GroupedCounter { return &GroupedCounter{} }

// Observe records one scanned row: the page it lives on and whether it
// satisfied the monitored predicate.
func (gc *GroupedCounter) Observe(pid storage.PageID, satisfies bool) {
	if gc.finished {
		panic("core: Observe after Finish")
	}
	if !gc.havePage || pid != gc.curPID {
		gc.closePage()
		gc.curPID = pid
		gc.curHit = false
		gc.havePage = true
		gc.pages++
	}
	if satisfies {
		gc.curHit = true
	}
}

// ObservePageHit records that page pid contained at least one qualifying
// row, without per-row detail (used when the caller already aggregated).
func (gc *GroupedCounter) ObservePageHit(pid storage.PageID) {
	gc.Observe(pid, true)
}

func (gc *GroupedCounter) closePage() {
	if gc.havePage && gc.curHit {
		gc.count++
	}
}

// Finish closes the last page. Further Observe calls panic.
func (gc *GroupedCounter) Finish() {
	if !gc.finished {
		gc.closePage()
		gc.havePage = false
		gc.finished = true
	}
}

// Merge folds a sibling counter that observed a page-disjoint partition of
// the same scan into gc, finishing both. Each partition preserves the
// grouped page access property within itself and no page spans partitions,
// so the partition counts sum to exactly the serial count.
//
// dbvet:commutative — the merge sums partition totals; order is irrelevant.
func (gc *GroupedCounter) Merge(o *GroupedCounter) {
	gc.Finish()
	o.Finish()
	gc.count += o.count
	gc.pages += o.pages
}

// Count returns the exact DPC(T, p). It finishes the counter.
func (gc *GroupedCounter) Count() int64 {
	gc.Finish()
	return gc.count
}

// PagesSeen returns the number of distinct pages the scan visited.
func (gc *GroupedCounter) PagesSeen() int64 {
	n := gc.pages
	return n
}
