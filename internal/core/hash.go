package core

import (
	"math/bits"

	"pagefeedback/internal/tuple"
)

// hash64 is the splitmix64 finalizer: a fast, well-distributed integer hash
// used for PIDs and join-key values.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashBytes is an FNV-1a over b, finalized with splitmix64.
func hashBytes(b []byte) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return hash64(h)
}

// HashValue hashes a column value for bit-vector filtering. Int and Date
// values with equal numeric payloads hash equally (they compare equal too).
func HashValue(v tuple.Value) uint64 {
	switch v.Kind {
	case tuple.KindInt, tuple.KindDate:
		return hash64(uint64(v.Int))
	case tuple.KindString:
		return hashBytes([]byte(v.Str))
	default:
		return hash64(uint64(v.Kind))
	}
}

// reduceRange maps a 64-bit hash onto [0, n) without modulo bias
// (Lemire's multiply-shift reduction).
func reduceRange(h uint64, n uint64) uint64 {
	hi, _ := bits.Mul64(h, n)
	return hi
}
