// Package expr defines the predicate language of the engine: atomic
// comparisons on one table's columns and ordered conjunctions of them.
//
// Conjunctions evaluate left to right with short-circuiting, like a real
// predicate evaluator. The distinct-page-count monitors of the paper need
// per-atom truth values for predicates that are not a prefix of the scan
// predicate, so Conjunction also supports evaluation with short-circuiting
// turned off (EvalAll) — the expensive mode DPSample bounds by sampling.
package expr

import (
	"fmt"
	"sort"
	"strings"

	"pagefeedback/internal/tuple"
)

// CmpOp is a comparison operator.
type CmpOp uint8

// Supported operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
	Between // Val <= col <= Val2
	In      // col in List
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Between:
		return "BETWEEN"
	case In:
		return "IN"
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Atom is one atomic predicate: column <op> constant(s). Atoms must be bound
// to a schema before evaluation.
type Atom struct {
	Col  string
	Op   CmpOp
	Val  tuple.Value
	Val2 tuple.Value   // upper bound for Between
	List []tuple.Value // values for In

	ord   int
	bound bool
}

// NewAtom constructs an unbound atomic predicate.
func NewAtom(col string, op CmpOp, val tuple.Value) Atom {
	return Atom{Col: col, Op: op, Val: val}
}

// NewBetween constructs an inclusive range predicate lo <= col <= hi.
func NewBetween(col string, lo, hi tuple.Value) Atom {
	return Atom{Col: col, Op: Between, Val: lo, Val2: hi}
}

// NewIn constructs a membership predicate.
func NewIn(col string, vals ...tuple.Value) Atom {
	return Atom{Col: col, Op: In, List: vals}
}

// Bind resolves the atom's column against schema. It returns a bound copy.
func (a Atom) Bind(schema *tuple.Schema) (Atom, error) {
	ord, ok := schema.Ordinal(a.Col)
	if !ok {
		return Atom{}, fmt.Errorf("expr: no column %q in schema %s", a.Col, schema)
	}
	a.ord = ord
	a.bound = true
	return a, nil
}

// Ordinal returns the bound column position. It panics if unbound.
func (a Atom) Ordinal() int {
	if !a.bound {
		panic("expr: Ordinal on unbound atom " + a.String())
	}
	return a.ord
}

// Bound reports whether the atom has been bound to a schema.
func (a Atom) Bound() bool { return a.bound }

// Eval evaluates the atom against a row of the bound schema.
func (a Atom) Eval(row tuple.Row) bool {
	if !a.bound {
		panic("expr: Eval on unbound atom " + a.String())
	}
	v := row[a.ord]
	switch a.Op {
	case Eq:
		return v.Compare(a.Val) == 0
	case Ne:
		return v.Compare(a.Val) != 0
	case Lt:
		return v.Compare(a.Val) < 0
	case Le:
		return v.Compare(a.Val) <= 0
	case Gt:
		return v.Compare(a.Val) > 0
	case Ge:
		return v.Compare(a.Val) >= 0
	case Between:
		return v.Compare(a.Val) >= 0 && v.Compare(a.Val2) <= 0
	case In:
		for _, lv := range a.List {
			if v.Compare(lv) == 0 {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("expr: bad operator %v", a.Op))
	}
}

// String renders the atom in SQL-ish syntax.
func (a Atom) String() string {
	switch a.Op {
	case Between:
		return fmt.Sprintf("%s BETWEEN %s AND %s", a.Col, a.Val, a.Val2)
	case In:
		parts := make([]string, len(a.List))
		for i, v := range a.List {
			parts[i] = v.String()
		}
		return fmt.Sprintf("%s IN (%s)", a.Col, strings.Join(parts, ", "))
	default:
		return fmt.Sprintf("%s %s %s", a.Col, a.Op, a.Val)
	}
}

// Conjunction is an ordered AND of atoms. The zero value is the always-true
// predicate.
type Conjunction struct {
	Atoms []Atom
}

// And builds a conjunction from atoms (in evaluation order).
func And(atoms ...Atom) Conjunction { return Conjunction{Atoms: atoms} }

// Bind resolves every atom against schema.
func (c Conjunction) Bind(schema *tuple.Schema) (Conjunction, error) {
	out := Conjunction{Atoms: make([]Atom, len(c.Atoms))}
	for i, a := range c.Atoms {
		b, err := a.Bind(schema)
		if err != nil {
			return Conjunction{}, err
		}
		out.Atoms[i] = b
	}
	return out, nil
}

// Eval evaluates with short-circuiting: atoms after the first false one are
// not evaluated, exactly like a production predicate evaluator.
func (c Conjunction) Eval(row tuple.Row) bool {
	for _, a := range c.Atoms {
		if !a.Eval(row) {
			return false
		}
	}
	return true
}

// EvalAll evaluates every atom regardless of earlier results — short-
// circuiting turned off. If results is non-nil it must have len(Atoms) and
// receives the per-atom truth values. The return value is the conjunction.
func (c Conjunction) EvalAll(row tuple.Row, results []bool) bool {
	all := true
	for i, a := range c.Atoms {
		ok := a.Eval(row)
		if results != nil {
			results[i] = ok
		}
		all = all && ok
	}
	return all
}

// EvalPrefix evaluates the first k atoms with short-circuiting.
func (c Conjunction) EvalPrefix(row tuple.Row, k int) bool {
	for _, a := range c.Atoms[:k] {
		if !a.Eval(row) {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether c's atoms are exactly the first len(c.Atoms)
// atoms of other (compared structurally, ignoring binding). Per §III-B,
// page counts for a prefix of the evaluated predicate never require turning
// off short-circuiting.
func (c Conjunction) IsPrefixOf(other Conjunction) bool {
	if len(c.Atoms) > len(other.Atoms) {
		return false
	}
	for i, a := range c.Atoms {
		if !a.sameAs(other.Atoms[i]) {
			return false
		}
	}
	return true
}

func (a Atom) sameAs(b Atom) bool {
	if !strings.EqualFold(a.Col, b.Col) || a.Op != b.Op {
		return false
	}
	switch a.Op {
	case Between:
		return a.Val.Equal(b.Val) && a.Val2.Equal(b.Val2)
	case In:
		if len(a.List) != len(b.List) {
			return false
		}
		for i := range a.List {
			if !a.List[i].Equal(b.List[i]) {
				return false
			}
		}
		return true
	default:
		return a.Val.Equal(b.Val)
	}
}

// Empty reports whether the conjunction has no atoms (always true).
func (c Conjunction) Empty() bool { return len(c.Atoms) == 0 }

// String renders the conjunction in evaluation order.
func (c Conjunction) String() string {
	if len(c.Atoms) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(c.Atoms))
	for i, a := range c.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " AND ")
}

// CanonicalKey returns an order-insensitive canonical rendering, prefixed by
// the table name, for use as a feedback-cache key: the same predicate set in
// any order maps to the same key.
func (c Conjunction) CanonicalKey(table string) string {
	parts := make([]string, len(c.Atoms))
	for i, a := range c.Atoms {
		parts[i] = strings.ToLower(a.String())
	}
	sort.Strings(parts)
	return strings.ToLower(table) + "|" + strings.Join(parts, "&")
}

// Columns returns the distinct column names referenced, in first-use order.
func (c Conjunction) Columns() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range c.Atoms {
		k := strings.ToLower(a.Col)
		if !seen[k] {
			seen[k] = true
			out = append(out, a.Col)
		}
	}
	return out
}

// Subset returns the conjunction of the atoms at the given indexes.
func (c Conjunction) Subset(idx ...int) Conjunction {
	out := Conjunction{Atoms: make([]Atom, 0, len(idx))}
	for _, i := range idx {
		out.Atoms = append(out.Atoms, c.Atoms[i])
	}
	return out
}
