package expr

import (
	"math/rand"
	"testing"

	"pagefeedback/internal/tuple"
)

// FuzzEvalBatch drives Compiled.EvalBatch with randomized batches, predicates,
// and selection vectors, using row-at-a-time Compiled.Eval (itself pinned to
// Conjunction.Eval by the compile tests) as the oracle. The column-at-a-time
// sweep compacts the selection in place, so the properties under test are the
// dangerous ones: no survivor dropped, no rejected row resurrected, order
// preserved, and the input's backing array reused without corruption.
func FuzzEvalBatch(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(2), uint64(0xffff))
	f.Add(int64(7), uint8(64), uint8(4), uint64(0x5555555555555555))
	f.Add(int64(42), uint8(1), uint8(1), uint64(1))
	f.Add(int64(-3), uint8(32), uint8(3), uint64(0))

	schema := tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindInt},
		tuple.Column{Name: "b", Kind: tuple.KindInt},
		tuple.Column{Name: "s", Kind: tuple.KindString},
	)
	words := []string{"", "a", "b", "ab", "ba", "abc"}

	f.Fuzz(func(t *testing.T, seed int64, nRows, nAtoms uint8, selMask uint64) {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]tuple.Row, int(nRows)%65)
		for i := range rows {
			rows[i] = tuple.Row{
				tuple.Int64(rng.Int63n(7) - 3),
				tuple.Int64(rng.Int63n(7) - 3),
				tuple.Str(words[rng.Intn(len(words))]),
			}
		}

		intVal := func() tuple.Value { return tuple.Int64(rng.Int63n(7) - 3) }
		strVal := func() tuple.Value { return tuple.Str(words[rng.Intn(len(words))]) }
		atoms := make([]Atom, 1+int(nAtoms)%5)
		for i := range atoms {
			col, val := "a", intVal
			switch rng.Intn(3) {
			case 1:
				col = "b"
			case 2:
				col, val = "s", strVal
			}
			var a Atom
			switch rng.Intn(8) {
			case 6:
				a = NewBetween(col, val(), val())
			case 7:
				list := make([]tuple.Value, rng.Intn(4))
				for j := range list {
					list[j] = val()
				}
				a = NewIn(col, list...)
			default:
				a = NewAtom(col, CmpOp(rng.Intn(6)), val())
			}
			bound, err := a.Bind(schema)
			if err != nil {
				t.Fatalf("Bind(%s): %v", a, err)
			}
			atoms[i] = bound
		}
		cc := Compile(And(atoms...))
		if !cc.OK() {
			t.Fatalf("uniform-kind conjunction did not compile: %s", And(atoms...))
		}

		sel := make([]int, 0, len(rows))
		for i := range rows {
			if i < 64 && selMask&(1<<uint(i)) != 0 {
				sel = append(sel, i)
			}
		}
		want := make([]int, 0, len(sel))
		for _, i := range sel {
			if cc.Eval(rows[i]) {
				want = append(want, i)
			}
		}

		got := cc.EvalBatch(rows, sel)
		if len(got) != len(want) {
			t.Fatalf("EvalBatch kept %d rows, oracle kept %d (pred %s)", len(got), len(want), And(atoms...))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("EvalBatch[%d] = %d, oracle = %d (pred %s)", i, got[i], want[i], And(atoms...))
			}
		}
		// The returned slice must alias the input's backing array (the
		// documented in-place contract batch operators rely on to avoid
		// per-batch allocation).
		if cap(sel) > 0 && len(got) > 0 && &got[0] != &sel[:1][0] {
			t.Fatal("EvalBatch did not compact in place")
		}
	})
}
