package expr

import (
	"math"
	"strings"

	"pagefeedback/internal/tuple"
)

// KeyRange is a half-open range [Lo, Hi) over encoded index keys. A nil
// bound is unbounded. Ranges are sound supersets: the executor re-applies
// the full predicate to every row, so a range only has to contain all
// qualifying entries.
type KeyRange struct {
	Lo, Hi []byte
}

// SuccValue returns the smallest value strictly greater than v, used to turn
// inclusive upper bounds into exclusive encoded bounds. ok is false when no
// successor exists (math.MaxInt64), in which case an unbounded high end is
// exact.
func SuccValue(v tuple.Value) (tuple.Value, bool) {
	switch v.Kind {
	case tuple.KindInt, tuple.KindDate:
		if v.Int == math.MaxInt64 {
			return tuple.Value{}, false
		}
		return tuple.Value{Kind: v.Kind, Int: v.Int + 1}, true
	case tuple.KindString:
		return tuple.Str(v.Str + "\x00"), true
	default:
		return tuple.Value{}, false
	}
}

// IndexRanges derives the seek ranges an index with the given column order
// can use for conjunction c. It absorbs equality atoms on a prefix of the
// index columns, then at most one range (or IN) atom on the next column.
//
// The returned matched slice holds the indexes (into c.Atoms) of the atoms
// the ranges fully enforce. ok is false when the index cannot narrow the
// scan at all (no atom on the leading column).
func IndexRanges(c Conjunction, indexCols []string) (ranges []KeyRange, matched []int, ok bool) {
	// prefix holds the encoded equality values absorbed so far.
	var prefix []byte
	atomOn := func(col string) []int {
		var idx []int
		for i, a := range c.Atoms {
			if strings.EqualFold(a.Col, col) {
				idx = append(idx, i)
			}
		}
		return idx
	}

	for ci, col := range indexCols {
		idxs := atomOn(col)
		if len(idxs) == 0 {
			break
		}
		// Prefer a single equality atom: it extends the prefix and lets the
		// next index column participate.
		eqIdx := -1
		for _, i := range idxs {
			if c.Atoms[i].Op == Eq {
				eqIdx = i
				break
			}
		}
		if eqIdx >= 0 {
			prefix = tuple.AppendKey(prefix, c.Atoms[eqIdx].Val)
			matched = append(matched, eqIdx)
			if ci == len(indexCols)-1 {
				// Exhausted the index columns: equality prefix range.
				return []KeyRange{prefixRange(prefix)}, matched, true
			}
			continue
		}
		// No equality: try to intersect the range atoms on this column.
		lo, hi, rangeMatched, usable := columnRange(c, idxs)
		if !usable {
			break
		}
		matched = append(matched, rangeMatched...)
		return []KeyRange{composeRange(prefix, lo, hi)}, matched, true
	}
	if len(prefix) == 0 {
		// Check for IN on the leading column: expands to multiple ranges.
		if len(indexCols) > 0 {
			for i, a := range c.Atoms {
				if strings.EqualFold(a.Col, indexCols[0]) && a.Op == In {
					for _, v := range a.List {
						ranges = append(ranges, prefixRange(tuple.EncodeKey(v)))
					}
					return ranges, []int{i}, true
				}
			}
		}
		return nil, nil, false
	}
	return []KeyRange{prefixRange(prefix)}, matched, true
}

// prefixRange is the range of all keys beginning with the encoded prefix.
// Because the key encoding is order preserving and entries only extend the
// prefix with more encoded values, [prefix, succ(prefix)) captures exactly
// the entries whose leading values equal the prefix. succ(prefix) is the
// prefix with 0xFF appended — every extension byte of a valid encoding is a
// tag (0x01/0x02) or belongs to an already-started value, and no valid
// continuation exceeds 0xFF at that position while remaining a prefix match.
func prefixRange(prefix []byte) KeyRange {
	hi := make([]byte, len(prefix)+1)
	copy(hi, prefix)
	hi[len(prefix)] = 0xFF
	return KeyRange{Lo: prefix, Hi: hi}
}

// columnRange intersects the non-equality atoms on one column into value
// bounds [lo, hi) (nil = unbounded). It returns the matched atom indexes and
// whether any range information was extracted.
func columnRange(c Conjunction, idxs []int) (lo, hi []byte, matched []int, usable bool) {
	var loVal, hiVal *tuple.Value // hi is exclusive
	setLo := func(v tuple.Value) {
		if loVal == nil || v.Compare(*loVal) > 0 {
			loVal = &v
		}
	}
	setHiExcl := func(v tuple.Value) {
		if hiVal == nil || v.Compare(*hiVal) < 0 {
			hiVal = &v
		}
	}
	for _, i := range idxs {
		a := c.Atoms[i]
		switch a.Op {
		case Lt:
			setHiExcl(a.Val)
		case Le:
			if s, ok := SuccValue(a.Val); ok {
				setHiExcl(s)
			} // no successor: unbounded hi is exact
		case Gt:
			if s, ok := SuccValue(a.Val); ok {
				setLo(s)
			} else {
				continue // col > MaxInt64 is empty; leave to residual
			}
		case Ge:
			setLo(a.Val)
		case Between:
			setLo(a.Val)
			if s, ok := SuccValue(a.Val2); ok {
				setHiExcl(s)
			}
		default:
			continue // Ne, In, Eq handled elsewhere
		}
		matched = append(matched, i)
	}
	if loVal == nil && hiVal == nil {
		return nil, nil, nil, false
	}
	if loVal != nil {
		lo = tuple.EncodeKey(*loVal)
	}
	if hiVal != nil {
		hi = tuple.EncodeKey(*hiVal)
	}
	return lo, hi, matched, true
}

// composeRange prepends the encoded equality prefix to value-level bounds.
func composeRange(prefix, lo, hi []byte) KeyRange {
	var r KeyRange
	if lo != nil {
		r.Lo = append(append([]byte(nil), prefix...), lo...)
	} else {
		r.Lo = append([]byte(nil), prefix...)
	}
	if hi != nil {
		r.Hi = append(append([]byte(nil), prefix...), hi...)
	} else if len(prefix) > 0 {
		r.Hi = prefixRange(prefix).Hi
	}
	return r
}
