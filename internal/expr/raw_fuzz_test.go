package expr

import (
	"math/rand"
	"testing"

	"pagefeedback/internal/tuple"
)

// FuzzEvalRaw drives RawCompiled.Eval with randomized predicates over an
// all-fixed-width schema, using decoded Conjunction.Eval as the oracle: for
// every row, judging the encoded bytes must agree exactly with judging the
// decoded values. This is the contract the scan's late-materializing path
// rests on — a raw disagreement would silently drop or resurrect rows.
func FuzzEvalRaw(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(2))
	f.Add(int64(7), uint8(64), uint8(4))
	f.Add(int64(42), uint8(1), uint8(1))
	f.Add(int64(-3), uint8(32), uint8(3))

	schema := tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindInt},
		tuple.Column{Name: "b", Kind: tuple.KindInt},
		tuple.Column{Name: "d", Kind: tuple.KindDate},
	)

	f.Fuzz(func(t *testing.T, seed int64, nRows, nAtoms uint8) {
		rng := rand.New(rand.NewSource(seed))
		val := func() tuple.Value { return tuple.Int64(rng.Int63n(7) - 3) }
		rows := make([]tuple.Row, int(nRows)%65)
		for i := range rows {
			rows[i] = tuple.Row{val(), val(), {Kind: tuple.KindDate, Int: rng.Int63n(7)}}
		}

		cols := []string{"a", "b", "d"}
		atoms := make([]Atom, 1+int(nAtoms)%5)
		for i := range atoms {
			col := cols[rng.Intn(len(cols))]
			var a Atom
			switch rng.Intn(8) {
			case 6:
				a = NewBetween(col, val(), val())
			case 7:
				list := make([]tuple.Value, rng.Intn(12))
				for j := range list {
					list[j] = val()
				}
				a = NewIn(col, list...)
			default:
				a = NewAtom(col, CmpOp(rng.Intn(6)), val())
			}
			bound, err := a.Bind(schema)
			if err != nil {
				t.Fatalf("Bind(%s): %v", a, err)
			}
			atoms[i] = bound
		}
		pred := And(atoms...)
		rc := CompileRaw(pred, schema)
		if !rc.OK() {
			t.Fatalf("all-numeric conjunction did not raw-compile: %s", pred)
		}

		var enc []byte
		for _, row := range rows {
			var err error
			enc, err = tuple.Encode(enc[:0], schema, row)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if got, want := rc.Eval(enc), pred.Eval(row); got != want {
				t.Fatalf("raw Eval = %v, decoded Eval = %v for row %v (pred %s)",
					got, want, row, pred)
			}
		}

		// A row of the wrong length must be accepted unexamined, so it
		// reaches the decoding path that reports the corruption.
		if len(enc) > 0 && !rc.Eval(enc[:len(enc)-1]) {
			t.Fatal("truncated row was rejected raw instead of passed through to decoding")
		}
	})
}
