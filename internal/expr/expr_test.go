package expr

import (
	"testing"

	"pagefeedback/internal/tuple"
)

func salesSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "shipdate", Kind: tuple.KindDate},
		tuple.Column{Name: "state", Kind: tuple.KindString},
		tuple.Column{Name: "vendorid", Kind: tuple.KindInt},
	)
}

func sampleRow() tuple.Row {
	return tuple.Row{tuple.Int64(1), tuple.Date(13665), tuple.Str("CA"), tuple.Int64(7)}
}

func mustBind(t *testing.T, c Conjunction) Conjunction {
	t.Helper()
	b, err := c.Bind(salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAtomOperators(t *testing.T) {
	row := sampleRow()
	cases := []struct {
		atom Atom
		want bool
	}{
		{NewAtom("state", Eq, tuple.Str("CA")), true},
		{NewAtom("state", Eq, tuple.Str("WA")), false},
		{NewAtom("state", Ne, tuple.Str("WA")), true},
		{NewAtom("id", Lt, tuple.Int64(2)), true},
		{NewAtom("id", Lt, tuple.Int64(1)), false},
		{NewAtom("id", Le, tuple.Int64(1)), true},
		{NewAtom("id", Gt, tuple.Int64(0)), true},
		{NewAtom("id", Ge, tuple.Int64(1)), true},
		{NewAtom("id", Ge, tuple.Int64(2)), false},
		{NewBetween("shipdate", tuple.Date(13660), tuple.Date(13670)), true},
		{NewBetween("shipdate", tuple.Date(13666), tuple.Date(13670)), false},
		{NewIn("vendorid", tuple.Int64(5), tuple.Int64(7)), true},
		{NewIn("vendorid", tuple.Int64(5), tuple.Int64(6)), false},
	}
	for _, c := range cases {
		b, err := c.atom.Bind(salesSchema())
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Eval(row); got != c.want {
			t.Errorf("%s = %v, want %v", c.atom, got, c.want)
		}
	}
}

func TestAtomBindErrors(t *testing.T) {
	if _, err := NewAtom("missing", Eq, tuple.Int64(1)).Bind(salesSchema()); err == nil {
		t.Error("binding missing column succeeded")
	}
}

func TestUnboundEvalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval on unbound atom did not panic")
		}
	}()
	NewAtom("id", Eq, tuple.Int64(1)).Eval(sampleRow())
}

func TestConjunctionEvalShortCircuit(t *testing.T) {
	c := mustBind(t, And(
		NewAtom("state", Eq, tuple.Str("WA")), // false: should short-circuit
		NewAtom("id", Eq, tuple.Int64(1)),
	))
	if c.Eval(sampleRow()) {
		t.Error("Eval = true")
	}
	c2 := mustBind(t, And(
		NewAtom("state", Eq, tuple.Str("CA")),
		NewAtom("id", Eq, tuple.Int64(1)),
	))
	if !c2.Eval(sampleRow()) {
		t.Error("Eval = false")
	}
	if !(Conjunction{}).Eval(sampleRow()) {
		t.Error("empty conjunction is not TRUE")
	}
}

func TestConjunctionEvalAll(t *testing.T) {
	c := mustBind(t, And(
		NewAtom("state", Eq, tuple.Str("WA")), // false
		NewAtom("id", Eq, tuple.Int64(1)),     // true, must still be evaluated
	))
	results := make([]bool, 2)
	if c.EvalAll(sampleRow(), results) {
		t.Error("EvalAll = true")
	}
	if results[0] != false || results[1] != true {
		t.Errorf("results = %v, want [false true]", results)
	}
	// nil results slice is allowed.
	if c.EvalAll(sampleRow(), nil) {
		t.Error("EvalAll(nil) = true")
	}
}

func TestEvalPrefix(t *testing.T) {
	c := mustBind(t, And(
		NewAtom("state", Eq, tuple.Str("CA")),
		NewAtom("id", Eq, tuple.Int64(999)),
	))
	if !c.EvalPrefix(sampleRow(), 1) {
		t.Error("prefix of 1 should pass")
	}
	if c.EvalPrefix(sampleRow(), 2) {
		t.Error("prefix of 2 should fail")
	}
}

func TestIsPrefixOf(t *testing.T) {
	a1 := NewAtom("shipdate", Eq, tuple.Date(13665))
	a2 := NewAtom("state", Eq, tuple.Str("CA"))
	full := And(a1, a2)
	if !And(a1).IsPrefixOf(full) {
		t.Error("single-atom prefix not detected")
	}
	if !full.IsPrefixOf(full) {
		t.Error("self prefix not detected")
	}
	if And(a2).IsPrefixOf(full) {
		t.Error("non-prefix reported as prefix")
	}
	if full.IsPrefixOf(And(a1)) {
		t.Error("longer conjunction reported as prefix")
	}
	if !(Conjunction{}).IsPrefixOf(full) {
		t.Error("empty conjunction should be a prefix of everything")
	}
}

func TestCanonicalKeyOrderInsensitive(t *testing.T) {
	a1 := NewAtom("shipdate", Eq, tuple.Date(13665))
	a2 := NewAtom("state", Eq, tuple.Str("CA"))
	k1 := And(a1, a2).CanonicalKey("Sales")
	k2 := And(a2, a1).CanonicalKey("sales")
	if k1 != k2 {
		t.Errorf("canonical keys differ:\n%s\n%s", k1, k2)
	}
	k3 := And(a1).CanonicalKey("sales")
	if k1 == k3 {
		t.Error("different predicates share a canonical key")
	}
}

func TestColumnsAndSubset(t *testing.T) {
	c := And(
		NewAtom("state", Eq, tuple.Str("CA")),
		NewAtom("id", Lt, tuple.Int64(5)),
		NewAtom("State", Ne, tuple.Str("WA")),
	)
	cols := c.Columns()
	if len(cols) != 2 || cols[0] != "state" || cols[1] != "id" {
		t.Errorf("Columns = %v", cols)
	}
	sub := c.Subset(1)
	if len(sub.Atoms) != 1 || sub.Atoms[0].Col != "id" {
		t.Errorf("Subset = %v", sub)
	}
}

func TestStringRendering(t *testing.T) {
	c := And(
		NewAtom("shipdate", Eq, tuple.Date(13665)),
		NewBetween("id", tuple.Int64(1), tuple.Int64(9)),
		NewIn("state", tuple.Str("CA"), tuple.Str("WA")),
	)
	got := c.String()
	want := `shipdate = 2007-06-01 AND id BETWEEN 1 AND 9 AND state IN ("CA", "WA")`
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if (Conjunction{}).String() != "TRUE" {
		t.Error("empty conjunction String != TRUE")
	}
}
