package expr

import (
	"encoding/binary"

	"pagefeedback/internal/tuple"
)

// Raw predicate evaluation: for all-fixed-width schemas every column sits at
// a known byte offset of the encoded row, so a predicate can be judged
// against the page bytes directly — before any value is decoded. Scan
// operators use this for late materialization: rows the predicate rejects
// are never decoded at all.

// rawAtomFn reports whether one atom accepts a fixed-width encoded row.
type rawAtomFn func(enc []byte) bool

// RawCompiled evaluates a bound Conjunction against the encoded bytes of a
// fixed-width row. The zero value is invalid; obtain one from CompileRaw and
// check OK. Evaluation is equivalent to the decoded evaluators: raw numeric
// comparison and Value comparison agree on every Int and Date.
type RawCompiled struct {
	fns  []rawAtomFn
	size int
}

// OK reports whether the compilation produced a usable evaluator.
func (c RawCompiled) OK() bool { return c.fns != nil }

// Eval evaluates the conjunction with short-circuiting. A row whose length
// does not match the schema's fixed size is accepted unexamined: malformed
// rows must reach the decoding path, which reports the corruption — raw
// evaluation never masks it.
func (c RawCompiled) Eval(enc []byte) bool {
	if len(enc) != c.size {
		return true
	}
	for _, fn := range c.fns {
		if !fn(enc) {
			return false
		}
	}
	return true
}

// CompileRaw specializes every atom of a bound conjunction to read the
// encoded row directly. It returns a RawCompiled with OK()==false when the
// schema has variable-width columns, the predicate is empty, or any atom
// cannot be specialized; callers then stay on the decoded evaluators.
func CompileRaw(c Conjunction, s *tuple.Schema) RawCompiled {
	size := s.FixedSize()
	if size < 0 || len(c.Atoms) == 0 {
		return RawCompiled{}
	}
	fns := make([]rawAtomFn, len(c.Atoms))
	for i, a := range c.Atoms {
		fn := compileRawAtom(a, s)
		if fn == nil {
			return RawCompiled{}
		}
		fns[i] = fn
	}
	return RawCompiled{fns: fns, size: size}
}

// rawInt reads the fixed-width column at byte offset off.
func rawInt(enc []byte, off int) int64 {
	return int64(binary.LittleEndian.Uint64(enc[off:]))
}

func compileRawAtom(a Atom, s *tuple.Schema) rawAtomFn {
	if !a.bound || !numericKind(s.Column(a.ord).Kind) {
		return nil
	}
	off := a.ord * 8
	switch a.Op {
	case Eq, Ne, Lt, Le, Gt, Ge:
		if !numericKind(a.Val.Kind) {
			return nil
		}
		c := a.Val.Int
		switch a.Op {
		case Eq:
			return func(enc []byte) bool { return rawInt(enc, off) == c }
		case Ne:
			return func(enc []byte) bool { return rawInt(enc, off) != c }
		case Lt:
			return func(enc []byte) bool { return rawInt(enc, off) < c }
		case Le:
			return func(enc []byte) bool { return rawInt(enc, off) <= c }
		case Gt:
			return func(enc []byte) bool { return rawInt(enc, off) > c }
		default:
			return func(enc []byte) bool { return rawInt(enc, off) >= c }
		}
	case Between:
		if !numericKind(a.Val.Kind) || !numericKind(a.Val2.Kind) {
			return nil
		}
		lo, hi := a.Val.Int, a.Val2.Int
		return func(enc []byte) bool {
			v := rawInt(enc, off)
			return v >= lo && v <= hi
		}
	case In:
		if len(a.List) == 0 {
			return func([]byte) bool { return false }
		}
		for _, v := range a.List {
			if !numericKind(v.Kind) {
				return nil
			}
		}
		if len(a.List) > 8 {
			set := make(map[int64]struct{}, len(a.List))
			for _, v := range a.List {
				set[v.Int] = struct{}{}
			}
			return func(enc []byte) bool {
				_, ok := set[rawInt(enc, off)]
				return ok
			}
		}
		vals := make([]int64, len(a.List))
		for i, v := range a.List {
			vals[i] = v.Int
		}
		return func(enc []byte) bool {
			v := rawInt(enc, off)
			for _, c := range vals {
				if v == c {
					return true
				}
			}
			return false
		}
	default:
		return nil
	}
}
