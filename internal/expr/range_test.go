package expr

import (
	"bytes"
	"math"
	"testing"

	"pagefeedback/internal/tuple"
)

// inRange reports whether encoded key k falls in r.
func inRange(r KeyRange, k []byte) bool {
	if r.Lo != nil && bytes.Compare(k, r.Lo) < 0 {
		return false
	}
	if r.Hi != nil && bytes.Compare(k, r.Hi) >= 0 {
		return false
	}
	return true
}

func TestSuccValue(t *testing.T) {
	s, ok := SuccValue(tuple.Int64(5))
	if !ok || s.Int != 6 {
		t.Errorf("succ(5) = %v,%v", s, ok)
	}
	if _, ok := SuccValue(tuple.Int64(math.MaxInt64)); ok {
		t.Error("succ(MaxInt64) exists")
	}
	s, ok = SuccValue(tuple.Str("ab"))
	if !ok || s.Str != "ab\x00" {
		t.Errorf("succ(ab) = %v,%v", s, ok)
	}
	s, ok = SuccValue(tuple.Date(10))
	if !ok || s.Int != 11 || s.Kind != tuple.KindDate {
		t.Errorf("succ(date 10) = %v,%v", s, ok)
	}
}

func TestIndexRangesEquality(t *testing.T) {
	c := And(NewAtom("state", Eq, tuple.Str("CA")))
	ranges, matched, ok := IndexRanges(c, []string{"state"})
	if !ok || len(ranges) != 1 || len(matched) != 1 {
		t.Fatalf("ranges=%v matched=%v ok=%v", ranges, matched, ok)
	}
	r := ranges[0]
	// Secondary index entries carry an RID suffix after the key values.
	entryCA := append(tuple.EncodeKey(tuple.Str("CA")), tuple.EncodeKey(tuple.Int64(12345))...)
	entryWA := append(tuple.EncodeKey(tuple.Str("WA")), tuple.EncodeKey(tuple.Int64(0))...)
	entryC := append(tuple.EncodeKey(tuple.Str("C")), tuple.EncodeKey(tuple.Int64(0))...)
	if !inRange(r, entryCA) {
		t.Error("CA entry excluded")
	}
	if inRange(r, entryWA) || inRange(r, entryC) {
		t.Error("non-CA entry included")
	}
}

func TestIndexRangesLessThan(t *testing.T) {
	c := And(NewAtom("id", Lt, tuple.Int64(100)))
	ranges, _, ok := IndexRanges(c, []string{"id"})
	if !ok || len(ranges) != 1 {
		t.Fatal("no range")
	}
	r := ranges[0]
	for _, tc := range []struct {
		v    int64
		want bool
	}{{-5, true}, {0, true}, {99, true}, {100, false}, {101, false}} {
		entry := append(tuple.EncodeKey(tuple.Int64(tc.v)), tuple.EncodeKey(tuple.Int64(1))...)
		if got := inRange(r, entry); got != tc.want {
			t.Errorf("id=%d in range = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestIndexRangesInclusiveUpper(t *testing.T) {
	c := And(NewAtom("id", Le, tuple.Int64(100)))
	ranges, _, _ := IndexRanges(c, []string{"id"})
	entry100 := append(tuple.EncodeKey(tuple.Int64(100)), tuple.EncodeKey(tuple.Int64(7))...)
	entry101 := append(tuple.EncodeKey(tuple.Int64(101)), tuple.EncodeKey(tuple.Int64(7))...)
	if !inRange(ranges[0], entry100) {
		t.Error("<=100 excluded 100")
	}
	if inRange(ranges[0], entry101) {
		t.Error("<=100 included 101")
	}
}

func TestIndexRangesBetweenAndIntersect(t *testing.T) {
	c := And(
		NewBetween("id", tuple.Int64(10), tuple.Int64(50)),
		NewAtom("id", Ge, tuple.Int64(20)), // tightens the low bound
	)
	ranges, matched, ok := IndexRanges(c, []string{"id"})
	if !ok || len(matched) != 2 {
		t.Fatalf("matched=%v ok=%v", matched, ok)
	}
	r := ranges[0]
	for _, tc := range []struct {
		v    int64
		want bool
	}{{9, false}, {10, false}, {19, false}, {20, true}, {50, true}, {51, false}} {
		entry := tuple.EncodeKey(tuple.Int64(tc.v), tuple.Int64(0))
		if got := inRange(r, entry); got != tc.want {
			t.Errorf("id=%d in range = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestIndexRangesCompositeIndex(t *testing.T) {
	// Index on (shipdate, state); predicate fixes shipdate and ranges state.
	c := And(
		NewAtom("shipdate", Eq, tuple.Date(13665)),
		NewAtom("state", Ge, tuple.Str("CA")),
	)
	ranges, matched, ok := IndexRanges(c, []string{"shipdate", "state"})
	if !ok || len(matched) != 2 {
		t.Fatalf("matched=%v ok=%v", matched, ok)
	}
	r := ranges[0]
	mk := func(d int64, s string) []byte {
		return tuple.EncodeKey(tuple.Date(d), tuple.Str(s), tuple.Int64(0))
	}
	if !inRange(r, mk(13665, "CA")) || !inRange(r, mk(13665, "WA")) {
		t.Error("qualifying composite entries excluded")
	}
	if inRange(r, mk(13665, "AZ")) {
		t.Error("state below low bound included")
	}
	if inRange(r, mk(13664, "CA")) || inRange(r, mk(13666, "CA")) {
		t.Error("other shipdate included")
	}
}

func TestIndexRangesEqualityPrefixOnly(t *testing.T) {
	// Only the leading column is constrained; the index is still usable.
	c := And(NewAtom("shipdate", Eq, tuple.Date(13665)))
	ranges, _, ok := IndexRanges(c, []string{"shipdate", "state"})
	if !ok || len(ranges) != 1 {
		t.Fatal("prefix-only equality unusable")
	}
	r := ranges[0]
	mk := func(d int64, s string) []byte {
		return tuple.EncodeKey(tuple.Date(d), tuple.Str(s), tuple.Int64(0))
	}
	if !inRange(r, mk(13665, "AA")) || !inRange(r, mk(13665, "zz")) {
		t.Error("same-date entries excluded")
	}
	if inRange(r, mk(13666, "AA")) {
		t.Error("next-date entry included")
	}
}

func TestIndexRangesInExpansion(t *testing.T) {
	c := And(NewIn("state", tuple.Str("CA"), tuple.Str("WA")))
	ranges, _, ok := IndexRanges(c, []string{"state"})
	if !ok || len(ranges) != 2 {
		t.Fatalf("IN produced %d ranges, ok=%v", len(ranges), ok)
	}
	ca := tuple.EncodeKey(tuple.Str("CA"), tuple.Int64(0))
	or := tuple.EncodeKey(tuple.Str("OR"), tuple.Int64(0))
	hit := 0
	for _, r := range ranges {
		if inRange(r, ca) {
			hit++
		}
		if inRange(r, or) {
			t.Error("OR entry included")
		}
	}
	if hit != 1 {
		t.Errorf("CA matched %d ranges", hit)
	}
}

func TestIndexRangesUnusable(t *testing.T) {
	c := And(NewAtom("state", Eq, tuple.Str("CA")))
	if _, _, ok := IndexRanges(c, []string{"shipdate", "state"}); ok {
		t.Error("index with unconstrained leading column reported usable")
	}
	if _, _, ok := IndexRanges(Conjunction{}, []string{"id"}); ok {
		t.Error("empty conjunction reported usable")
	}
	// Ne cannot seed a range.
	c2 := And(NewAtom("id", Ne, tuple.Int64(5)))
	if _, _, ok := IndexRanges(c2, []string{"id"}); ok {
		t.Error("Ne-only predicate reported usable")
	}
}

func TestIndexRangesMaxIntUpper(t *testing.T) {
	// col <= MaxInt64 admits every key: no narrowing, so the index is
	// correctly reported unusable for this predicate alone.
	c := And(NewAtom("id", Le, tuple.Int64(math.MaxInt64)))
	if _, _, ok := IndexRanges(c, []string{"id"}); ok {
		t.Error("Le MaxInt64 (no narrowing) reported usable")
	}
	// Combined with a real low bound the index is usable and the high end
	// is exactly unbounded.
	c2 := And(NewAtom("id", Ge, tuple.Int64(5)), NewAtom("id", Le, tuple.Int64(math.MaxInt64)))
	ranges, _, ok := IndexRanges(c2, []string{"id"})
	if !ok || ranges[0].Hi != nil {
		t.Fatalf("ranges=%v ok=%v, want usable with unbounded hi", ranges, ok)
	}
	entry := tuple.EncodeKey(tuple.Int64(math.MaxInt64), tuple.Int64(3))
	if !inRange(ranges[0], entry) {
		t.Error("MaxInt64 entry excluded")
	}
}
