package expr

import (
	"pagefeedback/internal/tuple"
)

// Compiled predicate evaluation: the per-row hot path of every scan, seek,
// and join operator evaluates a Conjunction by switching on the operator and
// value kind for every atom of every row. Compile resolves that dispatch
// once — at plan-build time — into a slice of type-specialized closures, so
// the steady state is a direct call per atom with no switch, no Value.Compare
// kind checks, and no interface traffic. The closures are immutable after
// Compile and safe to share across concurrent executions of a cached plan.

// atomFn reports whether one atom accepts the row.
type atomFn func(tuple.Row) bool

// Compiled is a type-specialized evaluator for one bound Conjunction. The
// zero value is invalid; obtain one from Compile and check OK.
type Compiled struct {
	fns []atomFn
}

// OK reports whether the compilation produced a usable evaluator. Callers
// fall back to Conjunction.Eval when it is false.
func (c Compiled) OK() bool { return c.fns != nil }

// Len returns the number of compiled atoms.
func (c Compiled) Len() int { return len(c.fns) }

// Eval evaluates the conjunction with short-circuiting, equivalently to
// Conjunction.Eval on the source predicate.
func (c Compiled) Eval(row tuple.Row) bool {
	for _, fn := range c.fns {
		if !fn(row) {
			return false
		}
	}
	return true
}

// FirstFail returns the index of the first atom the row fails, or -1 when
// every atom accepts it. This mirrors the first-failing-atom loop the scan
// operators feed to prefix monitors, so compiled evaluation preserves their
// observation semantics exactly.
func (c Compiled) FirstFail(row tuple.Row) int {
	for i, fn := range c.fns {
		if !fn(row) {
			return i
		}
	}
	return -1
}

// EvalBatch filters sel — indices into rows — through the conjunction and
// returns the surviving selection, preserving order. It runs column-at-a-
// time: each atom's closure sweeps the whole selection and compacts it in
// place before the next atom runs (the write cursor trails the read cursor,
// so reuse of sel's backing array is safe), which keeps one closure hot per
// sweep instead of re-dispatching every atom per row. Rows an early atom
// rejects are never touched again, so the result is exactly what per-row
// short-circuit Eval would select. The returned slice aliases sel.
func (c Compiled) EvalBatch(rows []tuple.Row, sel []int) []int {
	for _, fn := range c.fns {
		out := sel[:0]
		for _, i := range sel {
			if fn(rows[i]) {
				out = append(out, i)
			}
		}
		sel = out
		if len(sel) == 0 {
			break
		}
	}
	return sel
}

// Compile specializes every atom of a bound conjunction. It returns a
// Compiled with OK()==false when the predicate is empty (evaluation is
// already trivial) or when any atom cannot be specialized; callers then use
// the generic evaluator, so compilation is always safe to attempt.
func Compile(c Conjunction) Compiled {
	if len(c.Atoms) == 0 {
		return Compiled{}
	}
	fns := make([]atomFn, len(c.Atoms))
	for i, a := range c.Atoms {
		fn := compileAtom(a)
		if fn == nil {
			return Compiled{}
		}
		fns[i] = fn
	}
	return Compiled{fns: fns}
}

// compileAtom builds the specialized closure for one atom, or nil when the
// atom's shape is not compilable (unbound, or mixed-kind constants).
func compileAtom(a Atom) atomFn {
	if !a.bound {
		return nil
	}
	ord := a.ord
	switch a.Op {
	case Eq, Ne, Lt, Le, Gt, Ge:
		if numericKind(a.Val.Kind) {
			return compileNumericCmp(ord, a.Op, a.Val.Int)
		}
		if a.Val.Kind == tuple.KindString {
			return compileStringCmp(ord, a.Op, a.Val.Str)
		}
		return nil
	case Between:
		// Value.Compare treats Int and Date interchangeably, so a mixed
		// numeric pair is fine; a numeric/string mix is a planner bug the
		// generic evaluator reports by panicking, so refuse to compile it.
		if numericKind(a.Val.Kind) && numericKind(a.Val2.Kind) {
			lo, hi := a.Val.Int, a.Val2.Int
			return func(row tuple.Row) bool {
				v := row[ord].Int
				return v >= lo && v <= hi
			}
		}
		if a.Val.Kind == tuple.KindString && a.Val2.Kind == tuple.KindString {
			lo, hi := a.Val.Str, a.Val2.Str
			return func(row tuple.Row) bool {
				v := row[ord].Str
				return v >= lo && v <= hi
			}
		}
		return nil
	case In:
		return compileIn(ord, a.List)
	default:
		return nil
	}
}

// numericKind reports whether the kind compares through Value.Int.
func numericKind(k tuple.Kind) bool {
	return k == tuple.KindInt || k == tuple.KindDate
}

func compileNumericCmp(ord int, op CmpOp, c int64) atomFn {
	switch op {
	case Eq:
		return func(row tuple.Row) bool { return row[ord].Int == c }
	case Ne:
		return func(row tuple.Row) bool { return row[ord].Int != c }
	case Lt:
		return func(row tuple.Row) bool { return row[ord].Int < c }
	case Le:
		return func(row tuple.Row) bool { return row[ord].Int <= c }
	case Gt:
		return func(row tuple.Row) bool { return row[ord].Int > c }
	case Ge:
		return func(row tuple.Row) bool { return row[ord].Int >= c }
	}
	return nil
}

func compileStringCmp(ord int, op CmpOp, c string) atomFn {
	switch op {
	case Eq:
		return func(row tuple.Row) bool { return row[ord].Str == c }
	case Ne:
		return func(row tuple.Row) bool { return row[ord].Str != c }
	case Lt:
		return func(row tuple.Row) bool { return row[ord].Str < c }
	case Le:
		return func(row tuple.Row) bool { return row[ord].Str <= c }
	case Gt:
		return func(row tuple.Row) bool { return row[ord].Str > c }
	case Ge:
		return func(row tuple.Row) bool { return row[ord].Str >= c }
	}
	return nil
}

// compileIn specializes membership tests. IN lists are uniform-kind by
// construction (the parser coerces every element to the column kind); a
// mixed list is left to the generic evaluator. Larger integer lists get a
// hash set, small ones a linear probe — IN lists in this engine are tiny,
// so the cutoff only matters for hand-built predicates.
func compileIn(ord int, list []tuple.Value) atomFn {
	if len(list) == 0 {
		return func(tuple.Row) bool { return false }
	}
	allNumeric, allString := true, true
	for _, v := range list {
		if !numericKind(v.Kind) {
			allNumeric = false
		}
		if v.Kind != tuple.KindString {
			allString = false
		}
	}
	switch {
	case allNumeric:
		if len(list) > 8 {
			set := make(map[int64]struct{}, len(list))
			for _, v := range list {
				set[v.Int] = struct{}{}
			}
			return func(row tuple.Row) bool {
				_, ok := set[row[ord].Int]
				return ok
			}
		}
		vals := make([]int64, len(list))
		for i, v := range list {
			vals[i] = v.Int
		}
		return func(row tuple.Row) bool {
			v := row[ord].Int
			for _, c := range vals {
				if v == c {
					return true
				}
			}
			return false
		}
	case allString:
		vals := make([]string, len(list))
		for i, v := range list {
			vals[i] = v.Str
		}
		return func(row tuple.Row) bool {
			v := row[ord].Str
			for _, c := range vals {
				if v == c {
					return true
				}
			}
			return false
		}
	}
	return nil
}
