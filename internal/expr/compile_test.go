package expr

import (
	"fmt"
	"testing"

	"pagefeedback/internal/tuple"
)

func compileSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	return tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindInt},
		tuple.Column{Name: "s", Kind: tuple.KindString},
		tuple.Column{Name: "d", Kind: tuple.KindDate},
	)
}

// TestCompiledMatchesEval checks the compiled evaluator against the generic
// one — Eval and FirstFail — across every operator and kind combination on a
// grid of rows.
func TestCompiledMatchesEval(t *testing.T) {
	schema := compileSchema(t)
	atoms := []Atom{
		NewAtom("a", Eq, tuple.Int64(5)),
		NewAtom("a", Ne, tuple.Int64(5)),
		NewAtom("a", Lt, tuple.Int64(5)),
		NewAtom("a", Le, tuple.Int64(5)),
		NewAtom("a", Gt, tuple.Int64(5)),
		NewAtom("a", Ge, tuple.Int64(5)),
		NewBetween("a", tuple.Int64(3), tuple.Int64(7)),
		NewIn("a", tuple.Int64(1), tuple.Int64(5), tuple.Int64(9)),
		NewIn("a", tuple.Int64(0), tuple.Int64(1), tuple.Int64(2), tuple.Int64(3),
			tuple.Int64(4), tuple.Int64(5), tuple.Int64(6), tuple.Int64(7),
			tuple.Int64(8), tuple.Int64(9)), // >8 elements: hash-set path
		NewAtom("s", Eq, tuple.Str("mm")),
		NewAtom("s", Lt, tuple.Str("mm")),
		NewAtom("s", Ge, tuple.Str("mm")),
		NewBetween("s", tuple.Str("bb"), tuple.Str("pp")),
		NewIn("s", tuple.Str("aa"), tuple.Str("mm")),
		NewAtom("d", Le, tuple.Date(10)),
		NewBetween("d", tuple.Date(4), tuple.Date(12)),
	}
	var rows []tuple.Row
	for i := int64(0); i < 12; i++ {
		rows = append(rows, tuple.Row{
			tuple.Int64(i),
			tuple.Str(fmt.Sprintf("%c%c", 'a'+i, 'a'+i)),
			tuple.Date(i),
		})
	}

	// Per-atom equivalence.
	for _, a := range atoms {
		bound, err := a.Bind(schema)
		if err != nil {
			t.Fatal(err)
		}
		cc := Compile(And(bound))
		if !cc.OK() {
			t.Fatalf("atom %s did not compile", a)
		}
		for _, row := range rows {
			if got, want := cc.Eval(row), bound.Eval(row); got != want {
				t.Errorf("%s on %v: compiled=%v generic=%v", a, row, got, want)
			}
		}
	}

	// Conjunction equivalence, including FirstFail against the reference
	// first-failing-atom loop.
	conj, err := And(
		NewAtom("a", Ge, tuple.Int64(2)),
		NewAtom("s", Lt, tuple.Str("kk")),
		NewBetween("d", tuple.Date(1), tuple.Date(9)),
	).Bind(schema)
	if err != nil {
		t.Fatal(err)
	}
	cc := Compile(conj)
	if !cc.OK() || cc.Len() != 3 {
		t.Fatalf("conjunction did not compile: ok=%v len=%d", cc.OK(), cc.Len())
	}
	for _, row := range rows {
		if got, want := cc.Eval(row), conj.Eval(row); got != want {
			t.Errorf("Eval(%v): compiled=%v generic=%v", row, got, want)
		}
		wantFail := -1
		for i := range conj.Atoms {
			if !conj.Atoms[i].Eval(row) {
				wantFail = i
				break
			}
		}
		if got := cc.FirstFail(row); got != wantFail {
			t.Errorf("FirstFail(%v): compiled=%d reference=%d", row, got, wantFail)
		}
	}
}

// TestCompileRefusals: empty and unbound predicates must not compile, and an
// empty IN list always rejects.
func TestCompileRefusals(t *testing.T) {
	if cc := Compile(Conjunction{}); cc.OK() {
		t.Error("empty conjunction compiled; want fallback")
	}
	if cc := Compile(And(NewAtom("a", Eq, tuple.Int64(1)))); cc.OK() {
		t.Error("unbound atom compiled; want fallback")
	}
	schema := compileSchema(t)
	emptyIn, err := And(Atom{Col: "a", Op: In}).Bind(schema)
	if err != nil {
		t.Fatal(err)
	}
	cc := Compile(emptyIn)
	if !cc.OK() {
		t.Fatal("empty IN did not compile")
	}
	if cc.Eval(tuple.Row{tuple.Int64(1), tuple.Str("x"), tuple.Date(0)}) {
		t.Error("empty IN accepted a row")
	}
}
