package catalog

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pagefeedback/internal/expr"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

func newTestCatalog() *Catalog {
	d := storage.NewDiskManager(storage.IOModel{RandomRead: 4 * time.Millisecond, SeqRead: 100 * time.Microsecond})
	return New(storage.NewBufferPool(d, 512))
}

func salesSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "shipdate", Kind: tuple.KindDate},
		tuple.Column{Name: "state", Kind: tuple.KindString},
	)
}

func salesRows(n int) []tuple.Row {
	states := []string{"CA", "WA", "OR", "NV"}
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.Int64(int64(i)),
			tuple.Date(int64(13000 + i/10)),
			tuple.Str(states[i%len(states)]),
		}
	}
	return rows
}

func TestCreateTableDuplicate(t *testing.T) {
	c := newTestCatalog()
	if _, err := c.CreateHeapTable("t", salesSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateHeapTable("T", salesSchema()); err == nil {
		t.Error("duplicate (case-insensitive) table created")
	}
	if _, err := c.CreateClusteredTable("c", salesSchema(), []string{"nope"}); err == nil {
		t.Error("clustered table with bad cluster column created")
	}
}

func TestTableLookupAndList(t *testing.T) {
	c := newTestCatalog()
	c.CreateHeapTable("zeta", salesSchema())
	c.CreateHeapTable("alpha", salesSchema())
	if _, ok := c.Table("ZETA"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	ts := c.Tables()
	if len(ts) != 2 || ts[0].Name != "alpha" || ts[1].Name != "zeta" {
		t.Errorf("Tables() = %v", ts)
	}
}

func testTableRoundTrip(t *testing.T, tab *Table) {
	t.Helper()
	rows := salesRows(1000)
	rids, err := tab.BulkLoad(rows)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1000 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	if tab.NumPages() <= 0 {
		t.Errorf("NumPages = %d", tab.NumPages())
	}
	// FetchRow by RID returns the loaded row.
	for i := 0; i < 1000; i += 137 {
		row, err := tab.FetchRow(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		if row[0].Int != int64(i) {
			t.Errorf("row %d has id %d", i, row[0].Int)
		}
	}
	// Full scan sees every row exactly once, in page-grouped order.
	it, err := tab.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	seenPages := map[storage.PageID]bool{}
	var curPage = storage.InvalidPageID
	n := 0
	for it.Next() {
		rid := it.RID()
		if rid.Page != curPage {
			if seenPages[rid.Page] {
				t.Fatal("page revisited during scan")
			}
			seenPages[rid.Page] = true
			curPage = rid.Page
		}
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 1000 {
		t.Errorf("scan saw %d rows", n)
	}
	if int64(len(seenPages)) != tab.NumPages() {
		t.Errorf("scan touched %d pages, NumPages = %d", len(seenPages), tab.NumPages())
	}
}

func TestHeapTableRoundTrip(t *testing.T) {
	c := newTestCatalog()
	tab, err := c.CreateHeapTable("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	testTableRoundTrip(t, tab)
}

func TestClusteredTableRoundTrip(t *testing.T) {
	c := newTestCatalog()
	tab, err := c.CreateClusteredTable("sales", salesSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	testTableRoundTrip(t, tab)
}

func TestInsertSingleRows(t *testing.T) {
	c := newTestCatalog()
	hp, _ := c.CreateHeapTable("h", salesSchema())
	cl, _ := c.CreateClusteredTable("c", salesSchema(), []string{"id"})
	for _, tab := range []*Table{hp, cl} {
		rid, err := tab.Insert(tuple.Row{tuple.Int64(1), tuple.Date(2), tuple.Str("CA")})
		if err != nil {
			t.Fatal(err)
		}
		row, err := tab.FetchRow(rid)
		if err != nil {
			t.Fatal(err)
		}
		if row[2].Str != "CA" {
			t.Errorf("%s: row = %v", tab.Name, row)
		}
	}
}

func TestCreateIndexAndSeek(t *testing.T) {
	c := newTestCatalog()
	tab, _ := c.CreateClusteredTable("sales", salesSchema(), []string{"id"})
	rows := salesRows(2000)
	if _, err := tab.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	ix, err := c.CreateIndex("ix_state", tab, []string{"state"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("ix_state", tab, []string{"state"}); err == nil {
		t.Error("duplicate index created")
	}
	if _, err := c.CreateIndex("bad", tab, []string{"missing"}); err == nil {
		t.Error("index on missing column created")
	}
	if got, ok := tab.IndexByName("IX_STATE"); !ok || got != ix {
		t.Error("IndexByName failed")
	}

	// Seek state='CA' and verify we get exactly the CA rows.
	pred := expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("CA")))
	ranges, _, ok := expr.IndexRanges(pred, ix.Cols)
	if !ok {
		t.Fatal("index unusable")
	}
	it, err := ix.SeekRange(ranges[0])
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.Next() {
		if it.Values()[0].Str != "CA" {
			t.Fatalf("seek returned state %v", it.Values()[0])
		}
		row, err := tab.FetchRow(it.RID())
		if err != nil {
			t.Fatal(err)
		}
		if row[2].Str != "CA" {
			t.Fatalf("RID resolves to non-CA row %v", row)
		}
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 500 { // 2000 rows, 4 states round-robin
		t.Errorf("seek found %d CA rows, want 500", n)
	}
}

func TestIndexRangeSeekOnDate(t *testing.T) {
	c := newTestCatalog()
	tab, _ := c.CreateClusteredTable("sales", salesSchema(), []string{"id"})
	tab.BulkLoad(salesRows(1000))
	ix, err := c.CreateIndex("ix_date", tab, []string{"shipdate"})
	if err != nil {
		t.Fatal(err)
	}
	// shipdate in [13010, 13020): 10 dates x 10 rows each -> 100 rows.
	pred := expr.And(
		expr.NewAtom("shipdate", expr.Ge, tuple.Date(13010)),
		expr.NewAtom("shipdate", expr.Lt, tuple.Date(13020)),
	)
	ranges, _, ok := expr.IndexRanges(pred, ix.Cols)
	if !ok {
		t.Fatal("unusable")
	}
	it, _ := ix.SeekRange(ranges[0])
	defer it.Close()
	n := 0
	for it.Next() {
		v := it.Values()[0]
		if v.Kind != tuple.KindDate {
			t.Fatalf("index value kind = %v, want DATE", v.Kind)
		}
		if v.Int < 13010 || v.Int >= 13020 {
			t.Fatalf("out-of-range date %d", v.Int)
		}
		n++
	}
	if n != 100 {
		t.Errorf("range seek found %d rows, want 100", n)
	}
}

func TestCompositeIndexSeek(t *testing.T) {
	c := newTestCatalog()
	tab, _ := c.CreateClusteredTable("sales", salesSchema(), []string{"id"})
	tab.BulkLoad(salesRows(1000))
	ix, err := c.CreateIndex("ix_date_state", tab, []string{"shipdate", "state"})
	if err != nil {
		t.Fatal(err)
	}
	pred := expr.And(
		expr.NewAtom("shipdate", expr.Eq, tuple.Date(13005)),
		expr.NewAtom("state", expr.Eq, tuple.Str("WA")),
	)
	ranges, matched, ok := expr.IndexRanges(pred, ix.Cols)
	if !ok || len(matched) != 2 {
		t.Fatal("composite index unusable")
	}
	it, _ := ix.SeekRange(ranges[0])
	defer it.Close()
	n := 0
	for it.Next() {
		n++
	}
	// Rows 50..59 have date 13005; states cycle CA,WA,OR,NV -> WA appears
	// at ids 53, 57 within that band: rows i%4==1.
	want := 0
	for i := 50; i < 60; i++ {
		if i%4 == 1 {
			want++
		}
	}
	if n != want {
		t.Errorf("composite seek found %d, want %d", n, want)
	}
}

func TestIndexCovers(t *testing.T) {
	ix := &Index{Cols: []string{"shipdate", "state"}}
	if !ix.Covers([]string{"STATE"}) {
		t.Error("Covers(state) = false")
	}
	if ix.Covers([]string{"state", "id"}) {
		t.Error("Covers(state,id) = true")
	}
	if !ix.Covers(nil) {
		t.Error("Covers(nil) = false")
	}
}

func TestClusteredBulkLoadRequiresSorted(t *testing.T) {
	c := newTestCatalog()
	tab, _ := c.CreateClusteredTable("t", salesSchema(), []string{"id"})
	rows := []tuple.Row{
		{tuple.Int64(2), tuple.Date(1), tuple.Str("a")},
		{tuple.Int64(1), tuple.Date(1), tuple.Str("b")},
	}
	if _, err := tab.BulkLoad(rows); err == nil {
		t.Error("unsorted clustered bulk load succeeded")
	}
}

func TestScanRange(t *testing.T) {
	c := newTestCatalog()
	tab, _ := c.CreateClusteredTable("sales", salesSchema(), []string{"id"})
	tab.BulkLoad(salesRows(1000))
	pred := expr.And(
		expr.NewAtom("id", expr.Ge, tuple.Int64(100)),
		expr.NewAtom("id", expr.Lt, tuple.Int64(250)),
	)
	ranges, _, ok := expr.IndexRanges(pred, tab.ClusterCols)
	if !ok {
		t.Fatal("cluster range unusable")
	}
	it, err := tab.ScanRange(ranges[0])
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	prev := int64(-1)
	for it.Next() {
		id := it.Row()[0].Int
		if id < 100 || id >= 250 {
			t.Fatalf("out-of-range id %d", id)
		}
		if id <= prev {
			t.Fatal("range scan out of order")
		}
		prev = id
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 150 {
		t.Errorf("range scan returned %d rows, want 150", n)
	}
	if tab.ClusterHeight() < 1 {
		t.Errorf("ClusterHeight = %d", tab.ClusterHeight())
	}
	// Heap tables cannot range-scan by cluster key.
	hp, _ := c.CreateHeapTable("h", salesSchema())
	if _, err := hp.ScanRange(ranges[0]); err == nil {
		t.Error("heap ScanRange succeeded")
	}
	if hp.ClusterHeight() != 0 {
		t.Error("heap ClusterHeight nonzero")
	}
}

func TestIndexAccessors(t *testing.T) {
	c := newTestCatalog()
	tab, _ := c.CreateClusteredTable("sales", salesSchema(), []string{"id"})
	tab.BulkLoad(salesRows(1000))
	ix, err := c.CreateIndex("ix", tab, []string{"state"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.LeafPages() <= 0 || ix.Height() < 1 {
		t.Errorf("LeafPages=%d Height=%d", ix.LeafPages(), ix.Height())
	}
	if got := tab.Indexes(); len(got) != 1 || got[0] != ix {
		t.Errorf("Indexes() = %v", got)
	}
	if c.Pool() == nil {
		t.Error("Pool() nil")
	}
}

func TestIndexOnHeapTable(t *testing.T) {
	c := newTestCatalog()
	tab, _ := c.CreateHeapTable("h", salesSchema())
	rng := rand.New(rand.NewSource(3))
	var rows []tuple.Row
	for i := 0; i < 500; i++ {
		rows = append(rows, tuple.Row{
			tuple.Int64(int64(rng.Intn(1 << 30))),
			tuple.Date(int64(13000 + i)),
			tuple.Str(fmt.Sprintf("S%02d", i%7)),
		})
	}
	tab.BulkLoad(rows)
	ix, err := c.CreateIndex("ix", tab, []string{"state"})
	if err != nil {
		t.Fatal(err)
	}
	pred := expr.And(expr.NewAtom("state", expr.Eq, tuple.Str("S03")))
	ranges, _, _ := expr.IndexRanges(pred, ix.Cols)
	it, _ := ix.SeekRange(ranges[0])
	defer it.Close()
	n := 0
	for it.Next() {
		row, err := tab.FetchRow(it.RID())
		if err != nil {
			t.Fatal(err)
		}
		if row[2].Str != "S03" {
			t.Fatal("wrong row fetched from heap")
		}
		n++
	}
	want := 0
	for i := 0; i < 500; i++ {
		if i%7 == 3 {
			want++
		}
	}
	if n != want {
		t.Errorf("found %d, want %d", n, want)
	}
}
